GO ?= go

.PHONY: build test check vet race fuzz sim bench smoke attrib warmsweep shardreplay loadbench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fuzz gives each native fuzz target a short budget — enough to catch
# parser panics without turning CI into a fuzzing farm.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/simclock -run '^$$' -fuzz FuzzTimerWheel -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzParseArrivals -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzParseArrivalTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/costmgr -run '^$$' -fuzz FuzzLoadProfiles -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cliutil -run '^$$' -fuzz FuzzValidateReport -fuzztime $(FUZZTIME)

# check is the full pre-commit gate: static analysis, the whole test suite
# under the race detector (twice, to shake out ordering dependence), a
# short fuzz budget per target, then the event-log smoke round-trip.
check:
	$(GO) vet ./... && $(GO) test -race -count=2 ./...
	$(MAKE) fuzz
	$(MAKE) smoke
	$(MAKE) attrib
	$(MAKE) shardreplay

# smoke round-trips the observability pipeline (run a small cluster day,
# save its event log, replay it through splitserve-history, convert it to
# a Chrome trace), the cost manager (profile one workload, then let
# -cores auto schedule from the curves), and the warm-pool substrate (a
# bridged shuffle-reuse stream on a warm pool with the /tmp cache, whose
# event log must carry the new vocabulary and replay cleanly). CI uploads
# smoke/trace.json, smoke/profiles.json and smoke/cluster-report.json as
# artifacts.
smoke:
	mkdir -p smoke
	$(GO) run ./cmd/splitserve-cluster -jobs 3 -mix sparkpi -pool 8 \
		-eventlog smoke/events.jsonl > /dev/null
	$(GO) run ./cmd/splitserve-history -log smoke/events.jsonl \
		-trace smoke/trace.json
	@test -s smoke/trace.json && echo "smoke: event log replayed, trace written to smoke/trace.json"
	$(GO) run ./cmd/splitserve-profile -out smoke/profiles.json -workloads sparkpi
	$(GO) run ./cmd/splitserve-cluster -jobs 3 -mix sparkpi -pool 8 \
		-cores auto -profiles smoke/profiles.json -alloc min-cost \
		-report json > smoke/cluster-report.json
	@grep -q '"alloc": "min-cost"' smoke/cluster-report.json \
		&& echo "smoke: profile -> schedule round trip OK (smoke/cluster-report.json)"
	$(GO) run ./cmd/splitserve-cluster -jobs 3 -mix shufflereuse -pool 4 \
		-arrival poisson:12s -warmpool 4 -tmpcache \
		-eventlog smoke/warm-events.jsonl > /dev/null
	@grep -q '"type":"lambda_warm_hit"' smoke/warm-events.jsonl \
		&& grep -q '"type":"tmp_cache_hit"' smoke/warm-events.jsonl \
		&& grep -q '"type":"warmpool_resize"' smoke/warm-events.jsonl \
		&& echo "smoke: warm-pool event vocabulary present in smoke/warm-events.jsonl"
	$(GO) run ./cmd/splitserve-history -log smoke/warm-events.jsonl \
		-trace smoke/warm-trace.json
	@test -s smoke/warm-trace.json && echo "smoke: warm-pool event log replayed, trace written to smoke/warm-trace.json"

# attrib smokes the causal-attribution pipeline (OBSERVABILITY.md,
# Layer 4): run a small cluster day, write its attribution report,
# render the /attrib waterfall HTML, then diff the report against itself
# — which must come out all-zeros ("no change"). CI uploads
# smoke/attrib.json and smoke/attrib.html as artifacts.
attrib:
	mkdir -p smoke
	$(GO) run ./cmd/splitserve-cluster -jobs 3 -mix sparkpi -pool 8 \
		-eventlog smoke/attrib-events.jsonl -attrib smoke/attrib.json > /dev/null
	$(GO) run ./cmd/splitserve-history -log smoke/attrib-events.jsonl \
		-attribhtml smoke/attrib.html > /dev/null
	@test -s smoke/attrib.json && test -s smoke/attrib.html \
		&& echo "attrib: report written to smoke/attrib.json, waterfall to smoke/attrib.html"
	@$(GO) run ./cmd/splitserve-history -diff smoke/attrib.json smoke/attrib.json \
		| grep -q 'no change' \
		&& echo "attrib: self-diff is all zeros"

# shardreplay smokes the sharded control plane: replay the committed
# production-shape trace fixture across 4 shards with -validate (the
# per-tenant distributions must match exactly), and check the merged
# event log carries the sharding vocabulary. CI uploads the merged
# report and event log as artifacts.
shardreplay:
	mkdir -p smoke
	$(GO) run ./cmd/splitserve-cluster \
		-arrival tracefile:internal/tracereplay/testdata/multitenant_small.csv \
		-shards 4 -validate -report json \
		-eventlog smoke/shard-events.jsonl > smoke/shard-report.json
	@grep -q '"type":"shard_assign"' smoke/shard-events.jsonl \
		&& grep -q '"type":"shard_steal"' smoke/shard-events.jsonl \
		&& grep -q '"type":"tenant_report"' smoke/shard-events.jsonl \
		&& echo "shardreplay: sharding event vocabulary present in smoke/shard-events.jsonl"
	@grep -q '"schema": "splitserve-shard/v1"' smoke/shard-report.json \
		&& echo "shardreplay: merged report written to smoke/shard-report.json"
	$(GO) run ./cmd/splitserve-history -log smoke/shard-events.jsonl \
		-trace smoke/shard-trace.json
	@test -s smoke/shard-trace.json && echo "shardreplay: sharded event log replayed, trace written to smoke/shard-trace.json"

# warmsweep regenerates the warm-pool crossover table (EXPERIMENTS.md,
# "Warm-pool Lambda with a /tmp shuffle cache tier"). CI uploads the
# report as an artifact.
warmsweep:
	mkdir -p smoke
	$(GO) run ./cmd/splitserve-cluster -warmsweep | tee smoke/warmsweep.txt
	@grep -q 'crossover:' smoke/warmsweep.txt \
		&& echo "warmsweep: crossover table written to smoke/warmsweep.txt"

sim:
	$(GO) run ./cmd/splitserve-sim

# bench regenerates the paper figures, then runs the Go figure benchmarks
# once with the BENCH_JSON recorder on, so the custom metrics (sim-seconds,
# usd, ...) land in bench-metrics.json instead of only scrolling past.
bench:
	$(GO) run ./cmd/splitserve-bench
	BENCH_JSON=bench-metrics.json $(GO) test -run '^$$' \
		-bench '^Benchmark(Fig|Ablation|Extension)' -benchtime 1x .
	@test -s bench-metrics.json && echo "bench: custom metrics written to bench-metrics.json"

# loadbench measures the simulator's own event-loop throughput and writes
# the BENCH_<label>.json trajectory point (see OBSERVABILITY.md, Layer 3).
# CI runs it with small counts; the committed BENCH_baseline.json uses the
# full 100,1000,10000.
LOADBENCH_JOBS ?= 100,1000,10000
LOADBENCH_LABEL ?= dev
loadbench:
	$(GO) run ./cmd/splitserve-loadbench -jobs $(LOADBENCH_JOBS) -label $(LOADBENCH_LABEL)
