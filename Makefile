GO ?= go

.PHONY: build test check vet race sim bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full pre-commit gate: static analysis plus the whole test
# suite under the race detector.
check:
	$(GO) vet ./... && $(GO) test -race ./...

sim:
	$(GO) run ./cmd/splitserve-sim

bench:
	$(GO) run ./cmd/splitserve-bench
