// Package s3q simulates an S3-style multi-tenant object store with the two
// properties that make it a poor shuffle medium in the paper (Section 2):
// per-request latency and per-bucket request-rate throttling ("the service
// usually tends to throttle when the aggregate throughput reaches a few
// thousands of requests per second"), while offering high aggregate byte
// throughput ("the overall I/O bandwidth is comparable to that of a local
// disk write"). Request counts feed S3 request billing.
//
// The Qubole Spark-on-Lambda baseline shuffles through this store; the
// number of objects per shuffle is mapTasks x reducePartitions, which is
// what drives its slowdown on shuffle-heavy workloads.
package s3q

import (
	"errors"
	"fmt"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/storage"
)

// ErrNoSuchKey reports a missing object.
var ErrNoSuchKey = errors.New("s3q: no such key")

// Options configure the store.
type Options struct {
	PutLatency   time.Duration
	GetLatency   time.Duration
	PutPerSec    float64 // per-bucket PUT throttle
	GetPerSec    float64 // per-bucket GET throttle
	FrontendMbps float64 // per-bucket aggregate byte throughput
	// RequestPipeline is the client's in-flight request window per batched
	// operation: a batch of n requests pays ceil(n/pipeline) request
	// latencies (Spark's shuffle writes objects near-sequentially and
	// fetches a handful at a time). 0 means fully parallel (one latency).
	RequestPipeline int
}

// DefaultOptions mirror the documented 2020 S3 limits.
func DefaultOptions() Options {
	return Options{
		PutLatency:   25 * time.Millisecond,
		GetLatency:   15 * time.Millisecond,
		PutPerSec:    3500,
		GetPerSec:    5500,
		FrontendMbps: 10000,
	}
}

// Store is the object store. Buckets are created on first use.
type Store struct {
	clock   *simclock.Clock
	net     *netsim.Network
	opts    Options
	buckets map[string]*bucket
}

type bucket struct {
	name    string
	objects map[string]storage.Block
	putGate rateGate
	getGate rateGate
	pool    *netsim.Pool
	puts    int64
	gets    int64
}

// rateGate is a fluid-approximation token bucket: the k-th request in
// excess of the sustained rate waits k/rate. This reproduces throttling-
// induced queueing without per-request events.
type rateGate struct {
	rate float64
	next time.Time
}

// reserve books n request slots starting at now and returns how long the
// caller must wait until its last slot is granted.
func (g *rateGate) reserve(now time.Time, n int) time.Duration {
	if g.next.Before(now) {
		g.next = now
	}
	g.next = g.next.Add(time.Duration(float64(n) / g.rate * float64(time.Second)))
	d := g.next.Sub(now)
	if d < 0 {
		return 0
	}
	return d
}

// New returns an empty store.
func New(clock *simclock.Clock, net *netsim.Network, opts Options) *Store {
	if opts.PutPerSec <= 0 || opts.GetPerSec <= 0 {
		def := DefaultOptions()
		if opts.PutPerSec <= 0 {
			opts.PutPerSec = def.PutPerSec
		}
		if opts.GetPerSec <= 0 {
			opts.GetPerSec = def.GetPerSec
		}
	}
	if opts.FrontendMbps <= 0 {
		opts.FrontendMbps = DefaultOptions().FrontendMbps
	}
	return &Store{clock: clock, net: net, opts: opts, buckets: make(map[string]*bucket)}
}

func (s *Store) bucket(name string) *bucket {
	b, ok := s.buckets[name]
	if !ok {
		b = &bucket{
			name:    name,
			objects: make(map[string]storage.Block),
			putGate: rateGate{rate: s.opts.PutPerSec},
			getGate: rateGate{rate: s.opts.GetPerSec},
			pool:    s.net.NewPool("s3/"+name, netsim.Mbps(s.opts.FrontendMbps)),
		}
		s.buckets[name] = b
	}
	return b
}

// PutAll stores blocks in bucketName: n request slots through the PUT
// throttle, one request latency, then one coalesced flow.
func (s *Store) PutAll(bucketName string, blocks []storage.Block, cl storage.Client, done func(error)) {
	b := s.bucket(bucketName)
	b.puts += int64(len(blocks))
	var total int64
	for _, blk := range blocks {
		total += blk.Size
	}
	wait := b.putGate.reserve(s.clock.Now(), len(blocks)) + s.latencyFor(len(blocks), s.opts.PutLatency)
	s.clock.After(wait, func() {
		pools := append(append([]*netsim.Pool(nil), cl.Net...), b.pool)
		s.net.StartFlow(float64(total), cl.RateCap, pools, func() {
			for _, blk := range blocks {
				b.objects[blk.ID] = blk
			}
			done(nil)
		})
	})
}

// FetchAll retrieves blocks from bucketName in request order.
func (s *Store) FetchAll(bucketName string, ids []string, cl storage.Client, done func([]storage.Block, error)) {
	b := s.bucket(bucketName)
	b.gets += int64(len(ids))
	wait := b.getGate.reserve(s.clock.Now(), len(ids)) + s.latencyFor(len(ids), s.opts.GetLatency)
	s.clock.After(wait, func() {
		out := make([]storage.Block, len(ids))
		var total int64
		for i, id := range ids {
			blk, ok := b.objects[id]
			if !ok {
				done(nil, fmt.Errorf("s3://%s/%s: %w", bucketName, id, ErrNoSuchKey))
				return
			}
			out[i] = blk
			total += blk.Size
		}
		pools := append(append([]*netsim.Pool(nil), cl.Net...), b.pool)
		s.net.StartFlow(float64(total), cl.RateCap, pools, func() {
			done(out, nil)
		})
	})
}

// latencyFor charges per-request latency for an n-request batch under the
// configured pipeline window.
func (s *Store) latencyFor(n int, per time.Duration) time.Duration {
	if n <= 0 {
		return per
	}
	window := s.opts.RequestPipeline
	if window <= 0 {
		return per
	}
	rounds := (n + window - 1) / window
	return time.Duration(rounds) * per
}

// Delete removes objects (no time charged).
func (s *Store) Delete(bucketName string, ids []string) {
	b := s.bucket(bucketName)
	for _, id := range ids {
		delete(b.objects, id)
	}
}

// Counts returns the cumulative PUT and GET request counts for billing.
func (s *Store) Counts(bucketName string) (puts, gets int64) {
	b := s.bucket(bucketName)
	return b.puts, b.gets
}

// ObjectCount returns the number of live objects in a bucket.
func (s *Store) ObjectCount(bucketName string) int {
	return len(s.bucket(bucketName).objects)
}

// BucketView adapts one bucket to the storage.Store interface so the
// shuffle layer can target S3 exactly as it targets HDFS or local disk.
type BucketView struct {
	store  *Store
	bucket string
}

var _ storage.Store = (*BucketView)(nil)

// Bucket returns a storage.Store view of one bucket.
func (s *Store) Bucket(name string) *BucketView {
	return &BucketView{store: s, bucket: name}
}

// Name implements storage.Store.
func (v *BucketView) Name() string { return "s3" }

// PutAll implements storage.Store.
func (v *BucketView) PutAll(blocks []storage.Block, cl storage.Client, done func(error)) {
	v.store.PutAll(v.bucket, blocks, cl, done)
}

// FetchAll implements storage.Store.
func (v *BucketView) FetchAll(ids []string, cl storage.Client, done func([]storage.Block, error)) {
	v.store.FetchAll(v.bucket, ids, cl, done)
}

// Delete implements storage.Store.
func (v *BucketView) Delete(ids []string) { v.store.Delete(v.bucket, ids) }

// DropHost implements storage.Store; S3 objects survive host loss.
func (v *BucketView) DropHost(string) {}

// Durable implements storage.Store: S3 survives host loss.
func (v *BucketView) Durable() bool { return true }
