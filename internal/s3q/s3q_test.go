package s3q

import (
	"errors"
	"testing"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/storage"
)

func setup(opts Options) (*simclock.Clock, *Store, storage.Client) {
	c := simclock.New(simclock.Epoch)
	n := netsim.New(c)
	s := New(c, n, opts)
	cl := storage.Client{HostID: "h1", Net: []*netsim.Pool{n.NewPool("client", netsim.Mbps(1000))}}
	return c, s, cl
}

func TestPutGetRoundTrip(t *testing.T) {
	c, s, cl := setup(DefaultOptions())
	var got []storage.Block
	s.PutAll("shuffle", []storage.Block{{ID: "k1", Payload: 42, Size: 100}}, cl, func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		s.FetchAll("shuffle", []string{"k1"}, cl, func(bs []storage.Block, err error) {
			if err != nil {
				t.Errorf("get: %v", err)
			}
			got = bs
		})
	})
	c.Run()
	if len(got) != 1 || got[0].Payload != 42 {
		t.Fatalf("got = %+v", got)
	}
}

func TestMissingKey(t *testing.T) {
	c, s, cl := setup(DefaultOptions())
	var gotErr error
	s.FetchAll("b", []string{"nope"}, cl, func(_ []storage.Block, err error) { gotErr = err })
	c.Run()
	if !errors.Is(gotErr, ErrNoSuchKey) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestRequestLatencyCharged(t *testing.T) {
	opts := DefaultOptions()
	c, s, cl := setup(opts)
	var doneAt time.Time
	s.PutAll("b", []storage.Block{{ID: "k", Size: 0}}, cl, func(error) { doneAt = c.Now() })
	c.Run()
	if got := doneAt.Sub(simclock.Epoch); got < opts.PutLatency {
		t.Fatalf("put took %v, want >= %v", got, opts.PutLatency)
	}
}

func TestThrottlingQueuesBigBatches(t *testing.T) {
	opts := DefaultOptions()
	opts.PutPerSec = 100
	c, s, cl := setup(opts)
	var doneAt time.Time
	blocks := make([]storage.Block, 1000) // 10 seconds of PUT quota
	for i := range blocks {
		blocks[i] = storage.Block{ID: string(rune(i)), Size: 1}
	}
	s.PutAll("b", blocks, cl, func(error) { doneAt = c.Now() })
	c.Run()
	got := doneAt.Sub(simclock.Epoch)
	if got < 10*time.Second {
		t.Fatalf("1000 PUTs at 100/s took %v, want >= 10s", got)
	}
}

func TestThrottleSharedAcrossClients(t *testing.T) {
	opts := DefaultOptions()
	opts.GetPerSec = 100
	c, s, cl := setup(opts)
	s.PutAll("b", []storage.Block{{ID: "k", Size: 1}}, cl, func(error) {})
	c.Run()
	start := c.Now()
	// Two clients each issue 500 GETs; the shared gate admits 100/s total.
	var last time.Time
	ids := make([]string, 500)
	for i := range ids {
		ids[i] = "k"
	}
	s.FetchAll("b", ids, cl, func([]storage.Block, error) {})
	s.FetchAll("b", ids, cl, func([]storage.Block, error) { last = c.Now() })
	c.Run()
	if got := last.Sub(start); got < 9*time.Second {
		t.Fatalf("1000 shared GETs took %v, want ~10s", got)
	}
}

func TestThrottleRecoversWhenIdle(t *testing.T) {
	opts := DefaultOptions()
	opts.PutPerSec = 10
	c, s, cl := setup(opts)
	s.PutAll("b", []storage.Block{{ID: "a", Size: 1}}, cl, func(error) {})
	c.Run()
	// After a long idle gap a single put should only pay latency, not queue.
	c.After(time.Minute, func() {
		start := c.Now()
		s.PutAll("b", []storage.Block{{ID: "c", Size: 1}}, cl, func(error) {
			if got := c.Since(start); got > opts.PutLatency+200*time.Millisecond {
				t.Errorf("idle-bucket put took %v", got)
			}
		})
	})
	c.Run()
}

func TestCountsForBilling(t *testing.T) {
	c, s, cl := setup(DefaultOptions())
	s.PutAll("b", []storage.Block{{ID: "x", Size: 1}, {ID: "y", Size: 1}}, cl, func(error) {
		s.FetchAll("b", []string{"x", "y", "x"}, cl, func([]storage.Block, error) {})
	})
	c.Run()
	puts, gets := s.Counts("b")
	if puts != 2 || gets != 3 {
		t.Fatalf("counts = %d puts %d gets", puts, gets)
	}
}

func TestBucketsAreIndependent(t *testing.T) {
	opts := DefaultOptions()
	opts.PutPerSec = 1
	c, s, cl := setup(opts)
	start := c.Now()
	var t1, t2 time.Time
	mk := func(n int) []storage.Block {
		out := make([]storage.Block, n)
		for i := range out {
			out[i] = storage.Block{ID: string(rune('a' + i)), Size: 1}
		}
		return out
	}
	s.PutAll("b1", mk(5), cl, func(error) { t1 = c.Now() })
	s.PutAll("b2", mk(5), cl, func(error) { t2 = c.Now() })
	c.Run()
	// Each bucket has its own 1/s gate: both finish ~5s, not 10s.
	for _, tt := range []time.Time{t1, t2} {
		if d := tt.Sub(start); d > 7*time.Second {
			t.Fatalf("independent buckets interfered: %v", d)
		}
	}
}

func TestDelete(t *testing.T) {
	c, s, cl := setup(DefaultOptions())
	s.PutAll("b", []storage.Block{{ID: "x", Size: 1}}, cl, func(error) {})
	c.Run()
	s.Delete("b", []string{"x"})
	if s.ObjectCount("b") != 0 {
		t.Fatal("object survived delete")
	}
}

func TestBucketViewImplementsStore(t *testing.T) {
	c, s, cl := setup(DefaultOptions())
	var view storage.Store = s.Bucket("shuffle")
	if view.Name() != "s3" {
		t.Fatalf("Name = %q", view.Name())
	}
	ok := false
	view.PutAll([]storage.Block{{ID: "k", Payload: "v", Size: 10}}, cl, func(err error) {
		view.FetchAll([]string{"k"}, cl, func(bs []storage.Block, err error) {
			ok = err == nil && bs[0].Payload == "v"
		})
	})
	c.Run()
	if !ok {
		t.Fatal("round trip through BucketView failed")
	}
	view.DropHost("h1") // must be a no-op
	if s.ObjectCount("shuffle") != 1 {
		t.Fatal("DropHost dropped S3 objects")
	}
	view.Delete([]string{"k"})
	if s.ObjectCount("shuffle") != 0 {
		t.Fatal("Delete via view failed")
	}
}

func TestGateReserveSequence(t *testing.T) {
	g := rateGate{rate: 10}
	now := simclock.Epoch
	if d := g.reserve(now, 10); d != time.Second {
		t.Fatalf("first reserve = %v, want 1s", d)
	}
	if d := g.reserve(now, 10); d != 2*time.Second {
		t.Fatalf("second reserve = %v, want 2s", d)
	}
	// After the backlog drains, reservations start fresh.
	later := now.Add(time.Minute)
	if d := g.reserve(later, 1); d != 100*time.Millisecond {
		t.Fatalf("post-idle reserve = %v, want 100ms", d)
	}
}
