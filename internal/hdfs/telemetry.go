package hdfs

import (
	"splitserve/internal/telemetry"
)

// hdfsInstruments are the filesystem's resolved telemetry handles. On a
// nil hub every handle is nil and each operation is a no-op.
type hdfsInstruments struct {
	bytesWritten *telemetry.Counter
	bytesRead    *telemetry.Counter
	writeSecs    *telemetry.Histogram
	readSecs     *telemetry.Histogram

	opWrite  *telemetry.Counter
	opRead   *telemetry.Counter
	opDelete *telemetry.Counter
	opRename *telemetry.Counter
	opStat   *telemetry.Counter
	opList   *telemetry.Counter
}

// SetTelemetry points the filesystem at a telemetry hub. A nil hub (or
// never calling) leaves it untelemetered.
func (c *Cluster) SetTelemetry(h *telemetry.Hub) {
	op := func(name string) *telemetry.Counter {
		return h.Counter("hdfs_namespace_ops_total", telemetry.L("op", name))
	}
	c.insts = hdfsInstruments{
		bytesWritten: h.Counter("hdfs_bytes_written_total"),
		bytesRead:    h.Counter("hdfs_bytes_read_total"),
		writeSecs:    h.Histogram("hdfs_write_seconds", nil),
		readSecs:     h.Histogram("hdfs_read_seconds", nil),
		opWrite:      op("write"),
		opRead:       op("read"),
		opDelete:     op("delete"),
		opRename:     op("rename"),
		opStat:       op("stat"),
		opList:       op("list"),
	}
}
