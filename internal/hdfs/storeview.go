package hdfs

import "splitserve/internal/storage"

// StoreView adapts the filesystem to the storage.Store contract the shuffle
// layer programs against. Block IDs are used verbatim as HDFS paths (they
// already follow the paper's /shuffle/<app>/<executor>/... layout).
type StoreView struct {
	fs *Cluster
}

var _ storage.Store = (*StoreView)(nil)

// Store returns a storage.Store view of the filesystem.
func (c *Cluster) Store() *StoreView { return &StoreView{fs: c} }

// Name implements storage.Store.
func (v *StoreView) Name() string { return "hdfs" }

// Durable implements storage.Store: HDFS survives executor/host loss.
func (v *StoreView) Durable() bool { return true }

// PutAll implements storage.Store: one task's blocks become separate HDFS
// files written over a single pipelined transfer (one namenode round trip,
// aggregate bytes through the task's path and the datanode pools).
func (v *StoreView) PutAll(blocks []storage.Block, cl storage.Client, done func(error)) {
	if len(blocks) == 0 {
		v.fs.clock.After(0, func() { done(nil) })
		return
	}
	v.fs.WriteBatch(blocks, cl, done)
}

// FetchAll implements storage.Store.
func (v *StoreView) FetchAll(ids []string, cl storage.Client, done func([]storage.Block, error)) {
	v.fs.ReadMany(ids, cl, done)
}

// Delete implements storage.Store.
func (v *StoreView) Delete(ids []string) { v.fs.Delete(ids) }

// DropHost implements storage.Store: HDFS data does not live on executor
// hosts, so nothing is lost.
func (v *StoreView) DropHost(string) {}
