package hdfs

import (
	"fmt"
	"sort"
	"strings"
)

// Namespace operations beyond the shuffle hot path: metadata queries and
// renames, matching the corresponding HDFS client calls. All are
// namenode-only (no data motion, no simulated time beyond the metadata
// latency already charged on the data path).

// FileInfo describes one file.
type FileInfo struct {
	Path     string
	Size     int64
	Blocks   int
	Replicas int // replicas of the first block (uniform in practice)
}

// Stat returns metadata for path.
func (c *Cluster) Stat(path string) (FileInfo, error) {
	c.insts.opStat.Inc()
	f, ok := c.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("stat %s: %w", path, ErrNotFound)
	}
	info := FileInfo{Path: path, Size: f.size, Blocks: len(f.blocks)}
	if len(f.blocks) > 0 {
		info.Replicas = len(f.blocks[0].replicas)
	}
	return info, nil
}

// Rename moves a file to a new path (metadata-only, like HDFS rename).
func (c *Cluster) Rename(from, to string) error {
	c.insts.opRename.Inc()
	f, ok := c.files[from]
	if !ok {
		return fmt.Errorf("rename %s: %w", from, ErrNotFound)
	}
	if _, exists := c.files[to]; exists {
		return fmt.Errorf("rename to %s: %w", to, ErrExists)
	}
	delete(c.files, from)
	f.path = to
	c.files[to] = f
	return nil
}

// RenamePrefix moves every file under fromPrefix to toPrefix (the
// directory-rename idiom used for commit protocols). It returns the number
// of files moved.
func (c *Cluster) RenamePrefix(fromPrefix, toPrefix string) (int, error) {
	c.insts.opRename.Inc()
	var moves []string
	for p := range c.files {
		if strings.HasPrefix(p, fromPrefix) {
			moves = append(moves, p)
		}
	}
	sort.Strings(moves)
	for _, p := range moves {
		target := toPrefix + strings.TrimPrefix(p, fromPrefix)
		if _, exists := c.files[target]; exists {
			return 0, fmt.Errorf("rename to %s: %w", target, ErrExists)
		}
	}
	for _, p := range moves {
		target := toPrefix + strings.TrimPrefix(p, fromPrefix)
		f := c.files[p]
		delete(c.files, p)
		f.path = target
		c.files[target] = f
	}
	return len(moves), nil
}

// TotalBytes returns the logical bytes stored (before replication).
func (c *Cluster) TotalBytes() int64 {
	var total int64
	for _, f := range c.files {
		total += f.size
	}
	return total
}

// DataNodes returns the registered datanodes.
func (c *Cluster) DataNodes() []*DataNode {
	return append([]*DataNode(nil), c.nodes...)
}

// Usage summarises per-datanode stored bytes, sorted by node ID.
func (c *Cluster) Usage() map[string]int64 {
	out := make(map[string]int64, len(c.nodes))
	for _, n := range c.nodes {
		out[n.ID] = n.Used()
	}
	return out
}
