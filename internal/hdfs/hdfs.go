// Package hdfs implements the miniature HDFS that backs SplitServe's
// state-transfer facility: a namenode owning a hierarchical namespace and
// block placement, datanodes whose throughput is their host's (simulated)
// EBS bandwidth, block-level replication with pipelined writes, and
// re-replication when a datanode dies.
//
// The paper colocates a single HDFS node with the Spark master on an
// m4.xlarge (750 Mbps dedicated EBS bandwidth) — the bandwidth bottleneck
// its PageRank discussion revolves around. That deployment is one datanode
// whose pool is the master VM's EBS pool; larger deployments just add
// datanodes.
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/storage"
)

// Namespace and placement errors.
var (
	ErrNotFound   = errors.New("hdfs: no such file")
	ErrExists     = errors.New("hdfs: file exists")
	ErrNoDataNode = errors.New("hdfs: no live datanodes")
	ErrLostBlocks = errors.New("hdfs: file has lost all replicas of a block")
)

// Options configure a Cluster.
type Options struct {
	// BlockSize is the HDFS block size; files larger than this are split
	// across blocks (and thus potentially across datanodes).
	BlockSize int64
	// Replication is the replica count per block.
	Replication int
	// MetaLatency models one namenode RPC.
	MetaLatency time.Duration
}

// DefaultOptions mirror a small HDFS 2.x deployment.
func DefaultOptions() Options {
	return Options{
		BlockSize:   128 << 20,
		Replication: 1, // the paper runs a single HDFS node
		MetaLatency: 500 * time.Microsecond,
	}
}

// DataNode stores block replicas; its I/O shares the host's pools.
type DataNode struct {
	ID    string
	Pools []*netsim.Pool
	alive bool
	used  int64
}

// Alive reports whether the node is serving.
func (d *DataNode) Alive() bool { return d.alive }

// Used returns the bytes currently stored on the node.
func (d *DataNode) Used() int64 { return d.used }

type block struct {
	id       string
	size     int64
	replicas []*DataNode
}

type file struct {
	path    string
	size    int64
	payload any
	blocks  []*block
}

// Cluster is the whole filesystem: namenode state plus datanodes.
type Cluster struct {
	clock *simclock.Clock
	net   *netsim.Network
	opts  Options

	files    map[string]*file
	nodes    []*DataNode
	blockSeq int
	placeRR  int
	insts    hdfsInstruments
	bus      *eventlog.Bus
	eventApp string
}

// SetEventLog attaches an event-log bus: every completed write and read
// emits an hdfs_write / hdfs_read event with its byte count at completion
// time on the virtual clock, tagged app.
func (c *Cluster) SetEventLog(bus *eventlog.Bus, app string) {
	c.bus = bus
	c.eventApp = app
}

func (c *Cluster) emitIO(t eventlog.Type, bytes int64) {
	if c.bus == nil {
		return
	}
	ev := eventlog.Ev(t)
	ev.App = c.eventApp
	ev.Bytes = bytes
	c.bus.Emit(c.clock.Now(), ev)
}

// NewCluster returns an empty filesystem with no datanodes.
func NewCluster(clock *simclock.Clock, net *netsim.Network, opts Options) *Cluster {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultOptions().BlockSize
	}
	if opts.Replication <= 0 {
		opts.Replication = 1
	}
	return &Cluster{
		clock: clock,
		net:   net,
		opts:  opts,
		files: make(map[string]*file),
	}
}

// AddDataNode registers a datanode whose traffic traverses pools (typically
// the hosting VM's EBS pool).
func (c *Cluster) AddDataNode(id string, pools []*netsim.Pool) *DataNode {
	dn := &DataNode{ID: id, Pools: pools, alive: true}
	c.nodes = append(c.nodes, dn)
	return dn
}

// liveNodes returns serving datanodes.
func (c *Cluster) liveNodes() []*DataNode {
	var out []*DataNode
	for _, n := range c.nodes {
		if n.alive {
			out = append(out, n)
		}
	}
	return out
}

// place selects replication-many distinct datanodes, preferring the least
// used, breaking ties round-robin.
func (c *Cluster) place() ([]*DataNode, error) {
	live := c.liveNodes()
	if len(live) == 0 {
		return nil, ErrNoDataNode
	}
	rf := c.opts.Replication
	if rf > len(live) {
		rf = len(live)
	}
	c.placeRR++
	rr := c.placeRR
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].used != live[j].used {
			return live[i].used < live[j].used
		}
		return (i+rr)%len(live) < (j+rr)%len(live)
	})
	return live[:rf], nil
}

// Write creates a file with the given payload and modelled size, charging a
// namenode round trip plus a pipelined transfer through the client's pools
// and every replica's pools. done is called exactly once.
func (c *Cluster) Write(path string, payload any, size int64, cl storage.Client, done func(error)) {
	c.insts.opWrite.Inc()
	begun := c.clock.Now()
	inner := done
	done = func(err error) {
		if err == nil {
			c.insts.bytesWritten.Add(float64(size))
			c.insts.writeSecs.ObserveDuration(c.clock.Since(begun))
			c.emitIO(eventlog.HDFSWrite, size)
		}
		inner(err)
	}
	c.clock.After(c.opts.MetaLatency, func() {
		if _, ok := c.files[path]; ok {
			done(fmt.Errorf("writing %s: %w", path, ErrExists))
			return
		}
		f := &file{path: path, size: size, payload: payload}
		nBlocks := int((size + c.opts.BlockSize - 1) / c.opts.BlockSize)
		if nBlocks == 0 {
			nBlocks = 1
		}
		per := size / int64(nBlocks)
		rem := size - per*int64(nBlocks)
		for i := 0; i < nBlocks; i++ {
			replicas, err := c.place()
			if err != nil {
				done(fmt.Errorf("writing %s: %w", path, err))
				return
			}
			bs := per
			if i == nBlocks-1 {
				bs += rem
			}
			c.blockSeq++
			b := &block{id: fmt.Sprintf("blk_%06d", c.blockSeq), size: bs, replicas: replicas}
			for _, r := range replicas {
				r.used += bs
			}
			f.blocks = append(f.blocks, b)
		}
		c.files[path] = f
		// Pipelined write: the same bytes pass through the client path and
		// every replica's path; the bottleneck link paces the pipeline.
		pools := append([]*netsim.Pool(nil), cl.Net...)
		seen := map[*netsim.Pool]bool{}
		for _, p := range pools {
			seen[p] = true
		}
		for _, b := range f.blocks {
			for _, r := range b.replicas {
				for _, p := range r.Pools {
					if !seen[p] {
						seen[p] = true
						pools = append(pools, p)
					}
				}
			}
		}
		c.net.StartFlow(float64(size), cl.RateCap, pools, func() { done(nil) })
	})
}

// WriteBatch creates several files with one namenode round trip and a
// single pipelined transfer of their total bytes — how a shuffle map task
// writes its per-reducer files (sequentially over one connection). done is
// called exactly once.
func (c *Cluster) WriteBatch(files []storage.Block, cl storage.Client, done func(error)) {
	c.insts.opWrite.Inc()
	begun := c.clock.Now()
	var batchBytes int64
	for _, blk := range files {
		batchBytes += blk.Size
	}
	inner := done
	done = func(err error) {
		if err == nil {
			c.insts.bytesWritten.Add(float64(batchBytes))
			c.insts.writeSecs.ObserveDuration(c.clock.Since(begun))
			c.emitIO(eventlog.HDFSWrite, batchBytes)
		}
		inner(err)
	}
	c.clock.After(c.opts.MetaLatency, func() {
		var total int64
		pools := append([]*netsim.Pool(nil), cl.Net...)
		seen := map[*netsim.Pool]bool{}
		for _, p := range pools {
			seen[p] = true
		}
		for _, blk := range files {
			if _, ok := c.files[blk.ID]; ok {
				done(fmt.Errorf("writing %s: %w", blk.ID, ErrExists))
				return
			}
		}
		for _, blk := range files {
			f := &file{path: blk.ID, size: blk.Size, payload: blk.Payload}
			replicas, err := c.place()
			if err != nil {
				done(fmt.Errorf("writing %s: %w", blk.ID, err))
				return
			}
			c.blockSeq++
			b := &block{id: fmt.Sprintf("blk_%06d", c.blockSeq), size: blk.Size, replicas: replicas}
			for _, r := range replicas {
				r.used += blk.Size
				for _, p := range r.Pools {
					if !seen[p] {
						seen[p] = true
						pools = append(pools, p)
					}
				}
			}
			f.blocks = append(f.blocks, b)
			c.files[blk.ID] = f
			total += blk.Size
		}
		c.net.StartFlow(float64(total), cl.RateCap, pools, func() { done(nil) })
	})
}

// readPlan returns, for a file, the bytes to pull from each chosen replica
// node. It returns ErrLostBlocks if any block has no live replica.
func (c *Cluster) readPlan(f *file, perNode map[*DataNode]int64) error {
	for _, b := range f.blocks {
		var chosen *DataNode
		for _, r := range b.replicas {
			if !r.alive {
				continue
			}
			if chosen == nil || perNode[r] < perNode[chosen] {
				chosen = r
			}
		}
		if chosen == nil {
			return fmt.Errorf("%s: %w", f.path, ErrLostBlocks)
		}
		perNode[chosen] += b.size
	}
	return nil
}

// Read fetches one file.
func (c *Cluster) Read(path string, cl storage.Client, done func(any, int64, error)) {
	c.ReadMany([]string{path}, cl, func(bs []storage.Block, err error) {
		if err != nil {
			done(nil, 0, err)
			return
		}
		done(bs[0].Payload, bs[0].Size, nil)
	})
}

// ReadMany fetches several files with one namenode round trip and one
// coalesced flow per source datanode — how the engine's shuffle reader
// consumes map outputs.
func (c *Cluster) ReadMany(paths []string, cl storage.Client, done func([]storage.Block, error)) {
	c.insts.opRead.Inc()
	begun := c.clock.Now()
	inner := done
	done = func(bs []storage.Block, err error) {
		if err == nil {
			var total int64
			for _, b := range bs {
				total += b.Size
			}
			c.insts.bytesRead.Add(float64(total))
			c.insts.readSecs.ObserveDuration(c.clock.Since(begun))
			c.emitIO(eventlog.HDFSRead, total)
		}
		inner(bs, err)
	}
	c.clock.After(c.opts.MetaLatency, func() {
		out := make([]storage.Block, len(paths))
		perNode := make(map[*DataNode]int64)
		for i, path := range paths {
			f, ok := c.files[path]
			if !ok {
				done(nil, fmt.Errorf("reading %s: %w", path, ErrNotFound))
				return
			}
			if err := c.readPlan(f, perNode); err != nil {
				done(nil, err)
				return
			}
			out[i] = storage.Block{ID: path, Payload: f.payload, Size: f.size}
		}
		if len(perNode) == 0 {
			done(out, nil)
			return
		}
		pending := len(perNode)
		nodes := make([]*DataNode, 0, len(perNode))
		for node := range perNode {
			nodes = append(nodes, node)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, node := range nodes {
			pools := append(append([]*netsim.Pool(nil), cl.Net...), node.Pools...)
			c.net.StartFlow(float64(perNode[node]), cl.RateCap, pools, func() {
				pending--
				if pending == 0 {
					done(out, nil)
				}
			})
		}
	})
}

// Delete removes files immediately (metadata-only, as block reclamation is
// asynchronous in HDFS).
func (c *Cluster) Delete(paths []string) {
	c.insts.opDelete.Inc()
	for _, p := range paths {
		if f, ok := c.files[p]; ok {
			for _, b := range f.blocks {
				for _, r := range b.replicas {
					r.used -= b.size
				}
			}
			delete(c.files, p)
		}
	}
}

// DeletePrefix removes every file under a path prefix and returns the
// count (used to reclaim an application's shuffle directory).
func (c *Cluster) DeletePrefix(prefix string) int {
	var victims []string
	for p := range c.files {
		if strings.HasPrefix(p, prefix) {
			victims = append(victims, p)
		}
	}
	c.Delete(victims)
	return len(victims)
}

// Exists reports whether path is a file.
func (c *Cluster) Exists(path string) bool {
	_, ok := c.files[path]
	return ok
}

// List returns the files under prefix, sorted.
func (c *Cluster) List(prefix string) []string {
	c.insts.opList.Inc()
	var out []string
	for p := range c.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// FileCount returns the number of files.
func (c *Cluster) FileCount() int { return len(c.files) }

// KillDataNode marks a node dead and triggers re-replication of its blocks
// from surviving replicas where possible. Returns the number of blocks that
// lost their last replica.
func (c *Cluster) KillDataNode(id string) int {
	var dead *DataNode
	for _, n := range c.nodes {
		if n.ID == id {
			dead = n
			break
		}
	}
	if dead == nil || !dead.alive {
		return 0
	}
	dead.alive = false
	lost := 0
	for _, f := range c.files {
		for _, b := range f.blocks {
			hasDead := false
			var live []*DataNode
			for _, r := range b.replicas {
				if r == dead {
					hasDead = true
				} else if r.alive {
					live = append(live, r)
				}
			}
			if !hasDead {
				continue
			}
			if len(live) == 0 {
				lost++
				continue
			}
			c.reReplicate(f, b, live)
		}
	}
	return lost
}

// reReplicate copies a block from a surviving replica to a fresh node,
// charging a background flow between the two nodes' pools.
func (c *Cluster) reReplicate(f *file, b *block, live []*DataNode) {
	candidates := c.liveNodes()
	var target *DataNode
	for _, n := range candidates {
		already := false
		for _, r := range b.replicas {
			if r == n && r.alive {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if target == nil || n.used < target.used {
			target = n
		}
	}
	if target == nil {
		return // nowhere to copy; the surviving replicas must suffice
	}
	src := live[0]
	pools := append(append([]*netsim.Pool(nil), src.Pools...), target.Pools...)
	size := b.size
	c.net.StartFlow(float64(size), 0, pools, func() {
		if !target.alive {
			return
		}
		b.replicas = append(b.replicas, target)
		target.used += size
	})
	_ = f
}
