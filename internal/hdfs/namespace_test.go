package hdfs

import (
	"errors"
	"testing"
)

func writeFile(t *testing.T, f *fixture, path string, size int64) {
	t.Helper()
	f.fs.Write(path, nil, size, f.cl, func(err error) {
		if err != nil {
			t.Errorf("write %s: %v", path, err)
		}
	})
	f.clock.Run()
}

func TestStat(t *testing.T) {
	f := newFixture(DefaultOptions())
	writeFile(t, f, "/a/b", 1234)
	info, err := f.fs.Stat("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 1234 || info.Blocks != 1 || info.Replicas != 1 {
		t.Fatalf("info = %+v", info)
	}
	if _, err := f.fs.Stat("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat missing: %v", err)
	}
}

func TestRename(t *testing.T) {
	f := newFixture(DefaultOptions())
	writeFile(t, f, "/tmp/part-0", 100)
	if err := f.fs.Rename("/tmp/part-0", "/out/part-0"); err != nil {
		t.Fatal(err)
	}
	if f.fs.Exists("/tmp/part-0") || !f.fs.Exists("/out/part-0") {
		t.Fatal("rename did not move the file")
	}
	if err := f.fs.Rename("/nope", "/x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
	writeFile(t, f, "/occupied", 10)
	writeFile(t, f, "/src", 10)
	if err := f.fs.Rename("/src", "/occupied"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
}

func TestRenamePrefixCommitIdiom(t *testing.T) {
	f := newFixture(DefaultOptions())
	writeFile(t, f, "/job/_temporary/part-0", 10)
	writeFile(t, f, "/job/_temporary/part-1", 10)
	writeFile(t, f, "/job/other", 10)
	n, err := f.fs.RenamePrefix("/job/_temporary/", "/job/committed/")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("moved %d, want 2", n)
	}
	if !f.fs.Exists("/job/committed/part-0") || !f.fs.Exists("/job/committed/part-1") {
		t.Fatal("commit rename incomplete")
	}
	if !f.fs.Exists("/job/other") {
		t.Fatal("unrelated file moved")
	}
	// Collision rolls back by refusing up front.
	writeFile(t, f, "/dst/x", 10)
	writeFile(t, f, "/src2/x", 10)
	if _, err := f.fs.RenamePrefix("/src2/", "/dst/"); !errors.Is(err, ErrExists) {
		t.Fatalf("prefix rename onto existing: %v", err)
	}
	if !f.fs.Exists("/src2/x") {
		t.Fatal("failed prefix rename mutated namespace")
	}
}

func TestTotalBytesAndUsage(t *testing.T) {
	f := newFixture(DefaultOptions())
	writeFile(t, f, "/a", 100)
	writeFile(t, f, "/b", 200)
	if got := f.fs.TotalBytes(); got != 300 {
		t.Fatalf("TotalBytes = %d", got)
	}
	usage := f.fs.Usage()
	var sum int64
	for _, v := range usage {
		sum += v
	}
	if sum != 300 {
		t.Fatalf("usage sums to %d", sum)
	}
	if len(f.fs.DataNodes()) != 1 {
		t.Fatalf("datanodes = %d", len(f.fs.DataNodes()))
	}
}

func TestStatAfterRenameKeepsBlocks(t *testing.T) {
	opts := DefaultOptions()
	opts.BlockSize = 64
	f := newFixture(opts)
	writeFile(t, f, "/big", 200) // 4 blocks
	if err := f.fs.Rename("/big", "/bigger"); err != nil {
		t.Fatal(err)
	}
	info, err := f.fs.Stat("/bigger")
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocks != 4 || info.Size != 200 {
		t.Fatalf("info = %+v", info)
	}
}
