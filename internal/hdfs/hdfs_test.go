package hdfs

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/storage"
)

type fixture struct {
	clock *simclock.Clock
	net   *netsim.Network
	fs    *Cluster
	ebs   *netsim.Pool
	cl    storage.Client
}

func newFixture(opts Options) *fixture {
	c := simclock.New(simclock.Epoch)
	n := netsim.New(c)
	fs := NewCluster(c, n, opts)
	ebs := n.NewPool("dn-ebs", netsim.Mbps(750))
	fs.AddDataNode("dn1", []*netsim.Pool{ebs})
	client := n.NewPool("client", netsim.Mbps(2000))
	return &fixture{
		clock: c, net: n, fs: fs, ebs: ebs,
		cl: storage.Client{HostID: "exec-1", Net: []*netsim.Pool{client}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFixture(DefaultOptions())
	var got any
	f.fs.Write("/shuffle/app/exec-1/part0", []int{1, 2, 3}, 1<<20, f.cl, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		f.fs.Read("/shuffle/app/exec-1/part0", f.cl, func(p any, size int64, err error) {
			if err != nil || size != 1<<20 {
				t.Errorf("read: %v size=%d", err, size)
			}
			got = p
		})
	})
	f.clock.Run()
	ints, ok := got.([]int)
	if !ok || len(ints) != 3 {
		t.Fatalf("payload = %#v", got)
	}
}

func TestWriteChargesBottleneckBandwidth(t *testing.T) {
	f := newFixture(DefaultOptions())
	var doneAt time.Time
	size := int64(netsim.Mbps(750)) * 10 // 10 seconds at EBS speed
	f.fs.Write("/f", nil, size, f.cl, func(error) { doneAt = f.clock.Now() })
	f.clock.Run()
	want := simclock.Epoch.Add(10*time.Second + DefaultOptions().MetaLatency)
	if doneAt != want {
		t.Fatalf("write finished at %v, want %v", doneAt.Sub(simclock.Epoch), want.Sub(simclock.Epoch))
	}
}

func TestDuplicateWriteFails(t *testing.T) {
	f := newFixture(DefaultOptions())
	var gotErr error
	f.fs.Write("/f", nil, 10, f.cl, func(error) {
		f.fs.Write("/f", nil, 10, f.cl, func(err error) { gotErr = err })
	})
	f.clock.Run()
	if !errors.Is(gotErr, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", gotErr)
	}
}

func TestReadMissingFile(t *testing.T) {
	f := newFixture(DefaultOptions())
	var gotErr error
	f.fs.Read("/nope", f.cl, func(_ any, _ int64, err error) { gotErr = err })
	f.clock.Run()
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", gotErr)
	}
}

func TestNoDataNodes(t *testing.T) {
	c := simclock.New(simclock.Epoch)
	n := netsim.New(c)
	fs := NewCluster(c, n, DefaultOptions())
	pool := n.NewPool("client", 1000)
	cl := storage.Client{HostID: "x", Net: []*netsim.Pool{pool}}
	var gotErr error
	fs.Write("/f", nil, 10, cl, func(err error) { gotErr = err })
	c.Run()
	if !errors.Is(gotErr, ErrNoDataNode) {
		t.Fatalf("err = %v, want ErrNoDataNode", gotErr)
	}
}

func TestLargeFileSplitsAcrossBlocks(t *testing.T) {
	opts := DefaultOptions()
	opts.BlockSize = 1 << 20
	f := newFixture(opts)
	f.fs.Write("/big", nil, 5<<20, f.cl, func(error) {})
	f.clock.Run()
	file := f.fs.files["/big"]
	if len(file.blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(file.blocks))
	}
	var total int64
	for _, b := range file.blocks {
		total += b.size
	}
	if total != 5<<20 {
		t.Fatalf("block sizes sum to %d", total)
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	opts := DefaultOptions()
	f := newFixture(opts)
	ebs2 := f.net.NewPool("dn2-ebs", netsim.Mbps(750))
	f.fs.AddDataNode("dn2", []*netsim.Pool{ebs2})
	for i := 0; i < 10; i++ {
		f.fs.Write(f.fs.pathFor(i), nil, 100, f.cl, func(error) {})
	}
	f.clock.Run()
	var used []int64
	for _, n := range f.fs.nodes {
		used = append(used, n.Used())
	}
	if used[0] == 0 || used[1] == 0 {
		t.Fatalf("placement left a node empty: %v", used)
	}
}

// pathFor is a tiny test helper on Cluster.
func (c *Cluster) pathFor(i int) string {
	return "/f" + string(rune('a'+i))
}

func TestReplicationSurvivesNodeDeath(t *testing.T) {
	opts := DefaultOptions()
	opts.Replication = 2
	f := newFixture(opts)
	ebs2 := f.net.NewPool("dn2-ebs", netsim.Mbps(750))
	f.fs.AddDataNode("dn2", []*netsim.Pool{ebs2})
	f.fs.Write("/f", "payload", 1000, f.cl, func(error) {})
	f.clock.Run()
	lost := f.fs.KillDataNode("dn1")
	if lost != 0 {
		t.Fatalf("lost %d blocks despite RF=2", lost)
	}
	var got any
	f.fs.Read("/f", f.cl, func(p any, _ int64, err error) {
		if err != nil {
			t.Errorf("read after node death: %v", err)
		}
		got = p
	})
	f.clock.Run()
	if got != "payload" {
		t.Fatalf("payload = %v", got)
	}
}

func TestSingleReplicaLostOnNodeDeath(t *testing.T) {
	f := newFixture(DefaultOptions()) // RF=1
	f.fs.Write("/f", nil, 1000, f.cl, func(error) {})
	f.clock.Run()
	lost := f.fs.KillDataNode("dn1")
	if lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
	var gotErr error
	f.fs.Read("/f", f.cl, func(_ any, _ int64, err error) { gotErr = err })
	f.clock.Run()
	if !errors.Is(gotErr, ErrLostBlocks) {
		t.Fatalf("err = %v, want ErrLostBlocks", gotErr)
	}
}

func TestReReplicationRestoresRF(t *testing.T) {
	opts := DefaultOptions()
	opts.Replication = 2
	f := newFixture(opts)
	for i := 2; i <= 3; i++ {
		p := f.net.NewPool("dn-ebs-x", netsim.Mbps(750))
		f.fs.AddDataNode(f.fs.pathFor(i), []*netsim.Pool{p})
	}
	f.fs.Write("/f", nil, 1000, f.cl, func(error) {})
	f.clock.Run()
	f.fs.KillDataNode("dn1")
	f.clock.Run() // lets re-replication flows finish
	file := f.fs.files["/f"]
	for _, b := range file.blocks {
		live := 0
		for _, r := range b.replicas {
			if r.Alive() {
				live++
			}
		}
		if live < 2 {
			t.Fatalf("block has %d live replicas after re-replication", live)
		}
	}
}

func TestDeletePrefix(t *testing.T) {
	f := newFixture(DefaultOptions())
	f.fs.Write("/shuffle/app1/a", nil, 100, f.cl, func(error) {})
	f.fs.Write("/shuffle/app1/b", nil, 100, f.cl, func(error) {})
	f.fs.Write("/shuffle/app2/c", nil, 100, f.cl, func(error) {})
	f.clock.Run()
	if n := f.fs.DeletePrefix("/shuffle/app1/"); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if !f.fs.Exists("/shuffle/app2/c") {
		t.Fatal("unrelated file deleted")
	}
	if got := f.fs.List("/shuffle/"); len(got) != 1 {
		t.Fatalf("List = %v", got)
	}
}

func TestDeleteReclaimsUsage(t *testing.T) {
	f := newFixture(DefaultOptions())
	f.fs.Write("/f", nil, 1000, f.cl, func(error) {})
	f.clock.Run()
	f.fs.Delete([]string{"/f"})
	for _, n := range f.fs.nodes {
		if n.Used() != 0 {
			t.Fatalf("node usage = %d after delete", n.Used())
		}
	}
}

func TestReadManyCoalesces(t *testing.T) {
	f := newFixture(DefaultOptions())
	sz := int64(netsim.Mbps(750)) // 1 second of EBS each
	f.fs.Write("/a", nil, sz, f.cl, func(error) {})
	f.fs.Write("/b", nil, sz, f.cl, func(error) {})
	f.clock.Run()
	start := f.clock.Now()
	var doneAt time.Time
	f.fs.ReadMany([]string{"/a", "/b"}, f.cl, func(bs []storage.Block, err error) {
		if err != nil || len(bs) != 2 {
			t.Errorf("ReadMany: %v %d", err, len(bs))
		}
		doneAt = f.clock.Now()
	})
	f.clock.Run()
	got := doneAt.Sub(start)
	want := 2*time.Second + DefaultOptions().MetaLatency
	if got != want {
		t.Fatalf("ReadMany took %v, want %v", got, want)
	}
}

func TestConcurrentReadersShareEBS(t *testing.T) {
	f := newFixture(DefaultOptions())
	sz := int64(netsim.Mbps(750)) // 1s alone
	f.fs.Write("/a", nil, sz, f.cl, func(error) {})
	f.fs.Write("/b", nil, sz, f.cl, func(error) {})
	f.clock.Run()
	start := f.clock.Now()
	cl2 := storage.Client{HostID: "exec-2", Net: []*netsim.Pool{f.net.NewPool("c2", netsim.Mbps(2000))}}
	var t1, t2 time.Time
	f.fs.Read("/a", f.cl, func(any, int64, error) { t1 = f.clock.Now() })
	f.fs.Read("/b", cl2, func(any, int64, error) { t2 = f.clock.Now() })
	f.clock.Run()
	// Both readers share the 750 Mbps EBS: each takes ~2s, not 1s.
	for _, tt := range []time.Time{t1, t2} {
		d := tt.Sub(start)
		if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
			t.Fatalf("shared read took %v, want ~2s", d)
		}
	}
}

// Property: after any sequence of writes and deletes, per-node usage equals
// the sum of live block sizes and never goes negative.
func TestQuickUsageAccounting(t *testing.T) {
	prop := func(seed uint64, ops []uint16) bool {
		rng := simrand.New(seed)
		f := newFixture(DefaultOptions())
		var paths []string
		for i, op := range ops {
			if len(ops) > 60 {
				return true
			}
			if op%3 != 0 || len(paths) == 0 {
				p := "/q" + string(rune('A'+i%26)) + string(rune('a'+rng.Intn(26)))
				if f.fs.Exists(p) {
					continue
				}
				f.fs.Write(p, nil, int64(op)+1, f.cl, func(error) {})
				paths = append(paths, p)
			} else {
				idx := rng.Intn(len(paths))
				f.fs.Delete([]string{paths[idx]})
				paths = append(paths[:idx], paths[idx+1:]...)
			}
			f.clock.Run()
		}
		var want int64
		for _, file := range f.fs.files {
			for _, b := range file.blocks {
				want += b.size * int64(len(b.replicas))
			}
		}
		var got int64
		for _, n := range f.fs.nodes {
			if n.Used() < 0 {
				return false
			}
			got += n.Used()
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
