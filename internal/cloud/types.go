// Package cloud simulates the IaaS and FaaS substrates the paper runs on:
// EC2 m4-family instances with boot delays and per-type EBS/network
// bandwidth, and a Lambda platform with warm/cold starts, a 15-minute
// lifetime cap, 512 MB of /tmp, memory-proportional CPU share and egress
// bandwidth, and no inbound connectivity (Lambdas can open connections but
// cannot accept them — the property that forces the paper's external
// shuffle store).
package cloud

import (
	"fmt"
	"time"
)

// VMType describes an EC2 instance type. Bandwidths are in Mbps as AWS
// documents them; use netsim.Mbps to convert.
type VMType struct {
	Name         string
	VCPUs        int
	MemGiB       float64
	EBSMbps      float64
	NetMbps      float64
	PricePerHour float64
}

// The m4 family as provisioned in the paper's experiments.
var (
	M4Large = VMType{
		Name: "m4.large", VCPUs: 2, MemGiB: 8,
		EBSMbps: 450, NetMbps: 450, PricePerHour: 0.10,
	}
	M4XLarge = VMType{
		Name: "m4.xlarge", VCPUs: 4, MemGiB: 16,
		EBSMbps: 750, NetMbps: 750, PricePerHour: 0.20,
	}
	M42XLarge = VMType{
		Name: "m4.2xlarge", VCPUs: 8, MemGiB: 32,
		EBSMbps: 1000, NetMbps: 1000, PricePerHour: 0.40,
	}
	M44XLarge = VMType{
		Name: "m4.4xlarge", VCPUs: 16, MemGiB: 64,
		EBSMbps: 2000, NetMbps: 2000, PricePerHour: 0.80,
	}
	M410XLarge = VMType{
		Name: "m4.10xlarge", VCPUs: 40, MemGiB: 160,
		EBSMbps: 4000, NetMbps: 10000, PricePerHour: 2.00,
	}
	M416XLarge = VMType{
		Name: "m4.16xlarge", VCPUs: 64, MemGiB: 256,
		EBSMbps: 10000, NetMbps: 25000, PricePerHour: 3.20,
	}
)

// M4Family lists the m4 catalogue smallest-first.
var M4Family = []VMType{M4Large, M4XLarge, M42XLarge, M44XLarge, M410XLarge, M416XLarge}

// SmallestFor returns the fewest, largest-type instances providing at least
// cores vCPUs, matching the paper's profiling methodology ("for each degree
// of parallelism, we use the fewest number of instances that provide the
// required number of cores"). It returns the chosen type and the instance
// count.
func SmallestFor(cores int) (VMType, int) {
	if cores <= 0 {
		panic("cloud: non-positive core count")
	}
	for _, t := range M4Family {
		if t.VCPUs >= cores {
			return t, 1
		}
	}
	biggest := M4Family[len(M4Family)-1]
	n := (cores + biggest.VCPUs - 1) / biggest.VCPUs
	return biggest, n
}

// LambdaLimits mirrors the 2020 AWS Lambda platform limits the paper
// enumerates in Section 3.
type LambdaLimits struct {
	MinMemoryMB   int
	MaxMemoryMB   int
	MemPerVCPUMB  int // 1 vCPU per 1.5 GB
	TmpBytes      int64
	MaxLifetime   time.Duration
	WarmKeepAlive time.Duration // provider keeps dormant environments ~90 min
}

// DefaultLambdaLimits are the limits as of the paper's writing.
func DefaultLambdaLimits() LambdaLimits {
	return LambdaLimits{
		MinMemoryMB:   128,
		MaxMemoryMB:   3008,
		MemPerVCPUMB:  1536,
		TmpBytes:      512 << 20,
		MaxLifetime:   15 * time.Minute,
		WarmKeepAlive: 90 * time.Minute,
	}
}

// LambdaConfig is a tenant-chosen function configuration.
type LambdaConfig struct {
	MemoryMB int
}

// Validate checks the configuration against the platform limits.
func (c LambdaConfig) Validate(lim LambdaLimits) error {
	if c.MemoryMB < lim.MinMemoryMB || c.MemoryMB > lim.MaxMemoryMB {
		return fmt.Errorf("cloud: lambda memory %d MB outside [%d, %d]",
			c.MemoryMB, lim.MinMemoryMB, lim.MaxMemoryMB)
	}
	return nil
}

// CPUShare returns the fraction of one vCPU the function receives
// (1 vCPU per 1536 MB, capped at 2 vCPUs at the top of the range).
func (c LambdaConfig) CPUShare(lim LambdaLimits) float64 {
	share := float64(c.MemoryMB) / float64(lim.MemPerVCPUMB)
	if share > 2 {
		share = 2
	}
	return share
}

// EgressMbps models the memory-proportional, modest network bandwidth of a
// Lambda environment (gg [19] measured up to ~600 Mbps at the top memory
// size, "with variable performance"; bandwidth grows with memory). At
// 1536 MB this yields ~180 Mbps.
func (c LambdaConfig) EgressMbps() float64 {
	return 40 + 280*float64(c.MemoryMB)/3008
}
