package cloud

import (
	"fmt"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/telemetry"
	"splitserve/internal/warmpool"
)

// VMState enumerates the lifecycle of an instance.
type VMState int

// VM lifecycle states.
const (
	VMPending VMState = iota + 1
	VMReady
	VMTerminated
)

func (s VMState) String() string {
	switch s {
	case VMPending:
		return "pending"
	case VMReady:
		return "ready"
	case VMTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// VM is a provisioned instance. Its EBS and NIC are netsim pools shared by
// everything running on the instance.
type VM struct {
	ID          string
	Type        VMType
	State       VMState
	RequestedAt time.Time
	ReadyAt     time.Time
	EndedAt     time.Time
	EBS         *netsim.Pool
	NIC         *netsim.Pool

	bootSpan *telemetry.Span
}

// Uptime returns how long the VM has been (or was) billable: from request
// until termination or now.
func (v *VM) Uptime(now time.Time) time.Duration {
	end := now
	if v.State == VMTerminated {
		end = v.EndedAt
	}
	if end.Before(v.RequestedAt) {
		return 0
	}
	return end.Sub(v.RequestedAt)
}

// LambdaState enumerates the lifecycle of a function invocation.
type LambdaState int

// Lambda lifecycle states.
const (
	LambdaStarting LambdaState = iota + 1
	LambdaRunning
	LambdaFinished // tenant code returned
	LambdaExpired  // killed by the platform at the lifetime cap
)

func (s LambdaState) String() string {
	switch s {
	case LambdaStarting:
		return "starting"
	case LambdaRunning:
		return "running"
	case LambdaFinished:
		return "finished"
	case LambdaExpired:
		return "expired"
	default:
		return fmt.Sprintf("LambdaState(%d)", int(s))
	}
}

// Lambda is one function invocation.
type Lambda struct {
	ID        string
	Config    LambdaConfig
	State     LambdaState
	ColdStart bool
	// Provisioned marks an invocation hosted on a provisioned-concurrency
	// environment (InvokeProvisioned): it always starts warm and its
	// environment belongs to a warmpool.Pool rather than the ambient
	// warm-reuse accounting.
	Provisioned bool
	InvokedAt   time.Time
	ReadyAt   time.Time
	EndedAt   time.Time
	// Egress is the invocation's private uplink pool (Lambdas do not share
	// a NIC with co-tenants in our model; their bandwidth cap is the
	// memory-proportional egress limit).
	Egress *netsim.Pool

	expiry    *simclock.Timer
	onKill    func(*Lambda)
	startSpan *telemetry.Span
	lifeSpan  *telemetry.Span
}

// BilledDuration returns the runtime used for billing: ready (or invoked,
// for cold starts AWS bills init separately; we fold it in conservatively)
// to end.
func (l *Lambda) BilledDuration(now time.Time) time.Duration {
	end := now
	if l.State == LambdaFinished || l.State == LambdaExpired {
		end = l.EndedAt
	}
	start := l.InvokedAt
	if end.Before(start) {
		return 0
	}
	return end.Sub(start)
}

// Options configure a Provider.
type Options struct {
	// VMBootMean/VMBootStdDev parameterise the instance start-up delay
	// ("an AWS VM may take up to 2 minutes or more").
	VMBootMean   time.Duration
	VMBootStdDev time.Duration
	// WarmStart and ColdStart are Lambda launch latencies (~100 ms warm).
	WarmStart time.Duration
	ColdStart time.Duration
	// WarmPoolSize is how many pre-warmed environments exist per
	// configuration at simulation start (0 = everything cold).
	WarmPoolSize int
	// Limits are the platform limits.
	Limits LambdaLimits
}

// DefaultOptions returns the paper-calibrated defaults.
func DefaultOptions() Options {
	return Options{
		VMBootMean:   110 * time.Second,
		VMBootStdDev: 10 * time.Second,
		WarmStart:    100 * time.Millisecond,
		ColdStart:    8 * time.Second,
		WarmPoolSize: 1024,
		Limits:       DefaultLambdaLimits(),
	}
}

// Provider simulates the cloud control plane: VM provisioning and Lambda
// invocation on the simulation clock.
type Provider struct {
	clock *simclock.Clock
	net   *netsim.Network
	rng   *simrand.RNG
	opts  Options

	vmSeq     int
	lambdaSeq int
	// warm is the single source of truth for ambient warm-environment
	// availability (memoryMB -> count), shared bookkeeping with the
	// provisioned-concurrency layer in internal/warmpool.
	warm *warmpool.Accounting
	vms  []*VM
	lambdas   []*Lambda
	insts     providerInstruments
	bus       *eventlog.Bus
}

// SetEventLog attaches an event-log bus; the provider emits control-plane
// events (vm_request/vm_ready, lambda_invoke/lambda_ready/lambda_release)
// with no app tag — the control plane is shared across jobs.
func (p *Provider) SetEventLog(bus *eventlog.Bus) { p.bus = bus }

func (p *Provider) emit(t eventlog.Type, exec, kind, note string) {
	if p.bus == nil {
		return
	}
	ev := eventlog.Ev(t)
	ev.Exec = exec
	ev.Kind = kind
	ev.Note = note
	p.bus.Emit(p.clock.Now(), ev)
}

// NewProvider returns a Provider driven by clock and net.
func NewProvider(clock *simclock.Clock, net *netsim.Network, rng *simrand.RNG, opts Options) *Provider {
	if opts.Limits == (LambdaLimits{}) {
		opts.Limits = DefaultLambdaLimits()
	}
	return &Provider{
		clock: clock,
		net:   net,
		rng:   rng,
		opts:  opts,
		warm:  warmpool.NewAccounting(opts.WarmPoolSize),
	}
}

// Clock exposes the provider's clock.
func (p *Provider) Clock() *simclock.Clock { return p.clock }

// Network exposes the provider's flow simulator.
func (p *Provider) Network() *netsim.Network { return p.net }

// Limits returns the Lambda platform limits in force.
func (p *Provider) Limits() LambdaLimits { return p.opts.Limits }

// VMs returns all instances ever requested (for billing and inspection).
func (p *Provider) VMs() []*VM { return append([]*VM(nil), p.vms...) }

// Lambdas returns all invocations ever made.
func (p *Provider) Lambdas() []*Lambda { return append([]*Lambda(nil), p.lambdas...) }

// BootDelay samples one VM boot delay.
func (p *Provider) BootDelay() time.Duration {
	d := p.rng.TruncNormal(
		p.opts.VMBootMean.Seconds(),
		p.opts.VMBootStdDev.Seconds(),
		p.opts.VMBootMean.Seconds()/4,
		p.opts.VMBootMean.Seconds()*3,
	)
	return time.Duration(d * float64(time.Second))
}

// NominalVMStartup is the expected boot delay — what the segueing facility
// compares a job's SLO against.
func (p *Provider) NominalVMStartup() time.Duration { return p.opts.VMBootMean }

// RequestVM asynchronously provisions an instance; ready runs when it
// boots. Pass bootOverride > 0 to pin the delay (used by experiments that
// fix when capacity appears, e.g. Figure 7's segue at 45 s).
func (p *Provider) RequestVM(t VMType, bootOverride time.Duration, ready func(*VM)) *VM {
	p.vmSeq++
	vm := &VM{
		ID:          fmt.Sprintf("vm-%03d-%s", p.vmSeq, t.Name),
		Type:        t,
		State:       VMPending,
		RequestedAt: p.clock.Now(),
		EBS:         p.net.NewPool(fmt.Sprintf("vm-%03d/ebs", p.vmSeq), netsim.Mbps(t.EBSMbps)),
		NIC:         p.net.NewPool(fmt.Sprintf("vm-%03d/nic", p.vmSeq), netsim.Mbps(t.NetMbps)),
	}
	p.vms = append(p.vms, vm)
	p.insts.vmRequests.Inc()
	p.insts.vmsPending.Inc()
	p.emit(eventlog.VMRequest, vm.ID, "vm", t.Name)
	vm.bootSpan = p.tracer().StartSpan("cloud", "vm_boot", telemetry.L("vm", vm.ID))
	delay := bootOverride
	if delay <= 0 {
		delay = p.BootDelay()
	}
	p.clock.After(delay, func() {
		if vm.State != VMPending {
			return
		}
		vm.State = VMReady
		vm.ReadyAt = p.clock.Now()
		p.insts.vmsPending.Dec()
		p.insts.vmsLive.Inc()
		p.insts.vmBoot.ObserveDuration(vm.ReadyAt.Sub(vm.RequestedAt))
		p.emit(eventlog.VMReady, vm.ID, "vm", t.Name)
		vm.bootSpan.End()
		if ready != nil {
			ready(vm)
		}
	})
	return vm
}

// ProvisionReadyVM returns an instance that is already running when the
// simulation starts — the pre-existing cluster capacity in every scenario.
func (p *Provider) ProvisionReadyVM(t VMType) *VM {
	p.vmSeq++
	vm := &VM{
		ID:          fmt.Sprintf("vm-%03d-%s", p.vmSeq, t.Name),
		Type:        t,
		State:       VMReady,
		RequestedAt: p.clock.Now(),
		ReadyAt:     p.clock.Now(),
		EBS:         p.net.NewPool(fmt.Sprintf("vm-%03d/ebs", p.vmSeq), netsim.Mbps(t.EBSMbps)),
		NIC:         p.net.NewPool(fmt.Sprintf("vm-%03d/nic", p.vmSeq), netsim.Mbps(t.NetMbps)),
	}
	p.vms = append(p.vms, vm)
	p.insts.vmsLive.Inc()
	return vm
}

// TerminateVM stops an instance.
func (p *Provider) TerminateVM(vm *VM) {
	if vm.State == VMTerminated {
		return
	}
	switch vm.State {
	case VMPending:
		p.insts.vmsPending.Dec()
	case VMReady:
		p.insts.vmsLive.Dec()
	}
	vm.bootSpan.End()
	vm.State = VMTerminated
	vm.EndedAt = p.clock.Now()
}

// Invoke launches a Lambda. ready runs once the environment is up
// (warm ≈ 100 ms if a warm environment is available, cold otherwise);
// expired runs if the platform kills the invocation at the lifetime cap
// while the tenant code is still running.
func (p *Provider) Invoke(cfg LambdaConfig, ready func(*Lambda), expired func(*Lambda)) (*Lambda, error) {
	if err := cfg.Validate(p.opts.Limits); err != nil {
		return nil, err
	}
	cold := !p.warm.TryTake(cfg.MemoryMB)
	return p.invoke(cfg, cold, false, ready, expired), nil
}

// InvokeProvisioned launches a Lambda on a pre-initialized
// provisioned-concurrency environment: always a warm start, and the
// ambient warm-reuse accounting is untouched — the environment belongs
// to a warmpool.Pool, which tracks it separately.
func (p *Provider) InvokeProvisioned(cfg LambdaConfig, ready func(*Lambda), expired func(*Lambda)) (*Lambda, error) {
	if err := cfg.Validate(p.opts.Limits); err != nil {
		return nil, err
	}
	return p.invoke(cfg, false, true, ready, expired), nil
}

func (p *Provider) invoke(cfg LambdaConfig, cold, provisioned bool, ready func(*Lambda), expired func(*Lambda)) *Lambda {
	p.lambdaSeq++
	// Lambda network bandwidth is notoriously variable (gg [19]: "with
	// variable performance"); each environment draws its own effective
	// egress rate.
	jitter := p.rng.TruncNormal(1, 0.15, 0.6, 1.4)
	l := &Lambda{
		ID:          fmt.Sprintf("la-%03d", p.lambdaSeq),
		Config:      cfg,
		State:       LambdaStarting,
		ColdStart:   cold,
		Provisioned: provisioned,
		InvokedAt:   p.clock.Now(),
		Egress: p.net.NewPool(fmt.Sprintf("la-%03d/egress", p.lambdaSeq),
			netsim.Mbps(cfg.EgressMbps()*jitter)),
		onKill: expired,
	}
	p.lambdas = append(p.lambdas, l)
	si := startIdx(cold)
	p.insts.lambdaInvocations[si].Inc()
	p.insts.lambdasInFlight.Inc()
	kind := startNames[si]
	if provisioned {
		kind = "provisioned"
	}
	p.emit(eventlog.LambdaInvoke, l.ID, kind, "")
	l.startSpan = p.tracer().StartSpan("cloud", "lambda_start",
		telemetry.L("lambda", l.ID), telemetry.L("start", startNames[si]))
	l.lifeSpan = p.tracer().StartSpan("cloud", "lambda", telemetry.L("lambda", l.ID))
	start := p.opts.WarmStart
	if cold {
		start = p.opts.ColdStart
	}
	p.clock.After(start, func() {
		if l.State != LambdaStarting {
			return
		}
		l.State = LambdaRunning
		l.ReadyAt = p.clock.Now()
		p.insts.lambdaStart[si].ObserveDuration(l.ReadyAt.Sub(l.InvokedAt))
		p.emit(eventlog.LambdaReady, l.ID, startNames[si], "")
		l.startSpan.End()
		l.expiry = p.clock.After(p.opts.Limits.MaxLifetime, func() {
			if l.State != LambdaRunning {
				return
			}
			l.State = LambdaExpired
			l.EndedAt = p.clock.Now()
			p.insts.lambdasInFlight.Dec()
			l.lifeSpan.End()
			if l.onKill != nil {
				l.onKill(l)
			}
		})
		if ready != nil {
			ready(l)
		}
	})
	return l
}

// Release ends an invocation normally (tenant code returned); the
// environment goes back to the warm pool. Provisioned invocations skip
// the ambient accounting: their environment is handed back to its
// warmpool.Pool by the caller.
func (p *Provider) Release(l *Lambda) {
	if l.State != LambdaRunning && l.State != LambdaStarting {
		return
	}
	if l.expiry != nil {
		l.expiry.Cancel()
		l.expiry = nil
	}
	l.State = LambdaFinished
	l.EndedAt = p.clock.Now()
	p.insts.lambdasInFlight.Dec()
	p.emit(eventlog.LambdaRelease, l.ID, "", "")
	l.startSpan.End()
	l.lifeSpan.End()
	if !l.Provisioned {
		p.warm.Put(l.Config.MemoryMB)
	}
}

// TimeToLive returns how much of the lifetime cap remains for a running
// invocation.
func (p *Provider) TimeToLive(l *Lambda) time.Duration {
	if l.State != LambdaRunning {
		return 0
	}
	used := p.clock.Since(l.ReadyAt)
	if used >= p.opts.Limits.MaxLifetime {
		return 0
	}
	return p.opts.Limits.MaxLifetime - used
}

// WarmAvailable returns how many ambient warm environments the given
// memory size currently has.
func (p *Provider) WarmAvailable(memMB int) int { return p.warm.Available(memMB) }

// WarmSnapshot copies the ambient warm-environment availability map
// (memoryMB -> count) for tests and inspection.
func (p *Provider) WarmSnapshot() map[int]int { return p.warm.Snapshot() }
