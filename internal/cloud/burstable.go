package cloud

import (
	"time"
)

// Burstable instances (the t3 family) — the substrate behind BurScale [7],
// which the paper discusses as a complementary remedy for transient
// overload: standby burstables absorb spikes while regular VMs boot. Their
// catch is the CPU-credit economy: a t3 core runs at its baseline fraction
// unless credits are available, and an exhausted standby is little better
// than the overloaded cluster it is meant to relieve. The extension
// benchmark (BenchmarkExtensionBurScale) compares this against SplitServe's
// Lambdas.

// T3Large mirrors the t3.large: 2 vCPUs at a 30% baseline.
var T3Large = VMType{
	Name: "t3.large", VCPUs: 2, MemGiB: 8,
	EBSMbps: 695, NetMbps: 500, PricePerHour: 0.0832,
}

// T3BaselineFraction is the per-vCPU baseline CPU share of the t3 family
// (t3.large: 30%).
const T3BaselineFraction = 0.3

// T3CreditsPerHourPerVCPU is the credit accrual rate (1 credit = 1
// vCPU-minute at 100%).
const T3CreditsPerHourPerVCPU = 24.0

// CreditGauge tracks a burstable host's CPU-credit balance, shared by all
// executors on the host. Credits are stored as vCPU-seconds of full-speed
// burst above the baseline.
type CreditGauge struct {
	baseline   float64
	accrualPS  float64 // vCPU-seconds of credit per wall second (whole host)
	maxCredits float64
	credits    float64
	lastAt     time.Time
}

// NewCreditGauge returns a gauge for a host with the given vCPU count,
// starting with initial vCPU-seconds of credit (BurScale keeps standbys
// idle so they arrive with a healthy balance).
func NewCreditGauge(t VMType, baseline float64, initialCredits float64, start time.Time) *CreditGauge {
	accrual := T3CreditsPerHourPerVCPU * 60 * float64(t.VCPUs) / 3600  // vCPU-sec per sec
	maxCredits := T3CreditsPerHourPerVCPU * 60 * float64(t.VCPUs) * 24 // a day's worth
	return &CreditGauge{
		baseline:   baseline,
		accrualPS:  accrual,
		maxCredits: maxCredits,
		credits:    initialCredits,
		lastAt:     start,
	}
}

// Advance accrues credits up to now.
func (g *CreditGauge) Advance(now time.Time) {
	dt := now.Sub(g.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	g.lastAt = now
	g.credits += g.accrualPS * dt
	if g.credits > g.maxCredits {
		g.credits = g.maxCredits
	}
}

// Credits returns the current balance (vCPU-seconds of full-speed burst).
func (g *CreditGauge) Credits() float64 { return g.credits }

// RunFor consumes the gauge for a task needing fullSpeedSeconds of one
// vCPU at 100% and returns the wall-clock seconds it takes: full speed
// while credits last (net depletion 1−baseline per busy second), baseline
// speed afterwards.
func (g *CreditGauge) RunFor(now time.Time, fullSpeedSeconds float64) float64 {
	g.Advance(now)
	if fullSpeedSeconds <= 0 {
		return 0
	}
	burnRate := 1 - g.baseline
	if burnRate <= 0 {
		return fullSpeedSeconds
	}
	burstSeconds := g.credits / burnRate
	if fullSpeedSeconds <= burstSeconds {
		g.credits -= fullSpeedSeconds * burnRate
		return fullSpeedSeconds
	}
	g.credits = 0
	remaining := fullSpeedSeconds - burstSeconds
	return burstSeconds + remaining/g.baseline
}

// ProvisionReadyBurstableVM provisions a ready burstable instance and
// returns it with its credit gauge.
func (p *Provider) ProvisionReadyBurstableVM(t VMType, baseline, initialCredits float64) (*VM, *CreditGauge) {
	vm := p.ProvisionReadyVM(t)
	gauge := NewCreditGauge(t, baseline, initialCredits, p.clock.Now())
	return vm, gauge
}
