package cloud

import (
	"splitserve/internal/telemetry"
)

// providerInstruments are the control plane's resolved telemetry handles.
// On a nil hub every handle is nil and each operation is a no-op.
type providerInstruments struct {
	hub *telemetry.Hub

	vmRequests *telemetry.Counter
	vmBoot     *telemetry.Histogram
	vmsPending *telemetry.Gauge
	vmsLive    *telemetry.Gauge

	// Indexed by start temperature: 0 = warm, 1 = cold.
	lambdaInvocations [2]*telemetry.Counter
	lambdaStart       [2]*telemetry.Histogram
	lambdasInFlight   *telemetry.Gauge
}

var startNames = [2]string{"warm", "cold"}

func startIdx(cold bool) int {
	if cold {
		return 1
	}
	return 0
}

// SetTelemetry points the provider at a telemetry hub. Call before the
// first RequestVM/Invoke; a nil hub (or never calling) leaves the
// provider untelemetered.
func (p *Provider) SetTelemetry(h *telemetry.Hub) {
	p.insts = providerInstruments{
		hub:             h,
		vmRequests:      h.Counter("cloud_vm_requests_total"),
		vmBoot:          h.Histogram("cloud_vm_boot_seconds", nil),
		vmsPending:      h.Gauge("cloud_vms_pending"),
		vmsLive:         h.Gauge("cloud_vms_live"),
		lambdasInFlight: h.Gauge("cloud_lambdas_in_flight"),
	}
	for i, sn := range startNames {
		sl := telemetry.L("start", sn)
		p.insts.lambdaInvocations[i] = h.Counter("cloud_lambda_invocations_total", sl)
		p.insts.lambdaStart[i] = h.Histogram("cloud_lambda_start_seconds", nil, sl)
	}
}

func (p *Provider) tracer() *telemetry.Tracer { return p.insts.hub.Tracer() }
