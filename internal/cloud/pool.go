package cloud

import (
	"fmt"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/telemetry"
)

// CorePool arbitrates the cores of a shared VM fleet across concurrent
// jobs — the system-wide "r" of the paper's launching facility (Section
// 4.1): when a job needs R cores, the pool hands out however many are
// free and the caller bridges the shortfall Δ = R − r with Lambdas.
//
// The pool tracks cores, not executors: a CoreLease is the right to run
// one executor on one core of one VM. Leases are granted VM-by-VM in the
// order instances were added, so allocation is deterministic and tends to
// pack jobs onto few instances (which keeps shuffle traffic local).
type CorePool struct {
	vms []*pooledVM

	coresTotal *telemetry.Gauge
	coresInUse *telemetry.Gauge
	bus        *eventlog.Bus
	busNow     func() time.Time
	now        func() time.Time
}

// SetEventLog attaches an event-log bus; each Acquire emits one core_lease
// event (Cores = granted count, App = owner) and each lease Release a
// core_release, stamped with now() on the virtual clock. The clock also
// drives idle tracking (see SetClock).
func (p *CorePool) SetEventLog(bus *eventlog.Bus, now func() time.Time) {
	p.bus = bus
	p.busNow = now
	if p.now == nil {
		p.SetClock(now)
	}
}

// SetClock attaches a virtual-time source so the pool can track, per VM,
// how long the instance has been fully idle (no leased cores) — the input
// to the scheduler's idle-timeout scale-down. Without a clock, IdleSince
// reports nothing and scale-down is inert.
func (p *CorePool) SetClock(now func() time.Time) {
	p.now = now
	if now == nil {
		return
	}
	for _, e := range p.vms {
		if e.used == 0 && e.idleSince.IsZero() {
			e.idleSince = now()
		}
	}
}

type pooledVM struct {
	vm   *VM
	used int
	// idleSince is when the instance last became fully idle (used == 0);
	// zero while any core is leased or when the pool has no clock.
	idleSince time.Time
}

// CoreLease is a claim on one core of one pool VM. Release returns the
// core; releasing twice is a no-op.
type CoreLease struct {
	pool     *CorePool
	entry    *pooledVM
	owner    string
	released bool
}

// VM returns the instance hosting the leased core.
func (l *CoreLease) VM() *VM { return l.entry.vm }

// Owner returns the identifier the core was acquired under.
func (l *CoreLease) Owner() string { return l.owner }

// Release returns the core to the pool (idempotent).
func (l *CoreLease) Release() {
	if l.released {
		return
	}
	l.released = true
	l.entry.used--
	l.pool.coresInUse.Dec()
	if l.entry.used == 0 && l.pool.now != nil {
		l.entry.idleSince = l.pool.now()
	}
	if p := l.pool; p.bus != nil {
		ev := eventlog.Ev(eventlog.CoreRelease)
		ev.App = l.owner
		ev.Exec = l.entry.vm.ID
		ev.Cores = 1
		p.bus.Emit(p.busNow(), ev)
	}
}

// NewCorePool returns a pool over the given ready instances.
func NewCorePool(vms ...*VM) *CorePool {
	p := &CorePool{}
	for _, vm := range vms {
		p.AddVM(vm)
	}
	return p
}

// SetTelemetry mirrors pool occupancy into vmpool_cores and
// vmpool_cores_in_use gauges on hub.
func (p *CorePool) SetTelemetry(h *telemetry.Hub) {
	p.coresTotal = h.Gauge("vmpool_cores")
	p.coresInUse = h.Gauge("vmpool_cores_in_use")
	p.coresTotal.Set(float64(p.Capacity()))
	p.coresInUse.Set(float64(p.InUse()))
}

// AddVM grows the pool with a (ready) instance — pre-provisioned fleet at
// start, or autoscale procurements as they boot.
func (p *CorePool) AddVM(vm *VM) {
	e := &pooledVM{vm: vm}
	if p.now != nil {
		e.idleSince = p.now()
	}
	p.vms = append(p.vms, e)
	p.coresTotal.Add(float64(vm.Type.VCPUs))
}

// RemoveVM takes a fully idle instance out of the pool (the scale-down
// path). It refuses — returning false — while any core of the instance is
// leased, so in-flight leases can never be orphaned; the caller decides
// what to do with the instance afterwards (typically terminate it).
func (p *CorePool) RemoveVM(vm *VM) bool {
	for i, e := range p.vms {
		if e.vm != vm {
			continue
		}
		if e.used > 0 {
			return false
		}
		p.vms = append(p.vms[:i], p.vms[i+1:]...)
		if e.vm.State == VMReady {
			p.coresTotal.Add(-float64(vm.Type.VCPUs))
		}
		return true
	}
	return false
}

// UsedOn returns how many cores of vm are currently leased (0 if the
// instance is not pooled).
func (p *CorePool) UsedOn(vm *VM) int {
	for _, e := range p.vms {
		if e.vm == vm {
			return e.used
		}
	}
	return 0
}

// IdleSince reports when vm last became fully idle. ok is false while any
// core is leased, when the instance is not pooled, or when the pool has no
// clock (SetClock / SetEventLog never called).
func (p *CorePool) IdleSince(vm *VM) (time.Time, bool) {
	for _, e := range p.vms {
		if e.vm == vm {
			if e.used > 0 || e.idleSince.IsZero() {
				return time.Time{}, false
			}
			return e.idleSince, true
		}
	}
	return time.Time{}, false
}

// CheckInvariants verifies the pool's conservation laws: every per-VM
// lease count sits in [0, VCPUs], only ready instances hold leases, and
// free + leased cores equal capacity. Property tests call it at every
// event of a run; any violation is a scheduler bug, not a workload
// condition.
func (p *CorePool) CheckInvariants() error {
	for _, e := range p.vms {
		if e.used < 0 || e.used > e.vm.Type.VCPUs {
			return fmt.Errorf("cloud: pool VM %s has %d leased cores of %d",
				e.vm.ID, e.used, e.vm.Type.VCPUs)
		}
		if e.used > 0 && e.vm.State != VMReady {
			return fmt.Errorf("cloud: pool VM %s is %s but holds %d leases",
				e.vm.ID, e.vm.State, e.used)
		}
	}
	if free, used, cap := p.Free(), p.InUse(), p.Capacity(); free+used != cap || free < 0 {
		return fmt.Errorf("cloud: pool free %d + leased %d != capacity %d", free, used, cap)
	}
	return nil
}

// VMs returns the pooled instances in the order they were added.
func (p *CorePool) VMs() []*VM {
	out := make([]*VM, 0, len(p.vms))
	for _, e := range p.vms {
		out = append(out, e.vm)
	}
	return out
}

// Capacity is the total core count across ready pool instances.
func (p *CorePool) Capacity() int {
	total := 0
	for _, e := range p.vms {
		if e.vm.State == VMReady {
			total += e.vm.Type.VCPUs
		}
	}
	return total
}

// InUse is how many cores are currently leased.
func (p *CorePool) InUse() int {
	used := 0
	for _, e := range p.vms {
		used += e.used
	}
	return used
}

// Free is how many cores a caller could acquire right now.
func (p *CorePool) Free() int { return p.Capacity() - p.InUse() }

// Acquire leases up to n cores for owner, fewest-index VMs first. It
// returns what is available — possibly fewer than n, possibly none.
func (p *CorePool) Acquire(owner string, n int) []*CoreLease {
	if n <= 0 {
		return nil
	}
	var out []*CoreLease
	for _, e := range p.vms {
		if e.vm.State != VMReady {
			continue
		}
		for e.used < e.vm.Type.VCPUs && len(out) < n {
			e.used++
			e.idleSince = time.Time{}
			p.coresInUse.Inc()
			out = append(out, &CoreLease{pool: p, entry: e, owner: owner})
		}
		if len(out) == n {
			break
		}
	}
	if p.bus != nil && len(out) > 0 {
		ev := eventlog.Ev(eventlog.CoreLease)
		ev.App = owner
		ev.Cores = len(out)
		p.bus.Emit(p.busNow(), ev)
	}
	return out
}
