package cloud

import (
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/telemetry"
)

// CorePool arbitrates the cores of a shared VM fleet across concurrent
// jobs — the system-wide "r" of the paper's launching facility (Section
// 4.1): when a job needs R cores, the pool hands out however many are
// free and the caller bridges the shortfall Δ = R − r with Lambdas.
//
// The pool tracks cores, not executors: a CoreLease is the right to run
// one executor on one core of one VM. Leases are granted VM-by-VM in the
// order instances were added, so allocation is deterministic and tends to
// pack jobs onto few instances (which keeps shuffle traffic local).
type CorePool struct {
	vms []*pooledVM

	coresTotal *telemetry.Gauge
	coresInUse *telemetry.Gauge
	bus        *eventlog.Bus
	busNow     func() time.Time
}

// SetEventLog attaches an event-log bus; each Acquire emits one core_lease
// event (Cores = granted count, App = owner) and each lease Release a
// core_release, stamped with now() on the virtual clock.
func (p *CorePool) SetEventLog(bus *eventlog.Bus, now func() time.Time) {
	p.bus = bus
	p.busNow = now
}

type pooledVM struct {
	vm   *VM
	used int
}

// CoreLease is a claim on one core of one pool VM. Release returns the
// core; releasing twice is a no-op.
type CoreLease struct {
	pool     *CorePool
	entry    *pooledVM
	owner    string
	released bool
}

// VM returns the instance hosting the leased core.
func (l *CoreLease) VM() *VM { return l.entry.vm }

// Owner returns the identifier the core was acquired under.
func (l *CoreLease) Owner() string { return l.owner }

// Release returns the core to the pool (idempotent).
func (l *CoreLease) Release() {
	if l.released {
		return
	}
	l.released = true
	l.entry.used--
	l.pool.coresInUse.Dec()
	if p := l.pool; p.bus != nil {
		ev := eventlog.Ev(eventlog.CoreRelease)
		ev.App = l.owner
		ev.Exec = l.entry.vm.ID
		ev.Cores = 1
		p.bus.Emit(p.busNow(), ev)
	}
}

// NewCorePool returns a pool over the given ready instances.
func NewCorePool(vms ...*VM) *CorePool {
	p := &CorePool{}
	for _, vm := range vms {
		p.AddVM(vm)
	}
	return p
}

// SetTelemetry mirrors pool occupancy into vmpool_cores and
// vmpool_cores_in_use gauges on hub.
func (p *CorePool) SetTelemetry(h *telemetry.Hub) {
	p.coresTotal = h.Gauge("vmpool_cores")
	p.coresInUse = h.Gauge("vmpool_cores_in_use")
	p.coresTotal.Set(float64(p.Capacity()))
	p.coresInUse.Set(float64(p.InUse()))
}

// AddVM grows the pool with a (ready) instance — pre-provisioned fleet at
// start, or autoscale procurements as they boot.
func (p *CorePool) AddVM(vm *VM) {
	p.vms = append(p.vms, &pooledVM{vm: vm})
	p.coresTotal.Add(float64(vm.Type.VCPUs))
}

// VMs returns the pooled instances in the order they were added.
func (p *CorePool) VMs() []*VM {
	out := make([]*VM, 0, len(p.vms))
	for _, e := range p.vms {
		out = append(out, e.vm)
	}
	return out
}

// Capacity is the total core count across ready pool instances.
func (p *CorePool) Capacity() int {
	total := 0
	for _, e := range p.vms {
		if e.vm.State == VMReady {
			total += e.vm.Type.VCPUs
		}
	}
	return total
}

// InUse is how many cores are currently leased.
func (p *CorePool) InUse() int {
	used := 0
	for _, e := range p.vms {
		used += e.used
	}
	return used
}

// Free is how many cores a caller could acquire right now.
func (p *CorePool) Free() int { return p.Capacity() - p.InUse() }

// Acquire leases up to n cores for owner, fewest-index VMs first. It
// returns what is available — possibly fewer than n, possibly none.
func (p *CorePool) Acquire(owner string, n int) []*CoreLease {
	if n <= 0 {
		return nil
	}
	var out []*CoreLease
	for _, e := range p.vms {
		if e.vm.State != VMReady {
			continue
		}
		for e.used < e.vm.Type.VCPUs && len(out) < n {
			e.used++
			p.coresInUse.Inc()
			out = append(out, &CoreLease{pool: p, entry: e, owner: owner})
		}
		if len(out) == n {
			break
		}
	}
	if p.bus != nil && len(out) > 0 {
		ev := eventlog.Ev(eventlog.CoreLease)
		ev.App = owner
		ev.Cores = len(out)
		p.bus.Emit(p.busNow(), ev)
	}
	return out
}
