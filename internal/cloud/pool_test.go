package cloud

import (
	"testing"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
)

func poolFixture(t *testing.T, types ...VMType) (*Provider, *CorePool) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	p := NewProvider(clock, net, simrand.New(1), DefaultOptions())
	pool := NewCorePool()
	for _, vt := range types {
		pool.AddVM(p.ProvisionReadyVM(vt))
	}
	return p, pool
}

func TestCorePoolAcquireRelease(t *testing.T) {
	_, pool := poolFixture(t, M4XLarge, M4Large) // 4 + 2 cores
	if got := pool.Capacity(); got != 6 {
		t.Fatalf("capacity = %d, want 6", got)
	}
	leases := pool.Acquire("job-a", 5)
	if len(leases) != 5 {
		t.Fatalf("acquired %d cores, want 5", len(leases))
	}
	// Deterministic fill order: the first VM's cores go first.
	for i := 0; i < 4; i++ {
		if leases[i].VM() != pool.VMs()[0] {
			t.Fatalf("lease %d on %s, want first pool VM", i, leases[i].VM().ID)
		}
	}
	if leases[4].VM() != pool.VMs()[1] {
		t.Fatalf("overflow lease on %s, want second pool VM", leases[4].VM().ID)
	}
	if got := pool.Free(); got != 1 {
		t.Fatalf("free = %d, want 1", got)
	}
	if extra := pool.Acquire("job-b", 3); len(extra) != 1 {
		t.Fatalf("over-subscribed acquire returned %d cores, want 1", len(extra))
	}
	leases[0].Release()
	leases[0].Release() // idempotent
	if got := pool.Free(); got != 1 {
		t.Fatalf("free after release = %d, want 1", got)
	}
}

func TestCorePoolIgnoresPendingAndTerminatedVMs(t *testing.T) {
	p, pool := poolFixture(t, M4Large)
	pending := p.RequestVM(M4XLarge, 30*time.Second, nil)
	pool.AddVM(pending)
	if got := pool.Capacity(); got != 2 {
		t.Fatalf("capacity with pending VM = %d, want 2", got)
	}
	if got := len(pool.Acquire("job", 8)); got != 2 {
		t.Fatalf("acquired %d cores, want only the ready VM's 2", got)
	}
	for p.Clock().Step() {
	}
	if got := pool.Capacity(); got != 6 {
		t.Fatalf("capacity after boot = %d, want 6", got)
	}
	p.TerminateVM(pending)
	if got := pool.Capacity(); got != 2 {
		t.Fatalf("capacity after terminate = %d, want 2", got)
	}
}
