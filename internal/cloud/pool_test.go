package cloud

import (
	"testing"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
)

func poolFixture(t *testing.T, types ...VMType) (*Provider, *CorePool) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	p := NewProvider(clock, net, simrand.New(1), DefaultOptions())
	pool := NewCorePool()
	for _, vt := range types {
		pool.AddVM(p.ProvisionReadyVM(vt))
	}
	return p, pool
}

func TestCorePoolAcquireRelease(t *testing.T) {
	_, pool := poolFixture(t, M4XLarge, M4Large) // 4 + 2 cores
	if got := pool.Capacity(); got != 6 {
		t.Fatalf("capacity = %d, want 6", got)
	}
	leases := pool.Acquire("job-a", 5)
	if len(leases) != 5 {
		t.Fatalf("acquired %d cores, want 5", len(leases))
	}
	// Deterministic fill order: the first VM's cores go first.
	for i := 0; i < 4; i++ {
		if leases[i].VM() != pool.VMs()[0] {
			t.Fatalf("lease %d on %s, want first pool VM", i, leases[i].VM().ID)
		}
	}
	if leases[4].VM() != pool.VMs()[1] {
		t.Fatalf("overflow lease on %s, want second pool VM", leases[4].VM().ID)
	}
	if got := pool.Free(); got != 1 {
		t.Fatalf("free = %d, want 1", got)
	}
	if extra := pool.Acquire("job-b", 3); len(extra) != 1 {
		t.Fatalf("over-subscribed acquire returned %d cores, want 1", len(extra))
	}
	leases[0].Release()
	leases[0].Release() // idempotent
	if got := pool.Free(); got != 1 {
		t.Fatalf("free after release = %d, want 1", got)
	}
}

func TestCorePoolIgnoresPendingAndTerminatedVMs(t *testing.T) {
	p, pool := poolFixture(t, M4Large)
	pending := p.RequestVM(M4XLarge, 30*time.Second, nil)
	pool.AddVM(pending)
	if got := pool.Capacity(); got != 2 {
		t.Fatalf("capacity with pending VM = %d, want 2", got)
	}
	if got := len(pool.Acquire("job", 8)); got != 2 {
		t.Fatalf("acquired %d cores, want only the ready VM's 2", got)
	}
	for p.Clock().Step() {
	}
	if got := pool.Capacity(); got != 6 {
		t.Fatalf("capacity after boot = %d, want 6", got)
	}
	p.TerminateVM(pending)
	if got := pool.Capacity(); got != 2 {
		t.Fatalf("capacity after terminate = %d, want 2", got)
	}
}

func TestCorePoolIdleTrackingAndRemoveVM(t *testing.T) {
	p, pool := poolFixture(t, M4XLarge, M4Large)
	clock := p.Clock()
	pool.SetClock(clock.Now)
	vm0, vm1 := pool.VMs()[0], pool.VMs()[1]

	// Both instances start idle from the instant the clock attached.
	if _, ok := pool.IdleSince(vm0); !ok {
		t.Fatal("fresh pooled VM not reported idle")
	}
	leases := pool.Acquire("job", 5) // fills vm0, one core of vm1
	if _, ok := pool.IdleSince(vm0); ok {
		t.Error("leased VM still reported idle")
	}
	if got := pool.UsedOn(vm1); got != 1 {
		t.Fatalf("UsedOn(vm1) = %d, want 1", got)
	}

	// A partially leased instance cannot be removed.
	if pool.RemoveVM(vm1) {
		t.Fatal("RemoveVM succeeded on an instance holding a lease")
	}
	clock.RunFor(30 * time.Second)
	leases[4].Release() // vm1 fully idle again, from t=30s
	since, ok := pool.IdleSince(vm1)
	if !ok || !since.Equal(clock.Now()) {
		t.Fatalf("IdleSince(vm1) = %v, %v; want now", since, ok)
	}
	// Re-acquiring resets the idle clock (vm0 is full, so the grant lands
	// on vm1 and clears its idleSince); releasing restarts it from now.
	extra := pool.Acquire("job2", 1)
	if extra[0].VM() != vm1 {
		t.Fatalf("acquire landed on %s, want vm1", extra[0].VM().ID)
	}
	if _, ok := pool.IdleSince(vm1); ok {
		t.Error("re-leased VM still reported idle")
	}
	extra[0].Release()
	if since, ok := pool.IdleSince(vm1); !ok || !since.Equal(clock.Now()) {
		t.Fatalf("IdleSince after re-release = %v, %v; want now", since, ok)
	}

	if err := pool.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	if !pool.RemoveVM(vm1) {
		t.Fatal("RemoveVM refused a fully idle instance")
	}
	if got := pool.Capacity(); got != 4 {
		t.Fatalf("capacity after removal = %d, want 4", got)
	}
	if pool.RemoveVM(vm1) {
		t.Fatal("RemoveVM succeeded twice for the same instance")
	}
	if _, ok := pool.IdleSince(vm1); ok {
		t.Error("removed VM still reported idle")
	}
	if err := pool.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after removal: %v", err)
	}
}
