package cloud

import (
	"testing"
	"testing/quick"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
)

func newProvider(opts Options) (*simclock.Clock, *Provider) {
	c := simclock.New(simclock.Epoch)
	n := netsim.New(c)
	return c, NewProvider(c, n, simrand.New(1), opts)
}

func TestSmallestFor(t *testing.T) {
	tests := []struct {
		cores     int
		wantType  string
		wantCount int
	}{
		{1, "m4.large", 1},
		{2, "m4.large", 1},
		{4, "m4.xlarge", 1},
		{8, "m4.2xlarge", 1},
		{16, "m4.4xlarge", 1},
		{32, "m4.10xlarge", 1},
		{64, "m4.16xlarge", 1},
		{128, "m4.16xlarge", 2},
	}
	for _, tt := range tests {
		typ, n := SmallestFor(tt.cores)
		if typ.Name != tt.wantType || n != tt.wantCount {
			t.Errorf("SmallestFor(%d) = %s x%d, want %s x%d",
				tt.cores, typ.Name, n, tt.wantType, tt.wantCount)
		}
	}
}

func TestSmallestForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SmallestFor(0)
}

func TestLambdaConfigValidate(t *testing.T) {
	lim := DefaultLambdaLimits()
	if err := (LambdaConfig{MemoryMB: 1536}).Validate(lim); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (LambdaConfig{MemoryMB: 64}).Validate(lim); err == nil {
		t.Fatal("64MB accepted")
	}
	if err := (LambdaConfig{MemoryMB: 4096}).Validate(lim); err == nil {
		t.Fatal("4GB accepted")
	}
}

func TestLambdaCPUShare(t *testing.T) {
	lim := DefaultLambdaLimits()
	if got := (LambdaConfig{MemoryMB: 1536}).CPUShare(lim); got != 1.0 {
		t.Fatalf("CPUShare(1536) = %v, want 1", got)
	}
	if got := (LambdaConfig{MemoryMB: 768}).CPUShare(lim); got != 0.5 {
		t.Fatalf("CPUShare(768) = %v, want 0.5", got)
	}
}

func TestVMBootDelay(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	var readyAt time.Time
	vm := p.RequestVM(M4XLarge, 0, func(v *VM) { readyAt = v.ReadyAt })
	if vm.State != VMPending {
		t.Fatalf("state = %v, want pending", vm.State)
	}
	c.Run()
	if vm.State != VMReady {
		t.Fatalf("state = %v, want ready", vm.State)
	}
	boot := readyAt.Sub(simclock.Epoch)
	if boot < 30*time.Second || boot > 6*time.Minute {
		t.Fatalf("boot delay %v outside plausible envelope", boot)
	}
}

func TestVMBootOverride(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	vm := p.RequestVM(M4XLarge, 45*time.Second, nil)
	c.Run()
	if got := vm.ReadyAt.Sub(simclock.Epoch); got != 45*time.Second {
		t.Fatalf("boot = %v, want 45s", got)
	}
}

func TestProvisionReadyVM(t *testing.T) {
	_, p := newProvider(DefaultOptions())
	vm := p.ProvisionReadyVM(M44XLarge)
	if vm.State != VMReady {
		t.Fatalf("state = %v", vm.State)
	}
	if vm.EBS.Capacity() != netsim.Mbps(2000) {
		t.Fatalf("EBS capacity = %v", vm.EBS.Capacity())
	}
}

func TestTerminateVMStopsUptime(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	vm := p.ProvisionReadyVM(M4Large)
	c.After(90*time.Second, func() { p.TerminateVM(vm) })
	c.Run()
	c.After(time.Hour, func() {})
	c.Run()
	if got := vm.Uptime(c.Now()); got != 90*time.Second {
		t.Fatalf("uptime = %v, want 90s", got)
	}
}

func TestWarmLambdaStartsFast(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	l, err := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(simclock.Epoch.Add(time.Second))
	if l.State != LambdaRunning {
		t.Fatalf("state = %v, want running", l.State)
	}
	if got := l.ReadyAt.Sub(l.InvokedAt); got != 100*time.Millisecond {
		t.Fatalf("warm start = %v, want 100ms", got)
	}
	if l.ColdStart {
		t.Fatal("expected warm start")
	}
}

func TestColdLambdaWhenPoolExhausted(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmPoolSize = 1
	c, p := newProvider(opts)
	l1, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
	l2, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
	c.RunUntil(simclock.Epoch.Add(time.Minute))
	if l1.ColdStart {
		t.Fatal("first invocation should be warm")
	}
	if !l2.ColdStart {
		t.Fatal("second invocation should be cold")
	}
	if got := l2.ReadyAt.Sub(l2.InvokedAt); got != opts.ColdStart {
		t.Fatalf("cold start = %v, want %v", got, opts.ColdStart)
	}
}

func TestReleaseReturnsEnvironmentToWarmPool(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmPoolSize = 1
	c, p := newProvider(opts)
	l1, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
	c.RunUntil(simclock.Epoch.Add(time.Second))
	p.Release(l1)
	l2, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
	c.RunUntil(simclock.Epoch.Add(2 * time.Second))
	if l2.ColdStart {
		t.Fatal("released environment not reused warm")
	}
}

func TestLambdaLifetimeExpiry(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	var expired *Lambda
	l, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, func(x *Lambda) { expired = x })
	c.Run() // runs the lifetime timer out
	if expired != l {
		t.Fatal("lifetime expiry callback did not fire")
	}
	if l.State != LambdaExpired {
		t.Fatalf("state = %v, want expired", l.State)
	}
	if got := l.EndedAt.Sub(l.ReadyAt); got != 15*time.Minute {
		t.Fatalf("lifetime = %v, want 15m", got)
	}
}

func TestReleaseCancelsExpiry(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	expired := false
	l, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, func(*Lambda) { expired = true })
	c.RunUntil(simclock.Epoch.Add(time.Minute))
	p.Release(l)
	c.Run()
	if expired {
		t.Fatal("expiry fired after release")
	}
	if l.State != LambdaFinished {
		t.Fatalf("state = %v", l.State)
	}
}

func TestTimeToLive(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	l, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
	c.RunUntil(simclock.Epoch.Add(5*time.Minute + 100*time.Millisecond))
	got := p.TimeToLive(l)
	if got != 10*time.Minute {
		t.Fatalf("TimeToLive = %v, want 10m", got)
	}
}

func TestInvokeRejectsBadConfig(t *testing.T) {
	_, p := newProvider(DefaultOptions())
	if _, err := p.Invoke(LambdaConfig{MemoryMB: 10}, nil, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestBilledDuration(t *testing.T) {
	c, p := newProvider(DefaultOptions())
	l, _ := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
	c.RunUntil(simclock.Epoch.Add(30 * time.Second))
	p.Release(l)
	if got := l.BilledDuration(c.Now()); got != 30*time.Second {
		t.Fatalf("billed = %v, want 30s", got)
	}
}

func TestEgressBandwidthScalesWithMemory(t *testing.T) {
	small := LambdaConfig{MemoryMB: 512}.EgressMbps()
	big := LambdaConfig{MemoryMB: 3008}.EgressMbps()
	if small >= big {
		t.Fatalf("egress not increasing: %v vs %v", small, big)
	}
}

// Property: boot delays are always positive and within the truncation
// envelope regardless of seed.
func TestQuickBootDelayEnvelope(t *testing.T) {
	prop := func(seed uint64) bool {
		c := simclock.New(simclock.Epoch)
		p := NewProvider(c, netsim.New(c), simrand.New(seed), DefaultOptions())
		for i := 0; i < 20; i++ {
			d := p.BootDelay()
			if d < 27*time.Second || d > 330*time.Second {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every invocation eventually reaches a terminal state if
// released or left to expire; warm-pool accounting never goes negative.
func TestQuickLambdaLifecycle(t *testing.T) {
	prop := func(seed uint64, count uint8) bool {
		m := int(count%16) + 1
		rng := simrand.New(seed)
		opts := DefaultOptions()
		opts.WarmPoolSize = m / 2
		c := simclock.New(simclock.Epoch)
		p := NewProvider(c, netsim.New(c), simrand.New(seed+1), opts)
		var ls []*Lambda
		for i := 0; i < m; i++ {
			l, err := p.Invoke(LambdaConfig{MemoryMB: 1536}, nil, nil)
			if err != nil {
				return false
			}
			ls = append(ls, l)
			if rng.Float64() < 0.7 {
				hold := time.Duration(rng.Intn(600)) * time.Second
				c.After(hold, func() { p.Release(l) })
			}
		}
		c.Run()
		for _, l := range ls {
			if l.State != LambdaFinished && l.State != LambdaExpired {
				return false
			}
		}
		for _, v := range p.WarmSnapshot() {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCreditGaugeFullSpeedWhileCredits(t *testing.T) {
	g := NewCreditGauge(T3Large, T3BaselineFraction, 700, simclock.Epoch)
	// 700 credits / 0.7 burn = 1000s of full-speed burst.
	wall := g.RunFor(simclock.Epoch, 500)
	if wall != 500 {
		t.Fatalf("wall = %v, want 500 (credits ample)", wall)
	}
	if g.Credits() >= 700 {
		t.Fatal("credits not consumed")
	}
}

func TestCreditGaugeBaselineWhenDepleted(t *testing.T) {
	g := NewCreditGauge(T3Large, T3BaselineFraction, 0, simclock.Epoch)
	wall := g.RunFor(simclock.Epoch, 300)
	want := 300 / T3BaselineFraction
	if wall < want*0.99 || wall > want*1.01 {
		t.Fatalf("wall = %v, want ~%v (baseline only)", wall, want)
	}
}

func TestCreditGaugeBlendedRun(t *testing.T) {
	g := NewCreditGauge(T3Large, T3BaselineFraction, 70, simclock.Epoch)
	// 70/0.7 = 100s at full speed, then (300-100)/0.3 at baseline.
	wall := g.RunFor(simclock.Epoch, 300)
	want := 100 + 200/T3BaselineFraction
	if wall < want*0.99 || wall > want*1.01 {
		t.Fatalf("wall = %v, want ~%v", wall, want)
	}
	if g.Credits() != 0 {
		t.Fatalf("credits = %v after depletion", g.Credits())
	}
}

func TestCreditGaugeAccrues(t *testing.T) {
	g := NewCreditGauge(T3Large, T3BaselineFraction, 0, simclock.Epoch)
	g.Advance(simclock.Epoch.Add(time.Hour))
	// t3.large accrues 48 credit-minutes/hour = 2880 vCPU-seconds.
	if got := g.Credits(); got < 2800 || got > 2900 {
		t.Fatalf("credits after 1h = %v, want ~2880", got)
	}
	// Capped at a day's worth.
	g.Advance(simclock.Epoch.Add(100 * 24 * time.Hour))
	if got := g.Credits(); got > T3CreditsPerHourPerVCPU*60*2*24+1 {
		t.Fatalf("credits uncapped: %v", got)
	}
}

func TestProvisionReadyBurstableVM(t *testing.T) {
	_, p := newProvider(DefaultOptions())
	vm, gauge := p.ProvisionReadyBurstableVM(T3Large, T3BaselineFraction, 100)
	if vm.State != VMReady || gauge.Credits() != 100 {
		t.Fatalf("burstable provisioning broken: %v %v", vm.State, gauge.Credits())
	}
}
