// Package core implements SplitServe — the paper's contribution. It is an
// engine.Backend that embodies the three facilities of Section 4:
//
//   - Launching facility: when a job needs R cores and only r are free on
//     existing VMs, the backend takes the r VM cores and immediately
//     launches Δ = R − r Lambda-based executors, so a single job's tasks
//     run on both substrates at once.
//
//   - Segueing facility: if the job's SLO exceeds the nominal VM startup
//     delay, replacement VMs are requested in the background. Once their
//     cores register (or cores free up on existing VMs), Lambda executors
//     that have run longer than spark.lambda.executor.timeout stop
//     receiving tasks, drain gracefully, and are decommissioned — without
//     the execution rollback a hard kill would cause. Lambdas nearing the
//     platform's 15-minute lifetime are always drained pre-emptively.
//
//   - State-transfer facility: the cluster is configured with an HDFS
//     shuffle store reachable by both executor kinds (wired by the
//     scenario; this backend only requires Store().Durable() when Lambdas
//     are in play).
//
// The same backend with zero free VM cores, an S3 shuffle store and no
// segueing reproduces the Qubole Spark-on-Lambda baseline.
package core

import (
	"fmt"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/metrics"
	"splitserve/internal/spark/engine"
	"splitserve/internal/telemetry"
)

// Config parameterises SplitServe.
type Config struct {
	// VMs are existing, ready instances whose free cores the launching
	// facility may use.
	VMs []*cloud.VM
	// FreeCores is r: how many cores of those VMs are actually free for
	// this job. Negative means "all cores".
	FreeCores int
	// LambdaMemoryMB sizes Lambda executors (default 1536 = one vCPU).
	LambdaMemoryMB int
	// MaxLambdas caps concurrent Lambda executors.
	MaxLambdas int
	// LambdaExecutorTimeout is the paper's spark.lambda.executor.timeout
	// knob: a Lambda executor older than this is eligible for segueing.
	LambdaExecutorTimeout time.Duration
	// Segue enables the segueing facility.
	Segue bool
	// SegueVMType is the instance type procured in the background.
	SegueVMType cloud.VMType
	// SegueBootOverride pins when the replacement cores appear (e.g. the
	// paper's Figure 7 has an existing core freeing up at 45 s). Zero
	// samples the provider's boot-delay distribution.
	SegueBootOverride time.Duration
	// VMExecLaunchDelay and LambdaExecLaunchDelay model executor runtime
	// bootstrap on each substrate.
	VMExecLaunchDelay     time.Duration
	LambdaExecLaunchDelay time.Duration
	// TTLSafetyMargin drains a Lambda executor whose remaining platform
	// lifetime falls below this, avoiding the expiry-induced rollback.
	TTLSafetyMargin time.Duration
	// LambdaCPUFactor derates a Lambda executor's CPU relative to an EC2
	// vCPU (Firecracker scheduling and burstable shares; ~0.85 observed).
	LambdaCPUFactor float64
	// ExecMemoryMB overrides VM executor memory (0 = hostMem/vCPUs).
	ExecMemoryMB int
}

// DefaultConfig returns paper-calibrated defaults for a given existing-VM
// pool and free-core budget.
func DefaultConfig(vms []*cloud.VM, freeCores int) Config {
	return Config{
		VMs:                   vms,
		FreeCores:             freeCores,
		LambdaMemoryMB:        1536,
		MaxLambdas:            1000,
		LambdaExecutorTimeout: 60 * time.Second,
		VMExecLaunchDelay:     time.Second,
		LambdaExecLaunchDelay: 1500 * time.Millisecond,
		TTLSafetyMargin:       60 * time.Second,
	}
}

// SplitServe is the hybrid FaaS/IaaS scheduler backend.
type SplitServe struct {
	cfg Config
	c   *engine.Cluster

	slots   []*vmSlot
	desired int
	// launched counts live executors; pending* count in-flight launches.
	vmLaunched     int
	lambdaLaunched int
	pendingVM      int
	pendingLambda  int
	execSeq        int

	lambdaByExec map[string]*cloud.Lambda

	segueRequested bool
	segueCommenced bool
	// seguePendingCores counts requested-but-not-ready segue VM cores.
	seguePendingCores int
	drainTimers       map[string]bool
}

type vmSlot struct {
	vm       *cloud.VM
	capacity int
	used     int
}

var _ engine.Backend = (*SplitServe)(nil)

// New returns a SplitServe backend.
func New(cfg Config) *SplitServe {
	if cfg.LambdaMemoryMB == 0 {
		cfg.LambdaMemoryMB = 1536
	}
	if cfg.MaxLambdas == 0 {
		cfg.MaxLambdas = 1000
	}
	if cfg.VMExecLaunchDelay == 0 {
		cfg.VMExecLaunchDelay = time.Second
	}
	if cfg.LambdaExecLaunchDelay == 0 {
		cfg.LambdaExecLaunchDelay = 1500 * time.Millisecond
	}
	if cfg.TTLSafetyMargin == 0 {
		cfg.TTLSafetyMargin = 60 * time.Second
	}
	if cfg.LambdaExecutorTimeout == 0 {
		cfg.LambdaExecutorTimeout = 60 * time.Second
	}
	if cfg.LambdaCPUFactor == 0 {
		cfg.LambdaCPUFactor = 0.85
	}
	return &SplitServe{
		cfg:          cfg,
		lambdaByExec: make(map[string]*cloud.Lambda),
		drainTimers:  make(map[string]bool),
	}
}

// Name implements engine.Backend.
func (b *SplitServe) Name() string { return "splitserve" }

// Start implements engine.Backend: it builds the VM/Lambda state from the
// existing cluster ("the launching facility shares access to the
// system-wide VM/Lambda state").
func (b *SplitServe) Start(c *engine.Cluster) {
	b.c = c
	budget := b.cfg.FreeCores
	for _, vm := range b.cfg.VMs {
		capacity := vm.Type.VCPUs
		if budget >= 0 {
			if budget == 0 {
				break
			}
			if capacity > budget {
				capacity = budget
			}
			budget -= capacity
		}
		b.slots = append(b.slots, &vmSlot{vm: vm, capacity: capacity})
	}
}

// SetDesiredTotal implements engine.Backend: VM cores first, Lambdas for
// the shortfall.
func (b *SplitServe) SetDesiredTotal(n int) {
	b.desired = n
	b.reconcile()
}

func (b *SplitServe) live() int { return b.vmLaunched + b.lambdaLaunched }

func (b *SplitServe) inFlight() int { return b.pendingVM + b.pendingLambda }

func (b *SplitServe) reconcile() {
	// 1) Fill free VM cores.
	for b.live()+b.inFlight() < b.desired {
		slot := b.freeSlot()
		if slot == nil {
			break
		}
		b.launchVMExecutor(slot, false)
	}
	// 2) Bridge the shortfall with Lambdas — unless segueing has commenced,
	// after which VM capacity is the replacement path.
	if b.segueCommenced {
		return
	}
	for b.live()+b.inFlight() < b.desired && b.lambdaLaunched+b.pendingLambda < b.cfg.MaxLambdas {
		b.launchLambdaExecutor()
	}
}

func (b *SplitServe) freeSlot() *vmSlot {
	for _, s := range b.slots {
		if s.vm.State == cloud.VMReady && s.used < s.capacity {
			return s
		}
	}
	return nil
}

// launchVMExecutor starts one executor on a core of slot. force skips the
// demand re-check at registration time — segue replacements must come up
// even while the Lambdas they replace are still counted live.
func (b *SplitServe) launchVMExecutor(slot *vmSlot, force bool) {
	slot.used++
	b.pendingVM++
	b.execSeq++
	id := fmt.Sprintf("exec-v%02d", b.execSeq)
	mem := b.cfg.ExecMemoryMB
	if mem == 0 {
		mem = engine.VMExecutorMemoryMB(slot.vm.Type)
	}
	launch := b.c.Telemetry().Tracer().StartSpan("executor", "launch",
		telemetry.L("exec", id), telemetry.L("kind", "vm"))
	b.c.Clock().After(b.cfg.VMExecLaunchDelay, func() {
		b.pendingVM--
		launch.End()
		if !force && b.live() >= b.desired {
			slot.used--
			return
		}
		b.vmLaunched++
		cl := engine.VMExecutorClient(slot.vm)
		b.c.RegisterExecutor(engine.ExecutorSpec{
			ID:       id,
			Kind:     engine.ExecVM,
			HostID:   slot.vm.ID,
			MemoryMB: mem,
			CPUShare: 1,
			IO:       cl,
			Serve:    cl,
			VM:       slot.vm,
		})
	})
}

func (b *SplitServe) launchLambdaExecutor() {
	b.pendingLambda++
	b.execSeq++
	id := fmt.Sprintf("exec-l%02d", b.execSeq)
	cfg := cloud.LambdaConfig{MemoryMB: b.cfg.LambdaMemoryMB}
	launch := b.c.Telemetry().Tracer().StartSpan("executor", "launch",
		telemetry.L("exec", id), telemetry.L("kind", "lambda"))
	_, err := b.c.Provider().Invoke(cfg,
		func(l *cloud.Lambda) {
			// Environment is up; the executor runtime bootstraps next.
			b.c.Clock().After(b.cfg.LambdaExecLaunchDelay, func() {
				b.pendingLambda--
				launch.End()
				if b.live() >= b.desired {
					b.c.Provider().Release(l)
					return
				}
				b.lambdaLaunched++
				b.lambdaByExec[id] = l
				cl := engine.LambdaExecutorClient(l)
				b.c.RegisterExecutor(engine.ExecutorSpec{
					ID:       id,
					Kind:     engine.ExecLambda,
					HostID:   l.ID,
					MemoryMB: b.cfg.LambdaMemoryMB,
					CPUShare: cfg.CPUShare(b.c.Provider().Limits()) * b.cfg.LambdaCPUFactor,
					IO:       engine.LambdaExecutorClient(l),
					Serve:    cl,
					Lambda:   l,
				})
			})
		},
		func(l *cloud.Lambda) {
			// Platform lifetime expiry: the executor dies hard, shuffle
			// blocks in /tmp die with it — the rollback the segueing
			// facility exists to avoid.
			b.onLambdaExpired(id)
		})
	if err != nil {
		b.pendingLambda--
		panic("core: lambda invoke rejected: " + err.Error())
	}
}

func (b *SplitServe) onLambdaExpired(execID string) {
	if e := b.c.Executor(execID); e != nil && e.State != engine.ExecDead {
		b.lambdaLaunched--
		delete(b.lambdaByExec, execID)
		b.c.RemoveExecutor(execID, true, "lambda lifetime expired")
		b.reconcile() // bridge the hole
	}
}

// AllowAssign implements engine.Backend — the paper's scheduler hook:
// "every time the scheduler needs to pick an executor ... it checks if
// there are Lambda-based executors ... and how long they have been running
// for"; executors past the threshold stop receiving tasks once replacement
// capacity exists (or their platform lifetime nears its end).
func (b *SplitServe) AllowAssign(e *engine.Executor) bool {
	if e.Kind != engine.ExecLambda {
		return true
	}
	l := b.lambdaByExec[e.ID]
	if l == nil {
		return true
	}
	if b.c.Provider().TimeToLive(l) < b.cfg.TTLSafetyMargin {
		b.drain(e, "lifetime safety margin")
		return false
	}
	if b.cfg.Segue && b.segueCommenced &&
		b.c.Clock().Since(e.RegisteredAt) > b.cfg.LambdaExecutorTimeout {
		b.drain(e, "segue")
		return false
	}
	return true
}

func (b *SplitServe) drain(e *engine.Executor, reason string) {
	if b.drainTimers[e.ID] {
		return
	}
	b.drainTimers[e.ID] = true
	_ = reason
	b.c.DrainExecutor(e.ID)
}

// ExecutorDrained implements engine.Backend: a drained Lambda is released
// back to the platform (graceful decommission); a drained VM executor
// frees its core.
func (b *SplitServe) ExecutorDrained(e *engine.Executor) {
	b.remove(e, "drained")
}

// ReleaseIdle implements engine.Backend (dynamic allocation).
func (b *SplitServe) ReleaseIdle(e *engine.Executor) {
	b.remove(e, "idle timeout")
}

func (b *SplitServe) remove(e *engine.Executor, reason string) {
	if e.State == engine.ExecDead {
		return
	}
	switch e.Kind {
	case engine.ExecLambda:
		if l := b.lambdaByExec[e.ID]; l != nil {
			b.c.Provider().Release(l)
			delete(b.lambdaByExec, e.ID)
		}
		b.lambdaLaunched--
		// The Lambda's /tmp dies with it; with the durable HDFS store this
		// loses nothing.
		b.c.RemoveExecutor(e.ID, true, reason)
	case engine.ExecVM:
		b.vmLaunched--
		for _, s := range b.slots {
			if s.vm.ID == e.HostID && s.used > 0 {
				s.used--
				break
			}
		}
		b.c.RemoveExecutor(e.ID, false, reason)
	}
	// Keep the fleet at the desired size (fresh Lambdas replace TTL-drained
	// ones; after a segue the VM capacity already covers the target).
	b.reconcile()
}

// JobSubmitted implements engine.Backend: the segueing facility launches
// replacement VMs in the background, but "only if the job's expected
// execution time exceeds the nominal VM start-up delay".
func (b *SplitServe) JobSubmitted(_ string, slo time.Duration) {
	if !b.cfg.Segue || b.segueRequested {
		return
	}
	needed := b.desired - b.usableVMCores()
	if needed <= 0 {
		return
	}
	if slo > 0 && slo <= b.c.Provider().NominalVMStartup() && b.cfg.SegueBootOverride == 0 {
		return // a new VM would arrive after the job's deadline
	}
	b.segueRequested = true
	t := b.cfg.SegueVMType
	if t.VCPUs == 0 {
		t, _ = cloud.SmallestFor(needed)
	}
	b.c.Log().Add(metrics.Event{
		At: b.c.Clock().Now(), Kind: metrics.VMRequested, Stage: -1, Task: -1,
		Note: fmt.Sprintf("segue %s for %d cores", t.Name, needed),
	})
	b.seguePendingCores = needed
	b.c.Provider().RequestVM(t, b.cfg.SegueBootOverride, func(vm *cloud.VM) {
		b.c.Log().Add(metrics.Event{
			At: b.c.Clock().Now(), Kind: metrics.VMReady, Stage: -1, Task: -1,
			Note: vm.ID,
		})
		b.onSegueCapacity(vm, b.seguePendingCores)
	})
}

// usableVMCores sums capacity across known slots.
func (b *SplitServe) usableVMCores() int {
	total := 0
	for _, s := range b.slots {
		if s.vm.State == cloud.VMReady {
			total += s.capacity
		}
	}
	return total
}

// onSegueCapacity registers the replacement cores and commences segueing:
// replacement executors launch, and once the scheduler next looks at an
// over-threshold Lambda it is drained instead of reused.
func (b *SplitServe) onSegueCapacity(vm *cloud.VM, cores int) {
	capacity := cores
	if capacity > vm.Type.VCPUs {
		capacity = vm.Type.VCPUs
	}
	slot := &vmSlot{vm: vm, capacity: capacity}
	b.slots = append(b.slots, slot)
	b.c.Log().Add(metrics.Event{
		At: b.c.Clock().Now(), Kind: metrics.SegueCommence, Stage: -1, Task: -1,
		Note: vm.ID,
	})
	b.segueCommenced = true
	// Launch replacements beyond `desired` so work can move over before
	// the Lambdas finish draining.
	for i := 0; i < capacity; i++ {
		b.launchVMExecutor(slot, true)
	}
	// Lambdas below the age threshold drain when they cross it.
	b.scheduleAgeDrains()
}

// scheduleAgeDrains arms timers so each live Lambda is reconsidered when
// it crosses the age threshold (AllowAssign also checks at every
// scheduling decision; the timers cover idle Lambdas).
func (b *SplitServe) scheduleAgeDrains() {
	// Walk executors in registration order, not map order: same-instant
	// drain timers fire FIFO, so iteration order shapes the trace and must
	// be deterministic.
	for _, e := range b.c.AllExecutors() {
		id := e.ID
		if b.lambdaByExec[id] == nil {
			continue
		}
		if e.State == engine.ExecDead || b.drainTimers[id] {
			continue
		}
		age := b.c.Clock().Since(e.RegisteredAt)
		wait := b.cfg.LambdaExecutorTimeout - age
		if wait < 0 {
			wait = 0
		}
		b.c.Clock().After(wait, func() {
			ex := b.c.Executor(id)
			if ex == nil || ex.State == engine.ExecDead {
				return
			}
			b.drain(ex, "segue age threshold")
		})
	}
}

// JobFinished implements engine.Backend.
func (b *SplitServe) JobFinished() {}

// Shutdown releases every live Lambda (end of scenario) so billing stops.
// Lambdas are released in registration order so the resulting removal
// events are deterministic.
func (b *SplitServe) Shutdown() {
	for _, e := range b.c.AllExecutors() {
		l := b.lambdaByExec[e.ID]
		if l == nil {
			continue
		}
		b.c.Provider().Release(l)
		if e.State != engine.ExecDead {
			b.c.RemoveExecutor(e.ID, true, "shutdown")
		}
	}
	b.lambdaByExec = make(map[string]*cloud.Lambda)
	b.lambdaLaunched = 0
}

// Stats reports the current executor mix (inspection).
func (b *SplitServe) Stats() (vmExecs, lambdaExecs int) {
	return b.vmLaunched, b.lambdaLaunched
}
