package core

import (
	"testing"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/hdfs"
	"splitserve/internal/metrics"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/storage"
)

// fixture is a SplitServe cluster: a master m4.xlarge hosting HDFS, plus
// optional worker VMs.
type fixture struct {
	clock    *simclock.Clock
	net      *netsim.Network
	provider *cloud.Provider
	fs       *hdfs.Cluster
	backend  *SplitServe
	cluster  *engine.Cluster
	ctx      *rdd.Context
}

func newFixture(t *testing.T, cfg Config, execs int, slo time.Duration, store storage.Store) *fixture {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(11), cloud.DefaultOptions())
	master := provider.ProvisionReadyVM(cloud.M4XLarge)
	fs := hdfs.NewCluster(clock, net, hdfs.DefaultOptions())
	fs.AddDataNode("dn-master", []*netsim.Pool{master.EBS})
	if store == nil {
		store = fs.Store()
	}
	backend := New(cfg)
	cluster, err := engine.New(engine.Config{
		AppID:    "ss-test",
		Clock:    clock,
		Net:      net,
		Provider: provider,
		Store:    store,
		Backend:  backend,
		Alloc:    engine.DefaultAllocConfig(engine.AllocStatic, execs, execs),
		SLO:      slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		clock: clock, net: net, provider: provider, fs: fs,
		backend: backend, cluster: cluster, ctx: rdd.NewContext(),
	}
}

func workJob(ctx *rdd.Context, rows, parts int, costPerRow float64) *rdd.RDD {
	per := rows / parts
	src := ctx.Source("src", parts, func(p int) []rdd.Row {
		out := make([]rdd.Row, per)
		for i := range out {
			out[i] = p*per + i
		}
		return out
	}, costPerRow, 8)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 32, V: 1} }, 2, 16)
	return kv.ReduceByKey("sum", parts,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row {
			return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
		}, 2, 16)
}

func checkSum(t *testing.T, job *engine.Job, want int) {
	t.Helper()
	total := 0
	for _, r := range job.Rows() {
		total += r.(rdd.KV).V.(int)
	}
	if total != want {
		t.Fatalf("result sum = %d, want %d", total, want)
	}
}

func TestHybridLaunchSplitsAcrossSubstrates(t *testing.T) {
	clockVM := cloud.M44XLarge
	f := newFixture(t, Config{}, 0, 0, nil)
	worker := f.provider.ProvisionReadyVM(clockVM)
	cfg := DefaultConfig([]*cloud.VM{worker}, 3) // r=3
	f.backend.cfg = cfg
	f.cluster = mustCluster(t, f, cfg, 16, 0, nil)

	job, err := f.cluster.RunJob(workJob(f.ctx, 160_000, 16, 500), "hybrid")
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, job, 160_000)
	vms, lambdas := 0, 0
	for _, e := range f.cluster.AllExecutors() {
		switch e.Kind {
		case engine.ExecVM:
			vms++
		case engine.ExecLambda:
			lambdas++
		}
	}
	if vms != 3 || lambdas != 13 {
		t.Fatalf("executor mix = %d VM / %d Lambda, want 3/13", vms, lambdas)
	}
	// Both kinds must have actually run tasks.
	ranOn := map[engine.ExecKind]int{}
	for _, e := range f.cluster.AllExecutors() {
		ranOn[e.Kind] += e.TasksRun
	}
	if ranOn[engine.ExecVM] == 0 || ranOn[engine.ExecLambda] == 0 {
		t.Fatalf("tasks not split across substrates: %v", ranOn)
	}
}

// mustCluster rebuilds the engine cluster with a fresh backend config
// (helper for fixtures created before the worker VM exists).
func mustCluster(t *testing.T, f *fixture, cfg Config, execs int, slo time.Duration, store storage.Store) *engine.Cluster {
	t.Helper()
	if store == nil {
		store = f.fs.Store()
	}
	f.backend = New(cfg)
	cluster, err := engine.New(engine.Config{
		AppID:    "ss-test",
		Clock:    f.clock,
		Net:      f.net,
		Provider: f.provider,
		Store:    store,
		Backend:  f.backend,
		Alloc:    engine.DefaultAllocConfig(engine.AllocStatic, execs, execs),
		SLO:      slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.cluster = cluster
	return cluster
}

func TestAllLambdaLaunch(t *testing.T) {
	f := newFixture(t, DefaultConfig(nil, 0), 8, 0, nil)
	job, err := f.cluster.RunJob(workJob(f.ctx, 80_000, 8, 500), "all-lambda")
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, job, 80_000)
	for _, e := range f.cluster.AllExecutors() {
		if e.Kind != engine.ExecLambda {
			t.Fatalf("non-lambda executor %s in all-lambda mode", e.ID)
		}
	}
	if len(f.cluster.AllExecutors()) != 8 {
		t.Fatalf("executors = %d", len(f.cluster.AllExecutors()))
	}
}

func TestAllVMWhenEnoughFreeCores(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	worker := f.provider.ProvisionReadyVM(cloud.M44XLarge)
	cfg := DefaultConfig([]*cloud.VM{worker}, 16)
	mustCluster(t, f, cfg, 16, 0, nil)
	job, err := f.cluster.RunJob(workJob(f.ctx, 80_000, 16, 200), "all-vm")
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, job, 80_000)
	for _, e := range f.cluster.AllExecutors() {
		if e.Kind != engine.ExecVM {
			t.Fatalf("lambda launched despite sufficient VM cores")
		}
	}
}

func TestSegueMovesWorkToVMs(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	worker := f.provider.ProvisionReadyVM(cloud.M44XLarge)
	cfg := DefaultConfig([]*cloud.VM{worker}, 3)
	cfg.Segue = true
	cfg.SegueVMType = cloud.M44XLarge
	cfg.SegueBootOverride = 45 * time.Second
	cfg.LambdaExecutorTimeout = 30 * time.Second
	mustCluster(t, f, cfg, 16, 10*time.Minute, nil)

	// A long job: several sequential waves so the segue happens mid-run
	// (each wave is ~12s of work; the segue VM arrives at 45s).
	var job *engine.Job
	var err error
	for i := 0; i < 6; i++ {
		ctx := rdd.NewContext()
		job, err = f.cluster.RunJob(workJob(ctx, 400_000, 16, 24000), "wave")
		if err != nil {
			t.Fatal(err)
		}
		checkSum(t, job, 400_000)
	}

	log := f.cluster.Log()
	if len(log.ByKind(metrics.SegueCommence)) == 0 {
		t.Fatal("segue never commenced")
	}
	if len(log.ByKind(metrics.ExecutorDraining)) == 0 {
		t.Fatal("no lambda was drained")
	}
	// Graceful segue: no task failures.
	if got := len(log.ByKind(metrics.TaskFailed)); got != 0 {
		t.Fatalf("segue caused %d task failures (rollback)", got)
	}
	// All lambdas must be decommissioned and released.
	for _, l := range f.provider.Lambdas() {
		if l.State == cloud.LambdaRunning || l.State == cloud.LambdaStarting {
			t.Fatalf("lambda %s still running after segue", l.ID)
		}
		if l.State == cloud.LambdaExpired {
			t.Fatalf("lambda %s hit the lifetime cap despite segue", l.ID)
		}
	}
	// Post-segue executors are VM-based.
	vmLive, laLive := f.backend.Stats()
	if laLive != 0 || vmLive == 0 {
		t.Fatalf("post-segue mix = %d VM / %d Lambda", vmLive, laLive)
	}
}

func TestNoSegueWhenSLOWithinVMStartup(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	cfg := DefaultConfig(nil, 0)
	cfg.Segue = true
	mustCluster(t, f, cfg, 4, 30*time.Second, nil) // SLO < ~110s boot
	if _, err := f.cluster.RunJob(workJob(f.ctx, 4_000, 4, 100), "short"); err != nil {
		t.Fatal(err)
	}
	if len(f.cluster.Log().ByKind(metrics.VMRequested)) != 0 {
		t.Fatal("segue VM requested for a short-SLO job")
	}
}

func TestTTLSafetyDrainAvoidsExpiry(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	cfg := DefaultConfig(nil, 0)
	cfg.TTLSafetyMargin = 14*time.Minute + 40*time.Second // drain once executors pass ~20s of age
	mustCluster(t, f, cfg, 4, 0, nil)
	// A long multi-wave run: executors would cross the margin mid-run.
	for i := 0; i < 4; i++ {
		ctx := rdd.NewContext()
		if _, err := f.cluster.RunJob(workJob(ctx, 800_000, 4, 2000), "long"); err != nil {
			t.Fatal(err)
		}
	}
	drained := len(f.cluster.Log().ByKind(metrics.ExecutorDraining))
	if drained == 0 {
		t.Fatal("TTL safety margin never drained a lambda")
	}
	for _, l := range f.provider.Lambdas() {
		if l.State == cloud.LambdaExpired {
			t.Fatalf("lambda %s expired despite safety drain", l.ID)
		}
	}
}

func TestLambdaExpiryCausesRecoveryButJobCompletes(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	cfg := DefaultConfig(nil, 0)
	cfg.TTLSafetyMargin = time.Nanosecond // effectively disabled
	mustCluster(t, f, cfg, 2, 0, nil)
	// Four ~10-minute tasks on 2 executors: the second wave crosses the
	// 15-minute lifetime, the executors expire mid-task, and recovery
	// reruns the failed tasks on replacement Lambdas.
	ctx := rdd.NewContext()
	src := ctx.Source("big", 4, func(p int) []rdd.Row {
		out := make([]rdd.Row, 100)
		for i := range out {
			out[i] = i
		}
		return out
	}, 3e8, 8) // 100 rows x 3e8 units = 3e10 units ≈ 10 min per task
	job, err := f.cluster.RunJob(src, "expiry")
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Rows()) != 400 {
		t.Fatalf("rows = %d", len(job.Rows()))
	}
	expired := 0
	for _, l := range f.provider.Lambdas() {
		if l.State == cloud.LambdaExpired {
			expired++
		}
	}
	if expired == 0 {
		t.Fatal("no lambda expired; test premise broken")
	}
	if got := len(f.cluster.Log().ByKind(metrics.TaskFailed)); got == 0 {
		t.Fatal("expiry should have failed running tasks")
	}
}

func TestShutdownReleasesLambdas(t *testing.T) {
	f := newFixture(t, DefaultConfig(nil, 0), 4, 0, nil)
	if _, err := f.cluster.RunJob(workJob(f.ctx, 4_000, 4, 100), "x"); err != nil {
		t.Fatal(err)
	}
	f.backend.Shutdown()
	for _, l := range f.provider.Lambdas() {
		if l.State == cloud.LambdaRunning {
			t.Fatalf("lambda %s running after Shutdown", l.ID)
		}
	}
	_, la := f.backend.Stats()
	if la != 0 {
		t.Fatalf("lambda count = %d after Shutdown", la)
	}
}

func TestHDFSShuffleSharedAcrossSubstrates(t *testing.T) {
	// Map tasks on lambdas write HDFS blocks that reduce tasks on VMs can
	// read (and vice versa): the state-transfer facility.
	f := newFixture(t, Config{}, 0, 0, nil)
	worker := f.provider.ProvisionReadyVM(cloud.M44XLarge)
	cfg := DefaultConfig([]*cloud.VM{worker}, 2)
	mustCluster(t, f, cfg, 8, 0, nil)
	job, err := f.cluster.RunJob(workJob(f.ctx, 40_000, 8, 300), "shared")
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, job, 40_000)
	if f.fs.FileCount() == 0 {
		t.Fatal("no shuffle files written to HDFS")
	}
}

func TestMaxLambdasCapsBridge(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	cfg := DefaultConfig(nil, 0)
	cfg.MaxLambdas = 5
	mustCluster(t, f, cfg, 16, 0, nil) // wants 16, capped at 5
	job, err := f.cluster.RunJob(workJob(f.ctx, 16_000, 16, 300), "capped")
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, job, 16_000)
	if got := len(f.cluster.AllExecutors()); got != 5 {
		t.Fatalf("executors = %d, want MaxLambdas cap 5", got)
	}
}

func TestNegativeFreeCoresMeansAllCores(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	worker := f.provider.ProvisionReadyVM(cloud.M44XLarge)
	cfg := DefaultConfig([]*cloud.VM{worker}, -1)
	mustCluster(t, f, cfg, 16, 0, nil)
	job, err := f.cluster.RunJob(workJob(f.ctx, 16_000, 16, 200), "all")
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, job, 16_000)
	vms, las := f.backend.Stats()
	if vms != 16 || las != 0 {
		t.Fatalf("mix = %d/%d, want 16 VM / 0 Lambda", vms, las)
	}
}

func TestHybridWorkDistributionTracked(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	worker := f.provider.ProvisionReadyVM(cloud.M44XLarge)
	cfg := DefaultConfig([]*cloud.VM{worker}, 4)
	mustCluster(t, f, cfg, 12, 0, nil)
	if _, err := f.cluster.RunJob(workJob(f.ctx, 60_000, 12, 20_000), "dist"); err != nil {
		t.Fatal(err)
	}
	dist := f.cluster.WorkDistribution()
	vm, la := dist[engine.ExecVM], dist[engine.ExecLambda]
	if vm.Executors != 4 || la.Executors != 8 {
		t.Fatalf("executors = %+v / %+v", vm, la)
	}
	if vm.Tasks == 0 || la.Tasks == 0 || vm.Busy <= 0 || la.Busy <= 0 {
		t.Fatalf("work not split: vm=%+v lambda=%+v", vm, la)
	}
}

func TestLambdaCPUFactorApplied(t *testing.T) {
	f := newFixture(t, Config{}, 0, 0, nil)
	cfg := DefaultConfig(nil, 0)
	cfg.LambdaCPUFactor = 0.5
	mustCluster(t, f, cfg, 2, 0, nil)
	if _, err := f.cluster.RunJob(workJob(f.ctx, 2_000, 2, 100), "derated"); err != nil {
		t.Fatal(err)
	}
	for _, e := range f.cluster.AllExecutors() {
		if e.CPUShare != 0.5 {
			t.Fatalf("CPUShare = %v, want 0.5", e.CPUShare)
		}
	}
}
