// Package billing implements the AWS pricing rules the paper relies on
// (Section 3, Figure 1): EC2 on-demand per-second billing with a one-minute
// minimum, Lambda GB-second billing rounded up to 100 ms plus a per-
// invocation fee, and S3 request pricing. A Meter accumulates the marginal
// cost attributed to a single job, which is the cost the paper reports
// ("we only report the cost incurred towards the job in question").
package billing

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"splitserve/internal/telemetry"
)

// Pricing constants (us-east-1, late 2019/2020, matching the paper's setup).
const (
	// LambdaGBSecondUSD is the Lambda compute price per GB-second.
	LambdaGBSecondUSD = 0.0000166667
	// LambdaInvocationUSD is the per-request fee ($0.20 per million).
	LambdaInvocationUSD = 0.0000002
	// LambdaBillingQuantum is the billing rounding unit (100 ms in 2020).
	LambdaBillingQuantum = 100 * time.Millisecond
	// EC2MinimumBilled is EC2's per-instance minimum charge duration.
	EC2MinimumBilled = time.Minute
	// S3PutUSD and S3GetUSD are per-request S3 prices.
	S3PutUSD = 0.000005
	S3GetUSD = 0.0000004
	// LambdaProvisionedIdleGBSecondUSD is the provisioned-concurrency
	// idle-time rate: what a pre-initialized environment costs per
	// GB-second while it sits warm waiting for work (AWS bills this
	// whether or not the capacity is ever invoked).
	LambdaProvisionedIdleGBSecondUSD = 0.0000041667
)

// LambdaIdleCost returns the provisioned-concurrency charge for keeping a
// warm environment of the given memory size idle for duration d. Idle time
// is billed per second with no minimum (rounding up to whole seconds, as
// AWS does for provisioned concurrency).
func LambdaIdleCost(memoryMB int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	gb := float64(memoryMB) / 1024
	return gb * math.Ceil(d.Seconds()) * LambdaProvisionedIdleGBSecondUSD
}

// VMCost returns the on-demand cost of running an instance priced at
// pricePerHour for duration d: per-second increments with a 60 s minimum.
func VMCost(pricePerHour float64, d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	if d < EC2MinimumBilled {
		d = EC2MinimumBilled
	}
	seconds := math.Ceil(d.Seconds())
	return pricePerHour / 3600 * seconds
}

// VMSavings returns the on-demand cost avoided by releasing an instance
// early: the difference between billing it for the counterfactual
// keep-until duration and for the actual uptime. Both legs go through
// VMCost, so the 60 s minimum applies to each; the result is clamped at
// zero (releasing "early" inside the minimum saves nothing).
func VMSavings(pricePerHour float64, actual, counterfactual time.Duration) float64 {
	saved := VMCost(pricePerHour, counterfactual) - VMCost(pricePerHour, actual)
	if saved < 0 {
		return 0
	}
	return saved
}

// VMCoreCost returns the cost attributable to a subset of an instance's
// cores for duration d, the proportional attribution the paper uses when a
// job occupies only some cores of a shared VM.
func VMCoreCost(pricePerHour float64, totalCores, usedCores int, d time.Duration) float64 {
	if totalCores <= 0 || usedCores <= 0 {
		return 0
	}
	if usedCores > totalCores {
		usedCores = totalCores
	}
	return VMCost(pricePerHour, d) * float64(usedCores) / float64(totalCores)
}

// LambdaCost returns the cost of one Lambda invocation with the given
// memory size running for duration d: GB-seconds rounded up to the 100 ms
// quantum, plus the invocation fee.
func LambdaCost(memoryMB int, d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	quanta := math.Ceil(float64(d) / float64(LambdaBillingQuantum))
	if quanta < 1 {
		quanta = 1
	}
	billed := time.Duration(quanta) * LambdaBillingQuantum
	gb := float64(memoryMB) / 1024
	return gb*billed.Seconds()*LambdaGBSecondUSD + LambdaInvocationUSD
}

// S3RequestCost returns the request cost of puts PUTs and gets GETs.
// (Storage-duration cost is negligible for shuffle-lifetime objects and is
// omitted, as in the paper.)
func S3RequestCost(puts, gets int64) float64 {
	return float64(puts)*S3PutUSD + float64(gets)*S3GetUSD
}

// Item is one billed line in a Meter.
type Item struct {
	Kind     string        // "vm", "lambda", "s3", ...
	Ref      string        // resource identifier
	Duration time.Duration // zero for request-billed items
	USD      float64
}

// Meter accumulates the marginal cost of a single job. The zero value is
// ready to use.
type Meter struct {
	items []Item
	hub   *telemetry.Hub
}

// SetTelemetry makes the meter mirror cost accrual into per-kind
// billing_cost_usd_total and billing_items_total counters on hub.
func (m *Meter) SetTelemetry(h *telemetry.Hub) { m.hub = h }

// Add records a billed line.
func (m *Meter) Add(item Item) {
	m.items = append(m.items, item)
	if m.hub != nil {
		kl := telemetry.L("kind", item.Kind)
		m.hub.Counter("billing_cost_usd_total", kl).Add(item.USD)
		m.hub.Counter("billing_items_total", kl).Inc()
	}
}

// AddVM bills an instance (or a share of one) for an interval.
func (m *Meter) AddVM(ref string, pricePerHour float64, totalCores, usedCores int, d time.Duration) {
	m.Add(Item{
		Kind:     "vm",
		Ref:      ref,
		Duration: d,
		USD:      VMCoreCost(pricePerHour, totalCores, usedCores, d),
	})
}

// AddLambda bills one Lambda invocation.
func (m *Meter) AddLambda(ref string, memoryMB int, d time.Duration) {
	m.Add(Item{Kind: "lambda", Ref: ref, Duration: d, USD: LambdaCost(memoryMB, d)})
}

// AddLambdaIdle bills the provisioned-concurrency idle time of one warm
// environment — the dollars paid for readiness rather than compute.
func (m *Meter) AddLambdaIdle(ref string, memoryMB int, d time.Duration) {
	m.Add(Item{Kind: "lambda-idle", Ref: ref, Duration: d, USD: LambdaIdleCost(memoryMB, d)})
}

// AddS3 bills S3 requests.
func (m *Meter) AddS3(ref string, puts, gets int64) {
	m.Add(Item{Kind: "s3", Ref: ref, USD: S3RequestCost(puts, gets)})
}

// Total returns the summed cost in USD.
func (m *Meter) Total() float64 {
	sum := 0.0
	for _, it := range m.items {
		sum += it.USD
	}
	return sum
}

// TotalByKind returns per-kind subtotals.
func (m *Meter) TotalByKind() map[string]float64 {
	out := make(map[string]float64)
	for _, it := range m.items {
		out[it.Kind] += it.USD
	}
	return out
}

// Items returns a copy of the billed lines.
func (m *Meter) Items() []Item { return append([]Item(nil), m.items...) }

// String renders a compact per-kind summary, sorted for stable output.
func (m *Meter) String() string {
	byKind := m.TotalByKind()
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "$%.6f", m.Total())
	if len(kinds) > 0 {
		b.WriteString(" (")
		for i, k := range kinds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=$%.6f", k, byKind[k])
		}
		b.WriteString(")")
	}
	return b.String()
}

// CostPoint is one sample of Figure 1's cost-vs-time-in-use curves.
type CostPoint struct {
	Duration  time.Duration
	VMvCPUUSD float64 // one vCPU of an m4.large (half the instance)
	LambdaUSD float64 // one 1536 MB Lambda (one effective vCPU)
}

// Figure1Curve samples the cost of one vCPU on an m4.large (price/2,
// 60 s minimum then per-second) against a 1536 MB Lambda (100 ms quanta)
// from step to max in increments of step — the exact comparison in the
// paper's Figure 1.
func Figure1Curve(m4LargePricePerHour float64, step, max time.Duration) []CostPoint {
	if step <= 0 {
		panic("billing: non-positive step")
	}
	var out []CostPoint
	for d := step; d <= max; d += step {
		out = append(out, CostPoint{
			Duration:  d,
			VMvCPUUSD: VMCoreCost(m4LargePricePerHour, 2, 1, d),
			LambdaUSD: LambdaCost(1536, d),
		})
	}
	return out
}

// LambdaOvershootTime returns the first sampled duration at which the
// Lambda becomes more expensive than the VM vCPU — the paper's
// "how quickly a Lambda can overshoot a VM" crossover.
func LambdaOvershootTime(m4LargePricePerHour float64) time.Duration {
	for d := LambdaBillingQuantum; d <= time.Hour; d += LambdaBillingQuantum {
		if LambdaCost(1536, d) > VMCoreCost(m4LargePricePerHour, 2, 1, d) {
			return d
		}
	}
	return 0
}
