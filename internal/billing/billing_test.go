package billing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVMCostMinimumMinute(t *testing.T) {
	// 10s billed as 60s.
	got := VMCost(3.6, 10*time.Second) // $3.6/h = $0.001/s
	if !approx(got, 0.06, 1e-9) {
		t.Fatalf("VMCost(10s) = %v, want 0.06", got)
	}
}

func TestVMCostPerSecondAfterMinute(t *testing.T) {
	got := VMCost(3.6, 90*time.Second)
	if !approx(got, 0.09, 1e-9) {
		t.Fatalf("VMCost(90s) = %v, want 0.09", got)
	}
}

func TestVMCostCeilsSeconds(t *testing.T) {
	got := VMCost(3.6, 90*time.Second+time.Millisecond)
	if !approx(got, 0.091, 1e-9) {
		t.Fatalf("VMCost(90.001s) = %v, want 0.091", got)
	}
}

func TestVMCoreCostProportional(t *testing.T) {
	full := VMCost(0.10, 2*time.Minute)
	half := VMCoreCost(0.10, 2, 1, 2*time.Minute)
	if !approx(half, full/2, 1e-12) {
		t.Fatalf("half-core cost %v, want %v", half, full/2)
	}
}

func TestVMCoreCostClampsUsed(t *testing.T) {
	if got := VMCoreCost(0.10, 2, 5, time.Minute); !approx(got, VMCost(0.10, time.Minute), 1e-12) {
		t.Fatalf("over-used cores not clamped: %v", got)
	}
	if got := VMCoreCost(0.10, 0, 1, time.Minute); got != 0 {
		t.Fatalf("zero-core VM cost = %v", got)
	}
}

func TestLambdaCostQuantum(t *testing.T) {
	// 250ms rounds to 300ms. 1536MB = 1.5GB.
	got := LambdaCost(1536, 250*time.Millisecond)
	want := 1.5*0.3*LambdaGBSecondUSD + LambdaInvocationUSD
	if !approx(got, want, 1e-12) {
		t.Fatalf("LambdaCost = %v, want %v", got, want)
	}
}

func TestLambdaCostMinimumOneQuantum(t *testing.T) {
	got := LambdaCost(1536, 0)
	want := 1.5*0.1*LambdaGBSecondUSD + LambdaInvocationUSD
	if !approx(got, want, 1e-12) {
		t.Fatalf("LambdaCost(0) = %v, want %v", got, want)
	}
}

func TestLambdaCheaperThanVMForShortRuns(t *testing.T) {
	// Paper Figure 1: below the crossover the Lambda is cheaper because the
	// VM charges a full minute.
	lam := LambdaCost(1536, 5*time.Second)
	vm := VMCoreCost(0.10, 2, 1, 5*time.Second)
	if lam >= vm {
		t.Fatalf("5s: lambda $%v should be < vm $%v", lam, vm)
	}
}

func TestLambdaOvershootsVM(t *testing.T) {
	// Beyond the crossover, the Lambda is more expensive per Figure 1.
	cross := LambdaOvershootTime(0.10)
	if cross <= 0 || cross > 60*time.Second {
		t.Fatalf("crossover = %v, want within the first minute", cross)
	}
	lam := LambdaCost(1536, 5*time.Minute)
	vm := VMCoreCost(0.10, 2, 1, 5*time.Minute)
	if lam <= vm {
		t.Fatalf("5min: lambda $%v should be > vm $%v", lam, vm)
	}
}

func TestFigure1CurveShape(t *testing.T) {
	pts := Figure1Curve(0.10, time.Second, 2*time.Minute)
	if len(pts) != 120 {
		t.Fatalf("got %d points", len(pts))
	}
	// VM flat for the first 60s.
	for i := 0; i < 59; i++ {
		if pts[i].VMvCPUUSD != pts[i+1].VMvCPUUSD {
			t.Fatalf("VM cost not flat during minimum at %v", pts[i].Duration)
		}
	}
	// Monotone non-decreasing after.
	for i := 60; i < len(pts)-1; i++ {
		if pts[i+1].VMvCPUUSD < pts[i].VMvCPUUSD {
			t.Fatal("VM cost decreased")
		}
	}
	for i := 0; i < len(pts)-1; i++ {
		if pts[i+1].LambdaUSD < pts[i].LambdaUSD {
			t.Fatal("Lambda cost decreased")
		}
	}
}

func TestS3RequestCost(t *testing.T) {
	got := S3RequestCost(1000, 10000)
	want := 1000*S3PutUSD + 10000*S3GetUSD
	if !approx(got, want, 1e-12) {
		t.Fatalf("S3RequestCost = %v, want %v", got, want)
	}
}

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.AddVM("vm-1", 0.10, 2, 2, 2*time.Minute)
	m.AddLambda("la-1", 1536, 30*time.Second)
	m.AddS3("bucket", 100, 200)
	want := VMCost(0.10, 2*time.Minute) + LambdaCost(1536, 30*time.Second) + S3RequestCost(100, 200)
	if !approx(m.Total(), want, 1e-12) {
		t.Fatalf("Total = %v, want %v", m.Total(), want)
	}
	byKind := m.TotalByKind()
	if len(byKind) != 3 {
		t.Fatalf("kinds = %v", byKind)
	}
	if len(m.Items()) != 3 {
		t.Fatalf("items = %d", len(m.Items()))
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.Total() != 0 {
		t.Fatal("zero meter non-zero total")
	}
}

// Property: both billing functions are monotone in duration and
// non-negative.
func TestQuickBillingMonotone(t *testing.T) {
	prop := func(aMS, bMS uint32) bool {
		a := time.Duration(aMS) * time.Millisecond
		b := time.Duration(bMS) * time.Millisecond
		if a > b {
			a, b = b, a
		}
		if VMCost(0.10, a) > VMCost(0.10, b) {
			return false
		}
		if LambdaCost(1536, a) > LambdaCost(1536, b) {
			return false
		}
		return VMCost(0.10, a) >= 0 && LambdaCost(128, a) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Lambda cost scales linearly with memory for a fixed duration.
func TestQuickLambdaMemoryLinear(t *testing.T) {
	prop := func(dMS uint16) bool {
		d := time.Duration(dMS) * time.Millisecond
		c1 := LambdaCost(1024, d) - LambdaInvocationUSD
		c2 := LambdaCost(2048, d) - LambdaInvocationUSD
		return approx(c2, 2*c1, 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVMSavings(t *testing.T) {
	// Releasing 30 min into a 60-min counterfactual saves half the hour.
	got := VMSavings(3.6, 30*time.Minute, time.Hour)
	if !approx(got, VMCost(3.6, time.Hour)-VMCost(3.6, 30*time.Minute), 1e-12) {
		t.Fatalf("VMSavings(30m of 1h) = %v", got)
	}
	// Inside the 60 s minimum both legs bill the same — nothing saved.
	if got := VMSavings(3.6, 10*time.Second, 50*time.Second); got != 0 {
		t.Fatalf("VMSavings inside minimum = %v, want 0", got)
	}
	// Actual beyond the counterfactual clamps at zero, never negative.
	if got := VMSavings(3.6, 2*time.Hour, time.Hour); got != 0 {
		t.Fatalf("VMSavings(actual > counterfactual) = %v, want 0", got)
	}
}
