// Package tracereplay ingests production-shaped arrival traces — the
// Azure-Functions / Google-cluster row shape of (tenant, arrival,
// runtime, demand) — and replays them through the sharded control plane.
// It owns three things: the CSV parser (header rows, CRLF, out-of-order
// arrivals tolerated, like the legacy tracefile parser), a deterministic
// synthetic multi-tenant trace generator (the committed test fixture
// comes from it), and replay validation that compares the merged report's
// per-tenant tables against the trace's empirical distributions.
package tracereplay

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"

	"splitserve/internal/cluster"
	"splitserve/internal/simrand"
	"splitserve/internal/workloads/sparkpi"
)

// Row is one traced job submission.
type Row struct {
	// Tenant is the submitting tenant's id.
	Tenant string
	// Arrival is the submission offset from the start of the trace.
	Arrival time.Duration
	// Runtime is the job's traced execution time at full provisioning.
	Runtime time.Duration
	// Cores is the job's core demand.
	Cores int
}

// Trace is a parsed production trace: rows sorted by arrival (stably, so
// equal arrivals keep file order).
type Trace struct {
	Rows []Row
	// Warnings records non-fatal input oddities (skipped header,
	// out-of-order rows — warned once).
	Warnings []string
}

// maxTraceFileBytes caps how much of a trace file is read, matching the
// legacy tracefile cap.
const maxTraceFileBytes = 1 << 20

// Header is the canonical column header the generator writes and the
// parser skips.
const Header = "tenant,arrival,runtime,cores"

// Parse reads CSV rows of the form "TENANT,ARRIVAL,RUNTIME,CORES"
// (e.g. "t03,90s,45s,4"). ARRIVAL and RUNTIME accept Go durations
// ("1m30s") or plain numbers meaning seconds ("90.5" — the unit most
// published traces use). Blank lines, '#' comments, a leading header row
// and CRLF endings are tolerated; out-of-order arrivals are sorted with a
// single warning.
func Parse(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	sorted := true
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text()) // also strips a trailing \r
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Split(s, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("line %d: %d fields (want TENANT,ARRIVAL,RUNTIME,CORES)", line, len(fields))
		}
		tenant := strings.TrimSpace(fields[0])
		arrival, aerr := parseDur(fields[1])
		runtime, rerr := parseDur(fields[2])
		if len(tr.Rows) == 0 && (aerr != nil || rerr != nil) && looksLikeHeader(fields) {
			tr.Warnings = append(tr.Warnings, fmt.Sprintf("line %d: skipped header row %q", line, s))
			continue
		}
		if tenant == "" {
			return nil, fmt.Errorf("line %d: empty tenant", line)
		}
		if aerr != nil || arrival < 0 {
			return nil, fmt.Errorf("line %d: bad arrival %q", line, strings.TrimSpace(fields[1]))
		}
		if rerr != nil || runtime <= 0 {
			return nil, fmt.Errorf("line %d: bad runtime %q", line, strings.TrimSpace(fields[2]))
		}
		cores, err := strconv.Atoi(strings.TrimSpace(fields[3]))
		if err != nil || cores < 1 {
			return nil, fmt.Errorf("line %d: bad cores %q", line, strings.TrimSpace(fields[3]))
		}
		if len(tr.Rows) > 0 && arrival < tr.Rows[len(tr.Rows)-1].Arrival {
			sorted = false
		}
		tr.Rows = append(tr.Rows, Row{Tenant: tenant, Arrival: arrival, Runtime: runtime, Cores: cores})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Rows) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	if !sorted {
		tr.Warnings = append(tr.Warnings, "arrivals out of order: sorted rows by arrival")
		sort.SliceStable(tr.Rows, func(i, j int) bool { return tr.Rows[i].Arrival < tr.Rows[j].Arrival })
	}
	return tr, nil
}

// parseDur accepts a Go duration ("1m30s") or a bare number of seconds
// ("90.5").
func parseDur(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(secs * float64(time.Second)), nil
	}
	return time.ParseDuration(s)
}

func looksLikeHeader(fields []string) bool {
	for _, f := range fields {
		if strings.IndexFunc(strings.TrimSpace(f), unicode.IsLetter) < 0 {
			return false
		}
	}
	return true
}

// Load reads a production trace from path. Only regular files up to
// 1 MiB are accepted, like the legacy tracefile loader.
func Load(path string) (*Trace, error) {
	if path == "" {
		return nil, fmt.Errorf("tracereplay: empty path")
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("tracereplay: %w", err)
	}
	if !fi.Mode().IsRegular() {
		return nil, fmt.Errorf("tracereplay: %s: not a regular file", path)
	}
	if fi.Size() > maxTraceFileBytes {
		return nil, fmt.Errorf("tracereplay: %s: %d bytes exceeds the %d-byte cap", path, fi.Size(), maxTraceFileBytes)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracereplay: %w", err)
	}
	defer f.Close()
	tr, err := Parse(io.LimitReader(f, maxTraceFileBytes))
	if err != nil {
		return nil, fmt.Errorf("tracereplay: %s: %w", path, err)
	}
	return tr, nil
}

// Detect reports whether path looks like a production trace (first data
// row has the 4-column TENANT,ARRIVAL,RUNTIME,CORES shape) rather than a
// legacy OFFSET[,CORES[,TENANT]] tracefile. It reads only the first
// non-comment line.
func Detect(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(io.LimitReader(f, 64<<10))
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		return len(strings.Split(s, ",")) == 4
	}
	return false
}

// runtimeGrid quantizes traced runtimes so Specs reuses baselines (and
// workload shapes) across jobs with near-identical runtimes: 250 ms
// buckets with a 250 ms floor.
const runtimeGrid = 250 * time.Millisecond

// Specs converts the trace into cluster job specs: every row becomes a
// sparkpi job sized so its full-provisioning execution time tracks the
// traced runtime (quantized to the 250 ms grid), labelled with the row's
// tenant. Baselines are measured once per distinct (runtime bucket,
// cores) shape and cached, so 10k-row traces need only a handful of
// baseline runs.
func Specs(tr *Trace, seed uint64) ([]cluster.JobSpec, error) {
	type shape struct {
		bucket time.Duration
		cores  int
	}
	baselines := map[shape]time.Duration{}
	specs := make([]cluster.JobSpec, 0, len(tr.Rows))
	for _, row := range tr.Rows {
		bucket := row.Runtime.Round(runtimeGrid)
		if bucket < runtimeGrid {
			bucket = runtimeGrid
		}
		sh := shape{bucket, row.Cores}
		base, ok := baselines[sh]
		if !ok {
			var err error
			base, err = cluster.Baseline(replayJob(bucket, row.Cores), row.Cores, seed)
			if err != nil {
				return nil, fmt.Errorf("tracereplay: baseline for %s/%d cores: %w", bucket, row.Cores, err)
			}
			baselines[sh] = base
		}
		specs = append(specs, cluster.JobSpec{
			Workload: replayJob(bucket, row.Cores),
			Tenant:   row.Tenant,
			Arrival:  row.Arrival,
			Cores:    row.Cores,
			Baseline: base,
		})
	}
	return specs, nil
}

// replayJob builds a sparkpi workload approximating the traced runtime at
// the traced demand: one wave of `cores` tasks, each costing the bucketed
// runtime at the calibrated 0.4 µs/dart rate (the cluster tests' sizing
// rule).
func replayJob(runtime time.Duration, cores int) *sparkpi.Workload {
	partitions := cores
	taskSecs := runtime.Seconds()
	return sparkpi.New(sparkpi.Config{
		Darts:               int64(float64(partitions) * taskSecs * 5e7 / 0.4),
		SampledDartsPerTask: 400_000 / partitions,
		Partitions:          partitions,
		CostPerDart:         0.4,
		Seed:                3,
	})
}

// GenConfig parameterizes the synthetic multi-tenant generator.
type GenConfig struct {
	// Tenants is how many tenants submit (labelled t00, t01, ...).
	Tenants int
	// Jobs is the total row count.
	Jobs int
	// MeanGap is the mean inter-arrival time (exponential draws).
	MeanGap time.Duration
	// MeanRuntime is the mean traced runtime (exponential draws with a
	// 500 ms floor, mimicking the short-job-heavy FaaS runtime shape).
	MeanRuntime time.Duration
	// Seed drives every draw; same config and seed → same trace.
	Seed uint64
}

// Generate draws a deterministic synthetic production trace. Tenant
// popularity is Zipf-distributed (s=1.1), so a few tenants dominate —
// the skew published FaaS traces show, and what makes shard imbalance
// (and thus work-stealing) observable in replay.
func Generate(cfg GenConfig) (*Trace, error) {
	if cfg.Tenants < 1 || cfg.Jobs < 1 {
		return nil, fmt.Errorf("tracereplay: Tenants and Jobs must be >= 1")
	}
	if cfg.MeanGap <= 0 || cfg.MeanRuntime <= 0 {
		return nil, fmt.Errorf("tracereplay: MeanGap and MeanRuntime must be > 0")
	}
	rng := simrand.New(cfg.Seed ^ 0x7ace)
	tr := &Trace{Rows: make([]Row, 0, cfg.Jobs)}
	at := time.Duration(0)
	for i := 0; i < cfg.Jobs; i++ {
		at += time.Duration(rng.Exp(1/cfg.MeanGap.Seconds()) * float64(time.Second))
		runtime := time.Duration(rng.Exp(1/cfg.MeanRuntime.Seconds()) * float64(time.Second))
		if runtime < 500*time.Millisecond {
			runtime = 500 * time.Millisecond
		}
		cores := 2
		if rng.Float64() < 0.3 {
			cores = 4
		}
		tr.Rows = append(tr.Rows, Row{
			Tenant:  fmt.Sprintf("t%02d", rng.Zipf(1.1, cfg.Tenants)-1),
			Arrival: at.Round(time.Millisecond),
			Runtime: runtime.Round(10 * time.Millisecond),
			Cores:   cores,
		})
	}
	return tr, nil
}

// WriteCSV renders the trace in the canonical 4-column shape with a
// header row, durations in seconds (the published-trace convention).
func WriteCSV(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, Header)
	for _, row := range tr.Rows {
		fmt.Fprintf(bw, "%s,%.3f,%.3f,%d\n", row.Tenant, row.Arrival.Seconds(), row.Runtime.Seconds(), row.Cores)
	}
	return bw.Flush()
}
