package tracereplay

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/shard"
)

func TestParseShapes(t *testing.T) {
	tr, err := Parse(strings.NewReader(
		"tenant,arrival,runtime,cores\r\nt01,10,5,2\r\nt00,1.5,2m,4\r\n# c\nt01,1m30s,0.5,2\r\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Row{
		{Tenant: "t00", Arrival: 1500 * time.Millisecond, Runtime: 2 * time.Minute, Cores: 4},
		{Tenant: "t01", Arrival: 10 * time.Second, Runtime: 5 * time.Second, Cores: 2},
		{Tenant: "t01", Arrival: 90 * time.Second, Runtime: 500 * time.Millisecond, Cores: 2},
	}
	if len(tr.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(tr.Rows), len(want))
	}
	for i, w := range want {
		if tr.Rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, tr.Rows[i], w)
		}
	}
	// Header skip + out-of-order sort, each warned exactly once.
	if len(tr.Warnings) != 2 ||
		!strings.Contains(tr.Warnings[0], "header") ||
		!strings.Contains(tr.Warnings[1], "out of order") {
		t.Errorf("warnings = %q", tr.Warnings)
	}

	for _, tc := range []struct {
		csv  string
		want string
	}{
		{"t00,1\n", "line 1"},
		{"t00,1,2,3,4\n", "line 1"},
		{",1,2,2\n", "empty tenant"},
		{"t00,-1,2,2\n", "bad arrival"},
		{"t00,1,0,2\n", "bad runtime"},
		{"t00,1,2,0\n", "bad cores"},
		{"tenant,arrival,runtime,cores\n", "empty trace"},
		{"", "empty trace"},
	} {
		if _, err := Parse(strings.NewReader(tc.csv)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): error %v, want mention of %q", tc.csv, err, tc.want)
		}
	}
}

func TestDetect(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if !Detect(write("prod.csv", "tenant,arrival,runtime,cores\nt00,1,2,2\n")) {
		t.Error("4-column trace not detected as production shape")
	}
	if Detect(write("legacy.csv", "# trace\n30s,4,t00\n")) {
		t.Error("3-column legacy tracefile misdetected as production shape")
	}
	if Detect(dir + "/missing.csv") {
		t.Error("missing file detected as production shape")
	}
}

// TestGenerateDeterministicAndFixtureFresh pins the generator: same
// config and seed give the same trace, and the committed fixture is
// exactly what the generator produces — regenerate it when the generator
// changes.
func TestGenerateDeterministicAndFixtureFresh(t *testing.T) {
	cfg := GenConfig{Tenants: 4, Jobs: 24, MeanGap: 2 * time.Second, MeanRuntime: time.Second, Seed: 11}
	tr1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := WriteCSV(&b1, tr1); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b2, tr2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same GenConfig produced different traces")
	}
	committed, err := os.ReadFile("testdata/multitenant_small.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), committed) {
		t.Errorf("committed fixture is stale: regenerate testdata/multitenant_small.csv\nwant:\n%s\ngot:\n%s",
			b1.Bytes(), committed)
	}
	// The fixture round-trips through the parser with no warnings beyond
	// the header skip.
	parsed, err := Parse(bytes.NewReader(committed))
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	if len(parsed.Rows) != cfg.Jobs {
		t.Errorf("fixture has %d rows, want %d", len(parsed.Rows), cfg.Jobs)
	}
	if len(parsed.Warnings) != 1 || !strings.Contains(parsed.Warnings[0], "header") {
		t.Errorf("fixture warnings = %q, want only the header skip", parsed.Warnings)
	}
}

// TestSpecsMapping: rows become tenant-labelled specs with cached
// baselines per runtime bucket.
func TestSpecsMapping(t *testing.T) {
	tr := &Trace{Rows: []Row{
		{Tenant: "t00", Arrival: 0, Runtime: 600 * time.Millisecond, Cores: 2},
		{Tenant: "t01", Arrival: time.Second, Runtime: 550 * time.Millisecond, Cores: 2},
		{Tenant: "t00", Arrival: 2 * time.Second, Runtime: 2 * time.Second, Cores: 4},
	}}
	specs, err := Specs(tr, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	for i, spec := range specs {
		if spec.Tenant != tr.Rows[i].Tenant || spec.Cores != tr.Rows[i].Cores || spec.Arrival != tr.Rows[i].Arrival {
			t.Errorf("spec %d = %q/%d/%s, want %q/%d/%s", i,
				spec.Tenant, spec.Cores, spec.Arrival,
				tr.Rows[i].Tenant, tr.Rows[i].Cores, tr.Rows[i].Arrival)
		}
		if spec.Baseline <= 0 {
			t.Errorf("spec %d has no baseline", i)
		}
	}
	// Rows 0 and 1 share the 500ms bucket and demand, so their workloads
	// and baselines are identical.
	if specs[0].Baseline != specs[1].Baseline {
		t.Errorf("bucketed baselines differ: %s vs %s", specs[0].Baseline, specs[1].Baseline)
	}
	if specs[0].Workload.Name() != specs[1].Workload.Name() {
		t.Errorf("bucketed workloads differ: %s vs %s", specs[0].Workload.Name(), specs[1].Workload.Name())
	}
}

// TestReplayFixtureValidates replays the committed fixture through a
// 4-shard control plane and checks the merged report against the trace's
// empirical per-tenant distributions — the whole tentpole pipeline
// end-to-end.
func TestReplayFixtureValidates(t *testing.T) {
	tr, err := Load("testdata/multitenant_small.csv")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := Specs(tr, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.New(shard.Config{Shards: 4, Cluster: cluster.Config{
		Jobs: specs, PoolCores: 16, Seed: 9,
		Strategy: cluster.StrategyQueue,
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(tr.Rows) {
		t.Fatalf("replayed %d jobs, trace has %d", rep.Jobs, len(tr.Rows))
	}
	v := Validate(tr, rep)
	if !v.OK {
		t.Errorf("validation failed:\n%s", v)
	}
	if len(v.Tenants) != 4 {
		t.Errorf("validated %d tenants, want 4", len(v.Tenants))
	}
	for _, tv := range v.Tenants {
		if tv.RuntimeRatio <= 0 {
			t.Errorf("tenant %s has no runtime ratio", tv.Tenant)
		}
	}
}
