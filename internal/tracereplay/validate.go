package tracereplay

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"splitserve/internal/shard"
)

// TenantValidation compares one tenant's traced distribution against its
// replayed outcome.
type TenantValidation struct {
	Tenant string `json:"tenant"`
	// Job counts and stream shares must match exactly: replay drops or
	// duplicates nothing.
	TracedJobs  int     `json:"traced_jobs"`
	ReplayJobs  int     `json:"replay_jobs"`
	TracedShare float64 `json:"traced_share"`
	ReplayShare float64 `json:"replay_share"`
	// Mean demand must match exactly (demand is copied, not modelled).
	TracedMeanCores float64 `json:"traced_mean_cores"`
	ReplayMeanCores float64 `json:"replay_mean_cores"`
	// Runtimes are modelled (quantized sparkpi plus scheduler overheads),
	// so the replayed mean tracks — not equals — the traced mean;
	// RuntimeRatio is replay/traced over the tenant's completed jobs.
	TracedMeanRuntimeUS int64   `json:"traced_mean_runtime_us"`
	ReplayMeanRunUS     int64   `json:"replay_mean_run_us"`
	RuntimeRatio        float64 `json:"runtime_ratio"`
}

// Validation is the whole-trace validation result.
type Validation struct {
	OK      bool               `json:"ok"`
	Tenants []TenantValidation `json:"tenants"`
	// Problems lists every exact-match violation (empty when OK).
	Problems []string `json:"problems,omitempty"`
}

// Validate checks a sharded replay against the trace it came from: every
// tenant's job count, stream share and mean core demand must match the
// trace exactly, and the modelled runtimes are reported as a ratio for
// eyeballing calibration drift. Works off the merged report's underlying
// cluster reports, so stolen jobs are validated where they ran.
func Validate(tr *Trace, rep *shard.Report) *Validation {
	type acc struct {
		jobs    int
		cores   int
		runUS   int64
		runJobs int
	}
	traced := map[string]*acc{}
	for _, row := range tr.Rows {
		a := traced[row.Tenant]
		if a == nil {
			a = &acc{}
			traced[row.Tenant] = a
		}
		a.jobs++
		a.cores += row.Cores
		a.runUS += row.Runtime.Microseconds()
		a.runJobs++
	}
	replayed := map[string]*acc{}
	for _, cr := range rep.ClusterReports {
		if cr == nil {
			continue
		}
		for _, jr := range cr.JobReports {
			a := replayed[jr.Tenant]
			if a == nil {
				a = &acc{}
				replayed[jr.Tenant] = a
			}
			a.jobs++
			a.cores += jr.Cores
			if jr.Failed == "" && jr.Shed == "" {
				a.runUS += jr.RunUS
				a.runJobs++
			}
		}
	}

	names := make([]string, 0, len(traced))
	for name := range traced {
		names = append(names, name)
	}
	sort.Strings(names)

	v := &Validation{OK: true}
	for _, name := range names {
		ta := traced[name]
		ra := replayed[name]
		if ra == nil {
			ra = &acc{}
		}
		tv := TenantValidation{
			Tenant:          name,
			TracedJobs:      ta.jobs,
			ReplayJobs:      ra.jobs,
			TracedShare:     float64(ta.jobs) / float64(len(tr.Rows)),
			TracedMeanCores: float64(ta.cores) / float64(ta.jobs),
		}
		if rep.Jobs > 0 {
			tv.ReplayShare = float64(ra.jobs) / float64(rep.Jobs)
		}
		if ra.jobs > 0 {
			tv.ReplayMeanCores = float64(ra.cores) / float64(ra.jobs)
		}
		if ta.runJobs > 0 {
			tv.TracedMeanRuntimeUS = ta.runUS / int64(ta.runJobs)
		}
		if ra.runJobs > 0 {
			tv.ReplayMeanRunUS = ra.runUS / int64(ra.runJobs)
		}
		if tv.TracedMeanRuntimeUS > 0 && tv.ReplayMeanRunUS > 0 {
			tv.RuntimeRatio = float64(tv.ReplayMeanRunUS) / float64(tv.TracedMeanRuntimeUS)
		}
		if tv.ReplayJobs != tv.TracedJobs {
			v.Problems = append(v.Problems, fmt.Sprintf(
				"tenant %s: %d jobs replayed, %d traced", name, tv.ReplayJobs, tv.TracedJobs))
		}
		if tv.ReplayMeanCores != tv.TracedMeanCores {
			v.Problems = append(v.Problems, fmt.Sprintf(
				"tenant %s: mean demand %.2f cores replayed, %.2f traced", name, tv.ReplayMeanCores, tv.TracedMeanCores))
		}
		v.Tenants = append(v.Tenants, tv)
	}
	for name, ra := range replayed {
		if traced[name] == nil {
			v.Problems = append(v.Problems, fmt.Sprintf(
				"tenant %s: %d jobs replayed but absent from the trace", name, ra.jobs))
		}
	}
	sort.Strings(v.Problems)
	v.OK = len(v.Problems) == 0
	return v
}

// String renders the validation as a per-tenant table plus any problems.
func (v *Validation) String() string {
	var b strings.Builder
	status := "ok"
	if !v.OK {
		status = "MISMATCH"
	}
	fmt.Fprintf(&b, "trace replay validation: %s (%d tenants)\n", status, len(v.Tenants))
	fmt.Fprintf(&b, "%-10s %11s %11s %12s %12s %12s %8s\n",
		"tenant", "jobs t/r", "share t/r", "cores t/r", "runtime", "replay-run", "ratio")
	for _, t := range v.Tenants {
		fmt.Fprintf(&b, "%-10s %5d/%-5d %5.3f/%-5.3f %5.2f/%-6.2f %12s %12s %7.2fx\n",
			t.Tenant, t.TracedJobs, t.ReplayJobs, t.TracedShare, t.ReplayShare,
			t.TracedMeanCores, t.ReplayMeanCores,
			(time.Duration(t.TracedMeanRuntimeUS) * time.Microsecond).Round(time.Millisecond).String(),
			(time.Duration(t.ReplayMeanRunUS) * time.Microsecond).Round(time.Millisecond).String(),
			t.RuntimeRatio)
	}
	for _, p := range v.Problems {
		fmt.Fprintf(&b, "problem: %s\n", p)
	}
	return b.String()
}
