package storage

import (
	"errors"
	"testing"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
)

func setup() (*simclock.Clock, *netsim.Network, *Local) {
	c := simclock.New(simclock.Epoch)
	n := netsim.New(c)
	return c, n, NewLocal(c, n)
}

func TestPutFetchRoundTrip(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 1000)
	cl := Client{HostID: "h1", Disk: []*netsim.Pool{disk}}
	var fetched []Block
	s.PutAll([]Block{{ID: "b1", Payload: "hello", Size: 500}}, cl, func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		s.FetchAll([]string{"b1"}, cl, func(bs []Block, err error) {
			if err != nil {
				t.Errorf("fetch: %v", err)
			}
			fetched = bs
		})
	})
	c.Run()
	if len(fetched) != 1 || fetched[0].Payload != "hello" {
		t.Fatalf("fetched = %+v", fetched)
	}
	// Put: 1ms + 500B at 1000B/s = ~0.501s; fetch same again.
	elapsed := c.Since(simclock.Epoch)
	want := 2*(time.Millisecond) + 2*(500*time.Millisecond)
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestFetchMissingBlock(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 1000)
	cl := Client{HostID: "h1", Disk: []*netsim.Pool{disk}}
	var gotErr error
	s.FetchAll([]string{"nope"}, cl, func(_ []Block, err error) { gotErr = err })
	c.Run()
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", gotErr)
	}
}

func TestRemoteFetchTraversesSourcePools(t *testing.T) {
	c, n, s := setup()
	disk1 := n.NewPool("h1-disk", 100)
	disk2 := n.NewPool("h2-disk", 1e9)
	s.RegisterHost("h1", Client{HostID: "h1", Disk: []*netsim.Pool{disk1}})
	writer := Client{HostID: "h1", Disk: []*netsim.Pool{disk1}}
	reader := Client{HostID: "h2", Net: []*netsim.Pool{disk2}}
	var doneAt time.Time
	s.PutAll([]Block{{ID: "b", Size: 1000}}, writer, func(error) {
		s.FetchAll([]string{"b"}, reader, func(_ []Block, err error) {
			if err != nil {
				t.Errorf("fetch: %v", err)
			}
			doneAt = c.Now()
		})
	})
	c.Run()
	// Write: 1ms + 10s. Read bottlenecked by h1's 100 B/s disk: 1ms + 10s.
	want := simclock.Epoch.Add(2*time.Millisecond + 20*time.Second)
	if !doneAt.Equal(want) {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
}

func TestLocalFetchSkipsSourceRegistration(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 1000)
	cl := Client{HostID: "h1", Disk: []*netsim.Pool{disk}}
	ok := false
	s.PutAll([]Block{{ID: "b", Size: 100}}, cl, func(error) {
		s.FetchAll([]string{"b"}, cl, func(_ []Block, err error) { ok = err == nil })
	})
	c.Run()
	if !ok {
		t.Fatal("same-host fetch failed")
	}
}

func TestDropHostLosesBlocks(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 1e6)
	cl := Client{HostID: "h1", Disk: []*netsim.Pool{disk}}
	s.PutAll([]Block{{ID: "b1", Size: 10}, {ID: "b2", Size: 10}}, cl, func(error) {})
	c.Run()
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.DropHost("h1")
	if s.Len() != 0 {
		t.Fatalf("blocks survived DropHost: %d", s.Len())
	}
	var gotErr error
	s.FetchAll([]string{"b1"}, cl, func(_ []Block, err error) { gotErr = err })
	c.Run()
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestDropHostSparesOtherHosts(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 1e6)
	s.PutAll([]Block{{ID: "b1", Size: 10}}, Client{HostID: "h1", Disk: []*netsim.Pool{disk}}, func(error) {})
	s.PutAll([]Block{{ID: "b2", Size: 10}}, Client{HostID: "h2", Disk: []*netsim.Pool{disk}}, func(error) {})
	c.Run()
	s.DropHost("h1")
	if !s.Has("b2") || s.Has("b1") {
		t.Fatal("DropHost dropped the wrong blocks")
	}
}

func TestDelete(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 1e6)
	cl := Client{HostID: "h1", Disk: []*netsim.Pool{disk}}
	s.PutAll([]Block{{ID: "b1", Size: 10}}, cl, func(error) {})
	c.Run()
	s.Delete([]string{"b1"})
	if s.Has("b1") {
		t.Fatal("block survived Delete")
	}
}

func TestFetchCoalescesPerSource(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 100)
	cl := Client{HostID: "h1", Disk: []*netsim.Pool{disk}}
	blocks := []Block{
		{ID: "a", Size: 100}, {ID: "b", Size: 100}, {ID: "c", Size: 100},
	}
	var doneAt time.Time
	s.PutAll(blocks, cl, func(error) {
		s.FetchAll([]string{"a", "b", "c"}, cl, func(bs []Block, err error) {
			if err != nil || len(bs) != 3 {
				t.Errorf("fetch: %v %d", err, len(bs))
			}
			doneAt = c.Now()
		})
	})
	c.Run()
	// One coalesced 300B flow each way at 100 B/s: 2x(1ms+3s). If fetches
	// were per-block sequential we would see extra latency.
	want := simclock.Epoch.Add(2*time.Millisecond + 6*time.Second)
	if !doneAt.Equal(want) {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
}

func TestFetchOrderMatchesRequest(t *testing.T) {
	c, n, s := setup()
	disk := n.NewPool("disk", 1e6)
	cl := Client{HostID: "h1", Disk: []*netsim.Pool{disk}}
	s.PutAll([]Block{
		{ID: "x", Payload: 1, Size: 1},
		{ID: "y", Payload: 2, Size: 1},
	}, cl, func(error) {})
	c.Run()
	var got []Block
	s.FetchAll([]string{"y", "x"}, cl, func(bs []Block, _ error) { got = bs })
	c.Run()
	if got[0].Payload != 2 || got[1].Payload != 1 {
		t.Fatalf("order wrong: %+v", got)
	}
}
