// Package storage defines the block-storage contract the shuffle layer
// programs against, plus the executor-local implementation that vanilla
// Spark's dynamic allocation uses ("all of the intermediate shuffle output
// is written to the local disk").
//
// Three implementations exist in this repository:
//
//   - Local (this package): blocks live on the writing host; reads from
//     other hosts traverse the source host's disk and NIC; losing a host
//     loses its blocks — which is what forces Spark's lineage rollback.
//   - HDFS (internal/hdfs + adapter in internal/spark/shuffle): the paper's
//     SplitServe state-transfer facility.
//   - S3 (internal/s3q + adapter): the Qubole Spark-on-Lambda baseline.
//
// All operations are asynchronous on the simulation clock: time is charged
// through netsim flows and per-request latencies, and payloads (real Go
// values produced by real tasks) are carried alongside their modelled
// serialized size.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
)

// ErrNotFound reports a missing block — typically because the host that
// held it died. The DAG scheduler reacts by resubmitting parent stages.
var ErrNotFound = errors.New("storage: block not found")

// Block is one stored unit: a real payload plus its modelled on-disk size.
type Block struct {
	ID      string
	Payload any
	Size    int64
}

// Client describes the I/O path of the caller: the bandwidth pools its
// traffic traverses on its own side (VM executors: host EBS and/or NIC;
// Lambda executors: their private egress pool) and an optional rate cap.
type Client struct {
	HostID string
	// Disk pools carry local-disk traffic (e.g. the host's EBS volume);
	// Net pools carry network traffic (NIC, Lambda egress).
	Disk []*netsim.Pool
	Net  []*netsim.Pool
	// RateCap bounds this client's throughput (bytes/s; 0 = unlimited).
	RateCap float64
}

// Store is the asynchronous block store contract.
type Store interface {
	// Name identifies the backend ("local", "hdfs", "s3").
	Name() string
	// PutAll writes blocks, charging one coalesced transfer, then calls
	// done. Implementations must call done exactly once.
	PutAll(blocks []Block, cl Client, done func(error))
	// FetchAll reads blocks by ID, coalescing transfers per source, then
	// calls done with blocks in request order.
	FetchAll(ids []string, cl Client, done func([]Block, error))
	// Delete removes blocks (no time charged; deletion is asynchronous
	// metadata work in all three real systems).
	Delete(ids []string)
	// DropHost discards every block owned by hostID. External stores
	// ignore it; the local store loses data, as real executor-local
	// shuffle files are lost with the host.
	DropHost(hostID string)
	// Durable reports whether blocks survive the loss of the host that
	// wrote them (true for HDFS and S3, false for executor-local disk).
	Durable() bool
}

// Local is the executor-local disk store.
type Local struct {
	clock *simclock.Clock
	net   *netsim.Network
	// diskLatency models one seek/open per coalesced request.
	diskLatency time.Duration

	blocks map[string]localBlock
	hosts  map[string]Client // host ID -> serving-side path
}

type localBlock struct {
	block Block
	host  string
}

var _ Store = (*Local)(nil)

// NewLocal returns an empty local store.
func NewLocal(clock *simclock.Clock, net *netsim.Network) *Local {
	return &Local{
		clock:       clock,
		net:         net,
		diskLatency: time.Millisecond,
		blocks:      make(map[string]localBlock),
		hosts:       make(map[string]Client),
	}
}

// Name implements Store.
func (l *Local) Name() string { return "local" }

// Durable implements Store: local blocks die with their host.
func (l *Local) Durable() bool { return false }

// RegisterHost associates a host ID with the I/O path used when *serving*
// its blocks to remote readers.
func (l *Local) RegisterHost(hostID string, serving Client) {
	l.hosts[hostID] = serving
}

// PutAll implements Store: the write lands on the client's own host.
func (l *Local) PutAll(blocks []Block, cl Client, done func(error)) {
	total := int64(0)
	for _, b := range blocks {
		total += b.Size
	}
	l.clock.After(l.diskLatency, func() {
		l.net.StartFlow(float64(total), cl.RateCap, cl.Disk, func() {
			for _, b := range blocks {
				l.blocks[b.ID] = localBlock{block: b, host: cl.HostID}
			}
			done(nil)
		})
	})
}

// FetchAll implements Store: one coalesced flow per source host; local
// blocks (same host) traverse only the client's pools.
func (l *Local) FetchAll(ids []string, cl Client, done func([]Block, error)) {
	out := make([]Block, len(ids))
	bySource := make(map[string]int64)
	for i, id := range ids {
		lb, ok := l.blocks[id]
		if !ok {
			l.clock.After(0, func() {
				done(nil, fmt.Errorf("fetching %s: %w", id, ErrNotFound))
			})
			return
		}
		out[i] = lb.block
		bySource[lb.host] += lb.block.Size
	}
	pending := len(bySource)
	if pending == 0 {
		l.clock.After(0, func() { done(out, nil) })
		return
	}
	failed := false
	finish := func() {
		pending--
		if pending == 0 && !failed {
			done(out, nil)
		}
	}
	hosts := make([]string, 0, len(bySource))
	for host := range bySource {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		bytes := bySource[host]
		var pools []*netsim.Pool
		if host == cl.HostID {
			pools = append(pools, cl.Disk...)
		} else {
			pools = append(pools, cl.Net...)
			if serving, ok := l.hosts[host]; ok {
				pools = append(pools, serving.Disk...)
				pools = append(pools, serving.Net...)
			}
		}
		l.clock.After(l.diskLatency, func() {
			l.net.StartFlow(float64(bytes), cl.RateCap, pools, finish)
		})
	}
}

// Delete implements Store.
func (l *Local) Delete(ids []string) {
	for _, id := range ids {
		delete(l.blocks, id)
	}
}

// DropHost implements Store: the host's blocks are gone.
func (l *Local) DropHost(hostID string) {
	for id, lb := range l.blocks {
		if lb.host == hostID {
			delete(l.blocks, id)
		}
	}
}

// Has reports whether a block is present (test/inspection helper).
func (l *Local) Has(id string) bool {
	_, ok := l.blocks[id]
	return ok
}

// Len returns the number of stored blocks.
func (l *Local) Len() int { return len(l.blocks) }
