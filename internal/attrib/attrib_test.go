package attrib_test

import (
	"bytes"
	"testing"
	"time"

	"splitserve/internal/attrib"
	"splitserve/internal/cluster"
	"splitserve/internal/eventlog"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/shufflereuse"
	"splitserve/internal/workloads/sparkpi"
)

// piJob builds a small sparkpi workload (same sizing idiom as the
// cluster tests: cheap real CPU, seconds of simulated CPU).
func piJob(partitions int, taskSecs float64) workloads.Workload {
	return sparkpi.New(sparkpi.Config{
		Darts:               int64(float64(partitions) * taskSecs * 5e7 / 0.4),
		SampledDartsPerTask: 400_000 / partitions,
		Partitions:          partitions,
		CostPerDart:         0.4,
		Seed:                3,
	})
}

func shuffleJob() workloads.Workload {
	return shufflereuse.New(shufflereuse.Config{
		Partitions:       4,
		RowsPerPartition: 500,
		RowBytes:         4096,
		Keys:             4 * 500,
		Reuse:            3,
	})
}

func clusterEvents(t *testing.T, cfg cluster.Config) []eventlog.Event {
	t.Helper()
	s, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("cluster.Run: %v", err)
	}
	return s.Events().Events()
}

// mixedConfig is a small randomized multi-job day: a pool too small for
// the combined demand, bridged Lambda shortfall, poisson arrivals.
func mixedConfig(t *testing.T, seed uint64) cluster.Config {
	t.Helper()
	mk := func(i int, w workloads.Workload, name string, cores int, at time.Duration) cluster.JobSpec {
		base, err := cluster.Baseline(w, cores, 9)
		if err != nil {
			t.Fatalf("Baseline: %v", err)
		}
		return cluster.JobSpec{Name: name, Workload: w, Cores: cores, Arrival: at, Baseline: base}
	}
	arrivals, err := cluster.ParseArrivals("poisson:20s", 4, seed)
	if err != nil {
		t.Fatalf("ParseArrivals: %v", err)
	}
	jobs := []cluster.JobSpec{
		mk(0, piJob(8, 2), "sparkpi", 8, arrivals[0]),
		mk(1, shuffleJob(), "shufflereuse", 8, arrivals[1]),
		mk(2, piJob(4, 3), "sparkpi", 4, arrivals[2]),
		mk(3, shuffleJob(), "shufflereuse", 8, arrivals[3]),
	}
	return cluster.Config{
		Jobs:      jobs,
		PoolCores: 8,
		Policy:    cluster.FairShare(),
		Strategy:  cluster.StrategyBridge,
		SLOFactor: 3,
		Seed:      seed,
	}
}

// TestBlameSumsToMakespan is the core property: for every job of a
// randomized cluster run, the blame components sum to the makespan
// within one virtual tick (1 µs), the critical path tiles the window
// gaplessly, and the path's span durations cover the whole makespan.
func TestBlameSumsToMakespan(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		events := clusterEvents(t, mixedConfig(t, seed))
		rep := attrib.Analyze(events)
		if len(rep.Jobs) != 4 {
			t.Fatalf("seed %d: attributed %d jobs, want 4", seed, len(rep.Jobs))
		}
		for _, j := range rep.Jobs {
			diff := j.BlameSumUS() - j.MakespanUS
			if diff < -1 || diff > 1 {
				t.Errorf("seed %d app %s: blame sum %d != makespan %d (diff %d)",
					seed, j.App, j.BlameSumUS(), j.MakespanUS, diff)
			}
			// Path tiles [arrival, end] with no gaps or overlaps.
			at := j.ArrivalUS
			var pathSum int64
			for i, seg := range j.Path {
				if seg.StartUS != at {
					t.Errorf("seed %d app %s: segment %d starts at %d, want %d",
						seed, j.App, i, seg.StartUS, at)
				}
				if seg.EndUS <= seg.StartUS {
					t.Errorf("seed %d app %s: segment %d is empty or reversed", seed, j.App, i)
				}
				pathSum += seg.DurUS()
				at = seg.EndUS
			}
			if len(j.Path) > 0 && at != j.EndUS {
				t.Errorf("seed %d app %s: path ends at %d, want %d", seed, j.App, at, j.EndUS)
			}
			if pathSum < j.MakespanUS {
				t.Errorf("seed %d app %s: path covers %d µs < makespan %d µs",
					seed, j.App, pathSum, j.MakespanUS)
			}
			if v := j.BlameUS[attrib.PreemptOverhead]; v != 0 {
				t.Errorf("seed %d app %s: preempt_overhead = %d, want 0 (reserved)", seed, j.App, v)
			}
		}
		// Totals mirror the per-job sums.
		var want int64
		for _, j := range rep.Jobs {
			want += j.MakespanUS
		}
		if rep.Totals.MakespanUS != want {
			t.Errorf("seed %d: totals makespan %d, want %d", seed, rep.Totals.MakespanUS, want)
		}
	}
}

// TestSameSeedByteIdentical: the attribution report inherits the event
// log's replay guarantee — same seed, same bytes.
func TestSameSeedByteIdentical(t *testing.T) {
	run := func() []byte {
		rep := attrib.Analyze(clusterEvents(t, mixedConfig(t, 5)))
		buf, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty attribution JSON")
	}
	if !bytes.Equal(a, b) {
		t.Error("same-seed attribution reports differ byte-wise")
	}
}

// warmComparableConfig builds a run where the Lambda bridge carries most
// of the work — a 2-core VM pool against an 8-core job with long tasks —
// so executor start-up genuinely gates the critical path. The warm-pool
// size is the only variable between the two runs the -warmpool diff
// acceptance test compares.
func warmComparableConfig(t *testing.T, warmPool int) cluster.Config {
	t.Helper()
	w := piJob(16, 4)
	base, err := cluster.Baseline(w, 8, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	jobs := []cluster.JobSpec{{
		Name: "sparkpi", Workload: w, Cores: 8, Arrival: 0, Baseline: base,
	}}
	return cluster.Config{
		Jobs:       jobs,
		PoolCores:  2,
		Policy:     cluster.FairShare(),
		Strategy:   cluster.StrategyBridge,
		SLOFactor:  3,
		Seed:       5,
		ColdStarts: true,
		WarmPool:   warmPool,
		TmpCache:   warmPool > 0,
	}
}

// TestWarmpoolDiffConcentrated: two runs differing only by the warm pool
// must diff with the delta concentrated in lambda_cold_start /
// warm_hit_saved — the acceptance criterion for run-to-run diffing.
func TestWarmpoolDiffConcentrated(t *testing.T) {
	cold := attrib.Analyze(clusterEvents(t, warmComparableConfig(t, 0)))
	warm := attrib.Analyze(clusterEvents(t, warmComparableConfig(t, 4)))

	coldCS := cold.Totals.BlameUS[string(attrib.LambdaColdStart)]
	warmCS := warm.Totals.BlameUS[string(attrib.LambdaColdStart)]
	if coldCS == 0 {
		t.Fatal("cold run shows no lambda_cold_start blame on the critical path")
	}
	if warmCS >= coldCS {
		t.Errorf("warm pool did not reduce cold-start blame: cold %d µs, warm %d µs", coldCS, warmCS)
	}
	if warm.Totals.SavedUS[string(attrib.WarmHitSaved)] == 0 {
		t.Error("warm run credits no warm_hit_saved")
	}

	d := attrib.DiffReports(cold, warm)
	dom, _ := d.Dominant()
	if dom != attrib.LambdaColdStart && dom != attrib.WarmHitSaved {
		t.Errorf("diff dominant cause = %s, want lambda_cold_start or warm_hit_saved\n%s",
			dom, d.String())
	}
}

// TestSelfDiffAllZero: a report diffed against itself is all zeros —
// the `make attrib` smoke contract.
func TestSelfDiffAllZero(t *testing.T) {
	rep := attrib.Analyze(clusterEvents(t, warmComparableConfig(t, 4)))
	d := attrib.DiffReports(rep, rep)
	if !d.AllZero() {
		t.Errorf("self-diff is not all zeros:\n%s", d.String())
	}
}

// TestParseReportRoundTrip: JSON -> ParseReport -> JSON is stable, and
// other schemas are rejected.
func TestParseReportRoundTrip(t *testing.T) {
	rep := attrib.Analyze(clusterEvents(t, mixedConfig(t, 2)))
	buf, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := attrib.ParseReport(buf)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	buf2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Error("report JSON not stable through a parse round trip")
	}
	if _, err := attrib.ParseReport([]byte(`{"schema":"bogus/v0"}`)); err == nil {
		t.Error("ParseReport accepted an unknown schema")
	}
}

// TestSyntheticGapAttribution pins the gap rules on a hand-built log:
// queue wait before admission, an executor-registration wait blamed on
// vm_boot, task time as compute, and teardown as driver compute.
func TestSyntheticGapAttribution(t *testing.T) {
	sec := func(s int64) int64 { return s * 1_000_000 }
	mk := func(typ eventlog.Type, ts int64, f func(*eventlog.Event)) eventlog.Event {
		ev := eventlog.Ev(typ)
		ev.App = "j000-synthetic"
		ev.TS = ts
		if f != nil {
			f(&ev)
		}
		return ev
	}
	events := []eventlog.Event{
		mk(eventlog.ClusterArrive, sec(0), func(e *eventlog.Event) { e.Note = "synthetic"; e.Cores = 4 }),
		mk(eventlog.ClusterAdmit, sec(2), func(e *eventlog.Event) { e.Cores = 4 }),
		mk(eventlog.ExecutorAdd, sec(5), func(e *eventlog.Event) { e.Exec = "j000-v00"; e.Kind = "vm"; e.Cores = 1 }),
		mk(eventlog.TaskStart, sec(5), func(e *eventlog.Event) { e.Exec = "j000-v00"; e.Stage = 0; e.Task = 0 }),
		mk(eventlog.TaskEnd, sec(9), func(e *eventlog.Event) { e.Exec = "j000-v00"; e.Stage = 0; e.Task = 0 }),
		mk(eventlog.ExecutorRemove, sec(9), func(e *eventlog.Event) { e.Exec = "j000-v00" }),
		mk(eventlog.ClusterFinish, sec(10), nil),
	}
	rep := attrib.Analyze(events)
	if len(rep.Jobs) != 1 {
		t.Fatalf("attributed %d jobs, want 1", len(rep.Jobs))
	}
	j := rep.Jobs[0]
	if j.MakespanUS != sec(10) {
		t.Fatalf("makespan = %d, want %d", j.MakespanUS, sec(10))
	}
	want := map[attrib.Cause]int64{
		attrib.QueueWait: sec(2), // arrival -> admit
		attrib.VMBoot:    sec(3), // admit -> executor registration
		attrib.Compute:   sec(5), // 4 s task + 1 s teardown
	}
	for c, v := range want {
		if j.BlameUS[c] != v {
			t.Errorf("blame[%s] = %d, want %d", c, j.BlameUS[c], v)
		}
	}
	if got := j.BlameSumUS(); got != j.MakespanUS {
		t.Errorf("blame sum %d != makespan %d", got, j.MakespanUS)
	}
	if j.Tenant != "j000" {
		t.Errorf("tenant = %q, want j000", j.Tenant)
	}
}

// TestShardAssignTenant: on sharded multi-tenant logs, the true tenant id
// from shard_assign (and shard_steal, for migrated jobs) wins over the
// app-prefix fallback, and the ByTenant table keys by it.
func TestShardAssignTenant(t *testing.T) {
	sec := func(s int64) int64 { return s * 1_000_000 }
	mk := func(typ eventlog.Type, ts int64, app string, f func(*eventlog.Event)) eventlog.Event {
		ev := eventlog.Ev(typ)
		ev.App = app
		ev.TS = ts
		if f != nil {
			f(&ev)
		}
		return ev
	}
	events := []eventlog.Event{
		mk(eventlog.ShardAssign, sec(0), "s0-j000-synthetic", func(e *eventlog.Event) { e.Exec = "t07"; e.Cores = 2; e.Note = "shard=0" }),
		mk(eventlog.ClusterArrive, sec(0), "s0-j000-synthetic", func(e *eventlog.Event) { e.Note = "synthetic"; e.Cores = 2 }),
		mk(eventlog.ShardSteal, sec(1), "s1-j000-synthetic", func(e *eventlog.Event) { e.Exec = "t07"; e.Cores = 2; e.Note = "s0->s1" }),
		mk(eventlog.ClusterArrive, sec(1), "s1-j000-synthetic", func(e *eventlog.Event) { e.Note = "synthetic"; e.Cores = 2 }),
		mk(eventlog.ClusterAdmit, sec(2), "s1-j000-synthetic", nil),
		mk(eventlog.ClusterFinish, sec(4), "s1-j000-synthetic", nil),
		mk(eventlog.ClusterAdmit, sec(2), "s0-j000-synthetic", nil),
		mk(eventlog.ClusterFinish, sec(5), "s0-j000-synthetic", nil),
	}
	rep := attrib.Analyze(events)
	if len(rep.Jobs) != 2 {
		t.Fatalf("attributed %d jobs, want 2", len(rep.Jobs))
	}
	for _, j := range rep.Jobs {
		if j.Tenant != "t07" {
			t.Errorf("app %s: tenant = %q, want t07 (from shard events)", j.App, j.Tenant)
		}
	}
	if _, ok := rep.ByTenant["t07"]; !ok || len(rep.ByTenant) != 1 {
		t.Errorf("ByTenant keys = %v, want exactly [t07]", rep.ByTenant)
	}
}

// TestAdmissionDelayCause: a cluster_job_delay event reclassifies the
// pre-admission window from queue_wait to admission_delay.
func TestAdmissionDelayCause(t *testing.T) {
	sec := func(s int64) int64 { return s * 1_000_000 }
	mk := func(typ eventlog.Type, ts int64, f func(*eventlog.Event)) eventlog.Event {
		ev := eventlog.Ev(typ)
		ev.App = "j001-delayed"
		ev.TS = ts
		if f != nil {
			f(&ev)
		}
		return ev
	}
	events := []eventlog.Event{
		mk(eventlog.ClusterArrive, sec(0), nil),
		mk(eventlog.ClusterDelay, sec(1), nil),
		mk(eventlog.ClusterAdmit, sec(4), nil),
		mk(eventlog.ClusterFinish, sec(6), nil),
	}
	j := attrib.Analyze(events).Jobs[0]
	if j.BlameUS[attrib.AdmissionDelay] != sec(4) {
		t.Errorf("admission_delay = %d, want %d", j.BlameUS[attrib.AdmissionDelay], sec(4))
	}
	if j.BlameUS[attrib.QueueWait] != 0 {
		t.Errorf("queue_wait = %d, want 0 when the admission policy delayed the job",
			j.BlameUS[attrib.QueueWait])
	}
}

// TestEmptyLog: no events, no jobs, valid JSON.
func TestEmptyLog(t *testing.T) {
	rep := attrib.Analyze(nil)
	if len(rep.Jobs) != 0 {
		t.Fatalf("attributed %d jobs from an empty log", len(rep.Jobs))
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	d := attrib.DiffReports(rep, rep)
	if !d.AllZero() {
		t.Error("empty self-diff not all zeros")
	}
}
