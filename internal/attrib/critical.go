package attrib

import (
	"sort"
	"strings"

	"splitserve/internal/eventlog"
)

// taskIval is one finished task occurrence, the unit the critical-path
// walk steps through.
type taskIval struct {
	startUS int64
	endUS   int64
	stage   int
	task    int
	exec    string
	kind    string
}

// ioPoint is one shuffle instant (bytes at a timestamp) used to model
// I/O time inside critical tasks.
type ioPoint struct {
	tsUS  int64
	task  int
	exec  string
	bytes int64
}

// appLog is everything the walk needs about one application, extracted
// from the stream in a single pass.
type appLog struct {
	app  string
	name string
	// tenant is the submitting tenant, learned from the sharded control
	// plane's shard_assign/shard_steal events (empty on unsharded logs,
	// where the app-prefix fallback applies).
	tenant    string
	arrivalUS int64
	admitUS   int64
	endUS     int64
	delayed   bool
	failed    bool
	tasks     []taskIval
	execAdd   map[string]int64  // executor -> registration TS
	execKind  map[string]string // executor -> "vm" | "lambda"
	execRem   map[string]int64  // executor -> removal TS (-1 = never)
	reads     []ioPoint         // shuffle_read instants
	writes    []ioPoint         // shuffle_write instants
	// stageStart maps stage -> earliest stage_start TS: the moment the
	// stage's tasks became runnable (the walk's "stage ready" anchor).
	stageStart map[int]int64
	// medians holds the per-stage median task duration, the straggler
	// baseline (same rule as eventlog.Analyze).
	medians map[int]int64
	// looseEndUS is the latest engine-level end observed (job_end, task
	// ends) — the fallback end for logs without cluster events.
	looseEndUS int64
}

// attributeJobs extracts per-app logs from the stream and runs the
// causal decomposition on each, in first-arrival order (ties broken by
// app name) so the report layout is deterministic.
func attributeJobs(events []eventlog.Event) []JobAttribution {
	apps := collectApps(events)
	if len(apps) == 0 {
		return nil
	}
	order := make([]*appLog, 0, len(apps))
	for _, al := range apps {
		order = append(order, al)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].arrivalUS != order[j].arrivalUS {
			return order[i].arrivalUS < order[j].arrivalUS
		}
		return order[i].app < order[j].app
	})
	out := make([]JobAttribution, 0, len(order))
	for _, al := range order {
		out = append(out, attributeApp(al))
	}
	return out
}

// collectApps partitions the stream by application. Events with no app
// (cloud control plane, warm pool) are shared context and not a job.
func collectApps(events []eventlog.Event) map[string]*appLog {
	apps := map[string]*appLog{}
	type taskKey struct {
		exec  string
		stage int
		task  int
	}
	open := map[string]map[taskKey]int64{} // app -> open task starts

	appOf := func(name string) *appLog {
		al, ok := apps[name]
		if !ok {
			al = &appLog{
				app: name, arrivalUS: -1, admitUS: -1, endUS: -1,
				execAdd:    map[string]int64{},
				execKind:   map[string]string{},
				execRem:    map[string]int64{},
				stageStart: map[int]int64{},
				medians:    map[int]int64{},
			}
			apps[name] = al
			open[name] = map[taskKey]int64{}
		}
		return al
	}

	for _, e := range events {
		if e.App == "" {
			continue
		}
		switch e.Type {
		case eventlog.ClusterArrive:
			al := appOf(e.App)
			al.arrivalUS = e.TS
			al.name = e.Note
		case eventlog.ShardAssign, eventlog.ShardSteal:
			// Exec carries the true tenant id; a stolen job's assign and
			// steal events agree on it, so last-writer-wins is safe.
			appOf(e.App).tenant = e.Exec
		case eventlog.ClusterAdmit:
			appOf(e.App).admitUS = e.TS
		case eventlog.ClusterDelay:
			appOf(e.App).delayed = true
		case eventlog.ClusterFinish:
			appOf(e.App).endUS = e.TS
		case eventlog.ClusterFail:
			al := appOf(e.App)
			al.endUS = e.TS
			al.failed = true
		case eventlog.JobStart:
			al := appOf(e.App)
			if al.arrivalUS < 0 {
				al.arrivalUS = e.TS
			}
		case eventlog.JobEnd:
			al := appOf(e.App)
			if e.TS > al.looseEndUS {
				al.looseEndUS = e.TS
			}
		case eventlog.StageStart:
			al := appOf(e.App)
			if first, ok := al.stageStart[e.Stage]; !ok || e.TS < first {
				al.stageStart[e.Stage] = e.TS
			}
		case eventlog.TaskStart:
			appOf(e.App)
			open[e.App][taskKey{e.Exec, e.Stage, e.Task}] = e.TS
		case eventlog.TaskEnd, eventlog.TaskFailed:
			al := appOf(e.App)
			k := taskKey{e.Exec, e.Stage, e.Task}
			start, ok := open[e.App][k]
			if !ok {
				continue
			}
			delete(open[e.App], k)
			if e.TS <= start {
				// Zero-duration occurrences carry no walkable interval
				// and would stall the backward walk.
				continue
			}
			al.tasks = append(al.tasks, taskIval{
				startUS: start, endUS: e.TS,
				stage: e.Stage, task: e.Task,
				exec: e.Exec, kind: al.execKind[e.Exec],
			})
		case eventlog.ExecutorAdd:
			al := appOf(e.App)
			al.execAdd[e.Exec] = e.TS
			if e.Kind != "" {
				al.execKind[e.Exec] = e.Kind
			}
		case eventlog.ExecutorRemove:
			appOf(e.App).execRem[e.Exec] = e.TS
		case eventlog.ShuffleRead:
			al := appOf(e.App)
			al.reads = append(al.reads, ioPoint{tsUS: e.TS, task: e.Task, bytes: e.Bytes})
		case eventlog.ShuffleWrite:
			al := appOf(e.App)
			al.writes = append(al.writes, ioPoint{tsUS: e.TS, task: e.Task, exec: e.Exec, bytes: e.Bytes})
		}
	}

	for name, al := range apps {
		// Resolve endpoints: cluster events win; otherwise fall back to
		// the loose bounds observed from engine events and tasks.
		for _, t := range al.tasks {
			if t.endUS > al.looseEndUS {
				al.looseEndUS = t.endUS
			}
			if al.arrivalUS < 0 {
				al.arrivalUS = t.startUS
			}
		}
		if al.endUS < 0 {
			al.endUS = al.looseEndUS
		}
		if al.arrivalUS < 0 {
			al.arrivalUS = 0
		}
		if al.admitUS < 0 || al.admitUS < al.arrivalUS {
			al.admitUS = al.arrivalUS
		}
		if al.endUS < al.admitUS {
			al.endUS = al.admitUS
		}
		// Apps with no tasks and no lifetime carry nothing to attribute.
		if al.endUS == al.arrivalUS && len(al.tasks) == 0 {
			delete(apps, name)
			continue
		}
		computeMedians(al)
	}
	return apps
}

// computeMedians fills the per-stage median task durations, the
// straggler baseline the walk carves tails against.
func computeMedians(al *appLog) {
	byStage := map[int][]int64{}
	for _, t := range al.tasks {
		byStage[t.stage] = append(byStage[t.stage], t.endUS-t.startUS)
	}
	for st, durs := range byStage {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		al.medians[st] = durs[len(durs)/2]
	}
}

// attributeApp runs the backward critical-path walk over one app and
// converts the path into blame segments that tile [arrival, end].
func attributeApp(al *appLog) JobAttribution {
	tenant := al.tenant
	if tenant == "" {
		tenant = tenantOf(al.app)
	}
	ja := JobAttribution{
		App:        al.app,
		Name:       al.name,
		Tenant:     tenant,
		ArrivalUS:  al.arrivalUS,
		EndUS:      al.endUS,
		MakespanUS: al.endUS - al.arrivalUS,
		Failed:     al.failed,
		BlameUS:    map[Cause]int64{},
		SavedUS:    map[Cause]int64{},
		Path:       []Segment{},
	}

	// Sort tasks by end time so the walk can binary-search the latest
	// task finishing at or before the cursor.
	tasks := append([]taskIval(nil), al.tasks...)
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].endUS != tasks[j].endUS {
			return tasks[i].endUS < tasks[j].endUS
		}
		if tasks[i].startUS != tasks[j].startUS {
			return tasks[i].startUS < tasks[j].startUS
		}
		if tasks[i].stage != tasks[j].stage {
			return tasks[i].stage < tasks[j].stage
		}
		if tasks[i].task != tasks[j].task {
			return tasks[i].task < tasks[j].task
		}
		return tasks[i].exec < tasks[j].exec
	})

	// Per-executor index (sorted by end, inherited from the sort above)
	// for the same-executor predecessor lookup.
	byExec := map[string][]*taskIval{}
	for i := range tasks {
		byExec[tasks[i].exec] = append(byExec[tasks[i].exec], &tasks[i])
	}

	// Backward walk: segs accumulates in reverse time order. Each
	// iteration explains one slice of the timeline ending at the cursor,
	// then asks what bound the critical task's *start* — the same
	// executor finishing earlier work, the executor registering, or the
	// stage becoming ready — and jumps to that constraint.
	var segs []Segment
	cursor := al.endUS
	var forced *taskIval // causal predecessor chosen by the last step
	first := true
	for cursor > al.admitUS {
		t := forced
		forced = nil
		if t == nil {
			t = latestEndingAtOrBefore(tasks, cursor)
			if t == nil {
				detail := "sched"
				if first {
					detail = "driver"
				}
				segs = append(segs, Segment{
					Cause: Compute, StartUS: al.admitUS, EndUS: cursor,
					Stage: -1, Task: -1, Detail: detail,
				})
				cursor = al.admitUS
				break
			}
			if t.endUS < cursor {
				lo := max64(t.endUS, al.admitUS)
				detail := "sched"
				if first {
					detail = "driver"
				}
				segs = append(segs, Segment{
					Cause: Compute, StartUS: lo, EndUS: cursor,
					Stage: -1, Task: -1, Detail: detail,
				})
				cursor = lo
				if cursor <= al.admitUS {
					break
				}
			}
		}
		first = false
		segStart := max64(t.startUS, al.admitUS)
		segs = append(segs, taskSegments(al, t, segStart, min64(t.endUS, cursor))...)
		cursor = segStart
		if cursor <= al.admitUS {
			break
		}

		// The three candidate constraints on t's start time.
		bindPrev := int64(-1)
		samePrev := latestOnExec(byExec[t.exec], t.startUS)
		if samePrev != nil {
			bindPrev = samePrev.endUS
		}
		bindAdd := int64(-1)
		if add, ok := al.execAdd[t.exec]; ok && add <= t.startUS {
			bindAdd = add
		}
		bindStage := int64(-1)
		if st, ok := al.stageStart[t.stage]; ok && st <= t.startUS {
			bindStage = st
		}

		switch {
		case samePrev != nil && bindPrev >= bindAdd && bindPrev >= bindStage:
			// Executor busy: chain through the predecessor on the same
			// executor; the sliver in between is dispatch overhead.
			lo := max64(bindPrev, al.admitUS)
			if lo < cursor {
				segs = append(segs, Segment{
					Cause: Compute, StartUS: lo, EndUS: cursor,
					Stage: -1, Task: -1, Detail: "dispatch",
				})
			}
			cursor = lo
			forced = samePrev
		case bindAdd > bindStage && bindAdd > al.admitUS:
			// Executor registration bound the start: the wait from stage
			// readiness (or admission) to registration is boot/cold-start
			// blame on the executor's substrate.
			if bindAdd < cursor {
				segs = append(segs, Segment{
					Cause: Compute, StartUS: bindAdd, EndUS: cursor,
					Stage: -1, Task: -1, Detail: "dispatch",
				})
			}
			hi := min64(bindAdd, cursor)
			lo := max64(bindStage, al.admitUS)
			if hi > lo {
				cause := VMBoot
				if al.execKind[t.exec] == "lambda" {
					cause = LambdaColdStart
				}
				segs = append(segs, Segment{
					Cause: cause, StartUS: lo, EndUS: hi, Stage: -1, Task: -1,
					Exec: t.exec, Kind: al.execKind[t.exec], Detail: "executor wait",
				})
			}
			cursor = lo
		case bindStage > al.admitUS:
			// Stage readiness bound the start: jump to the stage-start
			// instant; whichever task ended just before it carries on.
			if bindStage < cursor {
				segs = append(segs, Segment{
					Cause: Compute, StartUS: bindStage, EndUS: cursor,
					Stage: -1, Task: -1, Detail: "dispatch",
				})
			}
			cursor = bindStage
		default:
			// No constraint data inside the window; the next iteration's
			// gap fill labels whatever precedes as scheduler overhead.
		}
	}
	// The admission window.
	if al.admitUS > al.arrivalUS {
		cause := QueueWait
		if al.delayed {
			cause = AdmissionDelay
		}
		segs = append(segs, Segment{
			Cause: cause, StartUS: al.arrivalUS, EndUS: al.admitUS,
			Stage: -1, Task: -1,
		})
	}

	// Reverse into time order and total up.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	for _, s := range segs {
		if s.DurUS() <= 0 {
			continue
		}
		ja.Path = append(ja.Path, s)
		ja.BlameUS[s.Cause] += s.DurUS()
	}
	// Every blame cause appears in the table, zeros included, so diffs
	// and goldens have a fixed key set.
	for _, c := range Causes {
		if c.Savings() {
			continue
		}
		if _, ok := ja.BlameUS[c]; !ok {
			ja.BlameUS[c] = 0
		}
	}
	attachWarmSavings(al, &ja)
	attachDollars(al, &ja)
	if len(ja.SavedUS) == 0 {
		ja.SavedUS = nil
	}
	return ja
}

// latestEndingAtOrBefore returns the task with the greatest end <=
// cursor (nil when none), preferring — among equal ends — the latest
// start, so the walk consumes the least timeline per step and gaps stay
// attributable.
func latestEndingAtOrBefore(tasks []taskIval, cursor int64) *taskIval {
	lo, hi := 0, len(tasks)
	for lo < hi {
		mid := (lo + hi) / 2
		if tasks[mid].endUS <= cursor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	best := lo - 1
	for i := best; i >= 0 && tasks[i].endUS == tasks[best].endUS; i-- {
		if tasks[i].startUS > tasks[best].startUS {
			best = i
		}
	}
	return &tasks[best]
}

// latestOnExec returns the latest task in list (sorted by end) ending at
// or before ts — the same-executor predecessor candidate.
func latestOnExec(list []*taskIval, ts int64) *taskIval {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].endUS <= ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return list[lo-1]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// taskSegments carves one critical task's window [s, e] into
// straggler-tail, modeled shuffle I/O and compute. Returned in reverse
// time order (the walk accumulates backward).
func taskSegments(al *appLog, t *taskIval, s, e int64) []Segment {
	d := e - s
	if d <= 0 {
		return nil
	}
	var tail int64
	if med := al.medians[t.stage]; med > 0 {
		dur := t.endUS - t.startUS
		cut := int64(eventlog.DefaultStragglerFactor * float64(med))
		if dur >= cut && dur > med {
			tail = dur - med
			if tail > d {
				tail = d
			}
		}
	}
	fetch := bytesToUS(taskBytes(al.reads, t, false))
	if fetch > d-tail {
		fetch = d - tail
	}
	write := bytesToUS(taskBytes(al.writes, t, true))
	if write > d-tail-fetch {
		write = d - tail - fetch
	}
	compute := d - tail - fetch - write

	// Time order within the window: fetch, compute, write, tail.
	at := s
	var fwd []Segment
	add := func(cause Cause, dur int64) {
		if dur <= 0 {
			return
		}
		fwd = append(fwd, Segment{
			Cause: cause, StartUS: at, EndUS: at + dur,
			Stage: t.stage, Task: t.task, Exec: t.exec, Kind: t.kind,
		})
		at += dur
	}
	add(ShuffleFetch, fetch)
	add(Compute, compute)
	add(ShuffleWrite, write)
	add(StragglerTail, tail)

	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	return fwd
}

// taskBytes sums the shuffle bytes attributable to task t: instants
// inside the task's window matching its reduce partition (reads) or its
// executor (writes).
func taskBytes(points []ioPoint, t *taskIval, byExec bool) int64 {
	var sum int64
	for _, p := range points {
		if p.tsUS < t.startUS || p.tsUS > t.endUS {
			continue
		}
		if byExec {
			if p.exec == t.exec {
				sum += p.bytes
			}
		} else if p.task == t.task {
			sum += p.bytes
		}
	}
	return sum
}

// attachWarmSavings credits warm_hit_saved for every critical-path
// executor wait served by a warm-pool environment (executor IDs carry
// the pool's -wNN suffix): the counterfactual is the nominal cold start
// the warm hit avoided.
func attachWarmSavings(al *appLog, ja *JobAttribution) {
	seen := map[string]bool{}
	for _, seg := range ja.Path {
		if seg.Cause != LambdaColdStart || seg.Exec == "" || seen[seg.Exec] {
			continue
		}
		if !isWarmExec(seg.Exec) {
			continue
		}
		seen[seg.Exec] = true
		saved := int64(NominalColdStartUS) - seg.DurUS()
		if saved > 0 {
			ja.SavedUS[WarmHitSaved] += saved
		}
	}
}

// isWarmExec recognises the cluster backend's warm-pool executor naming
// (jNNN-wNN); cold/on-demand Lambda executors use -lNN.
func isWarmExec(exec string) bool {
	i := strings.LastIndex(exec, "-w")
	if i < 0 || i+2 >= len(exec) {
		return false
	}
	for _, r := range exec[i+2:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// attachDollars reconstructs the job's spend from executor lifetimes in
// the log at nominal rates and splits it across causes proportionally
// to blame time.
func attachDollars(al *appLog, ja *JobAttribution) {
	var total float64
	for exec, addUS := range al.execAdd {
		remUS, ok := al.execRem[exec]
		if !ok || remUS < addUS {
			remUS = al.endUS
		}
		life := float64(remUS-addUS) / 1e6
		if life <= 0 {
			continue
		}
		if al.execKind[exec] == "lambda" {
			total += life * lambdaUSDPerSecond()
		} else {
			total += life * vmUSDPerCoreSecond()
		}
	}
	if total <= 0 || ja.MakespanUS <= 0 {
		return
	}
	ja.CostUSD = map[Cause]float64{}
	for _, c := range Causes {
		if c.Savings() {
			continue
		}
		ja.CostUSD[c] = round6(total * float64(ja.BlameUS[c]) / float64(ja.MakespanUS))
	}
}

func tenantOf(app string) string {
	if i := strings.IndexByte(app, '-'); i > 0 {
		return app[:i]
	}
	return app
}
