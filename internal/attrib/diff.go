package attrib

import (
	"bytes"
	"fmt"
)

// DiffEntry is one cause's old-vs-new comparison. DeltaUS/DeltaUSD are
// raw (new − old); WorseUS is the sign-adjusted delta where positive
// always means "worse" — more blame, or (for savings causes) less saved.
type DiffEntry struct {
	Cause    Cause   `json:"cause"`
	Savings  bool    `json:"savings,omitempty"`
	OldUS    int64   `json:"old_us"`
	NewUS    int64   `json:"new_us"`
	DeltaUS  int64   `json:"delta_us"`
	WorseUS  int64   `json:"worse_us"`
	OldUSD   float64 `json:"old_usd,omitempty"`
	NewUSD   float64 `json:"new_usd,omitempty"`
	DeltaUSD float64 `json:"delta_usd,omitempty"`
}

// Diff is the cause-by-cause comparison of two attribution reports'
// totals tables.
type Diff struct {
	OldJobs         int         `json:"old_jobs"`
	NewJobs         int         `json:"new_jobs"`
	MakespanDeltaUS int64       `json:"makespan_delta_us"`
	Entries         []DiffEntry `json:"entries"`
}

// DiffReports compares two reports cause by cause over their totals.
// Entries follow the canonical cause order, so rendering and assertions
// are deterministic.
func DiffReports(old, new *Report) *Diff {
	d := &Diff{
		OldJobs:         old.Totals.Jobs,
		NewJobs:         new.Totals.Jobs,
		MakespanDeltaUS: new.Totals.MakespanUS - old.Totals.MakespanUS,
	}
	for _, c := range Causes {
		e := DiffEntry{Cause: c, Savings: c.Savings()}
		if c.Savings() {
			e.OldUS = old.Totals.SavedUS[string(c)]
			e.NewUS = new.Totals.SavedUS[string(c)]
			e.DeltaUS = e.NewUS - e.OldUS
			e.WorseUS = -e.DeltaUS // less saved = worse
		} else {
			e.OldUS = old.Totals.BlameUS[string(c)]
			e.NewUS = new.Totals.BlameUS[string(c)]
			e.DeltaUS = e.NewUS - e.OldUS
			e.WorseUS = e.DeltaUS // more blame = worse
			e.OldUSD = old.Totals.CostUSD[string(c)]
			e.NewUSD = new.Totals.CostUSD[string(c)]
			e.DeltaUSD = round6(e.NewUSD - e.OldUSD)
		}
		d.Entries = append(d.Entries, e)
	}
	return d
}

// AllZero reports whether the diff carries no change at all — the
// self-diff contract `make attrib` checks.
func (d *Diff) AllZero() bool {
	if d.MakespanDeltaUS != 0 || d.OldJobs != d.NewJobs {
		return false
	}
	for _, e := range d.Entries {
		if e.DeltaUS != 0 || e.DeltaUSD != 0 {
			return false
		}
	}
	return true
}

// Dominant returns the cause with the largest absolute time delta (ties
// broken by canonical order) and that delta's magnitude.
func (d *Diff) Dominant() (Cause, int64) {
	var best Cause
	var bestAbs int64 = -1
	for _, e := range d.Entries {
		abs := e.DeltaUS
		if abs < 0 {
			abs = -abs
		}
		if abs > bestAbs {
			best, bestAbs = e.Cause, abs
		}
	}
	return best, bestAbs
}

// String renders the diff as an aligned table, one row per cause, with
// the sign-adjusted verdict column ("+" = worse).
func (d *Diff) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== attribution diff (old: %d jobs, new: %d jobs, makespan %s) ==\n",
		d.OldJobs, d.NewJobs, signedUSLabel(d.MakespanDeltaUS))
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %12s %12s\n",
		"cause", "old", "new", "delta", "worse-by", "cost delta")
	for _, e := range d.Entries {
		name := string(e.Cause)
		if e.Savings {
			name += " (saved)"
		}
		fmt.Fprintf(&b, "%-18s %12s %12s %12s %12s %+11.6f$\n",
			name, usLabel(e.OldUS), usLabel(e.NewUS),
			usLabel(e.DeltaUS), usLabel(e.WorseUS), e.DeltaUSD)
	}
	if d.AllZero() {
		fmt.Fprintf(&b, "no change: the runs attribute identically\n")
	} else if c, abs := d.Dominant(); abs > 0 {
		fmt.Fprintf(&b, "dominant delta: %s (%s)\n", string(c), usLabel(abs))
	}
	return b.String()
}

// signedUSLabel renders a delta with an explicit sign.
func signedUSLabel(us int64) string {
	if us >= 0 {
		return "+" + usLabel(us)
	}
	return usLabel(us)
}
