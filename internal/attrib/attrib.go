// Package attrib is observability layer 4: causal critical-path
// attribution over a finished event log. Layers 1–3 (telemetry, the
// eventlog, perfstat) record *what* happened; this package answers *why
// the makespan is what it is* — it walks each job's task intervals
// backward from completion on the virtual clock, extracts the critical
// path, and tiles the whole [arrival, end] window with blame segments
// drawn from a closed cause vocabulary. Because the segments tile the
// window gaplessly, the per-cause blame sums to the makespan exactly —
// the invariant the property tests enforce — and the same-seed
// byte-identical guarantee of the event log carries over to the
// attribution report.
//
// The report aggregates jobs into per-tenant, per-backend and
// per-workload tables and serialises under the splitserve-attrib/v1
// schema; Diff compares two reports cause by cause (run-to-run diffing:
// "the warm pool moved 6 s of lambda_cold_start into warm_hit_saved").
package attrib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"splitserve/internal/billing"
	"splitserve/internal/eventlog"
)

// SchemaV1 identifies the attribution report JSON layout. Fields are
// only ever added, never renamed or removed, within a schema version.
const SchemaV1 = "splitserve-attrib/v1"

// Cause is one entry of the closed blame vocabulary. Blame causes carry
// virtual time that sums to the job's makespan; savings causes
// (warm_hit_saved, tmp_cache_saved) are counterfactual time the run did
// NOT spend and live outside the sum.
type Cause string

const (
	// QueueWait is time between arrival and admission under the greedy
	// admission policy: the job sat in the scheduler queue for cores.
	QueueWait Cause = "queue_wait"
	// AdmissionDelay is the same window when the deadline admission
	// policy deliberately delayed the job (cluster_job_delay events).
	AdmissionDelay Cause = "admission_delay"
	// VMBoot is critical-path time spent waiting for a VM-backed
	// executor to register.
	VMBoot Cause = "vm_boot"
	// LambdaColdStart is critical-path time waiting for a Lambda-backed
	// executor to register (cold or warm start — the warm remainder
	// after the pool shaved the cold start off).
	LambdaColdStart Cause = "lambda_cold_start"
	// WarmHitSaved is a savings cause: the counterfactual cold-start
	// time a warm-pool hit on the critical path avoided.
	WarmHitSaved Cause = "warm_hit_saved"
	// Compute is critical-path task execution time net of modeled
	// shuffle I/O and straggler excess, plus scheduler/stage overhead
	// gaps between critical tasks.
	Compute Cause = "compute"
	// ShuffleWrite / ShuffleFetch are modeled shuffle I/O time within
	// critical tasks: bytes moved at the nominal fabric bandwidth.
	ShuffleWrite Cause = "shuffle_write"
	ShuffleFetch Cause = "shuffle_fetch"
	// TmpCacheSaved is a savings cause: modeled fetch time that /tmp
	// cache hits avoided (run-level — cache hits are not job-scoped).
	TmpCacheSaved Cause = "tmp_cache_saved"
	// StragglerTail is the excess of a critical straggler task over its
	// stage median (the Spark speculation rule's excess).
	StragglerTail Cause = "straggler_tail"
	// PreemptOverhead is reserved for the ROADMAP's checkpoint/restart
	// work; always zero today, present so the schema will not change.
	PreemptOverhead Cause = "preempt_overhead"
)

// Causes lists the vocabulary in canonical (report) order.
var Causes = []Cause{
	QueueWait, AdmissionDelay, VMBoot, LambdaColdStart, WarmHitSaved,
	Compute, ShuffleWrite, ShuffleFetch, TmpCacheSaved, StragglerTail,
	PreemptOverhead,
}

// Savings reports whether c is a counterfactual-savings cause, excluded
// from the blame-sums-to-makespan invariant.
func (c Cause) Savings() bool { return c == WarmHitSaved || c == TmpCacheSaved }

// Nominal model constants used where the event log records an instant
// with bytes but no duration (shuffle and /tmp cache events) or where a
// counterfactual needs a magnitude (warm-hit savings). They mirror the
// cloud package defaults and the paper's 2020 platform numbers.
const (
	// NominalShuffleBytesPerSec is the fabric bandwidth used to convert
	// shuffle/cache bytes into modeled seconds (~128 MiB/s).
	NominalShuffleBytesPerSec = 128 << 20
	// NominalColdStartUS / NominalWarmStartUS are the Lambda launch
	// latencies a warm hit trades (cloud.Options defaults: 8 s / 100 ms).
	NominalColdStartUS = 8_000_000
	NominalWarmStartUS = 100_000
	// NominalVMUSDPerCoreHour is the m4-family per-vCPU-hour price used
	// to reconstruct dollars from executor lifetimes in the log.
	NominalVMUSDPerCoreHour = 0.05
	// NominalLambdaMemoryGB prices Lambda executor seconds at the
	// billing GB-second rate.
	NominalLambdaMemoryGB = 1.5
)

// Segment is one span of a job's critical path, tagged with the cause
// that owns its duration. Segments are reported in time order and tile
// [arrival, end] without gaps or overlaps.
type Segment struct {
	Cause   Cause  `json:"cause"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
	Stage   int    `json:"stage"`
	Task    int    `json:"task"`
	Exec    string `json:"exec,omitempty"`
	Kind    string `json:"kind,omitempty"` // "vm" | "lambda"
	Detail  string `json:"detail,omitempty"`
}

// DurUS returns the segment's duration.
func (s Segment) DurUS() int64 { return s.EndUS - s.StartUS }

// JobAttribution is one job's causal decomposition: the critical path
// as segments plus the per-cause blame, savings and dollar tables.
type JobAttribution struct {
	App        string `json:"app"`
	Name       string `json:"name,omitempty"` // workload name
	Tenant     string `json:"tenant,omitempty"`
	ArrivalUS  int64  `json:"arrival_us"`
	EndUS      int64  `json:"end_us"`
	MakespanUS int64  `json:"makespan_us"`
	Failed     bool   `json:"failed,omitempty"`
	// BlameUS maps blame causes to critical-path microseconds; values
	// sum to MakespanUS exactly. SavedUS maps savings causes to
	// counterfactual microseconds avoided. CostUSD splits the job's
	// reconstructed dollars proportionally to blame time.
	BlameUS map[Cause]int64   `json:"blame_us"`
	SavedUS map[Cause]int64   `json:"saved_us,omitempty"`
	CostUSD map[Cause]float64 `json:"cost_usd,omitempty"`
	Path    []Segment         `json:"path"`
}

// BlameSumUS returns the sum of all blame components (savings excluded).
func (j *JobAttribution) BlameSumUS() int64 {
	var sum int64
	for c, v := range j.BlameUS {
		if !c.Savings() {
			sum += v
		}
	}
	return sum
}

// Table aggregates blame across a set of jobs (per tenant, backend,
// workload, or the whole run). Map keys are cause names so encoding/json
// sorts them deterministically.
type Table struct {
	Jobs       int                `json:"jobs"`
	MakespanUS int64              `json:"makespan_us"`
	BlameUS    map[string]int64   `json:"blame_us"`
	SavedUS    map[string]int64   `json:"saved_us,omitempty"`
	CostUSD    map[string]float64 `json:"cost_usd,omitempty"`
}

func newTable() *Table {
	return &Table{BlameUS: map[string]int64{}}
}

// Dominant returns the blame cause carrying the most time in the table
// (savings excluded) and its microseconds; ties break in canonical cause
// order so the answer is deterministic. Returns ("", 0) for an empty
// table.
func (t *Table) Dominant() (Cause, int64) {
	var best Cause
	var bestV int64 = -1
	for _, c := range Causes {
		if c.Savings() {
			continue
		}
		if v := t.BlameUS[string(c)]; v > bestV {
			best, bestV = c, v
		}
	}
	if bestV <= 0 {
		return "", 0
	}
	return best, bestV
}

func (t *Table) add(j *JobAttribution) {
	t.Jobs++
	t.MakespanUS += j.MakespanUS
	for c, v := range j.BlameUS {
		t.BlameUS[string(c)] += v
	}
	for c, v := range j.SavedUS {
		if t.SavedUS == nil {
			t.SavedUS = map[string]int64{}
		}
		t.SavedUS[string(c)] += v
	}
	for c, v := range j.CostUSD {
		if t.CostUSD == nil {
			t.CostUSD = map[string]float64{}
		}
		t.CostUSD[string(c)] = round6(t.CostUSD[string(c)] + v)
	}
}

// Report is the full splitserve-attrib/v1 document: every job's
// decomposition plus the aggregate tables.
type Report struct {
	Schema string           `json:"schema"`
	Jobs   []JobAttribution `json:"jobs"`
	Totals *Table           `json:"totals"`
	// ByTenant groups jobs by submitting tenant: the true tenant id when
	// the log carries shard_assign/shard_steal events (sharded
	// multi-tenant runs), the per-job app prefix otherwise — one tenant
	// per submission. ByBackend groups critical-path blame by the
	// executor substrate that hosted it ("vm" | "lambda" | "driver" for
	// segments owned by no executor). ByWorkload groups by job name.
	ByTenant   map[string]*Table `json:"by_tenant,omitempty"`
	ByBackend  map[string]*Table `json:"by_backend,omitempty"`
	ByWorkload map[string]*Table `json:"by_workload,omitempty"`
}

// JSON renders the report as indented, key-sorted JSON with a trailing
// newline. Same-seed runs produce byte-identical output.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseReport loads a report written by JSON, rejecting other schemas.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("attrib: %w", err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("attrib: unknown schema %q (want %s)", r.Schema, SchemaV1)
	}
	return &r, nil
}

// Analyze runs the causal pass over a finished event stream and returns
// the aggregated report. The unit of attribution is the application (one
// cluster job = one app; an engine-only log is one app with several
// Spark jobs inside it).
func Analyze(events []eventlog.Event) *Report {
	rep := &Report{
		Schema: SchemaV1,
		Jobs:   []JobAttribution{},
		Totals: newTable(),
	}

	jobs := attributeJobs(events)
	if len(jobs) == 0 {
		return rep
	}

	// Run-level /tmp cache savings: cache-hit events carry no app (the
	// pool is shared), so the modeled avoided fetch time lands on the
	// totals table only.
	var tmpBytes int64
	for _, e := range events {
		if e.Type == eventlog.TmpCacheHit {
			tmpBytes += e.Bytes
		}
	}

	rep.ByTenant = map[string]*Table{}
	rep.ByBackend = map[string]*Table{}
	rep.ByWorkload = map[string]*Table{}
	for i := range jobs {
		j := &jobs[i]
		rep.Totals.add(j)
		tableOf(rep.ByTenant, j.Tenant).add(j)
		tableOf(rep.ByWorkload, nameOr(j.Name, j.App)).add(j)
		for _, seg := range j.Path {
			backend := seg.Kind
			if backend == "" {
				backend = "driver"
			}
			bt := tableOf(rep.ByBackend, backend)
			bt.BlameUS[string(seg.Cause)] += seg.DurUS()
		}
		rep.Jobs = append(rep.Jobs, *j)
	}
	// Backend tables carry blame splits, not job counts; normalise the
	// zero fields for a stable layout.
	for _, t := range rep.ByBackend {
		t.Jobs = 0
	}
	if tmpBytes > 0 {
		if rep.Totals.SavedUS == nil {
			rep.Totals.SavedUS = map[string]int64{}
		}
		rep.Totals.SavedUS[string(TmpCacheSaved)] += bytesToUS(tmpBytes)
	}
	return rep
}

func tableOf(m map[string]*Table, key string) *Table {
	if t, ok := m[key]; ok {
		return t
	}
	t := newTable()
	m[key] = t
	return t
}

func nameOr(name, fallback string) string {
	if name != "" {
		return name
	}
	if fallback != "" {
		return fallback
	}
	return "app"
}

// bytesToUS converts bytes into modeled microseconds at the nominal
// shuffle bandwidth, in integer arithmetic for byte stability.
func bytesToUS(b int64) int64 {
	if b <= 0 {
		return 0
	}
	return b * 1_000_000 / NominalShuffleBytesPerSec
}

func round6(v float64) float64 {
	const scale = 1e6
	if v >= 0 {
		return float64(int64(v*scale+0.5)) / scale
	}
	return -float64(int64(-v*scale+0.5)) / scale
}

// lambdaUSDPerSecond is the nominal per-second price of one Lambda
// executor at NominalLambdaMemoryGB.
func lambdaUSDPerSecond() float64 {
	return NominalLambdaMemoryGB * billing.LambdaGBSecondUSD
}

func vmUSDPerCoreSecond() float64 {
	return NominalVMUSDPerCoreHour / 3600
}

// String renders the report's totals as an aligned text table, one row
// per cause, with savings separated below the makespan sum.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== attribution totals (%d jobs, %s makespan) ==\n",
		r.Totals.Jobs, usLabel(r.Totals.MakespanUS))
	fmt.Fprintf(&b, "%-18s %12s %8s %12s\n", "cause", "blame", "share", "cost")
	var sum int64
	for _, c := range Causes {
		if c.Savings() {
			continue
		}
		v := r.Totals.BlameUS[string(c)]
		sum += v
		share := 0.0
		if r.Totals.MakespanUS > 0 {
			share = 100 * float64(v) / float64(r.Totals.MakespanUS)
		}
		fmt.Fprintf(&b, "%-18s %12s %7.1f%% %11.6f$\n",
			string(c), usLabel(v), share, r.Totals.CostUSD[string(c)])
	}
	fmt.Fprintf(&b, "%-18s %12s\n", "sum", usLabel(sum))
	for _, c := range Causes {
		if !c.Savings() {
			continue
		}
		if v := r.Totals.SavedUS[string(c)]; v != 0 {
			fmt.Fprintf(&b, "%-18s %12s  (counterfactual, outside the sum)\n",
				string(c), usLabel(v))
		}
	}

	if len(r.ByWorkload) > 0 {
		fmt.Fprintf(&b, "\n== by workload ==\n")
		names := sortedKeys(r.ByWorkload)
		fmt.Fprintf(&b, "%-18s %5s %12s %14s\n", "workload", "jobs", "makespan", "top cause")
		for _, n := range names {
			t := r.ByWorkload[n]
			fmt.Fprintf(&b, "%-18s %5d %12s %14s\n",
				n, t.Jobs, usLabel(t.MakespanUS), topCause(t.BlameUS))
		}
	}
	return b.String()
}

func sortedKeys(m map[string]*Table) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func topCause(blame map[string]int64) string {
	best, bestV := "-", int64(-1)
	names := make([]string, 0, len(blame))
	for c := range blame {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		if blame[c] > bestV {
			best, bestV = c, blame[c]
		}
	}
	return best
}

func usLabel(us int64) string {
	neg := ""
	if us < 0 {
		neg, us = "-", -us
	}
	switch {
	case us >= 60_000_000:
		return fmt.Sprintf("%s%.2fm", neg, float64(us)/60e6)
	case us >= 1_000_000:
		return fmt.Sprintf("%s%.2fs", neg, float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%s%dms", neg, us/1_000)
	default:
		return fmt.Sprintf("%s%dµs", neg, us)
	}
}
