package warmpool

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/simclock"
	"splitserve/internal/storage"
)

func TestAccountingTakePut(t *testing.T) {
	a := NewAccounting(2)
	if !a.TryTake(1536) || !a.TryTake(1536) {
		t.Fatalf("expected two warm takes from seed 2")
	}
	if a.TryTake(1536) {
		t.Fatalf("third take should be cold")
	}
	if got := a.Available(1536); got != 0 {
		t.Fatalf("Available = %d, want 0", got)
	}
	a.Put(1536)
	if !a.TryTake(1536) {
		t.Fatalf("take after put should be warm")
	}
	// Distinct memory sizes are independent.
	if !a.TryTake(3008) {
		t.Fatalf("fresh size should seed warm")
	}
}

// TestAccountingNeverNegative is the property half of satellite 3: no
// randomized take/put schedule can drive a warm count below zero.
func TestAccountingNeverNegative(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := NewAccounting(rng.Intn(4))
		sizes := []int{1024, 1536, 3008}
		for op := 0; op < 2000; op++ {
			mem := sizes[rng.Intn(len(sizes))]
			if rng.Intn(3) == 0 {
				a.Put(mem)
			} else {
				a.TryTake(mem)
			}
			for sz, n := range a.Snapshot() {
				if n < 0 {
					t.Fatalf("seed %d op %d: %d MB count went negative (%d)", seed, op, sz, n)
				}
			}
		}
	}
}

func newTestPool(t *testing.T, target int) (*simclock.Clock, *eventlog.Bus, *Pool) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	bus := eventlog.NewBus(simclock.Epoch)
	p, err := NewPool(clock, bus, Config{MemoryMB: 1536, Target: target})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return clock, bus, p
}

func TestPoolAcquireRelease(t *testing.T) {
	_, bus, p := newTestPool(t, 2)
	if p.Idle() != 2 || p.InUse() != 0 {
		t.Fatalf("fresh pool: idle=%d busy=%d, want 2/0", p.Idle(), p.InUse())
	}
	a := p.Acquire()
	b := p.Acquire()
	if a == nil || b == nil {
		t.Fatalf("expected two warm acquisitions")
	}
	if c := p.Acquire(); c != nil {
		t.Fatalf("third acquire should miss, got %s", c.ID)
	}
	if p.WarmHits() != 2 || p.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", p.WarmHits(), p.Misses())
	}
	p.Release(a)
	// LIFO: the most recently released env comes back first (warmest /tmp).
	if got := p.Acquire(); got != a {
		t.Fatalf("expected LIFO reuse of %s, got %v", a.ID, got)
	}
	var hits, resizes int
	for _, e := range bus.Events() {
		switch e.Type {
		case eventlog.LambdaWarmHit:
			hits++
		case eventlog.WarmpoolResize:
			resizes++
		}
	}
	if hits != 3 {
		t.Fatalf("lambda_warm_hit events = %d, want 3", hits)
	}
	if resizes != 1 {
		t.Fatalf("warmpool_resize events = %d, want 1 (initial provisioning)", resizes)
	}
}

func TestPoolLifetimeRecyclesIdleEnv(t *testing.T) {
	clock := simclock.New(simclock.Epoch)
	// Min pins the target so target-tracking decay doesn't shrink the
	// pool before the lifetime fires.
	p, err := NewPool(clock, nil, Config{MemoryMB: 1536, Target: 2, Min: 2})
	if err != nil {
		t.Fatal(err)
	}
	var expired []string
	p.SetOnExpire(func(id string) { expired = append(expired, id) })
	first := p.Acquire()
	p.Release(first)
	clock.RunFor(16 * time.Minute)
	if len(expired) < 2 {
		t.Fatalf("expected both seed envs recycled at 15 min, got %v", expired)
	}
	// The pool replaced them: still at target, and handing out fresh IDs.
	if p.Idle() != 2 {
		t.Fatalf("idle after recycle = %d, want 2", p.Idle())
	}
	env := p.Acquire()
	if env == nil || env == first {
		t.Fatalf("expected a fresh replacement env, got %v", env)
	}
}

func TestPoolBusyEnvDoomedNotKilled(t *testing.T) {
	clock := simclock.New(simclock.Epoch)
	// Max pins the pool at one env so target tracking can't grow it.
	p, err := NewPool(clock, nil, Config{MemoryMB: 1536, Target: 1, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	env := p.Acquire()
	if env == nil {
		t.Fatal("acquire failed")
	}
	clock.RunFor(20 * time.Minute)
	if env.dead {
		t.Fatalf("busy env must not die mid-invocation")
	}
	if !env.doomed {
		t.Fatalf("busy env past lifetime should be doomed")
	}
	p.Release(env)
	if !env.dead {
		t.Fatalf("doomed env should retire on release")
	}
	if p.Idle() != 1 {
		t.Fatalf("pool should replace the retired env, idle=%d", p.Idle())
	}
}

func TestPoolTargetTracking(t *testing.T) {
	clock, bus, p := newTestPool(t, 1)
	// Hold 3 concurrent envs across a resize interval: only 1 provisioned,
	// so 2 misses, then the tick should raise the target toward
	// ceil(peak/0.7).
	env := p.Acquire()
	if env == nil {
		t.Fatal("first acquire should hit")
	}
	p.Acquire()
	p.Acquire()
	clock.RunFor(2 * time.Minute)
	if p.Target() < 2 {
		t.Fatalf("target after burst = %d, want >= 2", p.Target())
	}
	// With the burst over (env released), targets decay back to Min.
	p.Release(env)
	clock.RunFor(10 * time.Minute)
	if p.Target() != 1 {
		t.Fatalf("target after quiet period = %d, want Min=1", p.Target())
	}
	var resizes int
	for _, e := range bus.Events() {
		if e.Type == eventlog.WarmpoolResize {
			resizes++
		}
	}
	if resizes < 3 { // provision, grow, shrink
		t.Fatalf("warmpool_resize events = %d, want >= 3", resizes)
	}
}

func TestPoolIdleBreakdown(t *testing.T) {
	clock, _, p := newTestPool(t, 2)
	env := p.Acquire()
	clock.RunFor(30 * time.Second)
	p.Release(env)
	clock.RunFor(30 * time.Second)
	total := p.IdleTotal(clock.Now())
	// env idle 30s after release; the untouched env idle 60s.
	want := 90 * time.Second
	if total != want {
		t.Fatalf("IdleTotal = %v, want %v", total, want)
	}
	for _, e := range p.IdleBreakdown(clock.Now()) {
		if e.Idle < 0 {
			t.Fatalf("negative idle for %s", e.ID)
		}
	}
}

// TestPoolRandomScheduleInvariants is the pool half of satellite 3's
// property test: under randomized acquire/release/advance schedules the
// accounting never goes negative and the live environment count never
// exceeds the configured Max.
func TestPoolRandomScheduleInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		clock := simclock.New(simclock.Epoch)
		p, err := NewPool(clock, nil, Config{MemoryMB: 1536, Target: 3})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var held []*Env
		for op := 0; op < 500; op++ {
			switch rng.Intn(3) {
			case 0:
				if env := p.Acquire(); env != nil {
					held = append(held, env)
				}
			case 1:
				if len(held) > 0 {
					i := rng.Intn(len(held))
					p.Release(held[i])
					held = append(held[:i], held[i+1:]...)
				}
			case 2:
				clock.RunFor(time.Duration(rng.Intn(120)) * time.Second)
			}
			if p.InUse() < 0 || p.Idle() < 0 {
				t.Fatalf("seed %d op %d: negative accounting busy=%d idle=%d", seed, op, p.InUse(), p.Idle())
			}
			if p.InUse() != len(held) {
				t.Fatalf("seed %d op %d: busy=%d but holding %d", seed, op, p.InUse(), len(held))
			}
			if live := p.InUse() + p.Idle(); live > p.Config().Max {
				t.Fatalf("seed %d op %d: live=%d exceeds Max=%d", seed, op, live, p.Config().Max)
			}
		}
	}
}

// fakeStore is a deterministic in-memory backing store with visible
// latencies, so tests can distinguish a /tmp hit (1 ms) from a backing
// fetch (50 ms).
type fakeStore struct {
	clock      *simclock.Clock
	blocks     map[string]storage.Block
	fetchCalls int
	fetchedIDs []string
}

func newFakeStore(clock *simclock.Clock) *fakeStore {
	return &fakeStore{clock: clock, blocks: make(map[string]storage.Block)}
}

func (f *fakeStore) Name() string  { return "fake" }
func (f *fakeStore) Durable() bool { return true }

func (f *fakeStore) PutAll(blocks []storage.Block, cl storage.Client, done func(error)) {
	f.clock.After(10*time.Millisecond, func() {
		for _, b := range blocks {
			f.blocks[b.ID] = b
		}
		done(nil)
	})
}

func (f *fakeStore) FetchAll(ids []string, cl storage.Client, done func([]storage.Block, error)) {
	f.fetchCalls++
	f.fetchedIDs = append(f.fetchedIDs, ids...)
	out := make([]storage.Block, len(ids))
	for i, id := range ids {
		b, ok := f.blocks[id]
		if !ok {
			f.clock.After(0, func() { done(nil, storage.ErrNotFound) })
			return
		}
		out[i] = b
	}
	f.clock.After(50*time.Millisecond, func() { done(out, nil) })
}

func (f *fakeStore) Delete(ids []string) {
	for _, id := range ids {
		delete(f.blocks, id)
	}
}

func (f *fakeStore) DropHost(string) {}

func blk(id string, size int64) storage.Block {
	return storage.Block{ID: id, Payload: id, Size: size}
}

func newTestCache(t *testing.T) (*simclock.Clock, *fakeStore, *TmpCache, *eventlog.Bus) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	bus := eventlog.NewBus(simclock.Epoch)
	backing := newFakeStore(clock)
	tc := NewTmpCache(clock, bus, backing, CacheOptions{})
	return clock, backing, tc, bus
}

func putAll(t *testing.T, clock *simclock.Clock, s storage.Store, cl storage.Client, blocks ...storage.Block) {
	t.Helper()
	ok := false
	s.PutAll(blocks, cl, func(err error) {
		if err != nil {
			t.Fatalf("PutAll: %v", err)
		}
		ok = true
	})
	clock.RunWhile(func() bool { return !ok })
	if !ok {
		t.Fatal("PutAll never completed")
	}
}

func fetchAll(t *testing.T, clock *simclock.Clock, s storage.Store, cl storage.Client, ids ...string) ([]storage.Block, time.Duration) {
	t.Helper()
	start := clock.Now()
	var got []storage.Block
	ok := false
	s.FetchAll(ids, cl, func(blocks []storage.Block, err error) {
		if err != nil {
			t.Fatalf("FetchAll: %v", err)
		}
		got = blocks
		ok = true
	})
	clock.RunWhile(func() bool { return !ok })
	if !ok {
		t.Fatal("FetchAll never completed")
	}
	return got, clock.Now().Sub(start)
}

func TestTmpCacheWriteThroughAndRepeatRead(t *testing.T) {
	clock, backing, tc, bus := newTestCache(t)
	env := storage.Client{HostID: "wp-001"}
	tc.Track(env.HostID)

	putAll(t, clock, tc, env, blk("s0-m0-r0", 1<<20), blk("s0-m1-r0", 1<<20))
	if backing.blocks["s0-m0-r0"].Size != 1<<20 {
		t.Fatalf("write-through: backing store missing block")
	}

	// First read: the writer's own blocks are already in /tmp.
	got, took := fetchAll(t, clock, tc, env, "s0-m0-r0", "s0-m1-r0")
	if len(got) != 2 || got[0].ID != "s0-m0-r0" || got[1].ID != "s0-m1-r0" {
		t.Fatalf("wrong blocks back: %v", got)
	}
	if backing.fetchCalls != 0 {
		t.Fatalf("pure-hit fetch reached the backing store")
	}
	if took > 5*time.Millisecond {
		t.Fatalf("pure-hit fetch took %v, want ~1ms", took)
	}
	if tc.Hits() != 2 || tc.Misses() != 0 {
		t.Fatalf("hits=%d misses=%d, want 2/0", tc.Hits(), tc.Misses())
	}
	var hitEvents int
	for _, e := range bus.Events() {
		if e.Type == eventlog.TmpCacheHit {
			hitEvents++
			if e.Exec != "wp-001" || e.Bytes != 2<<20 {
				t.Fatalf("bad hit event: %+v", e)
			}
		}
	}
	if hitEvents != 1 {
		t.Fatalf("tmp_cache_hit events = %d, want 1 (aggregate per fetch)", hitEvents)
	}
}

func TestTmpCacheMissPopulatesAndMixedFetch(t *testing.T) {
	clock, backing, tc, _ := newTestCache(t)
	writer := storage.Client{HostID: "vm-1"} // untracked: passthrough
	reader := storage.Client{HostID: "wp-002"}
	tc.Track(reader.HostID)

	putAll(t, clock, tc, writer, blk("a", 1<<20), blk("b", 2<<20))
	if tc.BytesFor("vm-1") != 0 {
		t.Fatalf("untracked writer must not cache")
	}

	got, took := fetchAll(t, clock, tc, reader, "a", "b")
	if len(got) != 2 {
		t.Fatalf("fetch returned %d blocks", len(got))
	}
	if took < 50*time.Millisecond {
		t.Fatalf("cold fetch took %v, want >= backing latency", took)
	}
	if tc.BytesFor(reader.HostID) != 3<<20 {
		t.Fatalf("fetched blocks should populate /tmp, got %d bytes", tc.BytesFor(reader.HostID))
	}

	// Repeat read: all from /tmp, no backing call.
	calls := backing.fetchCalls
	_, took = fetchAll(t, clock, tc, reader, "a", "b")
	if backing.fetchCalls != calls {
		t.Fatalf("repeat read hit the backing store")
	}
	if took > 5*time.Millisecond {
		t.Fatalf("repeat read took %v, want ~1ms", took)
	}

	// Mixed fetch: "c" missing — blocks come back in request order.
	putAll(t, clock, tc, writer, blk("c", 1<<20))
	got, _ = fetchAll(t, clock, tc, reader, "c", "a")
	if got[0].ID != "c" || got[1].ID != "a" {
		t.Fatalf("mixed fetch order wrong: %v", got)
	}
	if len(backing.fetchedIDs) == 0 || backing.fetchedIDs[len(backing.fetchedIDs)-1] != "c" {
		t.Fatalf("mixed fetch should only fetch the miss, got %v", backing.fetchedIDs)
	}
}

func TestTmpCacheLRUEviction(t *testing.T) {
	clock := simclock.New(simclock.Epoch)
	backing := newFakeStore(clock)
	tc := NewTmpCache(clock, nil, backing, CacheOptions{CapacityBytes: 10 << 20})
	env := storage.Client{HostID: "wp-003"}
	tc.Track(env.HostID)

	putAll(t, clock, tc, env, blk("a", 4<<20), blk("b", 4<<20))
	fetchAll(t, clock, tc, env, "a") // touch a: b becomes LRU
	putAll(t, clock, tc, env, blk("c", 4<<20))
	if tc.BytesFor(env.HostID) > 10<<20 {
		t.Fatalf("cache over capacity: %d", tc.BytesFor(env.HostID))
	}
	// b evicted, a kept.
	calls := backing.fetchCalls
	fetchAll(t, clock, tc, env, "a")
	if backing.fetchCalls != calls {
		t.Fatalf("a should still be cached")
	}
	fetchAll(t, clock, tc, env, "b")
	if backing.fetchCalls != calls+1 {
		t.Fatalf("b should have been evicted")
	}
	if tc.Evictions() < 1 || tc.EvictedBytes() < 4<<20 {
		t.Fatalf("eviction counters: %d / %d", tc.Evictions(), tc.EvictedBytes())
	}
	// A block bigger than the whole cache is never cached.
	putAll(t, clock, tc, env, blk("huge", 64<<20))
	calls = backing.fetchCalls
	fetchAll(t, clock, tc, env, "huge")
	if backing.fetchCalls != calls+1 {
		t.Fatalf("oversized block must bypass the cache")
	}
}

func TestTmpCacheDropHostAndDelete(t *testing.T) {
	clock, backing, tc, _ := newTestCache(t)
	env := storage.Client{HostID: "wp-004"}
	tc.Track(env.HostID)
	putAll(t, clock, tc, env, blk("x", 1<<20))

	// Delete purges cache and backing.
	tc.Delete([]string{"x"})
	if tc.BytesFor(env.HostID) != 0 {
		t.Fatalf("Delete left cached bytes")
	}
	if _, ok := backing.blocks["x"]; ok {
		t.Fatalf("Delete did not reach backing store")
	}

	putAll(t, clock, tc, env, blk("y", 1<<20))
	// DropHost is the engine's executor-died signal: the environment (and
	// its /tmp) survives it.
	tc.DropHost(env.HostID)
	if tc.BytesFor(env.HostID) != 1<<20 {
		t.Fatalf("DropHost must not clear a tracked environment's /tmp")
	}
	// Recycle is the environment-lifetime signal: /tmp is gone.
	tc.Recycle(env.HostID)
	if tc.BytesFor(env.HostID) != 0 || tc.Tracked() != 0 {
		t.Fatalf("Recycle left the host cache alive")
	}
	// The durable backing copy survives: a re-tracked env refetches.
	tc.Track(env.HostID)
	calls := backing.fetchCalls
	fetchAll(t, clock, tc, env, "y")
	if backing.fetchCalls != calls+1 {
		t.Fatalf("recycled env should refetch from backing")
	}
}

// TestTmpCacheRandomNeverOverCap is the cache half of satellite 3's
// property test: across randomized put/fetch/drop schedules no
// environment's /tmp bytes ever exceed the 512 MB cap.
func TestTmpCacheRandomNeverOverCap(t *testing.T) {
	const cap = int64(512 << 20)
	for seed := int64(0); seed < 10; seed++ {
		clock := simclock.New(simclock.Epoch)
		backing := newFakeStore(clock)
		tc := NewTmpCache(clock, nil, backing, CacheOptions{CapacityBytes: cap})
		rng := rand.New(rand.NewSource(seed))
		hosts := []string{"wp-001", "wp-002", "wp-003"}
		for _, h := range hosts {
			tc.Track(h)
		}
		var ids []string
		for op := 0; op < 300; op++ {
			cl := storage.Client{HostID: hosts[rng.Intn(len(hosts))]}
			switch rng.Intn(4) {
			case 0, 1: // put a fresh block, sometimes huge
				size := int64(rng.Intn(64<<20) + 1)
				if rng.Intn(10) == 0 {
					size = cap + int64(rng.Intn(1<<20))
				}
				id := fmt.Sprintf("b%d-%d", seed, op)
				ids = append(ids, id)
				putAll(t, clock, tc, cl, blk(id, size))
			case 2: // fetch a random existing block
				if len(ids) > 0 {
					fetchAll(t, clock, tc, cl, ids[rng.Intn(len(ids))])
				}
			case 3: // recycle an env
				tc.Recycle(cl.HostID)
				tc.Track(cl.HostID)
			}
			for _, h := range hosts {
				if got := tc.BytesFor(h); got > cap {
					t.Fatalf("seed %d op %d: host %s holds %d bytes > cap %d", seed, op, h, got, cap)
				}
			}
		}
	}
}
