// Package warmpool models AWS-style provisioned concurrency and stateful
// Lambda executors: a target-tracked pool of pre-initialized environments
// (near-zero start latency, billed at an idle-time rate even when unused)
// plus a /tmp-local shuffle cache tier that serves repeat shuffle reads
// from function-local storage. The package is substrate-agnostic — it
// never imports internal/cloud — so the provider's ambient warm-reuse
// bookkeeping can delegate to Accounting below without an import cycle,
// and the cluster layer glues Pool environments to provider invocations.
package warmpool

import (
	"fmt"
	"sort"
	"strings"
)

// Accounting is the single source of truth for ambient warm-environment
// counts, keyed by function memory size. It replaces the ad-hoc
// map[int]int bookkeeping internal/cloud/provider.go used to carry: every
// warm-start decision goes through TryTake, every normal release through
// Put, and the count can never go negative by construction.
type Accounting struct {
	seed  int
	avail map[int]int
}

// NewAccounting returns an Accounting whose every memory configuration
// starts with seedPerConfig dormant warm environments (0 = everything
// cold).
func NewAccounting(seedPerConfig int) *Accounting {
	if seedPerConfig < 0 {
		seedPerConfig = 0
	}
	return &Accounting{seed: seedPerConfig, avail: make(map[int]int)}
}

func (a *Accounting) countFor(memMB int) int {
	if v, ok := a.avail[memMB]; ok {
		return v
	}
	a.avail[memMB] = a.seed
	return a.seed
}

// TryTake claims one warm environment of the given memory size. It
// reports false — a cold start — when none is available; the count never
// drops below zero.
func (a *Accounting) TryTake(memMB int) bool {
	n := a.countFor(memMB)
	if n <= 0 {
		return false
	}
	a.avail[memMB] = n - 1
	return true
}

// Put returns one environment of the given memory size to the warm set.
func (a *Accounting) Put(memMB int) {
	a.avail[memMB] = a.countFor(memMB) + 1
}

// Available returns how many warm environments the given memory size has.
func (a *Accounting) Available(memMB int) int { return a.countFor(memMB) }

// Snapshot copies the per-memory-size availability map (tests,
// inspection).
func (a *Accounting) Snapshot() map[int]int {
	out := make(map[int]int, len(a.avail))
	for k, v := range a.avail {
		out[k] = v
	}
	return out
}

// String renders the availability in ascending memory order.
func (a *Accounting) String() string {
	sizes := make([]int, 0, len(a.avail))
	for k := range a.avail {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	var b strings.Builder
	b.WriteString("warm{")
	for i, s := range sizes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%dMB:%d", s, a.avail[s])
	}
	b.WriteString("}")
	return b.String()
}
