package warmpool

import (
	"fmt"
	"math"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/simclock"
)

// Config parameterises a provisioned-concurrency Pool.
type Config struct {
	// MemoryMB sizes every environment in the pool.
	MemoryMB int
	// Target is the initial provisioned-environment count; target
	// tracking resizes it between Min and Max on the virtual clock.
	Target int
	// Min/Max clamp target tracking (defaults: 1 and 4×Target).
	Min, Max int
	// EnvLifetime recycles environments, losing their /tmp state
	// (default 15 min — the platform's environment lifetime).
	EnvLifetime time.Duration
	// ResizeInterval is the target-tracking evaluation period
	// (default 60 s).
	ResizeInterval time.Duration
	// TargetUtilization is the busy fraction target tracking aims for:
	// target = ceil(peak busy / utilization) (default 0.70).
	TargetUtilization float64
	// AcquireMargin keeps environments this close to recycling from
	// being handed out — they are retired and replaced instead
	// (default 90 s).
	AcquireMargin time.Duration
}

func (c Config) withDefaults() Config {
	if c.EnvLifetime <= 0 {
		c.EnvLifetime = 15 * time.Minute
	}
	if c.ResizeInterval <= 0 {
		c.ResizeInterval = time.Minute
	}
	if c.TargetUtilization <= 0 || c.TargetUtilization > 1 {
		c.TargetUtilization = 0.70
	}
	if c.AcquireMargin <= 0 {
		c.AcquireMargin = 90 * time.Second
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 4 * c.Target
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	return c
}

// Env is one pre-initialized environment. Its ID doubles as the /tmp
// cache host key, so cached shuffle blocks survive across the
// invocations the environment hosts — and die with it.
type Env struct {
	ID        string
	CreatedAt time.Time
	ExpiresAt time.Time

	busy   bool
	doomed bool
	dead   bool
	// idleSince/idleAccrued track provisioned-but-not-running time, the
	// idle-rate GB-seconds billing charges for.
	idleSince   time.Time
	idleAccrued time.Duration
	expiry      *simclock.Timer
}

// EnvIdle is one environment's billed idle time.
type EnvIdle struct {
	ID   string
	Idle time.Duration
}

// Pool is a target-tracked set of provisioned environments on the
// virtual clock. Acquire hands out a warm environment (nil when all are
// busy — the caller falls back to an on-demand cold/warm invocation);
// Release returns it. Environments recycle at EnvLifetime, invoking the
// OnExpire hook so the /tmp cache tier can drop their blocks.
type Pool struct {
	clock *simclock.Clock
	bus   *eventlog.Bus
	cfg   Config

	seq    int
	target int
	// idle is a LIFO stack (most recently used last), keeping the
	// warmest /tmp caches in rotation.
	idle []*Env
	busy int
	envs []*Env

	peakBusy int
	stopped  bool

	onExpire func(envID string)

	warmHits, misses, resizes, recycled int
}

// NewPool builds the pool, provisions Target environments immediately,
// and starts the target-tracking resize loop. bus may be nil.
func NewPool(clock *simclock.Clock, bus *eventlog.Bus, cfg Config) (*Pool, error) {
	if clock == nil {
		return nil, fmt.Errorf("warmpool: nil clock")
	}
	if cfg.MemoryMB <= 0 {
		return nil, fmt.Errorf("warmpool: MemoryMB must be > 0")
	}
	if cfg.Target < 1 {
		return nil, fmt.Errorf("warmpool: Target must be >= 1")
	}
	cfg = cfg.withDefaults()
	p := &Pool{clock: clock, bus: bus, cfg: cfg, target: cfg.Target}
	p.emitResize(0, p.target, "provisioned")
	for p.live() < p.target {
		p.spawn()
	}
	p.clock.After(cfg.ResizeInterval, p.tick)
	return p, nil
}

// SetOnExpire installs the environment-recycled hook (cache loss).
func (p *Pool) SetOnExpire(fn func(envID string)) { p.onExpire = fn }

// Config returns the effective configuration (defaults applied).
func (p *Pool) Config() Config { return p.cfg }

func (p *Pool) live() int { return p.busy + len(p.idle) }

// Target returns the current provisioned-environment target.
func (p *Pool) Target() int { return p.target }

// InUse returns how many environments are currently hosting invocations.
func (p *Pool) InUse() int { return p.busy }

// Idle returns how many provisioned environments sit warm and unused.
func (p *Pool) Idle() int { return len(p.idle) }

// WarmHits counts acquisitions served by a provisioned environment.
func (p *Pool) WarmHits() int { return p.warmHits }

// Misses counts acquisitions that found the pool exhausted.
func (p *Pool) Misses() int { return p.misses }

// Resizes counts target-tracking target changes (the initial
// provisioning included).
func (p *Pool) Resizes() int { return p.resizes }

// Recycled counts environments retired at their lifetime (with their
// /tmp contents).
func (p *Pool) Recycled() int { return p.recycled }

func (p *Pool) emit(t eventlog.Type, exec string, bytes int64, cores int, note string) {
	if p.bus == nil {
		return
	}
	ev := eventlog.Ev(t)
	ev.Exec = exec
	ev.Kind = "warmpool"
	ev.Bytes = bytes
	ev.Cores = cores
	ev.Note = note
	p.bus.Emit(p.clock.Now(), ev)
}

func (p *Pool) emitResize(old, target int, why string) {
	p.resizes++
	p.emit(eventlog.WarmpoolResize, "", 0, target, fmt.Sprintf("%d->%d (%s)", old, target, why))
}

func (p *Pool) spawn() *Env {
	p.seq++
	now := p.clock.Now()
	env := &Env{
		ID:        fmt.Sprintf("wp-%03d", p.seq),
		CreatedAt: now,
		ExpiresAt: now.Add(p.cfg.EnvLifetime),
		idleSince: now,
	}
	env.expiry = p.clock.After(p.cfg.EnvLifetime, func() { p.onLifetime(env) })
	p.idle = append(p.idle, env)
	p.envs = append(p.envs, env)
	return env
}

// onLifetime enforces the environment lifetime: an idle environment is
// recycled on the spot (replaced to hold the target), a busy one is
// doomed and recycled when its invocation releases it.
func (p *Pool) onLifetime(env *Env) {
	if p.stopped || env.dead {
		return
	}
	if env.busy {
		env.doomed = true
		return
	}
	p.removeIdle(env)
	p.retire(env)
	p.replenish()
}

func (p *Pool) removeIdle(env *Env) {
	for i, e := range p.idle {
		if e == env {
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			return
		}
	}
}

// retire finalizes an environment: idle accrual stops, the expiry timer
// is cancelled, and the /tmp-loss hook fires.
func (p *Pool) retire(env *Env) {
	if env.dead {
		return
	}
	env.dead = true
	if !env.busy {
		env.idleAccrued += p.clock.Now().Sub(env.idleSince)
	}
	if env.expiry != nil {
		env.expiry.Cancel()
		env.expiry = nil
	}
	p.recycled++
	if p.onExpire != nil {
		p.onExpire(env.ID)
	}
}

func (p *Pool) replenish() {
	for !p.stopped && p.live() < p.target {
		p.spawn()
	}
}

// Acquire claims the most recently used idle environment (warmest /tmp
// cache first). It returns nil when the pool is exhausted — the caller
// invokes on-demand instead.
func (p *Pool) Acquire() *Env {
	now := p.clock.Now()
	for len(p.idle) > 0 {
		env := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		if !now.Before(env.ExpiresAt.Add(-p.cfg.AcquireMargin)) {
			// Too close to recycling to be worth handing out.
			p.retire(env)
			p.replenish()
			continue
		}
		env.busy = true
		env.idleAccrued += now.Sub(env.idleSince)
		p.busy++
		if p.busy > p.peakBusy {
			p.peakBusy = p.busy
		}
		p.warmHits++
		p.emit(eventlog.LambdaWarmHit, env.ID, 0, 0, "")
		return env
	}
	p.misses++
	return nil
}

// Release returns a busy environment. Doomed or over-target
// environments retire (losing their /tmp contents); the rest go back on
// the warm stack.
func (p *Pool) Release(env *Env) {
	if env == nil || env.dead || !env.busy {
		return
	}
	env.busy = false
	p.busy--
	if env.doomed || p.live() >= p.target {
		p.retire(env)
		p.replenish()
		return
	}
	env.idleSince = p.clock.Now()
	p.idle = append(p.idle, env)
}

// tick is the target-tracking pass: size the pool for the peak
// concurrency observed over the last interval at the configured
// utilization, clamped to [Min, Max].
func (p *Pool) tick() {
	if p.stopped {
		return
	}
	desired := int(math.Ceil(float64(p.peakBusy) / p.cfg.TargetUtilization))
	if desired < p.cfg.Min {
		desired = p.cfg.Min
	}
	if desired > p.cfg.Max {
		desired = p.cfg.Max
	}
	if desired != p.target {
		old := p.target
		p.target = desired
		p.emitResize(old, desired, fmt.Sprintf("peak=%d", p.peakBusy))
		if desired > old {
			p.replenish()
		} else {
			// Shrink from the cold end of the stack; busy environments
			// above target retire on release.
			for p.live() > p.target && len(p.idle) > 0 {
				env := p.idle[0]
				p.idle = p.idle[1:]
				p.retire(env)
			}
		}
	}
	p.peakBusy = p.busy
	p.clock.After(p.cfg.ResizeInterval, p.tick)
}

// Stop halts target tracking and environment recycling (end of run).
// Idle accrual is unaffected: IdleBreakdown still reports up to the
// instant the caller bills at.
func (p *Pool) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	for _, env := range p.envs {
		if env.expiry != nil {
			env.expiry.Cancel()
			env.expiry = nil
		}
	}
}

// IdleBreakdown returns every environment's provisioned-idle time up to
// now, in creation order — the GB-second basis of the idle-rate line
// item.
func (p *Pool) IdleBreakdown(now time.Time) []EnvIdle {
	out := make([]EnvIdle, 0, len(p.envs))
	for _, env := range p.envs {
		idle := env.idleAccrued
		if !env.dead && !env.busy && now.After(env.idleSince) {
			idle += now.Sub(env.idleSince)
		}
		out = append(out, EnvIdle{ID: env.ID, Idle: idle})
	}
	return out
}

// IdleTotal sums IdleBreakdown.
func (p *Pool) IdleTotal(now time.Time) time.Duration {
	var sum time.Duration
	for _, e := range p.IdleBreakdown(now) {
		sum += e.Idle
	}
	return sum
}
