package warmpool

import (
	"container/list"
	"fmt"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/simclock"
	"splitserve/internal/storage"
)

// CacheOptions parameterises a TmpCache.
type CacheOptions struct {
	// CapacityBytes is the per-environment /tmp budget (default 512 MB —
	// the platform's ephemeral-storage cap). Blocks larger than the
	// capacity are never cached.
	CapacityBytes int64
	// HitLatency is charged for a fetch served entirely from /tmp
	// (default 1 ms — a local SSD read instead of a network transfer).
	HitLatency time.Duration
}

func (o CacheOptions) withDefaults() CacheOptions {
	if o.CapacityBytes <= 0 {
		o.CapacityBytes = 512 << 20
	}
	if o.HitLatency <= 0 {
		o.HitLatency = time.Millisecond
	}
	return o
}

// TmpCache layers a function-local shuffle cache tier in front of a
// remote block store (HDFS or S3). Hosts registered with Track — Lambda
// environments with /tmp — keep an LRU copy of every block they write or
// fetch, capped at CapacityBytes; repeat reads of a cached block cost
// HitLatency instead of a network transfer. Untracked hosts (VM
// executors) pass through untouched. DropHost models environment
// recycling: the host's cached bytes vanish along with its /tmp.
type TmpCache struct {
	clock   *simclock.Clock
	bus     *eventlog.Bus
	backing storage.Store
	opts    CacheOptions

	hosts map[string]*hostCache

	hits, misses, evictions  int64
	hitBytes, evictedBytes   int64
	insertedBytes, dropHosts int64
}

type hostCache struct {
	bytes int64
	lru   *list.List // front = most recently used
	byID  map[string]*list.Element
}

type cacheEntry struct {
	id    string
	block storage.Block
}

var _ storage.Store = (*TmpCache)(nil)

// NewTmpCache wraps backing with the /tmp tier. bus may be nil.
func NewTmpCache(clock *simclock.Clock, bus *eventlog.Bus, backing storage.Store, opts CacheOptions) *TmpCache {
	return &TmpCache{
		clock:   clock,
		bus:     bus,
		backing: backing,
		opts:    opts.withDefaults(),
		hosts:   make(map[string]*hostCache),
	}
}

// Track registers hostID as having a /tmp cache. Only tracked hosts
// cache; everything else is a transparent passthrough.
func (t *TmpCache) Track(hostID string) {
	if _, ok := t.hosts[hostID]; ok {
		return
	}
	t.hosts[hostID] = &hostCache{lru: list.New(), byID: make(map[string]*list.Element)}
}

// Name implements Store.
func (t *TmpCache) Name() string { return "tmpcache(" + t.backing.Name() + ")" }

// Durable implements Store: durability is the backing store's — the
// cache is a read accelerator, never the only copy.
func (t *TmpCache) Durable() bool { return t.backing.Durable() }

// PutAll implements Store: write-through. The payload lands in the
// backing store as usual; a tracked writer also keeps a /tmp copy, so a
// bridged Lambda that writes map output and later reduces over it reads
// its own blocks for free.
func (t *TmpCache) PutAll(blocks []storage.Block, cl storage.Client, done func(error)) {
	if hc := t.hosts[cl.HostID]; hc != nil {
		t.insertBatch(hc, cl.HostID, blocks)
	}
	t.backing.PutAll(blocks, cl, done)
}

// FetchAll implements Store: cached blocks are served from /tmp, the
// rest from the backing store; fetched blocks populate the cache for the
// next repeat read. done fires once, with blocks in request order, after
// the slowest leg.
func (t *TmpCache) FetchAll(ids []string, cl storage.Client, done func([]storage.Block, error)) {
	hc := t.hosts[cl.HostID]
	if hc == nil {
		t.backing.FetchAll(ids, cl, done)
		return
	}
	out := make([]storage.Block, len(ids))
	var missing []string
	var missingIdx []int
	var hitBytes int64
	hitCount := 0
	for i, id := range ids {
		if b, ok := hc.get(id); ok {
			out[i] = b
			hitBytes += b.Size
			hitCount++
		} else {
			missing = append(missing, id)
			missingIdx = append(missingIdx, i)
		}
	}
	if hitCount > 0 {
		t.hits += int64(hitCount)
		t.hitBytes += hitBytes
		t.emit(eventlog.TmpCacheHit, cl.HostID, hitBytes,
			fmt.Sprintf("%d/%d blocks", hitCount, len(ids)))
	}
	t.misses += int64(len(missing))
	if len(missing) == 0 {
		t.clock.After(t.opts.HitLatency, func() { done(out, nil) })
		return
	}
	t.backing.FetchAll(missing, cl, func(blocks []storage.Block, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		for k, b := range blocks {
			out[missingIdx[k]] = b
		}
		t.insertBatch(hc, cl.HostID, blocks)
		done(out, nil)
	})
}

// Delete implements Store: blocks leave the backing store and every /tmp
// copy (a deleted shuffle must not resurrect from cache).
func (t *TmpCache) Delete(ids []string) {
	for _, hc := range t.hosts {
		for _, id := range ids {
			hc.remove(id)
		}
	}
	t.backing.Delete(ids)
}

// DropHost implements Store. For a tracked host the cache survives: the
// engine drops a host when an *executor* dies, but the environment — and
// its /tmp — outlives any single invocation it hosts. The authoritative
// environment-recycled signal is Recycle, wired to the warm pool's
// expiry hook. Untracked hosts forward untouched.
func (t *TmpCache) DropHost(hostID string) {
	t.backing.DropHost(hostID)
}

// Recycle discards hostID's /tmp contents and stops tracking it — the
// environment reached its lifetime and was recycled by the platform.
func (t *TmpCache) Recycle(hostID string) {
	if hc, ok := t.hosts[hostID]; ok {
		hc.clear()
		delete(t.hosts, hostID)
		t.dropHosts++
	}
}

// insertBatch caches blocks for one host, evicting LRU entries to stay
// under the capacity. One aggregate tmp_cache_evict event covers the
// whole batch to keep logs proportional to fetches, not blocks.
func (t *TmpCache) insertBatch(hc *hostCache, hostID string, blocks []storage.Block) {
	var evictedBytes int64
	evicted := 0
	for _, b := range blocks {
		if b.Size > t.opts.CapacityBytes {
			continue
		}
		if el, ok := hc.byID[b.ID]; ok {
			hc.lru.MoveToFront(el)
			continue
		}
		for hc.bytes+b.Size > t.opts.CapacityBytes {
			back := hc.lru.Back()
			if back == nil {
				break
			}
			ent := back.Value.(*cacheEntry)
			evictedBytes += ent.block.Size
			evicted++
			hc.remove(ent.id)
		}
		hc.byID[b.ID] = hc.lru.PushFront(&cacheEntry{id: b.ID, block: b})
		hc.bytes += b.Size
		t.insertedBytes += b.Size
	}
	if evicted > 0 {
		t.evictions += int64(evicted)
		t.evictedBytes += evictedBytes
		t.emit(eventlog.TmpCacheEvict, hostID, evictedBytes,
			fmt.Sprintf("%d blocks", evicted))
	}
}

func (t *TmpCache) emit(typ eventlog.Type, exec string, bytes int64, note string) {
	if t.bus == nil {
		return
	}
	ev := eventlog.Ev(typ)
	ev.Exec = exec
	ev.Kind = "tmp"
	ev.Bytes = bytes
	ev.Note = note
	t.bus.Emit(t.clock.Now(), ev)
}

func (hc *hostCache) get(id string) (storage.Block, bool) {
	el, ok := hc.byID[id]
	if !ok {
		return storage.Block{}, false
	}
	hc.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

func (hc *hostCache) remove(id string) {
	el, ok := hc.byID[id]
	if !ok {
		return
	}
	hc.bytes -= el.Value.(*cacheEntry).block.Size
	hc.lru.Remove(el)
	delete(hc.byID, id)
}

func (hc *hostCache) clear() {
	hc.lru.Init()
	hc.byID = make(map[string]*list.Element)
	hc.bytes = 0
}

// Hits returns how many block reads /tmp served.
func (t *TmpCache) Hits() int64 { return t.hits }

// Misses returns how many block reads fell through to the backing store.
func (t *TmpCache) Misses() int64 { return t.misses }

// HitBytes returns the bytes served from /tmp.
func (t *TmpCache) HitBytes() int64 { return t.hitBytes }

// Evictions returns how many blocks the 512 MB cap pushed out.
func (t *TmpCache) Evictions() int64 { return t.evictions }

// EvictedBytes returns the bytes evicted by the cap.
func (t *TmpCache) EvictedBytes() int64 { return t.evictedBytes }

// BytesFor returns hostID's current cached bytes (0 if untracked).
func (t *TmpCache) BytesFor(hostID string) int64 {
	if hc, ok := t.hosts[hostID]; ok {
		return hc.bytes
	}
	return 0
}

// Tracked returns how many hosts currently have live /tmp caches.
func (t *TmpCache) Tracked() int { return len(t.hosts) }
