package loadbench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// SchemaV1 identifies the BENCH_*.json layout. Fields are only ever
// added, never renamed or removed, within a schema version — later perf
// PRs diff these files across months of history.
const SchemaV1 = "splitserve-loadbench/v1"

// Point is one {job count} measurement of the fixed load shape. All
// values except Jobs are host wall-clock measurements: run-to-run noise
// is expected, which is why Compare takes a threshold.
type Point struct {
	Jobs int `json:"jobs"`
	// Shards/Tenants describe sharded control-plane points (RunShardPoint).
	// Zero values mean the classic single-scheduler shape; Compare treats
	// shards 0 and 1 as the same series, so a sharded file's shards=1
	// points gate against pre-shard baselines.
	Shards      int     `json:"shards,omitempty"`
	Tenants     int     `json:"tenants,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// JobsPerSec is simulated cluster throughput: completed jobs per
	// wall-clock second of host time.
	JobsPerSec     float64 `json:"jobs_per_sec"`
	EventsFired    uint64  `json:"events_fired"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	StepP50US      float64 `json:"step_p50_us"`
	StepP99US      float64 `json:"step_p99_us"`
	HeapHighWater  int     `json:"heap_high_water"`
	Cancelled      uint64  `json:"cancelled"`
	Yields         uint64  `json:"yields"`
	QueueMax       int     `json:"queue_max"`
	QueueMean      float64 `json:"queue_mean"`
}

// File is one BENCH_<label>.json: the full trajectory point for one
// commit, measured at several job counts.
type File struct {
	Schema string `json:"schema"`
	Label  string `json:"label"`
	// Commit is the git commit hash that produced this trajectory point
	// (-commit flag, or the SPLITSERVE_COMMIT environment variable).
	// Compare ignores it — provenance, not a metric.
	Commit string `json:"commit,omitempty"`
	// Deterministic is always false: these are wall-clock measurements,
	// the same marker perfstat snapshots carry.
	Deterministic bool    `json:"deterministic"`
	GoVersion     string  `json:"go_version,omitempty"`
	Seed          uint64  `json:"seed"`
	Points        []Point `json:"points"`
}

// JSON renders the file indented, trailing newline included.
func (f *File) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Parse loads a BENCH file, rejecting other schemas.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("loadbench: %w", err)
	}
	if f.Schema != SchemaV1 {
		return nil, fmt.Errorf("loadbench: unknown schema %q (want %s)", f.Schema, SchemaV1)
	}
	return &f, nil
}

// metric describes one compared column: how to read it and which
// direction is a regression.
type metric struct {
	name        string
	get         func(Point) float64
	higherIsBad bool
}

var compareMetrics = []metric{
	{"jobs/sec", func(p Point) float64 { return p.JobsPerSec }, false},
	{"events/sec", func(p Point) float64 { return p.EventsPerSec }, false},
	{"allocs/event", func(p Point) float64 { return p.AllocsPerEvent }, true},
	{"bytes/event", func(p Point) float64 { return p.BytesPerEvent }, true},
	{"step p50 µs", func(p Point) float64 { return p.StepP50US }, true},
	{"step p99 µs", func(p Point) float64 { return p.StepP99US }, true},
}

// Delta is one old→new metric comparison at one job count.
type Delta struct {
	Jobs     int
	Metric   string
	Old, New float64
	// Rel is the relative change (new-old)/old, sign-adjusted so that
	// positive always means "worse" (slower, more allocation).
	Rel float64
}

// Compare diffs two BENCH files point by point (matched on job count) and
// returns every metric delta plus the worst regression. threshold is the
// relative change past which a delta counts as a regression (e.g. 0.10 =
// 10% worse); Regressed reports whether any metric crossed it.
func Compare(old, new *File, threshold float64) *CompareResult {
	res := &CompareResult{Threshold: threshold}
	type key struct{ jobs, shards int }
	norm := func(p Point) key {
		k := key{p.Jobs, p.Shards}
		if k.shards == 0 {
			k.shards = 1
		}
		return k
	}
	newByJobs := map[key]Point{}
	for _, p := range new.Points {
		newByJobs[norm(p)] = p
	}
	for _, op := range old.Points {
		np, ok := newByJobs[norm(op)]
		if !ok {
			res.Unmatched = append(res.Unmatched, op.Jobs)
			continue
		}
		for _, m := range compareMetrics {
			ov, nv := m.get(op), m.get(np)
			d := Delta{Jobs: op.Jobs, Metric: m.name, Old: ov, New: nv}
			if ov != 0 {
				d.Rel = (nv - ov) / ov
				if !m.higherIsBad {
					d.Rel = -d.Rel
				}
			}
			res.Deltas = append(res.Deltas, d)
			if d.Rel > res.Worst {
				res.Worst = d.Rel
			}
		}
	}
	res.Regressed = res.Worst > threshold
	return res
}

// CompareResult is Compare's report: all deltas, the worst sign-adjusted
// relative change, and whether it crossed the threshold.
type CompareResult struct {
	Threshold float64
	Deltas    []Delta
	Worst     float64
	Regressed bool
	Unmatched []int // job counts present in old but missing in new
}

// String renders the comparison as an aligned table with one verdict line.
func (r *CompareResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %14s %14s %10s\n", "jobs", "metric", "old", "new", "change")
	for _, d := range r.Deltas {
		flag := ""
		if d.Rel > r.Threshold {
			flag = "  <- REGRESSION"
		}
		fmt.Fprintf(&b, "%8d %14s %14.3f %14.3f %+9.1f%%%s\n",
			d.Jobs, d.Metric, d.Old, d.New, signedPct(d), flag)
	}
	for _, jobs := range r.Unmatched {
		fmt.Fprintf(&b, "%8d  (missing from new file)\n", jobs)
	}
	if r.Regressed {
		fmt.Fprintf(&b, "worst regression %.1f%% exceeds threshold %.1f%%\n",
			r.Worst*100, r.Threshold*100)
	} else {
		fmt.Fprintf(&b, "no regression past %.1f%% (worst %.1f%%)\n",
			r.Threshold*100, math.Max(r.Worst, 0)*100)
	}
	return b.String()
}

// signedPct undoes the sign adjustment for display: positive = the raw
// value went up.
func signedPct(d Delta) float64 {
	if d.Old == 0 {
		return 0
	}
	return (d.New - d.Old) / d.Old * 100
}
