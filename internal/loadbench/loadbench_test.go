package loadbench

import (
	"strings"
	"testing"
)

func TestRunPointSmall(t *testing.T) {
	p, err := RunPoint(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Jobs != 5 {
		t.Fatalf("jobs = %d, want 5", p.Jobs)
	}
	if p.EventsFired == 0 || p.EventsPerSec <= 0 || p.JobsPerSec <= 0 {
		t.Fatalf("throughput not populated: %+v", p)
	}
	if p.AllocsPerEvent <= 0 {
		t.Fatalf("allocs/event = %v, want > 0", p.AllocsPerEvent)
	}
	if p.StepP99US < p.StepP50US {
		t.Fatalf("p99 %.1fµs < p50 %.1fµs", p.StepP99US, p.StepP50US)
	}
	if p.Yields == 0 {
		t.Fatalf("no workload yields recorded: %+v", p)
	}
}

func TestRunPointRejectsZeroJobs(t *testing.T) {
	if _, err := RunPoint(0, 1); err == nil {
		t.Fatal("RunPoint(0) succeeded")
	}
}

func testFile(vals ...float64) *File {
	// vals: jobsPerSec, eventsPerSec, allocs, bytes, p50, p99
	return &File{
		Schema: SchemaV1,
		Label:  "test",
		Seed:   1,
		Points: []Point{{
			Jobs:           100,
			JobsPerSec:     vals[0],
			EventsPerSec:   vals[1],
			AllocsPerEvent: vals[2],
			BytesPerEvent:  vals[3],
			StepP50US:      vals[4],
			StepP99US:      vals[5],
			EventsFired:    1000,
			WallSeconds:    1,
		}},
	}
}

func TestFileJSONRoundTrip(t *testing.T) {
	f := testFile(50, 10000, 25, 1500, 2, 90)
	buf, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"deterministic": false`) {
		t.Fatalf("BENCH JSON missing the deterministic:false marker:\n%s", buf)
	}
	back, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "test" || len(back.Points) != 1 || back.Points[0].Jobs != 100 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := Parse([]byte(`{"schema":"bogus/v0"}`)); err == nil {
		t.Fatal("Parse accepted an unknown schema")
	}
}

func TestCompareIdenticalFilesIsZeroDelta(t *testing.T) {
	f := testFile(50, 10000, 25, 1500, 2, 90)
	res := Compare(f, f, 0.10)
	if res.Regressed {
		t.Fatalf("identical files flagged as regression: %s", res)
	}
	if res.Worst != 0 {
		t.Fatalf("identical files worst delta = %v, want 0", res.Worst)
	}
	for _, d := range res.Deltas {
		if d.Rel != 0 {
			t.Fatalf("identical files delta %+v nonzero", d)
		}
	}
	if len(res.Deltas) != len(compareMetrics) {
		t.Fatalf("got %d deltas, want %d", len(res.Deltas), len(compareMetrics))
	}
}

// TestCompareIgnoresCommitStamp: the commit hash is provenance, not a
// metric — two otherwise-identical files from different commits must
// diff to zero, and the stamp must survive a JSON round trip.
func TestCompareIgnoresCommitStamp(t *testing.T) {
	old := testFile(50, 10000, 25, 1500, 2, 90)
	old.Commit = "aaaaaaa"
	new := testFile(50, 10000, 25, 1500, 2, 90)
	new.Commit = "bbbbbbb"
	res := Compare(old, new, 0.10)
	if res.Regressed || res.Worst != 0 {
		t.Fatalf("commit stamp leaked into the comparison: %s", res)
	}
	buf, err := old.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"commit": "aaaaaaa"`) {
		t.Fatalf("BENCH JSON missing the commit stamp:\n%s", buf)
	}
	back, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Commit != "aaaaaaa" {
		t.Fatalf("commit stamp lost in round trip: %q", back.Commit)
	}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	old := testFile(50, 10000, 25, 1500, 2, 90)
	slower := testFile(40, 8000, 25, 1500, 2, 90) // 20% fewer jobs/sec
	res := Compare(old, slower, 0.10)
	if !res.Regressed {
		t.Fatalf("20%% throughput drop not flagged: %s", res)
	}
	if res.Worst < 0.19 || res.Worst > 0.21 {
		t.Fatalf("worst = %v, want ≈0.20", res.Worst)
	}
	if !strings.Contains(res.String(), "REGRESSION") {
		t.Fatalf("report does not mark the regression:\n%s", res)
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	old := testFile(50, 10000, 25, 1500, 2, 90)
	hungry := testFile(50, 10000, 40, 1500, 2, 90) // 60% more allocs/event
	if res := Compare(old, hungry, 0.10); !res.Regressed {
		t.Fatalf("alloc growth not flagged: %s", res)
	}
	// Improvements in a higher-is-bad metric must not count as regression.
	lean := testFile(50, 10000, 10, 1500, 2, 90)
	if res := Compare(old, lean, 0.10); res.Regressed {
		t.Fatalf("alloc *improvement* flagged as regression: %s", res)
	}
}

func TestCompareReportsUnmatchedPoints(t *testing.T) {
	old := testFile(50, 10000, 25, 1500, 2, 90)
	empty := &File{Schema: SchemaV1, Label: "empty"}
	res := Compare(old, empty, 0.10)
	if len(res.Unmatched) != 1 || res.Unmatched[0] != 100 {
		t.Fatalf("unmatched = %v, want [100]", res.Unmatched)
	}
}
