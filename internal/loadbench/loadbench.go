// Package loadbench is the load benchmark harness behind the repo's
// BENCH_*.json perf trajectory: it pushes a stream of N tiny jobs through
// the real cluster scheduler (run-queue handoffs, simclock timer wheel,
// event bus — nothing mocked) with perfstat attached, and reduces the run to a
// stable-schema point of host-side throughput numbers. Every later
// optimisation of the event loop cites the delta between two of these
// files; see OBSERVABILITY.md ("Layer 3") for the schema and the compare
// workflow.
package loadbench

import (
	"fmt"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/perfstat"
	"splitserve/internal/shard"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/sparkpi"
)

// The fixed load shape: many small 2-core SparkPi jobs arriving every
// 100ms against a 16-core pool. Service rate stays ahead of arrival rate,
// so wall time grows linearly in job count and 10k-job runs stay feasible;
// the constants are part of the benchmark definition and must not change
// without relabelling the trajectory (a new BENCH baseline).
const (
	jobCores   = 2
	poolCores  = 16
	jobDarts   = 200_000
	partitions = 4
	arrivalGap = 100 * time.Millisecond
)

func tinyJob(seed uint64) workloads.Workload {
	cfg := sparkpi.DefaultConfig()
	cfg.Darts = jobDarts
	cfg.Partitions = partitions
	cfg.Seed = seed
	return sparkpi.New(cfg)
}

// RunPoint pushes a stream of `jobs` tiny jobs through the cluster
// scheduler and returns the measured point. The simulation itself is
// seed-deterministic; the point's values are host wall-clock measurements
// and vary run to run.
func RunPoint(jobs int, seed uint64) (Point, error) {
	if jobs < 1 {
		return Point{}, fmt.Errorf("loadbench: need at least 1 job, got %d", jobs)
	}
	base, err := cluster.Baseline(tinyJob(seed), jobCores, seed)
	if err != nil {
		return Point{}, fmt.Errorf("loadbench baseline: %w", err)
	}
	specs := make([]cluster.JobSpec, jobs)
	for i := range specs {
		specs[i] = cluster.JobSpec{
			Name:     "sparkpi",
			Workload: tinyJob(seed + uint64(i)),
			Cores:    jobCores,
			Arrival:  time.Duration(i) * arrivalGap,
			Baseline: base,
		}
	}

	// The collector starts here so the allocation and wall baselines
	// exclude spec construction — the benchmark measures the scheduler,
	// not the harness.
	prof := perfstat.New()
	s, err := cluster.New(cluster.Config{
		Jobs:      specs,
		PoolCores: poolCores,
		Seed:      seed,
		Prof:      prof,
	})
	if err != nil {
		return Point{}, fmt.Errorf("loadbench: %w", err)
	}
	if _, err := s.Run(); err != nil {
		return Point{}, fmt.Errorf("loadbench run: %w", err)
	}
	snap := prof.Snapshot()

	p := Point{
		Jobs:           jobs,
		WallSeconds:    snap.WallSeconds,
		EventsFired:    snap.EventsFired,
		EventsPerSec:   snap.EventsPerSec,
		AllocsPerEvent: snap.AllocsPerEvent,
		BytesPerEvent:  snap.BytesPerEvent,
		StepP50US:      snap.StepWall.P50US,
		StepP99US:      snap.StepWall.P99US,
		HeapHighWater:  snap.Clock.HeapHighWater,
		Cancelled:      snap.Clock.Cancelled,
		Yields:         snap.Yields,
		QueueMax:       snap.RunQueue.Max,
		QueueMean:      snap.RunQueue.Mean,
	}
	if snap.WallSeconds > 0 {
		p.JobsPerSec = float64(jobs) / snap.WallSeconds
	}
	return p, nil
}

// RunShardPoint pushes the same fixed load shape through the sharded
// control plane: the stream is labelled with `tenants` synthetic tenants
// round-robin and partitioned across `shards` scheduler instances, so
// the point measures the manager's lockstep drive loop, work-stealing
// pass and merged reporting on top of the scheduler itself. shards=1
// quantifies pure manager overhead against RunPoint's direct path.
func RunShardPoint(jobs, shards, tenants int, seed uint64) (Point, error) {
	if jobs < 1 {
		return Point{}, fmt.Errorf("loadbench: need at least 1 job, got %d", jobs)
	}
	if shards < 1 {
		return Point{}, fmt.Errorf("loadbench: need at least 1 shard, got %d", shards)
	}
	if tenants < 1 {
		return Point{}, fmt.Errorf("loadbench: need at least 1 tenant, got %d", tenants)
	}
	base, err := cluster.Baseline(tinyJob(seed), jobCores, seed)
	if err != nil {
		return Point{}, fmt.Errorf("loadbench baseline: %w", err)
	}
	specs := make([]cluster.JobSpec, jobs)
	for i := range specs {
		specs[i] = cluster.JobSpec{
			Name:     "sparkpi",
			Workload: tinyJob(seed + uint64(i)),
			Tenant:   fmt.Sprintf("t%02d", i%tenants),
			Cores:    jobCores,
			Arrival:  time.Duration(i) * arrivalGap,
			Baseline: base,
		}
	}

	prof := perfstat.New()
	m, err := shard.New(shard.Config{
		Shards: shards,
		Cluster: cluster.Config{
			Jobs:      specs,
			PoolCores: poolCores,
			Seed:      seed,
			Prof:      prof,
		},
	})
	if err != nil {
		return Point{}, fmt.Errorf("loadbench: %w", err)
	}
	if _, err := m.Run(); err != nil {
		return Point{}, fmt.Errorf("loadbench run: %w", err)
	}
	snap := prof.Snapshot()

	p := Point{
		Jobs:           jobs,
		Shards:         shards,
		Tenants:        tenants,
		WallSeconds:    snap.WallSeconds,
		EventsFired:    snap.EventsFired,
		EventsPerSec:   snap.EventsPerSec,
		AllocsPerEvent: snap.AllocsPerEvent,
		BytesPerEvent:  snap.BytesPerEvent,
		StepP50US:      snap.StepWall.P50US,
		StepP99US:      snap.StepWall.P99US,
		HeapHighWater:  snap.Clock.HeapHighWater,
		Cancelled:      snap.Clock.Cancelled,
		Yields:         snap.Yields,
		QueueMax:       snap.RunQueue.Max,
		QueueMean:      snap.RunQueue.Mean,
	}
	if snap.WallSeconds > 0 {
		p.JobsPerSec = float64(jobs) / snap.WallSeconds
	}
	return p, nil
}
