package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(7)
	f := r.Fork()
	// Draw heavily from the fork; parent stream must be unaffected except
	// for the single draw Fork consumed.
	want := New(7)
	want.Uint64() // the draw consumed by Fork
	for i := 0; i < 100; i++ {
		f.Uint64()
	}
	for i := 0; i < 100; i++ {
		if r.Uint64() != want.Uint64() {
			t.Fatalf("fork perturbed parent stream at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(0, 100, -5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(0.5) // mean 2
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("exp mean = %v, want ~2", mean)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(19)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		v := r.Zipf(2.0, 100)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("Zipf not skewed: count[1]=%d count[10]=%d", counts[1], counts[10])
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestQuickIntnWithinBounds(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShufflePreservesMultiset(t *testing.T) {
	prop := func(seed uint64, items []int) bool {
		cp := append([]int(nil), items...)
		r := New(seed)
		r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		counts := map[int]int{}
		for _, v := range items {
			counts[v]++
		}
		for _, v := range cp {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
