// Package simrand provides a deterministic, seedable random source and the
// distributions the simulator needs (normal boot delays, Zipf out-degrees,
// exponential arrivals). It wraps SplitMix64, a small, fast, well-mixed
// generator, so experiments replay identically across platforms and Go
// versions (math/rand's global source offers no such guarantee).
package simrand

import "math"

// RNG is a deterministic pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New for clarity.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent generator from this one. Use it to give each
// subsystem its own stream so that adding draws in one place does not
// perturb another.
func (r *RNG) Fork() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("simrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed float with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNormal returns a normal draw clamped to [lo, hi].
func (r *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	v := r.Normal(mean, stddev)
	return math.Max(lo, math.Min(hi, v))
}

// Exp returns an exponentially distributed float with the given rate
// (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("simrand: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Zipf draws from a Zipf distribution over [1, n] with exponent s > 1 using
// inverse-CDF on a precomputed table would be heavy; this uses rejection
// sampling (Devroye) which is O(1) amortised.
func (r *RNG) Zipf(s float64, n int) int {
	if n <= 0 {
		panic("simrand: Zipf with non-positive n")
	}
	if s <= 1 {
		// Fall back to a bounded pareto-ish draw for s<=1 to stay total.
		return 1 + r.Intn(n)
	}
	b := math.Pow(2, s-1)
	for {
		u := r.Float64()
		v := r.Float64()
		x := math.Floor(math.Pow(u, -1/(s-1)))
		if x > float64(n) || x < 1 {
			continue
		}
		t := math.Pow(1+1/x, s-1)
		if v*x*(t-1)/(b-1) <= t/b {
			return int(x)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
