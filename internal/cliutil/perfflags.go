package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"splitserve/internal/perfstat"
)

// PerfUsage is the shared help text for the -perf flag every command
// carries.
const (
	PerfUsage       = "write a host-side self-profiling snapshot (perfstat JSON) to this file (- = stdout); wall-clock data, never affects simulation output"
	CPUProfileUsage = "write a pprof CPU profile to this file"
	MemProfileUsage = "write a pprof heap profile to this file"
	CommitUsage     = "git commit hash stamped into perf outputs for trajectory provenance (default: $SPLITSERVE_COMMIT); comparisons ignore it"
)

// CommitFromEnv is the -commit default: the SPLITSERVE_COMMIT
// environment variable, so CI can stamp every perf artifact without
// threading the hash through each invocation.
func CommitFromEnv() string {
	return os.Getenv("SPLITSERVE_COMMIT")
}

// PerfFlags bundles the self-profiling flags (-perf, -cpuprofile,
// -memprofile) shared by all splitserve-* commands. Register on a FlagSet
// (or the default set), Start after flag.Parse, and Stop before writing
// the final outputs:
//
//	perf := cliutil.RegisterPerfFlags(nil)
//	flag.Parse()
//	prof, err := perf.Start()   // validates paths before any work runs
//	...
//	defer perf.Stop()           // or call explicitly before snapshotting
//	... perf.WriteSnapshot()
type PerfFlags struct {
	Perf       string
	CPUProfile string
	MemProfile string
	// Commit is the -commit provenance stamp (default $SPLITSERVE_COMMIT);
	// Label is set programmatically by the command (its config label) —
	// both land in the snapshot, neither affects any comparison.
	Commit string
	Label  string

	cpuFile *os.File
}

// RegisterPerfFlags registers -perf, -cpuprofile, -memprofile and
// -commit on fs (nil = the default flag.CommandLine set) and returns
// the bundle.
func RegisterPerfFlags(fs *flag.FlagSet) *PerfFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	p := &PerfFlags{}
	fs.StringVar(&p.Perf, "perf", "", PerfUsage)
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", CPUProfileUsage)
	fs.StringVar(&p.MemProfile, "memprofile", "", MemProfileUsage)
	fs.StringVar(&p.Commit, "commit", CommitFromEnv(), CommitUsage)
	return p
}

// Enabled reports whether any self-profiling output was requested.
func (p *PerfFlags) Enabled() bool {
	return p.Perf != "" || p.CPUProfile != "" || p.MemProfile != ""
}

// Start validates every requested output path *before* the run (so a
// long simulation cannot die at the end on an unwritable path), begins
// CPU profiling if asked, and returns the perfstat collector to wire into
// the run — nil (a valid no-op collector) when -perf is off.
func (p *PerfFlags) Start() (*perfstat.Collector, error) {
	for _, path := range []string{p.Perf, p.CPUProfile, p.MemProfile} {
		if err := checkWritable(path); err != nil {
			return nil, err
		}
	}
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if p.Perf == "" {
		return nil, nil
	}
	return perfstat.New(), nil
}

// Stop finishes CPU profiling and writes the heap profile, if requested.
// Safe to call more than once.
func (p *PerfFlags) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		p.cpuFile = nil
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if p.MemProfile != "" {
		f, err := os.Create(p.MemProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		p.MemProfile = "" // written once
	}
	return nil
}

// WriteSnapshot stops profiling and writes prof's snapshot to the -perf
// path ("-" = stdout). A nil collector or empty path is a no-op, so
// commands call this unconditionally at exit.
func (p *PerfFlags) WriteSnapshot(prof *perfstat.Collector) error {
	if err := p.Stop(); err != nil {
		return err
	}
	if p.Perf == "" || prof == nil {
		return nil
	}
	snap := prof.Snapshot()
	snap.Commit = p.Commit
	snap.Label = p.Label
	buf, err := snap.JSON()
	if err != nil {
		return err
	}
	return writeOut(p.Perf, buf)
}

// checkWritable verifies path can be created/written without leaving a
// file behind ("" and "-" always pass). Existing files are left intact;
// files we create to probe are removed again.
func checkWritable(path string) error {
	if path == "" || path == "-" {
		return nil
	}
	if _, err := os.Stat(path); err == nil {
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("output path %s not writable: %w", path, err)
		}
		return f.Close()
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("output path %s not writable: %w", path, err)
	}
	f.Close()
	return os.Remove(path)
}
