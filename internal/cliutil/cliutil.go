// Package cliutil holds the flag vocabulary and output helpers shared by
// the splitserve-* commands, so accepted values and validation cannot
// drift between binaries.
package cliutil

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"splitserve/internal/attrib"
	"splitserve/internal/eventlog"
)

// ReportFormats is the accepted -report vocabulary.
var ReportFormats = []string{"json", "prom"}

// ReportUsage is the shared -report help text.
const ReportUsage = "emit a machine-readable report: json | prom"

// EventLogUsage and TraceUsage are the shared help texts for the
// observability output flags every command carries.
const (
	EventLogUsage = "write the structured event log as JSONL to this file (- = stdout); replay with splitserve-history"
	TraceUsage    = "write a Chrome trace-event JSON timeline to this file (- = stdout); open in chrome://tracing or ui.perfetto.dev"
	AttribUsage   = "write the causal attribution report (splitserve-attrib/v1 JSON) to this file (- = stdout); diff with splitserve-history -diff"
)

// ValidateReport checks a -report value against ReportFormats ("" = off).
func ValidateReport(format string) error {
	if format == "" {
		return nil
	}
	for _, f := range ReportFormats {
		if format == f {
			return nil
		}
	}
	return fmt.Errorf("unknown report format %q (accepted: %s)",
		format, strings.Join(ReportFormats, ", "))
}

// writeOut writes data to path, with "-" meaning stdout and "" a no-op.
func writeOut(path string, data []byte) error {
	switch path {
	case "":
		return nil
	case "-":
		_, err := os.Stdout.Write(data)
		return err
	default:
		return os.WriteFile(path, data, 0o644)
	}
}

// WriteEventLog writes an event stream as JSONL to path ("" = off,
// "-" = stdout). Commands that run several scenarios concatenate the
// per-run streams; apps stay distinguishable through the events' App
// field.
func WriteEventLog(path string, events []eventlog.Event) error {
	if path == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := eventlog.WriteJSONL(&buf, events); err != nil {
		return err
	}
	return writeOut(path, buf.Bytes())
}

// WriteTrace renders an event stream as Chrome trace-event JSON to path
// ("" = off, "-" = stdout).
func WriteTrace(path string, events []eventlog.Event) error {
	if path == "" {
		return nil
	}
	data, err := eventlog.ChromeTrace(events)
	if err != nil {
		return err
	}
	return writeOut(path, data)
}

// WriteAttrib runs the causal attribution engine over an event stream
// and writes the splitserve-attrib/v1 report to path ("" = off,
// "-" = stdout).
func WriteAttrib(path string, events []eventlog.Event) error {
	if path == "" {
		return nil
	}
	data, err := attrib.Analyze(events).JSON()
	if err != nil {
		return err
	}
	return writeOut(path, data)
}
