package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"splitserve/internal/eventlog"
)

func TestValidateReport(t *testing.T) {
	for _, ok := range []string{"", "json", "prom"} {
		if err := ValidateReport(ok); err != nil {
			t.Errorf("ValidateReport(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"yaml", "JSON", "text"} {
		err := ValidateReport(bad)
		if err == nil {
			t.Errorf("ValidateReport(%q) = nil, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "accepted: json, prom") {
			t.Errorf("ValidateReport(%q) error %q does not list accepted formats", bad, err)
		}
	}
}

// FuzzValidateReport: the -report validator must never panic and must
// either accept a known format or return an error naming the accepted
// vocabulary — the property every command's flag handling relies on.
func FuzzValidateReport(f *testing.F) {
	for _, s := range []string{"", "json", "prom", "yaml", "JSON", "j\x00son", "promjson"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, format string) {
		err := ValidateReport(format)
		known := format == ""
		for _, f := range ReportFormats {
			known = known || format == f
		}
		if known && err != nil {
			t.Errorf("ValidateReport(%q) rejected a known format: %v", format, err)
		}
		if !known {
			if err == nil {
				t.Errorf("ValidateReport(%q) accepted an unknown format", format)
			} else if !strings.Contains(err.Error(), "accepted:") {
				t.Errorf("ValidateReport(%q) error %q does not list accepted formats", format, err)
			}
		}
	})
}

func testEvents(t *testing.T) []eventlog.Event {
	t.Helper()
	origin := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	bus := eventlog.NewBus(origin)
	ev := eventlog.Ev(eventlog.JobStart)
	ev.App = "app-1"
	bus.Emit(origin.Add(time.Second), ev)
	return bus.Events()
}

func TestWriteEventLogAndTrace(t *testing.T) {
	events := testEvents(t)
	dir := t.TempDir()

	logPath := filepath.Join(dir, "events.jsonl")
	if err := WriteEventLog(logPath, events); err != nil {
		t.Fatalf("WriteEventLog: %v", err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"job_start"`) {
		t.Errorf("event log missing job_start: %s", data)
	}

	tracePath := filepath.Join(dir, "trace.json")
	if err := WriteTrace(tracePath, events); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	data, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"traceEvents"`) {
		t.Errorf("trace output missing traceEvents wrapper: %s", data)
	}

	// "" is a no-op regardless of the stream.
	if err := WriteEventLog("", nil); err != nil {
		t.Errorf(`WriteEventLog("", nil) = %v, want nil`, err)
	}
	if err := WriteTrace("", nil); err != nil {
		t.Errorf(`WriteTrace("", nil) = %v, want nil`, err)
	}
}
