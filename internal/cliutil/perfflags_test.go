package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"splitserve/internal/perfstat"
	"splitserve/internal/simclock"
)

func TestRegisterPerfFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := RegisterPerfFlags(fs)
	if err := fs.Parse([]string{"-perf", "out.json", "-cpuprofile", "cpu.pb", "-memprofile", "mem.pb"}); err != nil {
		t.Fatal(err)
	}
	if p.Perf != "out.json" || p.CPUProfile != "cpu.pb" || p.MemProfile != "mem.pb" {
		t.Fatalf("parsed flags = %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("Enabled() = false with all three flags set")
	}
	if (&PerfFlags{}).Enabled() {
		t.Fatal("Enabled() = true with no flags set")
	}
}

func TestPerfFlagsStartRejectsUnwritablePath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	for _, p := range []*PerfFlags{
		{Perf: bad},
		{CPUProfile: bad},
		{MemProfile: bad},
	} {
		if _, err := p.Start(); err == nil {
			t.Fatalf("Start() accepted unwritable path in %+v", p)
		}
	}
	// The probe must not leave files behind for writable paths either.
	good := filepath.Join(t.TempDir(), "out.json")
	p := &PerfFlags{MemProfile: good}
	if _, err := p.Start(); err != nil {
		t.Fatalf("Start() rejected writable path: %v", err)
	}
	if _, err := os.Stat(good); !os.IsNotExist(err) {
		t.Fatalf("writability probe left %s behind (stat err = %v)", good, err)
	}
}

func TestPerfFlagsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	p := &PerfFlags{
		Perf:       filepath.Join(dir, "perf.json"),
		CPUProfile: filepath.Join(dir, "cpu.pb"),
		MemProfile: filepath.Join(dir, "mem.pb"),
	}
	prof, err := p.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if prof == nil {
		t.Fatal("Start returned nil collector despite -perf")
	}
	clock := simclock.New(simclock.Epoch)
	prof.AttachClock(clock)
	clock.After(time.Second, func() {})
	clock.Run()
	if err := p.WriteSnapshot(prof); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	buf, err := os.ReadFile(p.Perf)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := perfstat.ParseSnapshot(buf)
	if err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Deterministic || snap.EventsFired != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	for _, f := range []string{p.CPUProfile, filepath.Join(dir, "mem.pb")} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s missing: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
	// Stop is idempotent.
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestPerfFlagsOffIsNoOp(t *testing.T) {
	p := &PerfFlags{}
	prof, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if prof != nil {
		t.Fatal("Start returned a collector with -perf off")
	}
	if err := p.WriteSnapshot(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerfUsageMentionsStdout(t *testing.T) {
	if !strings.Contains(PerfUsage, "-") || !strings.Contains(PerfUsage, "stdout") {
		t.Fatalf("PerfUsage should document the - = stdout convention: %q", PerfUsage)
	}
}
