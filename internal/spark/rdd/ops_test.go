package rdd

import (
	"testing"
)

func TestDistinctPostShuffle(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	d := src.Distinct("distinct", 2, func(r Row) Key { return r.(int) }, 1)
	out := d.PostShuffleFn(0, []Group{
		{Key: 1, Rows: intRows(1, 1, 1)},
		{Key: 2, Rows: intRows(2)},
	})
	if len(out) != 2 {
		t.Fatalf("distinct = %v", out)
	}
}

func TestSampleDeterministicFraction(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	s := src.Sample("sample", 0.25, func(r Row) Key { return r.(int) }, 1)
	in := make([]Row, 10000)
	for i := range in {
		in[i] = i
	}
	out := s.NarrowFn(0, in)
	frac := float64(len(out)) / float64(len(in))
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("sample kept %.3f, want ~0.25", frac)
	}
	// Deterministic: same input, same subset.
	out2 := s.NarrowFn(0, in)
	if len(out) != len(out2) {
		t.Fatal("sample nondeterministic")
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("sample nondeterministic rows")
		}
	}
}

func TestSampleEdges(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	none := src.Sample("none", 0, func(r Row) Key { return r.(int) }, 1)
	if got := none.NarrowFn(0, intRows(1, 2, 3)); len(got) != 0 {
		t.Fatalf("frac=0 kept %v", got)
	}
	all := src.Sample("all", 1, func(r Row) Key { return r.(int) }, 1)
	if got := all.NarrowFn(0, intRows(1, 2, 3)); len(got) != 3 {
		t.Fatalf("frac=1 kept %v", got)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	src.Sample("bad", 1.5, func(r Row) Key { return r.(int) }, 1)
}

func TestCountByKeyShape(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	counted := src.CountByKey("count", 2, func(r Row) Key { return r.(int) % 3 }, 2)
	if counted.Kind != KindShuffled {
		t.Fatalf("kind = %v", counted.Kind)
	}
	// The map side wraps rows in KV{key,1}; verify via the narrow parent.
	ones := counted.Parents[0]
	out := ones.NarrowFn(0, intRows(4, 7))
	if out[0].(KV).K != 1 || out[0].(KV).V.(int) != 1 {
		t.Fatalf("ones = %+v", out)
	}
}

func TestKeysValues(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	keys := src.Keys("k", 1)
	vals := src.Values("v", 1, 8)
	in := []Row{KV{K: "a", V: 1}, KV{K: "b", V: 2}}
	if got := keys.NarrowFn(0, in); got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys = %v", got)
	}
	if got := vals.NarrowFn(0, in); got[0] != 1 || got[1] != 2 {
		t.Fatalf("Values = %v", got)
	}
}

func TestRepartitionIsExchange(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 4, func(int) []Row { return nil }, 1, 8)
	rp := src.Repartition("rp", 2, func(r Row) Key { return r.(int) }, 1)
	if rp.Kind != KindShuffled || rp.Parts != 2 {
		t.Fatalf("repartition = %+v", rp)
	}
	out := rp.PostShuffleFn(0, []Group{{Key: 1, Rows: intRows(1, 2)}})
	if len(out) != 2 {
		t.Fatalf("identity post = %v", out)
	}
}
