// Package rdd implements the logical dataset layer of the Spark-like
// engine: lineage-carrying datasets built from sources, narrow
// transformations, shuffles, and co-groups (joins), mirroring Spark's RDD
// abstraction [Zaharia et al., NSDI'12] closely enough that the paper's
// mechanisms — stage creation at shuffle boundaries, lineage-based
// recomputation, caching — have their natural home.
//
// Rows are untyped (any); workloads define their own row structs. Every
// dataset carries a CPU cost per processed row (abstract work units the
// executor model turns into time) and an average serialized row size (the
// byte volume the shuffle and I/O models move). Computation is real: rows
// actually flow and actions return actual results.
package rdd

import (
	"fmt"
	"sort"
)

// Row is one record. Workloads use their own concrete types.
type Row = any

// Key is a shuffle key. It must be an int, int32, int64, uint64 or string
// so grouping can order deterministically.
type Key = any

// KV is the conventional keyed-row shape used by the built-in helpers.
type KV struct {
	K Key
	V any
}

// Group is all co-located rows for one key in a reduce partition. Rows are
// ordered by (map partition, original order), so reductions are
// deterministic.
type Group struct {
	Key  Key
	Rows []Row
}

// Kind discriminates dataset node types.
type Kind int

// Dataset node kinds.
const (
	KindSource Kind = iota + 1
	KindNarrow
	KindShuffled
	KindCoGrouped
)

func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindNarrow:
		return "narrow"
	case KindShuffled:
		return "shuffled"
	case KindCoGrouped:
		return "cogrouped"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Context numbers datasets within one logical plan (one application).
type Context struct {
	nextID int
	rdds   []*RDD
}

// NewContext returns an empty plan-building context.
func NewContext() *Context { return &Context{} }

// RDDs returns every dataset created in the context.
func (c *Context) RDDs() []*RDD { return append([]*RDD(nil), c.rdds...) }

func (c *Context) register(r *RDD) *RDD {
	r.ID = c.nextID
	c.nextID++
	c.rdds = append(c.rdds, r)
	return r
}

// RDD is one dataset node in the lineage graph.
type RDD struct {
	ctx  *Context
	ID   int
	Name string
	// Parts is the partition count of this dataset.
	Parts int
	Kind  Kind
	// Parents is empty for sources, 1 for narrow/shuffled, 2 for cogrouped.
	Parents []*RDD
	// Cached marks the dataset for per-executor in-memory caching.
	Cached bool

	// CostPerRow is CPU work (abstract units) per input row processed by
	// this node. RowBytes is the average serialized size of an output row.
	CostPerRow float64
	RowBytes   int

	// Gen materialises a source partition.
	Gen func(part int) []Row
	// NarrowFn transforms one parent partition (KindNarrow).
	NarrowFn func(part int, in []Row) []Row
	// KeyFn extracts the shuffle key from a parent row (KindShuffled).
	KeyFn func(Row) Key
	// MergeFn optionally combines two rows with equal keys (map-side and
	// reduce-side combining, as in reduceByKey).
	MergeFn func(a, b Row) Row
	// PostShuffleFn turns the grouped rows of a reduce partition into
	// output rows (KindShuffled).
	PostShuffleFn func(part int, groups []Group) []Row
	// LeftKeyFn/RightKeyFn key the two parents of a co-group.
	LeftKeyFn, RightKeyFn func(Row) Key
	// CoGroupFn joins the grouped sides of a reduce partition
	// (KindCoGrouped).
	CoGroupFn func(part int, left, right []Group) []Row
}

// Source creates a generator-backed dataset. costPerRow should include the
// cost of producing (reading/parsing) one row; rowBytes its in-flight size.
func (c *Context) Source(name string, parts int, gen func(part int) []Row, costPerRow float64, rowBytes int) *RDD {
	mustPositive(parts, name)
	if gen == nil {
		panic("rdd: nil generator for " + name)
	}
	return c.register(&RDD{
		ctx: c, Name: name, Parts: parts, Kind: KindSource,
		Gen: gen, CostPerRow: costPerRow, RowBytes: rowBytes,
	})
}

// MapPartitions applies fn to each partition (narrow dependency).
func (r *RDD) MapPartitions(name string, fn func(part int, in []Row) []Row, costPerRow float64, rowBytes int) *RDD {
	if fn == nil {
		panic("rdd: nil narrow fn for " + name)
	}
	return r.ctx.register(&RDD{
		ctx: r.ctx, Name: name, Parts: r.Parts, Kind: KindNarrow,
		Parents: []*RDD{r}, NarrowFn: fn,
		CostPerRow: costPerRow, RowBytes: rowBytes,
	})
}

// Map applies fn to each row.
func (r *RDD) Map(name string, fn func(Row) Row, costPerRow float64, rowBytes int) *RDD {
	return r.MapPartitions(name, func(_ int, in []Row) []Row {
		out := make([]Row, len(in))
		for i, row := range in {
			out[i] = fn(row)
		}
		return out
	}, costPerRow, rowBytes)
}

// Filter keeps rows where pred holds.
func (r *RDD) Filter(name string, pred func(Row) bool, costPerRow float64) *RDD {
	return r.MapPartitions(name, func(_ int, in []Row) []Row {
		out := in[:0:0]
		for _, row := range in {
			if pred(row) {
				out = append(out, row)
			}
		}
		return out
	}, costPerRow, r.RowBytes)
}

// FlatMap applies fn to each row and concatenates the results.
func (r *RDD) FlatMap(name string, fn func(Row) []Row, costPerRow float64, rowBytes int) *RDD {
	return r.MapPartitions(name, func(_ int, in []Row) []Row {
		var out []Row
		for _, row := range in {
			out = append(out, fn(row)...)
		}
		return out
	}, costPerRow, rowBytes)
}

// ReduceByKey shuffles parent rows by keyFn into parts partitions, merging
// rows with equal keys with mergeFn on both the map and reduce sides
// (Spark's reduceByKey with a map-side combiner).
func (r *RDD) ReduceByKey(name string, parts int, keyFn func(Row) Key, mergeFn func(a, b Row) Row, costPerRow float64, rowBytes int) *RDD {
	mustPositive(parts, name)
	return r.ctx.register(&RDD{
		ctx: r.ctx, Name: name, Parts: parts, Kind: KindShuffled,
		Parents: []*RDD{r}, KeyFn: keyFn, MergeFn: mergeFn,
		PostShuffleFn: func(_ int, groups []Group) []Row {
			out := make([]Row, len(groups))
			for i, g := range groups {
				row := g.Rows[0]
				for _, other := range g.Rows[1:] {
					row = mergeFn(row, other)
				}
				out[i] = row
			}
			return out
		},
		CostPerRow: costPerRow, RowBytes: rowBytes,
	})
}

// GroupByKey shuffles parent rows by keyFn and emits one KV{key, []Row}
// per key (no combining — full data motion, like Spark's groupByKey).
func (r *RDD) GroupByKey(name string, parts int, keyFn func(Row) Key, costPerRow float64, rowBytes int) *RDD {
	mustPositive(parts, name)
	return r.ctx.register(&RDD{
		ctx: r.ctx, Name: name, Parts: parts, Kind: KindShuffled,
		Parents: []*RDD{r}, KeyFn: keyFn,
		PostShuffleFn: func(_ int, groups []Group) []Row {
			out := make([]Row, len(groups))
			for i, g := range groups {
				out[i] = KV{K: g.Key, V: g.Rows}
			}
			return out
		},
		CostPerRow: costPerRow, RowBytes: rowBytes,
	})
}

// Exchange shuffles rows by keyFn without reducing — a raw repartition used
// by SQL-style plans before a custom PostShuffle step.
func (r *RDD) Exchange(name string, parts int, keyFn func(Row) Key, post func(part int, groups []Group) []Row, costPerRow float64, rowBytes int) *RDD {
	mustPositive(parts, name)
	if post == nil {
		post = func(_ int, groups []Group) []Row {
			var out []Row
			for _, g := range groups {
				out = append(out, g.Rows...)
			}
			return out
		}
	}
	return r.ctx.register(&RDD{
		ctx: r.ctx, Name: name, Parts: parts, Kind: KindShuffled,
		Parents: []*RDD{r}, KeyFn: keyFn, PostShuffleFn: post,
		CostPerRow: costPerRow, RowBytes: rowBytes,
	})
}

// CoGroup shuffles both datasets by their key functions into parts
// partitions and applies joinFn to the grouped sides — the substrate for
// joins, semi-joins and anti-joins.
func (r *RDD) CoGroup(other *RDD, name string, parts int, leftKey, rightKey func(Row) Key, joinFn func(part int, left, right []Group) []Row, costPerRow float64, rowBytes int) *RDD {
	mustPositive(parts, name)
	if r.ctx != other.ctx {
		panic("rdd: co-group across contexts")
	}
	return r.ctx.register(&RDD{
		ctx: r.ctx, Name: name, Parts: parts, Kind: KindCoGrouped,
		Parents:   []*RDD{r, other},
		LeftKeyFn: leftKey, RightKeyFn: rightKey, CoGroupFn: joinFn,
		CostPerRow: costPerRow, RowBytes: rowBytes,
	})
}

// Join performs an inner equi-join emitting joinFn(leftRow, rightRow) for
// every matching pair.
func (r *RDD) Join(other *RDD, name string, parts int, leftKey, rightKey func(Row) Key, joinFn func(l, rr Row) Row, costPerRow float64, rowBytes int) *RDD {
	return r.CoGroup(other, name, parts, leftKey, rightKey,
		func(_ int, left, right []Group) []Row {
			rightByKey := make(map[Key][]Row, len(right))
			for _, g := range right {
				rightByKey[g.Key] = g.Rows
			}
			var out []Row
			for _, lg := range left {
				for _, lr := range lg.Rows {
					for _, rr := range rightByKey[lg.Key] {
						out = append(out, joinFn(lr, rr))
					}
				}
			}
			return out
		}, costPerRow, rowBytes)
}

// Cache marks the dataset for executor-memory caching and returns it.
func (r *RDD) Cache() *RDD {
	r.Cached = true
	return r
}

// String renders the node for debugging.
func (r *RDD) String() string {
	return fmt.Sprintf("RDD[%d %s %s x%d]", r.ID, r.Name, r.Kind, r.Parts)
}

// Lineage returns the transitive closure of r's ancestry including r,
// deterministically ordered by ID.
func (r *RDD) Lineage() []*RDD {
	seen := map[int]*RDD{}
	var walk func(*RDD)
	walk = func(n *RDD) {
		if _, ok := seen[n.ID]; ok {
			return
		}
		seen[n.ID] = n
		for _, p := range n.Parents {
			walk(p)
		}
	}
	walk(r)
	out := make([]*RDD, 0, len(seen))
	for _, n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func mustPositive(parts int, name string) {
	if parts <= 0 {
		panic("rdd: non-positive partition count for " + name)
	}
}

// KeyLess orders two shuffle keys of the same supported type. It is used
// to sort groups deterministically.
func KeyLess(a, b Key) bool {
	switch av := a.(type) {
	case int:
		return av < b.(int)
	case int32:
		return av < b.(int32)
	case int64:
		return av < b.(int64)
	case uint64:
		return av < b.(uint64)
	case string:
		return av < b.(string)
	default:
		panic(fmt.Sprintf("rdd: unsupported key type %T", a))
	}
}

// HashKey hashes a supported key type to a bucket in [0, parts).
func HashKey(k Key, parts int) int {
	var h uint64
	switch kv := k.(type) {
	case int:
		h = mix(uint64(kv))
	case int32:
		h = mix(uint64(kv))
	case int64:
		h = mix(uint64(kv))
	case uint64:
		h = mix(kv)
	case string:
		h = 14695981039346656037
		for i := 0; i < len(kv); i++ {
			h ^= uint64(kv[i])
			h *= 1099511628211
		}
		h = mix(h)
	default:
		panic(fmt.Sprintf("rdd: unsupported key type %T", k))
	}
	return int(h % uint64(parts))
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
