package rdd

// Convenience operators built on the core primitives, mirroring the
// corresponding Spark RDD API surface.

// Distinct returns the dataset's distinct rows, using keyFn as identity
// (shuffles once, like Spark's distinct).
func (r *RDD) Distinct(name string, parts int, keyFn func(Row) Key, costPerRow float64) *RDD {
	return r.Exchange(name, parts, keyFn, func(_ int, groups []Group) []Row {
		out := make([]Row, len(groups))
		for i, g := range groups {
			out[i] = g.Rows[0]
		}
		return out
	}, costPerRow, r.RowBytes)
}

// Sample keeps approximately frac of the rows, deterministically by the
// row's key hash (Bernoulli sampling like Spark's sample without
// replacement).
func (r *RDD) Sample(name string, frac float64, keyFn func(Row) Key, costPerRow float64) *RDD {
	if frac < 0 || frac > 1 {
		panic("rdd: sample fraction outside [0,1]")
	}
	threshold := uint64(frac * float64(1<<32))
	return r.Filter(name, func(row Row) bool {
		h := uint64(HashKey(keyFn(row), 1<<31)) // well-mixed 31-bit hash
		return (h<<1)&0xffffffff < threshold
	}, costPerRow)
}

// CountByKey shuffles rows by keyFn and emits KV{key, int count} per key.
func (r *RDD) CountByKey(name string, parts int, keyFn func(Row) Key, costPerRow float64) *RDD {
	counted := r.Map(name+"-ones", func(row Row) Row {
		return KV{K: keyFn(row), V: 1}
	}, costPerRow/2, 16)
	return counted.ReduceByKey(name, parts,
		func(row Row) Key { return row.(KV).K },
		func(a, b Row) Row {
			return KV{K: a.(KV).K, V: a.(KV).V.(int) + b.(KV).V.(int)}
		}, costPerRow/2, 16)
}

// Values projects the V of KV rows.
func (r *RDD) Values(name string, costPerRow float64, rowBytes int) *RDD {
	return r.Map(name, func(row Row) Row { return row.(KV).V }, costPerRow, rowBytes)
}

// Keys projects the K of KV rows.
func (r *RDD) Keys(name string, costPerRow float64) *RDD {
	return r.Map(name, func(row Row) Row { return row.(KV).K }, costPerRow, 12)
}

// Repartition redistributes rows into parts partitions by keyFn (a raw
// exchange, like Spark's repartition). Deterministic: a recomputed map
// task reproduces exactly the same placement.
func (r *RDD) Repartition(name string, parts int, keyFn func(Row) Key, costPerRow float64) *RDD {
	return r.Exchange(name, parts, keyFn, nil, costPerRow, r.RowBytes)
}
