package rdd

import (
	"testing"
	"testing/quick"
)

func intRows(vals ...int) []Row {
	out := make([]Row, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

func TestSourceAndLineage(t *testing.T) {
	c := NewContext()
	src := c.Source("nums", 4, func(part int) []Row { return intRows(part) }, 1, 8)
	m := src.Map("double", func(r Row) Row { return r.(int) * 2 }, 1, 8)
	f := m.Filter("evens", func(r Row) bool { return r.(int)%4 == 0 }, 1)
	lin := f.Lineage()
	if len(lin) != 3 {
		t.Fatalf("lineage = %d nodes, want 3", len(lin))
	}
	if lin[0] != src || lin[2] != f {
		t.Fatalf("lineage order wrong: %v", lin)
	}
	if f.Parts != 4 {
		t.Fatalf("narrow parts = %d, want inherited 4", f.Parts)
	}
}

func TestMapSemantics(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return intRows(1, 2, 3) }, 1, 8)
	m := src.Map("inc", func(r Row) Row { return r.(int) + 1 }, 1, 8)
	got := m.NarrowFn(0, src.Gen(0))
	want := []int{2, 3, 4}
	for i := range want {
		if got[i].(int) != want[i] {
			t.Fatalf("Map = %v", got)
		}
	}
}

func TestFilterSemantics(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return intRows(1, 2, 3, 4) }, 1, 8)
	f := src.Filter("even", func(r Row) bool { return r.(int)%2 == 0 }, 1)
	got := f.NarrowFn(0, src.Gen(0))
	if len(got) != 2 || got[0].(int) != 2 || got[1].(int) != 4 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestFlatMapSemantics(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return intRows(2, 3) }, 1, 8)
	fm := src.FlatMap("dup", func(r Row) []Row { return intRows(r.(int), r.(int)) }, 1, 8)
	got := fm.NarrowFn(0, src.Gen(0))
	if len(got) != 4 {
		t.Fatalf("FlatMap = %v", got)
	}
}

func TestReduceByKeyPostShuffle(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	r := src.ReduceByKey("sum", 2,
		func(row Row) Key { return row.(KV).K },
		func(a, b Row) Row { return KV{K: a.(KV).K, V: a.(KV).V.(int) + b.(KV).V.(int)} },
		1, 16)
	groups := []Group{
		{Key: "a", Rows: []Row{KV{K: "a", V: 1}, KV{K: "a", V: 2}, KV{K: "a", V: 3}}},
		{Key: "b", Rows: []Row{KV{K: "b", V: 10}}},
	}
	out := r.PostShuffleFn(0, groups)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].(KV).V.(int) != 6 || out[1].(KV).V.(int) != 10 {
		t.Fatalf("reduce values wrong: %v", out)
	}
}

func TestGroupByKeyPostShuffle(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	g := src.GroupByKey("grp", 2, func(row Row) Key { return row.(KV).K }, 1, 16)
	out := g.PostShuffleFn(0, []Group{{Key: "k", Rows: intRows(1, 2, 3)}})
	kv := out[0].(KV)
	if kv.K != "k" || len(kv.V.([]Row)) != 3 {
		t.Fatalf("group = %+v", kv)
	}
}

func TestJoinSemantics(t *testing.T) {
	c := NewContext()
	l := c.Source("l", 1, func(int) []Row { return nil }, 1, 8)
	r := c.Source("r", 1, func(int) []Row { return nil }, 1, 8)
	j := l.Join(r, "join", 2,
		func(row Row) Key { return row.(KV).K },
		func(row Row) Key { return row.(KV).K },
		func(a, b Row) Row { return KV{K: a.(KV).K, V: a.(KV).V.(int) + b.(KV).V.(int)} },
		1, 16)
	left := []Group{{Key: "x", Rows: []Row{KV{K: "x", V: 1}, KV{K: "x", V: 2}}}}
	right := []Group{{Key: "x", Rows: []Row{KV{K: "x", V: 10}}}, {Key: "y", Rows: []Row{KV{K: "y", V: 5}}}}
	out := j.CoGroupFn(0, left, right)
	if len(out) != 2 {
		t.Fatalf("join emitted %d rows: %v", len(out), out)
	}
	if out[0].(KV).V.(int) != 11 || out[1].(KV).V.(int) != 12 {
		t.Fatalf("join values: %v", out)
	}
}

func TestExchangeDefaultPost(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	e := src.Exchange("ex", 2, func(r Row) Key { return r.(KV).K }, nil, 1, 8)
	out := e.PostShuffleFn(0, []Group{
		{Key: "a", Rows: intRows(1)},
		{Key: "b", Rows: intRows(2, 3)},
	})
	if len(out) != 3 {
		t.Fatalf("Exchange flatten = %v", out)
	}
}

func TestCacheFlag(t *testing.T) {
	c := NewContext()
	src := c.Source("s", 1, func(int) []Row { return nil }, 1, 8)
	if src.Cached {
		t.Fatal("fresh RDD cached")
	}
	if got := src.Cache(); got != src || !src.Cached {
		t.Fatal("Cache() broken")
	}
}

func TestIDsAreSequential(t *testing.T) {
	c := NewContext()
	a := c.Source("a", 1, func(int) []Row { return nil }, 1, 8)
	b := a.Map("b", func(r Row) Row { return r }, 1, 8)
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("IDs = %d, %d", a.ID, b.ID)
	}
	if len(c.RDDs()) != 2 {
		t.Fatalf("context holds %d", len(c.RDDs()))
	}
}

func TestKeyLess(t *testing.T) {
	if !KeyLess(1, 2) || KeyLess(2, 1) {
		t.Fatal("int ordering")
	}
	if !KeyLess("a", "b") {
		t.Fatal("string ordering")
	}
	if !KeyLess(int64(5), int64(9)) {
		t.Fatal("int64 ordering")
	}
}

func TestKeyLessPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KeyLess(1.5, 2.5)
}

func TestHashKeyStableAndInRange(t *testing.T) {
	for _, k := range []Key{1, int64(7), "hello", uint64(42), int32(3)} {
		a := HashKey(k, 16)
		b := HashKey(k, 16)
		if a != b {
			t.Fatalf("HashKey unstable for %v", k)
		}
		if a < 0 || a >= 16 {
			t.Fatalf("HashKey out of range: %d", a)
		}
	}
}

func TestHashKeySpreads(t *testing.T) {
	seen := map[int]int{}
	for i := 0; i < 1000; i++ {
		seen[HashKey(i, 8)]++
	}
	for b, n := range seen {
		if n < 50 {
			t.Fatalf("bucket %d underfull: %d", b, n)
		}
	}
	if len(seen) != 8 {
		t.Fatalf("only %d buckets used", len(seen))
	}
}

func TestQuickHashKeyRange(t *testing.T) {
	prop := func(k int64, parts uint8) bool {
		p := int(parts%64) + 1
		h := HashKey(k, p)
		return h >= 0 && h < p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNonPositivePartsPanics(t *testing.T) {
	c := NewContext()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Source("bad", 0, func(int) []Row { return nil }, 1, 8)
}
