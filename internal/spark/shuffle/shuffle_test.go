package shuffle

import (
	"testing"
	"testing/quick"

	"splitserve/internal/spark/rdd"
)

func kvKey(r rdd.Row) rdd.Key { return r.(rdd.KV).K }

func sumMerge(a, b rdd.Row) rdd.Row {
	return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
}

func TestPartitionSpreadsByHash(t *testing.T) {
	rows := make([]rdd.Row, 100)
	for i := range rows {
		rows[i] = rdd.KV{K: i, V: 1}
	}
	buckets := Partition(rows, kvKey, 4, nil)
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	if total != 100 {
		t.Fatalf("partition lost rows: %d", total)
	}
	for i, b := range buckets {
		if len(b) == 0 {
			t.Fatalf("bucket %d empty", i)
		}
		for _, row := range b {
			if rdd.HashKey(kvKey(row), 4) != i {
				t.Fatalf("row in wrong bucket")
			}
		}
	}
}

func TestPartitionCombines(t *testing.T) {
	var rows []rdd.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, rdd.KV{K: i % 3, V: 1})
	}
	buckets := Partition(rows, kvKey, 2, sumMerge)
	count, sum := 0, 0
	for _, b := range buckets {
		for _, row := range b {
			count++
			sum += row.(rdd.KV).V.(int)
		}
	}
	if count != 3 {
		t.Fatalf("combiner left %d rows, want 3", count)
	}
	if sum != 30 {
		t.Fatalf("combiner lost values: sum=%d", sum)
	}
}

func TestRegroupOrdersByKeyAndMap(t *testing.T) {
	m0 := []rdd.Row{rdd.KV{K: "b", V: 1}, rdd.KV{K: "a", V: 2}}
	m1 := []rdd.Row{rdd.KV{K: "a", V: 3}}
	groups := Regroup([][]rdd.Row{m0, m1}, kvKey)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Key != "a" || groups[1].Key != "b" {
		t.Fatalf("groups not key-sorted: %v %v", groups[0].Key, groups[1].Key)
	}
	a := groups[0].Rows
	if a[0].(rdd.KV).V.(int) != 2 || a[1].(rdd.KV).V.(int) != 3 {
		t.Fatalf("rows not in map order: %v", a)
	}
}

func TestBlockIDLayout(t *testing.T) {
	got := BlockID("app-1", "exec-vm-2", 3, 7, 11)
	want := "/shuffle/app-1/exec-vm-2/shuffle_3_7_11"
	if got != want {
		t.Fatalf("BlockID = %q, want %q", got, want)
	}
}

func newStatus(mapPart int, host string, sizes []int64) *MapStatus {
	ids := make([]string, len(sizes))
	for r := range ids {
		ids[r] = BlockID("app", "e"+host, 1, mapPart, r)
	}
	return &MapStatus{MapPart: mapPart, ExecID: "e" + host, HostID: host, BlockIDs: ids, Sizes: sizes}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	tr.Register(1, 2, 3)
	if tr.Complete(1) {
		t.Fatal("empty shuffle complete")
	}
	if got := tr.MissingMaps(1); len(got) != 2 {
		t.Fatalf("missing = %v", got)
	}
	tr.AddMapOutput(1, newStatus(0, "h1", []int64{10, 0, 5}))
	tr.AddMapOutput(1, newStatus(1, "h2", []int64{0, 7, 3}))
	if !tr.Complete(1) {
		t.Fatal("shuffle not complete after all maps")
	}
	ids, total, ok := tr.FetchSpec(1, 2)
	if !ok || total != 8 || len(ids) != 2 {
		t.Fatalf("FetchSpec = %v %d %v", ids, total, ok)
	}
	// Empty buckets are skipped.
	ids, total, ok = tr.FetchSpec(1, 1)
	if !ok || total != 7 || len(ids) != 1 {
		t.Fatalf("FetchSpec(1) = %v %d %v", ids, total, ok)
	}
}

func TestTrackerReRegisterIsNoop(t *testing.T) {
	tr := NewTracker()
	tr.Register(1, 2, 2)
	tr.AddMapOutput(1, newStatus(0, "h1", []int64{1, 1}))
	tr.Register(1, 2, 2)
	if len(tr.MissingMaps(1)) != 1 {
		t.Fatal("re-register wiped outputs")
	}
}

func TestTrackerUnregisterHost(t *testing.T) {
	tr := NewTracker()
	tr.Register(1, 2, 2)
	tr.Register(2, 1, 2)
	tr.AddMapOutput(1, newStatus(0, "h1", []int64{1, 1}))
	tr.AddMapOutput(1, newStatus(1, "h2", []int64{1, 1}))
	tr.AddMapOutput(2, newStatus(0, "h1", []int64{1, 1}))
	affected := tr.UnregisterHost("h1")
	if len(affected) != 2 || affected[0] != 1 || affected[1] != 2 {
		t.Fatalf("affected = %v", affected)
	}
	if got := tr.MissingMaps(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("missing after host loss = %v", got)
	}
	if _, _, ok := tr.FetchSpec(1, 0); ok {
		t.Fatal("FetchSpec should fail with missing maps")
	}
	if tr.UnregisterHost("h3") != nil {
		t.Fatal("unknown host affected shuffles")
	}
}

func TestTrackerAllBlockIDs(t *testing.T) {
	tr := NewTracker()
	tr.Register(1, 1, 3)
	tr.AddMapOutput(1, newStatus(0, "h1", []int64{1, 0, 2}))
	ids := tr.AllBlockIDs(1)
	if len(ids) != 2 {
		t.Fatalf("AllBlockIDs = %v", ids)
	}
}

func TestTrackerPanicsOnUnknownShuffle(t *testing.T) {
	tr := NewTracker()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Complete(9)
}

func TestTrackerDims(t *testing.T) {
	tr := NewTracker()
	tr.Register(4, 5, 6)
	if tr.Maps(4) != 5 || tr.Reduces(4) != 6 {
		t.Fatalf("dims = %d x %d", tr.Maps(4), tr.Reduces(4))
	}
}

// Property: partition + regroup round-trips the multiset of values, with or
// without combining, and the combined total is preserved.
func TestQuickPartitionRegroupConservation(t *testing.T) {
	prop := func(vals []int8, parts uint8) bool {
		p := int(parts%8) + 1
		rows := make([]rdd.Row, len(vals))
		sum := 0
		for i, v := range vals {
			rows[i] = rdd.KV{K: int(v % 5), V: 1}
			sum++
			_ = v
		}
		buckets := Partition(rows, kvKey, p, sumMerge)
		groups := Regroup(buckets, kvKey)
		got := 0
		for _, g := range groups {
			for _, r := range g.Rows {
				got += r.(rdd.KV).V.(int)
			}
		}
		return got == sum
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: regroup output keys are strictly increasing (deterministic
// order, no duplicate groups).
func TestQuickRegroupKeyOrder(t *testing.T) {
	prop := func(vals []int16) bool {
		rows := make([]rdd.Row, len(vals))
		for i, v := range vals {
			rows[i] = rdd.KV{K: int(v), V: i}
		}
		groups := Regroup([][]rdd.Row{rows}, kvKey)
		for i := 1; i < len(groups); i++ {
			if !rdd.KeyLess(groups[i-1].Key, groups[i].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
