// Package shuffle implements the engine's shuffle machinery: hash
// partitioning of map-task output into reduce buckets (with optional
// map-side combining), deterministic regrouping on the reduce side, Spark-
// style block naming rooted at executor IDs (the paper keeps "the Spark
// semantics of directory structure; both VM- and Lambda-based executors use
// their uniquely identifiable IDs as an entry point"), and the map-output
// tracker the DAG scheduler consults to locate shuffle data and to detect
// lost outputs after an executor or host dies.
package shuffle

import (
	"fmt"
	"sort"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/spark/rdd"
)

// Partition splits rows into parts buckets by keyFn. If mergeFn is non-nil
// rows with equal keys are combined within each bucket (map-side combine),
// reducing shuffle volume exactly like Spark's reduceByKey combiner.
func Partition(rows []rdd.Row, keyFn func(rdd.Row) rdd.Key, parts int, mergeFn func(a, b rdd.Row) rdd.Row) [][]rdd.Row {
	buckets := make([][]rdd.Row, parts)
	if mergeFn == nil {
		for _, row := range rows {
			b := rdd.HashKey(keyFn(row), parts)
			buckets[b] = append(buckets[b], row)
		}
		return buckets
	}
	// Combine: keep per-bucket insertion order of first key occurrence so
	// output is deterministic.
	type slot struct{ idx int }
	combined := make([]map[rdd.Key]slot, parts)
	for _, row := range rows {
		k := keyFn(row)
		b := rdd.HashKey(k, parts)
		if combined[b] == nil {
			combined[b] = make(map[rdd.Key]slot)
		}
		if s, ok := combined[b][k]; ok {
			buckets[b][s.idx] = mergeFn(buckets[b][s.idx], row)
		} else {
			combined[b][k] = slot{idx: len(buckets[b])}
			buckets[b] = append(buckets[b], row)
		}
	}
	return buckets
}

// Regroup builds key groups from fetched map buckets (ordered by map
// partition). Groups are sorted by key; rows within a group preserve
// (map partition, row) order — fully deterministic.
func Regroup(bucketsByMap [][]rdd.Row, keyFn func(rdd.Row) rdd.Key) []rdd.Group {
	order := make([]rdd.Key, 0)
	byKey := make(map[rdd.Key][]rdd.Row)
	for _, bucket := range bucketsByMap {
		for _, row := range bucket {
			k := keyFn(row)
			if _, ok := byKey[k]; !ok {
				order = append(order, k)
			}
			byKey[k] = append(byKey[k], row)
		}
	}
	sort.Slice(order, func(i, j int) bool { return rdd.KeyLess(order[i], order[j]) })
	groups := make([]rdd.Group, len(order))
	for i, k := range order {
		groups[i] = rdd.Group{Key: k, Rows: byKey[k]}
	}
	return groups
}

// BlockID names one shuffle block the way the paper's HDFS layout does:
// the writing executor's unique ID is the directory entry point.
func BlockID(appID, execID string, shuffleID, mapPart, reducePart int) string {
	return fmt.Sprintf("/shuffle/%s/%s/shuffle_%d_%d_%d", appID, execID, shuffleID, mapPart, reducePart)
}

// MapStatus records where one map partition's output lives.
type MapStatus struct {
	MapPart int
	ExecID  string
	HostID  string
	// BlockIDs[r] and Sizes[r] describe the bucket for reduce partition r;
	// empty buckets have Sizes[r] == 0 and are never fetched.
	BlockIDs []string
	Sizes    []int64
}

// shuffleState tracks one registered shuffle.
type shuffleState struct {
	maps    int
	reduces int
	status  []*MapStatus // index by map partition; nil = missing
}

// Tracker is the driver-side map-output tracker.
type Tracker struct {
	shuffles map[int]*shuffleState

	bus      *eventlog.Bus
	busNow   func() time.Time
	eventApp string
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{shuffles: make(map[int]*shuffleState)}
}

// Register declares a shuffle with its map and reduce partition counts.
// Re-registering is a no-op (stage resubmission reuses the registration).
func (t *Tracker) Register(shuffleID, maps, reduces int) {
	if _, ok := t.shuffles[shuffleID]; ok {
		return
	}
	t.shuffles[shuffleID] = &shuffleState{
		maps:    maps,
		reduces: reduces,
		status:  make([]*MapStatus, maps),
	}
}

// Registered reports whether the shuffle is known.
func (t *Tracker) Registered(shuffleID int) bool {
	_, ok := t.shuffles[shuffleID]
	return ok
}

// SetEventLog attaches an event-log bus: every registered map output emits
// a shuffle_write event and every successful fetch spec a shuffle_read,
// stamped with now() on the virtual clock and tagged app.
func (t *Tracker) SetEventLog(bus *eventlog.Bus, now func() time.Time, app string) {
	t.bus = bus
	t.busNow = now
	t.eventApp = app
}

// AddMapOutput records a completed map partition.
func (t *Tracker) AddMapOutput(shuffleID int, st *MapStatus) {
	s := t.mustGet(shuffleID)
	if st.MapPart < 0 || st.MapPart >= s.maps {
		panic(fmt.Sprintf("shuffle: map part %d out of range", st.MapPart))
	}
	s.status[st.MapPart] = st
	if t.bus != nil {
		var total int64
		for _, sz := range st.Sizes {
			total += sz
		}
		ev := eventlog.Ev(eventlog.ShuffleWrite)
		ev.App = t.eventApp
		ev.Exec = st.ExecID
		ev.Task = st.MapPart
		ev.Bytes = total
		ev.Note = fmt.Sprintf("shuffle_%d", shuffleID)
		t.bus.Emit(t.busNow(), ev)
	}
}

// Complete reports whether every map partition has registered output.
func (t *Tracker) Complete(shuffleID int) bool {
	s := t.mustGet(shuffleID)
	for _, st := range s.status {
		if st == nil {
			return false
		}
	}
	return true
}

// MissingMaps returns the map partitions without registered output.
func (t *Tracker) MissingMaps(shuffleID int) []int {
	s := t.mustGet(shuffleID)
	var out []int
	for i, st := range s.status {
		if st == nil {
			out = append(out, i)
		}
	}
	return out
}

// FetchSpec returns the non-empty block IDs and total bytes a reduce
// partition must fetch, ordered by map partition. ok is false if any map
// output is missing (fetch failure — triggers parent-stage resubmission).
func (t *Tracker) FetchSpec(shuffleID, reducePart int) (ids []string, total int64, ok bool) {
	s := t.mustGet(shuffleID)
	for _, st := range s.status {
		if st == nil {
			return nil, 0, false
		}
		if st.Sizes[reducePart] > 0 {
			ids = append(ids, st.BlockIDs[reducePart])
			total += st.Sizes[reducePart]
		}
	}
	if t.bus != nil {
		ev := eventlog.Ev(eventlog.ShuffleRead)
		ev.App = t.eventApp
		ev.Task = reducePart
		ev.Bytes = total
		ev.Note = fmt.Sprintf("shuffle_%d", shuffleID)
		t.bus.Emit(t.busNow(), ev)
	}
	return ids, total, true
}

// UnregisterHost invalidates every map output living on hostID (the host
// died and, for host-local storage, its blocks died with it). It returns
// the affected shuffle IDs.
func (t *Tracker) UnregisterHost(hostID string) []int {
	var affected []int
	for id, s := range t.shuffles {
		touched := false
		for i, st := range s.status {
			if st != nil && st.HostID == hostID {
				s.status[i] = nil
				touched = true
			}
		}
		if touched {
			affected = append(affected, id)
		}
	}
	sort.Ints(affected)
	return affected
}

// AllBlockIDs returns every registered block ID of a shuffle (for cleanup).
func (t *Tracker) AllBlockIDs(shuffleID int) []string {
	s := t.mustGet(shuffleID)
	var out []string
	for _, st := range s.status {
		if st == nil {
			continue
		}
		for r, id := range st.BlockIDs {
			if st.Sizes[r] > 0 {
				out = append(out, id)
			}
		}
	}
	return out
}

// Reduces returns the reduce partition count of a shuffle.
func (t *Tracker) Reduces(shuffleID int) int { return t.mustGet(shuffleID).reduces }

// Maps returns the map partition count of a shuffle.
func (t *Tracker) Maps(shuffleID int) int { return t.mustGet(shuffleID).maps }

func (t *Tracker) mustGet(shuffleID int) *shuffleState {
	s, ok := t.shuffles[shuffleID]
	if !ok {
		panic(fmt.Sprintf("shuffle: unknown shuffle %d", shuffleID))
	}
	return s
}
