package engine

import (
	"time"

	"splitserve/internal/metrics"
)

// scheduler is the combined DAG + task scheduler: it submits stages whose
// parents are complete, keeps a pending task list, assigns tasks to free
// executors with cache locality, and handles task failure, fetch failure
// (parent-stage resubmission — Spark's lineage rollback), and executor
// loss.
type scheduler struct {
	c       *Cluster
	pending []*Task
	seq     int64
	// pendingAt records when each task became pending (locality wait).
	pendingTimes map[*Task]time.Time
	// driverFree serialises task dispatch through the driver.
	driverFree time.Time
	// stageStats and taskStarts feed speculative execution.
	stageStats map[*Stage]*stageStats
	taskStarts map[*Task]time.Time
}

func newScheduler(c *Cluster) *scheduler {
	return &scheduler{
		c:            c,
		pendingTimes: make(map[*Task]time.Time),
		stageStats:   make(map[*Stage]*stageStats),
		taskStarts:   make(map[*Task]time.Time),
	}
}

// dispatchDelay reserves the driver for one task launch and returns how
// long the dispatch waits behind earlier launches.
func (s *scheduler) dispatchDelay() time.Duration {
	cost := s.c.cfg.TaskDispatchCost
	if cost <= 0 {
		return 0
	}
	now := s.c.cfg.Clock.Now()
	if s.driverFree.Before(now) {
		s.driverFree = now
	}
	s.driverFree = s.driverFree.Add(cost)
	return s.driverFree.Sub(now)
}

// pendingCount returns the number of queued tasks.
func (s *scheduler) pendingCount() int { return len(s.pending) }

// runningCount returns the number of in-flight tasks.
func (s *scheduler) runningCount() int {
	n := 0
	for _, id := range s.c.order {
		if e := s.c.execs[id]; e.State == ExecBusy || (e.State == ExecDraining && e.current != nil) {
			n++
		}
	}
	return n
}

// backlog reports whether work is waiting for executors.
func (s *scheduler) backlog() bool { return len(s.pending) > 0 }

// submitJob seeds the stage graph and starts scheduling.
func (s *scheduler) submitJob(job *Job) {
	s.maybeSubmitStages(job)
	s.trySchedule()
}

// maybeSubmitStages submits every stage whose parents are complete. Map
// stages whose shuffle output is already registered (from an earlier job,
// or a surviving resubmission) are skipped, as Spark skips stages whose
// outputs are available.
func (s *scheduler) maybeSubmitStages(job *Job) {
	for _, st := range job.Stages {
		if st.submitted || st.done {
			continue
		}
		if st.Kind == StageShuffleMap && s.c.tracker.Complete(st.ShuffleID) {
			st.done = true
			continue
		}
		ready := true
		for _, p := range st.Parents {
			if !p.done {
				ready = false
				break
			}
		}
		if ready {
			s.submitStage(job, st)
		}
	}
}

// submitStage creates pending tasks for the stage's missing partitions.
// Tasks become runnable after the configured stage-launch overhead.
func (s *scheduler) submitStage(job *Job, st *Stage) {
	st.submitted = true
	var parts []int
	if st.Kind == StageShuffleMap {
		parts = s.c.tracker.MissingMaps(st.ShuffleID)
	} else {
		for p := 0; p < st.NumTasks(); p++ {
			if job.results[p] == nil {
				parts = append(parts, p)
			}
		}
	}
	st.pendingParts = len(parts)
	s.stageStats[st] = &stageStats{total: len(parts)}
	s.c.cfg.Log.Add(metrics.Event{
		At: s.c.cfg.Clock.Now(), Kind: metrics.StageStart,
		Stage: st.ID, Task: -1, Note: st.Target.Name,
	})
	enqueue := func() {
		for _, p := range parts {
			s.enqueue(&Task{Job: job, Stage: st, Part: p, State: TaskPending})
		}
		s.trySchedule()
	}
	if d := s.c.cfg.StageLaunchOverhead; d > 0 {
		s.c.cfg.Clock.After(d, enqueue)
	} else {
		enqueue()
	}
}

// enqueue adds a task to the pending list, computing its cache preference.
func (s *scheduler) enqueue(t *Task) {
	s.seq++
	t.PendingSince = s.seq
	t.State = TaskPending
	t.Preferred = s.preferredExecutor(t)
	s.pending = append(s.pending, t)
	s.pendingTimes[t] = s.c.cfg.Clock.Now()
	s.c.insts.pendingTasks.Set(float64(len(s.pending)))
}

// preferredExecutor returns the live executor caching a partition on this
// task's chain, preferring nodes closest to the stage target. It consults
// the cluster's cache locator, so it is cheap enough to re-evaluate at
// every scheduling decision (caches fill and evict while tasks queue).
func (s *scheduler) preferredExecutor(t *Task) string {
	chain := stageChain(t.Stage.Target)
	for i := len(chain) - 1; i >= 0; i-- {
		if !chain[i].Cached {
			continue
		}
		key := cachedPart{rddID: chain[i].ID, part: t.Part}
		if id := s.c.cacheOwner(key); id != "" {
			if e := s.c.execs[id]; e != nil && e.State != ExecDead {
				return id
			}
		}
	}
	return ""
}

// runnable reports whether a task's parent stages are complete.
func (s *scheduler) runnable(t *Task) bool {
	for _, p := range t.Stage.Parents {
		if !p.done {
			return false
		}
	}
	return true
}

// trySchedule assigns pending tasks to free executors until no assignment
// is possible. Placement honours, in order: backend veto (the segue hook),
// cache locality, then FIFO.
func (s *scheduler) trySchedule() {
	for {
		assigned := false
		for _, id := range s.c.order {
			e := s.c.execs[id]
			if e.State != ExecFree {
				continue
			}
			if !s.c.cfg.Backend.AllowAssign(e) {
				continue
			}
			if t := s.pickTask(e); t != nil {
				if queuedAt, ok := s.pendingTimes[t]; ok {
					wait := s.c.cfg.Clock.Now().Sub(queuedAt)
					s.c.insts.queueWait.ObserveDuration(wait)
					s.c.insts.stageLatency(t.Stage.ID).ObserveDuration(wait)
				}
				s.dequeue(t)
				assigned = true
				s.runTask(t, e)
			}
		}
		if !assigned {
			return
		}
	}
}

// pickTask selects the best pending task for executor e.
func (s *scheduler) pickTask(e *Executor) *Task {
	now := s.c.cfg.Clock.Now()
	var fallback *Task
	var needWake *Task
	for _, t := range s.pending {
		if !s.runnable(t) {
			continue
		}
		t.Preferred = s.preferredExecutor(t) // caches move while tasks queue
		if t.Preferred == e.ID {
			return t // locality match
		}
		if fallback != nil {
			continue
		}
		if t.Preferred == "" {
			fallback = t
			continue
		}
		pref := s.c.execs[t.Preferred]
		if pref == nil || pref.State == ExecDead || pref.State == ExecDraining {
			fallback = t
			continue
		}
		// The preferred executor is alive but occupied: wait up to
		// LocalityWait before running the task elsewhere.
		if now.Sub(s.pendingTimes[t]) >= s.c.cfg.LocalityWait {
			fallback = t
		} else if needWake == nil {
			needWake = t
		}
	}
	if fallback == nil && needWake != nil {
		// Re-poke the scheduler when the locality wait expires so the task
		// does not stall if no further events arrive.
		deadline := s.pendingTimes[needWake].Add(s.c.cfg.LocalityWait)
		s.c.cfg.Clock.At(deadline, func() { s.trySchedule() })
	}
	return fallback
}

func (s *scheduler) dequeue(t *Task) {
	for i, x := range s.pending {
		if x == t {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	delete(s.pendingTimes, t)
	s.c.insts.pendingTasks.Set(float64(len(s.pending)))
}

// onExecutorUp reacts to a new executor.
func (s *scheduler) onExecutorUp(*Executor) { s.trySchedule() }

// onExecutorDown fails the executor's running task and requeues it.
func (s *scheduler) onExecutorDown(e *Executor) {
	if t := e.current; t != nil {
		e.current = nil
		t.cancelled = true
		t.State = TaskFailedState
		s.c.cfg.Log.Add(metrics.Event{
			At: s.c.cfg.Clock.Now(), Kind: metrics.TaskFailed,
			Exec: e.ID, ExecKind: e.Kind.String(), Stage: t.Stage.ID, Task: t.Part,
			Note: "executor lost",
		})
		s.c.insts.tasksFailed[kindIdx(e.Kind)].Inc()
		s.retry(t)
	}
	s.trySchedule()
}

// retry requeues a failed task attempt or aborts the job.
func (s *scheduler) retry(t *Task) {
	if t.Attempt+1 >= s.c.cfg.MaxTaskAttempts {
		s.abort(t.Job, &TaskError{Task: t})
		return
	}
	s.c.insts.taskRetries.Inc()
	s.enqueue(&Task{
		Job: t.Job, Stage: t.Stage, Part: t.Part, Attempt: t.Attempt + 1,
	})
	s.trySchedule()
}

// TaskError wraps a task abort.
type TaskError struct{ Task *Task }

func (e *TaskError) Error() string {
	return "engine: " + e.Task.String() + " exceeded retry limit"
}

// Unwrap lets errors.Is match ErrTaskRetriesExhausted.
func (e *TaskError) Unwrap() error { return ErrTaskRetriesExhausted }

func (s *scheduler) abort(job *Job, err error) {
	if job.done {
		return
	}
	job.done = true
	job.err = err
}

// onTaskFinished handles successful completion of either task kind.
func (s *scheduler) onTaskFinished(t *Task, e *Executor) {
	winner := s.settleTwin(t)
	t.State = TaskFinished
	e.TasksRun++
	e.current = nil
	s.c.insts.tasksFinished[kindIdx(e.Kind)].Inc()
	if started, ok := s.taskStarts[t]; ok {
		elapsed := s.c.cfg.Clock.Now().Sub(started)
		e.BusyTime += elapsed
		if st := s.stageStats[t.Stage]; st != nil && winner {
			st.durations = append(st.durations, elapsed)
		}
		delete(s.taskStarts, t)
	}
	if !winner {
		// The twin already completed this partition; just free the executor.
		s.c.cfg.Log.Add(metrics.Event{
			At: s.c.cfg.Clock.Now(), Kind: metrics.TaskEnd,
			Exec: e.ID, ExecKind: e.Kind.String(), Stage: t.Stage.ID, Task: t.Part,
			Note: "lost speculation race",
		})
		switch e.State {
		case ExecBusy:
			e.State = ExecFree
			e.IdleSince = s.c.cfg.Clock.Now()
		case ExecDraining:
			s.c.cfg.Backend.ExecutorDrained(e)
		}
		s.trySchedule()
		return
	}
	s.c.cfg.Log.Add(metrics.Event{
		At: s.c.cfg.Clock.Now(), Kind: metrics.TaskEnd,
		Exec: e.ID, ExecKind: e.Kind.String(), Stage: t.Stage.ID, Task: t.Part,
	})
	switch e.State {
	case ExecBusy:
		e.State = ExecFree
		e.IdleSince = s.c.cfg.Clock.Now()
	case ExecDraining:
		s.c.cfg.Backend.ExecutorDrained(e)
	}

	st := t.Stage
	st.pendingParts--
	s.maybeSpeculate(st, t.Job)
	if st.Kind == StageShuffleMap {
		if s.c.tracker.Complete(st.ShuffleID) {
			st.done = true
			s.c.cfg.Log.Add(metrics.Event{
				At: s.c.cfg.Clock.Now(), Kind: metrics.StageEnd,
				Stage: st.ID, Task: -1, Note: st.Target.Name,
			})
			s.maybeSubmitStages(t.Job)
		}
	} else {
		job := t.Job
		allDone := true
		for _, r := range job.results {
			if r == nil {
				allDone = false
				break
			}
		}
		if allDone {
			st.done = true
			s.c.cfg.Log.Add(metrics.Event{
				At: s.c.cfg.Clock.Now(), Kind: metrics.StageEnd,
				Stage: st.ID, Task: -1, Note: st.Target.Name,
			})
			job.done = true
		}
	}
	s.alloc().onBacklogChange()
	s.trySchedule()
}

func (s *scheduler) alloc() *allocManager { return s.c.alloc }

// onFetchFailed reacts to missing shuffle inputs: the producing map stage
// is resubmitted for its missing partitions and the reduce task is
// requeued, blocked until the parent completes again — the "execution
// roll-back" path the paper's segueing facility exists to avoid.
func (s *scheduler) onFetchFailed(t *Task, e *Executor, shuffleID int) {
	s.c.cfg.Log.Add(metrics.Event{
		At: s.c.cfg.Clock.Now(), Kind: metrics.TaskFailed,
		Exec: e.ID, ExecKind: e.Kind.String(), Stage: t.Stage.ID, Task: t.Part,
		Note: "fetch failed",
	})
	s.c.insts.tasksFailed[kindIdx(e.Kind)].Inc()
	s.c.insts.fetchFailures.Inc()
	if e.State == ExecBusy {
		e.State = ExecFree
		e.IdleSince = s.c.cfg.Clock.Now()
	} else if e.State == ExecDraining {
		s.c.cfg.Backend.ExecutorDrained(e)
	}
	e.current = nil

	parent := t.Job.mapStageByShuffle[shuffleID]
	if parent != nil && parent.done {
		parent.done = false
		parent.submitted = false
		s.c.cfg.Log.Add(metrics.Event{
			At: s.c.cfg.Clock.Now(), Kind: metrics.StageResubmitted,
			Stage: parent.ID, Task: -1, Note: parent.Target.Name,
		})
	}
	// Requeue without charging an attempt: fetch failures are the
	// producer's fault, as in Spark.
	s.enqueue(&Task{Job: t.Job, Stage: t.Stage, Part: t.Part, Attempt: t.Attempt})
	s.maybeSubmitStages(t.Job)
	s.trySchedule()
}
