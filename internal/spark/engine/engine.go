package engine

import (
	"errors"
	"fmt"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/eventlog"
	"splitserve/internal/metrics"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/spark/shuffle"
	"splitserve/internal/storage"
	"splitserve/internal/telemetry"
)

// Engine errors.
var (
	// ErrStalled reports that the simulation ran out of events (or time)
	// before the job finished — usually no executors could be provided.
	ErrStalled = errors.New("engine: job stalled")
	// ErrTaskRetriesExhausted aborts a job whose task kept failing.
	ErrTaskRetriesExhausted = errors.New("engine: task retries exhausted")
)

// AllocMode selects static or dynamic executor allocation.
type AllocMode int

// Allocation modes.
const (
	AllocStatic AllocMode = iota + 1
	AllocDynamic
)

// AllocConfig parameterises the ExecutorAllocationManager.
type AllocConfig struct {
	Mode AllocMode
	// Min/Max executor counts (Dynamic); Static uses Max from the start.
	Min, Max int
	// RampInterval is how often the backlog is evaluated; each evaluation
	// with sustained backlog doubles the number of executors requested
	// (Spark's exponential ramp-up).
	RampInterval time.Duration
	// IdleTimeout releases executors idle this long (Dynamic only).
	IdleTimeout time.Duration
}

// DefaultAllocConfig mirrors Spark's dynamic-allocation defaults.
func DefaultAllocConfig(mode AllocMode, min, max int) AllocConfig {
	return AllocConfig{
		Mode:         mode,
		Min:          min,
		Max:          max,
		RampInterval: time.Second,
		IdleTimeout:  60 * time.Second,
	}
}

// Config assembles a Cluster.
type Config struct {
	AppID    string
	Clock    *simclock.Clock
	Net      *netsim.Network
	Provider *cloud.Provider
	// Store is where shuffle blocks go (local, HDFS or S3).
	Store   storage.Store
	Backend Backend
	Perf    PerfModel
	Log     *metrics.Log
	// Telem is the telemetry hub the engine records into. Defaults to the
	// Log's hub (so the event timeline and the metrics share one trace);
	// nil with no Log means a fresh hub is created.
	Telem *telemetry.Hub
	// Events, when set, receives the structured event stream: the metrics
	// Log bridges its timeline into it (tagged AppID) and the shuffle
	// tracker emits read/write events. Nil disables event logging.
	Events *eventlog.Bus
	Alloc  AllocConfig
	// LocalityWait is how long a task holds out for the executor caching
	// its input before running anywhere (Spark's spark.locality.wait).
	LocalityWait time.Duration
	// MaxTaskAttempts aborts the job when one task fails this many times.
	MaxTaskAttempts int
	// SLO is the job's expected/required completion time, forwarded to the
	// backend (the segueing facility compares it to the VM startup delay).
	SLO time.Duration
	// StageLaunchOverhead models the driver-side cost of launching a stage
	// (DAG bookkeeping, task-set construction, broadcast of task binaries):
	// a stage's tasks become runnable this long after submission.
	StageLaunchOverhead time.Duration
	// TaskDispatchCost serialises task launches through the driver (task
	// serialization + scheduling RPC): the driver dispatches one task per
	// TaskDispatchCost, which bounds useful parallelism exactly as a real
	// Spark driver does (the downslope of the paper's Figure 4 U-curve).
	TaskDispatchCost time.Duration
	// Speculation configures speculative execution (spark.speculation).
	Speculation SpeculationConfig
	// MaxSimTime bounds one RunJob call in virtual time.
	MaxSimTime time.Duration
	// Yield, when set, makes RunJob cooperative: instead of stepping the
	// shared clock itself (which nests event loops when several engines
	// run concurrently), RunJob parks by calling Yield with a readiness
	// probe that turns true once the job completes, and an external
	// driver pumps the clock and wakes it. Yield returning false aborts
	// the job as stalled. Used by internal/cluster to interleave many
	// engines on one clock.
	Yield func(ready func() bool) bool
}

// Cluster is the driver/session: it owns executors, the stage and task
// schedulers, the shuffle tracker, and runs jobs to completion on the
// simulation clock.
type Cluster struct {
	cfg     Config
	tracker *shuffle.Tracker
	execs   map[string]*Executor
	order   []string
	sched   *scheduler
	alloc   *allocManager
	insts   *engineInstruments

	jobSeq     int
	stageSeq   int
	shuffleSeq int
	shuffleIDs map[shuffleKey]int
	// cacheWhere locates cached partitions across executors (the driver's
	// BlockManagerMaster), kept current on put, eviction and executor loss.
	cacheWhere map[cachedPart]string
	job        *Job
	started    bool
}

// shuffleKey identifies one side of a wide dataset by object identity, so
// shuffle IDs are stable for a given plan graph but never collide across
// independently-built plans.
type shuffleKey struct {
	wide *rdd.RDD
	side int
}

// shuffleIDFor assigns (or returns) the cluster-wide shuffle ID for a wide
// dataset side.
func (c *Cluster) shuffleIDFor(wide *rdd.RDD, side int) int {
	k := shuffleKey{wide: wide, side: side}
	if id, ok := c.shuffleIDs[k]; ok {
		return id
	}
	id := c.shuffleSeq
	c.shuffleSeq++
	c.shuffleIDs[k] = id
	return id
}

// New validates cfg and assembles a Cluster.
func New(cfg Config) (*Cluster, error) {
	switch {
	case cfg.Clock == nil, cfg.Net == nil, cfg.Provider == nil:
		return nil, errors.New("engine: clock, net and provider are required")
	case cfg.Store == nil:
		return nil, errors.New("engine: shuffle store is required")
	case cfg.Backend == nil:
		return nil, errors.New("engine: backend is required")
	}
	if cfg.AppID == "" {
		cfg.AppID = "app"
	}
	if cfg.Perf == (PerfModel{}) {
		cfg.Perf = DefaultPerfModel()
	}
	if cfg.Log == nil {
		if cfg.Telem != nil {
			cfg.Log = metrics.NewWithTelemetry(cfg.Clock.Now(), cfg.Telem)
		} else {
			cfg.Log = metrics.New(cfg.Clock.Now())
		}
	}
	if cfg.Telem == nil {
		cfg.Telem = cfg.Log.Telemetry()
	}
	if cfg.LocalityWait == 0 {
		cfg.LocalityWait = 3 * time.Second
	}
	if cfg.MaxTaskAttempts == 0 {
		cfg.MaxTaskAttempts = 4
	}
	if cfg.MaxSimTime == 0 {
		cfg.MaxSimTime = 24 * time.Hour
	}
	if cfg.Alloc.Mode == 0 {
		cfg.Alloc = DefaultAllocConfig(AllocStatic, 1, 1)
	}
	c := &Cluster{
		cfg:        cfg,
		tracker:    shuffle.NewTracker(),
		execs:      make(map[string]*Executor),
		shuffleIDs: make(map[shuffleKey]int),
		cacheWhere: make(map[cachedPart]string),
	}
	if cfg.Events != nil {
		cfg.Log.SetEventLog(cfg.Events, cfg.AppID)
		c.tracker.SetEventLog(cfg.Events, cfg.Clock.Now, cfg.AppID)
	}
	c.insts = newEngineInstruments(cfg.Telem)
	c.sched = newScheduler(c)
	c.alloc = newAllocManager(c)
	return c, nil
}

// Accessors used by backends and tests.

// Clock returns the simulation clock.
func (c *Cluster) Clock() *simclock.Clock { return c.cfg.Clock }

// Net returns the flow simulator.
func (c *Cluster) Net() *netsim.Network { return c.cfg.Net }

// Provider returns the cloud provider.
func (c *Cluster) Provider() *cloud.Provider { return c.cfg.Provider }

// Store returns the shuffle store.
func (c *Cluster) Store() storage.Store { return c.cfg.Store }

// Log returns the metrics log.
func (c *Cluster) Log() *metrics.Log { return c.cfg.Log }

// Telemetry returns the cluster's telemetry hub.
func (c *Cluster) Telemetry() *telemetry.Hub { return c.cfg.Telem }

// AppID returns the application ID.
func (c *Cluster) AppID() string { return c.cfg.AppID }

// SLO returns the configured job SLO.
func (c *Cluster) SLO() time.Duration { return c.cfg.SLO }

// Tracker exposes the map-output tracker (tests, backends).
func (c *Cluster) Tracker() *shuffle.Tracker { return c.tracker }

// Start wires the backend and allocation manager. It must be called once
// before RunJob.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.cfg.Backend.Start(c)
	c.alloc.start()
}

// Executors returns live executors in registration order.
func (c *Cluster) Executors() []*Executor {
	out := make([]*Executor, 0, len(c.order))
	for _, id := range c.order {
		if e := c.execs[id]; e.State != ExecDead {
			out = append(out, e)
		}
	}
	return out
}

// AllExecutors returns every executor ever registered, including dead ones.
func (c *Cluster) AllExecutors() []*Executor {
	out := make([]*Executor, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.execs[id])
	}
	return out
}

// Executor returns one executor by ID (nil if unknown).
func (c *Cluster) Executor(id string) *Executor { return c.execs[id] }

// RegisterExecutor is called by the Backend when a new executor comes up.
func (c *Cluster) RegisterExecutor(spec ExecutorSpec) *Executor {
	if _, dup := c.execs[spec.ID]; dup {
		panic("engine: duplicate executor " + spec.ID)
	}
	if spec.CPUShare <= 0 {
		spec.CPUShare = 1
	}
	usable := float64(spec.MemoryMB) * (1 << 20) * (1 - c.cfg.Perf.MemOverheadFraction)
	e := &Executor{
		ExecutorSpec: spec,
		State:        ExecFree,
		RegisteredAt: c.cfg.Clock.Now(),
		IdleSince:    c.cfg.Clock.Now(),
		cache:        newBlockCache(int64(usable * c.cfg.Perf.CacheFraction)),
	}
	c.execs[spec.ID] = e
	c.order = append(c.order, spec.ID)
	if local, ok := c.cfg.Store.(*storage.Local); ok {
		local.RegisterHost(spec.HostID, spec.Serve)
	}
	c.cfg.Log.Add(metrics.Event{
		At: c.cfg.Clock.Now(), Kind: metrics.ExecutorRegistered,
		Exec: spec.ID, ExecKind: spec.Kind.String(), Stage: -1, Task: -1,
	})
	c.insts.execLive[kindIdx(spec.Kind)].Inc()
	c.sched.onExecutorUp(e)
	return e
}

// RemoveExecutor kills an executor. hostLost reports that the hosting
// substrate died with it (a Lambda ending, a VM terminating): host-local
// shuffle blocks are dropped and, if the shuffle store is not durable,
// the tracker forgets the host's map outputs (Spark's
// removeOutputsOnExecutor) so dependent stages will be recomputed.
func (c *Cluster) RemoveExecutor(id string, hostLost bool, reason string) {
	e, ok := c.execs[id]
	if !ok || e.State == ExecDead {
		return
	}
	e.State = ExecDead
	e.RemovedAt = c.cfg.Clock.Now()
	c.cfg.Log.Add(metrics.Event{
		At: c.cfg.Clock.Now(), Kind: metrics.ExecutorRemoved,
		Exec: id, ExecKind: e.Kind.String(), Stage: -1, Task: -1, Note: reason,
	})
	c.insts.execLive[kindIdx(e.Kind)].Dec()
	if !e.DrainingAt.IsZero() {
		c.insts.execDrain[kindIdx(e.Kind)].ObserveDuration(e.RemovedAt.Sub(e.DrainingAt))
	}
	if hostLost {
		c.cfg.Store.DropHost(e.HostID)
		if !c.cfg.Store.Durable() {
			c.tracker.UnregisterHost(e.HostID)
		}
	}
	for key, owner := range c.cacheWhere {
		if owner == id {
			delete(c.cacheWhere, key)
		}
	}
	c.sched.onExecutorDown(e)
}

// DrainExecutor stops directing new tasks to an executor (the segue
// mechanism): it finishes its current task, after which the backend's
// ExecutorDrained hook fires.
func (c *Cluster) DrainExecutor(id string) {
	e, ok := c.execs[id]
	if !ok || e.State == ExecDead {
		return
	}
	prev := e.State
	if prev == ExecDraining {
		return
	}
	c.cfg.Log.Add(metrics.Event{
		At: c.cfg.Clock.Now(), Kind: metrics.ExecutorDraining,
		Exec: id, ExecKind: e.Kind.String(), Stage: -1, Task: -1,
	})
	e.DrainingAt = c.cfg.Clock.Now()
	if prev == ExecBusy {
		e.State = ExecDraining
		return // ExecutorDrained fires when the running task completes
	}
	e.State = ExecDraining
	c.cfg.Backend.ExecutorDrained(e)
}

// RunJob executes one action: it builds the stage graph for target,
// schedules tasks across the backend's executors, and drives the clock
// until the job completes. Sequential RunJob calls on one Cluster share
// shuffle outputs and executor caches (iterative workloads).
func (c *Cluster) RunJob(target *rdd.RDD, name string) (*Job, error) {
	if !c.started {
		c.Start()
	}
	if c.job != nil && !c.job.done {
		return nil, errors.New("engine: a job is already running")
	}
	c.jobSeq++
	builder := newStageBuilder(
		func() int { s := c.stageSeq; c.stageSeq++; return s },
		c.shuffleIDFor,
	)
	result := builder.build(target)
	job := &Job{
		ID:                c.jobSeq,
		Name:              name,
		ResultStage:       result,
		Stages:            builder.all,
		mapStageByShuffle: builder.byShuffle,
		results:           make([][]rdd.Row, target.Parts),
	}
	c.job = job
	c.cfg.Log.Add(metrics.Event{
		At: c.cfg.Clock.Now(), Kind: metrics.JobStart, Stage: -1, Task: -1, Note: name,
	})
	for sid, st := range job.mapStageByShuffle {
		c.tracker.Register(sid, st.Target.Parts, st.Wide.Parts)
	}
	c.cfg.Backend.JobSubmitted(name, c.cfg.SLO)
	c.alloc.onJobStart()
	c.sched.submitJob(job)

	if c.cfg.Yield != nil {
		c.cfg.Yield(func() bool { return job.done })
	} else {
		deadline := c.cfg.Clock.Now().Add(c.cfg.MaxSimTime)
		for !job.done && c.cfg.Clock.Now().Before(deadline) {
			if !c.cfg.Clock.Step() {
				break
			}
		}
	}
	if !job.done {
		job.done = true
		job.err = fmt.Errorf("%w: %q after %v (pending tasks=%d, live executors=%d)",
			ErrStalled, name, c.cfg.MaxSimTime, c.sched.pendingCount(), len(c.Executors()))
	}
	c.cfg.Log.Add(metrics.Event{
		At: c.cfg.Clock.Now(), Kind: metrics.JobEnd, Stage: -1, Task: -1, Note: name,
	})
	c.cfg.Backend.JobFinished()
	c.alloc.onJobEnd()
	return job, job.err
}

// cachePut stores a computed partition in an executor's cache and keeps
// the cluster-wide cache locator current.
func (c *Cluster) cachePut(e *Executor, key cachedPart, rows []any, bytes int64) {
	stored, evicted := e.cache.put(key, rows, bytes)
	for _, ev := range evicted {
		if c.cacheWhere[ev] == e.ID {
			delete(c.cacheWhere, ev)
		}
	}
	if stored {
		c.cacheWhere[key] = e.ID
	}
}

// cacheOwner returns the executor caching a partition ("" if none).
func (c *Cluster) cacheOwner(key cachedPart) string { return c.cacheWhere[key] }

// WorkStats aggregates per-substrate execution accounting.
type WorkStats struct {
	Executors int
	Tasks     int
	Busy      time.Duration
}

// WorkDistribution reports how the job's work split across VM- and
// Lambda-based executors — the paper's fine-grained work-distribution
// analysis enabled by unique executor IDs.
func (c *Cluster) WorkDistribution() map[ExecKind]WorkStats {
	out := make(map[ExecKind]WorkStats, 2)
	for _, id := range c.order {
		e := c.execs[id]
		st := out[e.Kind]
		st.Executors++
		st.Tasks += e.TasksRun
		st.Busy += e.BusyTime
		out[e.Kind] = st
	}
	return out
}
