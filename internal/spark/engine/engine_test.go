package engine

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/metrics"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/storage"
)

// harness bundles a small cluster for engine tests.
type harness struct {
	clock    *simclock.Clock
	net      *netsim.Network
	provider *cloud.Provider
	store    storage.Store
	cluster  *Cluster
	backend  *Standalone
	ctx      *rdd.Context
}

type harnessOpt func(*Config, *StandaloneConfig)

func withAlloc(a AllocConfig) harnessOpt {
	return func(c *Config, _ *StandaloneConfig) { c.Alloc = a }
}

func withAutoscale(t cloud.VMType, boot time.Duration) harnessOpt {
	return func(_ *Config, s *StandaloneConfig) {
		s.Autoscale = true
		s.ScaleVMType = t
		s.BootOverride = boot
	}
}

func withUsableCores(n int) harnessOpt {
	return func(_ *Config, s *StandaloneConfig) { s.UsableCores = n }
}

// newHarness builds a cluster with one ready m4.4xlarge and a local store.
func newHarness(t *testing.T, execs int, opts ...harnessOpt) *harness {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(7), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M44XLarge)
	store := storage.NewLocal(clock, net)
	cfg := Config{
		AppID:    "test-app",
		Clock:    clock,
		Net:      net,
		Provider: provider,
		Store:    store,
		Alloc:    DefaultAllocConfig(AllocStatic, execs, execs),
	}
	scfg := StandaloneConfig{VMs: []*cloud.VM{vm}}
	for _, o := range opts {
		o(&cfg, &scfg)
	}
	backend := NewStandalone(scfg)
	cfg.Backend = backend
	cluster, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		clock: clock, net: net, provider: provider, store: store,
		cluster: cluster, backend: backend, ctx: rdd.NewContext(),
	}
}

// ints produces n rows 0..n-1 split across parts partitions.
func intSource(ctx *rdd.Context, n, parts int) *rdd.RDD {
	per := n / parts
	return ctx.Source("ints", parts, func(p int) []rdd.Row {
		lo := p * per
		hi := lo + per
		if p == parts-1 {
			hi = n
		}
		out := make([]rdd.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}, 10, 8)
}

func TestSingleStageCollect(t *testing.T) {
	h := newHarness(t, 4)
	src := intSource(h.ctx, 100, 4)
	doubled := src.Map("double", func(r rdd.Row) rdd.Row { return r.(int) * 2 }, 5, 8)
	job, err := h.cluster.RunJob(doubled, "double")
	if err != nil {
		t.Fatal(err)
	}
	rows := job.Rows()
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	sum := 0
	for _, r := range rows {
		sum += r.(int)
	}
	if sum != 99*100 { // 2 * sum(0..99)
		t.Fatalf("sum = %d", sum)
	}
	if h.clock.Since(simclock.Epoch) <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestTwoStageReduceByKey(t *testing.T) {
	h := newHarness(t, 4)
	src := intSource(h.ctx, 1000, 4)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row {
		return rdd.KV{K: r.(int) % 10, V: 1}
	}, 2, 16)
	counts := kv.ReduceByKey("count", 4,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row {
			return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
		}, 2, 16)
	job, err := h.cluster.RunJob(counts, "count")
	if err != nil {
		t.Fatal(err)
	}
	rows := job.Rows()
	if len(rows) != 10 {
		t.Fatalf("got %d groups, want 10", len(rows))
	}
	for _, r := range rows {
		if r.(rdd.KV).V.(int) != 100 {
			t.Fatalf("group %v has count %v, want 100", r.(rdd.KV).K, r.(rdd.KV).V)
		}
	}
}

func TestJoinJob(t *testing.T) {
	h := newHarness(t, 4)
	left := h.ctx.Source("left", 2, func(p int) []rdd.Row {
		return []rdd.Row{rdd.KV{K: p, V: "l"}}
	}, 1, 16)
	right := h.ctx.Source("right", 2, func(p int) []rdd.Row {
		return []rdd.Row{rdd.KV{K: p, V: "r"}}
	}, 1, 16)
	joined := left.Join(right, "join", 2,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row {
			return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(string) + b.(rdd.KV).V.(string)}
		}, 1, 16)
	job, err := h.cluster.RunJob(joined, "join")
	if err != nil {
		t.Fatal(err)
	}
	rows := job.Rows()
	if len(rows) != 2 {
		t.Fatalf("join produced %d rows", len(rows))
	}
	for _, r := range rows {
		if r.(rdd.KV).V.(string) != "lr" {
			t.Fatalf("join row = %+v", r)
		}
	}
}

func TestStageCountAndEvents(t *testing.T) {
	h := newHarness(t, 2)
	src := intSource(h.ctx, 10, 2)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 2, V: 1} }, 1, 8)
	red := kv.ReduceByKey("red", 2,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row { return a }, 1, 8)
	job, err := h.cluster.RunJob(red, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(job.Stages))
	}
	log := h.cluster.Log()
	if got := len(log.ByKind(metrics.StageStart)); got != 2 {
		t.Fatalf("stage starts = %d", got)
	}
	if got := len(log.ByKind(metrics.StageEnd)); got != 2 {
		t.Fatalf("stage ends = %d", got)
	}
	spans := log.TaskSpans()
	if len(spans) != 4 { // 2 map + 2 reduce
		t.Fatalf("task spans = %d", len(spans))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (time.Duration, int) {
		h := newHarness(t, 4)
		src := intSource(h.ctx, 500, 8)
		kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 7, V: r} }, 3, 16)
		red := kv.GroupByKey("grp", 4, func(r rdd.Row) rdd.Key { return r.(rdd.KV).K }, 2, 24)
		job, err := h.cluster.RunJob(red, "grp")
		if err != nil {
			t.Fatal(err)
		}
		return h.clock.Since(simclock.Epoch), len(job.Rows())
	}
	d1, n1 := run()
	d2, n2 := run()
	if d1 != d2 || n1 != n2 {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", d1, n1, d2, n2)
	}
}

func TestMoreExecutorsFaster(t *testing.T) {
	elapsed := func(execs int) time.Duration {
		h := newHarness(t, execs)
		src := intSource(h.ctx, 1_000_000, 16)
		m := src.Map("work", func(r rdd.Row) rdd.Row { return r }, 2000, 8)
		if _, err := h.cluster.RunJob(m, "work"); err != nil {
			t.Fatal(err)
		}
		return h.clock.Since(simclock.Epoch)
	}
	d1 := elapsed(1)
	d8 := elapsed(8)
	if d8*4 > d1 {
		t.Fatalf("8 executors not ~8x faster: 1 exec %v, 8 execs %v", d1, d8)
	}
}

func TestCacheAcceleratesSecondJob(t *testing.T) {
	h := newHarness(t, 4)
	src := intSource(h.ctx, 200_000, 4)
	cached := src.Map("parse", func(r rdd.Row) rdd.Row { return r }, 500, 8).Cache()
	agg := func(name string) *rdd.RDD {
		return cached.MapPartitions(name, func(_ int, in []rdd.Row) []rdd.Row {
			sum := 0
			for _, r := range in {
				sum += r.(int)
			}
			return []rdd.Row{sum}
		}, 1, 8)
	}
	start := h.clock.Now()
	if _, err := h.cluster.RunJob(agg("pass1"), "pass1"); err != nil {
		t.Fatal(err)
	}
	d1 := h.clock.Since(start)
	start = h.clock.Now()
	job2, err := h.cluster.RunJob(agg("pass2"), "pass2")
	if err != nil {
		t.Fatal(err)
	}
	d2 := h.clock.Since(start)
	if d2*3 > d1 {
		t.Fatalf("cache ineffective: pass1 %v, pass2 %v", d1, d2)
	}
	if len(job2.Rows()) != 4 {
		t.Fatalf("pass2 rows = %d", len(job2.Rows()))
	}
}

func TestShuffleReuseAcrossJobs(t *testing.T) {
	h := newHarness(t, 4)
	src := intSource(h.ctx, 1000, 4)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 5, V: 1} }, 2, 16)
	red := kv.ReduceByKey("red", 4,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row {
			return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
		}, 2, 16)
	if _, err := h.cluster.RunJob(red, "first"); err != nil {
		t.Fatal(err)
	}
	spansBefore := len(h.cluster.Log().TaskSpans())
	// Second job over the same shuffled dataset: map stage must be skipped.
	out := red.Map("ident", func(r rdd.Row) rdd.Row { return r }, 1, 16)
	if _, err := h.cluster.RunJob(out, "second"); err != nil {
		t.Fatal(err)
	}
	spansAfter := len(h.cluster.Log().TaskSpans())
	// Second job should only run its 4 result tasks, not the 4 map tasks.
	if spansAfter-spansBefore != 4 {
		t.Fatalf("second job ran %d tasks, want 4 (shuffle reuse)", spansAfter-spansBefore)
	}
}

func TestExecutorLossRecomputesViaLineage(t *testing.T) {
	h := newHarness(t, 4)
	src := intSource(h.ctx, 400, 4)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 8, V: 1} }, 50, 16)
	red := kv.ReduceByKey("red", 4,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row {
			return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
		}, 50, 16)

	// Kill one executor's host (lambda-style loss: blocks die too) right
	// after the map stage likely finished.
	h.clock.After(30*time.Second, func() {
		for _, e := range h.cluster.Executors() {
			// Simulate a *host* loss for the first executor: drop its
			// blocks and unregister its outputs.
			h.cluster.RemoveExecutor(e.ID, true, "injected host loss")
			break
		}
	})
	job, err := h.cluster.RunJob(red, "rollback")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range job.Rows() {
		total += r.(rdd.KV).V.(int)
	}
	if total != 400 {
		t.Fatalf("lost rows after recovery: total=%d", total)
	}
}

func TestHostLossTriggersStageResubmission(t *testing.T) {
	h := newHarness(t, 2)
	src := intSource(h.ctx, 200, 2)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 4, V: 1} }, 100, 16)
	red := kv.ReduceByKey("red", 2,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row {
			return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
		}, 100, 16)
	// After the first job completes, drop the host's blocks, then rerun a
	// dependent job: the map stage must be resubmitted.
	if _, err := h.cluster.RunJob(red, "first"); err != nil {
		t.Fatal(err)
	}
	h.store.DropHost(h.cluster.Executors()[0].HostID)
	h.cluster.Tracker().UnregisterHost(h.cluster.Executors()[0].HostID)
	out := red.Map("ident", func(r rdd.Row) rdd.Row { return r }, 1, 16)
	job, err := h.cluster.RunJob(out, "second")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.cluster.Log().ByKind(metrics.StageResubmitted)) == 0 {
		// The stage may be directly resubmitted at submit time (tracker
		// already incomplete) rather than via fetch failure; both are fine
		// as long as results are correct.
		t.Log("no explicit resubmission event; stage resubmitted at submit time")
	}
	total := 0
	for _, r := range job.Rows() {
		total += r.(rdd.KV).V.(int)
	}
	if total != 200 {
		t.Fatalf("total = %d after host loss", total)
	}
}

func TestDynamicAllocationRampsUp(t *testing.T) {
	h := newHarness(t, 0, withAlloc(DefaultAllocConfig(AllocDynamic, 1, 8)))
	src := intSource(h.ctx, 4_000_000, 16)
	m := src.Map("work", func(r rdd.Row) rdd.Row { return r }, 50, 8)
	if _, err := h.cluster.RunJob(m, "ramp"); err != nil {
		t.Fatal(err)
	}
	if got := len(h.cluster.AllExecutors()); got < 4 {
		t.Fatalf("dynamic allocation launched only %d executors", got)
	}
}

func TestAutoscaleRequestsVMs(t *testing.T) {
	h := newHarness(t, 8,
		withUsableCores(2),
		withAutoscale(cloud.M4XLarge, 60*time.Second),
		withAlloc(DefaultAllocConfig(AllocDynamic, 2, 8)),
	)
	src := intSource(h.ctx, 8_000_000, 32)
	m := src.Map("work", func(r rdd.Row) rdd.Row { return r }, 60, 8)
	if _, err := h.cluster.RunJob(m, "autoscale"); err != nil {
		t.Fatal(err)
	}
	if len(h.cluster.Log().ByKind(metrics.VMRequested)) == 0 {
		t.Fatal("autoscale never requested a VM")
	}
	if len(h.provider.VMs()) < 2 {
		t.Fatal("no VM was provisioned")
	}
}

func TestStalledJobReturnsError(t *testing.T) {
	// Backend with zero VMs: no executors can ever launch.
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(1), cloud.DefaultOptions())
	store := storage.NewLocal(clock, net)
	backend := NewStandalone(StandaloneConfig{})
	cluster, err := New(Config{
		AppID: "stall", Clock: clock, Net: net, Provider: provider,
		Store: store, Backend: backend,
		Alloc:      DefaultAllocConfig(AllocStatic, 1, 1),
		MaxSimTime: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := rdd.NewContext()
	src := ctx.Source("s", 1, func(int) []rdd.Row { return []rdd.Row{1} }, 1, 8)
	_, err = cluster.RunJob(src, "stall")
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestDrainExecutorFinishesCurrentTask(t *testing.T) {
	h := newHarness(t, 2)
	src := intSource(h.ctx, 2_000_000, 8)
	m := src.Map("work", func(r rdd.Row) rdd.Row { return r }, 40, 8)
	drained := make(map[string]bool)
	h.clock.After(5*time.Second, func() {
		execs := h.cluster.Executors()
		if len(execs) > 0 {
			drained[execs[0].ID] = true
			h.cluster.DrainExecutor(execs[0].ID)
		}
	})
	job, err := h.cluster.RunJob(m, "drain")
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Rows()) != 2_000_000 {
		t.Fatalf("rows = %d", len(job.Rows()))
	}
	// No task should have failed: draining is graceful.
	if got := len(h.cluster.Log().ByKind(metrics.TaskFailed)); got != 0 {
		t.Fatalf("graceful drain failed %d tasks", got)
	}
}

func TestGCPressureSlowsTasks(t *testing.T) {
	pm := DefaultPerfModel()
	now := simclock.Epoch
	small := &Executor{
		ExecutorSpec: ExecutorSpec{MemoryMB: 1536, CPUShare: 1},
		RegisteredAt: now,
		cache:        newBlockCache(1 << 30),
	}
	big := &Executor{
		ExecutorSpec: ExecutorSpec{MemoryMB: 4096, CPUShare: 1},
		RegisteredAt: now,
		cache:        newBlockCache(1 << 30),
	}
	ws := int64(900 << 20) // 900 MB working set
	dSmall := small.ComputeTime(pm, 1e9, ws, now)
	dBig := big.ComputeTime(pm, 1e9, ws, now)
	if dSmall <= dBig {
		t.Fatalf("memory pressure not modelled: small %v, big %v", dSmall, dBig)
	}
	// Ageing: the same pressured lambda is slower after 10 minutes.
	later := now.Add(10 * time.Minute)
	dOld := small.ComputeTime(pm, 1e9, ws, later)
	if dOld <= dSmall {
		t.Fatalf("ageing not modelled: fresh %v, old %v", dSmall, dOld)
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(100)
	put := func(id int, bytes int64) bool {
		stored, _ := c.put(cachedPart{rddID: id, part: 0}, []any{id}, bytes)
		return stored
	}
	if !put(1, 40) || !put(2, 40) {
		t.Fatal("puts failed")
	}
	if _, ok := c.get(cachedPart{rddID: 1, part: 0}); !ok {
		t.Fatal("miss on resident entry")
	}
	// Insert 3rd: evicts LRU (=2, since 1 was just touched).
	if !put(3, 40) {
		t.Fatal("third put failed")
	}
	if c.has(cachedPart{rddID: 2, part: 0}) {
		t.Fatal("LRU eviction removed the wrong entry")
	}
	if !c.has(cachedPart{rddID: 1, part: 0}) || !c.has(cachedPart{rddID: 3, part: 0}) {
		t.Fatal("expected entries missing")
	}
	if put(9, 1000) {
		t.Fatal("oversized partition cached")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	if c.bytes != 80 {
		t.Fatalf("bytes = %d", c.bytes)
	}
}

func TestResultsArePartitionOrdered(t *testing.T) {
	h := newHarness(t, 4)
	src := h.ctx.Source("p", 4, func(p int) []rdd.Row { return []rdd.Row{p} }, 1, 8)
	job, err := h.cluster.RunJob(src, "order")
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, r := range job.Rows() {
		got = append(got, r.(int))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("results not in partition order: %v", got)
	}
}

func TestLocalityPrefersCacheOwner(t *testing.T) {
	h := newHarness(t, 4)
	src := intSource(h.ctx, 40_000, 4)
	cached := src.Map("parse", func(r rdd.Row) rdd.Row { return r }, 200, 8).Cache()
	count := cached.MapPartitions("count", func(_ int, in []rdd.Row) []rdd.Row {
		return []rdd.Row{len(in)}
	}, 1, 8)
	if _, err := h.cluster.RunJob(count, "warm"); err != nil {
		t.Fatal(err)
	}
	// Record who owns which cached partition, then rerun.
	owners := map[int]string{}
	for _, e := range h.cluster.Executors() {
		for p := 0; p < 4; p++ {
			if e.cache.has(cachedPart{rddID: cached.ID, part: p}) {
				owners[p] = e.ID
			}
		}
	}
	if len(owners) != 4 {
		t.Fatalf("cache owners = %v", owners)
	}
	before := len(h.cluster.Log().TaskSpans())
	if _, err := h.cluster.RunJob(count, "reuse"); err != nil {
		t.Fatal(err)
	}
	spans := h.cluster.Log().TaskSpans()[before:]
	for _, s := range spans {
		if owners[s.Task] != s.Exec {
			t.Fatalf("task %d ran on %s, cache owner %s", s.Task, s.Exec, owners[s.Task])
		}
	}
}

func TestTimelineRenders(t *testing.T) {
	h := newHarness(t, 2)
	src := intSource(h.ctx, 100_000, 4)
	m := src.Map("w", func(r rdd.Row) rdd.Row { return r }, 20, 8)
	if _, err := h.cluster.RunJob(m, "tl"); err != nil {
		t.Fatal(err)
	}
	out := h.cluster.Log().RenderTimeline(60)
	if len(out) == 0 || out == "(no task activity)\n" {
		t.Fatalf("timeline empty:\n%s", out)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRunJobWhileRunningFails(t *testing.T) {
	h := newHarness(t, 1)
	src := intSource(h.ctx, 10, 1)
	// Start a job from inside the event loop and try to start another.
	h.cluster.Start()
	var innerErr error
	h.clock.After(0, func() {
		// The outer RunJob below will be mid-flight; simulate the check.
	})
	job, err := h.cluster.RunJob(src, "a")
	if err != nil || !job.Done() {
		t.Fatal(err)
	}
	_ = innerErr
	// Second run after completion is fine.
	if _, err := h.cluster.RunJob(src.Map("b", func(r rdd.Row) rdd.Row { return r }, 1, 8), "b"); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineSmallShuffleJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clock := simclock.New(simclock.Epoch)
		net := netsim.New(clock)
		provider := cloud.NewProvider(clock, net, simrand.New(7), cloud.DefaultOptions())
		vm := provider.ProvisionReadyVM(cloud.M44XLarge)
		store := storage.NewLocal(clock, net)
		backend := NewStandalone(StandaloneConfig{VMs: []*cloud.VM{vm}})
		cluster, err := New(Config{
			AppID: fmt.Sprintf("bench-%d", i), Clock: clock, Net: net,
			Provider: provider, Store: store, Backend: backend,
			Alloc: DefaultAllocConfig(AllocStatic, 8, 8),
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := rdd.NewContext()
		src := intSource(ctx, 10000, 8)
		kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 64, V: 1} }, 2, 16)
		red := kv.ReduceByKey("red", 8,
			func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
			func(a, x rdd.Row) rdd.Row {
				return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + x.(rdd.KV).V.(int)}
			}, 2, 16)
		if _, err := cluster.RunJob(red, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
