package engine

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/storage"
)

// chaosJob is a three-stage job (source -> shuffle -> shuffle -> collect)
// whose correct answer is known in closed form: the sum of per-key counts
// equals the row count.
func chaosJob(ctx *rdd.Context, rows, parts int) *rdd.RDD {
	per := rows / parts
	src := ctx.Source("src", parts, func(p int) []rdd.Row {
		out := make([]rdd.Row, per)
		for i := range out {
			out[i] = p*per + i
		}
		return out
	}, 2000, 8)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 13, V: 1} }, 100, 16)
	sum := func(a, b rdd.Row) rdd.Row {
		return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
	}
	first := kv.ReduceByKey("sum1", parts, func(r rdd.Row) rdd.Key { return r.(rdd.KV).K }, sum, 100, 16)
	// Second shuffle: re-key by value bucket, count keys.
	rekey := first.Map("rekey", func(r rdd.Row) rdd.Row {
		return rdd.KV{K: r.(rdd.KV).V.(int) % 5, V: r.(rdd.KV).V.(int)}
	}, 50, 16)
	return rekey.ReduceByKey("sum2", parts/2+1, func(r rdd.Row) rdd.Key { return r.(rdd.KV).K }, sum, 100, 16)
}

func checkChaosResult(t *testing.T, job *Job, rows int) {
	t.Helper()
	total := 0
	for _, r := range job.Rows() {
		total += r.(rdd.KV).V.(int)
	}
	if total != rows {
		t.Fatalf("chaos lost rows: total = %d, want %d", total, rows)
	}
}

// TestChaosRandomHostLoss kills random executors (with their host-local
// blocks) at random instants; lineage recovery must always produce the
// exact answer.
func TestChaosRandomHostLoss(t *testing.T) {
	const rows = 5200
	prop := func(seed uint64) bool {
		rng := simrand.New(seed)
		clock := simclock.New(simclock.Epoch)
		net := netsim.New(clock)
		provider := cloud.NewProvider(clock, net, simrand.New(seed+1), cloud.DefaultOptions())
		vm := provider.ProvisionReadyVM(cloud.M44XLarge)
		backend := NewStandalone(StandaloneConfig{VMs: []*cloud.VM{vm}})
		cluster, err := New(Config{
			AppID: "chaos", Clock: clock, Net: net, Provider: provider,
			Store:   storage.NewLocal(clock, net),
			Backend: backend,
			Alloc:   DefaultAllocConfig(AllocStatic, 8, 8),
			// Generous retries: we kill repeatedly.
			MaxTaskAttempts: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Schedule 3 random kills in the first minute. The backend
		// replaces nothing (static alloc), so capacity shrinks, but at
		// most 3 of 8 executors die.
		kills := 0
		for i := 0; i < 3; i++ {
			at := time.Duration(rng.Intn(30000)) * time.Millisecond
			clock.After(at, func() {
				live := cluster.Executors()
				if len(live) <= 2 {
					return
				}
				victim := live[rng.Intn(len(live))]
				kills++
				// Host loss: blocks AND cache die (worst case).
				cluster.RemoveExecutor(victim.ID, true, "chaos kill")
			})
		}
		ctx := rdd.NewContext()
		job, err := cluster.RunJob(chaosJob(ctx, rows, 8), "chaos")
		if err != nil {
			// Retry exhaustion is allowed only if we killed enough
			// executors to starve the job; anything else is a bug.
			if errors.Is(err, ErrTaskRetriesExhausted) || errors.Is(err, ErrStalled) {
				return len(cluster.Executors()) < 2
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		total := 0
		for _, r := range job.Rows() {
			total += r.(rdd.KV).V.(int)
		}
		return total == rows
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillDuringEveryStage kills one executor per stage boundary.
func TestChaosKillDuringEveryStage(t *testing.T) {
	const rows = 5200
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(7), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M44XLarge)
	backend := NewStandalone(StandaloneConfig{VMs: []*cloud.VM{vm}})
	cluster, err := New(Config{
		AppID: "chaos2", Clock: clock, Net: net, Provider: provider,
		Store:           storage.NewLocal(clock, net),
		Backend:         backend,
		Alloc:           DefaultAllocConfig(AllocStatic, 8, 8),
		MaxTaskAttempts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second} {
		clock.After(at, func() {
			live := cluster.Executors()
			if len(live) > 3 {
				cluster.RemoveExecutor(live[0].ID, true, "staged kill")
			}
		})
	}
	ctx := rdd.NewContext()
	job, err := cluster.RunJob(chaosJob(ctx, rows, 8), "chaos2")
	if err != nil {
		t.Fatal(err)
	}
	checkChaosResult(t, job, rows)
}

// TestChaosDurableStoreAvoidsRecomputation: with a durable (HDFS-like)
// store, host loss must NOT resubmit completed map stages.
func TestChaosDurableStoreVsLocal(t *testing.T) {
	taskCount := func(durable bool) int {
		clock := simclock.New(simclock.Epoch)
		net := netsim.New(clock)
		provider := cloud.NewProvider(clock, net, simrand.New(7), cloud.DefaultOptions())
		vm := provider.ProvisionReadyVM(cloud.M44XLarge)
		var store storage.Store
		local := storage.NewLocal(clock, net)
		store = local
		if durable {
			store = durableWrap{local}
		}
		backend := NewStandalone(StandaloneConfig{VMs: []*cloud.VM{vm}})
		cluster, err := New(Config{
			AppID: "chaos3", Clock: clock, Net: net, Provider: provider,
			Store: store, Backend: backend,
			Alloc:           DefaultAllocConfig(AllocStatic, 8, 8),
			MaxTaskAttempts: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		clock.After(3*time.Second, func() {
			live := cluster.Executors()
			if len(live) > 2 {
				// Kill WITHOUT dropping blocks for the durable case: the
				// wrapper ignores DropHost, mimicking HDFS.
				cluster.RemoveExecutor(live[0].ID, true, "kill")
			}
		})
		ctx := rdd.NewContext()
		job, err := cluster.RunJob(chaosJob(ctx, 5200, 8), "chaos3")
		if err != nil {
			t.Fatal(err)
		}
		checkChaosResult(t, job, 5200)
		return len(cluster.Log().TaskSpans())
	}
	durable := taskCount(true)
	lossy := taskCount(false)
	if durable > lossy {
		t.Fatalf("durable store ran MORE tasks (%d) than lossy (%d)", durable, lossy)
	}
}

// durableWrap makes a local store pretend to be durable (blocks survive
// DropHost), isolating the tracker-unregistration path.
type durableWrap struct{ *storage.Local }

func (durableWrap) Durable() bool   { return true }
func (durableWrap) DropHost(string) {}

// TestChaosSpeculationPlusFailures: speculation and failures together
// must not double-count results.
func TestChaosSpeculationPlusFailures(t *testing.T) {
	cluster, clock := speculationHarness(t, 5, true)
	clock.After(2*time.Second, func() {
		live := cluster.Executors()
		if len(live) > 3 {
			cluster.RemoveExecutor(live[1].ID, true, "chaos")
		}
	})
	ctx := rdd.NewContext()
	job, err := cluster.RunJob(chaosJob(ctx, 5200, 10), "spec-chaos")
	if err != nil {
		t.Fatal(err)
	}
	checkChaosResult(t, job, 5200)
}
