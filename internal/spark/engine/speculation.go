package engine

import (
	"time"

	"splitserve/internal/metrics"
)

// Speculative execution (spark.speculation): once a configurable fraction
// of a stage's tasks has finished, any still-running task that has taken
// longer than SpeculationMultiplier times the stage's median task duration
// gets a duplicate attempt on another executor; whichever attempt finishes
// first wins and the loser is cancelled. This is Spark's defence against
// the stragglers the paper repeatedly calls out ("the straggler problems
// common to BSP workloads remain"), and in this reproduction it rescues
// tasks stuck behind slow Lambda egress links.

// SpeculationConfig parameterises speculative execution.
type SpeculationConfig struct {
	Enabled bool
	// Quantile of stage tasks that must have finished before speculation
	// is considered (Spark default 0.75).
	Quantile float64
	// Multiplier over the median finished-task duration beyond which a
	// running task is deemed a straggler (Spark default 1.5).
	Multiplier float64
}

// DefaultSpeculationConfig mirrors Spark's defaults (disabled, as in
// Spark; scenarios opt in).
func DefaultSpeculationConfig() SpeculationConfig {
	return SpeculationConfig{Quantile: 0.75, Multiplier: 1.5}
}

// stageStats tracks per-stage task durations for speculation decisions.
type stageStats struct {
	durations []time.Duration // finished-task durations, unsorted
	total     int
}

// median returns the median finished duration (0 if none).
func (s *stageStats) median() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	// Insertion into a sorted copy would be O(n log n) per call; stage
	// sizes are small (hundreds), so copy+select is fine.
	cp := append([]time.Duration(nil), s.durations...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// maybeSpeculate inspects a stage after a task completion and enqueues
// duplicate attempts for stragglers.
func (s *scheduler) maybeSpeculate(st *Stage, job *Job) {
	cfg := s.c.cfg.Speculation
	if !cfg.Enabled {
		return
	}
	stats := s.stageStats[st]
	if stats == nil || stats.total == 0 {
		return
	}
	if float64(len(stats.durations)) < cfg.Quantile*float64(stats.total) {
		return
	}
	threshold := time.Duration(float64(stats.median()) * cfg.Multiplier)
	if threshold <= 0 {
		return
	}
	now := s.c.cfg.Clock.Now()
	for _, id := range s.c.order {
		e := s.c.execs[id]
		t := e.current
		if t == nil || t.Stage != st || t.speculative || t.twin != nil {
			continue
		}
		if started, ok := s.taskStarts[t]; ok && now.Sub(started) > threshold {
			copyTask := &Task{
				Job: job, Stage: st, Part: t.Part, Attempt: t.Attempt,
				speculative: true, twin: t,
			}
			t.twin = copyTask
			s.c.cfg.Log.Add(metrics.Event{
				At: now, Kind: metrics.TaskSpeculated,
				Exec: e.ID, ExecKind: e.Kind.String(), Stage: st.ID, Task: t.Part,
			})
			s.c.insts.tasksSpeculated.Inc()
			s.enqueue(copyTask)
		}
	}
}

// settleTwin is called when one attempt of a speculated pair finishes: the
// other attempt is cancelled and its executor freed. It reports whether
// the finishing attempt is the winner (false = the partition was already
// completed by its twin; drop this result).
func (s *scheduler) settleTwin(t *Task) bool {
	twin := t.twin
	if twin == nil {
		return true
	}
	t.twin = nil
	twin.twin = nil
	if twin.State == TaskFinished {
		return false // the twin already won
	}
	twin.cancelled = true
	twin.State = TaskFailedState
	s.dequeue(twin) // harmless if it never left the queue
	if e := twin.Exec; e != nil && e.current == twin {
		e.current = nil
		if e.State == ExecBusy {
			e.State = ExecFree
			e.IdleSince = s.c.cfg.Clock.Now()
		} else if e.State == ExecDraining {
			s.c.cfg.Backend.ExecutorDrained(e)
		}
	}
	return true
}
