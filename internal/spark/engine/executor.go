// Package engine is the execution core of the Spark-like framework: the
// driver/session, DAG scheduler (stages at shuffle boundaries), task
// scheduler with cache locality, executors with a calibrated performance
// model, dynamic executor allocation, and lineage-based recovery from lost
// executors and lost shuffle outputs.
//
// The scheduler-backend seam mirrors the classes the paper modifies
// (CoarseGrainedSchedulerBackend / StandAloneSchedulerBackend /
// ExecutorAllocationManager): a Backend decides where executors come from
// (VMs, Lambdas, or both) and may veto task placement (the segue hook),
// while the engine is agnostic to the substrate.
package engine

import (
	"container/list"
	"fmt"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/storage"
)

// ExecKind distinguishes the substrate hosting an executor.
type ExecKind int

// Executor substrate kinds.
const (
	ExecVM ExecKind = iota + 1
	ExecLambda
)

func (k ExecKind) String() string {
	switch k {
	case ExecVM:
		return "vm"
	case ExecLambda:
		return "lambda"
	default:
		return fmt.Sprintf("ExecKind(%d)", int(k))
	}
}

// ExecState is the executor lifecycle.
type ExecState int

// Executor states.
const (
	ExecFree ExecState = iota + 1
	ExecBusy
	ExecDraining // no new tasks (segue); finishes its current task
	ExecDead
)

func (s ExecState) String() string {
	switch s {
	case ExecFree:
		return "free"
	case ExecBusy:
		return "busy"
	case ExecDraining:
		return "draining"
	case ExecDead:
		return "dead"
	default:
		return fmt.Sprintf("ExecState(%d)", int(s))
	}
}

// PerfModel calibrates how work units and working sets turn into time.
type PerfModel struct {
	// UnitsPerSec is work units per second for one full core.
	UnitsPerSec float64
	// MemOverheadFraction of executor memory is unavailable to data
	// (JVM/runtime overhead).
	MemOverheadFraction float64
	// GCKnee is the working-set fraction of usable memory beyond which GC
	// overhead starts; GCSlope scales the slowdown per unit of excess
	// pressure; MaxGCFactor caps it.
	GCKnee      float64
	GCSlope     float64
	MaxGCFactor float64
	// AgePenaltyPerMin adds slowdown per minute of executor age while the
	// executor is memory-pressured — the paper's observation that Lambda
	// executors hit GC pain "after only a few minutes of execution".
	AgePenaltyPerMin float64
	// CacheFraction of usable memory holds cached partitions.
	CacheFraction float64
	// SerUnitsPerByte is the CPU cost of serializing or deserializing one
	// shuffle byte (charged on both sides of a shuffle).
	SerUnitsPerByte float64
}

// DefaultPerfModel returns the calibration used by the experiments.
func DefaultPerfModel() PerfModel {
	return PerfModel{
		UnitsPerSec:         50e6,
		MemOverheadFraction: 0.25,
		GCKnee:              0.5,
		GCSlope:             2.0,
		MaxGCFactor:         6.0,
		AgePenaltyPerMin:    0.15,
		CacheFraction:       0.55,
		SerUnitsPerByte:     0.2,
	}
}

// ExecutorSpec describes a new executor a Backend registers.
type ExecutorSpec struct {
	ID       string
	Kind     ExecKind
	HostID   string
	MemoryMB int
	CPUShare float64
	// IO is the executor's path for its own reads/writes; Serve is the
	// path used when other executors read blocks it wrote (local store).
	IO    storage.Client
	Serve storage.Client
	// VM / Lambda link the executor to its substrate for billing and
	// lifetime queries. Exactly one is non-nil.
	VM     *cloud.VM
	Lambda *cloud.Lambda
	// Credits, when non-nil, makes this a burstable-host executor: CPU
	// runs at full speed while the host's credit balance lasts and at the
	// baseline fraction after (shared across the host's executors).
	Credits *cloud.CreditGauge
}

// Executor is one running executor (one core, as in the paper).
type Executor struct {
	ExecutorSpec
	State        ExecState
	RegisteredAt time.Time
	RemovedAt    time.Time
	IdleSince    time.Time
	// DrainingAt is when the segue started draining this executor (zero if
	// it never drained); RemovedAt-DrainingAt is the drain duration.
	DrainingAt time.Time

	current *Task
	cache   *blockCache
	// TasksRun counts completed tasks; BusyTime accumulates the wall time
	// spent running them (the per-executor accounting the paper's unique
	// executor IDs enable: "a fine-grained analysis of the work
	// distribution between the two types of executors").
	TasksRun int
	BusyTime time.Duration
}

// effectiveRate returns work units per second for a task with the given
// working set, applying CPU share, GC pressure and ageing.
func (e *Executor) effectiveRate(pm PerfModel, workingSet int64, now time.Time) float64 {
	usable := float64(e.MemoryMB) * (1 << 20) * (1 - pm.MemOverheadFraction)
	pressure := (float64(workingSet) + float64(e.cache.bytes)) / usable
	gc := 1.0
	if pressure > pm.GCKnee {
		gc += pm.GCSlope * (pressure - pm.GCKnee)
		ageMin := now.Sub(e.RegisteredAt).Minutes()
		gc += pm.AgePenaltyPerMin * ageMin
	}
	if gc > pm.MaxGCFactor {
		gc = pm.MaxGCFactor
	}
	return pm.UnitsPerSec * e.CPUShare / gc
}

// ComputeTime converts work units into task compute time on this executor.
// On burstable hosts the credit gauge stretches the time once the balance
// runs out.
func (e *Executor) ComputeTime(pm PerfModel, workUnits float64, workingSet int64, now time.Time) time.Duration {
	rate := e.effectiveRate(pm, workingSet, now)
	if rate <= 0 {
		rate = 1
	}
	fullSpeedSeconds := workUnits / rate
	if e.Credits != nil {
		fullSpeedSeconds = e.Credits.RunFor(now, fullSpeedSeconds)
	}
	return time.Duration(fullSpeedSeconds * float64(time.Second))
}

// CacheBytes returns the bytes of cached partitions resident here.
func (e *Executor) CacheBytes() int64 { return e.cache.bytes }

// cachedPart identifies one cached partition.
type cachedPart struct {
	rddID int
	part  int
}

type cacheEntry struct {
	key   cachedPart
	rows  []any
	bytes int64
}

// blockCache is a per-executor LRU store of cached partitions (the
// BlockManager memory store). Losing the executor loses the cache.
type blockCache struct {
	capacity int64
	bytes    int64
	order    *list.List // front = most recent
	entries  map[cachedPart]*list.Element
}

func newBlockCache(capacity int64) *blockCache {
	return &blockCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[cachedPart]*list.Element),
	}
}

// get returns the cached rows, marking the entry recently used.
func (c *blockCache) get(key cachedPart) ([]any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rows, true
}

// has reports presence without touching recency.
func (c *blockCache) has(key cachedPart) bool {
	_, ok := c.entries[key]
	return ok
}

// put inserts rows, evicting LRU entries as needed, and returns whether
// the partition was stored plus the keys evicted to make room. Oversized
// partitions are not cached (Spark drops blocks that do not fit).
func (c *blockCache) put(key cachedPart, rows []any, bytes int64) (stored bool, evicted []cachedPart) {
	if bytes > c.capacity {
		return false, nil
	}
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.bytes += bytes - ent.bytes
		ent.rows, ent.bytes = rows, bytes
		return true, nil
	}
	for c.bytes+bytes > c.capacity {
		back := c.order.Back()
		if back == nil {
			return false, evicted
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.key)
		c.bytes -= ent.bytes
		evicted = append(evicted, ent.key)
	}
	el := c.order.PushFront(&cacheEntry{key: key, rows: rows, bytes: bytes})
	c.entries[key] = el
	c.bytes += bytes
	return true, evicted
}

// len returns the number of cached partitions.
func (c *blockCache) len() int { return len(c.entries) }
