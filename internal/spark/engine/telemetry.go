package engine

import (
	"strconv"

	"splitserve/internal/telemetry"
)

// kindNames indexes instrument handles by executor substrate.
var kindNames = [2]string{"vm", "lambda"}

func kindIdx(k ExecKind) int {
	if k == ExecLambda {
		return 1
	}
	return 0
}

// engineInstruments holds the engine's resolved telemetry handles. They
// are resolved once at cluster construction so the scheduler hot path
// never touches the registry mutex; on a nil hub every handle is nil and
// each operation is a no-op.
type engineInstruments struct {
	hub *telemetry.Hub

	tasksStarted    [2]*telemetry.Counter
	tasksFinished   [2]*telemetry.Counter
	tasksFailed     [2]*telemetry.Counter
	taskRetries     *telemetry.Counter
	tasksSpeculated *telemetry.Counter
	fetchFailures   *telemetry.Counter
	queueWait       *telemetry.Histogram
	pendingTasks    *telemetry.Gauge

	execLive  [2]*telemetry.Gauge
	execDrain [2]*telemetry.Histogram

	shuffleWritten [2]*telemetry.Counter
	shuffleRead    [2]*telemetry.Counter
	blocksWritten  *telemetry.Counter
	fetchLatency   [2]*telemetry.Histogram

	scaleUp     *telemetry.Counter
	scaleDown   *telemetry.Counter
	targetExecs *telemetry.Gauge

	// schedLatency is the per-stage scheduling-latency histogram family,
	// resolved lazily as stages are submitted.
	schedLatency map[int]*telemetry.Histogram
}

func newEngineInstruments(h *telemetry.Hub) *engineInstruments {
	m := &engineInstruments{hub: h, schedLatency: make(map[int]*telemetry.Histogram)}
	for i, kn := range kindNames {
		kl := telemetry.L("kind", kn)
		m.tasksStarted[i] = h.Counter("engine_tasks_started_total", kl)
		m.tasksFinished[i] = h.Counter("engine_tasks_finished_total", kl)
		m.tasksFailed[i] = h.Counter("engine_tasks_failed_total", kl)
		m.execLive[i] = h.Gauge("engine_executors_live", kl)
		m.execDrain[i] = h.Histogram("engine_executor_drain_seconds", nil, kl)
		m.shuffleWritten[i] = h.Counter("shuffle_bytes_written_total", kl)
		m.shuffleRead[i] = h.Counter("shuffle_bytes_read_total", kl)
		m.fetchLatency[i] = h.Histogram("shuffle_fetch_seconds", nil, kl)
	}
	m.taskRetries = h.Counter("engine_task_retries_total")
	m.tasksSpeculated = h.Counter("engine_tasks_speculated_total")
	m.fetchFailures = h.Counter("engine_fetch_failures_total")
	m.queueWait = h.Histogram("engine_task_queue_wait_seconds", nil)
	m.pendingTasks = h.Gauge("engine_pending_tasks")
	m.blocksWritten = h.Counter("shuffle_blocks_written_total")
	m.scaleUp = h.Counter("autoscale_scale_up_total")
	m.scaleDown = h.Counter("autoscale_scale_down_total")
	m.targetExecs = h.Gauge("autoscale_target_executors")
	return m
}

// stageLatency resolves the scheduling-latency histogram for one stage.
func (m *engineInstruments) stageLatency(stage int) *telemetry.Histogram {
	if hst, ok := m.schedLatency[stage]; ok {
		return hst
	}
	hst := m.hub.Histogram("engine_sched_latency_seconds", nil,
		telemetry.L("stage", strconv.Itoa(stage)))
	m.schedLatency[stage] = hst
	return hst
}
