package engine

import (
	"fmt"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/metrics"
	"splitserve/internal/netsim"
	"splitserve/internal/storage"
	"splitserve/internal/telemetry"
)

// Backend is the scheduler-backend seam — the engine's analogue of the
// Spark classes the paper modifies. It supplies executors (from VMs,
// Lambdas, or both), may veto placement on specific executors (the segue
// hook the paper adds to the scheduler: "stop directing additional tasks
// to a long-running Lambda-based executor"), and observes job boundaries
// (so the segueing facility can launch replacement VMs in the background).
type Backend interface {
	// Name identifies the backend ("standalone", "splitserve", ...).
	Name() string
	// Start gives the backend its cluster context. Called once.
	Start(c *Cluster)
	// SetDesiredTotal sets the target number of executors; the backend
	// launches or schedules what it can.
	SetDesiredTotal(n int)
	// AllowAssign is consulted before placing a task on an executor.
	AllowAssign(e *Executor) bool
	// ExecutorDrained fires when a draining executor finished its last
	// task and is idle; the backend decommissions it.
	ExecutorDrained(e *Executor)
	// ReleaseIdle decommissions an idle executor (dynamic allocation).
	ReleaseIdle(e *Executor)
	// JobSubmitted/JobFinished bracket each action.
	JobSubmitted(name string, slo time.Duration)
	JobFinished()
}

// VMExecutorMemoryMB is the default per-executor memory on a VM host: the
// host's memory split across its cores (one executor per core).
func VMExecutorMemoryMB(t cloud.VMType) int {
	return int(t.MemGiB * 1024 / float64(t.VCPUs))
}

// VMExecutorClient builds the I/O path of a VM-hosted executor: disk
// traffic through the host's EBS volume, network traffic through its NIC.
func VMExecutorClient(vm *cloud.VM) storage.Client {
	return storage.Client{
		HostID: vm.ID,
		Disk:   []*netsim.Pool{vm.EBS},
		Net:    []*netsim.Pool{vm.NIC},
	}
}

// LambdaExecutorClient builds the I/O path of a Lambda-hosted executor:
// everything rides the invocation's memory-proportional egress link.
func LambdaExecutorClient(l *cloud.Lambda) storage.Client {
	return storage.Client{
		HostID: l.ID,
		Disk:   []*netsim.Pool{l.Egress},
		Net:    []*netsim.Pool{l.Egress},
	}
}

// StandaloneConfig configures the vanilla VM-only backend.
type StandaloneConfig struct {
	// VMs are the instances available at start (must be Ready).
	VMs []*cloud.VM
	// UsableCores caps how many cores of the existing VMs the application
	// may use (the scenarios' r). 0 means all cores.
	UsableCores int
	// Autoscale lets the backend request more VMs when the desired
	// executor total exceeds capacity (the `Spark r/R autoscale` baseline).
	Autoscale bool
	// ScaleVMType is the instance type requested when autoscaling.
	ScaleVMType cloud.VMType
	// BootOverride pins the boot delay of autoscale VMs (0 = sample).
	BootOverride time.Duration
	// ExecLaunchDelay models executor JVM spin-up and registration.
	ExecLaunchDelay time.Duration
	// ExecMemoryMB overrides per-executor memory (0 = hostMem/vCPUs).
	ExecMemoryMB int
	// StandbyVMs are additional ready instances usable at full capacity
	// regardless of UsableCores — e.g. BurScale-style burstable standbys.
	// StandbyCredits maps a standby VM's ID to its credit gauge (nil entry
	// = not burstable).
	StandbyVMs     []*cloud.VM
	StandbyCredits map[string]*cloud.CreditGauge
}

// Standalone is vanilla Spark's VM-only scheduler backend.
type Standalone struct {
	cfg StandaloneConfig
	c   *Cluster

	slots           []*vmSlot
	desired         int
	launched        int
	pendingLaunches int
	pendingVMCores  int
	execSeq         int
}

type vmSlot struct {
	vm       *cloud.VM
	capacity int
	used     int
}

var _ Backend = (*Standalone)(nil)

// NewStandalone returns the vanilla backend.
func NewStandalone(cfg StandaloneConfig) *Standalone {
	if cfg.ExecLaunchDelay == 0 {
		cfg.ExecLaunchDelay = time.Second
	}
	return &Standalone{cfg: cfg}
}

// Name implements Backend.
func (b *Standalone) Name() string { return "standalone" }

// Start implements Backend.
func (b *Standalone) Start(c *Cluster) {
	b.c = c
	budget := b.cfg.UsableCores
	for _, vm := range b.cfg.VMs {
		capacity := vm.Type.VCPUs
		if b.cfg.UsableCores > 0 {
			if budget <= 0 {
				break
			}
			if capacity > budget {
				capacity = budget
			}
			budget -= capacity
		}
		b.slots = append(b.slots, &vmSlot{vm: vm, capacity: capacity})
	}
	for _, vm := range b.cfg.StandbyVMs {
		b.slots = append(b.slots, &vmSlot{vm: vm, capacity: vm.Type.VCPUs})
	}
}

// SetDesiredTotal implements Backend.
func (b *Standalone) SetDesiredTotal(n int) {
	b.desired = n
	b.reconcile()
}

// reconcile launches executors on free cores and, when autoscaling,
// requests additional VMs to cover the shortfall.
func (b *Standalone) reconcile() {
	for b.launched+b.pendingLaunches < b.desired {
		slot := b.freeSlot()
		if slot == nil {
			break
		}
		b.launchOn(slot)
	}
	if !b.cfg.Autoscale {
		return
	}
	shortfall := b.desired - b.launched - b.pendingLaunches - b.pendingVMCores
	for shortfall > 0 {
		t := b.cfg.ScaleVMType
		if t.VCPUs == 0 {
			t = cloud.M4XLarge
		}
		b.pendingVMCores += t.VCPUs
		shortfall -= t.VCPUs
		b.c.Log().Add(metrics.Event{
			At: b.c.Clock().Now(), Kind: metrics.VMRequested, Stage: -1, Task: -1,
			Note: t.Name,
		})
		b.c.Provider().RequestVM(t, b.cfg.BootOverride, func(vm *cloud.VM) {
			b.pendingVMCores -= vm.Type.VCPUs
			b.slots = append(b.slots, &vmSlot{vm: vm, capacity: vm.Type.VCPUs})
			b.c.Log().Add(metrics.Event{
				At: b.c.Clock().Now(), Kind: metrics.VMReady, Stage: -1, Task: -1,
				Note: vm.ID,
			})
			b.reconcile()
		})
	}
}

func (b *Standalone) freeSlot() *vmSlot {
	for _, s := range b.slots {
		if s.vm.State == cloud.VMReady && s.used < s.capacity {
			return s
		}
	}
	return nil
}

// launchOn spins up one executor on a VM core after the launch delay.
func (b *Standalone) launchOn(slot *vmSlot) {
	slot.used++
	b.pendingLaunches++
	b.execSeq++
	id := fmt.Sprintf("exec-v%02d", b.execSeq)
	mem := b.cfg.ExecMemoryMB
	if mem == 0 {
		mem = VMExecutorMemoryMB(slot.vm.Type)
	}
	launch := b.c.Telemetry().Tracer().StartSpan("executor", "launch",
		telemetry.L("exec", id), telemetry.L("kind", "vm"))
	b.c.Clock().After(b.cfg.ExecLaunchDelay, func() {
		b.pendingLaunches--
		launch.End()
		if b.launched >= b.desired {
			slot.used-- // demand evaporated while launching
			return
		}
		b.launched++
		cl := VMExecutorClient(slot.vm)
		b.c.RegisterExecutor(ExecutorSpec{
			ID:       id,
			Kind:     ExecVM,
			HostID:   slot.vm.ID,
			MemoryMB: mem,
			CPUShare: 1,
			IO:       cl,
			Serve:    cl,
			VM:       slot.vm,
			Credits:  b.cfg.StandbyCredits[slot.vm.ID],
		})
	})
}

// AllowAssign implements Backend: vanilla Spark places tasks anywhere.
func (b *Standalone) AllowAssign(*Executor) bool { return true }

// ExecutorDrained implements Backend: the standalone backend never drains,
// but honour the contract defensively.
func (b *Standalone) ExecutorDrained(e *Executor) { b.release(e, "drained") }

// ReleaseIdle implements Backend: dynamic allocation killed an idle
// executor. Its host VM (and the shuffle files on it) survive — the
// external-shuffle-service semantics vanilla Spark requires for dynamic
// allocation.
func (b *Standalone) ReleaseIdle(e *Executor) { b.release(e, "idle timeout") }

func (b *Standalone) release(e *Executor, reason string) {
	if e.State == ExecDead {
		return
	}
	b.c.RemoveExecutor(e.ID, false, reason)
	b.launched--
	for _, s := range b.slots {
		if s.vm.ID == e.HostID && s.used > 0 {
			s.used--
			break
		}
	}
}

// JobSubmitted implements Backend.
func (b *Standalone) JobSubmitted(string, time.Duration) {}

// JobFinished implements Backend.
func (b *Standalone) JobFinished() {}

// Launched returns the current live executor count (tests).
func (b *Standalone) Launched() int { return b.launched }
