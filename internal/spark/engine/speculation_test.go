package engine

import (
	"testing"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/metrics"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/storage"
)

// manualBackend lets tests register executors with custom specs.
type manualBackend struct{ c *Cluster }

func (b *manualBackend) Name() string                       { return "manual" }
func (b *manualBackend) Start(c *Cluster)                   { b.c = c }
func (b *manualBackend) SetDesiredTotal(int)                {}
func (b *manualBackend) AllowAssign(*Executor) bool         { return true }
func (b *manualBackend) ExecutorDrained(e *Executor)        { b.c.RemoveExecutor(e.ID, false, "drained") }
func (b *manualBackend) ReleaseIdle(*Executor)              {}
func (b *manualBackend) JobSubmitted(string, time.Duration) {}
func (b *manualBackend) JobFinished()                       {}

// speculationHarness builds a cluster with n normal executors and one
// crippled straggler (10x slower CPU).
func speculationHarness(t *testing.T, n int, speculation bool) (*Cluster, *simclock.Clock) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(3), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M416XLarge)
	backend := &manualBackend{}
	spec := DefaultSpeculationConfig()
	spec.Enabled = speculation
	spec.Quantile = 0.5
	cluster, err := New(Config{
		AppID: "spec-test", Clock: clock, Net: net, Provider: provider,
		Store:       storage.NewLocal(clock, net),
		Backend:     backend,
		Alloc:       DefaultAllocConfig(AllocStatic, n+1, n+1),
		Speculation: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	cl := VMExecutorClient(vm)
	for i := 0; i < n; i++ {
		cluster.RegisterExecutor(ExecutorSpec{
			ID: "fast-" + string(rune('a'+i)), Kind: ExecVM, HostID: vm.ID,
			MemoryMB: 4096, CPUShare: 1, IO: cl, Serve: cl, VM: vm,
		})
	}
	cluster.RegisterExecutor(ExecutorSpec{
		ID: "straggler", Kind: ExecVM, HostID: vm.ID,
		MemoryMB: 4096, CPUShare: 0.1, IO: cl, Serve: cl, VM: vm,
	})
	return cluster, clock
}

// stragglerJob is a single map stage whose tasks take ~1s on a fast core.
func stragglerJob(parts int) *rdd.RDD {
	ctx := rdd.NewContext()
	return ctx.Source("work", parts, func(p int) []rdd.Row {
		out := make([]rdd.Row, 100)
		for i := range out {
			out[i] = i
		}
		return out
	}, 500_000, 8) // 100 rows x 5e5 units = 1s per task at full speed
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	run := func(speculate bool) (time.Duration, int) {
		cluster, clock := speculationHarness(t, 4, speculate)
		job, err := cluster.RunJob(stragglerJob(10), "spec")
		if err != nil {
			t.Fatal(err)
		}
		if len(job.Rows()) != 1000 {
			t.Fatalf("rows = %d", len(job.Rows()))
		}
		return clock.Since(simclock.Epoch), len(cluster.Log().ByKind(metrics.TaskSpeculated))
	}
	slow, specEvents0 := run(false)
	fast, specEvents1 := run(true)
	if specEvents0 != 0 {
		t.Fatalf("speculation fired while disabled: %d", specEvents0)
	}
	if specEvents1 == 0 {
		t.Fatal("speculation never fired")
	}
	// Without speculation the straggler's ~10s task gates the job; with it
	// a duplicate on a fast core finishes in ~1s.
	if fast >= slow {
		t.Fatalf("speculation did not help: %v vs %v", fast, slow)
	}
	if slow-fast < 3*time.Second {
		t.Fatalf("speculation benefit too small: %v vs %v", fast, slow)
	}
}

func TestSpeculationCorrectResults(t *testing.T) {
	cluster, _ := speculationHarness(t, 4, true)
	ctx := rdd.NewContext()
	src := ctx.Source("v", 10, func(p int) []rdd.Row {
		out := make([]rdd.Row, 50)
		for i := range out {
			out[i] = p*50 + i
		}
		return out
	}, 500_000, 8)
	kv := src.Map("kv", func(r rdd.Row) rdd.Row { return rdd.KV{K: r.(int) % 7, V: 1} }, 1000, 16)
	red := kv.ReduceByKey("sum", 4,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(a, b rdd.Row) rdd.Row {
			return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(int) + b.(rdd.KV).V.(int)}
		}, 1000, 16)
	job, err := cluster.RunJob(red, "spec-shuffle")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range job.Rows() {
		total += r.(rdd.KV).V.(int)
	}
	if total != 500 {
		t.Fatalf("speculated shuffle lost rows: total = %d, want 500", total)
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	run := func() time.Duration {
		cluster, clock := speculationHarness(t, 4, true)
		if _, err := cluster.RunJob(stragglerJob(10), "spec"); err != nil {
			t.Fatal(err)
		}
		return clock.Since(simclock.Epoch)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic with speculation: %v vs %v", a, b)
	}
}

func TestStageStatsMedian(t *testing.T) {
	s := &stageStats{durations: []time.Duration{3 * time.Second, time.Second, 2 * time.Second}}
	if got := s.median(); got != 2*time.Second {
		t.Fatalf("median = %v", got)
	}
	empty := &stageStats{}
	if empty.median() != 0 {
		t.Fatal("empty median not zero")
	}
}

func TestSettleTwinNoTwin(t *testing.T) {
	cluster, _ := speculationHarness(t, 1, true)
	if !cluster.sched.settleTwin(&Task{}) {
		t.Fatal("twinless task should win")
	}
}
