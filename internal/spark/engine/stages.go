package engine

import (
	"fmt"

	"splitserve/internal/spark/rdd"
)

// StageKind discriminates shuffle-map stages from result stages.
type StageKind int

// Stage kinds.
const (
	StageShuffleMap StageKind = iota + 1
	StageResult
)

func (k StageKind) String() string {
	switch k {
	case StageShuffleMap:
		return "shuffle-map"
	case StageResult:
		return "result"
	default:
		return fmt.Sprintf("StageKind(%d)", int(k))
	}
}

// Stage is a set of pipelined tasks between shuffle boundaries, exactly as
// Spark builds them from the lineage DAG.
type Stage struct {
	ID   int
	Kind StageKind
	// Target is the dataset whose partitions the stage's tasks compute.
	Target *rdd.RDD
	// Wide is the shuffle consumer this stage feeds (shuffle-map stages
	// only), and Side which of its parents this stage computes.
	Wide *rdd.RDD
	Side int
	// ShuffleID identifies the shuffle this stage writes (map stages).
	ShuffleID int
	// Parents are the stages producing the shuffles this stage reads.
	Parents []*Stage

	// Scheduling state.
	submitted bool
	done      bool
	// pendingParts counts partitions not yet completed in this submission.
	pendingParts int
}

// NumTasks is the stage's task count (one per target partition).
func (s *Stage) NumTasks() int { return s.Target.Parts }

// Done reports stage completion.
func (s *Stage) Done() bool { return s.done }

// chainLeaf walks narrow dependencies from r down to the stage's leaf: a
// source, shuffled or co-grouped dataset.
func chainLeaf(r *rdd.RDD) *rdd.RDD {
	for r.Kind == rdd.KindNarrow {
		r = r.Parents[0]
	}
	return r
}

// stageChain returns the stage's datasets leaf-first, ending at target.
func stageChain(target *rdd.RDD) []*rdd.RDD {
	var rev []*rdd.RDD
	r := target
	for {
		rev = append(rev, r)
		if r.Kind != rdd.KindNarrow {
			break
		}
		r = r.Parents[0]
	}
	out := make([]*rdd.RDD, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// stageBuilder constructs the stage graph for one job, memoising map
// stages by shuffle ID so shared lineage is built once. Shuffle IDs are
// assigned by the cluster per wide-dataset identity, so jobs sharing a
// lineage graph reuse completed shuffles (Spark skips stages whose outputs
// are already available) while unrelated plans never collide.
type stageBuilder struct {
	nextID    func() int
	sidFor    func(wide *rdd.RDD, side int) int
	byShuffle map[int]*Stage
	all       []*Stage
}

func newStageBuilder(nextID func() int, sidFor func(*rdd.RDD, int) int) *stageBuilder {
	return &stageBuilder{nextID: nextID, sidFor: sidFor, byShuffle: make(map[int]*Stage)}
}

// build returns the result stage for target plus every stage in the graph.
func (b *stageBuilder) build(target *rdd.RDD) *Stage {
	result := &Stage{
		ID:     b.nextID(),
		Kind:   StageResult,
		Target: target,
	}
	result.Parents = b.parentStages(target)
	b.all = append(b.all, result)
	return result
}

// parentStages creates (or reuses) the map stages feeding the stage whose
// target is r.
func (b *stageBuilder) parentStages(target *rdd.RDD) []*Stage {
	leaf := chainLeaf(target)
	switch leaf.Kind {
	case rdd.KindSource:
		return nil
	case rdd.KindShuffled:
		return []*Stage{b.mapStage(leaf, 0)}
	case rdd.KindCoGrouped:
		return []*Stage{b.mapStage(leaf, 0), b.mapStage(leaf, 1)}
	default:
		panic("engine: impossible leaf kind " + leaf.Kind.String())
	}
}

// mapStage returns the shuffle-map stage producing side `side` of wide.
func (b *stageBuilder) mapStage(wide *rdd.RDD, side int) *Stage {
	sid := b.sidFor(wide, side)
	if st, ok := b.byShuffle[sid]; ok {
		return st
	}
	st := &Stage{
		ID:        b.nextID(),
		Kind:      StageShuffleMap,
		Target:    wide.Parents[side],
		Wide:      wide,
		Side:      side,
		ShuffleID: sid,
	}
	b.byShuffle[sid] = st
	st.Parents = b.parentStages(st.Target)
	b.all = append(b.all, st)
	return st
}

// keyFnFor returns the key function the map side of a stage's shuffle uses.
func keyFnFor(wide *rdd.RDD, side int) func(rdd.Row) rdd.Key {
	switch wide.Kind {
	case rdd.KindShuffled:
		return wide.KeyFn
	case rdd.KindCoGrouped:
		if side == 0 {
			return wide.LeftKeyFn
		}
		return wide.RightKeyFn
	default:
		panic("engine: keyFnFor on non-wide dataset")
	}
}

// mergeFnFor returns the map-side combiner, if any.
func mergeFnFor(wide *rdd.RDD) func(a, b rdd.Row) rdd.Row {
	if wide.Kind == rdd.KindShuffled {
		return wide.MergeFn
	}
	return nil
}

// TaskState tracks a task attempt lifecycle.
type TaskState int

// Task states.
const (
	TaskPending TaskState = iota + 1
	TaskRunning
	TaskFinished
	TaskFailedState
)

// Task is one partition computation of one stage.
type Task struct {
	Job     *Job
	Stage   *Stage
	Part    int
	Attempt int
	State   TaskState
	// Preferred is the executor holding a cached partition this task
	// wants (empty = no preference).
	Preferred    string
	PendingSince int64 // sequence for FIFO ordering
	Exec         *Executor
	cancelled    bool
	// speculative marks a duplicate attempt; twin links the two attempts
	// of a speculated task while both are alive.
	speculative bool
	twin        *Task
}

func (t *Task) String() string {
	return fmt.Sprintf("task(stage=%d part=%d attempt=%d)", t.Stage.ID, t.Part, t.Attempt)
}

// Job is one action execution: a result stage plus its ancestry.
type Job struct {
	ID          int
	Name        string
	ResultStage *Stage
	Stages      []*Stage
	// mapStageByShuffle lets fetch-failures find the producer to resubmit.
	mapStageByShuffle map[int]*Stage

	results [][]rdd.Row
	done    bool
	err     error
}

// Done reports job completion.
func (j *Job) Done() bool { return j.done }

// Err returns the job error, if any.
func (j *Job) Err() error { return j.err }

// Results returns the collected rows per result partition.
func (j *Job) Results() [][]rdd.Row { return j.results }

// Rows flattens the per-partition results in partition order.
func (j *Job) Rows() []rdd.Row {
	var out []rdd.Row
	for _, part := range j.results {
		out = append(out, part...)
	}
	return out
}
