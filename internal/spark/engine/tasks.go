package engine

import (
	"errors"
	"fmt"

	"splitserve/internal/metrics"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/spark/shuffle"
	"splitserve/internal/storage"
)

// runTask executes one task on one executor. The real computation (rows
// through the narrow chain, shuffle regrouping, joins) happens eagerly;
// time is charged in three phases — input fetch (flows), compute (the
// executor performance model), output write (flows) — after which the
// scheduler is notified.
func (s *scheduler) runTask(t *Task, e *Executor) {
	e.State = ExecBusy
	e.current = t
	t.Exec = e
	t.State = TaskRunning
	if d := s.dispatchDelay(); d > 0 {
		s.c.cfg.Clock.After(d, func() {
			if t.cancelled {
				return
			}
			s.startTaskBody(t, e)
		})
		return
	}
	s.startTaskBody(t, e)
}

// startTaskBody begins the fetch/compute/write pipeline once the driver
// has dispatched the task.
func (s *scheduler) startTaskBody(t *Task, e *Executor) {
	s.taskStarts[t] = s.c.cfg.Clock.Now()
	s.c.cfg.Log.Add(metrics.Event{
		At: s.c.cfg.Clock.Now(), Kind: metrics.TaskStart,
		Exec: e.ID, ExecKind: e.Kind.String(), Stage: t.Stage.ID, Task: t.Part,
	})
	s.c.insts.tasksStarted[kindIdx(e.Kind)].Inc()

	chain := stageChain(t.Stage.Target)

	// Cache cut: start from the deepest cached node resident on this
	// executor.
	for i := len(chain) - 1; i >= 0; i-- {
		if !chain[i].Cached {
			continue
		}
		if rows, ok := e.cache.get(cachedPart{rddID: chain[i].ID, part: t.Part}); ok {
			bytes := int64(len(rows)) * int64(chain[i].RowBytes)
			s.computeAndWrite(t, e, chain, i, rows, 0, bytes)
			return
		}
	}

	leaf := chain[0]
	switch leaf.Kind {
	case rdd.KindSource:
		rows := leaf.Gen(t.Part)
		work := float64(len(rows)) * leaf.CostPerRow
		bytes := int64(len(rows)) * int64(leaf.RowBytes)
		s.finishLeaf(t, e, chain, rows, work, bytes)

	case rdd.KindShuffled:
		sid := s.c.shuffleIDFor(leaf, 0)
		s.fetchSide(t, e, sid, func(buckets [][]rdd.Row, fetched int64) {
			groups := shuffle.Regroup(buckets, leaf.KeyFn)
			rows := leaf.PostShuffleFn(t.Part, groups)
			work := s.readWork(leaf, buckets, fetched)
			bytes := fetched + int64(len(rows))*int64(leaf.RowBytes)
			s.finishLeaf(t, e, chain, rows, work, bytes)
		})

	case rdd.KindCoGrouped:
		leftSID := s.c.shuffleIDFor(leaf, 0)
		rightSID := s.c.shuffleIDFor(leaf, 1)
		s.fetchSide(t, e, leftSID, func(lb [][]rdd.Row, lBytes int64) {
			s.fetchSide(t, e, rightSID, func(rb [][]rdd.Row, rBytes int64) {
				left := shuffle.Regroup(lb, leaf.LeftKeyFn)
				right := shuffle.Regroup(rb, leaf.RightKeyFn)
				rows := leaf.CoGroupFn(t.Part, left, right)
				work := s.readWork(leaf, lb, lBytes) + s.readWork(leaf, rb, rBytes)
				bytes := lBytes + rBytes + int64(len(rows))*int64(leaf.RowBytes)
				s.finishLeaf(t, e, chain, rows, work, bytes)
			})
		})

	default:
		panic("engine: impossible leaf kind")
	}
}

// readWork charges CPU for consuming fetched rows: the wide node's per-row
// cost plus deserialization per byte.
func (s *scheduler) readWork(leaf *rdd.RDD, buckets [][]rdd.Row, bytes int64) float64 {
	n := 0
	for _, b := range buckets {
		n += len(b)
	}
	return float64(n)*leaf.CostPerRow + float64(bytes)*s.c.cfg.Perf.SerUnitsPerByte
}

// fetchSide pulls the shuffle blocks for (shuffleID, t.Part), delivering
// per-map-partition row buckets. Fetch failure goes through the rollback
// path.
func (s *scheduler) fetchSide(t *Task, e *Executor, shuffleID int, k func(buckets [][]rdd.Row, bytes int64)) {
	ids, total, ok := s.c.tracker.FetchSpec(shuffleID, t.Part)
	if !ok {
		s.onFetchFailed(t, e, shuffleID)
		return
	}
	fetchStart := s.c.cfg.Clock.Now()
	if len(ids) == 0 {
		s.c.cfg.Clock.After(0, func() {
			if t.cancelled {
				return
			}
			k(nil, 0)
		})
		return
	}
	s.c.cfg.Store.FetchAll(ids, e.IO, func(blocks []storage.Block, err error) {
		if t.cancelled {
			return
		}
		if err != nil {
			if errors.Is(err, storage.ErrNotFound) {
				s.onFetchFailed(t, e, shuffleID)
				return
			}
			s.abort(t.Job, fmt.Errorf("engine: shuffle fetch: %w", err))
			return
		}
		buckets := make([][]rdd.Row, len(blocks))
		for i, b := range blocks {
			rows, okRows := b.Payload.([]rdd.Row)
			if !okRows && b.Payload != nil {
				s.abort(t.Job, fmt.Errorf("engine: shuffle block %s has payload %T", b.ID, b.Payload))
				return
			}
			buckets[i] = rows
		}
		s.c.insts.shuffleRead[kindIdx(e.Kind)].Add(float64(total))
		s.c.insts.fetchLatency[kindIdx(e.Kind)].ObserveDuration(s.c.cfg.Clock.Now().Sub(fetchStart))
		k(buckets, total)
	})
}

// finishLeaf continues from materialised leaf rows (index 0 of the chain).
func (s *scheduler) finishLeaf(t *Task, e *Executor, chain []*rdd.RDD, rows []rdd.Row, work float64, inBytes int64) {
	if chain[0].Cached {
		s.c.cachePut(e, cachedPart{rddID: chain[0].ID, part: t.Part}, rows, int64(len(rows))*int64(chain[0].RowBytes))
	}
	s.computeAndWrite(t, e, chain, 0, rows, work, inBytes)
}

// computeAndWrite applies the narrow chain above startIdx, charges compute
// time, then writes the stage output (shuffle buckets or a result flow).
func (s *scheduler) computeAndWrite(t *Task, e *Executor, chain []*rdd.RDD, startIdx int, rows []rdd.Row, work float64, inBytes int64) {
	for i := startIdx + 1; i < len(chain); i++ {
		node := chain[i]
		work += float64(len(rows)) * node.CostPerRow
		rows = node.NarrowFn(t.Part, rows)
		if node.Cached {
			s.c.cachePut(e, cachedPart{rddID: node.ID, part: t.Part}, rows, int64(len(rows))*int64(node.RowBytes))
		}
	}
	target := chain[len(chain)-1]
	outBytes := int64(len(rows)) * int64(target.RowBytes)

	if t.Stage.Kind == StageShuffleMap {
		wide := t.Stage.Wide
		keyFn := keyFnFor(wide, t.Stage.Side)
		buckets := shuffle.Partition(rows, keyFn, wide.Parts, mergeFnFor(wide))
		var blocks []storage.Block
		status := &shuffle.MapStatus{
			MapPart:  t.Part,
			ExecID:   e.ID,
			HostID:   e.HostID,
			BlockIDs: make([]string, wide.Parts),
			Sizes:    make([]int64, wide.Parts),
		}
		var shuffleBytes int64
		for r, bucket := range buckets {
			id := shuffle.BlockID(s.c.cfg.AppID, e.ID, t.Stage.ShuffleID, t.Part, r)
			status.BlockIDs[r] = id
			size := int64(len(bucket)) * int64(target.RowBytes)
			status.Sizes[r] = size
			shuffleBytes += size
			if size > 0 {
				blocks = append(blocks, storage.Block{ID: id, Payload: bucket, Size: size})
			}
		}
		s.c.insts.shuffleWritten[kindIdx(e.Kind)].Add(float64(shuffleBytes))
		s.c.insts.blocksWritten.Add(float64(len(blocks)))
		work += float64(shuffleBytes) * s.c.cfg.Perf.SerUnitsPerByte
		d := e.ComputeTime(s.c.cfg.Perf, work, inBytes+outBytes, s.c.cfg.Clock.Now())
		s.c.cfg.Clock.After(d, func() {
			if t.cancelled {
				return
			}
			s.c.cfg.Store.PutAll(blocks, e.IO, func(err error) {
				if t.cancelled {
					return
				}
				if err != nil {
					s.abort(t.Job, fmt.Errorf("engine: shuffle write: %w", err))
					return
				}
				s.c.tracker.AddMapOutput(t.Stage.ShuffleID, status)
				s.onTaskFinished(t, e)
			})
		})
		return
	}

	// Result stage: rows flow back to the driver.
	d := e.ComputeTime(s.c.cfg.Perf, work, inBytes+outBytes, s.c.cfg.Clock.Now())
	finalRows := rows
	s.c.cfg.Clock.After(d, func() {
		if t.cancelled {
			return
		}
		deliver := func() {
			if t.cancelled {
				return
			}
			if finalRows == nil {
				finalRows = []rdd.Row{}
			}
			t.Job.results[t.Part] = finalRows
			s.onTaskFinished(t, e)
		}
		if outBytes > 0 && len(e.IO.Net) > 0 {
			s.c.cfg.Net.StartFlow(float64(outBytes), e.IO.RateCap, e.IO.Net, deliver)
		} else {
			s.c.cfg.Clock.After(0, deliver)
		}
	})
}
