package engine

// allocManager is the ExecutorAllocationManager: in static mode it pins
// the executor target at Alloc.Max from the start; in dynamic mode it
// watches the task backlog, ramping the requested executor count
// exponentially (1, 2, 4, ...) while backlog persists, and releases
// executors idle past the idle timeout — Spark's dynamic allocation, which
// the `Spark r/R autoscale` baseline exercises.
type allocManager struct {
	c        *Cluster
	target   int
	addBatch int
	ticking  bool
	idleGen  map[string]int // executor ID -> idle epoch (invalidates timers)
}

func newAllocManager(c *Cluster) *allocManager {
	return &allocManager{c: c, addBatch: 1, idleGen: make(map[string]int)}
}

func (a *allocManager) cfg() AllocConfig { return a.c.cfg.Alloc }

func (a *allocManager) start() {
	switch a.cfg().Mode {
	case AllocStatic:
		a.target = a.cfg().Max
		a.c.cfg.Backend.SetDesiredTotal(a.target)
	case AllocDynamic:
		a.target = a.cfg().Min
		a.c.cfg.Backend.SetDesiredTotal(a.target)
	}
	a.c.insts.targetExecs.Set(float64(a.target))
}

func (a *allocManager) onJobStart() {
	if a.cfg().Mode == AllocDynamic && !a.ticking {
		a.ticking = true
		a.scheduleTick()
	}
}

func (a *allocManager) onJobEnd() {
	a.ticking = false
	a.addBatch = 1
}

func (a *allocManager) scheduleTick() {
	a.c.cfg.Clock.After(a.cfg().RampInterval, func() {
		if !a.ticking {
			return
		}
		a.tick()
		a.scheduleTick()
	})
}

// tick evaluates the backlog and ramps the executor target.
func (a *allocManager) tick() {
	if a.c.job == nil || a.c.job.done {
		return
	}
	if a.c.sched.backlog() {
		if a.target < a.cfg().Max {
			a.target += a.addBatch
			if a.target > a.cfg().Max {
				a.target = a.cfg().Max
			}
			a.addBatch *= 2
			a.c.insts.scaleUp.Inc()
			a.c.insts.targetExecs.Set(float64(a.target))
			a.c.cfg.Backend.SetDesiredTotal(a.target)
		}
	} else {
		a.addBatch = 1
	}
}

// onBacklogChange arms idle-release timers for executors that just went
// idle (dynamic mode only).
func (a *allocManager) onBacklogChange() {
	if a.cfg().Mode != AllocDynamic || a.cfg().IdleTimeout <= 0 {
		return
	}
	for _, id := range a.c.order {
		e := a.c.execs[id]
		if e.State != ExecFree {
			continue
		}
		id := id
		a.idleGen[id]++
		gen := a.idleGen[id]
		idleAt := e.IdleSince
		a.c.cfg.Clock.After(a.cfg().IdleTimeout, func() {
			ex := a.c.execs[id]
			if ex == nil || ex.State != ExecFree || a.idleGen[id] != gen {
				return
			}
			if !ex.IdleSince.Equal(idleAt) {
				return // was busy in between
			}
			if a.target > a.cfg().Min {
				a.target--
			}
			a.c.insts.scaleDown.Inc()
			a.c.insts.targetExecs.Set(float64(a.target))
			a.c.cfg.Backend.ReleaseIdle(ex)
		})
	}
}
