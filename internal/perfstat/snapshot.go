package perfstat

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"time"
)

// SchemaV1 identifies the snapshot JSON layout. Fields are only ever
// added, never renamed or removed, within a schema version.
const SchemaV1 = "splitserve-perfstat/v1"

// Snapshot is the collector's stable-schema JSON output. It is host-side
// wall-clock data: Deterministic is always false, distinguishing it from
// the byte-identical virtual-time reports and event logs.
type Snapshot struct {
	Schema        string `json:"schema"`
	Deterministic bool   `json:"deterministic"`
	// Commit and Label tie the snapshot to a point in the perf
	// trajectory: the git commit that produced it (-commit flag, or the
	// SPLITSERVE_COMMIT environment variable) and the command's config
	// label. Comparisons ignore both — they are provenance, not metrics.
	Commit      string  `json:"commit,omitempty"`
	Label       string  `json:"label,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`

	// EventsFired counts simclock events fired across all attached
	// clocks; EventsPerSec divides by wall time — the simulator's raw
	// event-loop throughput.
	EventsFired  uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`

	// AllocsPerEvent / BytesPerEvent are heap allocation deltas (from
	// runtime/metrics) divided by events fired.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`

	Clock ClockStats `json:"clock"`

	// StepWall is the wall-clock cost distribution of one simclock Step;
	// HandoffWall of one scheduler↔workload goroutine handoff.
	StepWall    DurStats `json:"step_wall"`
	HandoffWall DurStats `json:"handoff_wall"`

	// Yields counts workload parks on the engine yield path.
	Yields uint64 `json:"yields"`

	// Occupancy splits wall time into Step execution, goroutine handoff,
	// and everything else (setup, report building, GC, ...).
	Occupancy Occupancy `json:"occupancy"`

	// RunQueue summarises cluster scheduler run-queue depth samples.
	RunQueue DepthStats `json:"run_queue"`

	// EventTypes counts emitted eventlog events by subsystem and type.
	EventTypes map[string]map[string]uint64 `json:"event_types,omitempty"`
}

// ClockStats are the simclock self-observation counters.
type ClockStats struct {
	// HeapHighWater is the deepest the event queue got (ghosts included);
	// the name predates the timer wheel and is kept for schema stability.
	HeapHighWater int `json:"heap_high_water"`
	// Cancelled counts timers cancelled before firing; GhostsLive is the
	// cancelled entries still occupying heap slots at snapshot time;
	// Compactions counts heap rebuilds that shed ghosts.
	Cancelled   uint64 `json:"cancelled"`
	GhostsLive  int    `json:"ghosts_live"`
	Compactions uint64 `json:"compactions"`
}

// DurStats summarises a wall-duration distribution in microseconds.
type DurStats struct {
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	P50US        float64 `json:"p50_us"`
	P99US        float64 `json:"p99_us"`
	MaxUS        float64 `json:"max_us"`
}

// Occupancy is the clock-loop wall-time split, each in [0, 1].
type Occupancy struct {
	StepFraction    float64 `json:"step_fraction"`
	HandoffFraction float64 `json:"handoff_fraction"`
	OtherFraction   float64 `json:"other_fraction"`
}

// DepthStats summarises run-queue depth samples.
type DepthStats struct {
	Samples uint64  `json:"samples"`
	Max     int     `json:"max"`
	Mean    float64 `json:"mean"`
}

// JSON renders the snapshot indented. Map keys are sorted by
// encoding/json, so the layout is stable (the *values* are wall-clock
// measurements and of course are not).
func (s *Snapshot) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ParseSnapshot loads a snapshot written by JSON, rejecting other schemas.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perfstat: %w", err)
	}
	if s.Schema != SchemaV1 {
		return nil, fmt.Errorf("perfstat: unknown schema %q (want %s)", s.Schema, SchemaV1)
	}
	return &s, nil
}

// durHist is a fixed-size log-linear histogram of durations (HDR-style:
// power-of-two octaves split into 8 linear sub-buckets, ≈9%% worst-case
// relative error), sized for nanoseconds up to ~292 years. It exists so
// a 10M-event run records percentiles in constant memory instead of
// retaining every sample.
type durHist struct {
	buckets [64 * subBuckets]uint64
	count   uint64
	max     time.Duration
}

const subBuckets = 8

func bucketIndex(d time.Duration) int {
	v := uint64(d)
	if v < subBuckets {
		return int(v) // exact for the tiniest durations
	}
	octave := bits.Len64(v) - 1 // position of the leading bit
	// The 3 bits below the leading bit pick the linear sub-bucket.
	sub := (v >> (uint(octave) - 3)) & (subBuckets - 1)
	return octave*subBuckets + int(sub)
}

// bucketLow returns the lower bound of bucket i, the inverse of
// bucketIndex's quantisation.
func bucketLow(i int) float64 {
	if i <= subBuckets { // exact region (and its upper fence)
		return float64(i)
	}
	octave := i / subBuckets
	sub := i % subBuckets
	return math.Ldexp(1+float64(sub)/subBuckets, octave)
}

func (h *durHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)]++
	h.count++
	if d > h.max {
		h.max = d
	}
}

// quantile estimates the q-quantile in nanoseconds by midpoint of the
// containing bucket.
func (h *durHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var seen float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		seen += float64(n)
		if seen >= rank {
			lo := bucketLow(i)
			hi := bucketLow(i + 1)
			return (lo + hi) / 2
		}
	}
	return float64(h.max)
}

func (h *durHist) stats(total time.Duration) DurStats {
	return DurStats{
		Count:        h.count,
		TotalSeconds: total.Seconds(),
		P50US:        h.quantile(0.50) / 1e3,
		P99US:        h.quantile(0.99) / 1e3,
		MaxUS:        float64(h.max.Nanoseconds()) / 1e3,
	}
}
