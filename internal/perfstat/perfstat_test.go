package perfstat

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/simclock"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	// None of these may panic.
	c.AttachClock(simclock.New(simclock.Epoch))
	c.ObserveStep(time.Millisecond)
	c.ObserveHandoff(time.Millisecond)
	c.CountYield()
	c.SampleQueueDepth(3)
	c.ObserveBus(eventlog.NewBus(simclock.Epoch))
	if snap := c.Snapshot(); snap != nil {
		t.Fatalf("nil collector snapshot = %+v, want nil", snap)
	}
}

func TestCollectorObservesClockAndBus(t *testing.T) {
	c := New()
	clock := simclock.New(simclock.Epoch)
	bus := eventlog.NewBus(simclock.Epoch)
	c.AttachClock(clock)
	c.ObserveBus(bus)

	for i := 0; i < 100; i++ {
		clock.After(time.Duration(i)*time.Millisecond, func() {
			bus.Emit(clock.Now(), eventlog.Ev(eventlog.TaskStart))
		})
	}
	tm := clock.After(time.Hour, func() {})
	tm.Cancel()
	clock.Run()
	c.SampleQueueDepth(2)
	c.SampleQueueDepth(6)

	snap := c.Snapshot()
	if snap.Schema != SchemaV1 {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if snap.Deterministic {
		t.Fatal("snapshot claims to be deterministic")
	}
	if snap.EventsFired != 100 {
		t.Fatalf("events fired = %d, want 100", snap.EventsFired)
	}
	if snap.StepWall.Count != 100 {
		t.Fatalf("step observations = %d, want 100", snap.StepWall.Count)
	}
	if snap.EventsPerSec <= 0 || snap.AllocsPerEvent < 0 {
		t.Fatalf("throughput not populated: %+v", snap)
	}
	if snap.Clock.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", snap.Clock.Cancelled)
	}
	if snap.Clock.HeapHighWater < 100 {
		t.Fatalf("heap high water = %d, want >= 100", snap.Clock.HeapHighWater)
	}
	if got := snap.EventTypes["engine"]["task_start"]; got != 100 {
		t.Fatalf("engine/task_start count = %d, want 100", got)
	}
	if snap.RunQueue.Samples != 2 || snap.RunQueue.Max != 6 || snap.RunQueue.Mean != 4 {
		t.Fatalf("run queue stats = %+v", snap.RunQueue)
	}
}

func TestAttachClockSpansRuns(t *testing.T) {
	c := New()
	for run := 0; run < 3; run++ {
		clock := simclock.New(simclock.Epoch)
		c.AttachClock(clock)
		for i := 0; i < 10; i++ {
			clock.After(time.Second, func() {})
		}
		clock.Run()
	}
	snap := c.Snapshot()
	if snap.EventsFired != 30 {
		t.Fatalf("events across 3 runs = %d, want 30", snap.EventsFired)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := New()
	clock := simclock.New(simclock.Epoch)
	c.AttachClock(clock)
	clock.After(0, func() {})
	clock.Run()
	snap := c.Snapshot()
	snap.Commit = "deadbee"
	snap.Label = "roundtrip"
	buf, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"deterministic": false`) {
		t.Fatalf("snapshot JSON missing the deterministic:false marker:\n%s", buf)
	}
	back, err := ParseSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.EventsFired != 1 {
		t.Fatalf("round-trip events = %d, want 1", back.EventsFired)
	}
	if back.Commit != "deadbee" || back.Label != "roundtrip" {
		t.Fatalf("provenance stamp lost in round trip: commit=%q label=%q", back.Commit, back.Label)
	}
	if _, err := ParseSnapshot([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("ParseSnapshot accepted an unknown schema")
	}
	var generic map[string]any
	if err := json.Unmarshal(buf, &generic); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "deterministic", "wall_seconds", "events_fired",
		"events_per_sec", "allocs_per_event", "bytes_per_event", "clock", "step_wall",
		"handoff_wall", "yields", "occupancy", "run_queue"} {
		if _, ok := generic[key]; !ok {
			t.Fatalf("snapshot JSON missing stable key %q", key)
		}
	}
}

func TestDurHistQuantiles(t *testing.T) {
	var h durHist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.quantile(0.50) / 1e3 // -> µs
	p99 := h.quantile(0.99) / 1e3
	if p50 < 350 || p50 > 650 {
		t.Fatalf("p50 = %.1fµs, want ≈500µs", p50)
	}
	if p99 < 850 || p99 > 1100 {
		t.Fatalf("p99 = %.1fµs, want ≈990µs", p99)
	}
	st := h.stats(time.Second)
	if st.Count != 1000 || st.MaxUS != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDurHistBucketInverse(t *testing.T) {
	for _, d := range []time.Duration{0, 1, 7, 8, 100, 1023, 1024, 1 << 20, 3 * time.Second} {
		i := bucketIndex(d)
		lo, hi := bucketLow(i), bucketLow(i+1)
		v := float64(d)
		if v < lo || (v >= hi && hi > lo) {
			t.Fatalf("d=%v: bucket %d bounds [%.0f, %.0f) exclude it", d, i, lo, hi)
		}
	}
}
