// Package perfstat is the simulator's third observability layer: the
// simulator observing *itself*. Where internal/telemetry and
// internal/eventlog record what happened inside the simulated cluster on
// the virtual clock, perfstat records what the host paid to compute it —
// wall-clock time per simclock step, allocations per event, clock-loop
// occupancy, event-heap pressure, and scheduler run-queue depth.
//
// The two time bases are strictly separated: a Collector only *reads*
// simulation state (counters, the event stream) and never schedules,
// emits, or draws randomness, so enabling it leaves same-seed reports and
// event logs byte-identical (enforced by TestPerfstatDeterminismIsolation
// in internal/cluster). Its own output is wall-clock data and therefore
// explicitly non-deterministic; the snapshot schema carries a
// "deterministic": false marker so downstream tooling can never confuse
// the two.
//
// A nil *Collector is a valid no-op — every method checks the receiver —
// so call sites wire profiling unconditionally and pay nothing when it is
// off.
package perfstat

import (
	"runtime/metrics"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/simclock"
)

// Collector accumulates host-side profiling over one or more simulation
// runs. Construct with New immediately before the work being measured;
// call Snapshot once at the end. Attach methods may be called repeatedly
// (e.g. once per sweep sample) — AttachClock folds the previous clock's
// counters into the running totals first.
//
// Collector is not safe for concurrent use by multiple simulations; the
// repo's simulations are single-threaded by design (handoffs between the
// scheduler and workload goroutines are synchronous), which is exactly
// the property that makes lock-free collection here correct.
type Collector struct {
	startWall   time.Time
	startAllocs uint64
	startBytes  uint64

	clock       *simclock.Clock
	clockFired0 uint64

	eventsFired   uint64 // from detached clocks
	heapHighWater int
	cancelled     uint64
	ghosts        int
	compactions   uint64

	stepHist    durHist
	handoffHist durHist
	stepBusy    time.Duration
	handoffBusy time.Duration

	yields uint64

	queueSamples uint64
	queueSum     float64
	queueMax     int

	eventTypes map[eventlog.Type]uint64
	buses      map[*eventlog.Bus]bool
}

// runtime/metrics sample keys read at start and snapshot; the deltas give
// allocs/event and bytes/event.
var memSamples = []metrics.Sample{
	{Name: "/gc/heap/allocs:objects"},
	{Name: "/gc/heap/allocs:bytes"},
}

func readAllocs() (objects, bytes uint64) {
	s := make([]metrics.Sample, len(memSamples))
	copy(s, memSamples)
	metrics.Read(s)
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}

// New returns an enabled Collector whose wall clock and allocation
// baselines start now.
func New() *Collector {
	c := &Collector{
		startWall:  time.Now(),
		eventTypes: make(map[eventlog.Type]uint64),
	}
	c.startAllocs, c.startBytes = readAllocs()
	return c
}

// Enabled reports whether profiling is on (the collector is non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// AttachClock starts observing cl: per-step wall timing and, at snapshot
// time, its fired/heap/cancel counters. Attaching a new clock folds the
// previous one's counters into the running totals, so one collector can
// span a sweep of runs.
func (c *Collector) AttachClock(cl *simclock.Clock) {
	if c == nil {
		return
	}
	c.detachClock()
	c.clock = cl
	c.clockFired0 = cl.Fired()
	cl.SetStepObserver(c)
}

// detachClock folds the current clock's counters into the totals.
func (c *Collector) detachClock() {
	cl := c.clock
	if cl == nil {
		return
	}
	c.eventsFired += cl.Fired() - c.clockFired0
	if hw := cl.HeapHighWater(); hw > c.heapHighWater {
		c.heapHighWater = hw
	}
	c.cancelled += cl.Cancelled()
	c.ghosts = cl.Ghosts()
	c.compactions += cl.Compactions()
	cl.SetStepObserver(nil)
	c.clock = nil
}

// ObserveStep implements simclock.StepObserver.
func (c *Collector) ObserveStep(wall time.Duration) {
	if c == nil {
		return
	}
	c.stepHist.observe(wall)
	c.stepBusy += wall
}

// ObserveHandoff records one scheduler↔workload goroutine handoff: the
// wall time from resuming a parked workload until it parks (or finishes)
// again — the engine yield protocol's per-wakeup cost.
func (c *Collector) ObserveHandoff(wall time.Duration) {
	if c == nil {
		return
	}
	c.handoffHist.observe(wall)
	c.handoffBusy += wall
}

// CountYield counts one workload park on the engine yield path.
func (c *Collector) CountYield() {
	if c == nil {
		return
	}
	c.yields++
}

// SampleQueueDepth records one observation of the cluster scheduler's
// run-queue depth (jobs queued or parked awaiting resume).
func (c *Collector) SampleQueueDepth(depth int) {
	if c == nil {
		return
	}
	c.queueSamples++
	c.queueSum += float64(depth)
	if depth > c.queueMax {
		c.queueMax = depth
	}
}

// ObserveBus subscribes the collector to b, counting every event by type.
// Counting happens on the emission path but never mutates it. Subscribing
// the same bus twice is a no-op, so sweep runners sharing one bus can
// attach per run without double counting.
func (c *Collector) ObserveBus(b *eventlog.Bus) {
	if c == nil || b == nil || c.buses[b] {
		return
	}
	if c.buses == nil {
		c.buses = make(map[*eventlog.Bus]bool)
	}
	c.buses[b] = true
	b.Subscribe(func(e eventlog.Event) { c.eventTypes[e.Type]++ })
}

// Snapshot finalises collection and returns the schema-stable result.
// The collector keeps accumulating if used further, but the usual shape
// is one Snapshot at process exit.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	c.detachClock()
	wall := time.Since(c.startWall)
	allocs, bytes := readAllocs()
	dAllocs := float64(allocs - c.startAllocs)
	dBytes := float64(bytes - c.startBytes)

	s := &Snapshot{
		Schema:        SchemaV1,
		Deterministic: false,
		WallSeconds:   wall.Seconds(),
		EventsFired:   c.eventsFired,
		Clock: ClockStats{
			HeapHighWater: c.heapHighWater,
			Cancelled:     c.cancelled,
			GhostsLive:    c.ghosts,
			Compactions:   c.compactions,
		},
		StepWall:    c.stepHist.stats(c.stepBusy),
		HandoffWall: c.handoffHist.stats(c.handoffBusy),
		Yields:      c.yields,
		EventTypes:  groupTypes(c.eventTypes),
	}
	if wall > 0 {
		s.EventsPerSec = float64(c.eventsFired) / wall.Seconds()
		s.Occupancy = Occupancy{
			StepFraction:    c.stepBusy.Seconds() / wall.Seconds(),
			HandoffFraction: c.handoffBusy.Seconds() / wall.Seconds(),
		}
		s.Occupancy.OtherFraction = 1 - s.Occupancy.StepFraction - s.Occupancy.HandoffFraction
		if s.Occupancy.OtherFraction < 0 {
			s.Occupancy.OtherFraction = 0
		}
	}
	if c.eventsFired > 0 {
		s.AllocsPerEvent = dAllocs / float64(c.eventsFired)
		s.BytesPerEvent = dBytes / float64(c.eventsFired)
	}
	if c.queueSamples > 0 {
		s.RunQueue = DepthStats{
			Samples: c.queueSamples,
			Max:     c.queueMax,
			Mean:    c.queueSum / float64(c.queueSamples),
		}
	}
	return s
}

// groupTypes buckets raw event-type counts by emitting subsystem, the
// same grouping OBSERVABILITY.md documents for the event vocabulary.
func groupTypes(raw map[eventlog.Type]uint64) map[string]map[string]uint64 {
	if len(raw) == 0 {
		return nil
	}
	out := make(map[string]map[string]uint64)
	for t, n := range raw {
		sub := subsystemOf(t)
		m := out[sub]
		if m == nil {
			m = make(map[string]uint64)
			out[sub] = m
		}
		m[string(t)] = n
	}
	return out
}

func subsystemOf(t eventlog.Type) string {
	switch t {
	case eventlog.JobStart, eventlog.JobEnd, eventlog.StageStart, eventlog.StageEnd,
		eventlog.TaskStart, eventlog.TaskEnd, eventlog.TaskFailed, eventlog.TaskSpeculated,
		eventlog.StageResubmitted, eventlog.ExecutorAdd, eventlog.ExecutorDrain,
		eventlog.ExecutorRemove, eventlog.Segue:
		return "engine"
	case eventlog.ShuffleWrite, eventlog.ShuffleRead:
		return "shuffle"
	case eventlog.HDFSWrite, eventlog.HDFSRead:
		return "hdfs"
	case eventlog.VMRequest, eventlog.VMReady, eventlog.LambdaInvoke, eventlog.LambdaReady,
		eventlog.LambdaRelease, eventlog.CoreLease, eventlog.CoreRelease, eventlog.VMReleaseIdle:
		return "cloud"
	case eventlog.ClusterArrive, eventlog.ClusterAdmit, eventlog.ClusterFinish,
		eventlog.ClusterFail, eventlog.SLOViolate, eventlog.SegueCoreGrant,
		eventlog.AutoscaleOrder, eventlog.ClusterShed, eventlog.ClusterDelay:
		return "cluster"
	case eventlog.CostPick:
		return "costmgr"
	case eventlog.LambdaWarmHit, eventlog.TmpCacheHit, eventlog.TmpCacheEvict,
		eventlog.WarmpoolResize:
		return "warmpool"
	case eventlog.ShardAssign, eventlog.ShardSteal, eventlog.TenantReport:
		return "shard"
	default:
		return "other"
	}
}
