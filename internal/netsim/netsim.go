// Package netsim models shared bandwidth resources for the SplitServe
// simulator: EBS volumes, VM NICs, Lambda egress links, and the S3 frontend
// are all Pools with a byte/s capacity; transfers are Flows that traverse
// one or more pools.
//
// Active flows share each pool max-min fairly: rates are assigned by
// progressive filling (water-filling), honouring per-flow rate caps, and the
// allocation is recomputed from scratch whenever a flow starts or finishes.
// This reproduces the paper's central bandwidth story — e.g. a single
// 750 Mbps EBS volume under a colocated master+HDFS node throttling 16
// concurrent shuffle readers — with event-accurate completion times.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"splitserve/internal/simclock"
)

// Epsilon below which a flow's remaining bytes count as zero.
const epsilonBytes = 1e-6

// Network owns pools and active flows and drives rate recomputation on the
// simulation clock.
type Network struct {
	clock   *simclock.Clock
	flows   []*Flow
	seq     int
	poolSeq int
}

// Pool is a shared bandwidth resource (bytes per second).
type Pool struct {
	id       int
	name     string
	capacity float64
	flows    []*Flow
}

// Flow is a transfer of a fixed number of bytes across a set of pools,
// optionally limited by its own rate cap (e.g. a Lambda's memory-
// proportional egress bandwidth).
type Flow struct {
	id        int
	remaining float64
	rateCap   float64 // 0 means unlimited
	pools     []*Pool
	rate      float64
	settledAt time.Time
	timer     *simclock.Timer
	done      func()
	finished  bool
}

// New returns a Network driven by clock.
func New(clock *simclock.Clock) *Network {
	return &Network{clock: clock}
}

// NewPool creates a bandwidth pool. Capacity must be positive.
func (n *Network) NewPool(name string, capacityBytesPerSec float64) *Pool {
	if capacityBytesPerSec <= 0 {
		panic(fmt.Sprintf("netsim: pool %q with non-positive capacity", name))
	}
	n.poolSeq++
	return &Pool{
		id:       n.poolSeq,
		name:     name,
		capacity: capacityBytesPerSec,
	}
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Capacity returns the pool's capacity in bytes/s.
func (p *Pool) Capacity() float64 { return p.capacity }

// ActiveFlows returns the number of flows currently traversing the pool.
func (p *Pool) ActiveFlows() int { return len(p.flows) }

// StartFlow begins a transfer of bytes across pools, with an optional
// per-flow rate cap (0 = unlimited), calling done when the last byte
// arrives. A flow must traverse at least one pool or carry a positive cap.
// Zero-byte flows complete on the next event-loop tick.
func (n *Network) StartFlow(bytes float64, rateCap float64, pools []*Pool, done func()) *Flow {
	if bytes < 0 {
		panic("netsim: negative flow size")
	}
	if len(pools) == 0 && rateCap <= 0 {
		panic("netsim: flow with neither pools nor a rate cap would be infinitely fast")
	}
	f := &Flow{
		id:        n.seq,
		remaining: bytes,
		rateCap:   rateCap,
		pools:     append([]*Pool(nil), pools...),
		settledAt: n.clock.Now(),
		done:      done,
	}
	n.seq++
	n.flows = append(n.flows, f)
	for _, p := range f.pools {
		p.flows = append(p.flows, f)
	}
	n.recompute()
	return f
}

// Cancel aborts an in-progress flow (e.g. its executor died). The done
// callback is not invoked. It reports whether the flow was still active.
func (n *Network) Cancel(f *Flow) bool {
	if f == nil || f.finished {
		return false
	}
	n.settleAll()
	n.detach(f)
	n.recompute()
	return true
}

// Remaining returns the flow's unfinished byte count as of the current
// virtual time.
func (n *Network) Remaining(f *Flow) float64 {
	if f.finished {
		return 0
	}
	elapsed := n.clock.Since(f.settledAt).Seconds()
	return math.Max(0, f.remaining-f.rate*elapsed)
}

// Rate returns the flow's current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// ActiveFlows returns the number of in-flight flows network-wide.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// detach removes a flow from the network and its pools and cancels its
// completion timer.
func (n *Network) detach(f *Flow) {
	f.finished = true
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	n.flows = removeFlow(n.flows, f)
	for _, p := range f.pools {
		p.flows = removeFlow(p.flows, f)
	}
}

func removeFlow(flows []*Flow, f *Flow) []*Flow {
	for i, x := range flows {
		if x == f {
			return append(flows[:i], flows[i+1:]...)
		}
	}
	return flows
}

// settleAll folds elapsed progress into every flow's remaining count so a
// fresh rate assignment can start from "now".
func (n *Network) settleAll() {
	now := n.clock.Now()
	for _, f := range n.flows {
		elapsed := now.Sub(f.settledAt).Seconds()
		if elapsed > 0 && f.rate > 0 {
			f.remaining = math.Max(0, f.remaining-f.rate*elapsed)
		}
		f.settledAt = now
	}
}

// recompute settles progress, runs progressive filling to assign max-min
// fair rates, and reschedules completion events.
func (n *Network) recompute() {
	n.settleAll()

	// Progressive filling. Residual capacity per pool; unassigned flows.
	// All iteration is over insertion-ordered slices (pools sorted by
	// creation ID) so rate assignment and event scheduling are fully
	// deterministic.
	residual := make(map[*Pool]float64)
	remainingFlows := make(map[*Pool]int)
	var pools []*Pool
	seenPool := make(map[*Pool]bool)
	for _, f := range n.flows {
		for _, p := range f.pools {
			if !seenPool[p] {
				seenPool[p] = true
				pools = append(pools, p)
			}
		}
	}
	sort.Slice(pools, func(i, j int) bool { return pools[i].id < pools[j].id })
	for _, p := range pools {
		residual[p] = p.capacity
		remainingFlows[p] = len(p.flows)
	}

	unassigned := make(map[*Flow]struct{}, len(n.flows))
	for _, f := range n.flows {
		f.rate = 0
		unassigned[f] = struct{}{}
	}

	assign := func(f *Flow, rate float64) {
		f.rate = rate
		delete(unassigned, f)
		for _, p := range f.pools {
			residual[p] -= rate
			if residual[p] < 0 {
				residual[p] = 0
			}
			remainingFlows[p]--
		}
	}

	for len(unassigned) > 0 {
		// Fair share at the tightest pool.
		minShare := math.Inf(1)
		for _, p := range pools {
			if remainingFlows[p] > 0 {
				share := residual[p] / float64(remainingFlows[p])
				if share < minShare {
					minShare = share
				}
			}
		}
		// A flow capped below the fair share takes its cap.
		minCap := math.Inf(1)
		for f := range unassigned {
			if f.rateCap > 0 && f.rateCap < minCap {
				minCap = f.rateCap
			}
		}
		if minCap < minShare {
			for _, f := range n.flows {
				if _, ok := unassigned[f]; ok && f.rateCap > 0 && f.rateCap <= minCap {
					assign(f, f.rateCap)
				}
			}
			continue
		}
		if math.IsInf(minShare, 1) {
			// Only capless, pool-less flows remain (cannot happen given the
			// StartFlow invariant), or caps equal infinity; guard anyway.
			for _, f := range n.flows {
				if _, ok := unassigned[f]; ok {
					assign(f, math.Max(f.rateCap, 1))
				}
			}
			break
		}
		// Assign flows bottlenecked at a pool whose share equals minShare.
		progressed := false
		for _, p := range pools {
			if remainingFlows[p] == 0 {
				continue
			}
			share := residual[p] / float64(remainingFlows[p])
			if share <= minShare*(1+1e-12) {
				for _, f := range p.flows {
					if _, ok := unassigned[f]; !ok {
						continue
					}
					rate := share
					if f.rateCap > 0 && f.rateCap < rate {
						rate = f.rateCap
					}
					assign(f, rate)
					progressed = true
				}
			}
		}
		if !progressed {
			// Defensive: should be unreachable; avoid an infinite loop.
			for _, f := range n.flows {
				if _, ok := unassigned[f]; ok {
					assign(f, minShare)
				}
			}
		}
	}

	n.reschedule()
}

// reschedule replaces every flow's completion timer according to its new
// rate.
func (n *Network) reschedule() {
	for _, f := range n.flows {
		if f.timer != nil {
			f.timer.Cancel()
			f.timer = nil
		}
		if f.remaining <= epsilonBytes {
			n.completeAt(f, 0)
			continue
		}
		if f.rate <= 0 {
			continue // stalled; a future recompute will revive it
		}
		n.completeAt(f, time.Duration(f.remaining/f.rate*float64(time.Second)))
	}
}

func (n *Network) completeAt(f *Flow, d time.Duration) {
	f.timer = n.clock.After(d, func() {
		if f.finished {
			return
		}
		n.settleAll()
		f.remaining = 0
		n.detach(f)
		n.recompute()
		if f.done != nil {
			f.done()
		}
	})
}

// TransferTime is a convenience estimate: the time a transfer of bytes
// would take alone at the given bandwidth. Useful for fixed-cost phases
// that do not contend (e.g. local memory copies).
func TransferTime(bytes, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	return time.Duration(bytes / bytesPerSec * float64(time.Second))
}

// Mbps converts megabits/s to bytes/s.
func Mbps(v float64) float64 { return v * 1e6 / 8 }
