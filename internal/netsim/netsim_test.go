package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
)

func newNet() (*simclock.Clock, *Network) {
	c := simclock.New(simclock.Epoch)
	return c, New(c)
}

func TestSingleFlowTakesFullCapacity(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100) // 100 B/s
	var doneAt time.Time
	n.StartFlow(1000, 0, []*Pool{p}, func() { doneAt = c.Now() })
	c.Run()
	want := simclock.Epoch.Add(10 * time.Second)
	if !doneAt.Equal(want) {
		t.Fatalf("flow finished at %v, want %v", doneAt, want)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100)
	var at1, at2 time.Time
	n.StartFlow(500, 0, []*Pool{p}, func() { at1 = c.Now() })
	n.StartFlow(500, 0, []*Pool{p}, func() { at2 = c.Now() })
	c.Run()
	// Both share 50 B/s -> 10s each.
	want := simclock.Epoch.Add(10 * time.Second)
	if !at1.Equal(want) || !at2.Equal(want) {
		t.Fatalf("finish times %v %v, want both %v", at1, at2, want)
	}
}

func TestShortFlowFreesBandwidth(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100)
	var atBig time.Time
	n.StartFlow(1000, 0, []*Pool{p}, func() { atBig = c.Now() })
	n.StartFlow(100, 0, []*Pool{p}, func() {})
	c.Run()
	// Share 50/50: small flow done at t=2 (100B at 50B/s). Big flow then has
	// 900B left at 100 B/s -> finishes at 2+9=11s.
	want := simclock.Epoch.Add(11 * time.Second)
	if !atBig.Equal(want) {
		t.Fatalf("big flow finished at %v, want %v", atBig, want)
	}
}

func TestRateCapHonoured(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 1000)
	var at time.Time
	n.StartFlow(100, 10, []*Pool{p}, func() { at = c.Now() })
	c.Run()
	want := simclock.Epoch.Add(10 * time.Second)
	if !at.Equal(want) {
		t.Fatalf("capped flow finished at %v, want %v", at, want)
	}
}

func TestCapLeavesBandwidthForOthers(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100)
	var atFree time.Time
	n.StartFlow(1000, 10, []*Pool{p}, func() {}) // capped at 10
	n.StartFlow(900, 0, []*Pool{p}, func() { atFree = c.Now() })
	c.Run()
	// Uncapped flow gets 90 B/s -> 10s.
	want := simclock.Epoch.Add(10 * time.Second)
	if !atFree.Equal(want) {
		t.Fatalf("uncapped flow finished at %v, want %v", atFree, want)
	}
}

func TestMultiPoolBottleneck(t *testing.T) {
	c, n := newNet()
	wide := n.NewPool("net", 1000)
	narrow := n.NewPool("ebs", 10)
	var at time.Time
	n.StartFlow(100, 0, []*Pool{wide, narrow}, func() { at = c.Now() })
	c.Run()
	want := simclock.Epoch.Add(10 * time.Second)
	if !at.Equal(want) {
		t.Fatalf("flow finished at %v, want %v (narrow bottleneck)", at, want)
	}
}

func TestCrossTrafficTwoPools(t *testing.T) {
	c, n := newNet()
	a := n.NewPool("a", 100)
	b := n.NewPool("b", 100)
	var atAB, atA, atB time.Time
	n.StartFlow(300, 0, []*Pool{a, b}, func() { atAB = c.Now() })
	n.StartFlow(300, 0, []*Pool{a}, func() { atA = c.Now() })
	n.StartFlow(300, 0, []*Pool{b}, func() { atB = c.Now() })
	c.Run()
	// Max-min: each pool splits 50/50; AB gets 50 (bottlenecked in both),
	// A-only and B-only get 50 each... then residual 0. All finish at 6s.
	want := simclock.Epoch.Add(6 * time.Second)
	for _, at := range []time.Time{atAB, atA, atB} {
		if !at.Equal(want) {
			t.Fatalf("finish times %v %v %v, want all %v", atAB, atA, atB, want)
		}
	}
}

func TestCancelStopsFlow(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100)
	called := false
	f := n.StartFlow(1000, 0, []*Pool{p}, func() { called = true })
	var atOther time.Time
	n.StartFlow(500, 0, []*Pool{p}, func() { atOther = c.Now() })
	c.After(2*time.Second, func() { n.Cancel(f) })
	c.Run()
	if called {
		t.Fatal("cancelled flow's done callback ran")
	}
	// Other flow: 2s at 50 B/s = 100B done, 400 left at 100 B/s -> 2+4=6s.
	want := simclock.Epoch.Add(6 * time.Second)
	if !atOther.Equal(want) {
		t.Fatalf("other flow finished at %v, want %v", atOther, want)
	}
}

func TestCancelFinishedFlowReturnsFalse(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100)
	f := n.StartFlow(10, 0, []*Pool{p}, nil)
	c.Run()
	if n.Cancel(f) {
		t.Fatal("Cancel of finished flow reported active")
	}
}

func TestZeroByteFlowCompletes(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100)
	done := false
	n.StartFlow(0, 0, []*Pool{p}, func() { done = true })
	c.Run()
	if !done {
		t.Fatal("zero-byte flow never completed")
	}
	if c.Since(simclock.Epoch) != 0 {
		t.Fatalf("zero-byte flow advanced clock by %v", c.Since(simclock.Epoch))
	}
}

func TestRemainingMidFlight(t *testing.T) {
	c, n := newNet()
	p := n.NewPool("ebs", 100)
	f := n.StartFlow(1000, 0, []*Pool{p}, nil)
	c.After(3*time.Second, func() {
		got := n.Remaining(f)
		if math.Abs(got-700) > 1 {
			t.Errorf("Remaining = %v, want ~700", got)
		}
	})
	c.Run()
}

func TestCapOnlyFlowNoPools(t *testing.T) {
	c, n := newNet()
	var at time.Time
	n.StartFlow(100, 10, nil, func() { at = c.Now() })
	c.Run()
	want := simclock.Epoch.Add(10 * time.Second)
	if !at.Equal(want) {
		t.Fatalf("pool-less capped flow finished at %v, want %v", at, want)
	}
}

func TestNoPoolNoCapPanics(t *testing.T) {
	_, n := newNet()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.StartFlow(100, 0, nil, nil)
}

func TestMbps(t *testing.T) {
	if got := Mbps(8); got != 1e6 {
		t.Fatalf("Mbps(8) = %v, want 1e6 B/s", got)
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1000, 100); got != 10*time.Second {
		t.Fatalf("TransferTime = %v", got)
	}
}

// Property: regardless of flow sizes and arrival times, no pool is ever
// oversubscribed and every flow eventually completes with total bytes
// conserved (completion time x integrated rate == bytes, verified via
// aggregate makespan bounds).
func TestQuickConservationAndCompletion(t *testing.T) {
	prop := func(seed uint64, sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		rng := simrand.New(seed)
		c := simclock.New(simclock.Epoch)
		n := New(c)
		pools := []*Pool{
			n.NewPool("p1", 100),
			n.NewPool("p2", 200),
			n.NewPool("p3", 50),
		}
		totalBytes := 0.0
		completed := 0
		for _, s := range sizes {
			bytes := float64(s%5000) + 1
			totalBytes += bytes
			// Random subset of pools (at least one).
			var fp []*Pool
			for _, p := range pools {
				if rng.Float64() < 0.5 {
					fp = append(fp, p)
				}
			}
			if len(fp) == 0 {
				fp = []*Pool{pools[rng.Intn(3)]}
			}
			var cap float64
			if rng.Float64() < 0.3 {
				cap = rng.Float64()*90 + 10
			}
			delay := time.Duration(rng.Intn(5000)) * time.Millisecond
			c.After(delay, func() {
				n.StartFlow(bytes, cap, fp, func() { completed++ })
			})
		}
		c.Run()
		if completed != len(sizes) {
			return false
		}
		// Makespan lower bound: total bytes through the slowest necessary
		// pool cannot beat capacity physics. Upper bound sanity: everything
		// fits within totalBytes/minShare + arrival horizon.
		elapsed := c.Since(simclock.Epoch).Seconds()
		lower := 0.0               // not all flows use p3, so only a trivial lower bound
		upper := totalBytes/10 + 6 // worst case: all via 50-pool at min cap 10... generous
		_ = lower
		return elapsed <= upper+totalBytes/50+10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: at any observation instant, the sum of allocated rates in a pool
// never exceeds its capacity.
func TestQuickNoOversubscription(t *testing.T) {
	prop := func(seed uint64, count uint8) bool {
		m := int(count%20) + 2
		rng := simrand.New(seed)
		c := simclock.New(simclock.Epoch)
		n := New(c)
		p := n.NewPool("p", 100)
		q := n.NewPool("q", 60)
		ok := true
		check := func() {
			for _, pool := range []*Pool{p, q} {
				sum := 0.0
				for _, f := range pool.flows {
					sum += f.rate
				}
				if sum > pool.capacity*(1+1e-9) {
					ok = false
				}
			}
		}
		for i := 0; i < m; i++ {
			bytes := float64(rng.Intn(3000) + 1)
			var fp []*Pool
			if rng.Float64() < 0.5 {
				fp = append(fp, p)
			}
			if rng.Float64() < 0.5 {
				fp = append(fp, q)
			}
			if len(fp) == 0 {
				fp = []*Pool{p}
			}
			var cap float64
			if rng.Float64() < 0.4 {
				cap = rng.Float64()*50 + 1
			}
			at := time.Duration(rng.Intn(4000)) * time.Millisecond
			c.After(at, func() {
				n.StartFlow(bytes, cap, fp, nil)
				check()
			})
			c.After(at+time.Duration(rng.Intn(2000))*time.Millisecond, check)
		}
		c.Run()
		return ok && n.ActiveFlows() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
