package shard

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"splitserve/internal/cluster"
)

// SchemaV1 identifies the merged sharded-run report layout.
const SchemaV1 = "splitserve-shard/v1"

// ShardLine is one shard's row in the merged report.
type ShardLine struct {
	Shard     int `json:"shard"`
	PoolCores int `json:"pool_cores"`
	// Jobs counts jobs the shard actually ran and reported (stolen-away
	// jobs count on their destination); Submitted is the tenant-hash
	// placement before stealing.
	Submitted     int     `json:"submitted"`
	Jobs          int     `json:"jobs"`
	Completed     int     `json:"completed"`
	Failed        int     `json:"failed"`
	Shed          int     `json:"shed"`
	SLOViolations int     `json:"slo_violations"`
	SLOAttainment float64 `json:"slo_attainment"`
	// StolenAway / StolenIn count work-steal migrations out of and into
	// this shard.
	StolenAway     int     `json:"stolen_away"`
	StolenIn       int     `json:"stolen_in"`
	QueueWaitP99US int64   `json:"queue_wait_p99_us"`
	MakespanUS     int64   `json:"makespan_us"`
	CostUSD        float64 `json:"cost_usd"`
}

// TenantLine is one tenant's rollup across all shards it ran on.
type TenantLine struct {
	Tenant string `json:"tenant"`
	// HomeShard is where the tenant's jobs hash; stolen jobs may have run
	// elsewhere, but accounting follows the job, not the shard.
	HomeShard       int     `json:"home_shard"`
	Jobs            int     `json:"jobs"`
	Completed       int     `json:"completed"`
	Failed          int     `json:"failed"`
	Shed            int     `json:"shed"`
	SLOViolations   int     `json:"slo_violations"`
	SLOAttainment   float64 `json:"slo_attainment"`
	QueueWaitMeanUS int64   `json:"queue_wait_mean_us"`
	QueueWaitP99US  int64   `json:"queue_wait_p99_us"`
	CostUSD         float64 `json:"cost_usd"`
}

// Report is the merged outcome of a sharded run: global aggregates, the
// per-shard and per-tenant tables, and the underlying cluster reports in
// shard order (nil entries for shards whose partition was empty).
type Report struct {
	Schema   string `json:"schema"`
	Shards   int    `json:"shards"`
	Stealing bool   `json:"stealing"`
	Seed     uint64 `json:"seed"`
	// PoolCores is the total across shards (each shard owns an equal
	// slice).
	PoolCores int    `json:"pool_cores"`
	Policy    string `json:"policy"`
	Strategy  string `json:"strategy"`

	Jobs          int `json:"jobs"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	Shed          int `json:"shed"`
	Delayed       int `json:"delayed"`
	SLOViolations int `json:"slo_violations"`
	// SLOAttainment is (Completed − SLOViolations) / Jobs over the whole
	// run; the per-tenant lines partition the same numerator, so
	// Σ_t (completed_t − violations_t) == Completed − SLOViolations.
	SLOAttainment float64 `json:"slo_attainment"`
	// Steals counts queued-job migrations between shards.
	Steals int `json:"steals"`

	MakespanUS      int64 `json:"makespan_us"`
	QueueWaitMeanUS int64 `json:"queue_wait_mean_us"`
	QueueWaitP50US  int64 `json:"queue_wait_p50_us"`
	QueueWaitP99US  int64 `json:"queue_wait_p99_us"`

	VMHours  float64 `json:"vm_hours"`
	TotalUSD float64 `json:"total_usd"`

	PerShard  []ShardLine  `json:"per_shard"`
	PerTenant []TenantLine `json:"per_tenant"`

	ClusterReports []*cluster.Report `json:"cluster_reports"`
}

func (m *Manager) buildReport(reps []*cluster.Report) *Report {
	r := &Report{
		Schema:    SchemaV1,
		Shards:    m.cfg.Shards,
		Stealing:  m.cfg.Shards > 1 && !m.cfg.DisableStealing,
		Seed:      m.cfg.Cluster.Seed,
		PoolCores: m.cfg.Cluster.PoolCores,

		ClusterReports: reps,
	}

	type tenantAcc struct {
		line  TenantLine
		waits []int64
	}
	tenants := make(map[string]*tenantAcc)
	var allWaits []int64

	for i, cr := range reps {
		st := m.shards[i]
		line := ShardLine{
			Shard:      i,
			PoolCores:  st.poolCores,
			Submitted:  st.submitted,
			StolenAway: st.stealsOut,
			StolenIn:   st.stealsIn,
		}
		r.Steals += st.stealsOut
		if cr != nil {
			if r.Policy == "" {
				r.Policy, r.Strategy = cr.Policy, cr.Strategy
			}
			line.Jobs = cr.Jobs
			line.Completed = cr.Completed
			line.Failed = cr.Failed
			line.Shed = cr.Shed
			line.SLOViolations = cr.SLOViolations
			line.SLOAttainment = cr.SLOAttainment
			line.QueueWaitP99US = cr.QueueWaitP99US
			line.MakespanUS = cr.MakespanUS
			line.CostUSD = cr.TotalUSD

			r.Jobs += cr.Jobs
			r.Completed += cr.Completed
			r.Failed += cr.Failed
			r.Shed += cr.Shed
			r.Delayed += cr.Delayed
			r.SLOViolations += cr.SLOViolations
			if cr.MakespanUS > r.MakespanUS {
				r.MakespanUS = cr.MakespanUS
			}
			r.VMHours += cr.VMHours
			r.TotalUSD += cr.TotalUSD

			for _, jr := range cr.JobReports {
				ta := tenants[jr.Tenant]
				if ta == nil {
					ta = &tenantAcc{line: TenantLine{
						Tenant:    jr.Tenant,
						HomeShard: ShardOf(jr.Tenant, m.cfg.Shards),
					}}
					tenants[jr.Tenant] = ta
				}
				ta.line.Jobs++
				ta.line.CostUSD += jr.CostUSD
				switch {
				case jr.Shed != "":
					ta.line.Shed++
				case jr.Failed != "":
					ta.line.Failed++
				default:
					ta.line.Completed++
					if jr.SLOViolated {
						ta.line.SLOViolations++
					}
					ta.waits = append(ta.waits, jr.QueueWaitUS)
					allWaits = append(allWaits, jr.QueueWaitUS)
				}
			}
		}
		r.PerShard = append(r.PerShard, line)
	}

	if r.Jobs > 0 {
		r.SLOAttainment = float64(r.Completed-r.SLOViolations) / float64(r.Jobs)
	}
	r.QueueWaitMeanUS, r.QueueWaitP50US, r.QueueWaitP99US = waitStats(allWaits)

	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ta := tenants[name]
		if ta.line.Jobs > 0 {
			ta.line.SLOAttainment = float64(ta.line.Completed-ta.line.SLOViolations) / float64(ta.line.Jobs)
		}
		ta.line.QueueWaitMeanUS, _, ta.line.QueueWaitP99US = waitStats(ta.waits)
		r.PerTenant = append(r.PerTenant, ta.line)
	}
	return r
}

// waitStats returns mean, p50 and p99 of queue waits in microseconds.
func waitStats(waits []int64) (mean, p50, p99 int64) {
	if len(waits) == 0 {
		return 0, 0, 0
	}
	sorted := append([]int64(nil), waits...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum int64
	for _, w := range sorted {
		sum += w
	}
	return sum / int64(len(sorted)), quantileI64(sorted, 0.50), quantileI64(sorted, 0.99)
}

// quantileI64 returns the q-quantile of an ascending-sorted slice, with
// the same index rule as the cluster report's quantileDur.
func quantileI64(sorted []int64, q float64) int64 {
	idx := int(q * float64(len(sorted)-1))
	if float64(idx) < q*float64(len(sorted)-1) {
		idx++
	}
	return sorted[idx]
}

// JSON renders the report deterministically (same seed and shard count →
// same bytes).
func (r *Report) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// String renders a human summary: global aggregates, then the per-shard
// and per-tenant tables.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard: %d shards (stealing=%v) policy=%s strategy=%s pool=%d cores seed=%d\n",
		r.Shards, r.Stealing, r.Policy, r.Strategy, r.PoolCores, r.Seed)
	fmt.Fprintf(&b, "jobs %d (completed %d, failed %d, shed %d, delayed %d), SLO violations %d, attainment %.1f%%, steals %d\n",
		r.Jobs, r.Completed, r.Failed, r.Shed, r.Delayed, r.SLOViolations, 100*r.SLOAttainment, r.Steals)
	fmt.Fprintf(&b, "makespan %s; queue wait mean %s p50 %s p99 %s; vm-hours %.3f; cost $%.2f\n",
		time.Duration(r.MakespanUS)*time.Microsecond,
		time.Duration(r.QueueWaitMeanUS)*time.Microsecond,
		time.Duration(r.QueueWaitP50US)*time.Microsecond,
		time.Duration(r.QueueWaitP99US)*time.Microsecond,
		r.VMHours, r.TotalUSD)
	fmt.Fprintf(&b, "%-6s %6s %6s %5s %5s %5s %5s %5s %7s %6s %6s %11s %9s\n",
		"shard", "cores", "subm", "jobs", "done", "fail", "shed", "viol", "attain", "out", "in", "qwait-p99", "cost")
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "s%-5d %6d %6d %5d %5d %5d %5d %5d %6.1f%% %6d %6d %11s %8.4f$\n",
			s.Shard, s.PoolCores, s.Submitted, s.Jobs, s.Completed, s.Failed, s.Shed,
			s.SLOViolations, 100*s.SLOAttainment, s.StolenAway, s.StolenIn,
			(time.Duration(s.QueueWaitP99US) * time.Microsecond).Round(time.Millisecond).String(),
			s.CostUSD)
	}
	fmt.Fprintf(&b, "%-10s %5s %5s %5s %5s %5s %5s %7s %11s %11s %9s\n",
		"tenant", "home", "jobs", "done", "fail", "shed", "viol", "attain", "qwait-mean", "qwait-p99", "cost")
	for _, t := range r.PerTenant {
		name := t.Tenant
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(&b, "%-10s s%-4d %5d %5d %5d %5d %5d %6.1f%% %11s %11s %8.4f$\n",
			name, t.HomeShard, t.Jobs, t.Completed, t.Failed, t.Shed, t.SLOViolations,
			100*t.SLOAttainment,
			(time.Duration(t.QueueWaitMeanUS) * time.Microsecond).Round(time.Millisecond).String(),
			(time.Duration(t.QueueWaitP99US) * time.Microsecond).Round(time.Millisecond).String(),
			t.CostUSD)
	}
	return b.String()
}
