package shard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/eventlog"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/workloads/sparkpi"
)

// piJob builds a sparkpi workload whose tasks each cost ~taskSecs at
// CostPerDart 0.4 — the same sizing rule the cluster tests use, so runs
// here exercise the same calibrated engine paths.
func piJob(partitions int, taskSecs float64) *sparkpi.Workload {
	return sparkpi.New(sparkpi.Config{
		Darts:               int64(float64(partitions) * taskSecs * 5e7 / 0.4),
		SampledDartsPerTask: 400_000 / partitions,
		Partitions:          partitions,
		CostPerDart:         0.4,
		Seed:                3,
	})
}

// baselines caches cluster.Baseline per job shape — the dominant cost of
// building specs.
var baselines = map[string]time.Duration{}

func testSpec(t *testing.T, tenant string, arrival time.Duration, cores, partitions int, taskSecs float64) cluster.JobSpec {
	t.Helper()
	key := fmt.Sprintf("%d/%g/%d", partitions, taskSecs, cores)
	base, ok := baselines[key]
	if !ok {
		var err error
		base, err = cluster.Baseline(piJob(partitions, taskSecs), cores, 9)
		if err != nil {
			t.Fatalf("Baseline: %v", err)
		}
		baselines[key] = base
	}
	return cluster.JobSpec{
		Workload: piJob(partitions, taskSecs),
		Tenant:   tenant,
		Arrival:  arrival,
		Cores:    cores,
		Baseline: base,
	}
}

// tenantStream is a small deterministic multi-tenant stream: 8 jobs over
// 4 tenants with overlapping arrivals.
func tenantStream(t *testing.T) []cluster.JobSpec {
	t.Helper()
	var specs []cluster.JobSpec
	for i := 0; i < 8; i++ {
		tenant := fmt.Sprintf("t%02d", i%4)
		specs = append(specs, testSpec(t, tenant, time.Duration(i)*2*time.Second, 2, 2, 0.5))
	}
	return specs
}

func jsonl(t *testing.T, events []eventlog.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eventlog.WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// dropShardEvents filters the manager's own three event types, leaving
// what a direct cluster run would have produced.
func dropShardEvents(events []eventlog.Event) []eventlog.Event {
	var out []eventlog.Event
	for _, e := range events {
		switch e.Type {
		case eventlog.ShardAssign, eventlog.ShardSteal, eventlog.TenantReport:
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestShardOf pins the hash rule: deterministic, in range, and spreading
// distinct tenants across shards.
func TestShardOf(t *testing.T) {
	if ShardOf("t00", 1) != 0 {
		t.Fatal("shards=1 must always map to shard 0")
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		tenant := fmt.Sprintf("t%02d", i)
		sh := ShardOf(tenant, 4)
		if sh < 0 || sh >= 4 {
			t.Fatalf("ShardOf(%q, 4) = %d, out of range", tenant, sh)
		}
		if sh != ShardOf(tenant, 4) {
			t.Fatalf("ShardOf(%q, 4) not deterministic", tenant)
		}
		seen[sh] = true
	}
	if len(seen) != 4 {
		t.Errorf("64 tenants over 4 shards hit only shards %v", seen)
	}
}

func TestNewValidation(t *testing.T) {
	spec := testSpec(t, "t00", 0, 2, 2, 0.5)
	base := cluster.Config{Jobs: []cluster.JobSpec{spec}, PoolCores: 16, Seed: 1}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero shards", func(c *Config) { c.Shards = 0 }, "Shards must be >= 1"},
		{"no jobs", func(c *Config) { c.Cluster.Jobs = nil }, "no jobs"},
		{"indivisible", func(c *Config) { c.Shards = 3 }, "accepted shard counts"},
		{"owned clock", func(c *Config) { c.Cluster.Clock = simclock.New(simclock.Epoch) }, "owned by the manager"},
		{"owned prefix", func(c *Config) { c.Cluster.IDPrefix = "x-" }, "owned by the manager"},
	} {
		cfg := Config{Shards: 2, Cluster: base}
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// The indivisible error lists the accepted divisors of the pool.
	cfg := Config{Shards: 5, Cluster: base}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "[1 2 4 8 16]") {
		t.Errorf("divisor list missing from error: %v", err)
	}
}

// TestShardsOneReproducesCluster is the compatibility contract: driving a
// stream through the manager with Shards=1 yields a shard-0 cluster
// report and (shard-event-filtered) event log byte-identical to calling
// cluster.Run directly.
func TestShardsOneReproducesCluster(t *testing.T) {
	specs := tenantStream(t)
	ccfg := cluster.Config{Jobs: specs, PoolCores: 8, Seed: 42}

	direct, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	directRep, err := direct.Run()
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := directRep.JSON()
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(Config{Shards: 1, Cluster: ccfg})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	shardJSON, err := rep.ClusterReports[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directJSON, shardJSON) {
		t.Errorf("shards=1 cluster report differs from direct run:\ndirect:\n%s\nsharded:\n%s", directJSON, shardJSON)
	}
	got := jsonl(t, dropShardEvents(m.Events()))
	want := jsonl(t, direct.Events().Events())
	if !bytes.Equal(got, want) {
		t.Errorf("shards=1 event log differs from direct run (got %d bytes, want %d)", len(got), len(want))
	}
	// The placement events exist and carry the tenant in Exec.
	assigns := 0
	for _, e := range m.Events() {
		if e.Type == eventlog.ShardAssign {
			assigns++
			if e.Exec == "" || !strings.HasPrefix(e.Exec, "t") {
				t.Errorf("shard_assign without tenant: %+v", e)
			}
			if e.Note != "shard=0" {
				t.Errorf("shard_assign note = %q, want shard=0", e.Note)
			}
		}
	}
	if assigns != len(specs) {
		t.Errorf("%d shard_assign events, want %d", assigns, len(specs))
	}
}

// TestSameSeedByteIdentity is the determinism contract for sharded runs:
// same seed, same shard count → byte-identical merged report and merged
// event log.
func TestSameSeedByteIdentity(t *testing.T) {
	run := func() ([]byte, []byte) {
		m, err := New(Config{Shards: 4, Cluster: cluster.Config{
			Jobs: tenantStream(t), PoolCores: 16, Seed: 7,
			Strategy: cluster.StrategyQueue,
		}})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, jsonl(t, m.Events())
	}
	rep1, ev1 := run()
	rep2, ev2 := run()
	if !bytes.Equal(rep1, rep2) {
		t.Error("same seed produced different merged reports")
	}
	if !bytes.Equal(ev1, ev2) {
		t.Error("same seed produced different merged event logs")
	}
}

// TestStealingConservation is the work-stealing property test: over
// randomized tenant streams and shard counts, stealing must never
// double-run or lose a job, never violate any shard's core-pool
// invariants, and the per-tenant table must partition the global
// attainment numerator. Across the sweep at least one steal must occur,
// or the test would vacuously pass.
func TestStealingConservation(t *testing.T) {
	totalSteals := 0
	for seed := uint64(1); seed <= 4; seed++ {
		for _, shards := range []int{2, 3, 4} {
			rng := simrand.New(seed * 977)
			nJobs := 10 + int(rng.Uint64()%6)
			var specs []cluster.JobSpec
			for i := 0; i < nJobs; i++ {
				tenant := fmt.Sprintf("t%02d", int(rng.Uint64()%6))
				arrival := time.Duration(rng.Uint64()%8) * time.Second
				cores := 2 + 2*int(rng.Uint64()%2) // 2 or 4
				specs = append(specs, testSpec(t, tenant, arrival, cores, 2, 0.5))
			}
			m, err := New(Config{Shards: shards, Cluster: cluster.Config{
				Jobs: specs, PoolCores: 12, Seed: seed,
				Strategy: cluster.StrategyQueue,
			}})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			totalSteals += rep.Steals

			for _, st := range m.shards {
				if st.sched == nil {
					continue
				}
				if err := st.sched.Pool().CheckInvariants(); err != nil {
					t.Errorf("seed=%d shards=%d: shard %d pool: %v", seed, shards, st.idx, err)
				}
			}
			// Conservation: every submitted job is reported exactly once.
			if rep.Jobs != nJobs {
				t.Errorf("seed=%d shards=%d: %d jobs reported, %d submitted", seed, shards, rep.Jobs, nJobs)
			}
			sumShard, sumSubmitted := 0, 0
			for _, line := range rep.PerShard {
				sumShard += line.Jobs
				sumSubmitted += line.Submitted
			}
			if sumShard != nJobs || sumSubmitted != nJobs {
				t.Errorf("seed=%d shards=%d: per-shard jobs %d / submitted %d, want %d",
					seed, shards, sumShard, sumSubmitted, nJobs)
			}
			tenantJobs, tenantNum := 0, 0
			for _, line := range rep.PerTenant {
				tenantJobs += line.Jobs
				tenantNum += line.Completed - line.SLOViolations
			}
			if tenantJobs != nJobs {
				t.Errorf("seed=%d shards=%d: per-tenant jobs %d, want %d", seed, shards, tenantJobs, nJobs)
			}
			if tenantNum != rep.Completed-rep.SLOViolations {
				t.Errorf("seed=%d shards=%d: Σ tenant (completed−violations) = %d, global = %d",
					seed, shards, tenantNum, rep.Completed-rep.SLOViolations)
			}
			// Steal accounting is symmetric and echoed in events.
			out, in := 0, 0
			for _, line := range rep.PerShard {
				out += line.StolenAway
				in += line.StolenIn
			}
			if out != in || out != rep.Steals {
				t.Errorf("seed=%d shards=%d: steals out=%d in=%d total=%d", seed, shards, out, in, rep.Steals)
			}
			stealEvents := 0
			for _, e := range m.Events() {
				if e.Type == eventlog.ShardSteal {
					stealEvents++
				}
			}
			if stealEvents != rep.Steals {
				t.Errorf("seed=%d shards=%d: %d shard_steal events, report says %d", seed, shards, stealEvents, rep.Steals)
			}
		}
	}
	if totalSteals == 0 {
		t.Error("no steals occurred across the whole sweep; property test is vacuous")
	}
}

// TestMergedEventsOrdered: the k-way merge must yield a time-nondecreasing
// stream covering every shard's events exactly once.
func TestMergedEventsOrdered(t *testing.T) {
	m, err := New(Config{Shards: 4, Cluster: cluster.Config{
		Jobs: tenantStream(t), PoolCores: 16, Seed: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	events := m.Events()
	want := m.bus.Len()
	for _, st := range m.shards {
		if st.sched != nil {
			want += st.sched.Events().Len()
		}
	}
	if len(events) != want {
		t.Fatalf("merged %d events, want %d", len(events), want)
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("merge not time-ordered at %d: %d after %d", i, events[i].TS, events[i-1].TS)
		}
	}
}
