// Package shard is the multi-tenant sharded control plane above
// internal/cluster: it partitions a tenant-labelled job stream across N
// independent scheduler instances ("shards"), each owning an equal slice
// of the core pool, and drives them in lockstep on one shared virtual
// clock. Tenants map to shards by a deterministic hash (ShardOf), so the
// same trace always lands on the same shards; between clock steps a
// work-stealing pass migrates queued jobs from saturated shards to
// neighbors with idle cores. The manager merges the shards' reports into
// one per-shard / per-tenant rollup and their event streams into one
// time-ordered log, so the same seed and shard count always yield
// byte-identical output.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/eventlog"
	"splitserve/internal/simclock"
)

// ShardOf deterministically maps a tenant label to a shard index in
// [0, shards): FNV-1a over the label, mod the shard count. The empty
// label (untenanted jobs) hashes like any other string, so single-tenant
// streams still land on one well-defined shard.
func ShardOf(tenant string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(tenant))
	return int(h.Sum64() % uint64(shards))
}

// Divisors returns the ascending divisors of n — the accepted shard
// counts for an n-core pool (CLI validation wants the list in errors).
func Divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// Config assembles a Manager.
type Config struct {
	// Shards is the number of independent scheduler instances. The
	// cluster core pool is split evenly: Cluster.PoolCores must be
	// divisible by Shards with at least one core per shard.
	Shards int
	// DisableStealing turns the inter-shard work-stealing pass off, for
	// A/B runs isolating what stealing buys.
	DisableStealing bool
	// Cluster is the scheduler template every shard is built from. Jobs
	// is the global tenant-labelled stream (the manager partitions it);
	// PoolCores is the total pool. Clock and IDPrefix are owned by the
	// manager and must be left zero.
	Cluster cluster.Config
}

// shardState is one scheduler instance plus its steal accounting.
type shardState struct {
	idx int
	// sched is nil for a shard whose tenant partition is empty — it has
	// no jobs, schedules nothing, and (having no pool) receives no
	// stolen work; its report line shows zero jobs.
	sched     *cluster.Scheduler
	poolCores int
	submitted int // jobs hashed here (before stealing)
	stealsOut int
	stealsIn  int
}

// assignRec is one upfront tenant→shard placement, emitted as a
// shard_assign event at the job's arrival instant.
type assignRec struct {
	arrival time.Duration
	appID   string
	tenant  string
	cores   int
	shard   int
}

// Manager owns N shard schedulers on one shared clock. Build with New,
// drive with Run (once); Events returns the merged stream afterwards.
type Manager struct {
	cfg     Config
	clock   *simclock.Clock
	bus     *eventlog.Bus
	shards  []*shardState
	assigns []assignRec
	maxSim  time.Duration
	ran     bool
}

// New validates cfg, partitions the job stream by tenant hash, and builds
// one scheduler per non-empty shard — all on one shared clock so they
// advance in lockstep.
func New(cfg Config) (*Manager, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1 (got %d)", cfg.Shards)
	}
	if len(cfg.Cluster.Jobs) == 0 {
		return nil, errors.New("shard: no jobs")
	}
	if cfg.Cluster.PoolCores < 1 {
		return nil, errors.New("shard: Cluster.PoolCores must be >= 1")
	}
	if cfg.Cluster.PoolCores%cfg.Shards != 0 {
		return nil, fmt.Errorf("shard: %d shards do not divide the %d-core pool evenly (accepted shard counts: %v)",
			cfg.Shards, cfg.Cluster.PoolCores, Divisors(cfg.Cluster.PoolCores))
	}
	if cfg.Cluster.Clock != nil {
		return nil, errors.New("shard: Cluster.Clock is owned by the manager; leave it nil")
	}
	if cfg.Cluster.IDPrefix != "" {
		return nil, errors.New("shard: Cluster.IDPrefix is owned by the manager; leave it empty")
	}
	if cfg.Cluster.MaxSimTime == 0 {
		cfg.Cluster.MaxSimTime = 48 * time.Hour
	}

	clock := simclock.New(simclock.Epoch)
	m := &Manager{
		cfg:    cfg,
		clock:  clock,
		bus:    eventlog.NewBus(simclock.Epoch),
		maxSim: cfg.Cluster.MaxSimTime,
	}
	cfg.Cluster.Prof.ObserveBus(m.bus)

	// Partition the stream: per-shard slices keep the global submission
	// order, so each shard numbers its jobs j000, j001, ... in the order
	// the tenant stream produced them.
	parts := make([][]cluster.JobSpec, cfg.Shards)
	for _, spec := range cfg.Cluster.Jobs {
		if spec.Workload == nil {
			return nil, errors.New("shard: job has no workload")
		}
		if spec.Name == "" {
			spec.Name = spec.Workload.Name()
		}
		sh := ShardOf(spec.Tenant, cfg.Shards)
		prefix := ""
		if cfg.Shards > 1 {
			prefix = fmt.Sprintf("s%d-", sh)
		}
		m.assigns = append(m.assigns, assignRec{
			arrival: spec.Arrival,
			appID:   fmt.Sprintf("%sj%03d-%s", prefix, len(parts[sh]), spec.Name),
			tenant:  spec.Tenant,
			cores:   spec.Cores,
			shard:   sh,
		})
		parts[sh] = append(parts[sh], spec)
	}

	perShardCores := cfg.Cluster.PoolCores / cfg.Shards
	for i := 0; i < cfg.Shards; i++ {
		st := &shardState{idx: i, poolCores: perShardCores, submitted: len(parts[i])}
		if len(parts[i]) > 0 {
			scfg := cfg.Cluster
			scfg.Jobs = parts[i]
			scfg.PoolCores = perShardCores
			scfg.Clock = clock
			if cfg.Shards > 1 {
				scfg.IDPrefix = fmt.Sprintf("s%d-", i)
			}
			sched, err := cluster.New(scfg)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			st.sched = sched
		}
		m.shards = append(m.shards, st)
	}

	// Placement events fire at each job's arrival instant via the shared
	// clock, sorted so equal-arrival jobs keep submission order. They only
	// touch the manager's bus, so registering these timers never perturbs
	// the shards' own streams (the shards=1 byte-identity contract).
	sort.SliceStable(m.assigns, func(a, b int) bool { return m.assigns[a].arrival < m.assigns[b].arrival })
	return m, nil
}

// Clock exposes the shared virtual clock (tests).
func (m *Manager) Clock() *simclock.Clock { return m.clock }

// Run plays the whole stream to completion across all shards: start every
// shard, drive the shared clock step by step — pumping each shard and
// running a stealing pass after every step — then finalize the shards and
// merge their reports. It may be called once.
func (m *Manager) Run() (*Report, error) {
	if m.ran {
		return nil, errors.New("shard: Run may only be called once")
	}
	m.ran = true
	for _, st := range m.shards {
		if st.sched == nil {
			continue
		}
		if err := st.sched.Start(); err != nil {
			return nil, err
		}
	}
	for _, a := range m.assigns {
		a := a
		m.clock.At(simclock.Epoch.Add(a.arrival), func() {
			ev := eventlog.Ev(eventlog.ShardAssign)
			ev.App = a.appID
			ev.Exec = a.tenant
			ev.Cores = a.cores
			ev.Note = fmt.Sprintf("shard=%d", a.shard)
			m.bus.Emit(m.clock.Now(), ev)
		})
	}

	deadline := simclock.Epoch.Add(m.maxSim)
	steal := m.cfg.Shards > 1 && !m.cfg.DisableStealing
	for !m.done() && m.clock.Now().Before(deadline) {
		if !m.clock.Step() {
			break
		}
		for _, st := range m.shards {
			if st.sched != nil {
				st.sched.Pump()
			}
		}
		if steal {
			m.stealPass()
		}
	}

	reports := make([]*cluster.Report, len(m.shards))
	for i, st := range m.shards {
		if st.sched != nil {
			reports[i] = st.sched.Finalize()
		}
	}
	rep := m.buildReport(reports)
	for _, t := range rep.PerTenant {
		ev := eventlog.Ev(eventlog.TenantReport)
		ev.Exec = t.Tenant
		ev.Cores = t.Jobs
		ev.Note = fmt.Sprintf("completed=%d violations=%d attainment=%.4f", t.Completed, t.SLOViolations, t.SLOAttainment)
		m.bus.Emit(m.clock.Now(), ev)
	}
	return rep, nil
}

func (m *Manager) done() bool {
	for _, st := range m.shards {
		if st.sched != nil && !st.sched.Done() {
			return false
		}
	}
	return true
}

// stealPass migrates queued jobs from saturated shards to shards with
// idle cores. A shard is saturated for its oldest queued (non-stolen) job
// when its free pool cannot cover that job's demand; the destination is
// the shard with the most free cores that can (ring order from the source
// breaks ties). Planned-free accounting within the pass keeps two sources
// from over-committing the same destination before its scheduler runs.
func (m *Manager) stealPass() {
	n := len(m.shards)
	free := make([]int, n)
	for i, st := range m.shards {
		if st.sched != nil {
			free[i] = st.sched.PoolFree()
		}
	}
	for i, st := range m.shards {
		if st.sched == nil {
			continue
		}
		for {
			demand, ok := st.sched.StealableDemand()
			if !ok || free[i] >= demand {
				break
			}
			best := -1
			for d := 1; d < n; d++ {
				c := (i + d) % n
				if m.shards[c].sched == nil {
					continue
				}
				if free[c] >= demand && (best == -1 || free[c] > free[best]) {
					best = c
				}
			}
			if best == -1 {
				break
			}
			spec, arrivedAt, ok := st.sched.Steal()
			if !ok {
				break
			}
			appID := m.shards[best].sched.Inject(spec, arrivedAt)
			free[best] -= demand
			st.stealsOut++
			m.shards[best].stealsIn++
			ev := eventlog.Ev(eventlog.ShardSteal)
			ev.App = appID
			ev.Exec = spec.Tenant
			ev.Cores = demand
			ev.Note = fmt.Sprintf("s%d->s%d", i, best)
			m.bus.Emit(m.clock.Now(), ev)
		}
	}
}

// Events returns the merged event stream: the manager's own placement /
// steal / tenant events plus every shard's log, k-way merged by
// timestamp. At equal timestamps the manager's stream sorts first, then
// shards in index order — each input is time-nondecreasing, so the merge
// is a stable interleave and the same run always serialises to the same
// bytes.
func (m *Manager) Events() []eventlog.Event {
	streams := make([][]eventlog.Event, 0, len(m.shards)+1)
	streams = append(streams, m.bus.Events())
	for _, st := range m.shards {
		if st.sched != nil {
			streams = append(streams, st.sched.Events().Events())
		}
	}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]eventlog.Event, 0, total)
	idx := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for k, s := range streams {
			if idx[k] >= len(s) {
				continue
			}
			if best == -1 || s[idx[k]].TS < streams[best][idx[best]].TS {
				best = k
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	return out
}
