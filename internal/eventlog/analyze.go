package eventlog

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DefaultStragglerFactor matches Spark's speculation multiplier: a task is
// a straggler when it runs at least this many times the stage median.
const DefaultStragglerFactor = 1.5

// TaskStat is one finished task occurrence.
type TaskStat struct {
	App       string
	Stage     int
	Task      int
	Exec      string
	Kind      string // "vm" | "lambda"
	StartUS   int64
	DurUS     int64
	Failed    bool
	Straggler bool
}

// StageStat aggregates one (app, stage) pair.
type StageStat struct {
	App        string
	Stage      int
	Tasks      []TaskStat
	StartUS    int64
	EndUS      int64
	P50US      int64
	P95US      int64
	P99US      int64
	MaxUS      int64
	MedianUS   int64
	Stragglers []TaskStat
	VMTasks    int
	LambdaTask int
	VMBusyUS   int64
	LambdaBusy int64 // µs
}

// ExecStat is one executor's lifetime utilization.
type ExecStat struct {
	App      string
	Exec     string
	Kind     string
	Cores    int
	AddUS    int64
	RemoveUS int64 // log end if never removed
	BusyUS   int64
	Tasks    int
	Util     float64 // BusyUS / (lifetime x cores)
}

// Analysis is the full per-stage analytics pass over an event stream.
type Analysis struct {
	Factor    float64
	EndUS     int64
	Stages    []StageStat
	Executors []ExecStat
	// TaskCount is the number of finished task occurrences analysed.
	// Zero marks the typed "no tasks" result: an empty log, or one
	// carrying only cluster/control-plane events — quantiles,
	// stragglers and the backend split are then vacuous, and String()
	// says so instead of rendering empty tables.
	TaskCount int
}

// NoTasks reports whether the log contained no finished tasks — the
// typed result callers check before reading task-level statistics.
func (a *Analysis) NoTasks() bool { return a.TaskCount == 0 }

// Analyze runs the per-stage analytics pass: task-duration quantiles,
// straggler detection by the median-multiple rule (factor <= 0 selects
// DefaultStragglerFactor), executor utilization, and the Lambda-vs-VM
// split per stage.
func Analyze(events []Event, factor float64) *Analysis {
	if factor <= 0 {
		factor = DefaultStragglerFactor
	}
	a := &Analysis{Factor: factor}
	for _, e := range events {
		if e.TS > a.EndUS {
			a.EndUS = e.TS
		}
	}

	type taskKey struct {
		app   string
		exec  string
		stage int
		task  int
	}
	type execKey struct {
		app  string
		exec string
	}
	openTasks := map[taskKey]Event{}
	stages := map[string]*StageStat{} // key: app \x00 stage
	execs := map[execKey]*ExecStat{}
	execOrder := []execKey{}
	stageOrder := []string{}

	stageOf := func(app string, stage int) *StageStat {
		k := fmt.Sprintf("%s\x00%06d", app, stage)
		if s, ok := stages[k]; ok {
			return s
		}
		s := &StageStat{App: app, Stage: stage, StartUS: -1}
		stages[k] = s
		stageOrder = append(stageOrder, k)
		return s
	}
	execOf := func(app, exec, kind string) *ExecStat {
		k := execKey{app, exec}
		if x, ok := execs[k]; ok {
			if x.Kind == "" && kind != "" {
				x.Kind = kind
			}
			return x
		}
		x := &ExecStat{App: app, Exec: exec, Kind: kind, RemoveUS: -1}
		execs[k] = x
		execOrder = append(execOrder, k)
		return x
	}

	for _, e := range events {
		switch e.Type {
		case StageStart:
			s := stageOf(e.App, e.Stage)
			if s.StartUS < 0 || e.TS < s.StartUS {
				s.StartUS = e.TS
			}
		case StageEnd:
			s := stageOf(e.App, e.Stage)
			if e.TS > s.EndUS {
				s.EndUS = e.TS
			}
		case TaskStart:
			openTasks[taskKey{e.App, e.Exec, e.Stage, e.Task}] = e
		case TaskEnd, TaskFailed:
			k := taskKey{e.App, e.Exec, e.Stage, e.Task}
			st, ok := openTasks[k]
			if !ok {
				continue
			}
			delete(openTasks, k)
			ts := TaskStat{
				App: e.App, Stage: e.Stage, Task: e.Task, Exec: e.Exec,
				Kind: st.Kind, StartUS: st.TS, DurUS: e.TS - st.TS,
				Failed: e.Type == TaskFailed,
			}
			s := stageOf(e.App, e.Stage)
			s.Tasks = append(s.Tasks, ts)
			a.TaskCount++
			x := execOf(e.App, e.Exec, st.Kind)
			x.BusyUS += ts.DurUS
			x.Tasks++
		case ExecutorAdd:
			x := execOf(e.App, e.Exec, e.Kind)
			x.AddUS = e.TS
			x.Cores = e.Cores
		case ExecutorRemove:
			execOf(e.App, e.Exec, e.Kind).RemoveUS = e.TS
		}
	}

	for _, k := range stageOrder {
		s := stages[k]
		if s.StartUS < 0 {
			s.StartUS = 0
		}
		durs := make([]int64, 0, len(s.Tasks))
		for i := range s.Tasks {
			t := &s.Tasks[i]
			durs = append(durs, t.DurUS)
			if t.Kind == "lambda" {
				s.LambdaTask++
				s.LambdaBusy += t.DurUS
			} else {
				s.VMTasks++
				s.VMBusyUS += t.DurUS
			}
			if end := t.StartUS + t.DurUS; end > s.EndUS {
				s.EndUS = end
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		s.P50US = quantileUS(durs, 0.50)
		s.P95US = quantileUS(durs, 0.95)
		s.P99US = quantileUS(durs, 0.99)
		s.MedianUS = s.P50US
		if n := len(durs); n > 0 {
			s.MaxUS = durs[n-1]
		}
		if s.MedianUS > 0 {
			cut := int64(factor * float64(s.MedianUS))
			for i := range s.Tasks {
				t := &s.Tasks[i]
				if t.DurUS >= cut && t.DurUS > s.MedianUS {
					t.Straggler = true
					s.Stragglers = append(s.Stragglers, *t)
				}
			}
		}
		a.Stages = append(a.Stages, *s)
	}

	for _, k := range execOrder {
		x := execs[k]
		if x.RemoveUS < 0 {
			x.RemoveUS = a.EndUS
		}
		cores := x.Cores
		if cores < 1 {
			cores = 1
		}
		if life := x.RemoveUS - x.AddUS; life > 0 {
			x.Util = float64(x.BusyUS) / (float64(life) * float64(cores))
		}
		a.Executors = append(a.Executors, *x)
	}
	return a
}

// quantileUS returns the q-quantile of sorted durations by linear
// interpolation between order statistics (the same estimator the telemetry
// histograms approximate from buckets, but exact here).
func quantileUS(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + int64(frac*float64(sorted[lo+1]-sorted[lo]))
}

// String renders the analysis as text tables: one stage summary table, a
// straggler list, and executor utilization timelines (bucketed ASCII bars
// over the run).
func (a *Analysis) String() string {
	var b strings.Builder
	if a.NoTasks() {
		fmt.Fprintf(&b, "no tasks in this log (%d stages, %d executors) — task quantiles, stragglers and the backend split are empty\n",
			len(a.Stages), len(a.Executors))
		return b.String()
	}

	fmt.Fprintf(&b, "== stage summary (straggler factor %.2fx median) ==\n", a.Factor)
	fmt.Fprintf(&b, "%-24s %5s %6s %9s %9s %9s %9s %9s %4s %4s %7s\n",
		"app", "stage", "tasks", "p50", "p95", "p99", "max", "span", "vm", "λ", "stragl")
	for _, s := range a.Stages {
		fmt.Fprintf(&b, "%-24s %5d %6d %9s %9s %9s %9s %9s %4d %4d %7d\n",
			trunc(s.App, 24), s.Stage, len(s.Tasks),
			durUS(s.P50US), durUS(s.P95US), durUS(s.P99US), durUS(s.MaxUS),
			durUS(s.EndUS-s.StartUS), s.VMTasks, s.LambdaTask, len(s.Stragglers))
	}

	var anyStrag bool
	for _, s := range a.Stages {
		if len(s.Stragglers) > 0 {
			anyStrag = true
			break
		}
	}
	if anyStrag {
		fmt.Fprintf(&b, "\n== stragglers (dur >= %.2fx stage median) ==\n", a.Factor)
		fmt.Fprintf(&b, "%-24s %5s %5s %-14s %-7s %9s %9s %7s\n",
			"app", "stage", "task", "exec", "kind", "dur", "median", "ratio")
		for _, s := range a.Stages {
			for _, t := range s.Stragglers {
				ratio := 0.0
				if s.MedianUS > 0 {
					ratio = float64(t.DurUS) / float64(s.MedianUS)
				}
				fmt.Fprintf(&b, "%-24s %5d %5d %-14s %-7s %9s %9s %6.2fx\n",
					trunc(t.App, 24), t.Stage, t.Task, trunc(t.Exec, 14),
					kindOrDash(t.Kind), durUS(t.DurUS), durUS(s.MedianUS), ratio)
			}
		}
	} else {
		fmt.Fprintf(&b, "\nno stragglers detected\n")
	}

	if len(a.Executors) > 0 {
		fmt.Fprintf(&b, "\n== executor utilization ==\n")
		fmt.Fprintf(&b, "%-24s %-14s %-7s %6s %6s  %-40s\n",
			"app", "exec", "kind", "tasks", "util", "timeline (lifetime over run)")
		for _, x := range a.Executors {
			fmt.Fprintf(&b, "%-24s %-14s %-7s %6d %5.1f%%  [%s]\n",
				trunc(x.App, 24), trunc(x.Exec, 14), kindOrDash(x.Kind),
				x.Tasks, x.Util*100, timelineBar(x, a.EndUS, 40))
		}
	}

	// Lambda-vs-VM split across the whole run.
	var vmBusy, lamBusy int64
	var vmTasks, lamTasks int
	for _, s := range a.Stages {
		vmBusy += s.VMBusyUS
		lamBusy += s.LambdaBusy
		vmTasks += s.VMTasks
		lamTasks += s.LambdaTask
	}
	total := vmBusy + lamBusy
	if total > 0 {
		fmt.Fprintf(&b, "\n== backend split ==\n")
		fmt.Fprintf(&b, "vm:     %6d tasks  %9s busy (%.1f%%)\n",
			vmTasks, durUS(vmBusy), 100*float64(vmBusy)/float64(total))
		fmt.Fprintf(&b, "lambda: %6d tasks  %9s busy (%.1f%%)\n",
			lamTasks, durUS(lamBusy), 100*float64(lamBusy)/float64(total))
	}
	return b.String()
}

// timelineBar renders an executor's lifetime as a width-cell bar over the
// whole run: '.' before add, '#' while alive, ' ' after removal.
func timelineBar(x ExecStat, endUS int64, width int) string {
	if endUS <= 0 {
		return strings.Repeat("#", width)
	}
	cells := make([]byte, width)
	for i := range cells {
		lo := int64(i) * endUS / int64(width)
		hi := (int64(i) + 1) * endUS / int64(width)
		switch {
		case hi <= x.AddUS:
			cells[i] = '.'
		case lo >= x.RemoveUS:
			cells[i] = ' '
		default:
			cells[i] = '#'
		}
	}
	return string(cells)
}

func durUS(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.2fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func kindOrDash(k string) string {
	if k == "" {
		return "-"
	}
	return k
}
