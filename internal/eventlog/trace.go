package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// chrome://tracing and Perfetto load). Every event carries the four fields
// Perfetto requires — ph, ts, pid, tid — unconditionally.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	CName string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level Chrome trace JSON object.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Reserved Catapult color names used to tell the substrates apart: VM task
// slices render green, Lambda slices orange, and cost-manager allocation
// decisions light blue (see OBSERVABILITY.md).
const (
	cnameVM       = "thread_state_running"
	cnameLambda   = "thread_state_iowait"
	cnameCostPick = "vsync_highlight_color"
)

// driverTID is the per-process track carrying job and stage slices; each
// executor gets its own tid from 1 up, in first-appearance order.
const driverTID = 0

// ChromeTrace converts an event stream to Chrome trace-event JSON: one
// process (pid) per app, one track (tid) per executor plus a "driver"
// track with job/stage slices, task slices colored by backend, and instant
// markers for segue, VM and Lambda lifecycle events. Open intervals (a
// task on a Lambda that drained mid-run, a stage cut short) are clamped to
// the last timestamp in the log so they still render.
func ChromeTrace(events []Event) ([]byte, error) {
	tf := BuildTrace(events)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(tf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BuildTrace assembles the TraceFile (exposed separately so tests and the
// history server can inspect the structured form).
func BuildTrace(events []Event) *TraceFile {
	tf := &TraceFile{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}

	var end int64
	for _, e := range events {
		if e.TS > end {
			end = e.TS
		}
	}

	pids := map[string]int{}
	pidOrder := []string{}
	pidOf := func(app string) int {
		if p, ok := pids[app]; ok {
			return p
		}
		p := len(pids) + 1
		pids[app] = p
		pidOrder = append(pidOrder, app)
		return p
	}
	type execKey struct {
		app  string
		exec string
	}
	tids := map[execKey]int{}
	tidKinds := map[execKey]string{}
	nextTID := map[string]int{}
	tidOf := func(app, exec, kind string) int {
		k := execKey{app, exec}
		if t, ok := tids[k]; ok {
			return t
		}
		nextTID[app]++
		tids[k] = nextTID[app]
		if kind != "" {
			tidKinds[k] = kind
		}
		return tids[k]
	}

	type openKey struct {
		app   string
		exec  string
		stage int
		task  int
	}
	openTasks := map[openKey]Event{}
	openStages := map[openKey]Event{}
	openJobs := map[openKey]Event{}
	openExecs := map[execKey]Event{}

	var slices, instants []TraceEvent

	closeSlice := func(start Event, ts int64, name, cat string, pid, tid int, cname string, args map[string]any) {
		dur := ts - start.TS
		if dur < 1 {
			dur = 1 // zero-width slices vanish in the UI
		}
		slices = append(slices, TraceEvent{
			Name: name, Cat: cat, Ph: "X", TS: start.TS, Dur: dur,
			PID: pid, TID: tid, CName: cname, Args: args,
		})
	}

	instant := func(e Event, name string, pid, tid int, scope string, args map[string]any) {
		instants = append(instants, TraceEvent{
			Name: name, Cat: string(e.Type), Ph: "i", TS: e.TS,
			PID: pid, TID: tid, Scope: scope, Args: args,
		})
	}

	for _, e := range events {
		switch e.Type {
		case JobStart, ClusterAdmit:
			openJobs[openKey{app: e.App, task: -1, stage: -1}] = e
			pidOf(e.App)
		case JobEnd, ClusterFinish, ClusterFail:
			k := openKey{app: e.App, task: -1, stage: -1}
			if s, ok := openJobs[k]; ok {
				delete(openJobs, k)
				closeSlice(s, e.TS, "job "+s.Note, "job", pidOf(e.App), driverTID, "", map[string]any{"job": s.Note})
			}
		case StageStart:
			openStages[openKey{app: e.App, stage: e.Stage, task: -1}] = e
		case StageEnd:
			k := openKey{app: e.App, stage: e.Stage, task: -1}
			if s, ok := openStages[k]; ok {
				delete(openStages, k)
				closeSlice(s, e.TS, fmt.Sprintf("stage %d", e.Stage), "stage",
					pidOf(e.App), driverTID, "", map[string]any{"stage": e.Stage})
			}
		case TaskStart:
			openTasks[openKey{e.App, e.Exec, e.Stage, e.Task}] = e
		case TaskEnd, TaskFailed:
			k := openKey{e.App, e.Exec, e.Stage, e.Task}
			if s, ok := openTasks[k]; ok {
				delete(openTasks, k)
				cname := cnameVM
				if s.Kind == "lambda" {
					cname = cnameLambda
				}
				if e.Type == TaskFailed {
					cname = "terrible"
				}
				closeSlice(s, e.TS, fmt.Sprintf("s%d/t%d", e.Stage, e.Task), "task",
					pidOf(e.App), tidOf(e.App, e.Exec, s.Kind), cname,
					map[string]any{"stage": e.Stage, "task": e.Task, "kind": s.Kind})
			}
		case ExecutorAdd:
			openExecs[execKey{e.App, e.Exec}] = e
			tidOf(e.App, e.Exec, e.Kind)
		case ExecutorRemove:
			k := execKey{e.App, e.Exec}
			if s, ok := openExecs[k]; ok {
				delete(openExecs, k)
				closeSlice(s, e.TS, "executor "+e.Exec, "executor",
					pidOf(e.App), tidOf(e.App, e.Exec, s.Kind), "grey",
					map[string]any{"exec": e.Exec, "kind": s.Kind, "reason": e.Note})
			}
		case CostPick:
			// Allocation decisions get their own color so the chosen R
			// stands out on the driver track next to the arrival marker.
			instants = append(instants, TraceEvent{
				Name: fmt.Sprintf("cost_pick R=%d", e.Cores), Cat: string(e.Type),
				Ph: "i", TS: e.TS, PID: pidOf(e.App), TID: driverTID,
				Scope: "p", CName: cnameCostPick, Args: argsFor(e),
			})
		case ShardAssign, ShardSteal:
			// Shard placement decisions stay on the app's driver track —
			// Exec carries the tenant id, not an executor, so never open a
			// thread for it.
			instant(e, string(e.Type), pidOf(e.App), driverTID, "p", argsFor(e))
		case TenantReport:
			// Per-tenant rollups are control-plane scope: no app process.
			instant(e, string(e.Type), pidOf(e.App), driverTID, "g", argsFor(e))
		case Segue, ExecutorDrain, SegueCoreGrant, SLOViolate, ClusterArrive,
			StageResubmitted, TaskSpeculated, AutoscaleOrder,
			ClusterShed, ClusterDelay:
			tid := driverTID
			if e.Exec != "" {
				tid = tidOf(e.App, e.Exec, e.Kind)
			}
			instant(e, string(e.Type), pidOf(e.App), tid, "p", argsFor(e))
		case VMRequest, VMReady, LambdaInvoke, LambdaReady, LambdaRelease,
			CoreLease, CoreRelease, VMReleaseIdle, LambdaWarmHit, WarmpoolResize:
			// Control-plane events are global: they have no app process.
			instant(e, string(e.Type), pidOf(e.App), driverTID, "g", argsFor(e))
		case TmpCacheHit, TmpCacheEvict:
			// /tmp cache traffic renders like shuffle I/O, on the
			// environment's executor track when one is known.
			tid := driverTID
			if e.Exec != "" {
				tid = tidOf(e.App, e.Exec, "")
			}
			instant(e, fmt.Sprintf("%s %dB", e.Type, e.Bytes), pidOf(e.App), tid, "t", argsFor(e))
		case ShuffleRead, ShuffleWrite, HDFSRead, HDFSWrite:
			tid := driverTID
			if e.Exec != "" {
				tid = tidOf(e.App, e.Exec, "")
			}
			instant(e, fmt.Sprintf("%s %dB", e.Type, e.Bytes), pidOf(e.App), tid, "t", argsFor(e))
		}
	}

	// Clamp whatever is still open to the end of the log.
	for k, s := range openTasks {
		cname := cnameVM
		if s.Kind == "lambda" {
			cname = cnameLambda
		}
		closeSlice(s, end, fmt.Sprintf("s%d/t%d (open)", k.stage, k.task), "task",
			pidOf(k.app), tidOf(k.app, k.exec, s.Kind), cname,
			map[string]any{"stage": k.stage, "task": k.task, "kind": s.Kind, "open": true})
	}
	for k, s := range openStages {
		closeSlice(s, end, fmt.Sprintf("stage %d (open)", k.stage), "stage",
			pidOf(k.app), driverTID, "", map[string]any{"stage": k.stage, "open": true})
	}
	for k, s := range openJobs {
		closeSlice(s, end, "job "+s.Note+" (open)", "job", pidOf(k.app), driverTID, "", nil)
	}
	for k, s := range openExecs {
		closeSlice(s, end, "executor "+k.exec+" (open)", "executor",
			pidOf(k.app), tidOf(k.app, k.exec, s.Kind), "grey", nil)
	}

	// Metadata: process and thread names, in deterministic (pid, tid) order.
	var meta []TraceEvent
	for _, app := range pidOrder {
		name := app
		if name == "" {
			name = "cloud"
		}
		meta = append(meta, TraceEvent{
			Name: "process_name", Ph: "M", TS: 0, PID: pids[app], TID: 0,
			Args: map[string]any{"name": name},
		})
		meta = append(meta, TraceEvent{
			Name: "thread_name", Ph: "M", TS: 0, PID: pids[app], TID: driverTID,
			Args: map[string]any{"name": "driver"},
		})
	}
	type tidEntry struct {
		key execKey
		tid int
	}
	var tes []tidEntry
	for k, t := range tids {
		tes = append(tes, tidEntry{k, t})
	}
	sort.Slice(tes, func(i, j int) bool {
		if pids[tes[i].key.app] != pids[tes[j].key.app] {
			return pids[tes[i].key.app] < pids[tes[j].key.app]
		}
		return tes[i].tid < tes[j].tid
	})
	for _, te := range tes {
		label := te.key.exec
		if kind := tidKinds[te.key]; kind != "" {
			label += " [" + kind + "]"
		}
		meta = append(meta, TraceEvent{
			Name: "thread_name", Ph: "M", TS: 0, PID: pids[te.key.app], TID: te.tid,
			Args: map[string]any{"name": label},
		})
	}

	// Slices sorted by (ts, pid, tid) keep Catapult's importer happy;
	// instants ride along after slices at equal timestamps.
	sort.SliceStable(slices, func(i, j int) bool { return traceLess(slices[i], slices[j]) })
	sort.SliceStable(instants, func(i, j int) bool { return traceLess(instants[i], instants[j]) })

	tf.TraceEvents = append(tf.TraceEvents, meta...)
	tf.TraceEvents = append(tf.TraceEvents, slices...)
	tf.TraceEvents = append(tf.TraceEvents, instants...)
	return tf
}

func traceLess(a, b TraceEvent) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	if a.PID != b.PID {
		return a.PID < b.PID
	}
	if a.TID != b.TID {
		return a.TID < b.TID
	}
	return a.Dur > b.Dur // enclosing slice first
}

func argsFor(e Event) map[string]any {
	args := map[string]any{}
	if e.Exec != "" {
		args["exec"] = e.Exec
	}
	if e.Kind != "" {
		args["kind"] = e.Kind
	}
	if e.Stage >= 0 {
		args["stage"] = e.Stage
	}
	if e.Task >= 0 {
		args["task"] = e.Task
	}
	if e.Cores != 0 {
		args["cores"] = e.Cores
	}
	if e.Bytes != 0 {
		args["bytes"] = e.Bytes
	}
	if e.Note != "" {
		args["note"] = e.Note
	}
	if len(args) == 0 {
		return nil
	}
	return args
}
