package eventlog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var testOrigin = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return testOrigin.Add(d) }

// fixture builds a small two-executor run with one injected straggler:
// stage 0 has four 1s tasks and one 5s task (task 4) on the lambda executor.
func fixture() *Bus {
	b := NewBus(testOrigin)
	emit := func(d time.Duration, e Event) { b.Emit(at(d), e) }

	ev := func(t Type, app string) Event {
		e := Ev(t)
		e.App = app
		return e
	}

	emit(0, ev(JobStart, "app-1"))
	e := ev(ExecutorAdd, "app-1")
	e.Exec, e.Kind, e.Cores = "vm-0", "vm", 2
	emit(0, e)
	e = ev(ExecutorAdd, "app-1")
	e.Exec, e.Kind, e.Cores = "lambda-0", "lambda", 2
	emit(100*time.Millisecond, e)

	e = ev(StageStart, "app-1")
	e.Stage = 0
	emit(200*time.Millisecond, e)

	type task struct {
		id    int
		exec  string
		kind  string
		start time.Duration
		dur   time.Duration
	}
	tasks := []task{
		{0, "vm-0", "vm", 200 * time.Millisecond, time.Second},
		{1, "vm-0", "vm", 200 * time.Millisecond, time.Second},
		{2, "lambda-0", "lambda", 200 * time.Millisecond, time.Second},
		{3, "vm-0", "vm", 1300 * time.Millisecond, time.Second},
		{4, "lambda-0", "lambda", 200 * time.Millisecond, 5 * time.Second}, // straggler
	}
	for _, t := range tasks {
		e = ev(TaskStart, "app-1")
		e.Stage, e.Task, e.Exec, e.Kind = 0, t.id, t.exec, t.kind
		emit(t.start, e)
	}
	for _, t := range tasks {
		e = ev(TaskEnd, "app-1")
		e.Stage, e.Task, e.Exec = 0, t.id, t.exec
		emit(t.start+t.dur, e)
	}

	e = ev(StageEnd, "app-1")
	e.Stage = 0
	emit(5200*time.Millisecond, e)
	e = ev(ExecutorDrain, "app-1")
	e.Exec = "lambda-0"
	emit(5300*time.Millisecond, e)
	e = ev(ExecutorRemove, "app-1")
	e.Exec, e.Kind = "lambda-0", "lambda"
	emit(5400*time.Millisecond, e)
	emit(5500*time.Millisecond, ev(JobEnd, "app-1"))
	return b
}

func TestJSONLRoundTrip(t *testing.T) {
	b := fixture()
	data, err := b.JSONL()
	if err != nil {
		t.Fatalf("JSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	want := b.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip length: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	a, err := fixture().JSONL()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fixture().JSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same fixture produced different JSONL bytes")
	}
}

func TestReadJSONLRejectsUnknownType(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"ts_us":0,"type":"nope","stage":-1,"task":-1}` + "\n"))
	if err == nil {
		t.Fatal("expected error for unknown event type")
	}
}

func TestEmitPanicsOnUnknownType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBus(testOrigin).Emit(testOrigin, Event{Type: "bogus"})
}

func TestNilBusIsNoOp(t *testing.T) {
	var b *Bus
	b.Emit(testOrigin, Ev(JobStart))
	b.Subscribe(func(Event) {})
	if b.Len() != 0 || b.Events() != nil {
		t.Fatal("nil bus should be inert")
	}
	if err := b.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
}

func TestSubscribeSeesEvents(t *testing.T) {
	b := NewBus(testOrigin)
	var seen []Type
	b.Subscribe(func(e Event) { seen = append(seen, e.Type) })
	b.Emit(at(time.Second), Ev(JobStart))
	b.Emit(at(2*time.Second), Ev(JobEnd))
	if len(seen) != 2 || seen[0] != JobStart || seen[1] != JobEnd {
		t.Fatalf("subscriber saw %v", seen)
	}
	if evs := b.Events(); evs[0].TS != time.Second.Microseconds() {
		t.Fatalf("TS stamping: got %d", evs[0].TS)
	}
}

// TestChromeTraceSchema asserts the Perfetto-required fields — ph, ts,
// pid, tid — are present on every emitted trace event.
func TestChromeTraceSchema(t *testing.T) {
	data, err := ChromeTrace(fixture().Events())
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var raw struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(raw.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for i, te := range raw.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := te[field]; !ok {
				t.Fatalf("trace event %d missing required field %q: %v", i, field, te)
			}
		}
	}
}

func TestChromeTraceTracksAndColors(t *testing.T) {
	tf := BuildTrace(fixture().Events())
	var vmSlice, lambdaSlice, procName, threadNames bool
	tidsSeen := map[int]bool{}
	for _, te := range tf.TraceEvents {
		switch {
		case te.Ph == "M" && te.Name == "process_name":
			procName = true
		case te.Ph == "M" && te.Name == "thread_name":
			threadNames = true
		case te.Ph == "X" && te.Cat == "task":
			tidsSeen[te.TID] = true
			if te.CName == cnameVM {
				vmSlice = true
			}
			if te.CName == cnameLambda {
				lambdaSlice = true
			}
		}
	}
	if !procName || !threadNames {
		t.Fatal("missing process/thread metadata")
	}
	if !vmSlice || !lambdaSlice {
		t.Fatalf("expected both vm and lambda colored slices (vm=%v lambda=%v)", vmSlice, lambdaSlice)
	}
	if len(tidsSeen) < 2 {
		t.Fatalf("expected one track per executor, saw tids %v", tidsSeen)
	}
}

func TestAnalyzeFindsInjectedStraggler(t *testing.T) {
	a := Analyze(fixture().Events(), 0)
	if len(a.Stages) != 1 {
		t.Fatalf("stages: got %d want 1", len(a.Stages))
	}
	s := a.Stages[0]
	if len(s.Tasks) != 5 {
		t.Fatalf("tasks: got %d want 5", len(s.Tasks))
	}
	if s.MedianUS != time.Second.Microseconds() {
		t.Fatalf("median: got %dµs want 1s", s.MedianUS)
	}
	if len(s.Stragglers) != 1 {
		t.Fatalf("stragglers: got %d want 1 (%+v)", len(s.Stragglers), s.Stragglers)
	}
	if got := s.Stragglers[0]; got.Task != 4 || got.Exec != "lambda-0" {
		t.Fatalf("wrong straggler: %+v", got)
	}
	if s.VMTasks != 3 || s.LambdaTask != 2 {
		t.Fatalf("backend split: vm=%d lambda=%d", s.VMTasks, s.LambdaTask)
	}
	out := a.String()
	for _, want := range []string{"stragglers", "lambda-0", "stage summary", "backend split"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis text missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeExecutorUtilization(t *testing.T) {
	a := Analyze(fixture().Events(), 1.5)
	if len(a.Executors) != 2 {
		t.Fatalf("executors: got %d want 2", len(a.Executors))
	}
	for _, x := range a.Executors {
		if x.Util <= 0 || x.Util > 1.0001 {
			t.Fatalf("executor %s utilization out of range: %v", x.Exec, x.Util)
		}
	}
}

func TestQuantileUS(t *testing.T) {
	sorted := []int64{100, 200, 300, 400, 500}
	if got := quantileUS(sorted, 0.5); got != 300 {
		t.Fatalf("p50: got %d", got)
	}
	if got := quantileUS(sorted, 0); got != 100 {
		t.Fatalf("p0: got %d", got)
	}
	if got := quantileUS(sorted, 1); got != 500 {
		t.Fatalf("p100: got %d", got)
	}
	if got := quantileUS([]int64{42}, 0.99); got != 42 {
		t.Fatalf("single: got %d", got)
	}
	if got := quantileUS(nil, 0.5); got != 0 {
		t.Fatalf("empty: got %d", got)
	}
	// p25 of [100..500] = 200 exactly; p90 interpolates between 400 and 500.
	if got := quantileUS(sorted, 0.25); got != 200 {
		t.Fatalf("p25: got %d", got)
	}
	if got := quantileUS(sorted, 0.9); got != 460 {
		t.Fatalf("p90: got %d want 460", got)
	}
}
