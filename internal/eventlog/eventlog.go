// Package eventlog is the simulator's structured event stream — the
// discrete-event counterpart of Spark's event log (SparkListenerEvent +
// EventLoggingListener). Engine, cluster, shuffle, HDFS and cloud all emit
// flat, append-only events on the virtual clock; the stream serialises to
// JSONL (one event per line, fixed field order) so two runs with the same
// seed produce byte-identical logs, and a saved log can be replayed by
// cmd/splitserve-history long after the run that produced it.
//
// Two exporters read the stream back: a Chrome trace-event JSON renderer
// (trace.go — loadable in chrome://tracing or Perfetto) and a per-stage
// analytics pass (analyze.go — task-duration quantiles, straggler
// detection, executor utilization, Lambda-vs-VM split).
package eventlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Type names one event kind. The vocabulary is closed: Bus.Emit rejects
// unknown types so typo'd names cannot silently fork the schema as call
// sites multiply.
type Type string

// Event types, grouped by emitting subsystem.
const (
	// Engine (bridged from the metrics timeline).
	JobStart         Type = "job_start"
	JobEnd           Type = "job_end"
	StageStart       Type = "stage_start"
	StageEnd         Type = "stage_end"
	TaskStart        Type = "task_start"
	TaskEnd          Type = "task_end"
	TaskFailed       Type = "task_failed"
	TaskSpeculated   Type = "task_speculated"
	StageResubmitted Type = "stage_resubmitted"
	ExecutorAdd      Type = "executor_add"
	ExecutorDrain    Type = "executor_drain"
	ExecutorRemove   Type = "executor_remove"
	Segue            Type = "segue"

	// Shuffle (map-output tracker).
	ShuffleWrite Type = "shuffle_write"
	ShuffleRead  Type = "shuffle_read"

	// HDFS.
	HDFSWrite Type = "hdfs_write"
	HDFSRead  Type = "hdfs_read"

	// Cloud control plane.
	VMRequest     Type = "vm_request"
	VMReady       Type = "vm_ready"
	LambdaInvoke  Type = "lambda_invoke"
	LambdaReady   Type = "lambda_ready"
	LambdaRelease Type = "lambda_release"
	CoreLease     Type = "core_lease"
	CoreRelease   Type = "core_release"

	// Cluster scheduler (multi-job layer).
	ClusterArrive  Type = "cluster_job_arrive"
	ClusterAdmit   Type = "cluster_job_admit"
	ClusterFinish  Type = "cluster_job_finish"
	ClusterFail    Type = "cluster_job_fail"
	SLOViolate     Type = "slo_violate"
	SegueCoreGrant Type = "segue_core_grant"
	AutoscaleOrder Type = "autoscale_order"

	// Elasticity (scale-down + deadline-aware admission).
	VMReleaseIdle Type = "vm_release_idle"
	ClusterShed   Type = "cluster_job_shed"
	ClusterDelay  Type = "cluster_job_delay"

	// Cost manager: the profile-driven allocation decision for an
	// arriving job (Cores = chosen R; Note = policy, predicted run time
	// and cost, and whether a profile or the fallback informed it).
	CostPick Type = "cost_pick"

	// Warm pool (provisioned-concurrency substrate). LambdaWarmHit marks
	// an invocation served by a pre-initialized environment (Exec = the
	// environment ID, Note = the invocation it hosts); WarmpoolResize
	// records a target-tracking resize (Cores = new target, Note =
	// old->new); TmpCacheHit/TmpCacheEvict track the /tmp shuffle cache
	// tier (Exec = environment, Bytes = cached bytes served or evicted).
	LambdaWarmHit  Type = "lambda_warm_hit"
	TmpCacheHit    Type = "tmp_cache_hit"
	TmpCacheEvict  Type = "tmp_cache_evict"
	WarmpoolResize Type = "warmpool_resize"

	// Sharded control plane (internal/shard). ShardAssign records a job's
	// deterministic tenant→shard placement at submission time (App = the
	// job's appID on its home shard, Exec = tenant, Cores = demand,
	// Note = "shard=N"). ShardSteal records a queued job migrating from a
	// saturated shard to a neighbor with idle cores (App = the job's new
	// appID on the destination shard, Exec = tenant, Cores = demand,
	// Note = "sSRC->sDST"). TenantReport is the end-of-run per-tenant
	// rollup (Exec = tenant, Cores = jobs submitted, Note = the
	// completed/violations/attainment summary).
	ShardAssign  Type = "shard_assign"
	ShardSteal   Type = "shard_steal"
	TenantReport Type = "tenant_report"
)

// allTypes is the single authoritative enumeration of the closed
// vocabulary. A new constant must be added here (and nowhere else) to
// become emittable; Valid and AllTypes both derive from this list, and
// the trace-exporter vocabulary test walks it so an unmapped newcomer
// fails loudly instead of silently dropping from rendered traces.
var allTypes = []Type{
	JobStart, JobEnd, StageStart, StageEnd, TaskStart, TaskEnd,
	TaskFailed, TaskSpeculated, StageResubmitted,
	ExecutorAdd, ExecutorDrain, ExecutorRemove, Segue,
	ShuffleWrite, ShuffleRead, HDFSWrite, HDFSRead,
	VMRequest, VMReady, LambdaInvoke, LambdaReady, LambdaRelease,
	CoreLease, CoreRelease,
	ClusterArrive, ClusterAdmit, ClusterFinish, ClusterFail,
	SLOViolate, SegueCoreGrant, AutoscaleOrder,
	VMReleaseIdle, ClusterShed, ClusterDelay, CostPick,
	LambdaWarmHit, TmpCacheHit, TmpCacheEvict, WarmpoolResize,
	ShardAssign, ShardSteal, TenantReport,
}

var validTypes = func() map[Type]bool {
	m := make(map[Type]bool, len(allTypes))
	for _, t := range allTypes {
		m[t] = true
	}
	return m
}()

// Valid reports whether t is a known event type.
func (t Type) Valid() bool { return validTypes[t] }

// AllTypes returns the full closed vocabulary in declaration order. The
// slice is a copy; callers may reorder it freely.
func AllTypes() []Type {
	out := make([]Type, len(allTypes))
	copy(out, allTypes)
	return out
}

// Event is one log entry. TS is the virtual-time offset from the bus
// origin in microseconds; Stage and Task use -1 for "not applicable" so
// stage 0 / task 0 stay representable. All other fields are optional and
// omitted when empty, keeping lines compact. Field order is fixed by the
// struct, so encoding/json yields a stable byte layout.
type Event struct {
	TS    int64  `json:"ts_us"`
	Type  Type   `json:"type"`
	App   string `json:"app,omitempty"`
	Exec  string `json:"exec,omitempty"`
	Kind  string `json:"kind,omitempty"` // "vm" | "lambda" (or "warm"/"cold" for invokes)
	Stage int    `json:"stage"`
	Task  int    `json:"task"`
	Cores int    `json:"cores,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	Note  string `json:"note,omitempty"`
}

// Ev returns an Event of type t with Stage and Task pre-set to -1, the
// "not applicable" sentinel. Call sites fill the fields they know.
func Ev(t Type) Event { return Event{Type: t, Stage: -1, Task: -1} }

// Bus is the listener-bus: an append-only collector plus fan-out to
// subscribers. A nil *Bus is a valid no-op sink — every method does
// nothing — so components run unlogged without guarding call sites.
// Emission order is insertion order; a deterministic simulation therefore
// yields an identical stream every run.
type Bus struct {
	mu     sync.Mutex
	origin time.Time
	events []Event
	subs   []func(Event)
}

// NewBus returns a Bus whose time zero is origin; every emitted event's TS
// is measured from it.
func NewBus(origin time.Time) *Bus { return &Bus{origin: origin} }

// Origin returns the bus's time zero.
func (b *Bus) Origin() time.Time {
	if b == nil {
		return time.Time{}
	}
	return b.origin
}

// Subscribe registers fn to observe every subsequent event, in emission
// order, synchronously under the bus lock (keep fn cheap).
func (b *Bus) Subscribe(fn func(Event)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, fn)
}

// Emit stamps e with the offset of at from the origin, validates its type,
// appends it and fans it out. Unknown types panic: the vocabulary is
// closed and a typo is a programming error, not a runtime condition.
func (b *Bus) Emit(at time.Time, e Event) {
	if b == nil {
		return
	}
	if !e.Type.Valid() {
		panic(fmt.Sprintf("eventlog: unknown event type %q", string(e.Type)))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e.TS = at.Sub(b.origin).Microseconds()
	b.events = append(b.events, e)
	for _, fn := range b.subs {
		fn(e)
	}
}

// Len returns the number of events recorded so far.
func (b *Bus) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a snapshot of the stream in emission order.
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// WriteJSONL streams the log as one compact JSON object per line. Field
// order is the Event struct order and values carry no floats, so the same
// stream always serialises to the same bytes.
func (b *Bus) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, b.Events())
}

// JSONL renders the whole stream as a byte slice (tests, -eventlog).
func (b *Bus) JSONL() ([]byte, error) {
	var buf bytes.Buffer
	if err := b.WriteJSONL(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJSONL serialises events one per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a saved event log back into events, preserving order.
// Blank lines are skipped; an unknown event type is an error (the replay
// tooling would otherwise misrender newer logs silently).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", line, err)
		}
		if !e.Type.Valid() {
			return nil, fmt.Errorf("eventlog: line %d: unknown event type %q", line, string(e.Type))
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
