package eventlog

import (
	"testing"
)

// traceCase describes how one event type must surface in a Chrome trace:
// feed `events` to BuildTrace and expect at least one non-metadata trace
// event with category `cat`. Slice-producing types (job/stage/task/
// executor lifecycles) map to their slice category; everything else is an
// instant whose category is the event type string itself.
type traceCase struct {
	events []Event
	cat    string
}

func tev(typ Type, ts int64) Event {
	e := Ev(typ)
	e.TS = ts
	e.App = "app-1"
	return e
}

func tevExec(typ Type, ts int64) Event {
	e := tev(typ, ts)
	e.Exec = "x0"
	e.Kind = "vm"
	return e
}

func tevTask(typ Type, ts int64) Event {
	e := tevExec(typ, ts)
	e.Stage = 0
	e.Task = 0
	return e
}

// traceVocabulary maps every event type in the closed vocabulary to a
// minimal log that renders it. TestTraceCoversVocabulary fails when a
// type added to AllTypes is missing here, which is the prompt to teach
// BuildTrace about it (and then this table) rather than letting the new
// type silently vanish from rendered traces.
func traceVocabulary() map[Type]traceCase {
	instant := func(typ Type) traceCase {
		return traceCase{events: []Event{tev(typ, 10)}, cat: string(typ)}
	}
	instantExec := func(typ Type) traceCase {
		return traceCase{events: []Event{tevExec(typ, 10)}, cat: string(typ)}
	}
	return map[Type]traceCase{
		// Engine lifecycle slices.
		JobStart: {events: []Event{tev(JobStart, 0)}, cat: "job"},
		JobEnd:   {events: []Event{tev(JobStart, 0), tev(JobEnd, 1000)}, cat: "job"},
		StageStart: {events: []Event{func() Event {
			e := tev(StageStart, 0)
			e.Stage = 0
			return e
		}()}, cat: "stage"},
		StageEnd: {events: []Event{func() Event {
			e := tev(StageStart, 0)
			e.Stage = 0
			return e
		}(), func() Event {
			e := tev(StageEnd, 1000)
			e.Stage = 0
			return e
		}()}, cat: "stage"},
		TaskStart:  {events: []Event{tevTask(TaskStart, 0)}, cat: "task"},
		TaskEnd:    {events: []Event{tevTask(TaskStart, 0), tevTask(TaskEnd, 1000)}, cat: "task"},
		TaskFailed: {events: []Event{tevTask(TaskStart, 0), tevTask(TaskFailed, 1000)}, cat: "task"},
		ExecutorAdd: {events: []Event{tevExec(ExecutorAdd, 0)},
			cat: "executor"},
		ExecutorRemove: {events: []Event{tevExec(ExecutorAdd, 0), tevExec(ExecutorRemove, 1000)},
			cat: "executor"},

		// Engine instants.
		TaskSpeculated:   instant(TaskSpeculated),
		StageResubmitted: instant(StageResubmitted),
		ExecutorDrain:    instantExec(ExecutorDrain),
		Segue:            instant(Segue),

		// Shuffle and HDFS traffic.
		ShuffleWrite: instantExec(ShuffleWrite),
		ShuffleRead:  instantExec(ShuffleRead),
		HDFSWrite:    instantExec(HDFSWrite),
		HDFSRead:     instantExec(HDFSRead),

		// Cloud control plane.
		VMRequest:     instant(VMRequest),
		VMReady:       instant(VMReady),
		LambdaInvoke:  instant(LambdaInvoke),
		LambdaReady:   instant(LambdaReady),
		LambdaRelease: instant(LambdaRelease),
		CoreLease:     instant(CoreLease),
		CoreRelease:   instant(CoreRelease),

		// Cluster scheduler. Admit opens the job slice; finish/fail close it.
		ClusterArrive: instant(ClusterArrive),
		ClusterAdmit:  {events: []Event{tev(ClusterAdmit, 0)}, cat: "job"},
		ClusterFinish: {events: []Event{tev(ClusterAdmit, 0), tev(ClusterFinish, 1000)}, cat: "job"},
		ClusterFail:   {events: []Event{tev(ClusterAdmit, 0), tev(ClusterFail, 1000)}, cat: "job"},
		SLOViolate:    instant(SLOViolate),
		SegueCoreGrant: {events: []Event{tevExec(SegueCoreGrant, 10)},
			cat: string(SegueCoreGrant)},
		AutoscaleOrder: instant(AutoscaleOrder),

		// Elasticity.
		VMReleaseIdle: instant(VMReleaseIdle),
		ClusterShed:   instant(ClusterShed),
		ClusterDelay:  instant(ClusterDelay),

		// Cost manager.
		CostPick: instant(CostPick),

		// Warm pool (PR 7's four types).
		LambdaWarmHit:  instant(LambdaWarmHit),
		TmpCacheHit:    instantExec(TmpCacheHit),
		TmpCacheEvict:  instantExec(TmpCacheEvict),
		WarmpoolResize: instant(WarmpoolResize),

		// Sharded control plane (PR 10's three types). Exec carries the
		// tenant id on all three; none of them may open an executor track.
		ShardAssign:  instantExec(ShardAssign),
		ShardSteal:   instantExec(ShardSteal),
		TenantReport: instantExec(TenantReport),
	}
}

// TestTraceCoversVocabulary walks the full closed vocabulary and asserts
// every type has a trace mapping that actually renders. Two failure
// modes, both deliberate: a type in AllTypes with no table entry (a new
// event type was added without deciding how it traces), and a table
// entry whose events produce no trace output (BuildTrace's switch does
// not handle it).
func TestTraceCoversVocabulary(t *testing.T) {
	vocab := traceVocabulary()
	for _, typ := range AllTypes() {
		tc, ok := vocab[typ]
		if !ok {
			t.Errorf("event type %q has no Chrome-trace mapping: add a case to BuildTrace and to traceVocabulary", typ)
			continue
		}
		tf := BuildTrace(tc.events)
		found := false
		for _, te := range tf.TraceEvents {
			if te.Ph == "M" {
				continue // metadata, not a rendering of the event
			}
			if te.Cat == tc.cat {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("event type %q: BuildTrace produced no trace event with cat %q (events: %+v)",
				typ, tc.cat, tc.events)
		}
	}
	// The table may not drift ahead of the vocabulary either.
	for typ := range vocab {
		if !typ.Valid() {
			t.Errorf("traceVocabulary lists unknown type %q", typ)
		}
	}
}

// TestAllTypesIsClosed pins the vocabulary size and the PR 7 warm-pool
// additions so an accidental constant deletion is caught as loudly as an
// unmapped addition.
func TestAllTypesIsClosed(t *testing.T) {
	all := AllTypes()
	seen := map[Type]bool{}
	for _, typ := range all {
		if seen[typ] {
			t.Errorf("AllTypes lists %q twice", typ)
		}
		seen[typ] = true
		if !typ.Valid() {
			t.Errorf("AllTypes lists %q but Valid rejects it", typ)
		}
	}
	for _, typ := range []Type{LambdaWarmHit, TmpCacheHit, TmpCacheEvict, WarmpoolResize} {
		if !seen[typ] {
			t.Errorf("warm-pool type %q missing from AllTypes", typ)
		}
	}
	for _, typ := range []Type{ShardAssign, ShardSteal, TenantReport} {
		if !seen[typ] {
			t.Errorf("shard type %q missing from AllTypes", typ)
		}
	}
	if got := len(all); got != 42 {
		t.Errorf("closed vocabulary has %d types, want 42 — update this pin alongside AllTypes and BuildTrace", got)
	}
}
