package eventlog

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestAnalyzeEmptyLog: an empty stream yields the typed "no tasks"
// result with zeroed aggregates — no panic, no NaN, a clear message.
func TestAnalyzeEmptyLog(t *testing.T) {
	a := Analyze(nil, 0)
	if !a.NoTasks() {
		t.Fatal("empty log not flagged as NoTasks")
	}
	if a.EndUS != 0 || len(a.Stages) != 0 || len(a.Executors) != 0 {
		t.Fatalf("empty log analysis carries data: %+v", a)
	}
	if s := a.String(); !strings.Contains(s, "no tasks") {
		t.Fatalf("String() does not state the no-tasks result:\n%s", s)
	}
}

// TestAnalyzeClusterOnlyLog: a log with only cluster/control-plane and
// executor events (jobs shed before running any task) must produce a
// NoTasks analysis with finite executor utilization.
func TestAnalyzeClusterOnlyLog(t *testing.T) {
	b := NewBus(testOrigin)
	emit := func(d time.Duration, e Event) { b.Emit(at(d), e) }

	e := Ev(ClusterArrive)
	e.App, e.Note, e.Cores = "j000-shed", "sparkpi", 8
	emit(0, e)
	e = Ev(ClusterAdmit)
	e.App, e.Cores = "j000-shed", 8
	emit(time.Second, e)
	e = Ev(ExecutorAdd)
	e.App, e.Exec, e.Kind, e.Cores = "j000-shed", "j000-v00", "vm", 1
	emit(2*time.Second, e)
	e = Ev(ExecutorRemove)
	e.App, e.Exec = "j000-shed", "j000-v00"
	emit(3*time.Second, e)
	e = Ev(ClusterFail)
	e.App, e.Note = "j000-shed", "sparkpi"
	emit(3*time.Second, e)

	a := Analyze(b.Events(), 0)
	if !a.NoTasks() {
		t.Fatal("cluster-only log not flagged as NoTasks")
	}
	if len(a.Executors) != 1 {
		t.Fatalf("got %d executors, want 1", len(a.Executors))
	}
	x := a.Executors[0]
	if x.Tasks != 0 || x.Util != 0 || math.IsNaN(x.Util) || math.IsInf(x.Util, 0) {
		t.Fatalf("idle executor stats not zeroed: %+v", x)
	}
	if s := a.String(); !strings.Contains(s, "no tasks") || !strings.Contains(s, "1 executors") {
		t.Fatalf("String() does not summarise the cluster-only log:\n%s", s)
	}
}

// TestAnalyzeZeroDurationTask: an instantaneous task must not divide by
// zero anywhere (median 0 disables the straggler rule, utilization
// stays finite).
func TestAnalyzeZeroDurationTask(t *testing.T) {
	b := NewBus(testOrigin)
	emit := func(d time.Duration, e Event) { b.Emit(at(d), e) }

	e := Ev(ExecutorAdd)
	e.App, e.Exec, e.Kind, e.Cores = "app-1", "vm-0", "vm", 1
	emit(0, e)
	e = Ev(TaskStart)
	e.App, e.Exec, e.Stage, e.Task = "app-1", "vm-0", 0, 0
	emit(time.Second, e)
	e = Ev(TaskEnd)
	e.App, e.Exec, e.Stage, e.Task = "app-1", "vm-0", 0, 0
	emit(time.Second, e)

	a := Analyze(b.Events(), 0)
	if a.NoTasks() || a.TaskCount != 1 {
		t.Fatalf("TaskCount = %d, want 1", a.TaskCount)
	}
	s := a.Stages[0]
	if s.MedianUS != 0 || len(s.Stragglers) != 0 {
		t.Fatalf("zero-duration stage misanalysed: %+v", s)
	}
	for _, x := range a.Executors {
		if math.IsNaN(x.Util) || math.IsInf(x.Util, 0) {
			t.Fatalf("executor utilization not finite: %+v", x)
		}
	}
	if s := a.String(); !strings.Contains(s, "stage summary") {
		t.Fatalf("String() skipped tables for a log that has a task:\n%s", s)
	}
}
