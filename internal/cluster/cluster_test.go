package cluster

import (
	"bytes"
	"testing"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/sparkpi"
)

// piJob builds a sparkpi workload sized so each of its partitions runs
// about taskSecs seconds of simulated CPU on one core, with negligible
// real CPU (small sample count).
func piJob(partitions int, taskSecs float64) workloads.Workload {
	cfg := sparkpi.Config{
		// source cost per task = Darts/Partitions × CostPerDart work
		// units; the default perf model runs 5e7 units/sec/core.
		Darts: int64(float64(partitions) * taskSecs * 5e7 / 0.4),
		// ~400k real samples per job keeps the pi estimate inside the
		// workload's plausibility check without burning test CPU.
		SampledDartsPerTask: 400_000 / partitions,
		Partitions:          partitions,
		CostPerDart:         0.4,
		Seed:                3,
	}
	return sparkpi.New(cfg)
}

func testJobs(t *testing.T, arrivals []time.Duration, cores, partitions int, taskSecs float64) []JobSpec {
	t.Helper()
	base, err := Baseline(piJob(partitions, taskSecs), cores, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	jobs := make([]JobSpec, len(arrivals))
	for i, at := range arrivals {
		jobs[i] = JobSpec{
			Workload: piJob(partitions, taskSecs),
			Cores:    cores,
			Arrival:  at,
			Baseline: base,
		}
	}
	return jobs
}

func runCluster(t *testing.T, cfg Config) *Report {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestClusterRunsJobStream(t *testing.T) {
	arrivals, err := ParseArrivals("poisson:8s", 6, 1)
	if err != nil {
		t.Fatalf("ParseArrivals: %v", err)
	}
	rep := runCluster(t, Config{
		Jobs:      testJobs(t, arrivals, 4, 8, 4),
		PoolCores: 4,
		Policy:    FairShare(),
		Strategy:  StrategyBridge,
		SLOFactor: 1.5,
		Seed:      1,
	})
	if rep.Completed != 6 || rep.Failed != 0 {
		t.Fatalf("completed %d failed %d, want 6/0:\n%s", rep.Completed, rep.Failed, rep)
	}
	for _, j := range rep.JobReports {
		if j.VMTasks+j.LambdaTasks == 0 {
			t.Errorf("job %d ran no tasks", j.ID)
		}
		if j.CostUSD <= 0 {
			t.Errorf("job %d has no cost", j.ID)
		}
		// Stretch can dip slightly below 1: while surplus Lambdas drain
		// (they finish their current task first), the job briefly runs
		// over-provisioned. It must still be positive and sane.
		if j.Stretch <= 0 || j.Stretch > 50 {
			t.Errorf("job %d has implausible stretch %.2f", j.ID, j.Stretch)
		}
	}
	if rep.TotalUSD <= rep.VMBaseUSD {
		t.Errorf("bridge run should accrue lambda cost: %+v", rep)
	}
}

func TestClusterSameSeedByteIdenticalReports(t *testing.T) {
	build := func() []byte {
		arrivals, err := ParseArrivals("poisson:15s", 5, 7)
		if err != nil {
			t.Fatalf("ParseArrivals: %v", err)
		}
		rep := runCluster(t, Config{
			Jobs:      testJobs(t, arrivals, 4, 6, 3),
			PoolCores: 8,
			Policy:    FairShare(),
			Strategy:  StrategyBridge,
			SLOFactor: 1.5,
			Seed:      1,
		})
		buf, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return buf
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed reports differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestFairShareBeatsFIFOQueueWait is the ISSUE's acceptance scenario: a
// long many-task job arrives first and hogs the pool; a burst of short
// jobs lands behind it. Under FIFO the head job keeps its full grant and
// the burst queues; fair share reclaims cores (task-by-task drain) and
// admits the burst almost immediately, so its p99 queue wait drops.
func TestFairShareBeatsFIFOQueueWait(t *testing.T) {
	specs := func() []JobSpec {
		big, err := Baseline(piJob(40, 6), 4, 9)
		if err != nil {
			t.Fatalf("Baseline big: %v", err)
		}
		small, err := Baseline(piJob(2, 5), 2, 9)
		if err != nil {
			t.Fatalf("Baseline small: %v", err)
		}
		jobs := []JobSpec{{Name: "big", Workload: piJob(40, 6), Cores: 4, Arrival: 0, Baseline: big}}
		burst, err := ParseArrivals("bursty:6x5m", 6, 1)
		if err != nil {
			t.Fatalf("ParseArrivals: %v", err)
		}
		for _, at := range burst {
			jobs = append(jobs, JobSpec{
				Name: "small", Workload: piJob(2, 5), Cores: 2,
				Arrival: 5*time.Second + at, Baseline: small,
			})
		}
		return jobs
	}
	run := func(p Policy) *Report {
		return runCluster(t, Config{
			Jobs:      specs(),
			PoolCores: 4,
			Policy:    p,
			Strategy:  StrategyQueue,
			SLOFactor: 2,
			Seed:      1,
		})
	}
	fifo := run(FIFO())
	fair := run(FairShare())
	if fifo.Completed != 7 || fair.Completed != 7 {
		t.Fatalf("completed fifo=%d fair=%d, want 7", fifo.Completed, fair.Completed)
	}
	if fair.QueueWaitP99US >= fifo.QueueWaitP99US {
		t.Fatalf("fair share p99 queue wait %s not better than fifo %s\nfifo:\n%s\nfair:\n%s",
			time.Duration(fair.QueueWaitP99US)*time.Microsecond,
			time.Duration(fifo.QueueWaitP99US)*time.Microsecond, fifo, fair)
	}
	// Same assertion through the exported histograms (non-strict: bucket
	// interpolation can tie when both land in the same bucket).
	if fair.QueueWaitHist.Count == 0 || fifo.QueueWaitHist.Count == 0 {
		t.Fatal("queue-wait histograms not exported in report")
	}
	if fair.QueueWaitHist.P99 > fifo.QueueWaitHist.P99 {
		t.Fatalf("fair share histogram p99 queue wait %.1fs worse than fifo %.1fs",
			fair.QueueWaitHist.P99, fifo.QueueWaitHist.P99)
	}
	if fair.StretchHist.Count == 0 || fifo.StretchHist.Count == 0 {
		t.Fatal("stretch histograms not exported in report")
	}
}

// TestClusterEventLogDeterministic runs the same multi-job day twice and
// requires byte-identical event logs — the cluster-path half of the
// replay-artifact guarantee (the single-run half lives in experiments).
func TestClusterEventLogDeterministic(t *testing.T) {
	run := func() []byte {
		arrivals, err := ParseArrivals("poisson:8s", 4, 1)
		if err != nil {
			t.Fatalf("ParseArrivals: %v", err)
		}
		s, err := New(Config{
			Jobs:      testJobs(t, arrivals, 4, 8, 4),
			PoolCores: 4,
			Policy:    FairShare(),
			Strategy:  StrategyBridge,
			SLOFactor: 2,
			Seed:      1,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		buf, err := s.Events().JSONL()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("cluster event log is empty")
	}
	if !bytes.Equal(a, b) {
		t.Error("two identical cluster runs produced different event logs")
	}
	// The stream must carry the cluster-layer vocabulary on top of the
	// per-job engine events.
	events, err := eventlog.ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	seen := map[eventlog.Type]bool{}
	for _, e := range events {
		seen[e.Type] = true
	}
	for _, want := range []eventlog.Type{
		eventlog.ClusterArrive, eventlog.ClusterAdmit, eventlog.ClusterFinish,
		eventlog.CoreLease, eventlog.TaskStart, eventlog.TaskEnd,
	} {
		if !seen[want] {
			t.Errorf("cluster event log missing %s events", want)
		}
	}
}

func TestPolicyTargets(t *testing.T) {
	cases := []struct {
		policy   Policy
		capacity int
		demands  []int
		want     []int
	}{
		{FIFO(), 8, []int{6, 4, 2}, []int{6, 2, 0}},
		{FIFO(), 8, []int{10}, []int{8}},
		{FairShare(), 8, []int{6, 4, 2}, []int{3, 3, 2}},
		{FairShare(), 12, []int{6, 4, 2}, []int{6, 4, 2}},
		{FairShare(), 7, []int{6, 4, 2}, []int{3, 2, 2}},
		{FairShare(), 0, []int{5}, []int{0}},
	}
	for _, c := range cases {
		got := c.policy.Targets(c.capacity, c.demands)
		if len(got) != len(c.want) {
			t.Fatalf("%s(%d, %v) = %v, want %v", c.policy.Name(), c.capacity, c.demands, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s(%d, %v) = %v, want %v", c.policy.Name(), c.capacity, c.demands, got, c.want)
				break
			}
		}
	}
}

func TestParseArrivals(t *testing.T) {
	if _, err := ParseArrivals("nope", 3, 1); err == nil {
		t.Error("unknown spec should error")
	}
	if _, err := ParseArrivals("poisson:-3s", 3, 1); err == nil {
		t.Error("negative mean should error")
	}
	uni, err := ParseArrivals("uniform:10s", 3, 1)
	if err != nil || len(uni) != 3 || uni[2] != 20*time.Second {
		t.Errorf("uniform = %v, %v", uni, err)
	}
	tr, err := ParseArrivals("trace:5s,1s,3s", 99, 1)
	if err != nil || len(tr) != 3 || tr[0] != time.Second {
		t.Errorf("trace = %v, %v", tr, err)
	}
	p1, _ := ParseArrivals("poisson:30s", 4, 2)
	p2, _ := ParseArrivals("poisson:30s", 4, 2)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("poisson not deterministic: %v vs %v", p1, p2)
		}
	}
	b, err := ParseArrivals("bursty:2x1m", 5, 1)
	if err != nil || b[1] != time.Second || b[2] != time.Minute {
		t.Errorf("bursty = %v, %v", b, err)
	}
}
