package cluster

import (
	"fmt"
	"strings"
)

// Policy decides how many shared-pool cores each active job is entitled
// to. Targets sees the demands of every queued or running job in arrival
// order and returns the aligned per-job core entitlements; the scheduler
// admits a queued job once its entitlement reaches one core, grants free
// cores up to the entitlement, and (for policies that shrink a running
// job's entitlement) reclaims the excess by draining executors.
type Policy interface {
	Name() string
	Targets(capacity int, demands []int) []int
}

// PolicyByName resolves "fifo" or "fair".
func PolicyByName(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "fifo":
		return FIFO(), nil
	case "fair":
		return FairShare(), nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (accepted: fifo, fair)", name)
	}
}

// FIFO grants each job its full demand in arrival order until the pool is
// exhausted — the head of the queue can starve everything behind it, the
// baseline the paper's shared-cluster motivation argues against.
func FIFO() Policy { return fifoPolicy{} }

type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Targets(capacity int, demands []int) []int {
	out := make([]int, len(demands))
	for i, d := range demands {
		give := d
		if give > capacity {
			give = capacity
		}
		out[i] = give
		capacity -= give
	}
	return out
}

// FairShare is integer max-min fairness over cores: capacity is
// water-filled one core at a time round-robin across jobs still below
// their demand, so no job can hold more than its fair share while another
// is starved. Remainder cores go to earlier arrivals, keeping the split
// deterministic.
func FairShare() Policy { return fairPolicy{} }

type fairPolicy struct{}

func (fairPolicy) Name() string { return "fair" }

func (fairPolicy) Targets(capacity int, demands []int) []int {
	out := make([]int, len(demands))
	for capacity > 0 {
		progress := false
		for i, d := range demands {
			if capacity == 0 {
				break
			}
			if out[i] < d {
				out[i]++
				capacity--
				progress = true
			}
		}
		if !progress {
			break // every demand is met
		}
	}
	return out
}
