package cluster

import (
	"fmt"
	"time"

	"splitserve/internal/autoscale"
	"splitserve/internal/cloud"
	"splitserve/internal/spark/engine"
	"splitserve/internal/telemetry"
	"splitserve/internal/warmpool"
)

// Per-executor launch constants, matching internal/core's defaults so the
// cluster layer's executors behave like the intra-job SplitServe backend.
const (
	vmExecLaunchDelay     = time.Second
	lambdaExecLaunchDelay = 1500 * time.Millisecond
	ttlSafetyMargin       = 60 * time.Second
	lambdaCPUFactor       = 0.85
)

// jobBackend is one job's engine.Backend inside a shared cluster. Unlike
// internal/core's SplitServe (which owns its VMs outright), a jobBackend
// runs VM executors only on cores leased from the scheduler's shared
// CorePool; the scheduler's policy decides how many leases it gets, and
// can claw them back (reclaim) while the job runs. Under StrategyBridge
// the shortfall between the engine's desired executor total and the
// leased cores is served by Lambda executors, exactly the paper's
// system-wide launching facility: the job needs R, the pool spares r,
// and Δ = R−r Lambdas absorb the difference.
type jobBackend struct {
	s *Scheduler
	j *job
	c *engine.Cluster

	desired int

	// spare holds granted-but-unlaunched core leases; leaseByExec maps a
	// launched (or launching) VM executor to the lease backing it.
	spare       []*cloud.CoreLease
	leaseByExec map[string]*cloud.CoreLease

	vmLive, vmPending         int
	lambdaLive, lambdaPending int
	// drainingVM counts VM executors being reclaimed: they still hold a
	// lease but no longer count toward the job's effective share.
	drainingVM int

	lambdaByExec map[string]*cloud.Lambda
	// envByExec maps a provisioned-concurrency executor to the warm-pool
	// environment hosting it, returned to the pool on removal.
	envByExec map[string]*warmpool.Env
	draining  map[string]bool
	execSeq   int
	done      bool
}

func newJobBackend(s *Scheduler, j *job) *jobBackend {
	return &jobBackend{
		s: s, j: j,
		leaseByExec:  make(map[string]*cloud.CoreLease),
		lambdaByExec: make(map[string]*cloud.Lambda),
		envByExec:    make(map[string]*warmpool.Env),
		draining:     make(map[string]bool),
	}
}

// Name implements engine.Backend.
func (b *jobBackend) Name() string { return "cluster" }

// Start implements engine.Backend.
func (b *jobBackend) Start(c *engine.Cluster) { b.c = c }

// SetDesiredTotal implements engine.Backend.
func (b *jobBackend) SetDesiredTotal(n int) {
	b.desired = n
	b.reconcile()
}

// JobSubmitted / JobFinished implement engine.Backend; sizing is fixed by
// the static allocator, so both are no-ops.
func (b *jobBackend) JobSubmitted(name string, slo time.Duration) {}
func (b *jobBackend) JobFinished()                                {}

func (b *jobBackend) live() int     { return b.vmLive + b.lambdaLive }
func (b *jobBackend) inFlight() int { return b.vmPending + b.lambdaPending }

// coresHeld is how many pool cores the job currently occupies (launched,
// launching, or spare).
func (b *jobBackend) coresHeld() int { return len(b.spare) + len(b.leaseByExec) }

// vmEffective is the job's effective share: held cores minus ones already
// being reclaimed. The scheduler grants/reclaims against this number.
func (b *jobBackend) vmEffective() int { return b.coresHeld() - b.drainingVM }

// addLeases hands the backend freshly acquired pool cores.
func (b *jobBackend) addLeases(leases []*cloud.CoreLease) {
	b.spare = append(b.spare, leases...)
	if b.c != nil {
		b.reconcile()
	}
}

// reconcile launches a VM executor per spare lease and, under
// StrategyBridge, tops the job up to its desired total with Lambdas.
func (b *jobBackend) reconcile() {
	if b.done || b.c == nil {
		return
	}
	for len(b.spare) > 0 {
		lease := b.spare[0]
		b.spare = b.spare[1:]
		b.launchVMExecutor(lease)
	}
	if b.s.cfg.Strategy != autoscale.StrategyBridge {
		return
	}
	for b.live()+b.inFlight() < b.desired {
		b.launchLambdaExecutor()
	}
}

func (b *jobBackend) launchVMExecutor(lease *cloud.CoreLease) {
	b.vmPending++
	b.execSeq++
	id := fmt.Sprintf("%s-v%02d", b.j.execPrefix, b.execSeq)
	b.leaseByExec[id] = lease
	vm := lease.VM()
	launch := b.c.Telemetry().Tracer().StartSpan("executor", "launch",
		telemetry.L("exec", id), telemetry.L("kind", "vm"), telemetry.L("app", b.j.appID))
	b.c.Clock().After(vmExecLaunchDelay, func() {
		b.vmPending--
		launch.End()
		if b.done || vm.State != cloud.VMReady {
			b.releaseLeaseFor(id)
			return
		}
		b.vmLive++
		cl := engine.VMExecutorClient(vm)
		b.c.RegisterExecutor(engine.ExecutorSpec{
			ID: id, Kind: engine.ExecVM, HostID: vm.ID,
			MemoryMB: engine.VMExecutorMemoryMB(vm.Type), CPUShare: 1,
			IO: cl, Serve: cl, VM: vm,
		})
		// The per-job segue: a VM core coming online displaces the most
		// senior Lambda once the job is at (or over) strength.
		if b.lambdaLive > 0 && b.live() > b.desired {
			b.drainOldestLambda()
		}
	})
}

func (b *jobBackend) launchLambdaExecutor() {
	// The launching facility prefers the provisioned-concurrency pool: a
	// warm environment starts in ~100 ms instead of a cold start, and its
	// /tmp cache may already hold shuffle blocks from earlier work.
	if b.s.warm != nil {
		if env := b.s.warm.Acquire(); env != nil {
			b.launchProvisionedExecutor(env)
			return
		}
	}
	b.lambdaPending++
	b.execSeq++
	id := fmt.Sprintf("%s-l%02d", b.j.execPrefix, b.execSeq)
	cfg := cloud.LambdaConfig{MemoryMB: b.s.cfg.LambdaMemoryMB}
	launch := b.c.Telemetry().Tracer().StartSpan("executor", "launch",
		telemetry.L("exec", id), telemetry.L("kind", "lambda"), telemetry.L("app", b.j.appID))
	l, err := b.c.Provider().Invoke(cfg,
		func(l *cloud.Lambda) {
			b.c.Clock().After(lambdaExecLaunchDelay, func() {
				b.lambdaPending--
				launch.End()
				if b.done || b.live() >= b.desired {
					b.c.Provider().Release(l)
					return
				}
				b.lambdaLive++
				b.lambdaByExec[id] = l
				cl := engine.LambdaExecutorClient(l)
				b.c.RegisterExecutor(engine.ExecutorSpec{
					ID: id, Kind: engine.ExecLambda, HostID: l.ID,
					MemoryMB: cfg.MemoryMB,
					CPUShare: cfg.CPUShare(b.c.Provider().Limits()) * lambdaCPUFactor,
					IO:       cl, Serve: cl, Lambda: l,
				})
			})
		},
		func(l *cloud.Lambda) { b.onLambdaExpired(id) })
	if err != nil {
		b.lambdaPending--
		launch.End()
		return
	}
	b.j.lambdas = append(b.j.lambdas, l)
}

// launchProvisionedExecutor hosts a Lambda executor on a warm-pool
// environment. The executor's HostID is the *environment* ID, not the
// invocation ID, so /tmp-cached shuffle blocks keyed by host survive
// across the invocations (and jobs) the environment serves.
func (b *jobBackend) launchProvisionedExecutor(env *warmpool.Env) {
	b.lambdaPending++
	b.execSeq++
	id := fmt.Sprintf("%s-w%02d", b.j.execPrefix, b.execSeq)
	cfg := cloud.LambdaConfig{MemoryMB: b.s.cfg.LambdaMemoryMB}
	launch := b.c.Telemetry().Tracer().StartSpan("executor", "launch",
		telemetry.L("exec", id), telemetry.L("kind", "warm-lambda"), telemetry.L("app", b.j.appID))
	l, err := b.c.Provider().InvokeProvisioned(cfg,
		func(l *cloud.Lambda) {
			b.c.Clock().After(lambdaExecLaunchDelay, func() {
				b.lambdaPending--
				launch.End()
				if b.done || b.live() >= b.desired {
					b.c.Provider().Release(l)
					b.s.warm.Release(env)
					return
				}
				b.lambdaLive++
				b.lambdaByExec[id] = l
				b.envByExec[id] = env
				if b.s.tmpCache != nil {
					b.s.tmpCache.Track(env.ID)
				}
				cl := engine.LambdaExecutorClient(l)
				cl.HostID = env.ID
				b.c.RegisterExecutor(engine.ExecutorSpec{
					ID: id, Kind: engine.ExecLambda, HostID: env.ID,
					MemoryMB: cfg.MemoryMB,
					CPUShare: cfg.CPUShare(b.c.Provider().Limits()) * lambdaCPUFactor,
					IO:       cl, Serve: cl, Lambda: l,
				})
			})
		},
		func(l *cloud.Lambda) { b.onLambdaExpired(id) })
	if err != nil {
		b.lambdaPending--
		launch.End()
		b.s.warm.Release(env)
		return
	}
	b.j.lambdas = append(b.j.lambdas, l)
}

// releaseEnvFor returns a provisioned executor's environment to the warm
// pool (no-op for on-demand Lambda executors).
func (b *jobBackend) releaseEnvFor(id string) {
	if env := b.envByExec[id]; env != nil {
		delete(b.envByExec, id)
		b.s.warm.Release(env)
	}
}

func (b *jobBackend) onLambdaExpired(id string) {
	if b.done {
		return
	}
	if e := b.c.Executor(id); e != nil && e.State != engine.ExecDead {
		b.lambdaLive--
		delete(b.lambdaByExec, id)
		b.releaseEnvFor(id)
		delete(b.draining, id)
		b.c.RemoveExecutor(id, true, "lambda lifetime expired")
		b.reconcile()
	}
}

// drainOldestLambda retires the longest-lived Lambda executor (the most
// TTL-exposed one) in favor of a VM core.
func (b *jobBackend) drainOldestLambda() {
	for _, e := range b.c.AllExecutors() {
		if e.Kind != engine.ExecLambda || e.State == engine.ExecDead || b.draining[e.ID] {
			continue
		}
		b.draining[e.ID] = true
		b.c.DrainExecutor(e.ID)
		return
	}
}

// reclaim gives n cores back to the pool: spare (unlaunched) leases go
// immediately; the rest drain live VM executors newest-first, so the
// oldest executors — the ones with the warmest block caches — survive.
// Cores attached to launches still in flight cannot be clawed back.
func (b *jobBackend) reclaim(n int) {
	if b.done {
		return
	}
	for n > 0 && len(b.spare) > 0 {
		lease := b.spare[len(b.spare)-1]
		b.spare = b.spare[:len(b.spare)-1]
		lease.Release()
		b.s.onCoresFreed()
		n--
	}
	if n <= 0 || b.c == nil {
		return
	}
	execs := b.c.AllExecutors()
	var victims []string
	for i := len(execs) - 1; i >= 0 && len(victims) < n; i-- {
		e := execs[i]
		if e.Kind != engine.ExecVM || e.State == engine.ExecDead || b.draining[e.ID] {
			continue
		}
		victims = append(victims, e.ID)
	}
	for _, id := range victims {
		b.draining[id] = true
		b.drainingVM++
		b.c.DrainExecutor(id)
	}
}

// AllowAssign implements engine.Backend: it vetoes task placement on
// Lambdas close to their lifetime limit and starts their drain, the same
// TTL segue internal/core runs.
func (b *jobBackend) AllowAssign(e *engine.Executor) bool {
	if e.Kind != engine.ExecLambda {
		return true
	}
	l := b.lambdaByExec[e.ID]
	if l == nil {
		return true
	}
	if b.c.Provider().TimeToLive(l) < ttlSafetyMargin {
		if !b.draining[e.ID] {
			b.draining[e.ID] = true
			b.c.DrainExecutor(e.ID)
		}
		return false
	}
	return true
}

// ExecutorDrained implements engine.Backend.
func (b *jobBackend) ExecutorDrained(e *engine.Executor) { b.remove(e, "drained") }

// ReleaseIdle implements engine.Backend.
func (b *jobBackend) ReleaseIdle(e *engine.Executor) { b.remove(e, "idle timeout") }

func (b *jobBackend) remove(e *engine.Executor, reason string) {
	if b.done || e.State == engine.ExecDead {
		return
	}
	switch e.Kind {
	case engine.ExecLambda:
		if l := b.lambdaByExec[e.ID]; l != nil {
			b.c.Provider().Release(l)
			delete(b.lambdaByExec, e.ID)
		}
		b.releaseEnvFor(e.ID)
		b.lambdaLive--
		b.c.RemoveExecutor(e.ID, true, reason)
	case engine.ExecVM:
		b.vmLive--
		if b.draining[e.ID] {
			b.drainingVM--
		}
		b.c.RemoveExecutor(e.ID, false, reason)
		b.releaseLeaseFor(e.ID)
	}
	delete(b.draining, e.ID)
	b.reconcile()
}

func (b *jobBackend) releaseLeaseFor(id string) {
	if lease := b.leaseByExec[id]; lease != nil {
		delete(b.leaseByExec, id)
		lease.Release()
		b.s.onCoresFreed()
	}
}

// shutdown tears the backend down after the job's workload returns:
// Lambdas are released, VM executors removed and their leases returned to
// the pool. Launch callbacks still in flight observe done and self-release.
func (b *jobBackend) shutdown() {
	if b.done {
		return
	}
	b.done = true
	if b.c != nil {
		for _, e := range b.c.AllExecutors() {
			if e.State == engine.ExecDead {
				continue
			}
			switch e.Kind {
			case engine.ExecLambda:
				if l := b.lambdaByExec[e.ID]; l != nil {
					b.c.Provider().Release(l)
					delete(b.lambdaByExec, e.ID)
				}
				b.releaseEnvFor(e.ID)
				b.c.RemoveExecutor(e.ID, true, "job complete")
			case engine.ExecVM:
				b.c.RemoveExecutor(e.ID, false, "job complete")
				b.releaseLeaseFor(e.ID)
			}
		}
	}
	for _, lease := range b.spare {
		lease.Release()
	}
	b.spare = nil
	b.s.onCoresFreed()
}
