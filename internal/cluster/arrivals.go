package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"splitserve/internal/simrand"
)

// ParseArrivals builds n job-arrival offsets from a spec string:
//
//	poisson:MEAN     exponential inter-arrival times with the given mean
//	                 (e.g. "poisson:30s")
//	uniform:GAP      fixed spacing (e.g. "uniform:1m")
//	bursty:KxGAP     bursts of K back-to-back jobs (1 s apart), bursts
//	                 GAP apart (e.g. "bursty:4x5m")
//	trace:D1,D2,...  explicit offsets (e.g. "trace:0s,5s,5s,90s"); n is
//	                 ignored — the trace length wins
//
// Offsets are returned sorted ascending. The draw is deterministic in
// (spec, n, seed).
func ParseArrivals(spec string, n int, seed uint64) ([]time.Duration, error) {
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative job count %d", n)
	}
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "poisson":
		mean, err := time.ParseDuration(arg)
		if err != nil || mean <= 0 {
			return nil, fmt.Errorf("cluster: bad poisson mean %q (want e.g. poisson:30s)", arg)
		}
		rng := simrand.New(seed ^ 0xa881)
		out := make([]time.Duration, 0, n)
		at := time.Duration(0)
		for i := 0; i < n; i++ {
			at += time.Duration(rng.Exp(1/mean.Seconds()) * float64(time.Second))
			out = append(out, at)
		}
		return out, nil
	case "uniform":
		gap, err := time.ParseDuration(arg)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("cluster: bad uniform gap %q (want e.g. uniform:1m)", arg)
		}
		out := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, time.Duration(i)*gap)
		}
		return out, nil
	case "bursty":
		sizeStr, gapStr, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("cluster: bad bursty spec %q (want e.g. bursty:4x5m)", arg)
		}
		size := 0
		if _, err := fmt.Sscanf(sizeStr, "%d", &size); err != nil || size <= 0 {
			return nil, fmt.Errorf("cluster: bad bursty burst size %q", sizeStr)
		}
		gap, err := time.ParseDuration(gapStr)
		if err != nil || gap <= 0 {
			return nil, fmt.Errorf("cluster: bad bursty gap %q", gapStr)
		}
		out := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			burst, pos := i/size, i%size
			out = append(out, time.Duration(burst)*gap+time.Duration(pos)*time.Second)
		}
		return out, nil
	case "trace":
		parts := strings.Split(arg, ",")
		out := make([]time.Duration, 0, len(parts))
		for _, p := range parts {
			d, err := time.ParseDuration(strings.TrimSpace(p))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("cluster: bad trace offset %q", p)
			}
			out = append(out, d)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("cluster: empty trace")
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	default:
		return nil, fmt.Errorf("cluster: unknown arrival spec %q (want poisson:MEAN, uniform:GAP, bursty:KxGAP or trace:...)", spec)
	}
}
