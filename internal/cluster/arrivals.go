package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"

	"splitserve/internal/simrand"
)

// ParseArrivals builds n job-arrival offsets from a spec string:
//
//	poisson:MEAN     exponential inter-arrival times with the given mean
//	                 (e.g. "poisson:30s")
//	uniform:GAP      fixed spacing (e.g. "uniform:1m")
//	bursty:KxGAP     bursts of K back-to-back jobs (1 s apart), bursts
//	                 GAP apart (e.g. "bursty:4x5m")
//	trace:D1,D2,...  explicit offsets (e.g. "trace:0s,5s,5s,90s"); n is
//	                 ignored — the trace length wins
//	tracefile:PATH   offsets (and optionally per-job cores) from a CSV
//	                 file, one "OFFSET" or "OFFSET,CORES" row per line;
//	                 n is ignored — the file length wins
//
// Offsets are returned sorted ascending. The draw is deterministic in
// (spec, n, seed).
func ParseArrivals(spec string, n int, seed uint64) ([]time.Duration, error) {
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative job count %d", n)
	}
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "poisson":
		mean, err := time.ParseDuration(arg)
		if err != nil || mean <= 0 {
			return nil, fmt.Errorf("cluster: bad poisson mean %q (want e.g. poisson:30s)", arg)
		}
		rng := simrand.New(seed ^ 0xa881)
		out := make([]time.Duration, 0, n)
		at := time.Duration(0)
		for i := 0; i < n; i++ {
			at += time.Duration(rng.Exp(1/mean.Seconds()) * float64(time.Second))
			out = append(out, at)
		}
		return out, nil
	case "uniform":
		gap, err := time.ParseDuration(arg)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("cluster: bad uniform gap %q (want e.g. uniform:1m)", arg)
		}
		out := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, time.Duration(i)*gap)
		}
		return out, nil
	case "bursty":
		sizeStr, gapStr, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("cluster: bad bursty spec %q (want e.g. bursty:4x5m)", arg)
		}
		size := 0
		if _, err := fmt.Sscanf(sizeStr, "%d", &size); err != nil || size <= 0 {
			return nil, fmt.Errorf("cluster: bad bursty burst size %q", sizeStr)
		}
		gap, err := time.ParseDuration(gapStr)
		if err != nil || gap <= 0 {
			return nil, fmt.Errorf("cluster: bad bursty gap %q", gapStr)
		}
		out := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			burst, pos := i/size, i%size
			out = append(out, time.Duration(burst)*gap+time.Duration(pos)*time.Second)
		}
		// When K×1s exceeds GAP the tail of one burst lands after the head
		// of the next; sort so the documented ascending contract holds.
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	case "tracefile":
		tr, err := LoadArrivalTrace(arg)
		if err != nil {
			return nil, err
		}
		return tr.Offsets, nil
	case "trace":
		parts := strings.Split(arg, ",")
		out := make([]time.Duration, 0, len(parts))
		for _, p := range parts {
			d, err := time.ParseDuration(strings.TrimSpace(p))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("cluster: bad trace offset %q", p)
			}
			out = append(out, d)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("cluster: empty trace")
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	default:
		return nil, fmt.Errorf("cluster: unknown arrival spec %q (want poisson:MEAN, uniform:GAP, bursty:KxGAP, trace:... or tracefile:PATH)", spec)
	}
}

// ArrivalTrace is a parsed tracefile: arrival offsets sorted ascending,
// plus parallel Cores and Tenants slices (0 / "" where a row gave no
// core count or tenant). The slices are reordered together, so Cores[i]
// and Tenants[i] always belong to Offsets[i].
type ArrivalTrace struct {
	Offsets []time.Duration
	Cores   []int
	Tenants []string
	// Warnings collects non-fatal input oddities — a skipped header row,
	// rows that arrived out of order (sorted; warned once) — so the CLI
	// can surface them without failing the run.
	Warnings []string
}

// Tenanted reports whether any row carried a tenant label.
func (tr *ArrivalTrace) Tenanted() bool {
	for _, t := range tr.Tenants {
		if t != "" {
			return true
		}
	}
	return false
}

// maxTraceFileBytes caps how much of a tracefile is read — a malformed
// path (FIFO, device, huge file) fails fast instead of wedging the CLI.
const maxTraceFileBytes = 1 << 20

// LoadArrivalTrace reads a CSV arrival trace from path. Only regular files
// up to 1 MiB are accepted.
func LoadArrivalTrace(path string) (*ArrivalTrace, error) {
	if path == "" {
		return nil, fmt.Errorf("cluster: tracefile: empty path")
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: tracefile: %w", err)
	}
	if !fi.Mode().IsRegular() {
		return nil, fmt.Errorf("cluster: tracefile %s: not a regular file", path)
	}
	if fi.Size() > maxTraceFileBytes {
		return nil, fmt.Errorf("cluster: tracefile %s: %d bytes exceeds the %d-byte cap", path, fi.Size(), maxTraceFileBytes)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: tracefile: %w", err)
	}
	defer f.Close()
	tr, err := ParseArrivalTrace(io.LimitReader(f, maxTraceFileBytes))
	if err != nil {
		return nil, fmt.Errorf("cluster: tracefile %s: %w", path, err)
	}
	return tr, nil
}

// ParseArrivalTrace parses CSV rows of the form "OFFSET", "OFFSET,CORES"
// or "OFFSET,CORES,TENANT" (e.g. "30s,4,t02"; an empty CORES field —
// "30s,,t02" — means "no pin"). Blank lines and lines starting with '#'
// are skipped, as is a leading header row ("offset,cores,tenant" style —
// production trace exports usually carry one); CRLF line endings are
// tolerated. Malformed rows are rejected with their line number. Rows are
// sorted by offset (stably, so equal offsets keep file order) before
// returning; when the input was out of order, a single warning is
// recorded rather than an error — published traces are frequently sorted
// by tenant, not time.
func ParseArrivalTrace(r io.Reader) (*ArrivalTrace, error) {
	type row struct {
		offset time.Duration
		cores  int
		tenant string
	}
	var rows []row
	var warnings []string
	sc := bufio.NewScanner(r)
	line := 0
	sorted := true
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text()) // also strips a trailing \r
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Split(s, ",")
		if len(fields) > 3 {
			return nil, fmt.Errorf("line %d: %d fields (want OFFSET[,CORES[,TENANT]])", line, len(fields))
		}
		off := strings.TrimSpace(fields[0])
		d, err := time.ParseDuration(off)
		if err != nil {
			// Header tolerance: an unparsable first data row that contains
			// letters ("offset,cores,tenant") is skipped with a warning;
			// anything later is a data error.
			if len(rows) == 0 && strings.IndexFunc(off, unicode.IsLetter) >= 0 {
				warnings = append(warnings, fmt.Sprintf("line %d: skipped header row %q", line, s))
				continue
			}
			return nil, fmt.Errorf("line %d: bad offset %q", line, off)
		}
		if d < 0 {
			return nil, fmt.Errorf("line %d: bad offset %q", line, off)
		}
		cores := 0
		if len(fields) >= 2 {
			if cs := strings.TrimSpace(fields[1]); cs != "" {
				c, err := strconv.Atoi(cs)
				if err != nil || c < 1 {
					return nil, fmt.Errorf("line %d: bad cores %q", line, cs)
				}
				cores = c
			}
		}
		tenant := ""
		if len(fields) == 3 {
			tenant = strings.TrimSpace(fields[2])
		}
		if len(rows) > 0 && d < rows[len(rows)-1].offset {
			sorted = false
		}
		rows = append(rows, row{offset: d, cores: cores, tenant: tenant})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	if !sorted {
		warnings = append(warnings, "arrivals out of order: sorted rows by offset")
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].offset < rows[j].offset })
	}
	tr := &ArrivalTrace{
		Offsets:  make([]time.Duration, len(rows)),
		Cores:    make([]int, len(rows)),
		Tenants:  make([]string, len(rows)),
		Warnings: warnings,
	}
	for i, rw := range rows {
		tr.Offsets[i] = rw.offset
		tr.Cores[i] = rw.cores
		tr.Tenants[i] = rw.tenant
	}
	return tr, nil
}
