package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"splitserve/internal/simrand"
)

// ParseArrivals builds n job-arrival offsets from a spec string:
//
//	poisson:MEAN     exponential inter-arrival times with the given mean
//	                 (e.g. "poisson:30s")
//	uniform:GAP      fixed spacing (e.g. "uniform:1m")
//	bursty:KxGAP     bursts of K back-to-back jobs (1 s apart), bursts
//	                 GAP apart (e.g. "bursty:4x5m")
//	trace:D1,D2,...  explicit offsets (e.g. "trace:0s,5s,5s,90s"); n is
//	                 ignored — the trace length wins
//	tracefile:PATH   offsets (and optionally per-job cores) from a CSV
//	                 file, one "OFFSET" or "OFFSET,CORES" row per line;
//	                 n is ignored — the file length wins
//
// Offsets are returned sorted ascending. The draw is deterministic in
// (spec, n, seed).
func ParseArrivals(spec string, n int, seed uint64) ([]time.Duration, error) {
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative job count %d", n)
	}
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "poisson":
		mean, err := time.ParseDuration(arg)
		if err != nil || mean <= 0 {
			return nil, fmt.Errorf("cluster: bad poisson mean %q (want e.g. poisson:30s)", arg)
		}
		rng := simrand.New(seed ^ 0xa881)
		out := make([]time.Duration, 0, n)
		at := time.Duration(0)
		for i := 0; i < n; i++ {
			at += time.Duration(rng.Exp(1/mean.Seconds()) * float64(time.Second))
			out = append(out, at)
		}
		return out, nil
	case "uniform":
		gap, err := time.ParseDuration(arg)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("cluster: bad uniform gap %q (want e.g. uniform:1m)", arg)
		}
		out := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, time.Duration(i)*gap)
		}
		return out, nil
	case "bursty":
		sizeStr, gapStr, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("cluster: bad bursty spec %q (want e.g. bursty:4x5m)", arg)
		}
		size := 0
		if _, err := fmt.Sscanf(sizeStr, "%d", &size); err != nil || size <= 0 {
			return nil, fmt.Errorf("cluster: bad bursty burst size %q", sizeStr)
		}
		gap, err := time.ParseDuration(gapStr)
		if err != nil || gap <= 0 {
			return nil, fmt.Errorf("cluster: bad bursty gap %q", gapStr)
		}
		out := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			burst, pos := i/size, i%size
			out = append(out, time.Duration(burst)*gap+time.Duration(pos)*time.Second)
		}
		// When K×1s exceeds GAP the tail of one burst lands after the head
		// of the next; sort so the documented ascending contract holds.
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	case "tracefile":
		tr, err := LoadArrivalTrace(arg)
		if err != nil {
			return nil, err
		}
		return tr.Offsets, nil
	case "trace":
		parts := strings.Split(arg, ",")
		out := make([]time.Duration, 0, len(parts))
		for _, p := range parts {
			d, err := time.ParseDuration(strings.TrimSpace(p))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("cluster: bad trace offset %q", p)
			}
			out = append(out, d)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("cluster: empty trace")
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	default:
		return nil, fmt.Errorf("cluster: unknown arrival spec %q (want poisson:MEAN, uniform:GAP, bursty:KxGAP, trace:... or tracefile:PATH)", spec)
	}
}

// ArrivalTrace is a parsed tracefile: arrival offsets sorted ascending,
// plus a parallel Cores slice (0 where a row gave no core count). The two
// slices are reordered together, so Cores[i] always belongs to Offsets[i].
type ArrivalTrace struct {
	Offsets []time.Duration
	Cores   []int
}

// maxTraceFileBytes caps how much of a tracefile is read — a malformed
// path (FIFO, device, huge file) fails fast instead of wedging the CLI.
const maxTraceFileBytes = 1 << 20

// LoadArrivalTrace reads a CSV arrival trace from path. Only regular files
// up to 1 MiB are accepted.
func LoadArrivalTrace(path string) (*ArrivalTrace, error) {
	if path == "" {
		return nil, fmt.Errorf("cluster: tracefile: empty path")
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: tracefile: %w", err)
	}
	if !fi.Mode().IsRegular() {
		return nil, fmt.Errorf("cluster: tracefile %s: not a regular file", path)
	}
	if fi.Size() > maxTraceFileBytes {
		return nil, fmt.Errorf("cluster: tracefile %s: %d bytes exceeds the %d-byte cap", path, fi.Size(), maxTraceFileBytes)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: tracefile: %w", err)
	}
	defer f.Close()
	tr, err := ParseArrivalTrace(io.LimitReader(f, maxTraceFileBytes))
	if err != nil {
		return nil, fmt.Errorf("cluster: tracefile %s: %w", path, err)
	}
	return tr, nil
}

// ParseArrivalTrace parses CSV rows of the form "OFFSET" or "OFFSET,CORES"
// (e.g. "30s,4"). Blank lines and lines starting with '#' are skipped;
// malformed rows are rejected with their line number. Rows are sorted by
// offset (stably, so equal offsets keep file order) before returning.
func ParseArrivalTrace(r io.Reader) (*ArrivalTrace, error) {
	type row struct {
		offset time.Duration
		cores  int
	}
	var rows []row
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Split(s, ",")
		if len(fields) > 2 {
			return nil, fmt.Errorf("line %d: %d fields (want OFFSET or OFFSET,CORES)", line, len(fields))
		}
		d, err := time.ParseDuration(strings.TrimSpace(fields[0]))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("line %d: bad offset %q", line, strings.TrimSpace(fields[0]))
		}
		cores := 0
		if len(fields) == 2 {
			c, err := strconv.Atoi(strings.TrimSpace(fields[1]))
			if err != nil || c < 1 {
				return nil, fmt.Errorf("line %d: bad cores %q", line, strings.TrimSpace(fields[1]))
			}
			cores = c
		}
		rows = append(rows, row{offset: d, cores: cores})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].offset < rows[j].offset })
	tr := &ArrivalTrace{
		Offsets: make([]time.Duration, len(rows)),
		Cores:   make([]int, len(rows)),
	}
	for i, rw := range rows {
		tr.Offsets[i] = rw.offset
		tr.Cores[i] = rw.cores
	}
	return tr, nil
}
