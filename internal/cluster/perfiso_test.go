package cluster

import (
	"bytes"
	"testing"
	"time"

	"splitserve/internal/perfstat"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/sparkpi"
)

// TestPerfstatDeterminismIsolation is the contract that makes perfstat safe
// to ship on by default: the collector reads simulation state but never
// schedules, emits, or draws randomness, so a same-seed run with profiling
// enabled must produce a byte-identical report and event log. Only the
// perfstat snapshot itself — wall-clock data, marked "deterministic": false
// — is allowed to vary between runs.
func TestPerfstatDeterminismIsolation(t *testing.T) {
	run := func(prof *perfstat.Collector) (report, log []byte) {
		arrivals, err := ParseArrivals("poisson:6s", 5, 1)
		if err != nil {
			t.Fatalf("ParseArrivals: %v", err)
		}
		s, err := New(Config{
			Jobs:      testJobs(t, arrivals, 4, 8, 4),
			PoolCores: 4,
			Policy:    FairShare(),
			Strategy:  StrategyBridge,
			SLOFactor: 2,
			Seed:      7,
			Prof:      prof,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		report, err = rep.JSON()
		if err != nil {
			t.Fatalf("Report.JSON: %v", err)
		}
		log, err = s.Events().JSONL()
		if err != nil {
			t.Fatalf("Events.JSONL: %v", err)
		}
		return report, log
	}

	plainRep, plainLog := run(nil)
	prof := perfstat.New()
	profRep, profLog := run(prof)

	if len(plainRep) == 0 || len(plainLog) == 0 {
		t.Fatal("baseline run produced empty report or event log")
	}
	if !bytes.Equal(plainRep, profRep) {
		t.Error("enabling perfstat changed the report bytes")
	}
	if !bytes.Equal(plainLog, profLog) {
		t.Error("enabling perfstat changed the event log bytes")
	}

	snap := prof.Snapshot()
	if snap.Deterministic {
		t.Error("perfstat snapshot must carry deterministic=false")
	}
	if snap.EventsFired == 0 {
		t.Error("profiled run recorded no fired events")
	}
	if snap.StepWall.Count == 0 {
		t.Error("profiled run recorded no step-wall observations")
	}
	if snap.Yields == 0 {
		t.Error("profiled run recorded no workload yields")
	}
	if snap.HandoffWall.Count == 0 {
		t.Error("profiled run recorded no goroutine handoffs")
	}
	buf, err := snap.JSON()
	if err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if !bytes.Contains(buf, []byte(`"deterministic": false`)) {
		t.Fatalf("snapshot JSON missing deterministic:false marker:\n%s", buf)
	}
}

// stressPi is the cheapest plausibility-passing sparkpi (10k real darts
// per task at the fixed seed).
func stressPi() workloads.Workload {
	return sparkpi.New(sparkpi.Config{
		Darts:               100_000,
		SampledDartsPerTask: 10_000,
		Partitions:          2,
		CostPerDart:         0.4,
		Seed:                3,
	})
}

func stressBurst(t *testing.T, n int, maxSim time.Duration, prof *perfstat.Collector) *Report {
	t.Helper()
	base, err := Baseline(stressPi(), 2, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{Name: "sparkpi", Workload: stressPi(), Cores: 2, Baseline: base}
	}
	s, err := New(Config{
		Jobs:       specs,
		PoolCores:  2 * n, // capacity for the whole burst: stress is concurrency, not contention
		SLOFactor:  50,
		Seed:       17,
		MaxSimTime: maxSim,
		Prof:       prof,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestRunQueueStress10kConcurrent is the -race happens-before proof for the
// token-chained handoff (make check runs the suite under the race
// detector). Two phases:
//
//   - burst: ten thousand jobs arrive at the same instant and all ten
//     thousand workload goroutines are alive and parked concurrently. The
//     sim-time deadline cuts the run after several clock steps — before
//     the task/network phase, whose max-min fair-share recomputation is
//     quadratic in concurrent flows and would dominate the test for no
//     extra scheduling coverage — so the abort path then drains the entire
//     10k-deep token chain one handoff at a time.
//   - drain: a smaller burst runs to completion, so resumable engines flow
//     through the batched run-queue in bulk and the depth gauge sees the
//     backlog.
func TestRunQueueStress10kConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("stress run skipped in -short mode")
	}

	t.Run("burst10k", func(t *testing.T) {
		const n = 10_000
		prof := perfstat.New()
		rep := stressBurst(t, n, time.Second, prof)
		// The deadline fires before any job can finish: every job must have
		// spawned, parked, and been aborted through the token chain.
		if rep.Completed != 0 || rep.Failed != n {
			t.Fatalf("completed=%d failed=%d, want 0/%d (sim-time cutoff)",
				rep.Completed, rep.Failed, n)
		}
		snap := prof.Snapshot()
		if snap.Yields < n {
			t.Errorf("yields %d < %d: not every goroutine parked", snap.Yields, n)
		}
		if snap.HandoffWall.Count < uint64(n) {
			t.Errorf("handoff observations %d < %d: handoff timing lost in batching",
				snap.HandoffWall.Count, n)
		}
	})

	t.Run("drain1k", func(t *testing.T) {
		const n = 1_000
		prof := perfstat.New()
		rep := stressBurst(t, n, 0, prof)
		if rep.Completed != n {
			t.Fatalf("completed %d of %d jobs (failed %d, shed %d)",
				rep.Completed, n, rep.Failed, rep.Shed)
		}
		snap := prof.Snapshot()
		if snap.Yields < n {
			t.Errorf("yields %d < %d: not every job parked through the run queue", snap.Yields, n)
		}
		if snap.HandoffWall.Count < uint64(2*n) {
			t.Errorf("handoff observations %d < %d: want at least one park and one finish per job",
				snap.HandoffWall.Count, 2*n)
		}
		if snap.RunQueue.Samples == 0 {
			t.Error("run-queue depth gauge recorded no samples")
		}
		if snap.RunQueue.Max < n/2 {
			t.Errorf("run-queue depth high-water %d never reflected the %d-job burst",
				snap.RunQueue.Max, n)
		}
	})
}
