package cluster

import (
	"bytes"
	"testing"

	"splitserve/internal/perfstat"
)

// TestPerfstatDeterminismIsolation is the contract that makes perfstat safe
// to ship on by default: the collector reads simulation state but never
// schedules, emits, or draws randomness, so a same-seed run with profiling
// enabled must produce a byte-identical report and event log. Only the
// perfstat snapshot itself — wall-clock data, marked "deterministic": false
// — is allowed to vary between runs.
func TestPerfstatDeterminismIsolation(t *testing.T) {
	run := func(prof *perfstat.Collector) (report, log []byte) {
		arrivals, err := ParseArrivals("poisson:6s", 5, 1)
		if err != nil {
			t.Fatalf("ParseArrivals: %v", err)
		}
		s, err := New(Config{
			Jobs:      testJobs(t, arrivals, 4, 8, 4),
			PoolCores: 4,
			Policy:    FairShare(),
			Strategy:  StrategyBridge,
			SLOFactor: 2,
			Seed:      7,
			Prof:      prof,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		report, err = rep.JSON()
		if err != nil {
			t.Fatalf("Report.JSON: %v", err)
		}
		log, err = s.Events().JSONL()
		if err != nil {
			t.Fatalf("Events.JSONL: %v", err)
		}
		return report, log
	}

	plainRep, plainLog := run(nil)
	prof := perfstat.New()
	profRep, profLog := run(prof)

	if len(plainRep) == 0 || len(plainLog) == 0 {
		t.Fatal("baseline run produced empty report or event log")
	}
	if !bytes.Equal(plainRep, profRep) {
		t.Error("enabling perfstat changed the report bytes")
	}
	if !bytes.Equal(plainLog, profLog) {
		t.Error("enabling perfstat changed the event log bytes")
	}

	snap := prof.Snapshot()
	if snap.Deterministic {
		t.Error("perfstat snapshot must carry deterministic=false")
	}
	if snap.EventsFired == 0 {
		t.Error("profiled run recorded no fired events")
	}
	if snap.StepWall.Count == 0 {
		t.Error("profiled run recorded no step-wall observations")
	}
	if snap.Yields == 0 {
		t.Error("profiled run recorded no workload yields")
	}
	if snap.HandoffWall.Count == 0 {
		t.Error("profiled run recorded no goroutine handoffs")
	}
	buf, err := snap.JSON()
	if err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if !bytes.Contains(buf, []byte(`"deterministic": false`)) {
		t.Fatalf("snapshot JSON missing deterministic:false marker:\n%s", buf)
	}
}
