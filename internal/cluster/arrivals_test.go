package cluster

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestBurstyOverlappingBurstsSorted is the regression for the bursty
// arrival bug: with K jobs 1 s apart and bursts only GAP apart, K×1s >
// GAP makes consecutive bursts overlap, and the generator used to emit
// the tail of burst b after the head of burst b+1 — violating the
// documented ascending contract.
func TestBurstyOverlappingBurstsSorted(t *testing.T) {
	out, err := ParseArrivals("bursty:10x5s", 30, 1)
	if err != nil {
		t.Fatalf("ParseArrivals: %v", err)
	}
	if len(out) != 30 {
		t.Fatalf("got %d offsets, want 30", len(out))
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatalf("bursty:10x5s offsets not ascending: %v", out)
	}
	// Overlap really happens in this spec: job 9 of burst 0 lands at 9s,
	// after job 0 of burst 1 at 5s — both must be present.
	want := map[time.Duration]bool{5 * time.Second: false, 9 * time.Second: false}
	for _, d := range out {
		if _, ok := want[d]; ok {
			want[d] = true
		}
	}
	for d, seen := range want {
		if !seen {
			t.Errorf("offset %s missing from overlapping bursts: %v", d, out)
		}
	}
}

func TestParseArrivalTraceCSV(t *testing.T) {
	tr, err := ParseArrivalTrace(strings.NewReader(
		"# arrival trace\n\n30s,4\n0s\n10s, 2 \n"))
	if err != nil {
		t.Fatalf("ParseArrivalTrace: %v", err)
	}
	wantOff := []time.Duration{0, 10 * time.Second, 30 * time.Second}
	wantCores := []int{0, 2, 4}
	if len(tr.Offsets) != 3 {
		t.Fatalf("got %d rows, want 3", len(tr.Offsets))
	}
	for i := range wantOff {
		if tr.Offsets[i] != wantOff[i] || tr.Cores[i] != wantCores[i] {
			t.Fatalf("row %d = (%s, %d), want (%s, %d)",
				i, tr.Offsets[i], tr.Cores[i], wantOff[i], wantCores[i])
		}
	}

	for _, tc := range []struct {
		csv  string
		line string
	}{
		{"5s\nbogus\n", "line 2"},
		{"5s,-1\n", "line 1"},
		{"5s,0\n", "line 1"},
		{"5s,2,t0,extra\n", "line 1"},
		{"-1s\n", "line 1"},
		{"header\n-1s\n", "line 2"}, // header skip never hides a data error
		{"# only comments\n\n", "empty trace"},
		{"offset,cores,tenant\n", "empty trace"}, // header-only file
	} {
		_, err := ParseArrivalTrace(strings.NewReader(tc.csv))
		if err == nil || !strings.Contains(err.Error(), tc.line) {
			t.Errorf("ParseArrivalTrace(%q): error %v, want mention of %q", tc.csv, err, tc.line)
		}
	}
}

// TestParseArrivalTraceTenantColumn covers the production-trace shapes the
// multi-tenant control plane ingests: a TENANT third column (with an
// optionally empty CORES field), a header row, CRLF line endings, and
// out-of-order arrivals that are sorted with a single recorded warning.
func TestParseArrivalTraceTenantColumn(t *testing.T) {
	tr, err := ParseArrivalTrace(strings.NewReader(
		"offset,cores,tenant\r\n10s,2,t01\r\n0s,,t00\r\n30s,4,t01\r\n5s\r\n"))
	if err != nil {
		t.Fatalf("ParseArrivalTrace: %v", err)
	}
	wantOff := []time.Duration{0, 5 * time.Second, 10 * time.Second, 30 * time.Second}
	wantCores := []int{0, 0, 2, 4}
	wantTenants := []string{"t00", "", "t01", "t01"}
	if len(tr.Offsets) != len(wantOff) {
		t.Fatalf("got %d rows, want %d", len(tr.Offsets), len(wantOff))
	}
	for i := range wantOff {
		if tr.Offsets[i] != wantOff[i] || tr.Cores[i] != wantCores[i] || tr.Tenants[i] != wantTenants[i] {
			t.Fatalf("row %d = (%s, %d, %q), want (%s, %d, %q)", i,
				tr.Offsets[i], tr.Cores[i], tr.Tenants[i], wantOff[i], wantCores[i], wantTenants[i])
		}
	}
	if !tr.Tenanted() {
		t.Error("Tenanted() = false for a trace with tenant labels")
	}
	// Exactly two warnings: the skipped header, and one (not per-row)
	// out-of-order notice.
	if len(tr.Warnings) != 2 {
		t.Fatalf("warnings = %q, want header-skip + out-of-order", tr.Warnings)
	}
	if !strings.Contains(tr.Warnings[0], "header") || !strings.Contains(tr.Warnings[1], "out of order") {
		t.Errorf("warnings = %q", tr.Warnings)
	}

	// A clean, sorted, untenanted trace carries no warnings.
	clean, err := ParseArrivalTrace(strings.NewReader("0s\n5s,4\n"))
	if err != nil {
		t.Fatalf("ParseArrivalTrace(clean): %v", err)
	}
	if len(clean.Warnings) != 0 || clean.Tenanted() {
		t.Errorf("clean trace: warnings=%q tenanted=%v", clean.Warnings, clean.Tenanted())
	}
}

func TestLoadArrivalTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arrivals.csv")
	if err := os.WriteFile(path, []byte("0s\n5s,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadArrivalTrace(path)
	if err != nil {
		t.Fatalf("LoadArrivalTrace: %v", err)
	}
	if len(tr.Offsets) != 2 || tr.Cores[1] != 4 {
		t.Fatalf("trace = %+v", tr)
	}

	// The ParseArrivals front door reaches the same file.
	offs, err := ParseArrivals("tracefile:"+path, 99, 1)
	if err != nil {
		t.Fatalf("ParseArrivals(tracefile): %v", err)
	}
	if len(offs) != 2 || offs[1] != 5*time.Second {
		t.Fatalf("tracefile offsets = %v", offs)
	}

	if _, err := LoadArrivalTrace(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := LoadArrivalTrace(""); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := LoadArrivalTrace(dir); err == nil {
		t.Error("directory accepted")
	}
	if _, err := LoadArrivalTrace("/dev/null"); err == nil {
		t.Error("device file accepted")
	}
	big := filepath.Join(dir, "big.csv")
	if err := os.WriteFile(big, make([]byte, maxTraceFileBytes+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArrivalTrace(big); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized file: got %v, want size-cap error", err)
	}

	// Malformed rows surface the path and line number to the operator.
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("0s\nnope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArrivalTrace(bad); err == nil ||
		!strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), bad) {
		t.Errorf("malformed row: got %v, want path and line 2", err)
	}
}
