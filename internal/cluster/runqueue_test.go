package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"splitserve/internal/simclock"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/sparkpi"
)

// This file pins the two halves of the event-kernel rework — the timer
// wheel behind simclock.New and the batched run-queue wakeups in the
// scheduler — to their correctness bar: same-seed runs stay byte-identical
// at 1k-job scale, and the wheel-backed scheduler produces exactly the
// bytes the heap-backed reference implementation does, both live
// (swapping newClock in-process) and against a recorded heap-backed
// golden that survives across versions.

// runqueuePi is a sparkpi sized for scale tests: real sampling is trimmed
// to 20k darts/task (the smallest count whose fixed-seed estimate passes
// the workload's plausibility check) so a 1k-job stream costs fractions
// of a second, while the modelled cost keeps tasks sub-millisecond like
// the loadbench shape.
func runqueuePi() workloads.Workload {
	return sparkpi.New(sparkpi.Config{
		Darts:               100_000,
		SampledDartsPerTask: 20_000,
		Partitions:          2,
		CostPerDart:         0.4,
		Seed:                3,
	})
}

// runqueueSpecs is a loadbench-shaped stream: n 2-core jobs arriving every
// 100ms.
func runqueueSpecs(t *testing.T, n int) []JobSpec {
	t.Helper()
	base, err := Baseline(runqueuePi(), 2, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{
			Name:     "sparkpi",
			Workload: runqueuePi(),
			Cores:    2,
			Arrival:  time.Duration(i) * 100 * time.Millisecond,
			Baseline: base,
		}
	}
	return specs
}

// runqueueRun plays an n-job stream and returns the report and event-log
// bytes.
func runqueueRun(t *testing.T, n int, seed uint64) (report, log []byte) {
	t.Helper()
	s, err := New(Config{
		Jobs:      runqueueSpecs(t, n),
		PoolCores: 16,
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d jobs (failed %d)", rep.Completed, n, rep.Failed)
	}
	report, err = rep.JSON()
	if err != nil {
		t.Fatalf("Report.JSON: %v", err)
	}
	log, err = s.Events().JSONL()
	if err != nil {
		t.Fatalf("Events.JSONL: %v", err)
	}
	return report, log
}

// withHeapClock runs fn with the scheduler building heap-backed clocks,
// restoring the timer wheel afterwards.
func withHeapClock(fn func()) {
	newClock = simclock.NewHeapBacked
	defer func() { newClock = simclock.New }()
	fn()
}

// TestRunQueueSameSeed1kByteIdentical is the determinism pin at scale:
// 1000 jobs through the batched run-queue scheduler, twice, must produce
// byte-identical reports and event logs.
func TestRunQueueSameSeed1kByteIdentical(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 120
	}
	repA, logA := runqueueRun(t, n, 1)
	repB, logB := runqueueRun(t, n, 1)
	if !bytes.Equal(repA, repB) {
		t.Error("same-seed 1k-job reports differ")
	}
	if !bytes.Equal(logA, logB) {
		t.Error("same-seed 1k-job event logs differ")
	}
}

// TestWheelMatchesHeapBackedScheduler is the live cross-implementation
// pin: the same seed through the wheel-backed and the heap-backed clock
// must produce byte-identical reports and event logs.
func TestWheelMatchesHeapBackedScheduler(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	wheelRep, wheelLog := runqueueRun(t, n, 5)
	var heapRep, heapLog []byte
	withHeapClock(func() { heapRep, heapLog = runqueueRun(t, n, 5) })
	if !bytes.Equal(wheelRep, heapRep) {
		t.Error("wheel-backed report differs from heap-backed report")
	}
	if !bytes.Equal(wheelLog, heapLog) {
		t.Error("wheel-backed event log differs from heap-backed event log")
	}
}

// runqueueGolden is the committed cross-implementation pin: the report
// bytes and the event-log digest of a fixed mixed-elasticity run,
// recorded with the heap-backed reference clock (-update always records
// through it). The normally-running wheel must reproduce it exactly.
type runqueueGolden struct {
	Note           string          `json:"note"`
	Report         json.RawMessage `json:"report"`
	Events         int             `json:"events"`
	EventlogSHA256 string          `json:"eventlog_sha256"`
}

func goldenRunqueueRun(t *testing.T) (report, log []byte) {
	t.Helper()
	arrivals, err := ParseArrivals("poisson:400ms", 64, 11)
	if err != nil {
		t.Fatalf("ParseArrivals: %v", err)
	}
	base, err := Baseline(runqueuePi(), 2, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	specs := make([]JobSpec, len(arrivals))
	for i, at := range arrivals {
		specs[i] = JobSpec{
			Name: "sparkpi", Workload: runqueuePi(),
			Cores: 2, Arrival: at, Baseline: base,
		}
	}
	s, err := New(Config{
		Jobs:          specs,
		PoolCores:     8, // undersized: forces queueing, bridging, and reclaim
		Strategy:      StrategyBridge,
		Admission:     AdmissionDeadline,
		ScaleDownIdle: 20 * time.Second,
		SLOFactor:     3,
		Seed:          11,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	report, err = rep.JSON()
	if err != nil {
		t.Fatalf("Report.JSON: %v", err)
	}
	log, err = s.Events().JSONL()
	if err != nil {
		t.Fatalf("Events.JSONL: %v", err)
	}
	return report, log
}

func TestRunQueueCrossImplGolden(t *testing.T) {
	path := filepath.Join("testdata", "runqueue.golden.json")

	if *update {
		var report, log []byte
		withHeapClock(func() { report, log = goldenRunqueueRun(t) })
		sum := sha256.Sum256(log)
		g := runqueueGolden{
			Note: "recorded with simclock.NewHeapBacked (reference impl); " +
				"regenerate with: go test ./internal/cluster -run TestRunQueueCrossImplGolden -update",
			Report:         report,
			Events:         bytes.Count(log, []byte{'\n'}),
			EventlogSHA256: hex.EncodeToString(sum[:]),
		}
		buf, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("recorded %s (%d events)", path, g.Events)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want runqueueGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	report, log := goldenRunqueueRun(t)
	// The golden stores the report indented by MarshalIndent, so compare
	// canonicalized forms: both sides compacted.
	if !bytes.Equal(compactJSON(t, report), compactJSON(t, []byte(want.Report))) {
		t.Error("wheel-backed report differs from recorded heap-backed golden")
	}
	if got := bytes.Count(log, []byte{'\n'}); got != want.Events {
		t.Errorf("event count %d, golden has %d", got, want.Events)
	}
	sum := sha256.Sum256(log)
	if got := hex.EncodeToString(sum[:]); got != want.EventlogSHA256 {
		t.Errorf("event-log digest %s differs from golden %s", got, want.EventlogSHA256)
	}
}

func compactJSON(t *testing.T, in []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := json.Compact(&out, in); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return out.Bytes()
}
