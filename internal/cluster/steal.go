package cluster

import (
	"fmt"
	"time"

	"splitserve/internal/cloud"
)

// This file is the scheduler's surface for the sharded control plane
// (internal/shard): inspection of the queue and pool, plus the two halves
// of a work-steal — Steal removes a queued job here, Inject re-submits it
// on the destination scheduler. Both run on the drive goroutine between
// clock steps, never concurrently with timer callbacks, so no locking is
// needed beyond what the scheduler already has.

// Pool exposes the scheduler's core pool (shard-level invariant checks
// and free-capacity probes).
func (s *Scheduler) Pool() *cloud.CorePool { return s.pool }

// PoolFree returns how many pool cores are currently unleased.
func (s *Scheduler) PoolFree() int { return s.pool.Free() }

// QueuedJobs returns how many arrived jobs are waiting for admission.
func (s *Scheduler) QueuedJobs() int {
	n := 0
	for _, j := range s.active {
		if j.phase == jobQueued {
			n++
		}
	}
	return n
}

// stealCandidate is the oldest queued job that was not itself stolen in
// (injected jobs never migrate twice — that would let a job ping-pong
// between two saturated shards forever).
func (s *Scheduler) stealCandidate() *job {
	for _, j := range s.active {
		if j.phase == jobQueued && !j.injected {
			return j
		}
	}
	return nil
}

// StealableDemand returns the core demand of the job Steal would take,
// or ok=false when nothing here is stealable.
func (s *Scheduler) StealableDemand() (int, bool) {
	if j := s.stealCandidate(); j != nil {
		return j.spec.Cores, true
	}
	return 0, false
}

// Steal removes the oldest queued non-injected job and returns its spec
// and original arrival instant for re-submission elsewhere. The job
// settles locally as migrated: it vanishes from this scheduler's report
// (the destination shard reports it instead) and frees its slot in the
// run-loop's exit test.
func (s *Scheduler) Steal() (JobSpec, time.Time, bool) {
	j := s.stealCandidate()
	if j == nil {
		return JobSpec{}, time.Time{}, false
	}
	j.phase = jobMigrated
	j.finishedAt = s.clock.Now()
	j.queueSpan.End()
	if j.jobSpan != nil {
		j.jobSpan.End()
	}
	s.settled++
	s.kick() // compact the active set and refresh gauges next pass
	return j.spec, j.arrivalAt, true
}

// Inject re-submits a stolen job on this scheduler at the current
// instant. The job gets a fresh local ID (and this scheduler's IDPrefix)
// but keeps its original arrival time for SLO and queue-wait accounting.
// Returns the job's new app ID for the shard_steal event.
func (s *Scheduler) Inject(spec JobSpec, arrivedAt time.Time) string {
	i := len(s.jobs)
	j := &job{spec: spec, id: i,
		appID:         fmt.Sprintf("%sj%03d-%s", s.cfg.IDPrefix, i, spec.Name),
		execPrefix:    fmt.Sprintf("%sj%03d", s.cfg.IDPrefix, i),
		injected:      true,
		presetArrival: arrivedAt,
	}
	j.meter.SetTelemetry(s.hub)
	s.jobs = append(s.jobs, j)
	s.onArrival(j)
	return j.appID
}
