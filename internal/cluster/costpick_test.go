package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"splitserve/internal/eventlog"
)

// pickedJobs attaches a synthetic cost-manager decision to every spec,
// with predictions deliberately offset from reality so the report's
// prediction-error fields have something to measure.
func pickedJobs(t *testing.T, arrivals []time.Duration) []JobSpec {
	t.Helper()
	jobs := testJobs(t, arrivals, 4, 6, 3)
	for i := range jobs {
		jobs[i].Pick = &CostPick{
			Policy:           "min-cost",
			PredictedRun:     20 * time.Second,
			PredictedCostUSD: 0.01,
			Source:           "profile",
		}
	}
	return jobs
}

// TestClusterCostPickReport runs a stream with attached allocation
// decisions and checks the plumbing end to end: the cost_pick event fires
// per job at arrival time, the per-job report echoes the decision and
// scores its predictions, and the summary aggregates the absolute errors.
func TestClusterCostPickReport(t *testing.T) {
	arrivals, err := ParseArrivals("uniform:10s", 3, 1)
	if err != nil {
		t.Fatalf("ParseArrivals: %v", err)
	}
	s, err := New(Config{
		Jobs:      pickedJobs(t, arrivals),
		PoolCores: 8,
		Policy:    FairShare(),
		Strategy:  StrategyBridge,
		SLOFactor: 1.5,
		Seed:      1,
		Alloc:     "min-cost",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if rep.Alloc != "min-cost" {
		t.Fatalf("report alloc = %q, want min-cost", rep.Alloc)
	}
	if rep.PredictedJobs != 3 {
		t.Fatalf("predicted jobs = %d, want 3", rep.PredictedJobs)
	}
	if rep.MeanAbsRunPredErr <= 0 || rep.MeanAbsCostPredErr <= 0 {
		t.Fatalf("mean abs errors = (%g, %g), want both > 0 for offset predictions",
			rep.MeanAbsRunPredErr, rep.MeanAbsCostPredErr)
	}
	for _, j := range rep.JobReports {
		if j.AllocPolicy != "min-cost" || j.AllocSource != "profile" {
			t.Fatalf("job %d alloc fields = (%q, %q)", j.ID, j.AllocPolicy, j.AllocSource)
		}
		if j.PredictedRunUS != (20 * time.Second).Microseconds() {
			t.Fatalf("job %d predicted run %d", j.ID, j.PredictedRunUS)
		}
		wantErr := (float64(j.RunUS) - float64(j.PredictedRunUS)) / float64(j.PredictedRunUS)
		if j.RunPredErr != wantErr {
			t.Fatalf("job %d run error %g, want %g", j.ID, j.RunPredErr, wantErr)
		}
	}
	if !strings.Contains(rep.String(), "cost-manager predictions: 3 jobs") {
		t.Fatalf("summary table lacks the prediction line:\n%s", rep)
	}

	picks := 0
	for _, e := range s.Events().Events() {
		if e.Type != eventlog.CostPick {
			continue
		}
		picks++
		if e.Cores != 4 {
			t.Errorf("cost_pick cores = %d, want 4", e.Cores)
		}
		for _, frag := range []string{"min-cost", "pred_run_us=20000000", "src=profile"} {
			if !strings.Contains(e.Note, frag) {
				t.Errorf("cost_pick note %q lacks %q", e.Note, frag)
			}
		}
	}
	if picks != 3 {
		t.Fatalf("saw %d cost_pick events, want 3", picks)
	}
}

// TestClusterCostPickByteIdentical pins the acceptance requirement that
// reports and event logs stay byte-identical per seed with allocation
// decisions attached.
func TestClusterCostPickByteIdentical(t *testing.T) {
	build := func() ([]byte, []byte) {
		arrivals, err := ParseArrivals("poisson:15s", 4, 7)
		if err != nil {
			t.Fatalf("ParseArrivals: %v", err)
		}
		s, err := New(Config{
			Jobs:      pickedJobs(t, arrivals),
			PoolCores: 8,
			Policy:    FairShare(),
			Strategy:  StrategyBridge,
			SLOFactor: 1.5,
			Seed:      1,
			Alloc:     "min-cost",
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		buf, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		log, err := s.Events().JSONL()
		if err != nil {
			t.Fatalf("JSONL: %v", err)
		}
		return buf, log
	}
	repA, logA := build()
	repB, logB := build()
	if !bytes.Equal(repA, repB) {
		t.Fatal("same-seed reports with cost picks differ")
	}
	if !bytes.Equal(logA, logB) {
		t.Fatal("same-seed event logs with cost picks differ")
	}
}
