package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"splitserve/internal/billing"
	"splitserve/internal/cloud"
	"splitserve/internal/simclock"
	"splitserve/internal/spark/engine"
	"splitserve/internal/telemetry"
)

// JobReport is one job's outcome. Durations are microseconds so the JSON
// is integer-exact and byte-stable across runs with the same seed.
type JobReport struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Workload string `json:"workload,omitempty"`
	// Tenant is the submitting tenant in multi-tenant runs (omitted for
	// untenanted streams, which keeps legacy reports byte-identical).
	Tenant string `json:"tenant,omitempty"`
	Cores  int    `json:"cores"`

	ArrivalUS   int64 `json:"arrival_us"`
	StartUS     int64 `json:"start_us"`
	EndUS       int64 `json:"end_us"`
	QueueWaitUS int64 `json:"queue_wait_us"`
	RunUS       int64 `json:"run_us"`
	DeadlineUS  int64 `json:"deadline_us"`

	Stretch     float64 `json:"stretch"`
	SLOViolated bool    `json:"slo_violated"`

	VMExecutors     int `json:"vm_executors"`
	LambdaExecutors int `json:"lambda_executors"`
	VMTasks         int `json:"vm_tasks"`
	LambdaTasks     int `json:"lambda_tasks"`

	CostUSD       float64 `json:"cost_usd"`
	CostVMUSD     float64 `json:"cost_vm_usd"`
	CostLambdaUSD float64 `json:"cost_lambda_usd"`

	Failed string `json:"failed,omitempty"`
	// Shed carries the admission policy's rejection reason; a shed job
	// never ran. Delayed marks jobs deadline admission held back at
	// least once before admitting (or shedding).
	Shed    string `json:"shed,omitempty"`
	Delayed bool   `json:"delayed,omitempty"`

	// Cost-manager fields (-cores auto): the allocation policy that
	// chose Cores, its predictions, and the signed relative errors
	// ((realized − predicted) / predicted) once the job completed.
	// Absent on fixed-cores jobs and on fallback picks (no prediction).
	AllocPolicy      string  `json:"alloc_policy,omitempty"`
	AllocSource      string  `json:"alloc_source,omitempty"`
	PredictedRunUS   int64   `json:"predicted_run_us,omitempty"`
	PredictedCostUSD float64 `json:"predicted_cost_usd,omitempty"`
	RunPredErr       float64 `json:"run_prediction_error,omitempty"`
	CostPredErr      float64 `json:"cost_prediction_error,omitempty"`
}

// Report is a whole cluster run.
type Report struct {
	Policy    string `json:"policy"`
	Strategy  string `json:"strategy"`
	Seed      uint64 `json:"seed"`
	PoolCores int    `json:"pool_cores"`
	// Admission and ScaleDownIdleUS echo the elasticity configuration the
	// run used, so a saved report is self-describing; Alloc echoes how
	// per-job core demands were chosen ("fixed" or a cost-manager policy).
	Admission       string `json:"admission"`
	ScaleDownIdleUS int64  `json:"scaledown_idle_us"`
	Alloc           string `json:"alloc"`

	Jobs          int `json:"jobs"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	Shed          int `json:"shed"`
	Delayed       int `json:"delayed"`
	SLOViolations int `json:"slo_violations"`
	// SLOAttainment is the fraction of all submitted jobs that completed
	// within their deadline (failed and shed jobs count against it) — the
	// y-axis of the paper's cost-vs-SLO curve.
	SLOAttainment float64 `json:"slo_attainment"`

	MakespanUS      int64 `json:"makespan_us"`
	QueueWaitMeanUS int64 `json:"queue_wait_mean_us"`
	QueueWaitP50US  int64 `json:"queue_wait_p50_us"`
	QueueWaitP99US  int64 `json:"queue_wait_p99_us"`

	MeanStretch float64 `json:"mean_stretch"`
	P99Stretch  float64 `json:"p99_stretch"`

	// QueueWaitHist and StretchHist export the full per-job distributions
	// (not just the scalar quantiles above) so crosschecks can assert on
	// any quantile via HistogramSnapshot.Quantile.
	QueueWaitHist telemetry.HistogramSnapshot `json:"queue_wait_hist"`
	StretchHist   telemetry.HistogramSnapshot `json:"stretch_hist"`

	// CoreUtilization is VM-executor busy time over pool core-time;
	// LambdaShare is the Lambda fraction of all busy time.
	CoreUtilization float64 `json:"core_utilization"`
	LambdaShare     float64 `json:"lambda_share"`

	// VMHours is total billed instance-hours (base fleet for the
	// makespan, procured VMs for their uptime); the elasticity fields
	// below break out what idle-timeout scale-down saved against the
	// keep-forever counterfactual.
	VMHours             float64 `json:"vm_hours"`
	VMsReleasedIdle     int     `json:"vms_released_idle"`
	VMHoursSaved        float64 `json:"vm_hours_saved"`
	VMScaledownSavedUSD float64 `json:"vm_scaledown_saved_usd"`

	// Warm-pool substrate (WarmPool > 0): configuration echo, pool
	// effectiveness, and the provisioned-idle dollars — readiness you pay
	// for whether or not it is invoked — itemized separately from
	// invocation compute (LambdaUSD) and folded into TotalUSD.
	WarmPool          int   `json:"warm_pool,omitempty"`
	TmpCache          bool  `json:"tmp_cache,omitempty"`
	WarmHits          int   `json:"warm_hits,omitempty"`
	WarmMisses        int   `json:"warm_misses,omitempty"`
	WarmResizes       int   `json:"warm_resizes,omitempty"`
	WarmRecycled      int   `json:"warm_recycled,omitempty"`
	TmpCacheHits      int64 `json:"tmp_cache_hits,omitempty"`
	TmpCacheMisses    int64 `json:"tmp_cache_misses,omitempty"`
	TmpCacheHitBytes  int64 `json:"tmp_cache_hit_bytes,omitempty"`
	TmpCacheEvictions int64 `json:"tmp_cache_evictions,omitempty"`

	VMBaseUSD      float64 `json:"vm_base_usd"`
	VMAutoscaleUSD float64 `json:"vm_autoscale_usd"`
	LambdaUSD      float64 `json:"lambda_usd"`
	LambdaIdleUSD  float64 `json:"lambda_idle_usd,omitempty"`
	TotalUSD       float64 `json:"total_usd"`

	// Mean absolute relative prediction error of the cost manager over
	// completed jobs with profile-backed picks (zero when none ran with
	// -cores auto) — how observably wrong the offline curves were.
	PredictedJobs      int     `json:"predicted_jobs,omitempty"`
	MeanAbsRunPredErr  float64 `json:"mean_abs_run_prediction_error,omitempty"`
	MeanAbsCostPredErr float64 `json:"mean_abs_cost_prediction_error,omitempty"`

	JobReports []JobReport `json:"job_reports"`
}

func us(d time.Duration) int64 { return d.Microseconds() }

func (s *Scheduler) buildReport() *Report {
	r := &Report{
		Policy:          s.cfg.Policy.Name(),
		Strategy:        s.cfg.Strategy.String(),
		Seed:            s.cfg.Seed,
		PoolCores:       s.cfg.PoolCores,
		Admission:       s.cfg.Admission.String(),
		ScaleDownIdleUS: us(s.cfg.ScaleDownIdle),
		Alloc:           s.cfg.Alloc,

		QueueWaitHist: s.insts.queueWait.Snapshot(),
		StretchHist:   s.insts.stretch.Snapshot(),
	}
	end := simclock.Epoch
	var waits []time.Duration
	var stretches []float64
	var vmBusy, lambdaBusy time.Duration
	var runErrSum, costErrSum float64

	for _, j := range s.jobs {
		// A migrated job re-ran (and is reported) on the shard that stole
		// it; counting it here would double-report it in merged tables.
		if j.phase == jobMigrated {
			continue
		}
		r.Jobs++
		jr := JobReport{
			ID:        j.id,
			Name:      j.spec.Name,
			Tenant:    j.spec.Tenant,
			Cores:     j.spec.Cores,
			ArrivalUS: us(j.arrivalAt.Sub(simclock.Epoch)),
		}
		if j.report != nil {
			jr.Workload = j.report.Workload
		}
		deadline := j.allowance(s.cfg.SLOFactor)
		jr.DeadlineUS = us(deadline)
		if !j.admittedAt.IsZero() {
			jr.StartUS = us(j.admittedAt.Sub(simclock.Epoch))
			jr.QueueWaitUS = us(j.admittedAt.Sub(j.arrivalAt))
		}
		if !j.finishedAt.IsZero() {
			jr.EndUS = us(j.finishedAt.Sub(simclock.Epoch))
			if !j.admittedAt.IsZero() {
				jr.RunUS = us(j.finishedAt.Sub(j.admittedAt))
			}
			if j.finishedAt.After(end) {
				end = j.finishedAt
			}
		}
		if j.workDist != nil {
			vm, la := j.workDist[engine.ExecVM], j.workDist[engine.ExecLambda]
			jr.VMExecutors, jr.VMTasks = vm.Executors, vm.Tasks
			jr.LambdaExecutors, jr.LambdaTasks = la.Executors, la.Tasks
			vmBusy += vm.Busy
			lambdaBusy += la.Busy
		}
		byKind := j.meter.TotalByKind()
		jr.CostVMUSD = byKind["vm"]
		jr.CostLambdaUSD = byKind["lambda"]
		jr.CostUSD = j.meter.Total()

		if p := j.spec.Pick; p != nil {
			jr.AllocPolicy = p.Policy
			jr.AllocSource = p.Source
			jr.PredictedRunUS = p.PredictedRun.Microseconds()
			jr.PredictedCostUSD = p.PredictedCostUSD
		}
		jr.Delayed = j.delayed
		if j.delayed {
			r.Delayed++
		}
		switch {
		case j.phase == jobShed:
			jr.Shed = j.shedReason
			r.Shed++
		case j.err != nil:
			jr.Failed = j.err.Error()
			r.Failed++
		default:
			r.Completed++
			total := j.finishedAt.Sub(j.arrivalAt)
			jr.Stretch = float64(total) / float64(j.spec.Baseline)
			jr.SLOViolated = total > deadline
			if jr.SLOViolated {
				r.SLOViolations++
			}
			if !j.admittedAt.IsZero() {
				waits = append(waits, j.admittedAt.Sub(j.arrivalAt))
			}
			stretches = append(stretches, jr.Stretch)
			// Profile-backed picks: signed relative error of the offline
			// prediction against what actually happened (fallback picks
			// predicted nothing, so there is nothing to score).
			if jr.AllocSource == "profile" && jr.PredictedRunUS > 0 {
				jr.RunPredErr = float64(jr.RunUS-jr.PredictedRunUS) / float64(jr.PredictedRunUS)
				if jr.PredictedCostUSD > 0 {
					jr.CostPredErr = (jr.CostUSD - jr.PredictedCostUSD) / jr.PredictedCostUSD
				}
				r.PredictedJobs++
				runErrSum += abs(jr.RunPredErr)
				costErrSum += abs(jr.CostPredErr)
			}
		}
		r.LambdaUSD += jr.CostLambdaUSD
		r.JobReports = append(r.JobReports, jr)
	}

	makespan := end.Sub(simclock.Epoch)
	r.MakespanUS = us(makespan)
	if len(waits) > 0 {
		var sum time.Duration
		for _, w := range waits {
			sum += w
		}
		r.QueueWaitMeanUS = us(sum / time.Duration(len(waits)))
		sorted := append([]time.Duration(nil), waits...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		r.QueueWaitP50US = us(quantileDur(sorted, 0.50))
		r.QueueWaitP99US = us(quantileDur(sorted, 0.99))
	}
	if len(stretches) > 0 {
		sum := 0.0
		for _, v := range stretches {
			sum += v
		}
		r.MeanStretch = sum / float64(len(stretches))
		sorted := append([]float64(nil), stretches...)
		sort.Float64s(sorted)
		idx := int(0.99 * float64(len(sorted)-1))
		if float64(idx) < 0.99*float64(len(sorted)-1) {
			idx++
		}
		r.P99Stretch = sorted[idx]
	}

	// Capacity: base pool cores for the makespan, procured cores from
	// their ready instant. The base fleet is billed for the makespan,
	// procured VMs for their uptime — to the end of the run, or to their
	// idle-timeout release when scale-down terminated them early.
	capSeconds := 0.0
	for _, vm := range s.baseVMs {
		capSeconds += float64(vm.Type.VCPUs) * makespan.Seconds()
		r.VMBaseUSD += billing.VMCost(vm.Type.PricePerHour, makespan)
		r.VMHours += makespan.Hours()
	}
	for _, vm := range s.procured {
		upEnd := end
		if vm.State == cloud.VMTerminated && vm.EndedAt.Before(end) {
			upEnd = vm.EndedAt
			r.VMsReleasedIdle++
			r.VMHoursSaved += end.Sub(vm.EndedAt).Hours()
			r.VMScaledownSavedUSD += billing.VMSavings(
				vm.Type.PricePerHour, upEnd.Sub(vm.ReadyAt), end.Sub(vm.ReadyAt))
		}
		up := upEnd.Sub(vm.ReadyAt)
		if up < 0 {
			up = 0
		}
		capSeconds += float64(vm.Type.VCPUs) * up.Seconds()
		r.VMAutoscaleUSD += billing.VMCost(vm.Type.PricePerHour, up)
		r.VMHours += up.Hours()
	}
	if r.Jobs > 0 {
		r.SLOAttainment = float64(r.Completed-r.SLOViolations) / float64(r.Jobs)
	}
	if capSeconds > 0 {
		r.CoreUtilization = vmBusy.Seconds() / capSeconds
	}
	if total := vmBusy + lambdaBusy; total > 0 {
		r.LambdaShare = lambdaBusy.Seconds() / total.Seconds()
	}
	// Warm-pool substrate: effectiveness counters plus the idle-rate line
	// item, billed per environment over the run window (the makespan —
	// provisioned capacity costs money whether or not it is invoked).
	if s.warm != nil {
		r.WarmPool = s.cfg.WarmPool
		r.WarmHits = s.warm.WarmHits()
		r.WarmMisses = s.warm.Misses()
		r.WarmResizes = s.warm.Resizes()
		r.WarmRecycled = s.warm.Recycled()
		for _, e := range s.warm.IdleBreakdown(end) {
			r.LambdaIdleUSD += billing.LambdaIdleCost(s.cfg.LambdaMemoryMB, e.Idle)
		}
	}
	if s.tmpCache != nil {
		r.TmpCache = true
		r.TmpCacheHits = s.tmpCache.Hits()
		r.TmpCacheMisses = s.tmpCache.Misses()
		r.TmpCacheHitBytes = s.tmpCache.HitBytes()
		r.TmpCacheEvictions = s.tmpCache.Evictions()
	}
	r.TotalUSD = r.VMBaseUSD + r.VMAutoscaleUSD + r.LambdaUSD + r.LambdaIdleUSD
	if r.PredictedJobs > 0 {
		r.MeanAbsRunPredErr = runErrSum / float64(r.PredictedJobs)
		r.MeanAbsCostPredErr = costErrSum / float64(r.PredictedJobs)
	}
	return r
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// quantileDur returns the q-quantile of an ascending-sorted slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if float64(idx) < q*float64(len(sorted)-1) {
		idx++
	}
	return sorted[idx]
}

// JSON renders the report deterministically (same seed → same bytes).
func (r *Report) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// String renders a human summary table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: policy=%s strategy=%s pool=%d cores seed=%d admission=%s alloc=%s\n",
		r.Policy, r.Strategy, r.PoolCores, r.Seed, r.Admission, r.Alloc)
	fmt.Fprintf(&b, "jobs %d (completed %d, failed %d, shed %d, delayed %d), SLO violations %d, attainment %.1f%%\n",
		r.Jobs, r.Completed, r.Failed, r.Shed, r.Delayed, r.SLOViolations,
		100*r.SLOAttainment)
	fmt.Fprintf(&b, "makespan %s; queue wait mean %s p50 %s p99 %s\n",
		time.Duration(r.MakespanUS)*time.Microsecond,
		time.Duration(r.QueueWaitMeanUS)*time.Microsecond,
		time.Duration(r.QueueWaitP50US)*time.Microsecond,
		time.Duration(r.QueueWaitP99US)*time.Microsecond)
	fmt.Fprintf(&b, "stretch mean %.2fx p99 %.2fx; core util %.1f%%; lambda share %.1f%%\n",
		r.MeanStretch, r.P99Stretch, 100*r.CoreUtilization, 100*r.LambdaShare)
	if r.LambdaIdleUSD > 0 {
		fmt.Fprintf(&b, "cost $%.2f (base $%.2f + scale $%.2f + lambda $%.2f + lambda-idle $%.4f)\n",
			r.TotalUSD, r.VMBaseUSD, r.VMAutoscaleUSD, r.LambdaUSD, r.LambdaIdleUSD)
	} else {
		fmt.Fprintf(&b, "cost $%.2f (base $%.2f + scale $%.2f + lambda $%.2f)\n",
			r.TotalUSD, r.VMBaseUSD, r.VMAutoscaleUSD, r.LambdaUSD)
	}
	if r.WarmPool > 0 {
		fmt.Fprintf(&b, "warm-pool target %d: hits %d, misses %d, resizes %d, recycled %d, idle $%.4f\n",
			r.WarmPool, r.WarmHits, r.WarmMisses, r.WarmResizes, r.WarmRecycled, r.LambdaIdleUSD)
	}
	if r.TmpCache {
		fmt.Fprintf(&b, "tmp-cache: hits %d (%.1f MB), misses %d, evictions %d\n",
			r.TmpCacheHits, float64(r.TmpCacheHitBytes)/(1<<20), r.TmpCacheMisses, r.TmpCacheEvictions)
	}
	fmt.Fprintf(&b, "vm-hours %.3f; released idle %d, saved %.3f vm-h = $%.4f\n",
		r.VMHours, r.VMsReleasedIdle, r.VMHoursSaved, r.VMScaledownSavedUSD)
	if r.PredictedJobs > 0 {
		fmt.Fprintf(&b, "cost-manager predictions: %d jobs, mean |run err| %.1f%%, mean |cost err| %.1f%%\n",
			r.PredictedJobs, 100*r.MeanAbsRunPredErr, 100*r.MeanAbsCostPredErr)
	}
	fmt.Fprintf(&b, "%-4s %-20s %6s %10s %10s %8s %7s %5s %9s\n",
		"id", "name", "cores", "queued", "ran", "stretch", "slo", "vm/la", "cost")
	for _, j := range r.JobReports {
		status := "ok"
		if j.Shed != "" {
			status = "SHED"
		} else if j.Failed != "" {
			status = "FAIL"
		} else if j.SLOViolated {
			status = "VIOL"
		}
		fmt.Fprintf(&b, "%-4d %-20s %6d %10s %10s %7.2fx %7s %2d/%-2d %8.4f$\n",
			j.ID, j.Name, j.Cores,
			(time.Duration(j.QueueWaitUS) * time.Microsecond).Round(time.Millisecond).String(),
			(time.Duration(j.RunUS) * time.Microsecond).Round(time.Millisecond).String(),
			j.Stretch, status, j.VMExecutors, j.LambdaExecutors, j.CostUSD)
	}
	return b.String()
}

// WriteProm streams the scheduler's telemetry in Prometheus exposition
// format (cluster_, vmpool_, engine_ and cloud_ families).
func (s *Scheduler) WriteProm(w io.Writer) error { return s.hub.WritePrometheus(w) }
