package cluster

import (
	"fmt"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/eventlog"
)

// This file is the cluster's elasticity layer — the two knobs that open
// the paper's "marginal cost of SLO attainment" axis:
//
//   - Scale-down: autoscale-procured VMs are released back to the
//     provider after a configurable fully-idle timeout, instead of
//     staying in the pool for the rest of the run. Release interacts
//     safely with in-flight leases (the pool refuses to drop an instance
//     holding any) and with the cross-job segue (a re-leased core resets
//     the idle clock).
//   - Deadline-aware admission: an arriving job whose SLO is already
//     unattainable — judged by the fluid model's ETA against the current
//     pool state — is delayed until capacity makes it attainable, or shed
//     outright once even full provisioning could not meet the deadline.

// Admission selects the cluster's admission policy.
type Admission int

// Admission policies.
const (
	// AdmissionGreedy admits a queued job as soon as its entitlement
	// reaches one core (bridge: unconditionally) — the pre-elasticity
	// behavior, and the default.
	AdmissionGreedy Admission = iota + 1
	// AdmissionDeadline admits only jobs the fluid model expects to meet
	// their SLO deadline on the currently attainable cores; others are
	// delayed while still feasible and shed once they are not.
	AdmissionDeadline
)

func (a Admission) String() string {
	switch a {
	case AdmissionGreedy:
		return "greedy"
	case AdmissionDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// AdmissionByName resolves "greedy" or "deadline".
func AdmissionByName(name string) (Admission, error) {
	switch name {
	case "greedy":
		return AdmissionGreedy, nil
	case "deadline":
		return AdmissionDeadline, nil
	default:
		return 0, fmt.Errorf("cluster: unknown admission policy %q (accepted: greedy, deadline)", name)
	}
}

// fluidETA estimates j's execution time if admitted this instant on the
// given core count, using the same closed forms as the fluid day model
// (internal/autoscale.SimulateDayTrace): proportional slowdown when
// queueing, one boot delay then full speed when autoscaling, the hybrid
// slowdown when bridging. ok is false when the ETA is unbounded (queueing
// with no entitled cores).
func (s *Scheduler) fluidETA(j *job, cores int) (time.Duration, bool) {
	jobSec := j.spec.Baseline.Seconds()
	r := float64(j.spec.Cores)
	switch s.cfg.Strategy {
	case StrategyBridge:
		// The launching facility covers any shortfall with Δ = R − r
		// Lambdas at the calibrated hybrid slowdown.
		return time.Duration(s.cfg.HybridSlowdown * float64(j.spec.Baseline)), true
	case StrategyAutoscale:
		if cores >= j.spec.Cores {
			return j.spec.Baseline, true
		}
		boot := s.cfg.VMBootOverride
		if boot <= 0 {
			boot = s.provider.NominalVMStartup()
		}
		if cores < 1 {
			// Nothing until the procured VMs boot, then full speed.
			return boot + j.spec.Baseline, true
		}
		slowRate := float64(cores) / r
		workDone := boot.Seconds() * slowRate
		if workDone >= jobSec {
			return time.Duration(jobSec / slowRate * float64(time.Second)), true
		}
		return time.Duration((boot.Seconds() + jobSec - workDone) * float64(time.Second)), true
	default: // StrategyQueue
		if cores < 1 {
			return 0, false
		}
		return time.Duration(float64(j.spec.Baseline) * r / float64(cores)), true
	}
}

// considerAdmission is deadline-aware admission for one queued job: shed
// when even full provisioning misses the deadline, admit when the ETA on
// the current entitlement makes it, delay otherwise.
func (s *Scheduler) considerAdmission(j *job) {
	now := s.clock.Now()
	deadline := j.arrivalAt.Add(j.allowance(s.cfg.SLOFactor))
	best, ok := s.fluidETA(j, j.spec.Cores)
	if !ok || now.Add(best).After(deadline) {
		s.shed(j, "slo unattainable")
		return
	}
	if eta, ok := s.fluidETA(j, j.target); ok && !now.Add(eta).After(deadline) {
		s.admit(j)
		return
	}
	s.delay(j)
}

// delay records (once per job) that admission is being held back, and arms
// the feasibility horizon: the instant past which even full provisioning
// misses the deadline, when the job should be shed rather than queue
// forever.
func (s *Scheduler) delay(j *job) {
	if j.delayed {
		return
	}
	j.delayed = true
	s.insts.jobsDelayed.Inc()
	s.emit(eventlog.ClusterDelay, j, func(ev *eventlog.Event) { ev.Cores = j.target })
	if best, ok := s.fluidETA(j, j.spec.Cores); ok {
		deadline := j.arrivalAt.Add(j.allowance(s.cfg.SLOFactor))
		slack := deadline.Sub(s.clock.Now().Add(best))
		s.clock.After(slack+time.Millisecond, func() {
			if j.phase == jobQueued {
				s.kick()
			}
		})
	}
}

// shed rejects a queued job outright; it never runs and holds no cores.
func (s *Scheduler) shed(j *job, reason string) {
	j.phase = jobShed
	j.finishedAt = s.clock.Now()
	j.shedReason = reason
	s.settled++
	j.queueSpan.End()
	if j.jobSpan != nil {
		j.jobSpan.End()
	}
	s.insts.jobsShed.Inc()
	s.emit(eventlog.ClusterShed, j, func(ev *eventlog.Event) {
		ev.Cores = j.spec.Cores
		ev.Note = reason
	})
}

// armScaleDown schedules an idle-timeout check for every procured, fully
// idle pool VM without one pending. The base fleet is never released —
// only autoscale procurements go back to the provider.
func (s *Scheduler) armScaleDown() {
	if s.cfg.ScaleDownIdle <= 0 {
		return
	}
	for _, vm := range s.procured {
		if vm.State != cloud.VMReady || s.scaleCheck[vm.ID] {
			continue
		}
		since, ok := s.pool.IdleSince(vm)
		if !ok {
			continue
		}
		wait := since.Add(s.cfg.ScaleDownIdle).Sub(s.clock.Now())
		if wait < 0 {
			wait = 0
		}
		s.scaleCheck[vm.ID] = true
		vm := vm
		s.clock.After(wait, func() {
			delete(s.scaleCheck, vm.ID)
			s.tryScaleDown(vm)
		})
	}
}

// tryScaleDown releases vm if it has been fully idle for the timeout and
// nothing is waiting for capacity. A VM that went busy in the meantime is
// left alone (the next core release re-arms the check via the scheduling
// pass); one that went idle again later is re-armed for the remainder.
func (s *Scheduler) tryScaleDown(vm *cloud.VM) {
	if vm.State != cloud.VMReady {
		return
	}
	// Hold capacity while anything is queued: releasing under a backlog
	// would trade queue wait (and SLO attainment) for VM-hours.
	for _, j := range s.active {
		if j.phase == jobQueued {
			return
		}
	}
	since, ok := s.pool.IdleSince(vm)
	if !ok {
		return
	}
	if idle := s.clock.Since(since); idle < s.cfg.ScaleDownIdle {
		s.scaleCheck[vm.ID] = true
		s.clock.After(s.cfg.ScaleDownIdle-idle, func() {
			delete(s.scaleCheck, vm.ID)
			s.tryScaleDown(vm)
		})
		return
	}
	if !s.pool.RemoveVM(vm) {
		return
	}
	s.provider.TerminateVM(vm)
	s.insts.vmsReleased.Inc()
	ev := eventlog.Ev(eventlog.VMReleaseIdle)
	ev.Exec = vm.ID
	ev.Kind = "vm"
	ev.Cores = vm.Type.VCPUs
	ev.Note = vm.Type.Name
	s.bus.Emit(s.clock.Now(), ev)
	s.kick()
}
