package cluster

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/simrand"
)

var update = flag.Bool("update", false, "rewrite golden files")

// elasticSpecs is a stream engineered for scale-down: a three-job burst
// that overflows the one-VM base pool (forcing autoscale procurement),
// then a long quiet gap, then one straggler job the base pool can serve
// alone — so the procured instances sit fully idle well past any
// reasonable timeout.
func elasticSpecs(t *testing.T) []JobSpec {
	t.Helper()
	arrivals := []time.Duration{0, time.Second, 2 * time.Second, 6 * time.Minute}
	return testJobs(t, arrivals, 4, 8, 4)
}

func runElastic(t *testing.T, idle time.Duration, admission Admission) (*Report, *Scheduler) {
	t.Helper()
	s, err := New(Config{
		Jobs:           elasticSpecs(t),
		PoolCores:      4,
		Policy:         FairShare(),
		Strategy:       StrategyAutoscale,
		SLOFactor:      3,
		VMBootOverride: 30 * time.Second,
		Seed:           1,
		Admission:      admission,
		ScaleDownIdle:  idle,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep, s
}

// TestScaleDownReleasesIdleProcuredVMs is the acceptance scenario: with
// -scaledown enabled the run must report strictly lower VM-hours than the
// keep-forever baseline at equal-or-better SLO attainment, and the
// difference must show up in every cost channel (hours saved, dollars
// saved, release events, terminated instances).
func TestScaleDownReleasesIdleProcuredVMs(t *testing.T) {
	keep, _ := runElastic(t, 0, AdmissionGreedy)
	scale, s := runElastic(t, 45*time.Second, AdmissionGreedy)

	if keep.Completed != 4 || scale.Completed != 4 {
		t.Fatalf("completed keep=%d scale=%d, want 4\nkeep:\n%s\nscale:\n%s",
			keep.Completed, scale.Completed, keep, scale)
	}
	if keep.VMsReleasedIdle != 0 || keep.VMHoursSaved != 0 {
		t.Errorf("keep-forever run reports releases: %d VMs, %.3f h",
			keep.VMsReleasedIdle, keep.VMHoursSaved)
	}
	if scale.VMsReleasedIdle == 0 {
		t.Fatalf("scale-down released no VMs:\n%s", scale)
	}
	if scale.VMHours >= keep.VMHours {
		t.Errorf("scale-down VM-hours %.3f not strictly below keep-forever %.3f",
			scale.VMHours, keep.VMHours)
	}
	if scale.VMAutoscaleUSD >= keep.VMAutoscaleUSD {
		t.Errorf("scale-down autoscale cost $%.4f not below keep-forever $%.4f",
			scale.VMAutoscaleUSD, keep.VMAutoscaleUSD)
	}
	if scale.VMHoursSaved <= 0 || scale.VMScaledownSavedUSD <= 0 {
		t.Errorf("savings not reported: %.3f h, $%.4f",
			scale.VMHoursSaved, scale.VMScaledownSavedUSD)
	}
	if scale.SLOAttainment < keep.SLOAttainment {
		t.Errorf("scale-down worsened SLO attainment: %.3f < %.3f",
			scale.SLOAttainment, keep.SLOAttainment)
	}

	releases := 0
	for _, ev := range s.Events().Events() {
		if ev.Type == eventlog.VMReleaseIdle {
			releases++
			if ev.Exec == "" || ev.Cores == 0 {
				t.Errorf("vm_release_idle event missing instance identity: %+v", ev)
			}
		}
	}
	if releases != scale.VMsReleasedIdle {
		t.Errorf("event log has %d vm_release_idle events, report says %d",
			releases, scale.VMsReleasedIdle)
	}
	if err := s.pool.CheckInvariants(); err != nil {
		t.Errorf("pool invariants violated after run: %v", err)
	}
}

// TestDeadlineAdmissionShedsInfeasibleJobs overloads a 4-core pool with
// three concurrent 4-core jobs under a tight SLO: greedy admission runs
// them all slowly into violations, deadline admission delays then sheds
// the jobs the fluid model deems unattainable, keeping attainment
// equal-or-better with fewer violations.
func TestDeadlineAdmissionShedsInfeasibleJobs(t *testing.T) {
	run := func(adm Admission) (*Report, *Scheduler) {
		arrivals := []time.Duration{0, time.Second, 2 * time.Second}
		s, err := New(Config{
			Jobs:      testJobs(t, arrivals, 4, 8, 4),
			PoolCores: 4,
			Policy:    FairShare(),
			Strategy:  StrategyQueue,
			SLOFactor: 1.2,
			Seed:      1,
			Admission: adm,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep, s
	}
	greedy, _ := run(AdmissionGreedy)
	deadline, s := run(AdmissionDeadline)

	if greedy.Shed != 0 {
		t.Errorf("greedy admission shed %d jobs", greedy.Shed)
	}
	if deadline.Shed == 0 {
		t.Fatalf("deadline admission shed nothing under overload:\n%s", deadline)
	}
	if deadline.Delayed == 0 {
		t.Errorf("deadline admission never delayed a job before shedding:\n%s", deadline)
	}
	if deadline.SLOViolations > greedy.SLOViolations {
		t.Errorf("deadline admission has more violations (%d) than greedy (%d)",
			deadline.SLOViolations, greedy.SLOViolations)
	}
	if deadline.SLOAttainment < greedy.SLOAttainment {
		t.Errorf("deadline attainment %.3f below greedy %.3f",
			deadline.SLOAttainment, greedy.SLOAttainment)
	}
	shedJobs := 0
	for _, j := range deadline.JobReports {
		if j.Shed != "" {
			shedJobs++
			if j.StartUS != 0 || j.RunUS != 0 || j.VMTasks+j.LambdaTasks != 0 {
				t.Errorf("shed job %d shows execution: %+v", j.ID, j)
			}
		}
	}
	if shedJobs != deadline.Shed {
		t.Errorf("per-job shed reasons (%d) disagree with summary (%d)", shedJobs, deadline.Shed)
	}
	seen := map[eventlog.Type]int{}
	for _, ev := range s.Events().Events() {
		seen[ev.Type]++
	}
	if seen[eventlog.ClusterShed] != deadline.Shed {
		t.Errorf("event log has %d %s events, report sheds %d",
			seen[eventlog.ClusterShed], eventlog.ClusterShed, deadline.Shed)
	}
	if seen[eventlog.ClusterDelay] == 0 {
		t.Errorf("no %s events emitted", eventlog.ClusterDelay)
	}
}

// TestElasticityPropertyInvariants is the property test: across randomized
// job mixes, strategies and elasticity settings, (a) the core pool's
// conservation laws hold at every emitted event of the run, and (b) no
// task ever starts on an executor whose host VM was already released by
// scale-down.
func TestElasticityPropertyInvariants(t *testing.T) {
	for _, seed := range []uint64{3, 11, 29} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := simrand.New(seed)
			nJobs := 3 + rng.Intn(3)
			cores := 2 + 2*rng.Intn(2) // 2 or 4
			strategy := []Strategy{StrategyQueue, StrategyAutoscale, StrategyBridge}[rng.Intn(3)]
			admission := []Admission{AdmissionGreedy, AdmissionDeadline}[rng.Intn(2)]
			mean := time.Duration(5+rng.Intn(20)) * time.Second
			arrivals, err := ParseArrivals(fmt.Sprintf("poisson:%s", mean), nJobs, seed)
			if err != nil {
				t.Fatalf("ParseArrivals: %v", err)
			}
			s, err := New(Config{
				Jobs:           testJobs(t, arrivals, cores, 6, 3),
				PoolCores:      cores, // undersized: concurrency forces sharing
				Policy:         FairShare(),
				Strategy:       strategy,
				SLOFactor:      2,
				VMBootOverride: 20 * time.Second,
				Seed:           seed,
				Admission:      admission,
				ScaleDownIdle:  15 * time.Second,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var violation error
			nEvents := 0
			s.Events().Subscribe(func(ev eventlog.Event) {
				nEvents++
				if violation == nil {
					if err := s.pool.CheckInvariants(); err != nil {
						violation = fmt.Errorf("event %d (%s): %w", nEvents, ev.Type, err)
					}
				}
			})
			if _, err := s.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if violation != nil {
				t.Errorf("strategy=%s admission=%s: pool invariant violated: %v",
					strategy, admission, violation)
			}
			if nEvents == 0 {
				t.Fatal("no events observed")
			}

			// Map executors to their host VM, then require every task_start
			// to predate its host's release.
			execVM := map[string]string{}
			for _, j := range s.jobs {
				for id, host := range j.execHosts {
					execVM[id] = host
				}
			}
			releasedAt := map[string]int64{}
			events := s.Events().Events()
			for _, ev := range events {
				if ev.Type == eventlog.VMReleaseIdle {
					releasedAt[ev.Exec] = ev.TS
				}
			}
			for _, ev := range events {
				if ev.Type != eventlog.TaskStart {
					continue
				}
				vmID, ok := execVM[ev.Exec]
				if !ok {
					continue // Lambda executor
				}
				if rel, ok := releasedAt[vmID]; ok && ev.TS >= rel {
					t.Errorf("task started on %s at %dus, but host %s was released at %dus",
						ev.Exec, ev.TS, vmID, rel)
				}
			}
		})
	}
}

// TestClusterSameSeedByteIdenticalWithElasticity extends the determinism
// guarantee to the new machinery: with scale-down and deadline admission
// both on, the same seed must still produce byte-identical reports and
// event logs.
func TestClusterSameSeedByteIdenticalWithElasticity(t *testing.T) {
	run := func() ([]byte, []byte) {
		rep, s := runElastic(t, 45*time.Second, AdmissionDeadline)
		repBuf, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		logBuf, err := s.Events().JSONL()
		if err != nil {
			t.Fatalf("JSONL: %v", err)
		}
		return repBuf, logBuf
	}
	repA, logA := run()
	repB, logB := run()
	if !bytes.Equal(repA, repB) {
		t.Errorf("same-seed elastic reports differ:\n--- a ---\n%s\n--- b ---\n%s", repA, repB)
	}
	if !bytes.Equal(logA, logB) {
		t.Error("same-seed elastic event logs differ")
	}
}

// TestClusterElasticReportGolden pins the exact report bytes of an
// elasticity-enabled run. Regenerate with:
//
//	go test ./internal/cluster -run Golden -update
func TestClusterElasticReportGolden(t *testing.T) {
	rep, _ := runElastic(t, 45*time.Second, AdmissionDeadline)
	got, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	path := filepath.Join("testdata", "elastic.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("elastic report drifted from golden (regenerate with -update):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
