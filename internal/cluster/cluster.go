// Package cluster is the multi-job layer above the intra-job engine: a
// scheduler admits a stream of real task-graph jobs (the existing
// workloads) against one shared VM core pool, with pluggable sharing
// policies (FIFO, max-min fair), per-job SLO deadlines, and the paper's
// three shortfall strategies — queue on what's free, autoscale more VMs,
// or bridge the gap with Lambdas (SplitServe). It is the discrete-event
// counterpart of internal/autoscale's fluid day simulation: the same
// arrival trace can be replayed through both and cross-checked.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"splitserve/internal/autoscale"
	"splitserve/internal/billing"
	"splitserve/internal/cloud"
	"splitserve/internal/eventlog"
	"splitserve/internal/hdfs"
	"splitserve/internal/metrics"
	"splitserve/internal/netsim"
	"splitserve/internal/perfstat"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/storage"
	"splitserve/internal/telemetry"
	"splitserve/internal/warmpool"
	"splitserve/internal/workloads"
)

// Stage/task overheads, matching the calibrated experiment defaults so a
// job run under the cluster scheduler costs the same as in
// internal/experiments. (Copied, not imported: experiments sits above
// this package.)
const (
	stageOverhead = 1400 * time.Millisecond
	dispatchCost  = 4 * time.Millisecond
)

// newClock builds the simulation clock. A package variable so the
// cross-implementation determinism tests can swap in
// simclock.NewHeapBacked and assert that the timer wheel produces
// byte-identical reports and event logs.
var newClock = simclock.New

// Strategy re-exports the shortfall strategies shared with the fluid day
// model, so both layers speak the same vocabulary.
type Strategy = autoscale.Strategy

// Strategies.
const (
	StrategyQueue     = autoscale.StrategyQueue
	StrategyAutoscale = autoscale.StrategyAutoscale
	StrategyBridge    = autoscale.StrategyBridge
)

// StrategyByName resolves "queue", "autoscale" or "bridge".
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "queue":
		return StrategyQueue, nil
	case "autoscale":
		return StrategyAutoscale, nil
	case "bridge":
		return StrategyBridge, nil
	default:
		return 0, fmt.Errorf("cluster: unknown strategy %q (accepted: queue, autoscale, bridge)", name)
	}
}

// JobSpec is one job submitted to the cluster.
type JobSpec struct {
	// Name labels the job in reports (defaults to the workload name).
	Name string
	// Workload must be a fresh instance — the scheduler runs it once.
	Workload workloads.Workload
	// Cores is the job's full-provisioning demand R.
	Cores int
	// Arrival is the submission offset from the start of the run.
	Arrival time.Duration
	// Tenant labels the submitting tenant in multi-tenant runs (empty for
	// single-tenant streams). The sharded control plane hashes it to pick
	// the job's home shard; reports carry it through per-tenant tables.
	Tenant string
	// Baseline is the job's execution time at full provisioning (see
	// Baseline); the SLO deadline is SLOFactor × Baseline and stretch is
	// measured against it.
	Baseline time.Duration
	// Pick, when set, records the cost manager's allocation decision
	// that produced Cores. The scheduler emits it as a cost_pick event
	// on arrival and the report compares its predictions against the
	// realized run time and cost, so prediction error is observable.
	Pick *CostPick
}

// CostPick is a cost-manager allocation decision attached to a JobSpec
// (-cores auto). The cluster layer only carries and reports it; the
// decision itself is made by internal/costmgr above this package.
type CostPick struct {
	// Policy names the allocation policy (min-cost, min-time, knee).
	Policy string
	// PredictedRun / PredictedCostUSD are the profile's predictions at
	// the chosen R (zero when Source is "fallback").
	PredictedRun     time.Duration
	PredictedCostUSD float64
	// Source is "profile" or "fallback" (no profile for the workload).
	Source string
}

// Config assembles a Scheduler.
type Config struct {
	Jobs []JobSpec
	// PoolCores sizes the shared VM pool; PoolVMType is the instance type
	// it is built from (and that autoscaling procures).
	PoolCores  int
	PoolVMType cloud.VMType
	// Policy divides pool cores among active jobs (FIFO or FairShare).
	Policy Policy
	// Strategy is the response to a job's core shortfall.
	Strategy Strategy
	// SLOFactor: a job violates its SLO when it finishes later than
	// arrival + SLOFactor × Baseline.
	SLOFactor float64
	// Admission selects the admission policy (default AdmissionGreedy);
	// AdmissionDeadline delays or sheds jobs whose SLO is unattainable.
	Admission Admission
	// ScaleDownIdle, when > 0, releases autoscale-procured VMs back to
	// the provider after they have been fully idle this long (0 keeps
	// them pooled for the rest of the run, the pre-elasticity behavior).
	ScaleDownIdle time.Duration
	// HybridSlowdown is the fluid-model execution multiplier of a bridged
	// job, used by deadline admission's ETA (default 1.10, matching the
	// calibrated daysim constant).
	HybridSlowdown float64
	// LambdaMemoryMB sizes bridged Lambda executors (default 1536).
	LambdaMemoryMB int
	// WarmPool, when > 0, provisions a target-tracked pool of that many
	// pre-initialized Lambda environments (provisioned concurrency):
	// bridged executors launched on them start warm, and their idle time
	// is billed at the provisioned-idle rate as a separate line item.
	WarmPool int
	// TmpCache layers a function-local /tmp shuffle cache tier in front
	// of the shared store: warm-pool environments keep an LRU copy
	// (512 MB cap) of blocks they write or fetch, so repeat shuffle
	// reads skip the network. Requires WarmPool > 0 to have any effect.
	TmpCache bool
	// ColdStarts models a cold ambient Lambda fleet: the provider begins
	// with zero pre-warmed environments, so first invocations pay the
	// full cold-start latency (warm reuse still kicks in as invocations
	// finish). Default false keeps the historical always-warm ambient
	// fleet; turn it on to make the warm pool's latency value visible.
	ColdStarts bool
	// Alloc labels how per-job core demands were chosen ("fixed", or the
	// cost-manager policy behind -cores auto); it is echoed in the
	// report so saved reports are self-describing.
	Alloc string
	// VMBootOverride pins the boot delay of autoscale-procured VMs
	// (0 = sample the provider's distribution).
	VMBootOverride time.Duration
	// Clock, when non-nil, is an externally owned simulation clock. The
	// sharded control plane (internal/shard) passes one clock to every
	// shard so N independent schedulers advance in lockstep; it then
	// drives them itself via Start/Pump/Done/Finalize instead of Run.
	// Default nil builds a private clock, the historical behavior.
	Clock *simclock.Clock
	// IDPrefix prefixes every job's app ID and executor prefix ("s2-"
	// under the sharded control plane) so merged event streams from
	// several schedulers stay collision-free. Empty (the default)
	// preserves the historical j%03d-NAME IDs byte-for-byte.
	IDPrefix string
	Seed     uint64
	// MaxSimTime bounds the whole run (default 48h).
	MaxSimTime time.Duration
	// Prof, when non-nil, collects host-side self-profiling (wall time
	// per clock step, goroutine-handoff cost, run-queue depth, event-type
	// counts). It only observes — same-seed reports and event logs stay
	// byte-identical with profiling on or off.
	Prof *perfstat.Collector
}

type jobPhase int

const (
	jobQueued jobPhase = iota + 1
	jobRunning
	jobDone
	jobFailed
	// jobShed: rejected by deadline-aware admission before running.
	jobShed
	// jobMigrated: stolen by the sharded control plane's work-stealing
	// pass while queued; it settles here (excluded from this scheduler's
	// report) and re-runs on the destination shard.
	jobMigrated
)

// coroutine is one job's workload goroutine. Exactly one goroutine — the
// scheduler's Run loop or one coroutine — executes at a time: a single
// execution token is chained from workload to workload through the
// per-job wake channels (the run-queue) and returns to the scheduler via
// schedToken only when the batch is drained, so resuming a batch of N
// workloads costs N+1 channel operations instead of 2N. Every transfer is
// a channel send/receive, so the token chain is also the happens-before
// chain that keeps runs deterministic and race-free.
type coroutine struct {
	// wake hands the execution token to the parked workload; false aborts
	// it as stalled.
	wake chan bool
	// ready reports whether the parked workload's engine job completed;
	// set before every park. Ready probes are monotone (an engine job
	// never un-completes), which is what makes the batched drain resume
	// workloads in exactly the order the old scan-per-job loop did.
	ready func() bool
	// resumedAt is the host instant the workload last received the token
	// (set only when profiling): the next park or finish observes the
	// burst as one handoff.
	resumedAt time.Time
}

type job struct {
	spec       JobSpec
	id         int
	appID      string
	execPrefix string

	phase      jobPhase
	arrivalAt  time.Time
	admittedAt time.Time
	finishedAt time.Time

	// target is the job's current policy entitlement, refreshed each
	// scheduling pass.
	target int

	backend *jobBackend
	cluster *engine.Cluster
	co      *coroutine
	log     *metrics.Log
	lambdas []*cloud.Lambda
	meter   billing.Meter

	report *workloads.Report
	err    error

	// workDist and execHosts are captured from the engine when the job
	// settles, so finish can release the engine itself (the dominant
	// per-job retention at 10k jobs) while reports and invariant checks
	// keep what they need.
	workDist  map[engine.ExecKind]engine.WorkStats
	execHosts map[string]string // VM executor ID -> host VM ID

	// delayed records that deadline admission held the job back at least
	// once; shedReason is set when admission rejected it outright.
	delayed    bool
	shedReason string

	// injected marks a job stolen in from another shard: its presetArrival
	// preserves the original submission instant (SLO deadlines and queue
	// wait stay measured from true submission), and the stealing pass
	// never re-steals it.
	injected      bool
	presetArrival time.Time

	jobSpan   *telemetry.Span
	queueSpan *telemetry.Span
}

func (j *job) active() bool { return j.phase == jobQueued || j.phase == jobRunning }

// allowance is the job's SLO deadline duration.
func (j *job) allowance(factor float64) time.Duration {
	return time.Duration(factor * float64(j.spec.Baseline))
}

// clusterInstruments are the scheduler's telemetry handles.
type clusterInstruments struct {
	jobsArrived   *telemetry.Counter
	jobsCompleted *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsShed      *telemetry.Counter
	jobsDelayed   *telemetry.Counter
	sloViolations *telemetry.Counter
	segueGrants   *telemetry.Counter
	vmsReleased   *telemetry.Counter
	jobsQueued    *telemetry.Gauge
	jobsRunning   *telemetry.Gauge
	queueWait     *telemetry.Histogram
	stretch       *telemetry.Histogram
}

func newClusterInstruments(h *telemetry.Hub) *clusterInstruments {
	return &clusterInstruments{
		jobsArrived:   h.Counter("cluster_jobs_arrived_total"),
		jobsCompleted: h.Counter("cluster_jobs_completed_total"),
		jobsFailed:    h.Counter("cluster_jobs_failed_total"),
		jobsShed:      h.Counter("cluster_jobs_shed_total"),
		jobsDelayed:   h.Counter("cluster_jobs_delayed_total"),
		sloViolations: h.Counter("cluster_slo_violations_total"),
		segueGrants:   h.Counter("cluster_segue_core_grants_total"),
		vmsReleased:   h.Counter("cluster_vms_released_idle_total"),
		jobsQueued:    h.Gauge("cluster_jobs_queued"),
		jobsRunning:   h.Gauge("cluster_jobs_running"),
		// Queue waits in a busy cluster run to minutes or hours, well past
		// DefBuckets' 250s ceiling — use explicit bounds up to 2h.
		queueWait: h.Histogram("cluster_queue_wait_seconds", []float64{
			1, 5, 15, 30, 60, 120, 300, 600, 1200, 1800, 3600, 7200,
		}),
		stretch: h.Histogram("cluster_job_stretch", []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10, 20}),
	}
}

// Scheduler runs a multi-job day against one shared pool. Build with New,
// drive with Run (once).
type Scheduler struct {
	cfg  Config
	jobs []*job

	clock    *simclock.Clock
	net      *netsim.Network
	hub      *telemetry.Hub
	provider *cloud.Provider
	fs       *hdfs.Cluster
	pool     *cloud.CorePool
	bus      *eventlog.Bus
	insts    *clusterInstruments
	// store is what job engines read and write shuffle through: the HDFS
	// view, wrapped by tmpCache when Config.TmpCache is on.
	store storage.Store
	// warm is the provisioned-concurrency pool (nil when WarmPool = 0).
	warm     *warmpool.Pool
	tmpCache *warmpool.TmpCache

	baseVMs  []*cloud.VM
	procured []*cloud.VM
	// active is the ID-ordered list of arrived, unsettled jobs — the
	// scheduling pass's working set, compacted lazily so a pass costs
	// O(active), not O(total jobs). ID order matches the former
	// iterate-all-jobs order, which admission and policy grants depend on.
	active []*job
	// settled counts jobs that reached a terminal phase (done, failed,
	// shed), so the run loop's exit test is O(1).
	settled int
	// parkedJobs are running jobs whose workload goroutine is blocked in
	// engine.RunJob waiting for its engine job to complete. Workloads
	// append themselves while holding the execution token.
	parkedJobs []*job
	// runq is the batch of parked jobs whose engine jobs completed,
	// resumed by chaining the execution token job-to-job (see coroutine).
	runq []*job
	// schedToken returns the execution token to the scheduler goroutine
	// once a workload batch is drained.
	schedToken chan struct{}
	// pendingProcureCores tracks autoscale requests in flight so one
	// shortfall doesn't procure twice.
	pendingProcureCores int
	// scaleCheck marks procured VMs with an idle-timeout check pending.
	scaleCheck map[string]bool

	kicked bool
	ran    bool

	// prof is the optional self-profiler (nil = off, all calls no-ops).
	prof *perfstat.Collector
}

// New validates cfg and assembles the shared simulation: clock, network,
// provider, an HDFS namenode on a master VM, and the core pool.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("cluster: no jobs")
	}
	if cfg.PoolCores < 1 {
		return nil, errors.New("cluster: PoolCores must be >= 1")
	}
	if cfg.Policy == nil {
		cfg.Policy = FairShare()
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = StrategyBridge
	}
	if cfg.SLOFactor == 0 {
		cfg.SLOFactor = 1.5
	}
	if cfg.Admission == 0 {
		cfg.Admission = AdmissionGreedy
	}
	if cfg.ScaleDownIdle < 0 {
		return nil, errors.New("cluster: ScaleDownIdle must be >= 0")
	}
	if cfg.WarmPool < 0 {
		return nil, errors.New("cluster: WarmPool must be >= 0")
	}
	if cfg.HybridSlowdown == 0 {
		cfg.HybridSlowdown = 1.10
	}
	if cfg.HybridSlowdown < 1 {
		return nil, errors.New("cluster: HybridSlowdown must be >= 1")
	}
	if cfg.LambdaMemoryMB == 0 {
		cfg.LambdaMemoryMB = 1536
	}
	if cfg.PoolVMType.VCPUs == 0 {
		cfg.PoolVMType = cloud.M4XLarge
	}
	if cfg.Alloc == "" {
		cfg.Alloc = "fixed"
	}
	if cfg.MaxSimTime == 0 {
		cfg.MaxSimTime = 48 * time.Hour
	}
	for i, spec := range cfg.Jobs {
		if spec.Workload == nil {
			return nil, fmt.Errorf("cluster: job %d has no workload", i)
		}
		if spec.Cores < 1 {
			return nil, fmt.Errorf("cluster: job %d demands %d cores", i, spec.Cores)
		}
		if spec.Baseline <= 0 {
			return nil, fmt.Errorf("cluster: job %d has no baseline (run Baseline first)", i)
		}
	}

	clock := cfg.Clock
	if clock == nil {
		clock = newClock(simclock.Epoch)
	}
	net := netsim.New(clock)
	hub := telemetry.New(clock)
	bus := eventlog.NewBus(simclock.Epoch)
	provOpts := cloud.DefaultOptions()
	if cfg.ColdStarts {
		provOpts.WarmPoolSize = 0
	}
	provider := cloud.NewProvider(clock, net, simrand.New(cfg.Seed+1), provOpts)
	provider.SetTelemetry(hub)
	provider.SetEventLog(bus)

	// The master hosts the namenode and datanode; pool VMs run executors.
	master := provider.ProvisionReadyVM(cloud.M4XLarge)
	fs := hdfs.NewCluster(clock, net, hdfs.DefaultOptions())
	fs.SetTelemetry(hub)
	fs.SetEventLog(bus, "")
	fs.AddDataNode("dn-"+master.ID, []*netsim.Pool{master.EBS})

	pool := cloud.NewCorePool()
	pool.SetTelemetry(hub)
	pool.SetEventLog(bus, clock.Now)
	var baseVMs []*cloud.VM
	for pool.Capacity() < cfg.PoolCores {
		vm := provider.ProvisionReadyVM(cfg.PoolVMType)
		pool.AddVM(vm)
		baseVMs = append(baseVMs, vm)
	}

	// Optional warm-pool substrate: a /tmp cache tier in front of HDFS
	// (sized by the platform's per-environment ephemeral cap) and a
	// provisioned-concurrency pool whose environment lifetime is the
	// platform's. Environment recycling drops the environment's cache.
	store := storage.Store(fs.Store())
	var tmpCache *warmpool.TmpCache
	if cfg.TmpCache {
		tmpCache = warmpool.NewTmpCache(clock, bus, store, warmpool.CacheOptions{
			CapacityBytes: provider.Limits().TmpBytes,
		})
		store = tmpCache
	}
	var warm *warmpool.Pool
	if cfg.WarmPool > 0 {
		var err error
		warm, err = warmpool.NewPool(clock, bus, warmpool.Config{
			MemoryMB:    cfg.LambdaMemoryMB,
			Target:      cfg.WarmPool,
			EnvLifetime: provider.Limits().MaxLifetime,
		})
		if err != nil {
			return nil, err
		}
		if tmpCache != nil {
			warm.SetOnExpire(tmpCache.Recycle)
		}
	}

	s := &Scheduler{
		cfg: cfg, clock: clock, net: net, hub: hub,
		provider: provider, fs: fs, pool: pool, bus: bus,
		insts: newClusterInstruments(hub), baseVMs: baseVMs,
		store: store, warm: warm, tmpCache: tmpCache,
		scaleCheck: make(map[string]bool), prof: cfg.Prof,
		schedToken: make(chan struct{}),
	}
	s.prof.AttachClock(clock)
	s.prof.ObserveBus(bus)
	for i, spec := range cfg.Jobs {
		if spec.Name == "" {
			spec.Name = spec.Workload.Name()
		}
		j := &job{spec: spec, id: i,
			appID:      fmt.Sprintf("%sj%03d-%s", cfg.IDPrefix, i, spec.Name),
			execPrefix: fmt.Sprintf("%sj%03d", cfg.IDPrefix, i)}
		j.meter.SetTelemetry(hub)
		s.jobs = append(s.jobs, j)
	}
	return s, nil
}

// Telemetry exposes the shared hub (for prom export).
func (s *Scheduler) Telemetry() *telemetry.Hub { return s.hub }

// Events exposes the run's structured event stream (for -eventlog/-trace).
func (s *Scheduler) Events() *eventlog.Bus { return s.bus }

// emit sends one scheduler-level event for job j.
func (s *Scheduler) emit(t eventlog.Type, j *job, mutate func(*eventlog.Event)) {
	ev := eventlog.Ev(t)
	ev.App = j.appID
	ev.Note = j.spec.Name
	if mutate != nil {
		mutate(&ev)
	}
	s.bus.Emit(s.clock.Now(), ev)
}

// Clock exposes the shared virtual clock.
func (s *Scheduler) Clock() *simclock.Clock { return s.clock }

// Run plays the whole job stream to completion and reports. It may be
// called once. It is exactly Start + the Step/Pump drive loop + Finalize;
// the sharded control plane calls those pieces directly so N schedulers
// on one shared clock advance in lockstep.
func (s *Scheduler) Run() (*Report, error) {
	if err := s.Start(); err != nil {
		return nil, err
	}
	deadline := simclock.Epoch.Add(s.cfg.MaxSimTime)
	for !s.Done() && s.clock.Now().Before(deadline) {
		if !s.clock.Step() {
			break
		}
		s.Pump()
	}
	return s.Finalize(), nil
}

// Start registers every job's arrival on the clock. It may be called
// once; after it, the caller drives the clock (Step) and calls Pump after
// every step until Done, then Finalize.
func (s *Scheduler) Start() error {
	if s.ran {
		return errors.New("cluster: Run may only be called once")
	}
	s.ran = true
	for _, j := range s.jobs {
		j := j
		s.clock.At(simclock.Epoch.Add(j.spec.Arrival), func() { s.onArrival(j) })
	}
	return nil
}

// Done reports whether every submitted (or injected) job has settled.
func (s *Scheduler) Done() bool { return s.settled >= len(s.jobs) }

// Finalize ends the run: whatever is still parked is stalled (or past
// the deadline), so abort the workload goroutines, fail still-active
// jobs, stop the warm pool, and build the report. Call once, after the
// drive loop exits.
func (s *Scheduler) Finalize() *Report {
	// An aborted workload settles itself through finish before handing the
	// token back.
	for len(s.parkedJobs) > 0 {
		j := s.parkedJobs[0]
		s.parkedJobs[0] = nil
		s.parkedJobs = s.parkedJobs[1:]
		j.co.wake <- false
		<-s.schedToken
	}
	for _, j := range s.jobs {
		if j.active() {
			j.phase = jobFailed
			j.finishedAt = s.clock.Now()
			j.err = fmt.Errorf("cluster: job %s never completed (queued or stalled)", j.appID)
			s.insts.jobsFailed.Inc()
			s.settled++
		}
	}
	if s.warm != nil {
		s.warm.Stop()
	}
	s.updateGauges()
	return s.buildReport()
}

// passToken hands the execution token to the next run-queue workload, or
// back to the scheduler goroutine when the batch is drained. Called by
// whichever goroutine currently holds the token.
func (s *Scheduler) passToken() {
	if len(s.runq) > 0 {
		next := s.runq[0]
		s.runq[0] = nil
		s.runq = s.runq[1:]
		next.co.wake <- true
		return
	}
	s.schedToken <- struct{}{}
}

// observeHandoff closes out co's current execution burst (token receipt to
// park/finish) on the self-profiler. No-op when profiling is off.
func (s *Scheduler) observeHandoff(co *coroutine) {
	if s.prof != nil && !co.resumedAt.IsZero() {
		s.prof.ObserveHandoff(time.Since(co.resumedAt))
	}
}

// kick coalesces any number of state changes into one scheduling pass at
// the current instant.
func (s *Scheduler) kick() {
	if s.kicked {
		return
	}
	s.kicked = true
	s.clock.After(0, func() {
		s.kicked = false
		s.schedule()
	})
}

func (s *Scheduler) onCoresFreed() { s.kick() }

func (s *Scheduler) onArrival(j *job) {
	j.phase = jobQueued
	j.arrivalAt = s.clock.Now()
	if !j.presetArrival.IsZero() {
		// A stolen job keeps its original submission instant: the SLO
		// deadline and queue wait are measured from when the tenant
		// submitted it, not from when the steal landed it here.
		j.arrivalAt = j.presetArrival
	}
	j.jobSpan = s.hub.Tracer().StartSpan("cluster", "job",
		telemetry.L("app", j.appID), telemetry.L("name", j.spec.Name))
	j.queueSpan = s.hub.Tracer().StartSpan("cluster", "queue_wait",
		telemetry.L("app", j.appID))
	s.insts.jobsArrived.Inc()
	// Insert into the active working set keeping ID order (arrival events
	// fire in time order, not ID order, under heterogeneous arrivals).
	i := sort.Search(len(s.active), func(k int) bool { return s.active[k].id > j.id })
	s.active = append(s.active, nil)
	copy(s.active[i+1:], s.active[i:])
	s.active[i] = j
	s.emit(eventlog.ClusterArrive, j, func(ev *eventlog.Event) { ev.Cores = j.spec.Cores })
	if p := j.spec.Pick; p != nil {
		s.emit(eventlog.CostPick, j, func(ev *eventlog.Event) {
			ev.Cores = j.spec.Cores
			ev.Note = fmt.Sprintf("%s pred_run_us=%d pred_cost_usd=%.6f src=%s",
				p.Policy, p.PredictedRun.Microseconds(), p.PredictedCostUSD, p.Source)
		})
	}
	s.kick()
}

// schedule is the single scheduling pass: policy targets, reclaims,
// admissions, core grants (segue-first), and autoscale procurement.
func (s *Scheduler) schedule() {
	// Compact the working set: drop jobs that settled since the last pass.
	kept := s.active[:0]
	for _, j := range s.active {
		if j.active() {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = kept
	active := s.active
	s.updateGauges()
	if len(active) == 0 {
		return
	}

	demands := make([]int, len(active))
	for i, j := range active {
		demands[i] = j.spec.Cores
	}
	targets := s.cfg.Policy.Targets(s.pool.Capacity(), demands)
	for i, j := range active {
		j.target = targets[i]
	}

	// Reclaim from running jobs holding more than their entitlement.
	for _, j := range active {
		if j.phase != jobRunning {
			continue
		}
		if excess := j.backend.vmEffective() - j.target; excess > 0 {
			j.backend.reclaim(excess)
		}
	}

	// Admit queued jobs. Greedy admits once the entitlement reaches one
	// core (bridge unconditionally: the launching facility covers any
	// shortfall with Δ = R − r Lambdas, so there is nothing to queue
	// for); deadline-aware admission instead asks whether the SLO is
	// still attainable, delaying or shedding jobs that cannot make it.
	for _, j := range active {
		if j.phase != jobQueued {
			continue
		}
		if s.cfg.Admission == AdmissionDeadline {
			s.considerAdmission(j)
		} else if j.target >= 1 || s.cfg.Strategy == StrategyBridge {
			s.admit(j)
		}
	}

	// Grant free cores. Lambda-heavy jobs come first, longest-running
	// first — the cross-job segue: a freed VM core is worth most to the
	// job that has been paying the Lambda premium the longest.
	var segueFirst, rest []*job
	for _, j := range active {
		if j.phase == jobRunning && j.backend.lambdaLive > 0 {
			segueFirst = append(segueFirst, j)
		} else {
			rest = append(rest, j)
		}
	}
	sort.SliceStable(segueFirst, func(a, b int) bool {
		return segueFirst[a].admittedAt.Before(segueFirst[b].admittedAt)
	})
	for _, j := range append(segueFirst, rest...) {
		if j.phase != jobRunning {
			continue
		}
		want := j.target - j.backend.vmEffective()
		if want <= 0 {
			continue
		}
		leases := s.pool.Acquire(j.appID, want)
		if len(leases) == 0 {
			continue
		}
		if j.backend.lambdaLive > 0 {
			s.insts.segueGrants.Add(float64(len(leases)))
			s.emit(eventlog.SegueCoreGrant, j, func(ev *eventlog.Event) { ev.Cores = len(leases) })
		}
		j.backend.addLeases(leases)
	}

	// Autoscale: procure VMs for the unmet demand, minus what is already
	// free or booting. Procured VMs join the pool permanently (unlike the
	// fluid model, which prices them per job — see DESIGN.md).
	if s.cfg.Strategy == StrategyAutoscale {
		unmet := 0
		for _, j := range active {
			if !j.active() { // shed by deadline admission this pass
				continue
			}
			held := 0
			if j.phase == jobRunning {
				held = j.backend.coresHeld()
			}
			if d := j.spec.Cores - held; d > 0 {
				unmet += d
			}
		}
		unmet -= s.pool.Free() + s.pendingProcureCores
		for unmet > 0 {
			t := s.cfg.PoolVMType
			s.pendingProcureCores += t.VCPUs
			unmet -= t.VCPUs
			ev := eventlog.Ev(eventlog.AutoscaleOrder)
			ev.Cores = t.VCPUs
			ev.Note = t.Name
			s.bus.Emit(s.clock.Now(), ev)
			s.provider.RequestVM(t, s.cfg.VMBootOverride, func(vm *cloud.VM) {
				s.pendingProcureCores -= vm.Type.VCPUs
				s.pool.AddVM(vm)
				s.procured = append(s.procured, vm)
				s.kick()
			})
		}
	}

	s.armScaleDown()
}

func (s *Scheduler) updateGauges() {
	queued, running := 0, 0
	for _, j := range s.active {
		switch j.phase {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		}
	}
	s.insts.jobsQueued.Set(float64(queued))
	s.insts.jobsRunning.Set(float64(running))
	// Run-queue depth for the self-profiler: jobs waiting for cores plus
	// workloads parked awaiting resume.
	s.prof.SampleQueueDepth(queued + len(s.parkedJobs))
}

func (s *Scheduler) admit(j *job) {
	j.phase = jobRunning
	j.admittedAt = s.clock.Now()
	j.queueSpan.End()
	s.insts.queueWait.ObserveDuration(s.clock.Since(j.arrivalAt))
	s.emit(eventlog.ClusterAdmit, j, func(ev *eventlog.Event) { ev.Cores = j.target })

	lg := metrics.NewWithTelemetry(s.clock.Now(), s.hub)
	lg.SetApp(j.appID)
	j.backend = newJobBackend(s, j)
	co := &coroutine{wake: make(chan bool)}
	j.co = co
	c, err := engine.New(engine.Config{
		AppID:               j.appID,
		Clock:               s.clock,
		Net:                 s.net,
		Provider:            s.provider,
		Store:               s.store,
		Backend:             j.backend,
		Log:                 lg,
		Events:              s.bus,
		Alloc:               engine.DefaultAllocConfig(engine.AllocStatic, j.spec.Cores, j.spec.Cores),
		SLO:                 j.allowance(s.cfg.SLOFactor),
		StageLaunchOverhead: stageOverhead,
		TaskDispatchCost:    dispatchCost,
		MaxSimTime:          s.cfg.MaxSimTime,
		Yield: func(ready func() bool) bool {
			s.prof.CountYield()
			s.observeHandoff(co)
			co.ready = ready
			s.parkedJobs = append(s.parkedJobs, j)
			s.passToken()
			ok := <-co.wake
			if s.prof != nil {
				co.resumedAt = time.Now()
			}
			return ok
		},
	})
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	j.cluster = c
	j.log = lg
	s.clock.After(0, func() { s.runJob(j) })
}

// runJob starts the job's workload on its own goroutine, hands it the
// execution token, and blocks until the token returns (the workload
// parked in engine.RunJob or finished outright — possibly after chaining
// through other workloads it unblocked). From here on the workload only
// executes between token handoffs, so its real completion instants are
// observed at the event that caused them rather than at call-stack
// unwind.
func (s *Scheduler) runJob(j *job) {
	co := j.co
	go func() {
		if s.prof != nil {
			co.resumedAt = time.Now()
		}
		rep, err := j.spec.Workload.Run(j.cluster)
		j.backend.shutdown()
		s.finish(j, rep, err)
		s.observeHandoff(co)
		s.passToken()
	}()
	<-s.schedToken
}

// Pump resumes every parked workload whose engine job has completed: it
// collects the resumable batch in park order, then releases the execution
// token into the chain with one sync point for the whole batch, repeating
// until no more progress is possible (a resumed workload can finish,
// unblocking cores that complete another job at the same instant).
// Because ready probes are monotone, collect-then-chain resumes workloads
// in exactly the order the old resume-one-rescan loop did. Exported for
// the sharded control plane's lockstep drive loop; Run calls it after
// every clock step.
func (s *Scheduler) Pump() {
	for {
		kept := s.parkedJobs[:0]
		for _, j := range s.parkedJobs {
			if j.co.ready != nil && j.co.ready() {
				s.runq = append(s.runq, j)
			} else {
				kept = append(kept, j)
			}
		}
		for i := len(kept); i < len(s.parkedJobs); i++ {
			s.parkedJobs[i] = nil
		}
		s.parkedJobs = kept
		if len(s.runq) == 0 {
			return
		}
		s.passToken()
		<-s.schedToken
	}
}

func (s *Scheduler) finish(j *job, rep *workloads.Report, err error) {
	now := s.clock.Now()
	j.finishedAt = now
	j.report = rep
	j.err = err
	if j.jobSpan != nil {
		j.jobSpan.End()
	}
	if err != nil {
		j.phase = jobFailed
		s.insts.jobsFailed.Inc()
		s.emit(eventlog.ClusterFail, j, func(ev *eventlog.Event) { ev.Note = err.Error() })
	} else {
		j.phase = jobDone
		s.insts.jobsCompleted.Inc()
		s.emit(eventlog.ClusterFinish, j, nil)
		stretch := float64(now.Sub(j.arrivalAt)) / float64(j.spec.Baseline)
		s.insts.stretch.Observe(stretch)
		if now.Sub(j.arrivalAt) > j.allowance(s.cfg.SLOFactor) {
			s.insts.sloViolations.Inc()
			s.emit(eventlog.SLOViolate, j, nil)
		}
	}
	// Bill the job: each VM executor is one core of its host for its
	// registered lifetime; each Lambda for its billed duration.
	if j.cluster != nil {
		j.execHosts = make(map[string]string)
		for _, e := range j.cluster.AllExecutors() {
			if e.Kind != engine.ExecVM || e.VM == nil {
				continue
			}
			j.execHosts[e.ID] = e.VM.ID
			end := e.RemovedAt
			if e.State != engine.ExecDead {
				end = now
			}
			j.meter.AddVM(e.HostID, e.VM.Type.PricePerHour, e.VM.Type.VCPUs, 1, end.Sub(e.RegisteredAt))
		}
		j.workDist = j.cluster.WorkDistribution()
	}
	for _, l := range j.lambdas {
		j.meter.AddLambda(l.ID, s.cfg.LambdaMemoryMB, l.BilledDuration(now))
	}
	// The job is settled: release its simulation state. At 10k concurrent
	// jobs the retained engines (executor/task records) and metric logs
	// are what inflate the live heap — and with it GC pause tails in the
	// clock loop — so dropping them here is part of the run-queue perf
	// work, not just tidiness. Launch callbacks still in flight hold their
	// own references and self-release on the done flag.
	s.settled++
	j.cluster = nil
	j.backend = nil
	j.log = nil
	j.lambdas = nil
	j.co = nil
	s.kick()
}

// Baseline measures w's execution time on a dedicated fully provisioned
// cluster of the given size — the denominator of the job's stretch and
// the base of its SLO deadline. The run uses its own simulation; the
// caller's clock never moves.
func Baseline(w workloads.Workload, cores int, seed uint64) (time.Duration, error) {
	clock := newClock(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(seed+1), cloud.DefaultOptions())

	master := provider.ProvisionReadyVM(cloud.M4XLarge)
	fs := hdfs.NewCluster(clock, net, hdfs.DefaultOptions())
	fs.AddDataNode("dn-"+master.ID, []*netsim.Pool{master.EBS})

	t, _ := cloud.SmallestFor(cores)
	var vms []*cloud.VM
	for got := 0; got < cores; got += t.VCPUs {
		vms = append(vms, provider.ProvisionReadyVM(t))
	}
	c, err := engine.New(engine.Config{
		AppID:               "baseline-" + w.Name(),
		Clock:               clock,
		Net:                 net,
		Provider:            provider,
		Store:               fs.Store(),
		Backend:             engine.NewStandalone(engine.StandaloneConfig{VMs: vms, UsableCores: cores}),
		Alloc:               engine.DefaultAllocConfig(engine.AllocStatic, cores, cores),
		StageLaunchOverhead: stageOverhead,
		TaskDispatchCost:    dispatchCost,
	})
	if err != nil {
		return 0, err
	}
	rep, err := w.Run(c)
	if err != nil {
		return 0, err
	}
	return rep.Elapsed, nil
}
