package cluster

import (
	"testing"
	"time"

	"splitserve/internal/autoscale"
)

// TestStrategyOrderingMatchesFluidDaysim is the cross-layer check the
// ISSUE asks for: replay the same arrival trace through the fluid day
// model (internal/autoscale) and through the discrete-event cluster
// scheduler with real task graphs, and verify both layers rank the
// shortfall strategies identically on SLO violations:
//
//	Queue > Autoscale > Bridge
//
// The configuration puts a flat 8-core fleet under ~100% offered load
// (mean demand equals capacity), so arrivals routinely find the pool
// busy: queuing stretches jobs far past the SLO, autoscaling pays one
// boot delay, and bridging absorbs the shortfall at the hybrid slowdown.
func TestStrategyOrderingMatchesFluidDaysim(t *testing.T) {
	series := autoscale.DefaultSeriesConfig()
	series.Horizon = 30 * time.Minute
	series.Step = 2 * time.Minute
	// Flat mean with heavy AR(1) noise: demand averages 8 cores against a
	// 5-core pool (the fluid policy m - 0.75sigma provisions exactly 5),
	// so most arrivals find a shortfall but quiet intervals still occur —
	// the spread that separates the three strategies.
	series.BaseCores = 8
	series.PeakCores = 8
	series.SigmaFraction = 0.5
	series.Seed = 12

	const (
		jobCores  = 4
		poolCores = 5
		policyK   = -0.75 // ceil(8 - 0.75*4) = 5 = poolCores
		sloFactor = 1.6
		vmBoot    = 60 * time.Second
	)

	base, err := Baseline(piJob(16, 15), jobCores, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}

	day := autoscale.DayConfig{
		Series:           series,
		PolicyK:          policyK,
		JobCores:         jobCores,
		JobDuration:      base,
		SLOFactor:        sloFactor,
		VMBoot:           vmBoot,
		HybridSlowdown:   1.10,
		VCPUPricePerHour: 0.05,
		LambdaMemGB:      1.5,
		Seed:             12,
	}
	arrivals := autoscale.DayArrivals(day)
	if len(arrivals) < 10 {
		t.Fatalf("trace too small to be meaningful: %d arrivals", len(arrivals))
	}

	fluid := map[Strategy]int{}
	for _, st := range []Strategy{StrategyQueue, StrategyAutoscale, StrategyBridge} {
		cfg := day
		cfg.Strategy = st
		fluid[st] = autoscale.SimulateDayTrace(cfg, arrivals).SLOViolations
	}

	des := map[Strategy]int{}
	for _, st := range []Strategy{StrategyQueue, StrategyAutoscale, StrategyBridge} {
		jobs := make([]JobSpec, len(arrivals))
		for i, at := range arrivals {
			jobs[i] = JobSpec{
				Workload: piJob(16, 15),
				Cores:    jobCores,
				Arrival:  at,
				Baseline: base,
			}
		}
		rep := runCluster(t, Config{
			Jobs:           jobs,
			PoolCores:      poolCores,
			Policy:         FairShare(),
			Strategy:       st,
			SLOFactor:      sloFactor,
			VMBootOverride: vmBoot,
			Seed:           12,
		})
		if rep.Failed != 0 {
			t.Fatalf("strategy %s: %d jobs failed:\n%s", st, rep.Failed, rep)
		}
		des[st] = rep.SLOViolations
	}

	t.Logf("violations over %d jobs: fluid queue=%d autoscale=%d bridge=%d | des queue=%d autoscale=%d bridge=%d",
		len(arrivals),
		fluid[StrategyQueue], fluid[StrategyAutoscale], fluid[StrategyBridge],
		des[StrategyQueue], des[StrategyAutoscale], des[StrategyBridge])

	for name, v := range map[string]map[Strategy]int{"fluid": fluid, "des": des} {
		if !(v[StrategyQueue] > v[StrategyAutoscale] && v[StrategyAutoscale] > v[StrategyBridge]) {
			t.Errorf("%s layer does not rank Queue > Autoscale > Bridge: queue=%d autoscale=%d bridge=%d",
				name, v[StrategyQueue], v[StrategyAutoscale], v[StrategyBridge])
		}
	}
}

// TestScaleDownEconomicsCrosscheck verifies the fluid day model and the
// discrete-event scheduler agree on the economics of releasing idle
// procured capacity: relative to keeping procurements for the rest of the
// run, scale-down lowers autoscale VM-hours strictly, leaves SLO
// violations untouched (the fluid model's stretch never depends on how
// long capacity is kept), and moves the DES's p99 queue wait by no more
// than 10% + 1 s (the stated bound: released capacity can only cost a
// later arrival one procurement boot, and the queued-job guard prevents
// releasing under a backlog).
func TestScaleDownEconomicsCrosscheck(t *testing.T) {
	series := autoscale.DefaultSeriesConfig()
	series.Horizon = 30 * time.Minute
	series.Step = 2 * time.Minute
	series.BaseCores = 8
	series.PeakCores = 8
	series.SigmaFraction = 0.5
	series.Seed = 12

	const (
		jobCores  = 4
		poolCores = 5
		policyK   = -0.75
		sloFactor = 1.6
		vmBoot    = 60 * time.Second
	)

	base, err := Baseline(piJob(16, 15), jobCores, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}

	day := autoscale.DayConfig{
		Series:           series,
		PolicyK:          policyK,
		Strategy:         StrategyAutoscale,
		JobCores:         jobCores,
		JobDuration:      base,
		SLOFactor:        sloFactor,
		VMBoot:           vmBoot,
		HybridSlowdown:   1.10,
		VCPUPricePerHour: 0.05,
		LambdaMemGB:      1.5,
		Seed:             12,
	}
	arrivals := autoscale.DayArrivals(day)

	// Fluid layer: perfect scale-down (the default) vs keep-forever.
	perfect := autoscale.SimulateDayTrace(day, arrivals)
	keepCfg := day
	keepCfg.KeepProcured = true
	kept := autoscale.SimulateDayTrace(keepCfg, arrivals)
	if perfect.AutoscaleVMHours <= 0 {
		t.Fatal("fluid autoscale procured nothing; trace cannot exercise scale-down")
	}
	if kept.AutoscaleVMHours <= perfect.AutoscaleVMHours {
		t.Errorf("fluid: keep-forever %.3f vCPU-h not above scale-down %.3f",
			kept.AutoscaleVMHours, perfect.AutoscaleVMHours)
	}
	if kept.SLOViolations != perfect.SLOViolations {
		t.Errorf("fluid: capacity retention changed violations: %d vs %d",
			kept.SLOViolations, perfect.SLOViolations)
	}

	// DES layer: same trace, idle-timeout scale-down vs keep-forever.
	runDES := func(idle time.Duration) *Report {
		jobs := make([]JobSpec, len(arrivals))
		for i, at := range arrivals {
			jobs[i] = JobSpec{
				Workload: piJob(16, 15),
				Cores:    jobCores,
				Arrival:  at,
				Baseline: base,
			}
		}
		return runCluster(t, Config{
			Jobs:           jobs,
			PoolCores:      poolCores,
			Policy:         FairShare(),
			Strategy:       StrategyAutoscale,
			SLOFactor:      sloFactor,
			VMBootOverride: vmBoot,
			Seed:           12,
			ScaleDownIdle:  idle,
		})
	}
	keepDES := runDES(0)
	scaleDES := runDES(45 * time.Second)
	t.Logf("fluid vCPU-h: keep=%.3f perfect=%.3f | des vm-h: keep=%.3f scale=%.3f (released %d, saved $%.4f), p99 wait keep=%s scale=%s",
		kept.AutoscaleVMHours, perfect.AutoscaleVMHours,
		keepDES.VMHours, scaleDES.VMHours, scaleDES.VMsReleasedIdle, scaleDES.VMScaledownSavedUSD,
		time.Duration(keepDES.QueueWaitP99US)*time.Microsecond,
		time.Duration(scaleDES.QueueWaitP99US)*time.Microsecond)
	if scaleDES.VMsReleasedIdle == 0 {
		t.Fatalf("DES scale-down released nothing over %d arrivals", len(arrivals))
	}
	if scaleDES.VMHours >= keepDES.VMHours {
		t.Errorf("des: scale-down VM-hours %.3f not strictly below keep-forever %.3f",
			scaleDES.VMHours, keepDES.VMHours)
	}
	bound := int64(float64(keepDES.QueueWaitP99US)*1.10) + int64(time.Second/time.Microsecond)
	if scaleDES.QueueWaitP99US > bound {
		t.Errorf("des: scale-down p99 queue wait %s beyond bound %s (keep %s)",
			time.Duration(scaleDES.QueueWaitP99US)*time.Microsecond,
			time.Duration(bound)*time.Microsecond,
			time.Duration(keepDES.QueueWaitP99US)*time.Microsecond)
	}
}
