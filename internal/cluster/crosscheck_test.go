package cluster

import (
	"testing"
	"time"

	"splitserve/internal/autoscale"
)

// TestStrategyOrderingMatchesFluidDaysim is the cross-layer check the
// ISSUE asks for: replay the same arrival trace through the fluid day
// model (internal/autoscale) and through the discrete-event cluster
// scheduler with real task graphs, and verify both layers rank the
// shortfall strategies identically on SLO violations:
//
//	Queue > Autoscale > Bridge
//
// The configuration puts a flat 8-core fleet under ~100% offered load
// (mean demand equals capacity), so arrivals routinely find the pool
// busy: queuing stretches jobs far past the SLO, autoscaling pays one
// boot delay, and bridging absorbs the shortfall at the hybrid slowdown.
func TestStrategyOrderingMatchesFluidDaysim(t *testing.T) {
	series := autoscale.DefaultSeriesConfig()
	series.Horizon = 30 * time.Minute
	series.Step = 2 * time.Minute
	// Flat mean with heavy AR(1) noise: demand averages 8 cores against a
	// 5-core pool (the fluid policy m - 0.75sigma provisions exactly 5),
	// so most arrivals find a shortfall but quiet intervals still occur —
	// the spread that separates the three strategies.
	series.BaseCores = 8
	series.PeakCores = 8
	series.SigmaFraction = 0.5
	series.Seed = 12

	const (
		jobCores  = 4
		poolCores = 5
		policyK   = -0.75 // ceil(8 - 0.75*4) = 5 = poolCores
		sloFactor = 1.6
		vmBoot    = 60 * time.Second
	)

	base, err := Baseline(piJob(16, 15), jobCores, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}

	day := autoscale.DayConfig{
		Series:           series,
		PolicyK:          policyK,
		JobCores:         jobCores,
		JobDuration:      base,
		SLOFactor:        sloFactor,
		VMBoot:           vmBoot,
		HybridSlowdown:   1.10,
		VCPUPricePerHour: 0.05,
		LambdaMemGB:      1.5,
		Seed:             12,
	}
	arrivals := autoscale.DayArrivals(day)
	if len(arrivals) < 10 {
		t.Fatalf("trace too small to be meaningful: %d arrivals", len(arrivals))
	}

	fluid := map[Strategy]int{}
	for _, st := range []Strategy{StrategyQueue, StrategyAutoscale, StrategyBridge} {
		cfg := day
		cfg.Strategy = st
		fluid[st] = autoscale.SimulateDayTrace(cfg, arrivals).SLOViolations
	}

	des := map[Strategy]int{}
	for _, st := range []Strategy{StrategyQueue, StrategyAutoscale, StrategyBridge} {
		jobs := make([]JobSpec, len(arrivals))
		for i, at := range arrivals {
			jobs[i] = JobSpec{
				Workload: piJob(16, 15),
				Cores:    jobCores,
				Arrival:  at,
				Baseline: base,
			}
		}
		rep := runCluster(t, Config{
			Jobs:           jobs,
			PoolCores:      poolCores,
			Policy:         FairShare(),
			Strategy:       st,
			SLOFactor:      sloFactor,
			VMBootOverride: vmBoot,
			Seed:           12,
		})
		if rep.Failed != 0 {
			t.Fatalf("strategy %s: %d jobs failed:\n%s", st, rep.Failed, rep)
		}
		des[st] = rep.SLOViolations
	}

	t.Logf("violations over %d jobs: fluid queue=%d autoscale=%d bridge=%d | des queue=%d autoscale=%d bridge=%d",
		len(arrivals),
		fluid[StrategyQueue], fluid[StrategyAutoscale], fluid[StrategyBridge],
		des[StrategyQueue], des[StrategyAutoscale], des[StrategyBridge])

	for name, v := range map[string]map[Strategy]int{"fluid": fluid, "des": des} {
		if !(v[StrategyQueue] > v[StrategyAutoscale] && v[StrategyAutoscale] > v[StrategyBridge]) {
			t.Errorf("%s layer does not rank Queue > Autoscale > Bridge: queue=%d autoscale=%d bridge=%d",
				name, v[StrategyQueue], v[StrategyAutoscale], v[StrategyBridge])
		}
	}
}
