package cluster

import (
	"sort"
	"strings"
	"testing"
)

// FuzzParseArrivals feeds arbitrary spec strings, job counts and seeds to
// the arrival-spec parser. The contract under fuzzing: never panic —
// malformed input returns an error — and any accepted spec yields offsets
// that are sorted, non-negative and (except trace, whose length wins)
// exactly n long.
func FuzzParseArrivals(f *testing.F) {
	for _, spec := range []string{
		"poisson:30s", "uniform:1m", "bursty:4x5m", "bursty:10x5s",
		"trace:0s,5s,5s,90s",
		"poisson:-3s", "bursty:0x1s", "bursty:4x", "trace:", "trace:,",
		"nope", "", ":", "poisson:", "uniform:nan", "trace:-1s",
		"tracefile:", "tracefile:/nonexistent", "tracefile:/dev/null",
	} {
		f.Add(spec, 4, uint64(1))
	}
	f.Fuzz(func(t *testing.T, spec string, n int, seed uint64) {
		if n > 1<<12 {
			n %= 1 << 12 // keep allocations sane; negatives go through as-is
		}
		out, err := ParseArrivals(spec, n, seed)
		if err != nil {
			if out != nil {
				t.Errorf("ParseArrivals(%q, %d) returned both offsets and error %v", spec, n, err)
			}
			return
		}
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			t.Errorf("ParseArrivals(%q, %d) not ascending: %v", spec, n, out)
		}
		for _, d := range out {
			if d < 0 {
				t.Errorf("ParseArrivals(%q, %d) produced negative offset %v", spec, n, d)
			}
		}
	})
}

// FuzzParseArrivalTrace feeds arbitrary CSV bytes to the tracefile
// parser. The contract: never panic, errors carry a line number, and any
// accepted trace yields sorted non-negative offsets with Cores and
// Tenants slices of equal length (cores zero-or-positive).
func FuzzParseArrivalTrace(f *testing.F) {
	for _, csv := range []string{
		"0s\n5s\n", "30s,4\n0s\n10s,2\n", "# comment\n\n1m\n",
		"5s,0\n", "5s,-1\n", "5s,x\n", "bogus\n", "1s,2,3,4\n", "-1s\n", "",
		// Tenant column, empty-cores, header, CRLF and out-of-order shapes.
		"0s,4,t00\n5s,2,t01\n", "30s,,t02\n", "offset,cores,tenant\n1s,2,t00\n",
		"0s,4,t00\r\n5s,2,t01\r\n", "10s,1,t01\n0s,1,t00\n",
		"offset,cores,tenant\n", "header\n-1s\n",
	} {
		f.Add([]byte(csv))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseArrivalTrace(strings.NewReader(string(data)))
		if err != nil {
			if tr != nil {
				t.Errorf("ParseArrivalTrace returned both a trace and error %v", err)
			}
			if !strings.Contains(err.Error(), "line ") && err.Error() != "empty trace" {
				t.Errorf("error without a line number: %v", err)
			}
			return
		}
		if len(tr.Offsets) == 0 || len(tr.Cores) != len(tr.Offsets) || len(tr.Tenants) != len(tr.Offsets) {
			t.Fatalf("accepted trace malformed: %d offsets, %d cores, %d tenants",
				len(tr.Offsets), len(tr.Cores), len(tr.Tenants))
		}
		if !sort.SliceIsSorted(tr.Offsets, func(i, j int) bool { return tr.Offsets[i] < tr.Offsets[j] }) {
			t.Errorf("offsets not ascending: %v", tr.Offsets)
		}
		for i := range tr.Offsets {
			if tr.Offsets[i] < 0 {
				t.Errorf("negative offset %v", tr.Offsets[i])
			}
			if tr.Cores[i] < 0 {
				t.Errorf("negative cores %d", tr.Cores[i])
			}
		}
	})
}
