package cluster

import (
	"sort"
	"testing"
)

// FuzzParseArrivals feeds arbitrary spec strings, job counts and seeds to
// the arrival-spec parser. The contract under fuzzing: never panic —
// malformed input returns an error — and any accepted spec yields offsets
// that are sorted, non-negative and (except trace, whose length wins)
// exactly n long.
func FuzzParseArrivals(f *testing.F) {
	for _, spec := range []string{
		"poisson:30s", "uniform:1m", "bursty:4x5m", "trace:0s,5s,5s,90s",
		"poisson:-3s", "bursty:0x1s", "bursty:4x", "trace:", "trace:,",
		"nope", "", ":", "poisson:", "uniform:nan", "trace:-1s",
	} {
		f.Add(spec, 4, uint64(1))
	}
	f.Fuzz(func(t *testing.T, spec string, n int, seed uint64) {
		if n > 1<<12 {
			n %= 1 << 12 // keep allocations sane; negatives go through as-is
		}
		out, err := ParseArrivals(spec, n, seed)
		if err != nil {
			if out != nil {
				t.Errorf("ParseArrivals(%q, %d) returned both offsets and error %v", spec, n, err)
			}
			return
		}
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			t.Errorf("ParseArrivals(%q, %d) not ascending: %v", spec, n, out)
		}
		for _, d := range out {
			if d < 0 {
				t.Errorf("ParseArrivals(%q, %d) produced negative offset %v", spec, n, d)
			}
		}
	})
}
