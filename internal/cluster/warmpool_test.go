package cluster

import (
	"bytes"
	"testing"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/workloads/shufflereuse"
)

// shuffleJob builds a small repeat-read workload: distinct keys so the
// map-side combiner does not collapse the shuffle, several actions so the
// /tmp cache tier sees repeat fetches.
func shuffleJob() *shufflereuse.Workload {
	return shufflereuse.New(shufflereuse.Config{
		Partitions:       4,
		RowsPerPartition: 500,
		RowBytes:         4096,
		Keys:             4 * 500,
		Reuse:            3,
	})
}

func warmJobs(t *testing.T, n int) []JobSpec {
	t.Helper()
	base, err := Baseline(shuffleJob(), 8, 9)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	arrivals, err := ParseArrivals("poisson:12s", n, 5)
	if err != nil {
		t.Fatalf("ParseArrivals: %v", err)
	}
	jobs := make([]JobSpec, n)
	for i, at := range arrivals {
		jobs[i] = JobSpec{
			Workload: shuffleJob(),
			Cores:    8,
			Arrival:  at,
			Baseline: base,
		}
	}
	return jobs
}

func warmConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Jobs:      warmJobs(t, 3),
		PoolCores: 4,
		Policy:    FairShare(),
		Strategy:  StrategyBridge,
		SLOFactor: 3,
		Seed:      5,
		WarmPool:  4,
		TmpCache:  true,
	}
}

// TestWarmPoolSameSeedByteIdentical: with the warm pool and /tmp cache on,
// the same seed must still produce byte-identical report JSON and event
// logs — the replay-artifact guarantee extends to the new substrate.
func TestWarmPoolSameSeedByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte) {
		s, err := New(warmConfig(t))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		repJSON, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		log, err := s.Events().JSONL()
		if err != nil {
			t.Fatal(err)
		}
		return repJSON, log
	}
	rep1, log1 := run()
	rep2, log2 := run()
	if len(rep1) == 0 || len(log1) == 0 {
		t.Fatal("empty report or event log")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Error("same-seed warm-pool runs produced different report JSON")
	}
	if !bytes.Equal(log1, log2) {
		t.Error("same-seed warm-pool runs produced different event logs")
	}
}

// TestWarmPoolRunEventsAndBilling: a bridged run on the warm pool must
// surface the new vocabulary (warm hits, pool resizes, /tmp cache hits)
// in the event log and itemize provisioned-idle dollars in the report.
func TestWarmPoolRunEventsAndBilling(t *testing.T) {
	s, err := New(warmConfig(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if rep.WarmPool != 4 || !rep.TmpCache {
		t.Errorf("report warm_pool=%d tmp_cache=%v, want 4/true", rep.WarmPool, rep.TmpCache)
	}
	if rep.WarmHits == 0 {
		t.Error("no warm-pool hits in a bridged run with shortfall")
	}
	if rep.TmpCacheHits == 0 {
		t.Error("no /tmp cache hits despite repeat shuffle reads")
	}
	if rep.LambdaIdleUSD <= 0 {
		t.Errorf("LambdaIdleUSD = %v, want > 0", rep.LambdaIdleUSD)
	}
	if got := rep.VMBaseUSD + rep.VMAutoscaleUSD + rep.LambdaUSD + rep.LambdaIdleUSD; got != rep.TotalUSD {
		t.Errorf("TotalUSD = %v, want line-item sum %v", rep.TotalUSD, got)
	}

	counts := map[eventlog.Type]int{}
	for _, e := range s.Events().Events() {
		counts[e.Type]++
	}
	for _, typ := range []eventlog.Type{
		eventlog.LambdaWarmHit, eventlog.WarmpoolResize, eventlog.TmpCacheHit,
	} {
		if counts[typ] == 0 {
			t.Errorf("event log carries no %s events", typ)
		}
	}
	if counts[eventlog.LambdaWarmHit] != rep.WarmHits {
		t.Errorf("lambda_warm_hit events = %d, report WarmHits = %d",
			counts[eventlog.LambdaWarmHit], rep.WarmHits)
	}
}

// TestWarmPoolConfigValidation: a negative pool target is a config error,
// and the tmp cache without a warm pool is accepted (it simply fronts the
// store for ambient lambda executors).
func TestWarmPoolConfigValidation(t *testing.T) {
	cfg := warmConfig(t)
	cfg.WarmPool = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative WarmPool accepted")
	}

	cfg = warmConfig(t)
	cfg.WarmPool = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("TmpCache without WarmPool rejected: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWarmPoolIdleCheaperThanOnDemand pins the economics the crossover
// experiment leans on: a provisioned environment idling for the whole run
// bills at a quarter of the on-demand rate.
func TestWarmPoolIdleCheaperThanOnDemand(t *testing.T) {
	cfg := warmConfig(t)
	cfg.TmpCache = false
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	makespan := time.Duration(rep.MakespanUS) * time.Microsecond
	// 4 environments idling for the entire makespan at the on-demand rate
	// would cost 4x the idle rate; the report must stay under that.
	onDemandCeiling := 4 * makespan.Seconds() * 1.5 * 0.0000166667
	if rep.LambdaIdleUSD <= 0 || rep.LambdaIdleUSD >= onDemandCeiling {
		t.Errorf("LambdaIdleUSD = %v, want in (0, %v)", rep.LambdaIdleUSD, onDemandCeiling)
	}
}
