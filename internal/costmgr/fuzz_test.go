package costmgr

import (
	"testing"
	"time"
)

// FuzzLoadProfiles feeds arbitrary bytes to the profile-file parser. The
// contract: never panic, reject with an error rather than returning a
// half-valid file, and any accepted file survives Manager construction
// and answers a Decide call for each of its curves.
func FuzzLoadProfiles(f *testing.F) {
	if buf, err := testFile().JSON(); err == nil {
		f.Add(buf)
	}
	for _, seed := range []string{
		"", "{}", "[]", "null", `{"version":1}`,
		`{"version":1,"curves":[]}`,
		`{"version":2,"curves":[{"workload":"w","substrate":"vm","points":[{"parallelism":1,"exec_time_us":1,"cost_usd":0}]}]}`,
		`{"version":1,"curves":[{"workload":"w","substrate":"vm","points":[{"parallelism":1,"exec_time_us":1,"cost_usd":0}]}]}`,
		`{"version":1,"curves":[{"workload":"w","substrate":"vm","points":[{"parallelism":2,"exec_time_us":1,"cost_usd":0},{"parallelism":1,"exec_time_us":1,"cost_usd":0}]}]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			if file != nil {
				t.Errorf("Parse returned both a file and error %v", err)
			}
			return
		}
		m, err := NewManager(file)
		if err != nil {
			t.Fatalf("Parse accepted a file NewManager rejects: %v", err)
		}
		for _, c := range file.Curves {
			d, err := m.Decide(MinCost, Request{
				Workload: c.Workload, Substrate: c.Substrate,
				Fallback: 1, Deadline: time.Hour,
			})
			if err != nil {
				t.Fatalf("Decide on accepted curve %s/%s: %v", c.Workload, c.Substrate, err)
			}
			if d.Cores < 1 {
				t.Fatalf("Decide picked %d cores", d.Cores)
			}
		}
	})
}
