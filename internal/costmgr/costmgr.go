// Package costmgr is the paper's cost manager (Section 5.1, Figure 4):
// it consults offline parallelism-vs-time/cost profiles to pick each
// arriving job's core demand R automatically, instead of taking it as
// given. Profiles are produced by `splitserve-profile -out` (one curve
// per {workload, substrate}, execution time and marginal cost at each
// profiled degree of parallelism) and consumed online by three
// deterministic allocation policies:
//
//   - min-cost: the cheapest R whose predicted execution time still
//     meets the job's SLO deadline;
//   - min-time: the fastest R whose predicted cost stays under a budget
//     cap;
//   - knee: the paper-style marginal-benefit cutoff — stop adding cores
//     once the next profiled step no longer buys a meaningful speedup.
//
// Predictions between profiled points are linearly interpolated (and
// clamped outside the profiled range); a workload with no profile falls
// back to an explicit default R, so the cost manager degrades to the
// fixed-cores behavior rather than guessing. Every decision is pure and
// deterministic in (profile file, request), which keeps same-seed
// cluster runs byte-identical with `-cores auto` on.
package costmgr

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"
)

// Version is the on-disk profile format version this package reads and
// writes. Readers reject any other version outright: silently
// reinterpreting a future format would corrupt allocation decisions,
// the failure mode a version field exists to prevent.
const Version = 1

// Substrates a curve may be profiled on. SubstrateWarmLambda is the
// provisioned-concurrency pool with the /tmp shuffle cache tier: same
// Lambda compute pricing, but warm starts and cached repeat reads shift
// its time curve left relative to cold-start Lambda.
const (
	SubstrateVM         = "vm"
	SubstrateLambda     = "lambda"
	SubstrateWarmLambda = "warm-lambda"
)

// Point is one profiled sample: the workload's execution time and
// marginal cost at a given degree of parallelism. Times are integer
// microseconds so the file round-trips byte-identically.
type Point struct {
	Parallelism int     `json:"parallelism"`
	ExecTimeUS  int64   `json:"exec_time_us"`
	CostUSD     float64 `json:"cost_usd"`
}

// Curve is one workload's profile on one substrate, points sorted by
// strictly ascending parallelism.
type Curve struct {
	Workload  string  `json:"workload"`
	Substrate string  `json:"substrate"`
	Points    []Point `json:"points"`
}

// File is the versioned on-disk profile set.
type File struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	Curves  []Curve `json:"curves"`
}

// Validate checks the file invariants the policies rely on.
func (f *File) Validate() error {
	if f.Version != Version {
		return fmt.Errorf("costmgr: profile version %d, this build reads version %d", f.Version, Version)
	}
	if len(f.Curves) == 0 {
		return errors.New("costmgr: profile file has no curves")
	}
	seen := map[[2]string]bool{}
	for i, c := range f.Curves {
		if c.Workload == "" {
			return fmt.Errorf("costmgr: curve %d has no workload name", i)
		}
		if c.Substrate != SubstrateVM && c.Substrate != SubstrateLambda && c.Substrate != SubstrateWarmLambda {
			return fmt.Errorf("costmgr: curve %d (%s) has unknown substrate %q (want %s, %s or %s)",
				i, c.Workload, c.Substrate, SubstrateVM, SubstrateLambda, SubstrateWarmLambda)
		}
		k := [2]string{c.Workload, c.Substrate}
		if seen[k] {
			return fmt.Errorf("costmgr: duplicate curve for workload %q substrate %q", c.Workload, c.Substrate)
		}
		seen[k] = true
		if len(c.Points) == 0 {
			return fmt.Errorf("costmgr: curve %s/%s has no points", c.Workload, c.Substrate)
		}
		prev := 0
		for j, p := range c.Points {
			if p.Parallelism < 1 {
				return fmt.Errorf("costmgr: curve %s/%s point %d: parallelism %d < 1",
					c.Workload, c.Substrate, j, p.Parallelism)
			}
			if p.Parallelism <= prev {
				return fmt.Errorf("costmgr: curve %s/%s point %d: parallelism %d not strictly ascending",
					c.Workload, c.Substrate, j, p.Parallelism)
			}
			prev = p.Parallelism
			if p.ExecTimeUS <= 0 {
				return fmt.Errorf("costmgr: curve %s/%s point %d: exec_time_us %d <= 0",
					c.Workload, c.Substrate, j, p.ExecTimeUS)
			}
			if p.CostUSD < 0 {
				return fmt.Errorf("costmgr: curve %s/%s point %d: negative cost %g",
					c.Workload, c.Substrate, j, p.CostUSD)
			}
		}
	}
	return nil
}

// JSON renders the file deterministically (stable field and curve order).
func (f *File) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Parse decodes and validates a profile file from raw bytes.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("costmgr: parse profiles: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Load reads and validates a profile file from disk.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("costmgr: load profiles: %w", err)
	}
	return Parse(data)
}

// Policy selects how the manager trades execution time against cost.
type Policy int

// Allocation policies.
const (
	// MinCost picks the cheapest R whose predicted execution time meets
	// the deadline; with no deadline it is the globally cheapest R.
	MinCost Policy = iota + 1
	// MinTime picks the fastest R whose predicted cost stays under the
	// budget; with no budget it is the globally fastest R.
	MinTime
	// Knee walks the profiled points in ascending parallelism and stops
	// once the marginal speedup of the next step drops below the cutoff
	// — the paper's "performance-optimal degree of parallelism" without
	// paying for the flat tail of the curve.
	Knee
)

func (p Policy) String() string {
	switch p {
	case MinCost:
		return "min-cost"
	case MinTime:
		return "min-time"
	case Knee:
		return "knee"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PolicyByName resolves "min-cost", "min-time" or "knee".
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "min-cost":
		return MinCost, nil
	case "min-time":
		return MinTime, nil
	case "knee":
		return Knee, nil
	default:
		return 0, fmt.Errorf("costmgr: unknown allocation policy %q (accepted: min-cost, min-time, knee)", name)
	}
}

// DefaultKnee is the marginal-benefit cutoff of the Knee policy: adding
// the next profiled step must still shave at least this fraction off the
// predicted execution time.
const DefaultKnee = 0.10

// Request describes one job the manager must size.
type Request struct {
	// Workload names the curve to consult (the mix name).
	Workload string
	// Substrate selects which profile curve to read (default vm, falling
	// back to the other substrate if the preferred one is missing).
	Substrate string
	// MaxCores caps the chosen R (0 = the curve's largest profiled
	// parallelism). Predictions above the profiled range are clamped.
	MaxCores int
	// Fallback is the R used when the workload has no profile at all; it
	// must be >= 1 (the fixed-cores demand the caller would have used).
	Fallback int
	// Deadline bounds MinCost's predicted execution time. When zero and
	// SLOFactor > 0, the deadline is SLOFactor x the curve's best
	// predicted time — "meet the SLO a fully provisioned run would get".
	Deadline  time.Duration
	SLOFactor float64
	// BudgetUSD caps MinTime's predicted cost (0 = uncapped).
	BudgetUSD float64
	// KneeCutoff overrides DefaultKnee (0 = default).
	KneeCutoff float64
}

// Decision is one allocation outcome. It is JSON-friendly (times in
// integer microseconds) so decision tables serialize byte-identically.
type Decision struct {
	Workload  string `json:"workload"`
	Policy    string `json:"policy"`
	Cores     int    `json:"cores"`
	Substrate string `json:"substrate,omitempty"`
	// Source is "profile" when a curve informed the pick, "fallback"
	// when the workload had no profile and Fallback was used verbatim.
	Source string `json:"source"`
	// Predictions at the chosen R (zero when Source is "fallback").
	PredictedRunUS   int64   `json:"predicted_run_us,omitempty"`
	PredictedCostUSD float64 `json:"predicted_cost_usd,omitempty"`
	// DeadlineUS / BudgetUSD echo the effective constraint MinCost /
	// MinTime ran against; Feasible reports whether the pick satisfies
	// it (an infeasible constraint degrades to best-effort).
	DeadlineUS int64   `json:"deadline_us,omitempty"`
	BudgetUSD  float64 `json:"budget_usd,omitempty"`
	Feasible   bool    `json:"feasible"`
}

// PredictedRun returns the decision's predicted execution time.
func (d Decision) PredictedRun() time.Duration {
	return time.Duration(d.PredictedRunUS) * time.Microsecond
}

// Manager answers allocation requests against a loaded profile file.
type Manager struct {
	curves map[[2]string]*Curve
}

// NewManager validates f and indexes its curves.
func NewManager(f *File) (*Manager, error) {
	if f == nil {
		return nil, errors.New("costmgr: nil profile file")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{curves: make(map[[2]string]*Curve, len(f.Curves))}
	for i := range f.Curves {
		c := &f.Curves[i]
		m.curves[[2]string{c.Workload, c.Substrate}] = c
	}
	return m, nil
}

// Curve returns the profile for (workload, substrate), or nil.
func (m *Manager) Curve(workload, substrate string) *Curve {
	return m.curves[[2]string{workload, substrate}]
}

// curveFor resolves the curve a request should consult: the requested
// substrate first (default vm), then the remaining substrates in a
// fixed preference order, so a file profiled on a subset of substrates
// still drives decisions. warm-lambda falls back to lambda before vm
// (closest cost model), everything else prefers vm then lambda.
func (m *Manager) curveFor(req Request) *Curve {
	pref := req.Substrate
	if pref == "" {
		pref = SubstrateVM
	}
	order := []string{pref}
	switch pref {
	case SubstrateWarmLambda:
		order = append(order, SubstrateLambda, SubstrateVM)
	case SubstrateLambda:
		order = append(order, SubstrateVM, SubstrateWarmLambda)
	default:
		order = append(order, SubstrateLambda, SubstrateWarmLambda)
	}
	for _, sub := range order {
		if c := m.Curve(req.Workload, sub); c != nil {
			return c
		}
	}
	return nil
}

// Predict interpolates c at parallelism r: linear between neighboring
// profiled points, clamped to the endpoints outside the profiled range.
func (c *Curve) Predict(r int) (execTime time.Duration, costUSD float64) {
	pts := c.Points
	if r <= pts[0].Parallelism {
		return time.Duration(pts[0].ExecTimeUS) * time.Microsecond, pts[0].CostUSD
	}
	last := pts[len(pts)-1]
	if r >= last.Parallelism {
		return time.Duration(last.ExecTimeUS) * time.Microsecond, last.CostUSD
	}
	// First point with Parallelism >= r; r is strictly inside the range.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Parallelism >= r })
	lo, hi := pts[i-1], pts[i]
	frac := float64(r-lo.Parallelism) / float64(hi.Parallelism-lo.Parallelism)
	us := float64(lo.ExecTimeUS) + frac*float64(hi.ExecTimeUS-lo.ExecTimeUS)
	cost := lo.CostUSD + frac*(hi.CostUSD-lo.CostUSD)
	return time.Duration(us) * time.Microsecond, cost
}

// MaxParallelism is the curve's largest profiled degree of parallelism.
func (c *Curve) MaxParallelism() int { return c.Points[len(c.Points)-1].Parallelism }

// Decide sizes one job under policy p. Decisions are deterministic in
// (profiles, p, req); ties always resolve to the smallest R.
func (m *Manager) Decide(p Policy, req Request) (Decision, error) {
	switch p {
	case MinCost, MinTime, Knee:
	default:
		return Decision{}, fmt.Errorf("costmgr: unknown policy %v", p)
	}
	if req.Workload == "" {
		return Decision{}, errors.New("costmgr: request has no workload")
	}
	if req.MaxCores < 0 {
		return Decision{}, fmt.Errorf("costmgr: negative MaxCores %d", req.MaxCores)
	}
	c := m.curveFor(req)
	if c == nil {
		if req.Fallback < 1 {
			return Decision{}, fmt.Errorf("costmgr: no profile for workload %q and no fallback cores", req.Workload)
		}
		return Decision{
			Workload: req.Workload, Policy: p.String(),
			Cores: req.Fallback, Source: "fallback", Feasible: true,
		}, nil
	}

	maxR := c.MaxParallelism()
	if req.MaxCores > 0 && req.MaxCores < maxR {
		maxR = req.MaxCores
	}

	type cand struct {
		r    int
		t    time.Duration
		cost float64
	}
	cands := make([]cand, 0, maxR)
	best := cand{}
	for r := 1; r <= maxR; r++ {
		t, cost := c.Predict(r)
		cands = append(cands, cand{r, t, cost})
		if best.r == 0 || t < best.t {
			best = cand{r, t, cost}
		}
	}

	d := Decision{
		Workload: req.Workload, Policy: p.String(),
		Substrate: c.Substrate, Source: "profile",
	}
	pick := func(chosen cand, feasible bool) (Decision, error) {
		d.Cores = chosen.r
		d.PredictedRunUS = chosen.t.Microseconds()
		d.PredictedCostUSD = chosen.cost
		d.Feasible = feasible
		return d, nil
	}

	switch p {
	case MinCost:
		deadline := req.Deadline
		if deadline == 0 && req.SLOFactor > 0 {
			deadline = time.Duration(req.SLOFactor * float64(best.t))
		}
		d.DeadlineUS = deadline.Microseconds()
		chosen, found := cand{}, false
		for _, cd := range cands {
			if deadline > 0 && cd.t > deadline {
				continue
			}
			if !found || cd.cost < chosen.cost {
				chosen, found = cd, true
			}
		}
		if found {
			return pick(chosen, true)
		}
		// Infeasible deadline: best effort, the fastest R.
		return pick(best, false)
	case MinTime:
		d.BudgetUSD = req.BudgetUSD
		chosen, found := cand{}, false
		for _, cd := range cands {
			if req.BudgetUSD > 0 && cd.cost > req.BudgetUSD {
				continue
			}
			if !found || cd.t < chosen.t {
				chosen, found = cd, true
			}
		}
		if found {
			return pick(chosen, true)
		}
		// Nothing within budget: best effort, the cheapest R.
		chosen = cands[0]
		for _, cd := range cands {
			if cd.cost < chosen.cost {
				chosen = cd
			}
		}
		return pick(chosen, false)
	default: // Knee
		cutoff := req.KneeCutoff
		if cutoff == 0 {
			cutoff = DefaultKnee
		}
		// Walk the profiled points (not every integer: the marginal
		// benefit of the paper's knee rule is defined between measured
		// samples) while the next step still speeds the job up by at
		// least the cutoff fraction.
		pts := c.Points
		i := 0
		for i+1 < len(pts) && pts[i+1].Parallelism <= maxR {
			cur, next := pts[i], pts[i+1]
			gain := float64(cur.ExecTimeUS-next.ExecTimeUS) / float64(cur.ExecTimeUS)
			if gain < cutoff {
				break
			}
			i++
		}
		r := pts[i].Parallelism
		if r > maxR {
			r = maxR
		}
		t, cost := c.Predict(r)
		return pick(cand{r, t, cost}, true)
	}
}
