package costmgr

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"splitserve/internal/simrand"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testFile is a small two-workload profile set with curves shaped like
// the paper's Figure 4: time falls with parallelism, cost dips at a
// sweet spot and rises again at the flat tail.
func testFile() *File {
	return &File{
		Version: Version,
		Seed:    1,
		Curves: []Curve{
			{
				Workload: "pagerank", Substrate: SubstrateVM,
				Points: []Point{
					{Parallelism: 1, ExecTimeUS: 800_000_000, CostUSD: 0.40},
					{Parallelism: 2, ExecTimeUS: 420_000_000, CostUSD: 0.30},
					{Parallelism: 4, ExecTimeUS: 230_000_000, CostUSD: 0.25},
					{Parallelism: 8, ExecTimeUS: 150_000_000, CostUSD: 0.32},
					{Parallelism: 16, ExecTimeUS: 140_000_000, CostUSD: 0.55},
				},
			},
			{
				Workload: "pagerank", Substrate: SubstrateLambda,
				Points: []Point{
					{Parallelism: 1, ExecTimeUS: 900_000_000, CostUSD: 0.50},
					{Parallelism: 8, ExecTimeUS: 180_000_000, CostUSD: 0.28},
				},
			},
			{
				Workload: "kmeans", Substrate: SubstrateVM,
				Points: []Point{
					{Parallelism: 2, ExecTimeUS: 300_000_000, CostUSD: 0.10},
					{Parallelism: 4, ExecTimeUS: 290_000_000, CostUSD: 0.18},
				},
			},
		},
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := testFile()
	buf, err := f.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	got, err := Parse(buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	buf2, err := got.JSON()
	if err != nil {
		t.Fatalf("JSON round 2: %v", err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("profile file does not round-trip byte-identically")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := func(fn func(f *File)) *File {
		f := testFile()
		fn(f)
		return f
	}
	cases := map[string]*File{
		"wrong version":        mutate(func(f *File) { f.Version = Version + 1 }),
		"no curves":            mutate(func(f *File) { f.Curves = nil }),
		"empty workload":       mutate(func(f *File) { f.Curves[0].Workload = "" }),
		"unknown substrate":    mutate(func(f *File) { f.Curves[0].Substrate = "fpga" }),
		"duplicate curve":      mutate(func(f *File) { f.Curves[1] = f.Curves[0] }),
		"no points":            mutate(func(f *File) { f.Curves[0].Points = nil }),
		"parallelism zero":     mutate(func(f *File) { f.Curves[0].Points[0].Parallelism = 0 }),
		"unsorted parallelism": mutate(func(f *File) { f.Curves[0].Points[1].Parallelism = 1 }),
		"zero exec time":       mutate(func(f *File) { f.Curves[0].Points[0].ExecTimeUS = 0 }),
		"negative cost":        mutate(func(f *File) { f.Curves[0].Points[0].CostUSD = -0.1 }),
	}
	for name, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the file", name)
		}
	}
	if err := testFile().Validate(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestPredictInterpolatesAndClamps(t *testing.T) {
	f := testFile()
	c := &f.Curves[0] // pagerank/vm
	tm, cost := c.Predict(0)
	if tm != 800*time.Second || cost != 0.40 {
		t.Fatalf("below range: got (%s, %g), want clamp to first point", tm, cost)
	}
	tm, cost = c.Predict(64)
	if tm != 140*time.Second || cost != 0.55 {
		t.Fatalf("above range: got (%s, %g), want clamp to last point", tm, cost)
	}
	tm, cost = c.Predict(4)
	if tm != 230*time.Second || cost != 0.25 {
		t.Fatalf("exact point: got (%s, %g)", tm, cost)
	}
	tm, cost = c.Predict(3) // halfway between 2 and 4
	if tm != 325*time.Second || cost != 0.275 {
		t.Fatalf("interpolated: got (%s, %g), want (325s, 0.275)", tm, cost)
	}
	if c.MaxParallelism() != 16 {
		t.Fatalf("MaxParallelism = %d", c.MaxParallelism())
	}
}

func TestPolicyByName(t *testing.T) {
	for _, want := range []Policy{MinCost, MinTime, Knee} {
		got, err := PolicyByName(want.String())
		if err != nil || got != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := PolicyByName("cheapest"); err == nil || !strings.Contains(err.Error(), "min-cost") {
		t.Fatalf("unknown policy should list the accepted names, got %v", err)
	}
}

func TestDecideFallback(t *testing.T) {
	m, err := NewManager(testFile())
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Decide(MinCost, Request{Workload: "tpcds", Fallback: 8})
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if d.Source != "fallback" || d.Cores != 8 || !d.Feasible || d.PredictedRunUS != 0 {
		t.Fatalf("fallback decision = %+v", d)
	}
	if _, err := m.Decide(MinCost, Request{Workload: "tpcds"}); err == nil {
		t.Fatal("no profile and no fallback should be an error")
	}
	if _, err := m.Decide(Policy(99), Request{Workload: "pagerank", Fallback: 1}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := m.Decide(MinCost, Request{Fallback: 1}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestDecideSubstrateFallsBack(t *testing.T) {
	m, err := NewManager(testFile())
	if err != nil {
		t.Fatal(err)
	}
	// kmeans is only profiled on vm; asking for lambda must still use it.
	d, err := m.Decide(MinTime, Request{Workload: "kmeans", Substrate: SubstrateLambda, Fallback: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != "profile" || d.Substrate != SubstrateVM {
		t.Fatalf("expected the vm curve to answer, got %+v", d)
	}
}

// TestDecideGolden pins the full decision table — every policy against a
// grid of constraints — to testdata/alloc.golden.json. Regenerate with
//
//	go test ./internal/costmgr -run Golden -update
func TestDecideGolden(t *testing.T) {
	m, err := NewManager(testFile())
	if err != nil {
		t.Fatal(err)
	}
	type goldenCase struct {
		Name     string   `json:"name"`
		Policy   string   `json:"policy"`
		Request  Request  `json:"request"`
		Decision Decision `json:"decision"`
	}
	cases := []goldenCase{
		{Name: "min-cost unconstrained", Policy: "min-cost",
			Request: Request{Workload: "pagerank", Fallback: 8}},
		{Name: "min-cost slo 1.5", Policy: "min-cost",
			Request: Request{Workload: "pagerank", Fallback: 8, SLOFactor: 1.5}},
		{Name: "min-cost tight deadline", Policy: "min-cost",
			Request: Request{Workload: "pagerank", Fallback: 8, Deadline: 160 * time.Second}},
		{Name: "min-cost infeasible deadline", Policy: "min-cost",
			Request: Request{Workload: "pagerank", Fallback: 8, Deadline: time.Second}},
		{Name: "min-cost capped at 4", Policy: "min-cost",
			Request: Request{Workload: "pagerank", Fallback: 8, MaxCores: 4, SLOFactor: 2}},
		{Name: "min-cost lambda curve", Policy: "min-cost",
			Request: Request{Workload: "pagerank", Substrate: SubstrateLambda, Fallback: 8, SLOFactor: 1.5}},
		{Name: "min-time uncapped", Policy: "min-time",
			Request: Request{Workload: "pagerank", Fallback: 8}},
		{Name: "min-time budget 0.30", Policy: "min-time",
			Request: Request{Workload: "pagerank", Fallback: 8, BudgetUSD: 0.30}},
		{Name: "min-time impossible budget", Policy: "min-time",
			Request: Request{Workload: "pagerank", Fallback: 8, BudgetUSD: 0.01}},
		{Name: "knee default cutoff", Policy: "knee",
			Request: Request{Workload: "pagerank", Fallback: 8}},
		{Name: "knee loose cutoff", Policy: "knee",
			Request: Request{Workload: "pagerank", Fallback: 8, KneeCutoff: 0.01}},
		{Name: "knee capped at 2", Policy: "knee",
			Request: Request{Workload: "pagerank", Fallback: 8, MaxCores: 2}},
		{Name: "kmeans min-cost", Policy: "min-cost",
			Request: Request{Workload: "kmeans", Fallback: 8, SLOFactor: 1.5}},
	}
	for i := range cases {
		p, err := PolicyByName(cases[i].Policy)
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Decide(p, cases[i].Request)
		if err != nil {
			t.Fatalf("%s: %v", cases[i].Name, err)
		}
		cases[i].Decision = d
	}
	got, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "alloc.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("decision table drifted from %s (run with -update to regenerate)\ngot:\n%s", golden, got)
	}
}

// TestMinCostPropertyFeasibility drives Decide with randomized curves and
// deadlines and asserts the min-cost invariants: if any profiled R meets
// the deadline, the pick meets it too and no cheaper feasible R exists;
// if none does, the pick is the fastest R and is flagged infeasible.
func TestMinCostPropertyFeasibility(t *testing.T) {
	rng := simrand.New(0xc057)
	for iter := 0; iter < 500; iter++ {
		n := 2 + int(rng.Uint64()%6)
		pts := make([]Point, n)
		par := 0
		for i := range pts {
			par += 1 + int(rng.Uint64()%4)
			pts[i] = Point{
				Parallelism: par,
				ExecTimeUS:  int64(1_000_000 + rng.Uint64()%500_000_000),
				CostUSD:     float64(rng.Uint64()%1_000_000) / 1e4,
			}
		}
		f := &File{Version: Version, Curves: []Curve{
			{Workload: "w", Substrate: SubstrateVM, Points: pts},
		}}
		m, err := NewManager(f)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		deadline := time.Duration(rng.Uint64()%600_000_000_000) // up to 600s
		d, err := m.Decide(MinCost, Request{Workload: "w", Fallback: 1, Deadline: deadline})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		c := m.Curve("w", SubstrateVM)
		anyFeasible := false
		var cheapestFeasible float64
		for r := 1; r <= c.MaxParallelism(); r++ {
			tm, cost := c.Predict(r)
			if deadline > 0 && tm > deadline {
				continue
			}
			if !anyFeasible || cost < cheapestFeasible {
				cheapestFeasible = cost
			}
			anyFeasible = true
		}
		if anyFeasible {
			if !d.Feasible {
				t.Fatalf("iter %d: feasible R exists but decision flagged infeasible: %+v", iter, d)
			}
			if deadline > 0 && d.PredictedRun() > deadline {
				t.Fatalf("iter %d: min-cost picked R=%d missing deadline %s (predicted %s) while a feasible R exists",
					iter, d.Cores, deadline, d.PredictedRun())
			}
			if d.PredictedCostUSD > cheapestFeasible {
				t.Fatalf("iter %d: min-cost paid %g when a feasible R costs %g",
					iter, d.PredictedCostUSD, cheapestFeasible)
			}
		} else {
			if d.Feasible {
				t.Fatalf("iter %d: no R meets deadline %s but decision claims feasible: %+v", iter, deadline, d)
			}
		}
		// Determinism: the same request decides identically.
		d2, err := m.Decide(MinCost, Request{Workload: "w", Fallback: 1, Deadline: deadline})
		if err != nil || d2 != d {
			t.Fatalf("iter %d: decision not deterministic: %+v vs %+v (%v)", iter, d, d2, err)
		}
	}
}
