package sparkpi

import (
	"strings"
	"testing"

	"splitserve/internal/cloud"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/storage"
)

func testCluster(t *testing.T, execs int) (*engine.Cluster, *simclock.Clock) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(5), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M416XLarge)
	cluster, err := engine.New(engine.Config{
		AppID: "pi-test", Clock: clock, Net: net, Provider: provider,
		Store:   storage.NewLocal(clock, net),
		Backend: engine.NewStandalone(engine.StandaloneConfig{VMs: []*cloud.VM{vm}}),
		Alloc:   engine.DefaultAllocConfig(engine.AllocStatic, execs, execs),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, clock
}

func TestPiEstimateAccurate(t *testing.T) {
	cluster, _ := testCluster(t, 16)
	cfg := DefaultConfig()
	cfg.Partitions = 16
	cfg.Darts = 1e9
	rep, err := New(cfg).Run(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Answer, "pi ≈ 3.14") {
		t.Fatalf("answer = %q", rep.Answer)
	}
}

func TestModeledTimeMatchesDartBudget(t *testing.T) {
	// 1e10 darts at 0.4 units/dart over 64 tasks at 50e6 units/s
	// = 1.25s of modelled compute per task; wall-clock for the test
	// stays small because only 1e6 darts per task are really thrown.
	cluster, clock := testCluster(t, 64)
	rep, err := New(DefaultConfig()).Run(cluster)
	if err != nil {
		t.Fatal(err)
	}
	spans := cluster.Log().TaskSpans()
	if len(spans) != 64 {
		t.Fatalf("spans = %d", len(spans))
	}
	for _, s := range spans {
		d := s.End.Sub(s.Start).Seconds()
		if d < 1.2 || d > 1.6 {
			t.Fatalf("task duration = %.3fs, want ~1.25s (answer %s)", d, rep.Answer)
		}
	}
	if clock.Since(simclock.Epoch) <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestHalfExecutorsDoublesTime(t *testing.T) {
	elapsed := func(execs int) float64 {
		cluster, clock := testCluster(t, execs)
		cfg := DefaultConfig()
		cfg.CostPerDart = 3 // compute-dominated so parallelism shows
		if _, err := New(cfg).Run(cluster); err != nil {
			t.Fatal(err)
		}
		return clock.Since(simclock.Epoch).Seconds()
	}
	d64 := elapsed(64)
	d16 := elapsed(16)
	ratio := d16 / d64
	if ratio < 2.5 || ratio > 5 {
		t.Fatalf("16 vs 64 executors ratio = %.2f, want ~4", ratio)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Darts: 0, Partitions: 1})
}
