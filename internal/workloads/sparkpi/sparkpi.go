// Package sparkpi implements the SparkPi workload: a Monte-Carlo
// approximation of π with an equal number of darts per executor and a
// single count-style reduction — the paper's purely compute-intensive
// proxy with negligible shuffling.
//
// The paper throws 10^10 darts; actually iterating 10^10 times in the
// reproduction would take CPU-hours, so each task really throws
// SampledDartsPerTask darts (the computed π is genuine) while the
// performance model charges the full 10^10/Partitions — the substitution
// documented in DESIGN.md.
package sparkpi

import (
	"fmt"
	"math"
	"time"

	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/workloads"
)

// Config parameterises a SparkPi run.
type Config struct {
	// Darts is the modelled sample count (paper: 1e10).
	Darts int64
	// SampledDartsPerTask is how many darts are really thrown per task.
	SampledDartsPerTask int
	// Partitions (= executors; paper: 64).
	Partitions int
	// CostPerDart is CPU work units per modelled dart.
	CostPerDart float64
	// Seed for sampling.
	Seed uint64
	// ExpectedSLO for the segueing facility.
	ExpectedSLO time.Duration
}

// DefaultConfig mirrors the paper's Figure 9 setup.
func DefaultConfig() Config {
	return Config{
		Darts:               1e10,
		SampledDartsPerTask: 1_000_000,
		Partitions:          64,
		CostPerDart:         0.4,
		Seed:                3,
		ExpectedSLO:         time.Minute,
	}
}

// tally is one task's result row.
type tally struct {
	In    int64
	Total int64
}

// Workload is the SparkPi workload.
type Workload struct {
	cfg Config
}

var _ workloads.Workload = (*Workload)(nil)

// New returns a SparkPi workload.
func New(cfg Config) *Workload {
	if cfg.Darts <= 0 || cfg.Partitions <= 0 {
		panic("sparkpi: invalid config")
	}
	if cfg.SampledDartsPerTask <= 0 {
		cfg.SampledDartsPerTask = 1_000_000
	}
	if cfg.CostPerDart <= 0 {
		cfg.CostPerDart = 0.4
	}
	return &Workload{cfg: cfg}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return fmt.Sprintf("sparkpi-%g", float64(w.cfg.Darts)) }

// DefaultParallelism implements workloads.Workload.
func (w *Workload) DefaultParallelism() int { return w.cfg.Partitions }

// SLO implements workloads.Workload.
func (w *Workload) SLO() time.Duration { return w.cfg.ExpectedSLO }

// Plan builds the one-stage dataflow.
func (w *Workload) Plan(ctx *rdd.Context) *rdd.RDD {
	cfg := w.cfg
	dartsPerTask := cfg.Darts / int64(cfg.Partitions)
	return ctx.Source("darts", cfg.Partitions, func(p int) []rdd.Row {
		rng := simrand.New(cfg.Seed + uint64(p)*0x9e3779b97f4a7c15)
		in := int64(0)
		for i := 0; i < cfg.SampledDartsPerTask; i++ {
			x := rng.Float64()*2 - 1
			y := rng.Float64()*2 - 1
			if x*x+y*y <= 1 {
				in++
			}
		}
		// Scale the sampled tally to the modelled dart count.
		scale := float64(dartsPerTask) / float64(cfg.SampledDartsPerTask)
		return []rdd.Row{tally{
			In:    int64(float64(in) * scale),
			Total: dartsPerTask,
		}}
		// One output row per task; the source cost below charges the full
		// modelled dart count.
	}, float64(cfg.Darts)/float64(cfg.Partitions)*cfg.CostPerDart, 16)
}

// Run implements workloads.Workload.
func (w *Workload) Run(c *engine.Cluster) (*workloads.Report, error) {
	return workloads.Timed(c, w.Name(), func() (string, int, error) {
		ctx := rdd.NewContext()
		job, err := c.RunJob(w.Plan(ctx), w.Name())
		if err != nil {
			return "", 0, err
		}
		var in, total int64
		for _, r := range job.Rows() {
			t := r.(tally)
			in += t.In
			total += t.Total
		}
		if total == 0 {
			return "", 0, fmt.Errorf("sparkpi: no darts thrown")
		}
		pi := 4 * float64(in) / float64(total)
		answer := fmt.Sprintf("pi ≈ %.5f from %g darts", pi, float64(total))
		if math.Abs(pi-math.Pi) > 0.01 {
			return "", 0, fmt.Errorf("sparkpi: implausible estimate %s", answer)
		}
		return answer, 1, nil
	})
}
