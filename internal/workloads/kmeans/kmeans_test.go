package kmeans

import (
	"strings"
	"testing"

	"splitserve/internal/cloud"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/storage"
)

func testCluster(t *testing.T, execs, execMemMB int) (*engine.Cluster, *simclock.Clock) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(5), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M44XLarge)
	cluster, err := engine.New(engine.Config{
		AppID: "km-test", Clock: clock, Net: net, Provider: provider,
		Store: storage.NewLocal(clock, net),
		Backend: engine.NewStandalone(engine.StandaloneConfig{
			VMs:          []*cloud.VM{vm},
			ExecMemoryMB: execMemMB,
		}),
		Alloc: engine.DefaultAllocConfig(engine.AllocStatic, execs, execs),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, clock
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Points = 20_000
	cfg.Partitions = 8
	cfg.K = 5
	cfg.Dims = 8
	return cfg
}

func TestKMeansConverges(t *testing.T) {
	cluster, _ := testCluster(t, 8, 0)
	rep, err := New(smallConfig()).Run(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Answer, "converged") {
		t.Fatalf("answer = %q", rep.Answer)
	}
	if rep.Jobs < 1 || rep.Jobs > 5 {
		t.Fatalf("jobs = %d", rep.Jobs)
	}
}

func TestKMeansIterationsReuseCache(t *testing.T) {
	cluster, clock := testCluster(t, 8, 0)
	cfg := smallConfig()
	cfg.ConvergenceDist = -1 // force all 5 iterations
	w := New(cfg)
	start := clock.Now()
	rep, err := w.Run(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != cfg.MaxIterations {
		t.Fatalf("jobs = %d, want %d", rep.Jobs, cfg.MaxIterations)
	}
	_ = start
	// With the source cached, later iterations must be much cheaper than
	// the first: check that > 35% of total time is the first job.
	spans := cluster.Log().StageSpans()
	if len(spans) == 0 {
		t.Fatal("no stage spans")
	}
	firstEnd := spans[0].End
	total := clock.Since(simclock.Epoch)
	firstFrac := firstEnd.Sub(simclock.Epoch).Seconds() / total.Seconds()
	if firstFrac < 0.3 {
		t.Fatalf("first (cache-building) stage only %.0f%% of runtime; cache likely unused", firstFrac*100)
	}
}

func TestKMeansMemoryPressureSlowsDown(t *testing.T) {
	// The paper's 10x story: when the cached dataset does not fit executor
	// memory, eviction forces recomputation every iteration. Compare a
	// 4-executor run with ample memory vs one with tight memory.
	cfg := smallConfig()
	cfg.Points = 60_000
	cfg.RowBytes = 30000 // ~1.8GB dataset, modeled (JVM-bloated rows)
	cfg.ConvergenceDist = -1

	run := func(memMB int) float64 {
		cluster, clock := testCluster(t, 4, memMB)
		if _, err := New(cfg).Run(cluster); err != nil {
			t.Fatal(err)
		}
		return clock.Since(simclock.Epoch).Seconds()
	}
	ample := run(8192) // cache fits easily
	tight := run(1024) // 4 execs x ~420MB cache < dataset
	if tight < ample*1.5 {
		t.Fatalf("memory pressure effect missing: ample=%.1fs tight=%.1fs", ample, tight)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	run := func() string {
		cluster, _ := testCluster(t, 8, 0)
		rep, err := New(smallConfig()).Run(cluster)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Answer
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %q vs %q", a, b)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Points: 0, Dims: 1, K: 1, Partitions: 1})
}
