// Package kmeans implements Intel HiBench's distributed K-means clustering
// on the engine: a synthetic point cloud around k true centres is cached
// in executor memory, and each Lloyd iteration is one job — a map stage
// assigning points to the nearest centre with per-partition partial sums
// (Spark's reduceByKey combiner), a tiny shuffle of k×partitions partial
// aggregates, and a driver-side centre update. Compute-intensive with
// modest shuffle, as the paper characterises it; when the cached dataset
// does not fit the executors' memory, eviction forces per-iteration
// recomputation — the paper's 10x degradation for under-provisioned runs.
package kmeans

import (
	"fmt"
	"math"
	"time"

	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/workloads"
)

// Config parameterises a K-means run.
type Config struct {
	// Points and Dims size the dataset (paper: 3M points, 20 dims).
	Points int
	Dims   int
	// K cluster count (paper: 10).
	K int
	// MaxIterations (paper: 5) and ConvergenceDist (paper: 0.5). A
	// negative ConvergenceDist disables early stopping (HiBench-style
	// fixed iteration counts).
	MaxIterations   int
	ConvergenceDist float64
	// Partitions of the points dataset.
	Partitions int
	// Seed for data generation.
	Seed uint64
	// RowBytes models the serialized/in-memory size of one point (JVM
	// object overhead makes this ~20x the raw float payload).
	RowBytes int
	// WorkScale multiplies per-row CPU costs (calibration).
	WorkScale float64
	// SampleFactor generates Points/SampleFactor real points while
	// modelling the full dataset (per-row cost and bytes scale by the
	// factor); clustering is genuinely computed on the sample. 0/1
	// disables sampling.
	SampleFactor int
	// ExpectedSLO for the segueing facility.
	ExpectedSLO time.Duration
}

// DefaultConfig mirrors the paper's Figure 8 setup.
func DefaultConfig() Config {
	return Config{
		Points:          3_000_000,
		Dims:            20,
		K:               10,
		MaxIterations:   5,
		ConvergenceDist: 0.5,
		Partitions:      16,
		Seed:            2,
		RowBytes:        600,
		WorkScale:       1,
		ExpectedSLO:     2 * time.Minute,
	}
}

// Workload is the K-means workload.
type Workload struct {
	cfg Config
}

var _ workloads.Workload = (*Workload)(nil)

// New returns a K-means workload.
func New(cfg Config) *Workload {
	if cfg.Points <= 0 || cfg.Dims <= 0 || cfg.K <= 0 || cfg.Partitions <= 0 {
		panic("kmeans: invalid config")
	}
	if cfg.WorkScale <= 0 {
		cfg.WorkScale = 1
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = 600
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 5
	}
	if cfg.SampleFactor <= 0 {
		cfg.SampleFactor = 1
	}
	return &Workload{cfg: cfg}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return fmt.Sprintf("kmeans-%d", w.cfg.Points) }

// DefaultParallelism implements workloads.Workload.
func (w *Workload) DefaultParallelism() int { return w.cfg.Partitions }

// SLO implements workloads.Workload.
func (w *Workload) SLO() time.Duration { return w.cfg.ExpectedSLO }

// trueCentre returns the ground-truth centre c in dim d used by the
// generator, so convergence is verifiable.
func trueCentre(c, d int) float32 {
	return float32((c*7+d*3)%40) * 2.5
}

// partial is a per-cluster partial aggregate.
type partial struct {
	Cluster int
	Sum     []float64
	Count   int64
}

// Points builds the cached source dataset.
func (w *Workload) Points(ctx *rdd.Context) *rdd.RDD {
	cfg := w.cfg
	sample := float64(cfg.SampleFactor)
	points := cfg.Points / cfg.SampleFactor
	per := points / cfg.Partitions
	return ctx.Source("points", cfg.Partitions, func(p int) []rdd.Row {
		rng := simrand.New(cfg.Seed + uint64(p)*0x9e3779b97f4a7c15)
		lo := p * per
		hi := lo + per
		if p == cfg.Partitions-1 {
			hi = points
		}
		out := make([]rdd.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			c := i % cfg.K
			vec := make([]float32, cfg.Dims)
			for d := range vec {
				vec[d] = trueCentre(c, d) + float32(rng.Normal(0, 1.5))
			}
			out = append(out, vec)
		}
		return out
	}, 1800*cfg.WorkScale*sample, cfg.RowBytes*cfg.SampleFactor).Cache()
}

// assignStage builds one iteration's dataflow over points given centres.
func (w *Workload) assignStage(points *rdd.RDD, it int, centres [][]float64) *rdd.RDD {
	cfg := w.cfg
	sample := float64(cfg.SampleFactor)
	assign := points.MapPartitions(fmt.Sprintf("assign-%d", it),
		func(_ int, in []rdd.Row) []rdd.Row {
			sums := make([][]float64, cfg.K)
			counts := make([]int64, cfg.K)
			for c := range sums {
				sums[c] = make([]float64, cfg.Dims)
			}
			for _, r := range in {
				vec := r.([]float32)
				best, bestDist := 0, math.Inf(1)
				for c := range centres {
					dist := 0.0
					for d, v := range vec {
						diff := float64(v) - centres[c][d]
						dist += diff * diff
					}
					if dist < bestDist {
						best, bestDist = c, dist
					}
				}
				for d, v := range vec {
					sums[best][d] += float64(v)
				}
				counts[best]++
			}
			out := make([]rdd.Row, 0, cfg.K)
			for c := 0; c < cfg.K; c++ {
				if counts[c] > 0 {
					out = append(out, partial{Cluster: c, Sum: sums[c], Count: counts[c]})
				}
			}
			return out
		},
		// Distance computation: ~K*Dims flops per point.
		float64(cfg.K*cfg.Dims)*4*cfg.WorkScale*sample, 16+8*cfg.Dims)

	return assign.ReduceByKey(fmt.Sprintf("update-%d", it), minInt(cfg.K, cfg.Partitions),
		func(r rdd.Row) rdd.Key { return r.(partial).Cluster },
		func(a, b rdd.Row) rdd.Row {
			pa, pb := a.(partial), b.(partial)
			sum := make([]float64, len(pa.Sum))
			for d := range sum {
				sum[d] = pa.Sum[d] + pb.Sum[d]
			}
			return partial{Cluster: pa.Cluster, Sum: sum, Count: pa.Count + pb.Count}
		}, 30*cfg.WorkScale, 16+8*cfg.Dims)
}

// Run implements workloads.Workload: up to MaxIterations jobs, stopping at
// the convergence distance, exactly like HiBench/MLlib K-means.
func (w *Workload) Run(c *engine.Cluster) (*workloads.Report, error) {
	cfg := w.cfg
	return workloads.Timed(c, w.Name(), func() (string, int, error) {
		ctx := rdd.NewContext()
		pointsRDD := w.Points(ctx)
		points := cfg.Points / maxInt(cfg.SampleFactor, 1)

		// Initial centres: perturbed ground truth (HiBench samples).
		rng := simrand.New(cfg.Seed ^ 0xdecafbad)
		centres := make([][]float64, cfg.K)
		for k := range centres {
			centres[k] = make([]float64, cfg.Dims)
			for d := range centres[k] {
				centres[k][d] = float64(trueCentre(k, d)) + rng.Normal(0, 8)
			}
		}

		jobs := 0
		moved := math.Inf(1)
		var clustered int64
		for it := 0; it < cfg.MaxIterations && moved > cfg.ConvergenceDist; it++ {
			job, err := c.RunJob(w.assignStage(pointsRDD, it, centres), fmt.Sprintf("%s-iter%d", w.Name(), it))
			if err != nil {
				return "", jobs, err
			}
			jobs++
			moved = 0
			clustered = 0
			for _, r := range job.Rows() {
				p := r.(partial)
				clustered += p.Count
				delta := 0.0
				for d := range p.Sum {
					nc := p.Sum[d] / float64(p.Count)
					diff := nc - centres[p.Cluster][d]
					delta += diff * diff
					centres[p.Cluster][d] = nc
				}
				if d := math.Sqrt(delta); d > moved {
					moved = d
				}
			}
		}

		// Sanity: every point must have been assigned in the final
		// iteration (a real distributed reduction, so mass is conserved),
		// and centres must be finite. Ground-truth recovery is reported
		// informationally — with random inits k-means can legitimately
		// settle in a local optimum.
		worst := 0.0
		for k := range centres {
			dist := 0.0
			for d := range centres[k] {
				if math.IsNaN(centres[k][d]) {
					return "", jobs, fmt.Errorf("kmeans: NaN centre %d", k)
				}
				diff := centres[k][d] - float64(trueCentre(k, d))
				dist += diff * diff
			}
			if dd := math.Sqrt(dist); dd > worst {
				worst = dd
			}
		}
		answer := fmt.Sprintf("converged in %d iterations, last move %.3f, worst centre error %.3f",
			jobs, moved, worst)
		if clustered != int64(points) {
			return "", jobs, fmt.Errorf("kmeans: clustered %d of %d points: %s", clustered, points, answer)
		}
		return answer, jobs, nil
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
