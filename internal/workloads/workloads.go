// Package workloads defines the contract the paper's four benchmark
// workloads implement (TPC-DS queries, PageRank, K-means, SparkPi) and
// shared helpers. A Workload owns its dataflow plan(s); iterative
// workloads (K-means) submit several jobs against the same cluster,
// reusing caches and shuffle outputs exactly as their Spark originals do.
package workloads

import (
	"fmt"
	"time"

	"splitserve/internal/spark/engine"
)

// Workload is one benchmark program.
type Workload interface {
	// Name identifies the workload (e.g. "pagerank-850k", "tpcds-q16").
	Name() string
	// DefaultParallelism is the R the paper uses for this workload.
	DefaultParallelism() int
	// SLO is the paper's expected-execution-time envelope, used by the
	// segueing facility.
	SLO() time.Duration
	// Run executes the workload to completion on the cluster and returns
	// a report with the (real, verifiable) answer it computed.
	Run(c *engine.Cluster) (*Report, error)
}

// Report is a workload's outcome.
type Report struct {
	Workload string
	// Answer is a human-readable digest of the computed result, used by
	// tests and examples to verify the computation really happened.
	Answer string
	// Jobs is how many engine jobs (actions) ran.
	Jobs int
	// Elapsed is total simulated execution time.
	Elapsed time.Duration
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %s (%d jobs, %v)", r.Workload, r.Answer, r.Jobs, r.Elapsed.Round(time.Millisecond))
}

// Timed wraps a run body with elapsed-time accounting on the cluster's
// virtual clock.
func Timed(c *engine.Cluster, workload string, body func() (string, int, error)) (*Report, error) {
	start := c.Clock().Now()
	answer, jobs, err := body()
	if err != nil {
		return nil, err
	}
	return &Report{
		Workload: workload,
		Answer:   answer,
		Jobs:     jobs,
		Elapsed:  c.Clock().Since(start),
	}, nil
}
