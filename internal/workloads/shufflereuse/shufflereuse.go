// Package shufflereuse implements a synthetic workload whose defining
// trait is *repeat shuffle reads*: one wide shuffle (ReduceByKey)
// followed by several actions over the shuffled RDD. The DAG scheduler
// skips the completed map stage on each repeat action, so every action
// after the first re-fetches the same shuffle blocks — the access
// pattern that rewards a function-local /tmp cache tier (a stateful
// Lambda serves repeats from local storage instead of re-crossing its
// egress link) and the workload behind the warm-pool crossover
// experiment.
package shufflereuse

import (
	"fmt"
	"time"

	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/workloads"
)

// Config parameterises a shuffle-reuse run.
type Config struct {
	// Partitions is both the source and the shuffle width (= executors).
	Partitions int
	// RowsPerPartition is the map-side row count per partition.
	RowsPerPartition int
	// RowBytes is the modelled serialized size of one map-output row;
	// Partitions × RowsPerPartition × RowBytes is the shuffle volume
	// every repeat action re-reads.
	RowBytes int
	// Keys is the number of distinct reduce keys.
	Keys int
	// Reuse is how many actions run over the shuffled RDD (>= 1); each
	// action past the first is a pure repeat read of the shuffle.
	Reuse int
	// CostPerRow is CPU work units per row on both sides of the shuffle.
	CostPerRow float64
	// ExpectedSLO for the segueing facility.
	ExpectedSLO time.Duration
}

// DefaultConfig shuffles 64 MB across 8 partitions and reads it 3 times.
func DefaultConfig() Config {
	return Config{
		Partitions:       8,
		RowsPerPartition: 4000,
		RowBytes:         2048,
		Keys:             512,
		Reuse:            3,
		CostPerRow:       2000,
		ExpectedSLO:      2 * time.Minute,
	}
}

// kv is one map-output row.
type kv struct {
	K int
	V int64
}

// Workload is the shuffle-reuse workload.
type Workload struct {
	cfg Config
}

var _ workloads.Workload = (*Workload)(nil)

// New returns a shuffle-reuse workload.
func New(cfg Config) *Workload {
	if cfg.Partitions <= 0 || cfg.RowsPerPartition <= 0 {
		panic("shufflereuse: invalid config")
	}
	if cfg.RowBytes <= 0 {
		cfg.RowBytes = 2048
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 512
	}
	if cfg.Reuse < 1 {
		cfg.Reuse = 1
	}
	if cfg.CostPerRow <= 0 {
		cfg.CostPerRow = 2000
	}
	if cfg.ExpectedSLO <= 0 {
		cfg.ExpectedSLO = 2 * time.Minute
	}
	return &Workload{cfg: cfg}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string {
	return fmt.Sprintf("shufflereuse-%dx%d-r%d", w.cfg.Partitions, w.cfg.RowsPerPartition, w.cfg.Reuse)
}

// DefaultParallelism implements workloads.Workload.
func (w *Workload) DefaultParallelism() int { return w.cfg.Partitions }

// SLO implements workloads.Workload.
func (w *Workload) SLO() time.Duration { return w.cfg.ExpectedSLO }

// Plan builds source -> ReduceByKey. The returned RDD is shuffled: each
// action over it re-runs only the reduce side against the already
// materialized map outputs.
func (w *Workload) Plan(ctx *rdd.Context) *rdd.RDD {
	cfg := w.cfg
	events := ctx.Source("events", cfg.Partitions, func(p int) []rdd.Row {
		rows := make([]rdd.Row, cfg.RowsPerPartition)
		for i := range rows {
			rows[i] = kv{K: (p*cfg.RowsPerPartition + i) % cfg.Keys, V: 1}
		}
		return rows
	}, cfg.CostPerRow, cfg.RowBytes)
	return events.ReduceByKey("bykey", cfg.Partitions,
		func(r rdd.Row) rdd.Key { return r.(kv).K },
		func(a, b rdd.Row) rdd.Row { return kv{K: a.(kv).K, V: a.(kv).V + b.(kv).V} },
		cfg.CostPerRow, cfg.RowBytes)
}

// Run implements workloads.Workload: one shuffle, then Reuse actions
// over it, verifying the aggregate count each time.
func (w *Workload) Run(c *engine.Cluster) (*workloads.Report, error) {
	return workloads.Timed(c, w.Name(), func() (string, int, error) {
		ctx := rdd.NewContext()
		shuffled := w.Plan(ctx)
		want := int64(w.cfg.Partitions) * int64(w.cfg.RowsPerPartition)
		for action := 1; action <= w.cfg.Reuse; action++ {
			job, err := c.RunJob(shuffled, fmt.Sprintf("%s#%d", w.Name(), action))
			if err != nil {
				return "", 0, err
			}
			var total int64
			for _, r := range job.Rows() {
				total += r.(kv).V
			}
			if total != want {
				return "", 0, fmt.Errorf("shufflereuse: action %d counted %d rows, want %d",
					action, total, want)
			}
		}
		answer := fmt.Sprintf("%d rows through %d reads of a %d MB shuffle",
			want, w.cfg.Reuse,
			int64(w.cfg.Partitions)*int64(w.cfg.RowsPerPartition)*int64(w.cfg.RowBytes)>>20)
		return answer, w.cfg.Reuse, nil
	})
}
