package workloads

import (
	"errors"
	"strings"
	"testing"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/storage"
)

func testCluster(t *testing.T) (*engine.Cluster, *simclock.Clock) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(5), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M4XLarge)
	cluster, err := engine.New(engine.Config{
		AppID: "workloads-test", Clock: clock, Net: net, Provider: provider,
		Store:   storage.NewLocal(clock, net),
		Backend: engine.NewStandalone(engine.StandaloneConfig{VMs: []*cloud.VM{vm}}),
		Alloc:   engine.DefaultAllocConfig(engine.AllocStatic, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, clock
}

func TestTimedMeasuresVirtualElapsed(t *testing.T) {
	cluster, clock := testCluster(t)
	rep, err := Timed(cluster, "fake", func() (string, int, error) {
		done := false
		clock.After(3*time.Second, func() { done = true })
		for !done {
			if !clock.Step() {
				t.Fatal("clock drained before body finished")
			}
		}
		return "answer=42", 2, nil
	})
	if err != nil {
		t.Fatalf("Timed: %v", err)
	}
	if rep.Workload != "fake" || rep.Answer != "answer=42" || rep.Jobs != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Elapsed != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", rep.Elapsed)
	}
}

func TestTimedPropagatesError(t *testing.T) {
	cluster, _ := testCluster(t)
	boom := errors.New("boom")
	rep, err := Timed(cluster, "fake", func() (string, int, error) {
		return "", 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if rep != nil {
		t.Fatalf("report should be nil on error, got %+v", rep)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Workload: "pagerank-850k", Answer: "top=0.0042", Jobs: 3,
		Elapsed: 1500*time.Millisecond + 300*time.Microsecond}
	s := r.String()
	for _, want := range []string{"pagerank-850k", "top=0.0042", "3 jobs", "1.5s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
