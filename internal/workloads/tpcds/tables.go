// Package tpcds implements the paper's TPC-DS slice: synthetic generators
// for the sales/returns fact tables and dataflow plans for queries Q5,
// Q16, Q94 and Q95 (the four the paper presents from Spark-SQL-Perf at
// scale factor 8). Dimension attributes the real queries obtain via
// broadcast joins with tiny dimension tables (date_dim, customer_address,
// call_center, web_site) are denormalized onto the fact rows — broadcast
// joins move no shuffle data, so the scheduling and shuffle footprint the
// paper stresses is preserved; DESIGN.md records the substitution.
package tpcds

import (
	"splitserve/internal/simrand"
	"splitserve/internal/spark/rdd"
)

// Row counts per unit scale factor, matching real TPC-DS cardinalities
// (SF1: 2.88M store_sales). Wall-clock is managed by Gen.Sample, which
// divides generated rows while scaling per-row bytes/CPU up, keeping
// modelled volumes at the true scale.
const (
	storeSalesPerSF   = 2_880_000
	catalogSalesPerSF = 1_440_000
	webSalesPerSF     = 720_000
	returnFraction    = 0.35 // orders with at least one returned item
	itemsPerOrder     = 4
	warehouses        = 15
	states            = 50
	stores            = 120
	webSites          = 30
	daysPerYear       = 365
)

// SalesRow is one denormalized fact row (store, catalog or web sales).
type SalesRow struct {
	Order     int64
	Item      int32
	Outlet    int32 // store / call center / web site
	Warehouse int16
	ShipState int16
	SoldDate  int16 // day offset within the year
	ShipDate  int16
	ExtPrice  float32
	ShipCost  float32
	NetProfit float32
}

// ReturnRow is one returns fact row.
type ReturnRow struct {
	Order     int64
	Item      int32
	ReturnAmt float32
	NetLoss   float32
}

// Serialized row sizes (Java-ish, matching Spark SQL's unsafe rows plus
// object overheads in shuffle files).
const (
	salesRowBytes  = 96
	returnRowBytes = 48
)

// Channel tags the union branches of Q5.
type Channel int8

// Sales channels.
const (
	ChannelStore Channel = iota + 1
	ChannelCatalog
	ChannelWeb
)

func (c Channel) String() string {
	switch c {
	case ChannelStore:
		return "store"
	case ChannelCatalog:
		return "catalog"
	case ChannelWeb:
		return "web"
	default:
		return "?"
	}
}

// Table identifies a fact table.
type Table int

// Fact tables.
const (
	StoreSales Table = iota + 1
	CatalogSales
	WebSales
	StoreReturns
	CatalogReturns
	WebReturns
)

// Gen generates deterministic synthetic TPC-DS rows.
type Gen struct {
	SF     int
	Seed   uint64
	Sample int // see sample(); 0/1 = no sampling
}

// SalesRows returns the number of generated sales rows for a table at this
// SF (after sampling).
func (g Gen) SalesRows(t Table) int {
	base := 0
	switch t {
	case StoreSales:
		base = storeSalesPerSF * g.SF
	case CatalogSales:
		base = catalogSalesPerSF * g.SF
	case WebSales:
		base = webSalesPerSF * g.SF
	default:
		panic("tpcds: not a sales table")
	}
	return base / g.sample()
}

// orderBase namespaces order IDs per table so unions do not collide.
func orderBase(t Table) int64 { return int64(t) << 40 }

// salesRowAt deterministically materialises sales row i of table t.
// Attributes derive from a per-row hash, so any partitioning of the row
// space produces identical rows (and a sequential reference scan can
// verify engine results).
func (g Gen) salesRowAt(t Table, i int) SalesRow {
	h := simrand.New(g.Seed ^ (uint64(t) << 56) ^ uint64(i)*0x9e3779b97f4a7c15)
	order := orderBase(t) + int64(i/itemsPerOrder)
	sold := int16(h.Intn(daysPerYear))
	ship := sold + int16(h.Intn(40))
	return SalesRow{
		Order:     order,
		Item:      int32(h.Intn(20000)),
		Outlet:    int32(h.Intn(outletsFor(t))),
		Warehouse: int16(h.Intn(warehouses)),
		ShipState: int16(h.Intn(states)),
		SoldDate:  sold,
		ShipDate:  ship,
		ExtPrice:  float32(h.Float64()*290 + 10),
		ShipCost:  float32(h.Float64() * 20),
		NetProfit: float32(h.Float64()*120 - 20),
	}
}

func outletsFor(t Table) int {
	switch t {
	case StoreSales:
		return stores
	case WebSales:
		return webSites
	default:
		return 60 // call centers x catalog pages bucketed
	}
}

// returnsFor maps a sales table to its returns table.
func returnsFor(t Table) Table {
	switch t {
	case StoreSales:
		return StoreReturns
	case CatalogSales:
		return CatalogReturns
	case WebSales:
		return WebReturns
	default:
		panic("tpcds: not a sales table")
	}
}

// returnRowsAt materialises the return rows derived from sales row i (one
// per returned item; an order's first item decides whether it returns).
func (g Gen) returnRowsAt(t Table, i int) []ReturnRow {
	h := simrand.New(g.Seed ^ (uint64(returnsFor(t)) << 56) ^ uint64(i/itemsPerOrder)*0x9e3779b97f4a7c15)
	if h.Float64() >= returnFraction {
		return nil
	}
	// The order returns; item i returns with probability 1/2.
	hi := simrand.New(g.Seed ^ (uint64(returnsFor(t)) << 48) ^ uint64(i)*0xbf58476d1ce4e5b9)
	if hi.Float64() >= 0.5 {
		return nil
	}
	s := g.salesRowAt(t, i)
	return []ReturnRow{{
		Order:     s.Order,
		Item:      s.Item,
		ReturnAmt: s.ExtPrice * 0.8,
		NetLoss:   s.ExtPrice*0.1 + 5,
	}}
}

// partRange splits n rows across parts partitions.
func partRange(n, parts, p int) (lo, hi int) {
	per := n / parts
	lo = p * per
	hi = lo + per
	if p == parts-1 {
		hi = n
	}
	return lo, hi
}

// Sample is the generator's row-sampling factor: SalesRows returns the
// table cardinality divided by Sample, while byte and CPU models scale up
// by Sample so modelled volumes match the nominal scale factor. Gen with
// Sample 0 behaves as Sample 1.
func (g Gen) sample() int {
	if g.Sample <= 0 {
		return 1
	}
	return g.Sample
}

// SalesSource builds a partitioned scan of a sales table. Generation cost
// models reading Parquet from storage and decoding.
func (g Gen) SalesSource(ctx *rdd.Context, t Table, parts int, workScale float64) *rdd.RDD {
	n := g.SalesRows(t)
	k := float64(g.sample())
	return ctx.Source("scan-"+tableName(t), parts, func(p int) []rdd.Row {
		lo, hi := partRange(n, parts, p)
		out := make([]rdd.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, g.salesRowAt(t, i))
		}
		return out
	}, 260*workScale*k, int(salesRowBytes*k))
}

// ReturnsSource builds a partitioned scan of a returns table.
func (g Gen) ReturnsSource(ctx *rdd.Context, sales Table, parts int, workScale float64) *rdd.RDD {
	n := g.SalesRows(sales)
	k := float64(g.sample())
	return ctx.Source("scan-"+tableName(returnsFor(sales)), parts, func(p int) []rdd.Row {
		lo, hi := partRange(n, parts, p)
		var out []rdd.Row
		for i := lo; i < hi; i++ {
			for _, r := range g.returnRowsAt(sales, i) {
				out = append(out, r)
			}
		}
		return out
	}, 220*workScale*k, int(returnRowBytes*k))
}

func tableName(t Table) string {
	switch t {
	case StoreSales:
		return "store_sales"
	case CatalogSales:
		return "catalog_sales"
	case WebSales:
		return "web_sales"
	case StoreReturns:
		return "store_returns"
	case CatalogReturns:
		return "catalog_returns"
	case WebReturns:
		return "web_returns"
	default:
		return "?"
	}
}
