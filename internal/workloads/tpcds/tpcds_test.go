package tpcds

import (
	"math"
	"strings"
	"testing"

	"splitserve/internal/cloud"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/storage"
)

func testCluster(t *testing.T, execs int) *engine.Cluster {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(5), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M410XLarge)
	cluster, err := engine.New(engine.Config{
		AppID: "tpcds-test", Clock: clock, Net: net, Provider: provider,
		Store:   storage.NewLocal(clock, net),
		Backend: engine.NewStandalone(engine.StandaloneConfig{VMs: []*cloud.VM{vm}}),
		Alloc:   engine.DefaultAllocConfig(engine.AllocStatic, execs, execs),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

// refShipping computes the shipping-query answer by brute force over the
// generated rows, independently of the engine.
func refShipping(gen Gen, table Table, needReturn bool) agg {
	n := gen.SalesRows(table)
	orders := map[int64][]SalesRow{}
	returns := map[int64]bool{}
	for i := 0; i < n; i++ {
		s := gen.salesRowAt(table, i)
		orders[s.Order] = append(orders[s.Order], s)
		if rs := gen.returnRowsAt(table, i); len(rs) > 0 {
			returns[s.Order] = true
		}
	}
	var out agg
	for order, rows := range orders {
		anyAnchor := false
		mask := uint32(0)
		var ship, profit float64
		for _, s := range rows {
			mask |= 1 << uint(s.Warehouse)
			if anchorMatch(s) {
				anyAnchor = true
				ship += float64(s.ShipCost)
				profit += float64(s.NetProfit)
			}
		}
		if anyAnchor && mask&(mask-1) != 0 && returns[order] == needReturn {
			out.Orders++
			out.ShipCost += ship
			out.Profit += profit
		}
	}
	return out
}

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*den
}

func runQuery(t *testing.T, q *Query) []rdd.Row {
	t.Helper()
	cluster := testCluster(t, 8)
	ctx := rdd.NewContext()
	job, err := cluster.RunJob(q.Plan(ctx), q.Name())
	if err != nil {
		t.Fatal(err)
	}
	return job.Rows()
}

func TestQ16MatchesReference(t *testing.T) {
	q := NewQuery("q16", 1, 8).WithSample(8)
	rows := runQuery(t, q)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	got := rows[0].(agg)
	want := refShipping(Gen{SF: 1, Seed: q.seed, Sample: 8}, CatalogSales, false)
	if got.Orders != want.Orders {
		t.Fatalf("orders = %d, want %d", got.Orders, want.Orders)
	}
	if !approxEq(got.ShipCost, want.ShipCost, 1e-6) || !approxEq(got.Profit, want.Profit, 1e-6) {
		t.Fatalf("measures = %+v, want %+v", got, want)
	}
	if got.Orders == 0 {
		t.Fatal("query selected nothing; predicates degenerate")
	}
}

func TestQ94MatchesReference(t *testing.T) {
	q := NewQuery("q94", 1, 8).WithSample(8)
	rows := runQuery(t, q)
	got := rows[0].(agg)
	want := refShipping(Gen{SF: 1, Seed: q.seed, Sample: 8}, WebSales, false)
	if got.Orders != want.Orders || !approxEq(got.ShipCost, want.ShipCost, 1e-6) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestQ95MatchesReference(t *testing.T) {
	q := NewQuery("q95", 1, 8).WithSample(8)
	rows := runQuery(t, q)
	got := rows[0].(agg)
	want := refShipping(Gen{SF: 1, Seed: q.seed, Sample: 8}, WebSales, true)
	if got.Orders != want.Orders || !approxEq(got.Profit, want.Profit, 1e-6) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got.Orders == 0 {
		t.Fatal("q95 selected nothing")
	}
}

func TestQ5MatchesReference(t *testing.T) {
	q := NewQuery("q5", 1, 8).WithSample(8)
	rows := runQuery(t, q)
	if len(rows) != 3 {
		t.Fatalf("channel rows = %d, want 3", len(rows))
	}
	gen := Gen{SF: 1, Seed: q.seed, Sample: 8}
	wantSales := map[Channel]float64{}
	wantReturns := map[Channel]float64{}
	for _, tc := range []struct {
		table   Table
		channel Channel
	}{{StoreSales, ChannelStore}, {CatalogSales, ChannelCatalog}, {WebSales, ChannelWeb}} {
		n := gen.SalesRows(tc.table)
		for i := 0; i < n; i++ {
			s := gen.salesRowAt(tc.table, i)
			wantSales[tc.channel] += float64(s.ExtPrice)
			for _, r := range gen.returnRowsAt(tc.table, i) {
				wantReturns[tc.channel] += float64(r.ReturnAmt)
			}
		}
	}
	for _, r := range rows {
		row := r.(q5Row)
		if !approxEq(row.Sales, wantSales[row.Channel], 1e-4) {
			t.Fatalf("%s sales = %.2f, want %.2f", row.Channel, row.Sales, wantSales[row.Channel])
		}
		if !approxEq(row.Returns, wantReturns[row.Channel], 1e-4) {
			t.Fatalf("%s returns = %.2f, want %.2f", row.Channel, row.Returns, wantReturns[row.Channel])
		}
	}
}

func TestQueriesViaWorkloadInterface(t *testing.T) {
	for _, id := range []string{"q5", "q16", "q94", "q95"} {
		cluster := testCluster(t, 8)
		rep, err := NewQuery(id, 1, 8).WithSample(8).Run(cluster)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.Elapsed <= 0 || rep.Answer == "" {
			t.Fatalf("%s: degenerate report %+v", id, rep)
		}
	}
}

func TestScaleFactorScalesRows(t *testing.T) {
	g1 := Gen{SF: 1, Seed: 8}
	g8 := Gen{SF: 8, Seed: 8}
	if g8.SalesRows(CatalogSales) != 8*g1.SalesRows(CatalogSales) {
		t.Fatal("SF does not scale rows")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g := Gen{SF: 1, Seed: 8}
	a := g.salesRowAt(WebSales, 123)
	b := g.salesRowAt(WebSales, 123)
	if a != b {
		t.Fatal("generator nondeterministic")
	}
}

func TestOrderNamespacesDisjoint(t *testing.T) {
	g := Gen{SF: 1, Seed: 8}
	a := g.salesRowAt(StoreSales, 0).Order
	b := g.salesRowAt(CatalogSales, 0).Order
	if a == b {
		t.Fatal("order IDs collide across tables")
	}
}

func TestReturnsBelongToSalesOrders(t *testing.T) {
	g := Gen{SF: 1, Seed: 8}
	found := 0
	for i := 0; i < 10000 && found < 10; i++ {
		for _, r := range g.returnRowsAt(CatalogSales, i) {
			s := g.salesRowAt(CatalogSales, i)
			if r.Order != s.Order {
				t.Fatalf("return order %d != sales order %d", r.Order, s.Order)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("no returns generated")
	}
}

func TestUnknownQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQuery("q99", 1, 8)
}

func TestQueryNames(t *testing.T) {
	q := NewQuery("q16", 8, 32)
	if !strings.Contains(q.Name(), "q16") || !strings.Contains(q.Name(), "sf8") {
		t.Fatalf("name = %q", q.Name())
	}
	if q.DefaultParallelism() != 32 {
		t.Fatalf("parallelism = %d", q.DefaultParallelism())
	}
}
