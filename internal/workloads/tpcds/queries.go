package tpcds

import (
	"fmt"
	"time"

	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/workloads"
)

// Filter constants shared by the shipping queries (Q16/Q94/Q95): an
// anchor row must be shipped from this state within this sold-date window
// — standing in for the real queries' date_dim/customer_address/
// call_center broadcast-join predicates.
const (
	anchorState   = 5
	anchorDateLo  = 60
	anchorDateHi  = 120
	shipWindowMax = 60 // days between order and shipment
)

// agg accumulates the shipping queries' three output measures.
type agg struct {
	Orders   int64
	ShipCost float64
	Profit   float64
}

func addAgg(a, b agg) agg {
	return agg{Orders: a.Orders + b.Orders, ShipCost: a.ShipCost + b.ShipCost, Profit: a.Profit + b.Profit}
}

// Query is one TPC-DS query workload.
type Query struct {
	id         string
	sf         int
	partitions int
	workScale  float64
	sample     int
	seed       uint64
	slo        time.Duration
}

var _ workloads.Workload = (*Query)(nil)

// NewQuery builds one of q5, q16, q94, q95 at the given scale factor and
// parallelism.
func NewQuery(id string, sf, partitions int) *Query {
	switch id {
	case "q5", "q16", "q94", "q95":
	default:
		panic("tpcds: unknown query " + id)
	}
	if sf <= 0 || partitions <= 0 {
		panic("tpcds: invalid scale factor or partitions")
	}
	return &Query{
		id: id, sf: sf, partitions: partitions,
		workScale: 1, sample: 1, seed: 8, slo: 2 * time.Minute,
	}
}

// WithSample generates 1/f of the rows while modelling full volume (rows
// carry f-times the bytes and CPU cost); the computed answers remain real
// answers over the sampled tables.
func (q *Query) WithSample(f int) *Query {
	if f > 0 {
		q.sample = f
	}
	return q
}

// WithWorkScale adjusts CPU-cost calibration and returns the query.
func (q *Query) WithWorkScale(s float64) *Query {
	q.workScale = s
	return q
}

// Name implements workloads.Workload.
func (q *Query) Name() string { return fmt.Sprintf("tpcds-%s-sf%d", q.id, q.sf) }

// DefaultParallelism implements workloads.Workload.
func (q *Query) DefaultParallelism() int { return q.partitions }

// SLO implements workloads.Workload.
func (q *Query) SLO() time.Duration { return q.slo }

// Plan builds the query's dataflow.
func (q *Query) Plan(ctx *rdd.Context) *rdd.RDD {
	gen := Gen{SF: q.sf, Seed: q.seed, Sample: q.sample}
	switch q.id {
	case "q5":
		return planQ5(ctx, gen, q.partitions, q.workScale)
	case "q16":
		return planShippingQuery(ctx, gen, CatalogSales, q.partitions, q.workScale)
	case "q94":
		return planShippingQuery(ctx, gen, WebSales, q.partitions, q.workScale)
	case "q95":
		return planQ95(ctx, gen, q.partitions, q.workScale)
	default:
		panic("tpcds: unknown query " + q.id)
	}
}

// Run implements workloads.Workload.
func (q *Query) Run(c *engine.Cluster) (*workloads.Report, error) {
	return workloads.Timed(c, q.Name(), func() (string, int, error) {
		ctx := rdd.NewContext()
		job, err := c.RunJob(q.Plan(ctx), q.Name())
		if err != nil {
			return "", 0, err
		}
		rows := job.Rows()
		if len(rows) == 0 {
			return "", 0, fmt.Errorf("tpcds: %s returned no rows", q.id)
		}
		if q.id == "q5" {
			return fmt.Sprintf("%d channel rollup rows: %s", len(rows), formatQ5(rows)), 1, nil
		}
		a := rows[0].(agg)
		return fmt.Sprintf("orders=%d shipCost=%.2f netProfit=%.2f", a.Orders, a.ShipCost, a.Profit), 1, nil
	})
}

// anchorMatch reports whether a sales row satisfies the queries' state +
// date-window predicate.
func anchorMatch(s SalesRow) bool {
	return s.ShipState == anchorState &&
		s.SoldDate >= anchorDateLo && s.SoldDate < anchorDateHi &&
		s.ShipDate-s.SoldDate <= shipWindowMax
}

// orderAgg evaluates the per-order EXISTS / NOT-EXISTS logic shared by
// Q16 and Q94: at least one anchor row; at least two distinct warehouses
// across the order (EXISTS a row from another warehouse); no returns
// (NOT EXISTS). needReturn flips the returns predicate for Q95.
func orderAgg(sales []rdd.Row, returns []rdd.Row, needReturn bool) (agg, bool) {
	var out agg
	warehouseMask := uint32(0)
	anyAnchor := false
	for _, r := range sales {
		s := r.(SalesRow)
		warehouseMask |= 1 << uint(s.Warehouse)
		if anchorMatch(s) {
			anyAnchor = true
			out.ShipCost += float64(s.ShipCost)
			out.Profit += float64(s.NetProfit)
		}
	}
	multiWarehouse := warehouseMask&(warehouseMask-1) != 0
	hasReturn := len(returns) > 0
	if !anyAnchor || !multiWarehouse || hasReturn != needReturn {
		return agg{}, false
	}
	out.Orders = 1
	return out, true
}

// planShippingQuery is Q16 (catalog) / Q94 (web): one big co-group of the
// sales and returns tables by order number, per-order predicate
// evaluation, then a single-partition global aggregate.
func planShippingQuery(ctx *rdd.Context, gen Gen, table Table, parts int, ws float64) *rdd.RDD {
	sales := gen.SalesSource(ctx, table, parts, ws)
	returns := gen.ReturnsSource(ctx, table, parts, ws)
	perOrder := sales.CoGroup(returns, "per-order", parts,
		func(r rdd.Row) rdd.Key { return r.(SalesRow).Order },
		func(r rdd.Row) rdd.Key { return r.(ReturnRow).Order },
		func(_ int, left, right []rdd.Group) []rdd.Row {
			retByOrder := make(map[rdd.Key][]rdd.Row, len(right))
			for _, g := range right {
				retByOrder[g.Key] = g.Rows
			}
			var out []rdd.Row
			for _, g := range left {
				if a, ok := orderAgg(g.Rows, retByOrder[g.Key], false); ok {
					out = append(out, a)
				}
			}
			return out
		}, 40*ws, 32)
	return globalAgg(perOrder, parts, ws)
}

// planQ95 is the heavier web query: web_sales grouped by order (shuffle),
// multi-warehouse orders re-shuffled against web_returns (second shuffle
// of the same data — the ws_wh self-join), keeping orders WITH returns.
func planQ95(ctx *rdd.Context, gen Gen, parts int, ws float64) *rdd.RDD {
	sales := gen.SalesSource(ctx, WebSales, parts, ws)
	returns := gen.ReturnsSource(ctx, WebSales, parts, ws)

	// ws_wh: orders shipped from more than one warehouse, carrying their
	// rows forward (grouped: one KV{order, []rows} per order).
	wsWh := sales.GroupByKey("ws_wh", parts,
		func(r rdd.Row) rdd.Key { return r.(SalesRow).Order }, 25*ws, salesRowBytes).
		Filter("multi-warehouse", func(r rdd.Row) bool {
			mask := uint32(0)
			for _, row := range r.(rdd.KV).V.([]rdd.Row) {
				mask |= 1 << uint(row.(SalesRow).Warehouse)
			}
			return mask&(mask-1) != 0
		}, 15*ws)

	perOrder := wsWh.CoGroup(returns, "per-order", parts,
		func(r rdd.Row) rdd.Key { return r.(rdd.KV).K },
		func(r rdd.Row) rdd.Key { return r.(ReturnRow).Order },
		func(_ int, left, right []rdd.Group) []rdd.Row {
			retByOrder := make(map[rdd.Key][]rdd.Row, len(right))
			for _, g := range right {
				retByOrder[g.Key] = g.Rows
			}
			var out []rdd.Row
			for _, g := range left {
				salesRows := g.Rows[0].(rdd.KV).V.([]rdd.Row)
				if a, ok := orderAgg(salesRows, retByOrder[g.Key], true); ok {
					out = append(out, a)
				}
			}
			return out
		}, 40*ws, 32)
	return globalAgg(perOrder, parts, ws)
}

// globalAgg reduces per-order rows to a single agg row.
func globalAgg(perOrder *rdd.RDD, parts int, ws float64) *rdd.RDD {
	_ = parts
	return perOrder.ReduceByKey("global-agg", 1,
		func(rdd.Row) rdd.Key { return 0 },
		func(a, b rdd.Row) rdd.Row { return addAgg(a.(agg), b.(agg)) },
		5*ws, 32)
}

// q5Row is one Q5 union row: a sales or returns amount attributed to a
// (channel, outlet) pair.
type q5Row struct {
	Channel Channel
	Outlet  int32
	Sales   float64
	Returns float64
	Profit  float64
}

func addQ5(a, b q5Row) q5Row {
	return q5Row{
		Channel: a.Channel, Outlet: a.Outlet,
		Sales: a.Sales + b.Sales, Returns: a.Returns + b.Returns, Profit: a.Profit + b.Profit,
	}
}

// planQ5 unions the three channels' sales and returns scans, aggregates
// per (channel, outlet), then rolls up per channel — TPC-DS Q5's
// channel-report shape.
func planQ5(ctx *rdd.Context, gen Gen, parts int, ws float64) *rdd.RDD {
	// One concatenated scan: each partition yields its slice of all six
	// fact tables (a union of scans is a scan of the union).
	union := ctx.Source("union-scan", parts, func(p int) []rdd.Row {
		var out []rdd.Row
		for _, t := range []struct {
			table   Table
			channel Channel
		}{
			{StoreSales, ChannelStore},
			{CatalogSales, ChannelCatalog},
			{WebSales, ChannelWeb},
		} {
			n := gen.SalesRows(t.table)
			lo, hi := partRange(n, parts, p)
			for i := lo; i < hi; i++ {
				s := gen.salesRowAt(t.table, i)
				out = append(out, q5Row{
					Channel: t.channel, Outlet: s.Outlet,
					Sales: float64(s.ExtPrice), Profit: float64(s.NetProfit),
				})
				for _, r := range gen.returnRowsAt(t.table, i) {
					out = append(out, q5Row{
						Channel: t.channel, Outlet: s.Outlet,
						Returns: float64(r.ReturnAmt), Profit: -float64(r.NetLoss),
					})
				}
			}
		}
		return out
	}, 260*ws*float64(gen.sample()), 56*gen.sample())

	perOutlet := union.ReduceByKey("per-outlet", parts,
		func(r rdd.Row) rdd.Key {
			row := r.(q5Row)
			return int(row.Channel)<<32 | int(row.Outlet)
		},
		func(a, b rdd.Row) rdd.Row { return addQ5(a.(q5Row), b.(q5Row)) },
		30*ws, 56)

	return perOutlet.ReduceByKey("rollup", 1,
		func(r rdd.Row) rdd.Key { return int(r.(q5Row).Channel) },
		func(a, b rdd.Row) rdd.Row {
			m := addQ5(a.(q5Row), b.(q5Row))
			m.Outlet = -1
			return m
		}, 5*ws, 56)
}

func formatQ5(rows []rdd.Row) string {
	out := ""
	for _, r := range rows {
		q := r.(q5Row)
		out += fmt.Sprintf("[%s sales=%.0f returns=%.0f profit=%.0f]",
			q.Channel, q.Sales, q.Returns, q.Profit)
	}
	return out
}
