// Package pagerank implements Intel HiBench's WebSearch (PageRank)
// workload on the engine: a power-law web graph is generated
// synthetically, the adjacency dataset is cached, and each iteration
// co-groups adjacency with the current rank vector, scatters
// rank/out-degree contributions over the links, and reduces them by target
// page — the paper's most shuffle-intensive workload ("compute and shuffle
// I/O intensive ... considerably more than distributed K-means").
package pagerank

import (
	"fmt"
	"math"
	"time"

	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/workloads"
)

// Config parameterises a PageRank run.
type Config struct {
	// Pages is the page count (the paper uses 25k/50k/100k for profiling
	// and 850k for the main experiment).
	Pages int
	// AvgOutDegree is the mean links per page (Zipf-skewed).
	AvgOutDegree int
	// Iterations of the power method.
	Iterations int
	// Partitions of every stage.
	Partitions int
	// Damping factor (0.85 in the PageRank paper and HiBench).
	Damping float64
	// Seed for graph generation.
	Seed uint64
	// WorkScale multiplies per-row CPU costs (calibration).
	WorkScale float64
	// SampleFactor generates Pages/SampleFactor real pages while modelling
	// the full page count: per-row CPU cost and serialized size scale by
	// the factor, so modelled work and shuffle bytes are unchanged but the
	// reproduction's wall-clock shrinks. The computed ranks are a genuine
	// PageRank of the sampled graph. 0/1 disables sampling.
	SampleFactor int
	// ExpectedSLO for the segueing facility.
	ExpectedSLO time.Duration
}

// DefaultConfig mirrors the paper's Figure 6 setup (850k pages, R=16).
func DefaultConfig() Config {
	return Config{
		Pages:        850_000,
		AvgOutDegree: 10,
		Iterations:   3,
		Partitions:   16,
		Damping:      0.85,
		Seed:         1,
		WorkScale:    1,
		ExpectedSLO:  5 * time.Minute,
	}
}

// page is one adjacency row.
type page struct {
	ID      int
	Targets []int32
}

// Workload is the PageRank workload.
type Workload struct {
	cfg Config
}

var _ workloads.Workload = (*Workload)(nil)

// New returns a PageRank workload.
func New(cfg Config) *Workload {
	if cfg.Pages <= 0 || cfg.Partitions <= 0 || cfg.Iterations <= 0 {
		panic("pagerank: invalid config")
	}
	if cfg.WorkScale <= 0 {
		cfg.WorkScale = 1
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.SampleFactor <= 0 {
		cfg.SampleFactor = 1
	}
	return &Workload{cfg: cfg}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return fmt.Sprintf("pagerank-%d", w.cfg.Pages) }

// DefaultParallelism implements workloads.Workload.
func (w *Workload) DefaultParallelism() int { return w.cfg.Partitions }

// SLO implements workloads.Workload.
func (w *Workload) SLO() time.Duration { return w.cfg.ExpectedSLO }

// Plan builds the full iterative dataflow and returns the final ranks
// dataset; a single collect action executes all iterations (as in the
// canonical Spark PageRank program).
func (w *Workload) Plan(ctx *rdd.Context) *rdd.RDD {
	cfg := w.cfg
	parts := cfg.Partitions
	sample := float64(cfg.SampleFactor)
	pages := cfg.Pages / cfg.SampleFactor
	per := pages / parts

	// Adjacency rows: ~48 bytes serialized for out-degree 10; generation
	// cost models reading+parsing the HiBench input from storage.
	linkRowBytes := int(float64(16+4*cfg.AvgOutDegree) * sample)
	links := ctx.Source("links", parts, func(p int) []rdd.Row {
		// Derive an independent deterministic stream per partition.
		rng := simrand.New(cfg.Seed + uint64(p)*0x9e3779b97f4a7c15)
		lo := p * per
		hi := lo + per
		if p == parts-1 {
			hi = pages
		}
		out := make([]rdd.Row, 0, hi-lo)
		for id := lo; id < hi; id++ {
			deg := rng.Zipf(2.0, cfg.AvgOutDegree*10)
			if deg > pages {
				deg = pages
			}
			targets := make([]int32, deg)
			for i := range targets {
				targets[i] = int32(rng.Intn(pages))
			}
			out = append(out, page{ID: id, Targets: targets})
		}
		return out
	}, 900*cfg.WorkScale*sample, linkRowBytes).Cache()

	// Initial ranks: 1.0 each.
	ranks := links.Map("ranks0", func(r rdd.Row) rdd.Row {
		return rdd.KV{K: r.(page).ID, V: 1.0}
	}, 20*cfg.WorkScale*sample, int(40*sample))

	pageKey := func(r rdd.Row) rdd.Key { return r.(page).ID }
	kvKey := func(r rdd.Row) rdd.Key { return r.(rdd.KV).K }

	for it := 0; it < cfg.Iterations; it++ {
		// contribs: join adjacency with ranks, scatter rank/deg to targets.
		contribs := links.CoGroup(ranks, fmt.Sprintf("contribs-%d", it), parts,
			pageKey, kvKey,
			func(_ int, left, right []rdd.Group) []rdd.Row {
				rankOf := make(map[rdd.Key]float64, len(right))
				for _, g := range right {
					rankOf[g.Key] = g.Rows[0].(rdd.KV).V.(float64)
				}
				var out []rdd.Row
				for _, g := range left {
					pg := g.Rows[0].(page)
					rank, ok := rankOf[g.Key]
					if !ok || len(pg.Targets) == 0 {
						continue
					}
					share := rank / float64(len(pg.Targets))
					for _, tgt := range pg.Targets {
						out = append(out, rdd.KV{K: int(tgt), V: share})
					}
				}
				return out
			}, 120*cfg.WorkScale*sample, int(40*sample))

		// New ranks: damping over summed contributions.
		damping := cfg.Damping
		ranks = contribs.ReduceByKey(fmt.Sprintf("ranks-%d", it+1), parts,
			kvKey,
			func(a, b rdd.Row) rdd.Row {
				return rdd.KV{K: a.(rdd.KV).K, V: a.(rdd.KV).V.(float64) + b.(rdd.KV).V.(float64)}
			}, 60*cfg.WorkScale*sample, int(40*sample)).
			Map(fmt.Sprintf("damp-%d", it+1), func(r rdd.Row) rdd.Row {
				kv := r.(rdd.KV)
				return rdd.KV{K: kv.K, V: (1 - damping) + damping*kv.V.(float64)}
			}, 10*cfg.WorkScale*sample, int(40*sample))
	}
	return ranks
}

// Run implements workloads.Workload.
func (w *Workload) Run(c *engine.Cluster) (*workloads.Report, error) {
	return workloads.Timed(c, w.Name(), func() (string, int, error) {
		ctx := rdd.NewContext()
		job, err := c.RunJob(w.Plan(ctx), w.Name())
		if err != nil {
			return "", 0, err
		}
		sum, maxRank := 0.0, 0.0
		var maxPage rdd.Key
		n := 0
		for _, r := range job.Rows() {
			kv := r.(rdd.KV)
			v := kv.V.(float64)
			sum += v
			n++
			if v > maxRank {
				maxRank, maxPage = v, kv.K
			}
		}
		answer := fmt.Sprintf("ranked %d pages, top page %v (rank %.3f), mass %.1f",
			n, maxPage, maxRank, sum)
		if n == 0 || math.IsNaN(sum) {
			return "", 0, fmt.Errorf("pagerank: degenerate result %q", answer)
		}
		return answer, 1, nil
	})
}
