package pagerank

import (
	"math"
	"strings"
	"testing"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/storage"
)

func testCluster(t *testing.T, execs int) (*engine.Cluster, *simclock.Clock) {
	t.Helper()
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(5), cloud.DefaultOptions())
	vm := provider.ProvisionReadyVM(cloud.M44XLarge)
	cluster, err := engine.New(engine.Config{
		AppID: "pr-test", Clock: clock, Net: net, Provider: provider,
		Store:   storage.NewLocal(clock, net),
		Backend: engine.NewStandalone(engine.StandaloneConfig{VMs: []*cloud.VM{vm}}),
		Alloc:   engine.DefaultAllocConfig(engine.AllocStatic, execs, execs),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, clock
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Pages = 2000
	cfg.Partitions = 4
	cfg.Iterations = 3
	return cfg
}

func TestPageRankRuns(t *testing.T) {
	cluster, _ := testCluster(t, 4)
	w := New(smallConfig())
	rep, err := w.Run(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Answer, "ranked") {
		t.Fatalf("answer = %q", rep.Answer)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestPageRankMassConservedApproximately(t *testing.T) {
	// With damping, total mass stays near the page count (pages with no
	// inbound links still receive the (1-d) floor).
	cluster, _ := testCluster(t, 4)
	cfg := smallConfig()
	w := New(cfg)
	ctx := rdd.NewContext()
	job, err := cluster.RunJob(w.Plan(ctx), "pr")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	count := 0
	for _, r := range job.Rows() {
		sum += r.(rdd.KV).V.(float64)
		count++
	}
	if count == 0 || count > cfg.Pages {
		t.Fatalf("ranked pages = %d", count)
	}
	if sum <= 0 || math.IsNaN(sum) || sum > float64(cfg.Pages)*1.5 {
		t.Fatalf("rank mass = %v for %d pages", sum, cfg.Pages)
	}
}

func TestPageRankDeterministic(t *testing.T) {
	run := func() (string, time.Duration) {
		cluster, clock := testCluster(t, 4)
		rep, err := New(smallConfig()).Run(cluster)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Answer, clock.Since(simclock.Epoch)
	}
	a1, d1 := run()
	a2, d2 := run()
	if a1 != a2 || d1 != d2 {
		t.Fatalf("nondeterministic: %q/%v vs %q/%v", a1, d1, a2, d2)
	}
}

func TestPageRankStageStructure(t *testing.T) {
	// Iterations produce the expected stage count: 3 per iteration (links
	// side, ranks side, contribs->ranks) plus the result stage.
	cluster, _ := testCluster(t, 4)
	cfg := smallConfig()
	cfg.Iterations = 2
	ctx := rdd.NewContext()
	plan := New(cfg).Plan(ctx)
	job, err := cluster.RunJob(plan, "pr-stages")
	if err != nil {
		t.Fatal(err)
	}
	want := 3*cfg.Iterations + 1
	if len(job.Stages) != want {
		t.Fatalf("stages = %d, want %d", len(job.Stages), want)
	}
}

func TestPageRankShuffleHeavierThanCompute(t *testing.T) {
	// The links cache makes a second identical run cheaper but iterations
	// still shuffle: shuffle files must exist in the store.
	cluster, _ := testCluster(t, 4)
	w := New(smallConfig())
	if _, err := w.Run(cluster); err != nil {
		t.Fatal(err)
	}
	local, ok := cluster.Store().(*storage.Local)
	if !ok {
		t.Fatal("expected local store")
	}
	if local.Len() == 0 {
		t.Fatal("no shuffle blocks written")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Pages: 0, Partitions: 1, Iterations: 1})
}
