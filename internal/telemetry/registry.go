package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds:
// a 1-2.5-5 decade ladder from 1 ms to 250 s, spanning everything from a
// namenode RPC to a VM boot.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250,
}

// Registry holds one run's instruments. Resolution (Counter/Gauge/
// Histogram) takes a mutex; the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	sorted := sortLabels(labels)
	key := name + "|" + labelKey(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: sorted}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	sorted := sortLabels(labels)
	key := name + "|" + labelKey(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: sorted}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given bucket upper bounds (nil = DefBuckets). Bounds must be
// strictly increasing; a final +Inf bucket is implicit.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	sorted := sortLabels(labels)
	key := name + "|" + labelKey(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		labels: sorted,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hists[key] = h
	return h
}

// Counter is a monotonically increasing float64. Safe for concurrent use;
// Add and Inc allocate nothing.
type Counter struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative deltas are ignored (counters
// are monotonic).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous float64 value. Safe for concurrent use.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is a binary
// search plus two atomic increments — no allocation, safe for concurrent
// use.
type Histogram struct {
	name    string
	labels  []Label
	bounds  []float64 // upper bounds; counts has one extra +Inf slot
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound >= v (the +Inf slot otherwise).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns per-bucket counts; the final entry is the +Inf
// bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
