package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testClock(at time.Time) Clock { return StaticClock(at) }

var origin = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := New(testClock(origin)).Histogram("h", []float64{1, 2.5, 5})

	// Upper bounds are inclusive (Prometheus "le" semantics): a value
	// exactly on a bound lands in that bound's bucket.
	cases := []struct {
		v    float64
		want int // bucket index; 3 = +Inf
	}{
		{0.5, 0}, {1, 0}, {1.0000001, 1}, {2.5, 1}, {2.6, 2}, {5, 2},
		{5.0001, 3}, {1e9, 3},
	}
	for i, c := range cases {
		before := h.BucketCounts()
		h.Observe(c.v)
		after := h.BucketCounts()
		for b := range after {
			delta := after[b] - before[b]
			if b == c.want && delta != 1 {
				t.Errorf("case %d: Observe(%v) did not land in bucket %d", i, c.v, c.want)
			}
			if b != c.want && delta != 0 {
				t.Errorf("case %d: Observe(%v) incremented bucket %d, want %d", i, c.v, b, c.want)
			}
		}
	}
	if got, want := h.Count(), uint64(len(cases)); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

func TestHistogramRejectsNonIncreasingBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram with non-increasing bounds did not panic")
		}
	}()
	New(testClock(origin)).Histogram("bad", []float64{1, 1})
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := New(testClock(origin)).Histogram("def", nil)
	if got, want := len(h.Bounds()), len(DefBuckets); got != want {
		t.Fatalf("default bounds: got %d, want %d", got, want)
	}
	h.ObserveDuration(3 * time.Millisecond) // 0.003 s → le=0.005 bucket
	counts := h.BucketCounts()
	if counts[2] != 1 { // DefBuckets[2] == 0.005
		t.Errorf("3 ms landed in %v, want bucket le=0.005", counts)
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	hub := New(testClock(origin))
	c := hub.Counter("concurrent_total")
	g := hub.Gauge("concurrent_gauge")
	h := hub.Histogram("concurrent_hist", []float64{1})

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()

	if got, want := c.Value(), float64(workers*perWorker); got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if got, want := g.Value(), float64(workers*perWorker); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Errorf("histogram count = %v, want %v", got, want)
	}
}

func TestCounterIgnoresNegativeDeltas(t *testing.T) {
	c := New(testClock(origin)).Counter("mono")
	c.Add(2)
	c.Add(-5)
	c.Add(0)
	if got := c.Value(); got != 2 {
		t.Errorf("counter = %v, want 2 (negative and zero deltas ignored)", got)
	}
}

func TestNilHubIsNoOp(t *testing.T) {
	var hub *Hub
	hub.Counter("x").Inc()
	hub.Gauge("y").Set(3)
	hub.Histogram("z", nil).Observe(1)
	rep := hub.Report()
	if len(rep.Counters) != 0 || len(rep.Spans) != 0 {
		t.Error("nil hub produced a non-empty report")
	}
}

// buildSampleHub assembles a small, fully deterministic hub exercising
// every instrument and trace feature the exporter handles.
func buildSampleHub() *Hub {
	clk := &steppingClock{now: origin}
	hub := New(clk)

	hub.Counter("tasks_total", L("kind", "vm")).Add(3)
	hub.Counter("tasks_total", L("kind", "lambda")).Add(5)
	hub.Gauge("live").Set(2)
	h := hub.Histogram("latency_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	tr := hub.Tracer()
	s1 := tr.StartSpan("executor", "launch", L("exec", "e1"), L("kind", "vm"))
	clk.advance(1500 * time.Millisecond)
	s1.End()
	s2 := tr.StartSpan("task", "run", L("task", "0"))
	clk.advance(time.Second)
	tr.Mark("timeline", "segue_commence")
	_ = s2 // left open on purpose
	return hub
}

type steppingClock struct{ now time.Time }

func (c *steppingClock) Now() time.Time          { return c.now }
func (c *steppingClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func TestReportJSONGolden(t *testing.T) {
	got, err := buildSampleHub().Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestReportDeterministic(t *testing.T) {
	a, err := buildSampleHub().Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSampleHub().Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two identically-built hubs produced different JSON reports")
	}
}

func TestPrometheusExport(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleHub().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`tasks_total{kind="lambda"} 5`,
		`tasks_total{kind="vm"} 3`,
		`live 2`,
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="10"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		`latency_seconds_count 4`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanIDsFollowStartOrder(t *testing.T) {
	hub := New(testClock(origin))
	tr := hub.Tracer()
	var spans []*Span
	for i := 0; i < 5; i++ {
		spans = append(spans, tr.StartSpan("c", "s"))
	}
	// End out of order: IDs must still reflect start order.
	spans[3].End()
	spans[0].End()
	for i, s := range tr.Spans() {
		if s.ID != i {
			t.Fatalf("span %d has ID %d, want start-ordered IDs", i, s.ID)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	clk := &steppingClock{now: origin}
	tr := New(clk).Tracer()
	s := tr.StartSpan("c", "s")
	clk.advance(time.Second)
	s.End()
	first := tr.Spans()[0].Finish
	clk.advance(time.Minute)
	s.End() // must not move the finish time
	if got := tr.Spans()[0].Finish; !got.Equal(first) {
		t.Errorf("second End() moved finish time from %v to %v", first, got)
	}
}
