// Package telemetry is the simulator's structured observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms keyed by
// name and labels), and a span tracer that rides the virtual clock so
// every trace is deterministic — two runs with the same seed produce
// byte-identical exports.
//
// Hot-path discipline: instrument handles are resolved once at component
// setup (a mutex-guarded map lookup) and afterwards every Add/Set/Observe
// is a handful of atomic operations with zero allocations, so recording a
// counter inside the task inner loop costs nanoseconds. All instrument
// methods are nil-receiver safe, which lets components run untelemetered
// (tests, library users) without guarding every call site.
//
// Two exporters read the same state: a Prometheus-style text dump and a
// JSON "run report" (see export.go), both surfaced through the -report
// flag on splitserve-sim and splitserve-bench.
package telemetry

import (
	"sort"
	"strings"
	"time"
)

// Clock is the time source for spans — satisfied by *simclock.Clock, so
// traces advance in virtual time and stay deterministic.
type Clock interface {
	Now() time.Time
}

// staticClock is a Clock pinned at one instant (for logs replayed from
// explicit event timestamps, where the convenience Now is never the
// authority).
type staticClock time.Time

func (c staticClock) Now() time.Time { return time.Time(c) }

// StaticClock returns a Clock frozen at t.
func StaticClock(t time.Time) Clock { return staticClock(t) }

// Label is one key=value metric or span dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// sortLabels returns a sorted copy (instruments and spans keep their
// labels sorted so exports are stable regardless of call-site order).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey serialises sorted labels for registry keying.
func labelKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Hub bundles one run's registry and tracer. A nil *Hub is a valid no-op
// sink: every method returns nil handles whose operations do nothing.
type Hub struct {
	reg *Registry
	tr  *Tracer
}

// New returns a Hub whose tracer reads time from clock.
func New(clock Clock) *Hub {
	return &Hub{reg: NewRegistry(), tr: NewTracer(clock)}
}

// Registry returns the metrics registry (nil on a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Tracer returns the span tracer (nil on a nil hub).
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tr
}

// Counter resolves (creating on first use) a counter handle.
func (h *Hub) Counter(name string, labels ...Label) *Counter {
	if h == nil {
		return nil
	}
	return h.reg.Counter(name, labels...)
}

// Gauge resolves (creating on first use) a gauge handle.
func (h *Hub) Gauge(name string, labels ...Label) *Gauge {
	if h == nil {
		return nil
	}
	return h.reg.Gauge(name, labels...)
}

// Histogram resolves (creating on first use) a histogram handle with the
// given bucket upper bounds (nil = DefBuckets).
func (h *Hub) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if h == nil {
		return nil
	}
	return h.reg.Histogram(name, bounds, labels...)
}
