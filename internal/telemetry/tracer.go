package telemetry

import (
	"sync"
	"time"
)

// Tracer records spans (intervals) and marks (instants) against the
// virtual clock. Span IDs are assigned in start order, so a deterministic
// simulation produces an identical trace every run regardless of the
// order in which spans later end.
type Tracer struct {
	clock Clock
	start time.Time

	mu    sync.Mutex
	seq   int
	spans []*Span
	marks []Mark
}

// NewTracer returns a Tracer whose origin instant is clock.Now().
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock, start: clock.Now()}
}

// Origin returns the trace's time zero.
func (t *Tracer) Origin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span is one timed interval: an executor lifetime, a task execution, a
// VM boot. Finish is meaningful only once Open is false.
type Span struct {
	ID        int
	Component string
	Name      string
	Attrs     []Label
	Start     time.Time
	Finish    time.Time
	Open      bool

	tr *Tracer
}

// Mark is one instant event (segue commencement, VM request, ...).
type Mark struct {
	Component string
	Name      string
	Attrs     []Label
	At        time.Time
}

// StartSpan opens a span at the current virtual time.
func (t *Tracer) StartSpan(component, name string, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpanAt(t.clock.Now(), component, name, attrs...)
}

// StartSpanAt opens a span at an explicit instant (event logs that carry
// their own timestamps bridge through this).
func (t *Tracer) StartSpanAt(at time.Time, component, name string, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		ID:        t.seq,
		Component: component,
		Name:      name,
		Attrs:     sortLabels(attrs),
		Start:     at,
		Open:      true,
		tr:        t,
	}
	t.seq++
	t.spans = append(t.spans, s)
	return s
}

// End closes the span at the current virtual time. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.clock.Now())
}

// EndAt closes the span at an explicit instant. Idempotent: only the
// first close sticks.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.Open {
		return
	}
	s.Open = false
	s.Finish = at
}

// Attr returns the value of one span attribute ("" if absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	for _, l := range s.Attrs {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Mark records an instant event at the current virtual time.
func (t *Tracer) Mark(component, name string, attrs ...Label) {
	if t == nil {
		return
	}
	t.MarkAt(t.clock.Now(), component, name, attrs...)
}

// MarkAt records an instant event at an explicit instant.
func (t *Tracer) MarkAt(at time.Time, component, name string, attrs ...Label) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.marks = append(t.marks, Mark{
		Component: component,
		Name:      name,
		Attrs:     sortLabels(attrs),
		At:        at,
	})
}

// Spans returns a snapshot of all spans in start order. The returned
// values are copies; still-open spans have Open=true and a zero Finish.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		out[i].tr = nil
	}
	return out
}

// Marks returns a snapshot of all marks in record order.
func (t *Tracer) Marks() []Mark {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Mark(nil), t.marks...)
}
