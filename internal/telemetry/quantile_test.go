package telemetry

import (
	"bytes"
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestQuantileUniform checks the estimator against a uniform distribution:
// 100 observations evenly spread over (0, 100] with bounds every 10 —
// linear interpolation should recover the exact quantiles (to bucket
// resolution).
func TestQuantileUniform(t *testing.T) {
	hub := New(testClock(origin))
	h := hub.Histogram("uniform", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	hs := h.Snapshot()
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {0.10, 10}, {1.00, 100},
	} {
		if got := hs.Quantile(tc.q); !almostEqual(got, tc.want, 1.0) {
			t.Errorf("uniform q=%.2f: got %.2f want %.2f", tc.q, got, tc.want)
		}
	}
	if hs.P50 != hs.Quantile(0.50) || hs.P95 != hs.Quantile(0.95) || hs.P99 != hs.Quantile(0.99) {
		t.Error("snapshot P50/P95/P99 disagree with Quantile()")
	}
}

// TestQuantileSkewed puts 90 observations in the first bucket and 10 in
// the last: p50 interpolates inside the first bucket, p99 inside the last.
func TestQuantileSkewed(t *testing.T) {
	hub := New(testClock(origin))
	h := hub.Histogram("skewed", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	hs := h.Snapshot()
	// p50: rank 50 of 90 in bucket (0,1] -> 50/90 of the way through.
	if got, want := hs.Quantile(0.50), 50.0/90.0; !almostEqual(got, want, 1e-9) {
		t.Errorf("skewed p50: got %v want %v", got, want)
	}
	// p99: rank 99; first 90 in bucket 1, so 9/10 into bucket (10,100].
	if got, want := hs.Quantile(0.99), 10+90*0.9; !almostEqual(got, want, 1e-9) {
		t.Errorf("skewed p99: got %v want %v", got, want)
	}
}

// TestQuantileOverflowClamps puts mass past the last finite bound: the
// estimate clamps there rather than extrapolating to +Inf.
func TestQuantileOverflowClamps(t *testing.T) {
	hub := New(testClock(origin))
	h := hub.Histogram("overflow", []float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(1000) // all in the +Inf bucket
	}
	hs := h.Snapshot()
	if got := hs.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99: got %v want 2 (clamped to largest finite bound)", got)
	}
}

func TestQuantileEmptyAndNil(t *testing.T) {
	hub := New(testClock(origin))
	h := hub.Histogram("empty", []float64{1, 2})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile: got %v want 0", got)
	}
	var nilH *Histogram
	if hs := nilH.Snapshot(); hs.Count != 0 || hs.Quantile(0.5) != 0 {
		t.Error("nil histogram Snapshot should be zero-valued")
	}
}

// TestQuantilesInReports asserts the estimates surface in both exporters.
func TestQuantilesInReports(t *testing.T) {
	hub := New(testClock(origin))
	h := hub.Histogram("latency_q_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	data, err := hub.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50"`, `"p95"`, `"p99"`, `"p999"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("JSON report missing %s", want)
		}
	}
	var buf bytes.Buffer
	if err := hub.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"latency_q_seconds_p50 ", "latency_q_seconds_p95 ", "latency_q_seconds_p99 ", "latency_q_seconds_p999 "} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}
