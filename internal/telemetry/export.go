package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Report is a serialisable snapshot of one run's telemetry. All slices
// are sorted (instruments by name+labels, spans by ID, marks by time
// then record order) and all instants are virtual-time offsets from the
// trace origin, so a deterministic simulation yields a byte-identical
// report every run.
type Report struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Spans      []SpanSnapshot      `json:"spans"`
	Marks      []MarkSnapshot      `json:"marks"`
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnapshot is one histogram's exported state. Buckets are
// cumulative counts per upper bound, Prometheus-style; the final
// implicit +Inf bucket equals Count.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Bounds  []float64         `json:"bounds"`
	Buckets []uint64          `json:"buckets"`
}

// SpanSnapshot is one span's exported state. Start/End are microsecond
// offsets from the trace origin in virtual time; End is null while the
// span is open.
type SpanSnapshot struct {
	ID        int               `json:"id"`
	Component string            `json:"component"`
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	StartUS   int64             `json:"start_us"`
	EndUS     *int64            `json:"end_us"`
	Open      bool              `json:"open,omitempty"`
}

// MarkSnapshot is one instant event's exported state.
type MarkSnapshot struct {
	Component string            `json:"component"`
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	AtUS      int64             `json:"at_us"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Report captures the hub's current state as a deterministic snapshot.
func (h *Hub) Report() *Report {
	rep := &Report{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
		Spans:      []SpanSnapshot{},
		Marks:      []MarkSnapshot{},
	}
	if h == nil {
		return rep
	}

	h.reg.mu.Lock()
	counterKeys := make([]string, 0, len(h.reg.counters))
	for k := range h.reg.counters {
		counterKeys = append(counterKeys, k)
	}
	gaugeKeys := make([]string, 0, len(h.reg.gauges))
	for k := range h.reg.gauges {
		gaugeKeys = append(gaugeKeys, k)
	}
	histKeys := make([]string, 0, len(h.reg.hists))
	for k := range h.reg.hists {
		histKeys = append(histKeys, k)
	}
	sort.Strings(counterKeys)
	sort.Strings(gaugeKeys)
	sort.Strings(histKeys)
	counters := make([]*Counter, len(counterKeys))
	for i, k := range counterKeys {
		counters[i] = h.reg.counters[k]
	}
	gauges := make([]*Gauge, len(gaugeKeys))
	for i, k := range gaugeKeys {
		gauges[i] = h.reg.gauges[k]
	}
	hists := make([]*Histogram, len(histKeys))
	for i, k := range histKeys {
		hists[i] = h.reg.hists[k]
	}
	h.reg.mu.Unlock()

	for _, c := range counters {
		rep.Counters = append(rep.Counters, CounterSnapshot{
			Name: c.name, Labels: labelMap(c.labels), Value: c.Value(),
		})
	}
	for _, g := range gauges {
		rep.Gauges = append(rep.Gauges, GaugeSnapshot{
			Name: g.name, Labels: labelMap(g.labels), Value: g.Value(),
		})
	}
	for _, hst := range hists {
		rep.Histograms = append(rep.Histograms, HistogramSnapshot{
			Name:    hst.name,
			Labels:  labelMap(hst.labels),
			Count:   hst.Count(),
			Sum:     hst.Sum(),
			Bounds:  hst.Bounds(),
			Buckets: cumulative(hst.BucketCounts()),
		})
	}

	origin := h.tr.Origin()
	us := func(t time.Time) int64 { return t.Sub(origin).Microseconds() }
	for _, s := range h.tr.Spans() {
		snap := SpanSnapshot{
			ID:        s.ID,
			Component: s.Component,
			Name:      s.Name,
			Labels:    labelMap(s.Attrs),
			StartUS:   us(s.Start),
			Open:      s.Open,
		}
		if !s.Open {
			end := us(s.Finish)
			snap.EndUS = &end
		}
		rep.Spans = append(rep.Spans, snap)
	}
	for _, m := range h.tr.Marks() {
		rep.Marks = append(rep.Marks, MarkSnapshot{
			Component: m.Component,
			Name:      m.Name,
			Labels:    labelMap(m.Attrs),
			AtUS:      us(m.At),
		})
	}
	return rep
}

// cumulative converts per-bucket counts to cumulative counts.
func cumulative(counts []uint64) []uint64 {
	out := make([]uint64, len(counts))
	var run uint64
	for i, c := range counts {
		run += c
		out[i] = run
	}
	return out
}

// JSON renders the report as indented, key-sorted JSON. Two identical
// runs produce byte-identical output.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WritePrometheus writes the registry portion of the hub's state in the
// Prometheus text exposition format (metrics only; spans and marks are
// JSON-report concerns).
func (h *Hub) WritePrometheus(w io.Writer) error {
	rep := h.Report()
	for _, c := range rep.Counters {
		if err := writeProm(w, c.Name, c.Labels, "", c.Value); err != nil {
			return err
		}
	}
	for _, g := range rep.Gauges {
		if err := writeProm(w, g.Name, g.Labels, "", g.Value); err != nil {
			return err
		}
	}
	for _, hs := range rep.Histograms {
		for i, bound := range hs.Bounds {
			lbl := cloneLabels(hs.Labels)
			lbl["le"] = formatFloat(bound)
			if err := writeProm(w, hs.Name, lbl, "_bucket", float64(hs.Buckets[i])); err != nil {
				return err
			}
		}
		lbl := cloneLabels(hs.Labels)
		lbl["le"] = "+Inf"
		if err := writeProm(w, hs.Name, lbl, "_bucket", float64(hs.Count)); err != nil {
			return err
		}
		if err := writeProm(w, hs.Name, hs.Labels, "_sum", hs.Sum); err != nil {
			return err
		}
		if err := writeProm(w, hs.Name, hs.Labels, "_count", float64(hs.Count)); err != nil {
			return err
		}
	}
	return nil
}

func cloneLabels(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

func writeProm(w io.Writer, name string, labels map[string]string, suffix string, value float64) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(labels[k])
			b.WriteString(`"`)
		}
		b.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %v\n", b.String(), value)
	return err
}
