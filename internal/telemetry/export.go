package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Report is a serialisable snapshot of one run's telemetry. All slices
// are sorted (instruments by name+labels, spans by ID, marks by time
// then record order) and all instants are virtual-time offsets from the
// trace origin, so a deterministic simulation yields a byte-identical
// report every run.
type Report struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Spans      []SpanSnapshot      `json:"spans"`
	Marks      []MarkSnapshot      `json:"marks"`
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnapshot is one histogram's exported state. Buckets are
// cumulative counts per upper bound, Prometheus-style; the final
// implicit +Inf bucket equals Count. P50/P95/P99/P999 are quantile
// estimates by linear interpolation within buckets (see Quantile).
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Bounds  []float64         `json:"bounds"`
	Buckets []uint64          `json:"buckets"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	P999    float64           `json:"p999"`
}

// Quantile estimates the q-quantile (q in [0,1]) the way Prometheus'
// histogram_quantile does: find the bucket containing the target rank and
// interpolate linearly within it (lower edge 0 for the first bucket). A
// rank falling in the implicit +Inf bucket clamps to the largest finite
// bound — the estimator cannot see past it. Returns 0 for an empty
// histogram.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	// Buckets may carry one extra entry (the +Inf bucket); only the finite
	// buckets are interpolable.
	for i := 0; i < len(hs.Buckets) && i < len(hs.Bounds); i++ {
		c := hs.Buckets[i]
		if float64(c) < rank {
			continue
		}
		lo := 0.0
		var prev uint64
		if i > 0 {
			lo = hs.Bounds[i-1]
			prev = hs.Buckets[i-1]
		}
		hi := hs.Bounds[i]
		in := float64(c - prev)
		if in == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/in
	}
	return hs.Bounds[len(hs.Bounds)-1]
}

// fillQuantiles populates the snapshot's P50/P95/P99/P999 estimates.
func (hs *HistogramSnapshot) fillQuantiles() {
	hs.P50 = hs.Quantile(0.50)
	hs.P95 = hs.Quantile(0.95)
	hs.P99 = hs.Quantile(0.99)
	hs.P999 = hs.Quantile(0.999)
}

// SpanSnapshot is one span's exported state. Start/End are microsecond
// offsets from the trace origin in virtual time; End is null while the
// span is open.
type SpanSnapshot struct {
	ID        int               `json:"id"`
	Component string            `json:"component"`
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	StartUS   int64             `json:"start_us"`
	EndUS     *int64            `json:"end_us"`
	Open      bool              `json:"open,omitempty"`
}

// MarkSnapshot is one instant event's exported state.
type MarkSnapshot struct {
	Component string            `json:"component"`
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	AtUS      int64             `json:"at_us"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Report captures the hub's current state as a deterministic snapshot.
func (h *Hub) Report() *Report {
	rep := &Report{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
		Spans:      []SpanSnapshot{},
		Marks:      []MarkSnapshot{},
	}
	if h == nil {
		return rep
	}

	h.reg.mu.Lock()
	counterKeys := make([]string, 0, len(h.reg.counters))
	for k := range h.reg.counters {
		counterKeys = append(counterKeys, k)
	}
	gaugeKeys := make([]string, 0, len(h.reg.gauges))
	for k := range h.reg.gauges {
		gaugeKeys = append(gaugeKeys, k)
	}
	histKeys := make([]string, 0, len(h.reg.hists))
	for k := range h.reg.hists {
		histKeys = append(histKeys, k)
	}
	sort.Strings(counterKeys)
	sort.Strings(gaugeKeys)
	sort.Strings(histKeys)
	counters := make([]*Counter, len(counterKeys))
	for i, k := range counterKeys {
		counters[i] = h.reg.counters[k]
	}
	gauges := make([]*Gauge, len(gaugeKeys))
	for i, k := range gaugeKeys {
		gauges[i] = h.reg.gauges[k]
	}
	hists := make([]*Histogram, len(histKeys))
	for i, k := range histKeys {
		hists[i] = h.reg.hists[k]
	}
	h.reg.mu.Unlock()

	for _, c := range counters {
		rep.Counters = append(rep.Counters, CounterSnapshot{
			Name: c.name, Labels: labelMap(c.labels), Value: c.Value(),
		})
	}
	for _, g := range gauges {
		rep.Gauges = append(rep.Gauges, GaugeSnapshot{
			Name: g.name, Labels: labelMap(g.labels), Value: g.Value(),
		})
	}
	for _, hst := range hists {
		rep.Histograms = append(rep.Histograms, hst.Snapshot())
	}

	origin := h.tr.Origin()
	us := func(t time.Time) int64 { return t.Sub(origin).Microseconds() }
	for _, s := range h.tr.Spans() {
		snap := SpanSnapshot{
			ID:        s.ID,
			Component: s.Component,
			Name:      s.Name,
			Labels:    labelMap(s.Attrs),
			StartUS:   us(s.Start),
			Open:      s.Open,
		}
		if !s.Open {
			end := us(s.Finish)
			snap.EndUS = &end
		}
		rep.Spans = append(rep.Spans, snap)
	}
	for _, m := range h.tr.Marks() {
		rep.Marks = append(rep.Marks, MarkSnapshot{
			Component: m.Component,
			Name:      m.Name,
			Labels:    labelMap(m.Attrs),
			AtUS:      us(m.At),
		})
	}
	return rep
}

// Snapshot exports the histogram's current state, including quantile
// estimates. Nil-safe (a zero-valued snapshot on a nil handle).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	hs := HistogramSnapshot{
		Name:    h.name,
		Labels:  labelMap(h.labels),
		Count:   h.Count(),
		Sum:     h.Sum(),
		Bounds:  h.Bounds(),
		Buckets: cumulative(h.BucketCounts()),
	}
	hs.fillQuantiles()
	return hs
}

// cumulative converts per-bucket counts to cumulative counts.
func cumulative(counts []uint64) []uint64 {
	out := make([]uint64, len(counts))
	var run uint64
	for i, c := range counts {
		run += c
		out[i] = run
	}
	return out
}

// JSON renders the report as indented, key-sorted JSON. Two identical
// runs produce byte-identical output.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WritePrometheus writes the registry portion of the hub's state in the
// Prometheus text exposition format (metrics only; spans and marks are
// JSON-report concerns).
func (h *Hub) WritePrometheus(w io.Writer) error {
	rep := h.Report()
	for _, c := range rep.Counters {
		if err := writeProm(w, c.Name, c.Labels, "", c.Value); err != nil {
			return err
		}
	}
	for _, g := range rep.Gauges {
		if err := writeProm(w, g.Name, g.Labels, "", g.Value); err != nil {
			return err
		}
	}
	for _, hs := range rep.Histograms {
		for i, bound := range hs.Bounds {
			lbl := cloneLabels(hs.Labels)
			lbl["le"] = formatFloat(bound)
			if err := writeProm(w, hs.Name, lbl, "_bucket", float64(hs.Buckets[i])); err != nil {
				return err
			}
		}
		lbl := cloneLabels(hs.Labels)
		lbl["le"] = "+Inf"
		if err := writeProm(w, hs.Name, lbl, "_bucket", float64(hs.Count)); err != nil {
			return err
		}
		if err := writeProm(w, hs.Name, hs.Labels, "_sum", hs.Sum); err != nil {
			return err
		}
		if err := writeProm(w, hs.Name, hs.Labels, "_count", float64(hs.Count)); err != nil {
			return err
		}
		// Quantile estimates as suffixed gauges (not {quantile=...} labels,
		// which would read as a native summary type to scrapers).
		if err := writeProm(w, hs.Name, hs.Labels, "_p50", hs.P50); err != nil {
			return err
		}
		if err := writeProm(w, hs.Name, hs.Labels, "_p95", hs.P95); err != nil {
			return err
		}
		if err := writeProm(w, hs.Name, hs.Labels, "_p99", hs.P99); err != nil {
			return err
		}
		if err := writeProm(w, hs.Name, hs.Labels, "_p999", hs.P999); err != nil {
			return err
		}
	}
	return nil
}

func cloneLabels(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

func writeProm(w io.Writer, name string, labels map[string]string, suffix string, value float64) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(labels[k])
			b.WriteString(`"`)
		}
		b.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %v\n", b.String(), value)
	return err
}
