package simclock

import "container/heap"

// eventHeap is a binary min-heap of events ordered by (key, seq) — earliest
// instant first, scheduling order within an instant. It maintains
// event.index so entries can be found in O(1) and marked dead (-1) when
// removed. It backs the heap-indexed Clock (NewHeapBacked) and serves as
// the wheel's near-term ready queue and far-future overflow queue.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil // let the event be collected once fired
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// compactHeap removes every ghost (fn == nil) entry from h in place,
// reindexes the survivors, and restores the heap invariant. Returns the
// number of entries removed.
func compactHeap(h *eventHeap) int {
	kept := (*h)[:0]
	for _, ev := range *h {
		if ev.fn != nil {
			kept = append(kept, ev)
		} else {
			ev.index = -1
		}
	}
	removed := len(*h) - len(kept)
	for i := len(kept); i < len(*h); i++ {
		(*h)[i] = nil
	}
	*h = kept
	for i, ev := range kept {
		ev.index = i
	}
	heap.Init(h)
	return removed
}

// heapQueue is the original binary-heap event index, kept as the reference
// implementation behind NewHeapBacked so the differential property test,
// the fuzz harness, and the cross-implementation goldens can pin the timer
// wheel's observable behavior against it.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) popMin() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) peekMin() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) compact() int { return compactHeap(&q.h) }
