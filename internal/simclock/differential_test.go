package simclock

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// The differential harness runs the same randomized program of
// schedule/cancel/reschedule/step operations against a heap-backed clock
// and a wheel-backed clock and requires every observable — firing order,
// virtual time, and all the perfstat counters — to match exactly. This is
// the correctness bar the timer wheel ships under: not "close enough",
// byte-for-byte the same simulation.

// clockPair drives the two implementations in lockstep.
type clockPair struct {
	heap, wheel *Clock
	// firing log entries are appended by the scheduled closures; both
	// clocks append tagged entries so order mismatches localize.
	heapLog, wheelLog []string
	heapTimers        []*Timer
	wheelTimers       []*Timer
}

func newClockPair() *clockPair {
	return &clockPair{heap: NewHeapBacked(Epoch), wheel: New(Epoch)}
}

func (p *clockPair) schedule(d time.Duration) {
	id := len(p.heapTimers)
	p.heapTimers = append(p.heapTimers, p.heap.After(d, func() {
		p.heapLog = append(p.heapLog, fmt.Sprintf("%d@%d", id, p.heap.Since(Epoch)))
	}))
	p.wheelTimers = append(p.wheelTimers, p.wheel.After(d, func() {
		p.wheelLog = append(p.wheelLog, fmt.Sprintf("%d@%d", id, p.wheel.Since(Epoch)))
	}))
}

func (p *clockPair) cancel(i int) {
	if len(p.heapTimers) == 0 {
		return
	}
	i %= len(p.heapTimers)
	got, want := p.wheelTimers[i].Cancel(), p.heapTimers[i].Cancel()
	if got != want {
		panic(fmt.Sprintf("Cancel(timer %d): wheel=%v heap=%v", i, got, want))
	}
}

func (p *clockPair) reschedule(i int, d time.Duration) {
	if len(p.heapTimers) == 0 {
		return
	}
	i %= len(p.heapTimers)
	got, want := p.wheelTimers[i].Reschedule(d), p.heapTimers[i].Reschedule(d)
	if got != want {
		panic(fmt.Sprintf("Reschedule(timer %d): wheel=%v heap=%v", i, got, want))
	}
}

func (p *clockPair) step() {
	got, want := p.wheel.Step(), p.heap.Step()
	if got != want {
		panic(fmt.Sprintf("Step: wheel=%v heap=%v", got, want))
	}
}

func (p *clockPair) runFor(d time.Duration) {
	p.heap.RunFor(d)
	p.wheel.RunFor(d)
}

// check compares every observable of the two clocks.
func (p *clockPair) check() error {
	h, w := p.heap, p.wheel
	if !h.Now().Equal(w.Now()) {
		return fmt.Errorf("Now: heap=%s wheel=%s", h.Now(), w.Now())
	}
	type obs struct {
		fired, cancelled, compactions uint64
		pending, ghosts, highWater    int
	}
	ho := obs{h.Fired(), h.Cancelled(), h.Compactions(), h.Pending(), h.Ghosts(), h.HeapHighWater()}
	wo := obs{w.Fired(), w.Cancelled(), w.Compactions(), w.Pending(), w.Ghosts(), w.HeapHighWater()}
	if ho != wo {
		return fmt.Errorf("counters: heap=%+v wheel=%+v", ho, wo)
	}
	if len(p.heapLog) != len(p.wheelLog) {
		return fmt.Errorf("firing log length: heap=%d wheel=%d", len(p.heapLog), len(p.wheelLog))
	}
	for i := range p.heapLog {
		if p.heapLog[i] != p.wheelLog[i] {
			return fmt.Errorf("firing log entry %d: heap=%q wheel=%q", i, p.heapLog[i], p.wheelLog[i])
		}
	}
	return nil
}

// randomDelay draws delays spanning every wheel regime: sub-tick, within
// the level-0 window, across each cascade level, and past the overflow
// horizon (2^32 ticks ≈ 2^52 ns).
func randomDelay(rng *rand.Rand) time.Duration {
	exp := rng.Intn(56) // up to ~2^55 ns > overflow horizon
	d := time.Duration(rng.Int63n(1 << uint(exp)))
	if rng.Intn(16) == 0 {
		d = -d // exercise the clamp-to-now path
	}
	return d
}

// runProgram executes a seeded ~200-op random program on a fresh pair,
// verifying observables after every operation, then drains both clocks.
func runProgram(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	p := newClockPair()
	ops := 150 + rng.Intn(100)
	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // bias toward scheduling so queues stay populated
			p.schedule(randomDelay(rng))
		case 4, 5:
			p.cancel(rng.Intn(1 << 20))
		case 6:
			p.reschedule(rng.Intn(1<<20), randomDelay(rng))
		case 7, 8:
			p.step()
		case 9:
			p.runFor(randomDelay(rng))
		}
		if err := p.check(); err != nil {
			return fmt.Errorf("seed %d op %d: %w", seed, op, err)
		}
	}
	for p.heap.Pending() > 0 || p.wheel.Pending() > 0 {
		p.step()
		if err := p.check(); err != nil {
			return fmt.Errorf("seed %d drain: %w", seed, err)
		}
	}
	return nil
}

// TestWheelHeapEquivalence is the differential property test: for any
// seed, the wheel and the heap produce identical firing order and
// identical ghost/cancelled/high-water/compaction counters.
func TestWheelHeapEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		if err := runProgram(seed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWheelHeapEquivalenceCancelHeavy pins the compaction path: mass
// cancellations must trigger the same number of compactions on both
// implementations and leave identical ghost counts.
func TestWheelHeapEquivalenceCancelHeavy(t *testing.T) {
	p := newClockPair()
	for round := 0; round < 10; round++ {
		for i := 0; i < 1000; i++ {
			p.schedule(time.Duration(i+1) * 700 * time.Microsecond * time.Duration(round+1))
		}
		base := len(p.heapTimers) - 1000
		for i := 0; i < 990; i++ {
			p.cancel(base + i)
		}
		if err := p.check(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if p.heap.Compactions() == 0 {
		t.Fatal("cancel-heavy program triggered no compactions; the test lost its teeth")
	}
	for p.heap.Pending() > 0 {
		p.step()
	}
	if err := p.check(); err != nil {
		t.Fatal(err)
	}
}
