package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAfterFiresInOrder(t *testing.T) {
	c := New(Epoch)
	var got []int
	c.After(3*time.Second, func() { got = append(got, 3) })
	c.After(1*time.Second, func() { got = append(got, 1) })
	c.After(2*time.Second, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Since(Epoch) != 3*time.Second {
		t.Fatalf("clock advanced to %v, want 3s", c.Since(Epoch))
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := New(Epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Second, func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New(Epoch)
	var done bool
	c.After(time.Second, func() {
		c.After(time.Second, func() {
			c.After(time.Second, func() { done = true })
		})
	})
	c.Run()
	if !done {
		t.Fatal("nested events did not fire")
	}
	if got := c.Since(Epoch); got != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", got)
	}
}

func TestCancel(t *testing.T) {
	c := New(Epoch)
	fired := false
	tm := c.After(time.Second, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel reported not pending")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	c := New(Epoch)
	tm := c.After(0, func() {})
	c.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after fire reported pending")
	}
}

func TestTimerWhen(t *testing.T) {
	c := New(Epoch)
	tm := c.After(5*time.Second, func() {})
	at, ok := tm.When()
	if !ok || !at.Equal(Epoch.Add(5*time.Second)) {
		t.Fatalf("When = %v %v", at, ok)
	}
	tm.Cancel()
	if _, ok := tm.When(); ok {
		t.Fatal("When after cancel reported pending")
	}
}

func TestRunUntil(t *testing.T) {
	c := New(Epoch)
	var got []int
	c.After(1*time.Second, func() { got = append(got, 1) })
	c.After(5*time.Second, func() { got = append(got, 5) })
	c.RunUntil(Epoch.Add(2 * time.Second))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RunUntil fired %v", got)
	}
	if c.Since(Epoch) != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", c.Since(Epoch))
	}
	c.Run()
	if len(got) != 2 {
		t.Fatalf("remaining event did not fire: %v", got)
	}
}

func TestRunFor(t *testing.T) {
	c := New(Epoch)
	n := 0
	c.After(time.Second, func() { n++ })
	c.After(3*time.Second, func() { n++ })
	c.RunFor(2 * time.Second)
	if n != 1 {
		t.Fatalf("RunFor fired %d events, want 1", n)
	}
}

func TestRunWhile(t *testing.T) {
	c := New(Epoch)
	n := 0
	for i := 0; i < 100; i++ {
		c.After(time.Duration(i)*time.Second, func() { n++ })
	}
	c.RunWhile(func() bool { return n < 10 })
	if n != 10 {
		t.Fatalf("RunWhile fired %d, want 10", n)
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	c := New(Epoch)
	c.After(10*time.Second, func() {
		c.At(Epoch, func() {}) // in the past
	})
	c.Run()
	if got := c.Since(Epoch); got != 10*time.Second {
		t.Fatalf("clock moved backwards or past event mis-scheduled: %v", got)
	}
}

func TestPendingAndFired(t *testing.T) {
	c := New(Epoch)
	c.After(time.Second, func() {})
	c.After(2*time.Second, func() {})
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", c.Pending())
	}
	c.Run()
	if c.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", c.Fired())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending after run = %d", c.Pending())
	}
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil func")
		}
	}()
	New(Epoch).After(time.Second, nil)
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestQuickEventOrdering(t *testing.T) {
	prop := func(delaysMS []uint16) bool {
		c := New(Epoch)
		var fireTimes []time.Time
		var maxAt time.Time = Epoch
		for _, d := range delaysMS {
			at := Epoch.Add(time.Duration(d) * time.Millisecond)
			if at.After(maxAt) {
				maxAt = at
			}
			c.After(time.Duration(d)*time.Millisecond, func() {
				fireTimes = append(fireTimes, c.Now())
			})
		}
		c.Run()
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i].Before(fireTimes[i-1]) {
				return false
			}
		}
		return c.Now().Equal(maxAt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to
// fire.
func TestQuickCancelSubset(t *testing.T) {
	prop := func(delaysMS []uint16, cancelMask []bool) bool {
		c := New(Epoch)
		fired := 0
		var timers []*Timer
		for _, d := range delaysMS {
			timers = append(timers, c.After(time.Duration(d)*time.Millisecond, func() { fired++ }))
		}
		cancelled := 0
		for i, tm := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				if tm.Cancel() {
					cancelled++
				}
			}
		}
		c.Run()
		return fired == len(delaysMS)-cancelled
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelCounters(t *testing.T) {
	c := New(Epoch)
	tm1 := c.After(time.Second, func() {})
	tm2 := c.After(2*time.Second, func() {})
	tm1.Cancel()
	tm1.Cancel() // second cancel is a no-op
	if got := c.Cancelled(); got != 1 {
		t.Fatalf("Cancelled = %d, want 1", got)
	}
	if got := c.Ghosts(); got != 1 {
		t.Fatalf("Ghosts = %d, want 1", got)
	}
	c.Run()
	if got := c.Ghosts(); got != 0 {
		t.Fatalf("Ghosts after Run = %d, want 0 (popped lazily)", got)
	}
	_ = tm2
	if got := c.HeapHighWater(); got != 2 {
		t.Fatalf("HeapHighWater = %d, want 2", got)
	}
}

// TestGhostEntriesBounded is the regression test for the lazy-discard
// path: a cancel-heavy workload (10k armed-then-cancelled timers per
// round, all far in the virtual future so they are never popped) must not
// grow ghost heap entries unboundedly across Step calls — compaction has
// to shed them.
func TestGhostEntriesBounded(t *testing.T) {
	c := New(Epoch)
	const rounds, perRound = 10, 10_000
	fired := 0
	for r := 0; r < rounds; r++ {
		timers := make([]*Timer, 0, perRound)
		for i := 0; i < perRound; i++ {
			timers = append(timers, c.After(time.Hour, func() { t.Fatal("cancelled timer fired") }))
		}
		for _, tm := range timers {
			if !tm.Cancel() {
				t.Fatal("Cancel reported not pending")
			}
		}
		c.After(time.Millisecond, func() { fired++ })
		if !c.Step() {
			t.Fatal("Step found no live event")
		}
		// Live events never exceed perRound+1, so a bounded heap means
		// ghosts are being compacted away rather than accumulating
		// round over round.
		if g := c.Ghosts(); g > perRound+1 {
			t.Fatalf("round %d: %d ghost entries — compaction not keeping up", r, g)
		}
		if n := c.Pending(); n > perRound+1 {
			t.Fatalf("round %d: heap holds %d entries for 0 live timers", r, n)
		}
	}
	if fired != rounds {
		t.Fatalf("fired %d live events, want %d", fired, rounds)
	}
	if c.Cancelled() != rounds*perRound {
		t.Fatalf("Cancelled = %d, want %d", c.Cancelled(), rounds*perRound)
	}
	if c.Compactions() == 0 {
		t.Fatal("expected at least one heap compaction")
	}
}

type stepRecorder struct {
	steps []time.Duration
}

func (r *stepRecorder) ObserveStep(d time.Duration) { r.steps = append(r.steps, d) }

func TestStepObserver(t *testing.T) {
	c := New(Epoch)
	rec := &stepRecorder{}
	c.SetStepObserver(rec)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.After(time.Duration(i)*time.Second, func() { got = append(got, i) })
	}
	c.Run()
	if len(rec.steps) != 5 {
		t.Fatalf("observed %d steps, want 5", len(rec.steps))
	}
	for i := range got { // observation must not perturb firing order
		if got[i] != i {
			t.Fatalf("order with observer = %v", got)
		}
	}
	c.SetStepObserver(nil)
	c.After(time.Second, func() {})
	c.Run()
	if len(rec.steps) != 5 {
		t.Fatalf("observer fired after removal: %d", len(rec.steps))
	}
}
