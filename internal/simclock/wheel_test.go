package simclock

import (
	"testing"
	"time"
)

const tick = time.Duration(1) << tickShift // one wheel tick in ns

// TestWheelBoundaries schedules events straddling every wheel boundary —
// slot rollover at 256 ticks, level-2 and level-3 cascades, and the
// overflow horizon — and verifies global firing order.
func TestWheelBoundaries(t *testing.T) {
	delays := []time.Duration{
		0,
		time.Nanosecond,
		tick - 1, tick, tick + 1, // first slot boundary
		255 * tick, 256 * tick, 257 * tick, // level-0 window rollover
		65535 * tick, 65536 * tick, 65537 * tick, // level-1 rollover
		(1<<24 - 1) * tick, (1 << 24) * tick, // level-2 rollover
		(1<<32 - 1) * tick, // last in-wheel tick
		(1 << 32) * tick,   // first overflow tick
		(1<<32 + 7) * tick, // deep overflow
	}
	c := New(Epoch)
	var fired []int
	// Schedule in reverse so in-order firing can't be an artifact of
	// scheduling order.
	for i := len(delays) - 1; i >= 0; i-- {
		i := i
		c.After(delays[i], func() { fired = append(fired, i) })
	}
	c.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d of %d events", len(fired), len(delays))
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if delays[a] > delays[b] {
			t.Fatalf("out of order: delay %v fired before %v", delays[a], delays[b])
		}
	}
	if got, want := c.Since(Epoch), delays[len(delays)-1]; got != want {
		t.Fatalf("final Now offset = %v, want %v", got, want)
	}
}

// TestWheelFIFOAcrossCascade verifies that two events at the same instant
// fire in scheduling order even when that instant sits beyond a cascade
// boundary, so both events ride a coarse slot down together.
func TestWheelFIFOAcrossCascade(t *testing.T) {
	for _, d := range []time.Duration{300 * tick, 70000 * tick, (1 << 25) * tick, (1 << 33) * tick} {
		c := New(Epoch)
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			c.After(d, func() { order = append(order, i) })
		}
		// A nearer event forces the cursor to walk before the cascade.
		c.After(tick, func() {})
		c.Run()
		for i, got := range order {
			if got != i {
				t.Fatalf("delay %v: same-instant order %v, want ascending", d, order)
			}
		}
	}
}

// TestWheelLateInsertIntoPassedRegion pins the cursor-advance contract:
// peeking (via RunUntil) can advance the wheel cursor far past Now, and a
// subsequent event scheduled inside the passed region must still fire, in
// the right order.
func TestWheelLateInsertIntoPassedRegion(t *testing.T) {
	c := New(Epoch)
	var order []string
	c.After(1000*tick, func() { order = append(order, "far") })
	// RunUntil walks the cursor up to the deadline's tick without firing.
	c.RunUntil(Epoch.Add(500 * tick))
	// These land in ticks the cursor already drained.
	c.After(10*tick, func() { order = append(order, "mid") })
	c.After(0, func() { order = append(order, "now") })
	c.Run()
	if want := "now,mid,far"; order[0]+","+order[1]+","+order[2] != want {
		t.Fatalf("firing order %v, want %s", order, want)
	}
}

// FuzzTimerWheel feeds arbitrary After/Cancel/Reschedule/Step
// interleavings — with delays decoded to cross slot, cascade, and
// overflow boundaries — through the differential pair, asserting no
// panic, monotonic Now, FIFO-at-same-instant, and heap/wheel agreement on
// every observable after every operation.
func FuzzTimerWheel(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x04, 0xff, 0x01, 0x02, 0x03})             // schedule far, cancel, steps
	f.Add([]byte{0x40, 0x08, 0x80, 0x20, 0x02, 0x03, 0x03}) // mixed delays + reschedule
	f.Add([]byte{0xfc, 0xff, 0xfc, 0x00, 0x03, 0x03, 0x03}) // overflow-horizon delays
	f.Fuzz(func(t *testing.T, program []byte) {
		p := newClockPair()
		last := p.wheel.Now()
		for i := 0; i < len(program); i++ {
			b := program[i]
			// Decode: low 2 bits pick the op; the rest (plus the next
			// byte when present) form mantissa<<(3*exp), spanning
			// sub-tick ns up to past the 2^52 ns overflow horizon.
			var arg int
			if i+1 < len(program) {
				i++
				arg = int(program[i])
			}
			mant := int64(b>>2) | int64(arg&0x07)<<6
			exp := uint(arg >> 3) // 0..31 → shifts 0..93, clamped below
			d := time.Duration(mant << min(3*exp, 54))
			switch b & 3 {
			case 0:
				p.schedule(d)
			case 1:
				p.cancel(arg)
			case 2:
				p.reschedule(arg, d)
			case 3:
				p.step()
			}
			if err := p.check(); err != nil {
				t.Fatal(err)
			}
			if now := p.wheel.Now(); now.Before(last) {
				t.Fatalf("Now went backwards: %s -> %s", last, now)
			} else {
				last = now
			}
		}
		// Drain; check() compares the full firing logs, which encode
		// FIFO-at-same-instant (both impls log id@offset in fire order).
		for p.wheel.Pending() > 0 || p.heap.Pending() > 0 {
			p.step()
			if err := p.check(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
