// Package simclock provides the discrete-event-simulation kernel used by the
// SplitServe reproduction: a virtual clock, an ordered event queue, and
// cancellable timers.
//
// The clock is single-threaded and deterministic. Events scheduled for the
// same instant fire in scheduling order (FIFO), which makes every experiment
// bit-for-bit reproducible. Components never sleep; they schedule callbacks.
//
// The event queue is indexed by a hierarchical timer wheel (see wheel.go):
// four 256-slot levels of ~1 ms ticks cascading down toward a near-term
// ready heap, with a small overflow heap for events beyond the ~52-day
// wheel horizon. The original binary-heap index is retained behind
// NewHeapBacked as the reference implementation; the differential property
// and fuzz tests in this package drive both with identical programs and
// require identical firing order and identical observability counters.
package simclock

import (
	"fmt"
	"time"
)

// queueImpl is the pluggable event-queue index behind Clock. Entries are
// totally ordered by (key, seq); cancelled entries ("ghosts", fn == nil)
// stay indexed until they reach the front or a compaction sweeps them, so
// both implementations expose identical counter behavior.
type queueImpl interface {
	push(ev *event)
	// popMin removes and returns the front entry — live or ghost — or
	// nil when the queue is empty.
	popMin() *event
	// peekMin returns the front entry without removing it, or nil.
	peekMin() *event
	len() int
	// compact removes every ghost entry and returns how many were shed.
	compact() int
}

// Clock is a virtual clock driving an event loop. The zero value is not
// usable; construct with New. Clock is not safe for concurrent use: the
// entire simulation runs on one goroutine by design.
type Clock struct {
	start  time.Time // origin of the queue's int64 time coordinate
	now    time.Time
	seq    uint64
	queue  queueImpl
	fired  uint64
	inLoop bool

	// Self-observation counters (read by internal/perfstat). They never
	// influence scheduling decisions, so observing them is free of
	// determinism hazards.
	cancelled   uint64
	ghosts      int
	highWater   int
	compactions uint64

	obs StepObserver
}

// StepObserver receives the host wall-clock duration of each Step call.
// It is the hook internal/perfstat uses to measure clock-loop occupancy;
// the observer must not touch the clock (Step is not reentrant).
type StepObserver interface {
	ObserveStep(wall time.Duration)
}

// SetStepObserver installs o (nil disables). When set, every Step is
// timed with the host wall clock and reported to o. Virtual time and
// event order are unaffected.
func (c *Clock) SetStepObserver(o StepObserver) { c.obs = o }

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled before it fires.
type Timer struct {
	ev *event
}

type event struct {
	at  time.Time
	key int64 // at - clock start, in ns: the queue's comparison key
	seq uint64
	fn  func()
	// index is non-negative while the entry is queued and -1 once it
	// fired, was compacted away, or was popped. The heaps maintain it;
	// wheel slots park it at 0.
	index int
	clock *Clock // owner, for ghost accounting on cancel
}

// New returns a Clock whose current time is start, indexed by the
// hierarchical timer wheel.
func New(start time.Time) *Clock {
	return &Clock{now: start, start: start, queue: newWheelQueue()}
}

// NewHeapBacked returns a Clock indexed by the original binary-heap event
// queue. It exists solely so differential and golden tests can pin the
// timer wheel against the reference implementation; simulations should
// use New.
func NewHeapBacked(start time.Time) *Clock {
	return &Clock{now: start, start: start, queue: &heapQueue{}}
}

// Epoch is a convenient fixed start instant for simulations.
var Epoch = time.Date(2020, time.December, 7, 0, 0, 0, 0, time.UTC)

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.now.Sub(t) }

// Fired returns the number of events that have fired so far. Useful for
// loop-progress assertions in tests.
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of events currently scheduled.
func (c *Clock) Pending() int { return c.queue.len() }

// Cancelled returns the number of timers cancelled before firing.
func (c *Clock) Cancelled() uint64 { return c.cancelled }

// Ghosts returns the number of cancelled entries still occupying queue
// slots (the lazy-discard path). Compaction keeps this bounded; see
// maybeCompact.
func (c *Clock) Ghosts() int { return c.ghosts }

// HeapHighWater returns the maximum event-queue depth observed, including
// ghost entries — the queue-indexing pressure metric perfstat tracks.
// (The name predates the timer wheel; it is part of the perfstat schema.)
func (c *Clock) HeapHighWater() int { return c.highWater }

// Compactions returns how many times the queue was rebuilt to shed ghost
// entries.
func (c *Clock) Compactions() uint64 { return c.compactions }

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero. The returned Timer may be used to cancel.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now.Add(d), fn)
}

// At schedules fn at instant t. If t is in the virtual past, the event fires
// at the current time (never before already-queued events at the same time).
func (c *Clock) At(t time.Time, fn func()) *Timer {
	if fn == nil {
		panic("simclock: nil event func")
	}
	if t.Before(c.now) {
		t = c.now
	}
	ev := &event{at: t, key: int64(t.Sub(c.start)), seq: c.seq, fn: fn, clock: c}
	c.seq++
	c.queue.push(ev)
	if n := c.queue.len(); n > c.highWater {
		c.highWater = n
	}
	return &Timer{ev: ev}
}

// Cancel removes the event from the queue if it has not fired yet. It
// reports whether the event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	ev := t.ev
	t.ev = nil
	ev.cancel()
	return true
}

// Reschedule moves a pending timer so it fires d after the current
// virtual time instead (negative d is treated as zero). It reports false
// — and moves nothing — if the timer already fired or was cancelled. The
// moved timer re-enters scheduling order: against other events at its new
// instant it fires as if it had just been scheduled. The abandoned entry
// becomes a ghost, lazily discarded exactly like a cancellation (but not
// counted in Cancelled).
func (t *Timer) Reschedule(d time.Duration) bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	old := t.ev
	c := old.clock
	fn := old.fn
	old.fn = nil
	c.ghosts++
	t.ev = c.After(d, fn).ev
	c.maybeCompact()
	return true
}

// When returns the instant at which the timer is scheduled to fire. It
// reports false if the timer already fired or was cancelled.
func (t *Timer) When() (time.Time, bool) {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return time.Time{}, false
	}
	return t.ev.at, true
}

func (e *event) cancel() {
	if e.index >= 0 {
		e.fn = nil // release closure; the queue entry is lazily discarded
		e.clock.cancelled++
		e.clock.ghosts++
		e.clock.maybeCompact()
	}
}

// maybeCompact rebuilds the queue without ghost entries once they dominate
// it, so a cancel-heavy workload (armed-then-cancelled timers far in the
// virtual future) cannot grow the queue unboundedly. The rebuild preserves
// the (at, seq) total order, so firing order — and therefore determinism —
// is unchanged.
func (c *Clock) maybeCompact() {
	const minGhosts = 64
	if c.ghosts < minGhosts || 2*c.ghosts <= c.queue.len() {
		return
	}
	c.queue.compact()
	c.ghosts = 0
	c.compactions++
}

// Step fires the next pending event. It reports false when the queue is
// empty.
func (c *Clock) Step() bool {
	if c.obs != nil {
		start := time.Now()
		fired := c.step()
		if fired { // one observation per fired event; the empty probe is noise
			c.obs.ObserveStep(time.Since(start))
		}
		return fired
	}
	return c.step()
}

func (c *Clock) step() bool {
	for {
		ev := c.queue.popMin()
		if ev == nil {
			return false
		}
		if ev.fn == nil { // cancelled
			c.ghosts--
			continue
		}
		if ev.at.After(c.now) {
			c.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		c.fired++
		fn()
		return true
	}
}

// Run fires events until the queue is empty.
func (c *Clock) Run() {
	c.guardLoop()
	defer func() { c.inLoop = false }()
	for c.Step() {
	}
}

// RunUntil fires events with timestamps at or before deadline, then advances
// the clock to deadline (if it is later than the last fired event).
func (c *Clock) RunUntil(deadline time.Time) {
	c.guardLoop()
	defer func() { c.inLoop = false }()
	for {
		next, ok := c.peek()
		if !ok || next.After(deadline) {
			break
		}
		c.Step()
	}
	if deadline.After(c.now) {
		c.now = deadline
	}
}

// RunFor is RunUntil(Now().Add(d)).
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now.Add(d)) }

// RunWhile fires events while cond() holds and events remain. It is the
// usual way to drive a simulation to a completion flag.
func (c *Clock) RunWhile(cond func() bool) {
	c.guardLoop()
	defer func() { c.inLoop = false }()
	for cond() && c.Step() {
	}
}

func (c *Clock) guardLoop() {
	if c.inLoop {
		panic("simclock: nested Run — schedule events instead of recursing into the loop")
	}
	c.inLoop = true
}

func (c *Clock) peek() (time.Time, bool) {
	for {
		ev := c.queue.peekMin()
		if ev == nil {
			return time.Time{}, false
		}
		if ev.fn == nil { // ghost at the front: discard, exactly like step
			c.queue.popMin()
			c.ghosts--
			continue
		}
		return ev.at, true
	}
}

// String summarises the clock state for debugging.
func (c *Clock) String() string {
	return fmt.Sprintf("simclock{now=%s pending=%d fired=%d}",
		c.now.Format(time.RFC3339Nano), c.queue.len(), c.fired)
}
