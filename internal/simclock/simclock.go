// Package simclock provides the discrete-event-simulation kernel used by the
// SplitServe reproduction: a virtual clock, an ordered event queue, and
// cancellable timers.
//
// The clock is single-threaded and deterministic. Events scheduled for the
// same instant fire in scheduling order (FIFO), which makes every experiment
// bit-for-bit reproducible. Components never sleep; they schedule callbacks.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a virtual clock driving an event loop. The zero value is not
// usable; construct with New. Clock is not safe for concurrent use: the
// entire simulation runs on one goroutine by design.
type Clock struct {
	now    time.Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	inLoop bool

	// Self-observation counters (read by internal/perfstat). They never
	// influence scheduling decisions, so observing them is free of
	// determinism hazards.
	cancelled   uint64
	ghosts      int
	highWater   int
	compactions uint64

	obs StepObserver
}

// StepObserver receives the host wall-clock duration of each Step call.
// It is the hook internal/perfstat uses to measure clock-loop occupancy;
// the observer must not touch the clock (Step is not reentrant).
type StepObserver interface {
	ObserveStep(wall time.Duration)
}

// SetStepObserver installs o (nil disables). When set, every Step is
// timed with the host wall clock and reported to o. Virtual time and
// event order are unaffected.
func (c *Clock) SetStepObserver(o StepObserver) { c.obs = o }

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled before it fires.
type Timer struct {
	ev *event
}

type event struct {
	at    time.Time
	seq   uint64
	fn    func()
	index int    // heap index; -1 when popped or cancelled
	clock *Clock // owner, for ghost accounting on cancel
}

// New returns a Clock whose current time is start.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Epoch is a convenient fixed start instant for simulations.
var Epoch = time.Date(2020, time.December, 7, 0, 0, 0, 0, time.UTC)

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.now.Sub(t) }

// Fired returns the number of events that have fired so far. Useful for
// loop-progress assertions in tests.
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of events currently scheduled.
func (c *Clock) Pending() int { return c.queue.Len() }

// Cancelled returns the number of timers cancelled before firing.
func (c *Clock) Cancelled() uint64 { return c.cancelled }

// Ghosts returns the number of cancelled entries still occupying heap
// slots (the lazy-discard path). Compaction keeps this bounded; see
// maybeCompact.
func (c *Clock) Ghosts() int { return c.ghosts }

// HeapHighWater returns the maximum event-heap depth observed, including
// ghost entries — the queue-indexing pressure metric perfstat tracks.
func (c *Clock) HeapHighWater() int { return c.highWater }

// Compactions returns how many times the heap was rebuilt to shed ghost
// entries.
func (c *Clock) Compactions() uint64 { return c.compactions }

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero. The returned Timer may be used to cancel.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now.Add(d), fn)
}

// At schedules fn at instant t. If t is in the virtual past, the event fires
// at the current time (never before already-queued events at the same time).
func (c *Clock) At(t time.Time, fn func()) *Timer {
	if fn == nil {
		panic("simclock: nil event func")
	}
	if t.Before(c.now) {
		t = c.now
	}
	ev := &event{at: t, seq: c.seq, fn: fn, clock: c}
	c.seq++
	heap.Push(&c.queue, ev)
	if n := c.queue.Len(); n > c.highWater {
		c.highWater = n
	}
	return &Timer{ev: ev}
}

// Cancel removes the event from the queue if it has not fired yet. It
// reports whether the event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	ev := t.ev
	t.ev = nil
	ev.cancel()
	return true
}

// When returns the instant at which the timer is scheduled to fire. It
// reports false if the timer already fired or was cancelled.
func (t *Timer) When() (time.Time, bool) {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return time.Time{}, false
	}
	return t.ev.at, true
}

func (e *event) cancel() {
	if e.index >= 0 {
		e.fn = nil // release closure; the heap entry is lazily discarded
		e.clock.cancelled++
		e.clock.ghosts++
		e.clock.maybeCompact()
	}
}

// maybeCompact rebuilds the heap without ghost entries once they dominate
// it, so a cancel-heavy workload (armed-then-cancelled timers far in the
// virtual future) cannot grow the heap unboundedly. The rebuild preserves
// the (at, seq) total order, so firing order — and therefore determinism —
// is unchanged.
func (c *Clock) maybeCompact() {
	const minGhosts = 64
	if c.ghosts < minGhosts || 2*c.ghosts <= c.queue.Len() {
		return
	}
	live := c.queue[:0]
	for _, ev := range c.queue {
		if ev.fn != nil {
			ev.index = len(live)
			live = append(live, ev)
		} else {
			ev.index = -1
		}
	}
	for i := len(live); i < len(c.queue); i++ {
		c.queue[i] = nil // release ghost slots to the GC
	}
	c.queue = live
	heap.Init(&c.queue)
	c.ghosts = 0
	c.compactions++
}

// Step fires the next pending event. It reports false when the queue is
// empty.
func (c *Clock) Step() bool {
	if c.obs != nil {
		start := time.Now()
		fired := c.step()
		if fired { // one observation per fired event; the empty probe is noise
			c.obs.ObserveStep(time.Since(start))
		}
		return fired
	}
	return c.step()
}

func (c *Clock) step() bool {
	for c.queue.Len() > 0 {
		ev := heap.Pop(&c.queue).(*event)
		if ev.fn == nil { // cancelled
			c.ghosts--
			continue
		}
		if ev.at.After(c.now) {
			c.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		c.fired++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (c *Clock) Run() {
	c.guardLoop()
	defer func() { c.inLoop = false }()
	for c.Step() {
	}
}

// RunUntil fires events with timestamps at or before deadline, then advances
// the clock to deadline (if it is later than the last fired event).
func (c *Clock) RunUntil(deadline time.Time) {
	c.guardLoop()
	defer func() { c.inLoop = false }()
	for {
		next, ok := c.peek()
		if !ok || next.After(deadline) {
			break
		}
		c.Step()
	}
	if deadline.After(c.now) {
		c.now = deadline
	}
}

// RunFor is RunUntil(Now().Add(d)).
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now.Add(d)) }

// RunWhile fires events while cond() holds and events remain. It is the
// usual way to drive a simulation to a completion flag.
func (c *Clock) RunWhile(cond func() bool) {
	c.guardLoop()
	defer func() { c.inLoop = false }()
	for cond() && c.Step() {
	}
}

func (c *Clock) guardLoop() {
	if c.inLoop {
		panic("simclock: nested Run — schedule events instead of recursing into the loop")
	}
	c.inLoop = true
}

func (c *Clock) peek() (time.Time, bool) {
	for c.queue.Len() > 0 {
		top := c.queue[0]
		if top.fn == nil {
			heap.Pop(&c.queue)
			c.ghosts--
			continue
		}
		return top.at, true
	}
	return time.Time{}, false
}

// String summarises the clock state for debugging.
func (c *Clock) String() string {
	return fmt.Sprintf("simclock{now=%s pending=%d fired=%d}",
		c.now.Format(time.RFC3339Nano), c.queue.Len(), c.fired)
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("simclock: push of non-event")
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
