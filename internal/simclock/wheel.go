package simclock

import (
	"container/heap"
	"math/bits"
)

// wheelQueue is a hierarchical timer wheel: the default event-queue index
// behind New.
//
// Layout. Virtual time is quantized into ticks of 2^tickShift ns (~1.05 ms
// — comfortably finer than the simulator's smallest scheduled delays, the
// 4 ms dispatch cost and 1 ms-scale I/O waits). Four levels of 256 slots
// each cover spans of 256, 256², 256³ and 256⁴ ticks; level l slot s holds
// the events whose tick, written base 256, agrees with the cursor above
// digit l and has digit l equal to s. Events beyond the level-3 horizon
// (2^32 ticks ≈ 52 simulated days from the cursor block) wait in a small
// overflow heap. Events at or before the cursor live in the "ready" heap,
// ordered by (key, seq).
//
// Invariants:
//   - every queued event is in exactly one of: ready, a slot, overflow;
//   - slot and overflow events have tick > cursor, ready events tick ≤
//     cursor — so ready's minimum is the global minimum (keys below
//     (cursor+1)<<tickShift sort before every key outside ready);
//   - per-level occupancy bitmaps mirror slot emptiness exactly.
//
// Operations. push places the event directly at its final level (an O(1)
// digit comparison — no per-tick stepping). popMin/peekMin serve from
// ready, calling advance when it runs dry: advance scans the level-0
// bitmap for the next occupied slot in the current window and drains it
// into ready; failing that it finds the next occupied slot at the coarsest
// necessary level, jumps the cursor to that block's start, and cascades
// the slot's events back through push so they redistribute into finer
// levels (each event cascades at most wheelLevels times over its life);
// failing that it refills the wheels from the overflow heap. Because the
// cursor only advances when everything before it has been handed to ready,
// an event may always be pushed for an already-passed tick — it simply
// goes straight to ready (Clock clamps events to the virtual present, but
// peek-driven loops like RunUntil advance the cursor past the clock's
// now).
//
// Ghosts (cancelled entries, fn == nil) ride wherever they were placed and
// are discarded by the Clock at pop time, exactly as with the heap index,
// so the ghost/high-water/compaction counters behave identically between
// the two implementations — the property the differential tests pin.
type wheelQueue struct {
	cursor   int64 // latest tick whose events have been moved to ready
	ready    eventHeap
	slots    [wheelLevels][slotsPerLevel][]*event
	occ      [wheelLevels][slotsPerLevel / 64]uint64
	overflow eventHeap
	n        int
}

const (
	tickShift     = 20 // tick = 2^20 ns ≈ 1.05 ms
	levelBits     = 8
	slotsPerLevel = 1 << levelBits
	wheelLevels   = 4
	slotMask      = slotsPerLevel - 1
)

func newWheelQueue() *wheelQueue { return &wheelQueue{} }

func (q *wheelQueue) len() int { return q.n }

func (q *wheelQueue) push(ev *event) {
	q.n++
	q.place(ev)
}

// place routes ev to ready, a wheel slot, or overflow according to its
// tick. Also used to cascade events when the cursor enters a coarse slot.
func (q *wheelQueue) place(ev *event) {
	t := ev.key >> tickShift
	if t <= q.cursor {
		heap.Push(&q.ready, ev)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		if t>>(levelBits*(l+1)) == q.cursor>>(levelBits*(l+1)) {
			s := (t >> (levelBits * l)) & slotMask
			ev.index = 0 // parked: non-negative means "still queued"
			q.slots[l][s] = append(q.slots[l][s], ev)
			q.occ[l][s>>6] |= 1 << uint(s&63)
			return
		}
	}
	heap.Push(&q.overflow, ev)
}

func (q *wheelQueue) popMin() *event {
	if len(q.ready) == 0 {
		q.advance()
		if len(q.ready) == 0 {
			return nil
		}
	}
	q.n--
	return heap.Pop(&q.ready).(*event)
}

func (q *wheelQueue) peekMin() *event {
	if len(q.ready) == 0 {
		q.advance()
		if len(q.ready) == 0 {
			return nil
		}
	}
	return q.ready[0]
}

// advance moves the cursor forward until ready is non-empty or the queue
// is exhausted. The current slot index at each level is never occupied
// (such ticks would have routed to a finer level or to ready), so the
// bitmap scans are from-inclusive.
func (q *wheelQueue) advance() {
	for q.n > len(q.ready) {
		if s := q.nextOccupied(0, q.cursor&slotMask); s >= 0 {
			q.cursor = q.cursor&^slotMask | s
			q.drainSlot(s)
			return
		}
		cascaded := false
		for l := 1; l < wheelLevels; l++ {
			shift := uint(levelBits * l)
			if s := q.nextOccupied(l, (q.cursor>>shift)&slotMask); s >= 0 {
				// Jump to the block's first tick; its events re-place
				// into finer levels (or ready) relative to that.
				q.cursor = q.cursor>>(shift+levelBits)<<(shift+levelBits) | s<<shift
				q.cascadeSlot(l, s)
				cascaded = true
				break
			}
		}
		if cascaded {
			continue
		}
		if len(q.overflow) > 0 {
			q.refill()
			continue
		}
		return
	}
}

// nextOccupied returns the lowest occupied slot index ≥ from at level l,
// or -1 if the rest of the level is empty.
func (q *wheelQueue) nextOccupied(l int, from int64) int64 {
	w := int(from >> 6)
	if word := q.occ[l][w] >> uint(from&63); word != 0 {
		return from + int64(bits.TrailingZeros64(word))
	}
	for w++; w < slotsPerLevel/64; w++ {
		if word := q.occ[l][w]; word != 0 {
			return int64(w*64 + bits.TrailingZeros64(word))
		}
	}
	return -1
}

// drainSlot moves every event in level-0 slot s into the ready heap.
func (q *wheelQueue) drainSlot(s int64) {
	evs := q.slots[0][s]
	q.slots[0][s] = evs[:0] // keep capacity for the next lap
	q.occ[0][s>>6] &^= 1 << uint(s&63)
	for i, ev := range evs {
		heap.Push(&q.ready, ev)
		evs[i] = nil
	}
}

// cascadeSlot redistributes level-l slot s (the block the cursor just
// entered) into finer levels via place.
func (q *wheelQueue) cascadeSlot(l int, s int64) {
	evs := q.slots[l][s]
	q.slots[l][s] = evs[:0]
	q.occ[l][s>>6] &^= 1 << uint(s&63)
	for i, ev := range evs {
		q.place(ev)
		evs[i] = nil
	}
}

// refill jumps the cursor to the earliest overflow event and moves every
// overflow event within that event's level-3 block back into the wheels.
func (q *wheelQueue) refill() {
	q.cursor = q.overflow[0].key >> tickShift
	block := q.cursor >> (levelBits * wheelLevels)
	for len(q.overflow) > 0 && q.overflow[0].key>>tickShift>>(levelBits*wheelLevels) == block {
		q.place(heap.Pop(&q.overflow).(*event))
	}
}

// compact removes every ghost entry from ready, the slots, and overflow.
func (q *wheelQueue) compact() int {
	removed := compactHeap(&q.ready) + compactHeap(&q.overflow)
	for l := range q.slots {
		for s := range q.slots[l] {
			evs := q.slots[l][s]
			if len(evs) == 0 {
				continue
			}
			kept := evs[:0]
			for _, ev := range evs {
				if ev.fn != nil {
					kept = append(kept, ev)
				} else {
					ev.index = -1
					removed++
				}
			}
			for i := len(kept); i < len(evs); i++ {
				evs[i] = nil
			}
			q.slots[l][s] = kept
			if len(kept) == 0 {
				q.occ[l][s>>6] &^= 1 << uint(s&63)
			}
		}
	}
	q.n -= removed
	return removed
}
