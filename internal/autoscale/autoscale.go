// Package autoscale implements the paper's inter-job resource-management
// layer (Section 4.1, Figure 2): a diurnal forecast of executor demand
// with confidence bands, provisioning policies of the form m(t) + k·σ(t),
// and the resulting shortfall moments that SplitServe bridges with
// Lambdas versus the idle capacity a conservative policy strands. A cost
// comparison across policies quantifies the paper's argument that
// SplitServe lets the tenant buy fewer VMs and lambda-bridge the residual
// risk.
package autoscale

import (
	"fmt"
	"math"
	"time"

	"splitserve/internal/billing"
	"splitserve/internal/simrand"
)

// SeriesConfig parameterises a synthetic workday demand curve.
type SeriesConfig struct {
	// Step is the sampling interval; Horizon the total span (a workday).
	Step    time.Duration
	Horizon time.Duration
	// BaseCores is overnight demand; PeakCores the midday peak.
	BaseCores float64
	PeakCores float64
	// SigmaFraction scales σ(t) relative to m(t).
	SigmaFraction float64
	// NoisePhi is the AR(1) coefficient of actual demand around m(t).
	NoisePhi float64
	Seed     uint64
}

// DefaultSeriesConfig mirrors Figure 2's illustrative workday.
func DefaultSeriesConfig() SeriesConfig {
	return SeriesConfig{
		Step:          5 * time.Minute,
		Horizon:       24 * time.Hour,
		BaseCores:     8,
		PeakCores:     64,
		SigmaFraction: 0.18,
		NoisePhi:      0.7,
		Seed:          4,
	}
}

// Series is a sampled demand forecast plus one realised trace.
type Series struct {
	Step   time.Duration
	Mean   []float64 // m(t)
	Sigma  []float64 // σ(t)
	Actual []float64 // w(t)
}

// Diurnal generates the Figure 2 series: a two-hump workday mean (late
// morning and evening peaks), proportional uncertainty, and an AR(1)
// realisation around the mean.
func Diurnal(cfg SeriesConfig) *Series {
	if cfg.Step <= 0 || cfg.Horizon <= 0 {
		panic("autoscale: invalid series config")
	}
	n := int(cfg.Horizon / cfg.Step)
	s := &Series{
		Step:   cfg.Step,
		Mean:   make([]float64, n),
		Sigma:  make([]float64, n),
		Actual: make([]float64, n),
	}
	rng := simrand.New(cfg.Seed)
	z := 0.0
	for i := 0; i < n; i++ {
		hour := float64(i) * cfg.Step.Hours()
		s.Mean[i] = cfg.BaseCores + (cfg.PeakCores-cfg.BaseCores)*dayShape(hour)
		s.Sigma[i] = cfg.SigmaFraction * s.Mean[i]
		z = cfg.NoisePhi*z + rng.Normal(0, 1)*math.Sqrt(1-cfg.NoisePhi*cfg.NoisePhi)
		s.Actual[i] = math.Max(0, s.Mean[i]+z*s.Sigma[i])
	}
	return s
}

// dayShape maps an hour-of-day to [0,1]: quiet overnight, a late-morning
// peak, a lunch dip, and an evening shoulder.
func dayShape(hour float64) float64 {
	h := math.Mod(hour, 24)
	morning := math.Exp(-math.Pow(h-11, 2) / 8)
	evening := 0.7 * math.Exp(-math.Pow(h-19, 2)/10)
	v := morning + evening
	if v > 1 {
		v = 1
	}
	return v
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Mean) }

// Provisioned returns the capacity a policy m(t) + k·σ(t) buys at sample
// i, rounded up to whole cores.
func (s *Series) Provisioned(i int, k float64) int {
	return int(math.Ceil(s.Mean[i] + k*s.Sigma[i]))
}

// Shortfalls returns the sample indices where actual demand exceeds the
// policy's provisioned capacity — the paper's t1 moments where SplitServe
// launches Lambdas.
func (s *Series) Shortfalls(k float64) []int {
	var out []int
	for i := range s.Actual {
		if s.Actual[i] > float64(s.Provisioned(i, k)) {
			out = append(out, i)
		}
	}
	return out
}

// IdleCoreHours returns the core-hours of provisioned-but-unused capacity
// under policy k — the paper's t2 waste.
func (s *Series) IdleCoreHours(k float64) float64 {
	total := 0.0
	for i := range s.Actual {
		idle := float64(s.Provisioned(i, k)) - s.Actual[i]
		if idle > 0 {
			total += idle * s.Step.Hours()
		}
	}
	return total
}

// ShortfallCoreHours returns the core-hours of demand above provisioned
// capacity under policy k (what must be lambda-bridged or dropped).
func (s *Series) ShortfallCoreHours(k float64) float64 {
	total := 0.0
	for i := range s.Actual {
		gap := s.Actual[i] - float64(s.Provisioned(i, k))
		if gap > 0 {
			total += gap * s.Step.Hours()
		}
	}
	return total
}

// PolicyCost estimates the daily cost of provisioning policy k: VM cores
// at vCPUPricePerHour plus, if bridging, every shortfall core-hour served
// by 1536 MB Lambdas (the SplitServe strategy). Without bridging the
// shortfall is an SLO-violation count instead.
type PolicyCost struct {
	K                  float64
	VMCoreHours        float64
	ShortfallCoreHours float64
	VMCostUSD          float64
	LambdaCostUSD      float64
	TotalUSD           float64
	ShortfallSamples   int
}

// EvaluatePolicy prices one provisioning policy over the series.
func (s *Series) EvaluatePolicy(k, vCPUPricePerHour float64) PolicyCost {
	pc := PolicyCost{K: k}
	for i := range s.Actual {
		pc.VMCoreHours += float64(s.Provisioned(i, k)) * s.Step.Hours()
	}
	pc.ShortfallCoreHours = s.ShortfallCoreHours(k)
	pc.ShortfallSamples = len(s.Shortfalls(k))
	pc.VMCostUSD = pc.VMCoreHours * vCPUPricePerHour
	// Lambda bridging: GB-seconds for 1.5 GB per shortfall core.
	pc.LambdaCostUSD = pc.ShortfallCoreHours * 3600 * 1.5 * billing.LambdaGBSecondUSD
	pc.TotalUSD = pc.VMCostUSD + pc.LambdaCostUSD
	return pc
}

// String renders the policy cost.
func (p PolicyCost) String() string {
	return fmt.Sprintf("k=%.1f: vm=%.1f core-h ($%.2f) + lambda-bridge=%.2f core-h ($%.2f) = $%.2f (%d shortfall samples)",
		p.K, p.VMCoreHours, p.VMCostUSD, p.ShortfallCoreHours, p.LambdaCostUSD, p.TotalUSD, p.ShortfallSamples)
}
