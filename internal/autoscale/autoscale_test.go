package autoscale

import (
	"testing"
	"testing/quick"
)

func TestDiurnalShape(t *testing.T) {
	s := Diurnal(DefaultSeriesConfig())
	if s.Len() != 288 {
		t.Fatalf("samples = %d, want 288 (24h at 5min)", s.Len())
	}
	// Overnight trough well below midday peak.
	night := s.Mean[36]   // 03:00
	midday := s.Mean[132] // 11:00
	if night >= midday/3 {
		t.Fatalf("no diurnal shape: night=%.1f midday=%.1f", night, midday)
	}
	for i := range s.Mean {
		if s.Mean[i] < 0 || s.Sigma[i] < 0 || s.Actual[i] < 0 {
			t.Fatalf("negative values at %d", i)
		}
	}
}

func TestDeterministicSeries(t *testing.T) {
	a := Diurnal(DefaultSeriesConfig())
	b := Diurnal(DefaultSeriesConfig())
	for i := range a.Actual {
		if a.Actual[i] != b.Actual[i] {
			t.Fatal("series not deterministic")
		}
	}
}

func TestHigherKFewerShortfallsMoreIdle(t *testing.T) {
	s := Diurnal(DefaultSeriesConfig())
	short0 := len(s.Shortfalls(0))
	short2 := len(s.Shortfalls(2))
	if short0 <= short2 {
		t.Fatalf("shortfalls: k=0 %d vs k=2 %d; bands ineffective", short0, short2)
	}
	if short0 == 0 {
		t.Fatal("k=0 policy has no shortfalls; noise too small")
	}
	idle0 := s.IdleCoreHours(0)
	idle2 := s.IdleCoreHours(2)
	if idle2 <= idle0 {
		t.Fatalf("idle: k=2 %.1f <= k=0 %.1f", idle2, idle0)
	}
}

func TestPaperFigure2Moments(t *testing.T) {
	// The figure's premise: even m+2σ sees occasional shortfall (t1), and
	// m-2σ strands capacity (t2 idling is represented by idle hours > 0).
	s := Diurnal(DefaultSeriesConfig())
	if len(s.Shortfalls(2)) == 0 {
		t.Fatal("m+2σ never falls short over a day; Figure 2's t1 moment missing")
	}
	if s.IdleCoreHours(-2) <= 0 {
		t.Fatal("even m-2σ has no idle capacity")
	}
}

func TestPolicyCostTradeoff(t *testing.T) {
	s := Diurnal(DefaultSeriesConfig())
	aggressive := s.EvaluatePolicy(0, 0.05)
	conservative := s.EvaluatePolicy(2, 0.05)
	if aggressive.VMCostUSD >= conservative.VMCostUSD {
		t.Fatal("aggressive policy should buy fewer VM core-hours")
	}
	if aggressive.LambdaCostUSD <= conservative.LambdaCostUSD {
		t.Fatal("aggressive policy should bridge more with lambdas")
	}
	if aggressive.TotalUSD <= 0 || conservative.TotalUSD <= 0 {
		t.Fatal("degenerate costs")
	}
	if aggressive.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: shortfall + served demand decomposition — provisioned capacity
// plus shortfall always covers actual demand.
func TestQuickCoverage(t *testing.T) {
	prop := func(seed uint64, kTenths int8) bool {
		cfg := DefaultSeriesConfig()
		cfg.Seed = seed
		k := float64(kTenths%40) / 10
		s := Diurnal(cfg)
		for i := range s.Actual {
			cap := float64(s.Provisioned(i, k))
			gap := s.Actual[i] - cap
			if gap > 0 {
				found := false
				for _, idx := range s.Shortfalls(k) {
					if idx == i {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Diurnal(SeriesConfig{})
}
