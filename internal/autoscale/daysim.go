package autoscale

import (
	"fmt"
	"math"
	"time"

	"splitserve/internal/billing"
	"splitserve/internal/simrand"
)

// Day-long inter-job simulation — the "larger system" of the paper's
// Section 4.1 (Figure 3's top box): a stream of latency-critical jobs
// arrives over a workday; an inter-job manager provisions VM capacity by a
// policy m(t) + k·σ(t); and each arriving job either fits the free VM
// cores, or experiences one of three fates depending on the tenant's
// strategy:
//
//   - StrategyQueue (pure VM, no autoscaling): the job runs on whatever
//     cores are free and is slowed proportionally — SLO violations pile up.
//   - StrategyAutoscale (pure VM + autoscaling): extra VMs are requested
//     but arrive after the boot delay; the shortfall until then still
//     slows the job, and the procured VMs are paid for.
//   - StrategyBridge (SplitServe): the shortfall is served immediately by
//     Lambdas at a configurable hybrid slowdown (calibrated from the
//     intra-job experiments) and Lambda GB-seconds are paid.
//
// The simulation is intentionally coarser than the intra-job engine (jobs
// are fluid core-demands, not task graphs); its slowdown constants are
// taken from the measured Figure 5/6 scenarios, tying the two layers
// together.

// Strategy is the tenant's response to VM shortfall.
type Strategy int

// Strategies.
const (
	StrategyQueue Strategy = iota + 1
	StrategyAutoscale
	StrategyBridge
)

func (s Strategy) String() string {
	switch s {
	case StrategyQueue:
		return "queue"
	case StrategyAutoscale:
		return "vm-autoscale"
	case StrategyBridge:
		return "lambda-bridge"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DayConfig parameterises the day simulation.
type DayConfig struct {
	Series SeriesConfig
	// PolicyK is the provisioning policy m(t) + k·σ(t).
	PolicyK float64
	// StaticWorstCase provisions the day's peak m(t)+k·σ(t) around the
	// clock ("always provisioning for the worst-case needs").
	StaticWorstCase bool
	// Strategy is the shortfall response.
	Strategy Strategy
	// JobCores and JobDuration describe the per-job demand (all jobs need
	// JobCores for JobDuration at full provisioning).
	JobCores    int
	JobDuration time.Duration
	// SLOFactor: a job violates its SLO if it runs longer than
	// SLOFactor x JobDuration.
	SLOFactor float64
	// VMBoot is the autoscale procurement delay.
	VMBoot time.Duration
	// KeepProcured bills autoscale-procured capacity from each job's
	// arrival to the end of the day instead of just the job's runtime —
	// the keep-forever counterfactual of the cluster layer's idle-timeout
	// scale-down. The default (false) models perfect scale-down: capacity
	// is paid only while the job that procured it runs.
	KeepProcured bool
	// HybridSlowdown is the execution-time multiplier when a job's
	// shortfall is lambda-bridged (measured ~1.05-1.2 in Figures 5/6).
	HybridSlowdown float64
	// VCPUPricePerHour and LambdaMemGB price the substrates.
	VCPUPricePerHour float64
	LambdaMemGB      float64
	Seed             uint64
}

// DefaultDayConfig uses the paper-calibrated constants. The fleet serves
// many concurrent 16-core jobs (overnight ~4, peak ~32), the regime the
// paper's Figure 2 sketches.
func DefaultDayConfig(strategy Strategy, k float64) DayConfig {
	series := DefaultSeriesConfig()
	series.BaseCores = 64
	series.PeakCores = 512
	return DayConfig{
		Series:           series,
		PolicyK:          k,
		Strategy:         strategy,
		JobCores:         16,
		JobDuration:      90 * time.Second,
		SLOFactor:        1.5,
		VMBoot:           110 * time.Second,
		HybridSlowdown:   1.10,
		VCPUPricePerHour: 0.05,
		LambdaMemGB:      1.5,
		Seed:             4,
	}
}

// DayResult summarises one simulated day.
type DayResult struct {
	Strategy Strategy
	PolicyK  float64
	// WorstCase marks the flat peak-capacity provisioning variant.
	WorstCase     bool
	Jobs          int
	SLOViolations int
	// MeanStretch is the mean job slowdown relative to full provisioning.
	MeanStretch float64
	P99Stretch  float64
	// AutoscaleVMHours is the billed vCPU-hours of procured-on-demand
	// capacity (fluid, so fractional); with KeepProcured it grows to the
	// end of the day and the gap to the default is what scale-down saves.
	AutoscaleVMHours float64
	// Costs.
	VMBaseUSD      float64 // the policy's provisioned fleet
	VMAutoscaleUSD float64 // procured-on-demand VMs
	LambdaUSD      float64 // bridged shortfall
	TotalUSD       float64
}

// Label names the row ("queue k=2 static-worst-case" etc.).
func (r DayResult) Label() string {
	label := fmt.Sprintf("%s-k%.0f", r.Strategy, r.PolicyK)
	if r.WorstCase {
		label += "-static-worst"
	}
	return label
}

// String renders the result.
func (r DayResult) String() string {
	kind := r.Strategy.String()
	if r.WorstCase {
		kind += " (static worst-case)"
	}
	return fmt.Sprintf("%-14s k=%.1f: %4d jobs, %3d SLO violations (%.1f%%), mean stretch %.2fx, p99 %.2fx, cost $%.2f (base $%.2f + scale $%.2f + lambda $%.2f)",
		kind, r.PolicyK, r.Jobs, r.SLOViolations,
		100*float64(r.SLOViolations)/math.Max(1, float64(r.Jobs)),
		r.MeanStretch, r.P99Stretch, r.TotalUSD, r.VMBaseUSD, r.VMAutoscaleUSD, r.LambdaUSD)
}

// SimulateDay runs one day of job arrivals under the given policy and
// strategy. It is exactly SimulateDayTrace over the arrivals DayArrivals
// draws, split so the cluster layer's discrete-event scheduler can replay
// the identical arrival pattern and be cross-checked against this fluid
// model (see internal/cluster).
func SimulateDay(cfg DayConfig) DayResult {
	return SimulateDayTrace(cfg, DayArrivals(cfg))
}

// DayArrivals samples the day's job arrival offsets: per sampling
// interval, a Poisson count sized so the realised demand w(t) is served
// by JobCores×JobDuration jobs, spread evenly inside the interval. The
// draw order matches what SimulateDay historically consumed, so a given
// seed keeps producing the same day.
func DayArrivals(cfg DayConfig) []time.Duration {
	series := Diurnal(cfg.Series)
	rng := simrand.New(cfg.Seed ^ 0xda71)
	step := cfg.Series.Step
	jobSec := cfg.JobDuration.Seconds()
	var out []time.Duration
	for i := 0; i < series.Len(); i++ {
		expectedJobs := series.Actual[i] * step.Seconds() / (float64(cfg.JobCores) * jobSec)
		jobs := poisson(rng, expectedJobs)
		for j := 0; j < jobs; j++ {
			out = append(out, time.Duration(i)*step+step*time.Duration(j)/time.Duration(jobs))
		}
	}
	return out
}

// SimulateDayTrace runs the fluid day model over an explicit arrival
// trace (offsets from the start of the day). Each arrival is mapped back
// to its sampling interval to read the provisioned fleet and realised
// concurrent load there.
func SimulateDayTrace(cfg DayConfig, arrivals []time.Duration) DayResult {
	series := Diurnal(cfg.Series)
	res := DayResult{Strategy: cfg.Strategy, PolicyK: cfg.PolicyK, WorstCase: cfg.StaticWorstCase}

	step := cfg.Series.Step
	jobSec := cfg.JobDuration.Seconds()
	var stretches []float64

	peak := 0
	for i := 0; i < series.Len(); i++ {
		if p := series.Provisioned(i, cfg.PolicyK); p > peak {
			peak = p
		}
	}
	provisionedAt := func(i int) int {
		if cfg.StaticWorstCase {
			return peak
		}
		return series.Provisioned(i, cfg.PolicyK)
	}
	for i := 0; i < series.Len(); i++ {
		res.VMBaseUSD += float64(provisionedAt(i)) * step.Hours() * cfg.VCPUPricePerHour
	}

	for _, at := range arrivals {
		i := int(at / step)
		if i < 0 {
			i = 0
		}
		if i >= series.Len() {
			i = series.Len() - 1
		}
		provisioned := provisionedAt(i)
		res.Jobs++
		// Instantaneous concurrent load at this job's arrival: the
		// series' w(t) is the realised demand (its deviation from m(t)
		// is exactly the uncertainty the k·σ headroom is sized for).
		concurrent := series.Actual[i]
		free := float64(provisioned) - concurrent
		if free < 0 {
			free = 0
		}
		shortfall := float64(cfg.JobCores) - free
		if shortfall < 0 {
			shortfall = 0
		}

		stretch := 1.0
		switch {
		case shortfall == 0:
			// Fully provisioned.
		case cfg.Strategy == StrategyQueue:
			// Run on the free cores only (degenerate: at least 1).
			cores := math.Max(1, free)
			stretch = float64(cfg.JobCores) / cores
		case cfg.Strategy == StrategyAutoscale:
			cores := math.Max(1, free)
			slowRate := cores / float64(cfg.JobCores)
			boot := cfg.VMBoot.Seconds()
			// Work done before the VMs arrive, remainder at full speed.
			workDone := boot * slowRate
			if workDone >= jobSec {
				stretch = (jobSec / slowRate) / jobSec
			} else {
				stretch = (boot + (jobSec - workDone)) / jobSec
			}
			billed := time.Duration(stretch * jobSec * float64(time.Second))
			if cfg.KeepProcured {
				if rem := time.Duration(series.Len())*step - at; rem > billed {
					billed = rem
				}
			}
			res.VMAutoscaleUSD += billing.VMCost(cfg.VCPUPricePerHour*shortfall, billed)
			res.AutoscaleVMHours += shortfall * billed.Hours()
		case cfg.Strategy == StrategyBridge:
			stretch = cfg.HybridSlowdown
			lambdaSecs := stretch * jobSec * shortfall
			res.LambdaUSD += lambdaSecs * cfg.LambdaMemGB * billing.LambdaGBSecondUSD
		}
		stretches = append(stretches, stretch)
		if stretch > cfg.SLOFactor {
			res.SLOViolations++
		}
	}

	if len(stretches) > 0 {
		sum := 0.0
		for _, s := range stretches {
			sum += s
		}
		res.MeanStretch = sum / float64(len(stretches))
		res.P99Stretch = quantile(stretches, 0.99)
	}
	res.TotalUSD = res.VMBaseUSD + res.VMAutoscaleUSD + res.LambdaUSD
	return res
}

// CompareDayStrategies runs the paper's implied comparison: a conservative
// pure-VM policy (m+2σ), an aggressive pure-VM policy that queues, VM
// autoscaling, and SplitServe's lambda bridging on an aggressive policy.
func CompareDayStrategies(seed uint64) []DayResult {
	mk := func(s Strategy, k float64) DayResult {
		cfg := DefaultDayConfig(s, k)
		cfg.Seed = seed
		return SimulateDay(cfg)
	}
	worst := DefaultDayConfig(StrategyQueue, 2)
	worst.Seed = seed
	worst.StaticWorstCase = true
	return []DayResult{
		SimulateDay(worst),       // worst-case static provisioning
		mk(StrategyQueue, 2),     // conservative diurnal provisioning, no remedy
		mk(StrategyQueue, 0),     // aggressive provisioning, no remedy
		mk(StrategyAutoscale, 0), // aggressive + VM autoscaling
		mk(StrategyBridge, 0),    // max-aggressive + bridging (footnote 8: too far)
		mk(StrategyBridge, 1),    // moderately aggressive + SplitServe bridging
	}
}

// poisson draws a Poisson variate with the given mean (Knuth for small
// means, normal approximation above 30).
func poisson(rng *simrand.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := rng.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// quantile returns the q-quantile of xs (not destructive).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(math.Ceil(q * float64(len(cp)-1)))
	return cp[idx]
}
