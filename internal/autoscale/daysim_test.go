package autoscale

import (
	"math"
	"testing"

	"splitserve/internal/simrand"
)

func TestSimulateDayBasics(t *testing.T) {
	res := SimulateDay(DefaultDayConfig(StrategyQueue, 0))
	if res.Jobs == 0 {
		t.Fatal("no jobs arrived all day")
	}
	if res.VMBaseUSD <= 0 || res.TotalUSD < res.VMBaseUSD {
		t.Fatalf("degenerate costs: %+v", res)
	}
	if res.MeanStretch < 1 {
		t.Fatalf("mean stretch %v < 1", res.MeanStretch)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestBridgingEliminatesMostViolations(t *testing.T) {
	queue := SimulateDay(DefaultDayConfig(StrategyQueue, 0))
	bridge := SimulateDay(DefaultDayConfig(StrategyBridge, 0))
	if queue.SLOViolations == 0 {
		t.Fatal("queueing strategy shows no violations; demand too tame")
	}
	if bridge.SLOViolations != 0 {
		t.Fatalf("lambda bridging left %d violations (hybrid slowdown < SLO factor)", bridge.SLOViolations)
	}
	if bridge.LambdaUSD <= 0 {
		t.Fatal("bridging billed no lambda time")
	}
}

func TestAutoscaleBetweenQueueAndBridge(t *testing.T) {
	queue := SimulateDay(DefaultDayConfig(StrategyQueue, 0))
	auto := SimulateDay(DefaultDayConfig(StrategyAutoscale, 0))
	bridge := SimulateDay(DefaultDayConfig(StrategyBridge, 0))
	if !(auto.MeanStretch < queue.MeanStretch) {
		t.Fatalf("autoscale stretch %.2f not below queue %.2f", auto.MeanStretch, queue.MeanStretch)
	}
	if !(bridge.MeanStretch < auto.MeanStretch) {
		t.Fatalf("bridge stretch %.2f not below autoscale %.2f", bridge.MeanStretch, auto.MeanStretch)
	}
}

func TestBridgingEconomics(t *testing.T) {
	// The paper's economic argument (Section 4.1): instead of "always
	// provisioning for the worst-case needs", provision diurnally and
	// lambda-bridge the residual risk.
	worst := DefaultDayConfig(StrategyQueue, 2)
	worst.StaticWorstCase = true
	worstCase := SimulateDay(worst)
	moderate := SimulateDay(DefaultDayConfig(StrategyBridge, 1))
	if moderate.TotalUSD >= worstCase.TotalUSD {
		t.Fatalf("diurnal+bridge $%.2f not cheaper than worst-case static $%.2f",
			moderate.TotalUSD, worstCase.TotalUSD)
	}
	if moderate.SLOViolations > worstCase.SLOViolations {
		t.Fatalf("cheaper policy has more violations: %d vs %d",
			moderate.SLOViolations, worstCase.SLOViolations)
	}
	// Against a diurnal m+2σ policy the trade is violations-vs-dollars:
	// bridging costs somewhat more but eliminates the SLO misses.
	conservative := SimulateDay(DefaultDayConfig(StrategyQueue, 2))
	if conservative.SLOViolations == 0 {
		t.Fatal("diurnal m+2σ policy shows no violations; Figure 2's t1 premise missing")
	}
	if moderate.SLOViolations != 0 {
		t.Fatalf("bridging left %d violations", moderate.SLOViolations)
	}
	// Footnote 8's limit: max-aggressive bridging pays more in Lambdas
	// than the moderate policy does.
	extreme := SimulateDay(DefaultDayConfig(StrategyBridge, 0))
	if extreme.LambdaUSD <= moderate.LambdaUSD {
		t.Fatalf("k=0 lambda bill $%.2f not above k=1's $%.2f", extreme.LambdaUSD, moderate.LambdaUSD)
	}
}

func TestCompareDayStrategies(t *testing.T) {
	rows := CompareDayStrategies(4)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Jobs
		if r.TotalUSD <= 0 {
			t.Fatalf("zero cost row: %+v", r)
		}
	}
	if total == 0 {
		t.Fatal("no jobs simulated")
	}
}

func TestDaySimDeterministic(t *testing.T) {
	a := SimulateDay(DefaultDayConfig(StrategyBridge, 0))
	b := SimulateDay(DefaultDayConfig(StrategyBridge, 0))
	if a != b {
		t.Fatalf("nondeterministic day sim:\n%+v\n%+v", a, b)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := newTestRNG()
	const mean = 7.5
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, mean))
	}
	got := sum / float64(n)
	if math.Abs(got-mean) > 0.15 {
		t.Fatalf("poisson mean = %v, want ~%v", got, mean)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
	// Large-mean path.
	big := poisson(rng, 1000)
	if big < 800 || big > 1200 {
		t.Fatalf("poisson(1000) = %d", big)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q := quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := quantile(xs, 0.99); q != 5 {
		t.Fatalf("p99 = %v", q)
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	// Input must be untouched.
	if xs[0] != 5 {
		t.Fatal("quantile mutated input")
	}
}

// newTestRNG gives tests a deterministic generator.
func newTestRNG() *simrand.RNG { return simrand.New(99) }

// TestDayArrivalsSplitEquivalence pins the refactor contract: SimulateDay
// must equal SimulateDayTrace over the arrivals DayArrivals draws — the
// split the cluster layer relies on to replay the identical day through
// its discrete-event scheduler.
func TestDayArrivalsSplitEquivalence(t *testing.T) {
	for _, strategy := range []Strategy{StrategyQueue, StrategyAutoscale, StrategyBridge} {
		cfg := DefaultDayConfig(strategy, 1)
		cfg.Seed = 77
		direct := SimulateDay(cfg)
		arrivals := DayArrivals(cfg)
		replayed := SimulateDayTrace(cfg, arrivals)
		if direct != replayed {
			t.Errorf("%s: SimulateDay %+v != SimulateDayTrace(DayArrivals) %+v",
				strategy, direct, replayed)
		}
		if len(arrivals) != direct.Jobs {
			t.Errorf("%s: %d arrivals but %d jobs simulated", strategy, len(arrivals), direct.Jobs)
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i] < arrivals[i-1] {
				t.Fatalf("%s: arrivals not sorted at %d: %v < %v", strategy, i, arrivals[i], arrivals[i-1])
			}
		}
	}
}

// TestKeepProcuredRaisesAutoscaleCost: the keep-forever counterfactual
// must bill strictly more procured vCPU-hours (and dollars) than the
// default perfect-scale-down accounting, while leaving job outcomes —
// which only depend on when capacity arrives, not how long it is kept —
// byte-for-byte identical.
func TestKeepProcuredRaisesAutoscaleCost(t *testing.T) {
	cfg := DefaultDayConfig(StrategyAutoscale, 0)
	cfg.Seed = 41
	arrivals := DayArrivals(cfg)
	perfect := SimulateDayTrace(cfg, arrivals)
	if perfect.AutoscaleVMHours <= 0 || perfect.VMAutoscaleUSD <= 0 {
		t.Fatalf("no procurement simulated: %+v", perfect)
	}
	keepCfg := cfg
	keepCfg.KeepProcured = true
	kept := SimulateDayTrace(keepCfg, arrivals)
	if kept.AutoscaleVMHours <= perfect.AutoscaleVMHours {
		t.Errorf("keep-forever vCPU-hours %.3f not above perfect scale-down %.3f",
			kept.AutoscaleVMHours, perfect.AutoscaleVMHours)
	}
	if kept.VMAutoscaleUSD <= perfect.VMAutoscaleUSD {
		t.Errorf("keep-forever cost $%.4f not above perfect scale-down $%.4f",
			kept.VMAutoscaleUSD, perfect.VMAutoscaleUSD)
	}
	if kept.SLOViolations != perfect.SLOViolations ||
		kept.MeanStretch != perfect.MeanStretch || kept.P99Stretch != perfect.P99Stretch {
		t.Errorf("capacity retention changed job outcomes:\nkeep    %+v\nperfect %+v", kept, perfect)
	}
}
