package experiments

import (
	"fmt"
	"math"
	"time"

	"splitserve/internal/autoscale"
	"splitserve/internal/billing"
	"splitserve/internal/cloud"
	"splitserve/internal/s3q"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/kmeans"
	"splitserve/internal/workloads/pagerank"
	"splitserve/internal/workloads/sparkpi"
	"splitserve/internal/workloads/tpcds"
)

// Calibration constants. All time/cost modelling lives in the substrate
// packages; these scale per-row CPU costs so the "Spark R VM" baselines
// land in the paper's measured ballpark (see EXPERIMENTS.md for
// paper-vs-measured on every figure).
const (
	tpcdsWorkScale    = 12
	tpcdsPartitions   = 200 // Spark SQL's default shuffle partitions
	tpcdsSample       = 32
	pagerankWorkScale = 12
	pagerankSample    = 4
	kmeansWorkScale   = 4
	kmeansSample      = 10
	// kmeansExecMemMB mirrors spark.executor.memory=1g: with the 3M-point
	// cached dataset this is ample across 16 executors and thrashing
	// across 4 — the paper's 10x under-provisioning collapse.
	kmeansExecMemMB = 1024
	// quboleSeqWindow: Qubole's shuffle writes objects near-sequentially
	// and fetches a handful at a time.
	quboleSeqWindow = 4
	// Driver-side overheads (real Spark: stage launch is DAG bookkeeping,
	// task-set construction and binary broadcast; the driver dispatches
	// tasks serially).
	defaultStageOverhead = 1400 * time.Millisecond
	defaultDispatchCost  = 4 * time.Millisecond
)

// quboleS3 returns the S3 model used for the Qubole baseline: effective
// sustained request rates under throttling-induced client backoff
// (SlowDown retries), calibrated against the paper's measured slowdowns.
func quboleS3() s3q.Options {
	o := s3q.DefaultOptions()
	o.PutPerSec = 60
	o.GetPerSec = 120
	o.RequestPipeline = quboleSeqWindow
	return o
}

// Figure1 regenerates the cost-vs-time-in-use comparison of one vCPU on an
// m4.large against a 1536 MB Lambda.
func Figure1(step, max time.Duration) []billing.CostPoint {
	return billing.Figure1Curve(cloud.M4Large.PricePerHour, step, max)
}

// Figure2 regenerates the diurnal forecast with provisioning policies.
type Figure2Result struct {
	Series   *autoscale.Series
	Policies []autoscale.PolicyCost
}

// Figure2 builds the workday series and prices the m(t)+k·σ(t) policies.
func Figure2() *Figure2Result {
	s := autoscale.Diurnal(autoscale.DefaultSeriesConfig())
	vCPUPrice := cloud.M4Large.PricePerHour / float64(cloud.M4Large.VCPUs)
	var policies []autoscale.PolicyCost
	for _, k := range []float64{0, 1, 2} {
		policies = append(policies, s.EvaluatePolicy(k, vCPUPrice))
	}
	return &Figure2Result{Series: s, Policies: policies}
}

// ProfilePoint is one Figure 4 sample.
type ProfilePoint struct {
	Pages       int
	Parallelism int
	ExecTime    time.Duration
	CostUSD     float64
}

// Figure4 profiles PageRank execution time and cost versus degree of
// parallelism, all-Lambda (fig 4a) or all-VM (fig 4b), for the paper's
// three dataset sizes. Parallelism sweeps 1..128 in powers of two.
func Figure4(lambda bool, seed uint64) ([]ProfilePoint, error) {
	var out []ProfilePoint
	for _, pages := range []int{25_000, 50_000, 100_000} {
		for par := 1; par <= 128; par *= 2 {
			cfg := pagerank.DefaultConfig()
			cfg.Pages = pages
			cfg.Partitions = par
			cfg.Iterations = 3
			cfg.WorkScale = pagerankWorkScale
			cfg.Seed = seed
			w := pagerank.New(cfg)
			kind := SSFullVM
			if lambda {
				kind = SSLambda
			}
			workerType, _ := cloud.SmallestFor(par)
			res, err := Run(Scenario{
				Kind: kind, R: par, SmallR: par,
				WorkerVMType: workerType,
				MasterVMType: cloud.M4XLarge,
				Seed:         seed,
			}, w)
			if err != nil {
				return nil, fmt.Errorf("figure4(pages=%d par=%d): %w", pages, par, err)
			}
			out = append(out, ProfilePoint{
				Pages: pages, Parallelism: par,
				ExecTime: res.ExecTime, CostUSD: res.CostUSD,
			})
		}
	}
	return out, nil
}

// tpcdsScenarios are Figure 5's seven configurations (R=32, r=8,
// m4.10xlarge workers and master, as in the paper).
func tpcdsScenarios(seed uint64) []Scenario {
	base := Scenario{
		R: 32, SmallR: 8,
		WorkerVMType: cloud.M410XLarge,
		MasterVMType: cloud.M410XLarge,
		Seed:         seed,
		S3:           quboleS3(),
	}
	kinds := []Kind{SparkSmallVM, SparkFullVM, SparkAutoscale, QuboleLambda, SSFullVM, SSLambda, SSHybrid}
	var out []Scenario
	for _, k := range kinds {
		sc := base
		sc.Kind = k
		out = append(out, sc)
	}
	return out
}

// Figure5 runs Q5/Q16/Q94/Q95 at SF=8 under every scenario.
func Figure5(seed uint64) ([]*Result, error) {
	var out []*Result
	for _, id := range []string{"q5", "q16", "q94", "q95"} {
		for _, sc := range tpcdsScenarios(seed) {
			q := tpcds.NewQuery(id, 8, tpcdsPartitions).WithWorkScale(tpcdsWorkScale).WithSample(tpcdsSample)
			res, err := Run(sc, q)
			if err != nil {
				return nil, fmt.Errorf("figure5 %s under %s: %w", id, sc.Name(), err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// pagerankConfig is the Figure 6/7 workload (850k pages, R=16, r=3,
// m4.4xlarge worker, master+HDFS colocated on an m4.xlarge).
func pagerankConfig(seed uint64) pagerank.Config {
	cfg := pagerank.DefaultConfig()
	cfg.WorkScale = pagerankWorkScale
	cfg.SampleFactor = pagerankSample
	cfg.Seed = seed
	return cfg
}

func pagerankScenarios(seed uint64, kinds []Kind) []Scenario {
	base := Scenario{
		R: 16, SmallR: 3,
		WorkerVMType: cloud.M44XLarge,
		MasterVMType: cloud.M4XLarge,
		Seed:         seed,
		S3:           quboleS3(),
		// Figure 7: a core on an existing VM frees at 45 s.
		SegueAt:       45 * time.Second,
		LambdaTimeout: 40 * time.Second,
	}
	var out []Scenario
	for _, k := range kinds {
		sc := base
		sc.Kind = k
		out = append(out, sc)
	}
	return out
}

// Figure6 runs PageRank-850k under all eight scenarios.
func Figure6(seed uint64) ([]*Result, error) {
	kinds := []Kind{SparkSmallVM, SparkFullVM, SparkAutoscale, QuboleLambda, SSFullVM, SSLambda, SSHybrid, SSHybridSegue}
	var out []*Result
	for _, sc := range pagerankScenarios(seed, kinds) {
		res, err := Run(sc, pagerank.New(pagerankConfig(seed)))
		if err != nil {
			return nil, fmt.Errorf("figure6 %s: %w", sc.Name(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Figure7 reproduces the execution-timeline comparison: (i) Spark 16 VM,
// (ii) SS 3 VM / 13 La, (iii) the same with segue at 45 s. It returns the
// scenario results whose Logs carry the timelines.
func Figure7(seed uint64) ([]*Result, error) {
	kinds := []Kind{SparkFullVM, SSHybrid, SSHybridSegue}
	var out []*Result
	for _, sc := range pagerankScenarios(seed, kinds) {
		cfg := pagerankConfig(seed)
		cfg.Iterations = 2 // the paper's 6-stage timeline
		res, err := Run(sc, pagerank.New(cfg))
		if err != nil {
			return nil, fmt.Errorf("figure7 %s: %w", sc.Name(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// TrialStats aggregates repeated trials of one scenario (Figure 8's error
// bars: 15 independent trials).
type TrialStats struct {
	Scenario   string
	MeanTime   time.Duration
	StdDevTime time.Duration
	MeanCost   float64
	StdDevCost float64
	Trials     int
}

// Figure8 runs K-means (3M points, R=16, r=4) under each scenario with
// `trials` independent seeds and reports mean and standard deviation.
func Figure8(seed uint64, trials int) ([]TrialStats, error) {
	if trials <= 0 {
		trials = 15
	}
	base := Scenario{
		R: 16, SmallR: 4,
		WorkerVMType: cloud.M44XLarge,
		MasterVMType: cloud.M4XLarge,
		ExecMemoryMB: kmeansExecMemMB,
		S3:           quboleS3(),
		// The paper observes K-means autoscale VMs "available to use
		// within ~1 minute"; the delay is sampled around that mean, which
		// is what spreads the trial error bars.
		VMBootMean: 60 * time.Second,
	}
	kinds := []Kind{SparkSmallVM, SparkFullVM, SparkAutoscale, QuboleLambda, SSFullVM, SSLambda, SSHybrid}
	var out []TrialStats
	for _, k := range kinds {
		var times, costs []float64
		for trial := 0; trial < trials; trial++ {
			sc := base
			sc.Kind = k
			sc.Seed = seed + uint64(trial)*101
			cfg := kmeans.DefaultConfig()
			cfg.WorkScale = kmeansWorkScale
			cfg.SampleFactor = kmeansSample
			cfg.ConvergenceDist = -1 // HiBench-style fixed 5 iterations
			cfg.Seed = sc.Seed
			res, err := Run(sc, kmeans.New(cfg))
			if err != nil {
				return nil, fmt.Errorf("figure8 %s trial %d: %w", sc.Name(), trial, err)
			}
			times = append(times, res.ExecTime.Seconds())
			costs = append(costs, res.CostUSD)
		}
		mt, st := meanStd(times)
		mc, sc2 := meanStd(costs)
		out = append(out, TrialStats{
			Scenario:   base.withKind(k).Name(),
			MeanTime:   time.Duration(mt * float64(time.Second)),
			StdDevTime: time.Duration(st * float64(time.Second)),
			MeanCost:   mc,
			StdDevCost: sc2,
			Trials:     trials,
		})
	}
	return out, nil
}

func (s Scenario) withKind(k Kind) Scenario {
	s.Kind = k
	return s
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)-1))
}

// Figure9 runs SparkPi (1e10 darts, R=64, r=4) under its six scenarios.
func Figure9(seed uint64) ([]*Result, error) {
	base := Scenario{
		R: 64, SmallR: 4,
		WorkerVMType: cloud.M416XLarge,
		MasterVMType: cloud.M4XLarge,
		Seed:         seed,
		S3:           quboleS3(),
	}
	// The paper benchmarks a warm Qubole deployment (its cold Spark-
	// runtime bootstrap would otherwise dominate this seconds-long job,
	// which the paper's near-parity measurements rule out).
	base.QuboleLaunchDelay = 1500 * time.Millisecond
	kinds := []Kind{SparkSmallVM, SparkFullVM, QuboleLambda, SSFullVM, SSLambda, SSHybrid}
	var out []*Result
	for _, k := range kinds {
		sc := base
		sc.Kind = k
		cfg := sparkpi.DefaultConfig()
		cfg.Seed = seed
		res, err := Run(sc, sparkpi.New(cfg))
		if err != nil {
			return nil, fmt.Errorf("figure9 %s: %w", sc.Name(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// NewTPCDSQuery exposes the calibrated Figure 5 query construction for the
// public API and examples.
func NewTPCDSQuery(id string) workloads.Workload {
	return tpcds.NewQuery(id, 8, tpcdsPartitions).WithWorkScale(tpcdsWorkScale).WithSample(tpcdsSample)
}

// NewPageRank exposes the calibrated Figure 6 PageRank workload.
func NewPageRank(seed uint64) workloads.Workload {
	return pagerank.New(pagerankConfig(seed))
}

// NewKMeans exposes the calibrated Figure 8 K-means workload.
func NewKMeans(seed uint64) workloads.Workload {
	cfg := kmeans.DefaultConfig()
	cfg.WorkScale = kmeansWorkScale
	cfg.SampleFactor = kmeansSample
	cfg.ConvergenceDist = -1
	cfg.Seed = seed
	return kmeans.New(cfg)
}

// NewSparkPi exposes the calibrated Figure 9 SparkPi workload.
func NewSparkPi(seed uint64) workloads.Workload {
	cfg := sparkpi.DefaultConfig()
	cfg.Seed = seed
	return sparkpi.New(cfg)
}

// Figure6Debug runs PageRank-850k under a single scenario kind (calibration
// tooling).
func Figure6Debug(seed uint64, kind Kind) (*Result, error) {
	scs := pagerankScenarios(seed, []Kind{kind})
	return Run(scs[0], pagerank.New(pagerankConfig(seed)))
}
