package experiments

import (
	"fmt"
	"time"

	"splitserve/internal/billing"
	"splitserve/internal/cloud"
	"splitserve/internal/netsim"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/storage"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/pagerank"
)

// Extension experiment: BurScale-style burstable standbys versus
// SplitServe's Lambdas. The paper positions BurScale [7] as a
// complementary remedy — standby burstable VMs absorb a transient
// overload — but notes that "BurScale's efficacy relies on being able to
// manage token state properly despite workload uncertainty, a complexity
// SplitServe does not face". This experiment quantifies that: a PageRank
// burst is bridged either by 13 Lambdas (SplitServe) or by 7 standby
// t3.large instances whose CPU-credit balance may or may not be healthy.

// BurScaleResult compares the three bridging options.
type BurScaleResult struct {
	Label    string
	ExecTime time.Duration
	CostUSD  float64
}

// ExtensionBurScale runs the comparison: SplitServe hybrid vs burstable
// standbys with full credits vs burstable standbys that arrive depleted
// (the token-state risk the paper alludes to).
func ExtensionBurScale(seed uint64) ([]BurScaleResult, error) {
	w := pagerank.New(pagerankConfig(seed))

	hybrid, err := Run(Scenario{
		Kind: SSHybrid, R: 16, SmallR: 3,
		WorkerVMType: cloud.M44XLarge,
		MasterVMType: cloud.M4XLarge,
		Seed:         seed,
	}, w)
	if err != nil {
		return nil, fmt.Errorf("burscale: hybrid: %w", err)
	}

	full, err := runBurstableStandby(seed, w, 30*60) // 30 vCPU-minutes each
	if err != nil {
		return nil, err
	}
	depleted, err := runBurstableStandby(seed, w, 0)
	if err != nil {
		return nil, err
	}
	return []BurScaleResult{
		{Label: "SplitServe 3 VM / 13 La", ExecTime: hybrid.ExecTime, CostUSD: hybrid.CostUSD},
		{Label: "BurScale standby t3 (full credits)", ExecTime: full.ExecTime, CostUSD: full.CostUSD},
		{Label: "BurScale standby t3 (depleted credits)", ExecTime: depleted.ExecTime, CostUSD: depleted.CostUSD},
	}, nil
}

// runBurstableStandby executes the workload on 3 regular cores plus 7
// burstable t3.large standbys (14 cores) with the given initial credit
// balance per instance.
func runBurstableStandby(seed uint64, w workloads.Workload, creditsSeconds float64) (*BurScaleResult, error) {
	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	provider := cloud.NewProvider(clock, net, simrand.New(seed+1), cloud.DefaultOptions())
	_ = provider.ProvisionReadyVM(cloud.M4XLarge) // master

	worker := provider.ProvisionReadyVM(cloud.M44XLarge)
	standbys := make([]*cloud.VM, 0, 7)
	gauges := make(map[string]*cloud.CreditGauge, 7)
	for i := 0; i < 7; i++ {
		vm, gauge := provider.ProvisionReadyBurstableVM(cloud.T3Large, cloud.T3BaselineFraction, creditsSeconds)
		standbys = append(standbys, vm)
		gauges[vm.ID] = gauge
	}

	backend := engine.NewStandalone(engine.StandaloneConfig{
		VMs:            []*cloud.VM{worker},
		UsableCores:    3,
		StandbyVMs:     standbys,
		StandbyCredits: gauges,
	})
	cluster, err := engine.New(engine.Config{
		AppID:               "burscale",
		Clock:               clock,
		Net:                 net,
		Provider:            provider,
		Store:               storage.NewLocal(clock, net),
		Backend:             backend,
		Alloc:               engine.DefaultAllocConfig(engine.AllocStatic, 16, 16),
		SLO:                 w.SLO(),
		StageLaunchOverhead: defaultStageOverhead,
		TaskDispatchCost:    defaultDispatchCost,
	})
	if err != nil {
		return nil, err
	}
	report, err := w.Run(cluster)
	if err != nil {
		return nil, fmt.Errorf("burscale: standby run: %w", err)
	}
	elapsed := report.Elapsed + appStartup

	// Marginal cost: the worker's 3 cores plus the standbys for the run.
	var meter billing.Meter
	meter.AddVM(worker.ID, worker.Type.PricePerHour, worker.Type.VCPUs, 3, elapsed)
	for _, vm := range standbys {
		meter.AddVM(vm.ID, vm.Type.PricePerHour, vm.Type.VCPUs, vm.Type.VCPUs, elapsed)
	}
	return &BurScaleResult{
		Label:    fmt.Sprintf("burstable standby (credits=%.0fs)", creditsSeconds),
		ExecTime: elapsed,
		CostUSD:  meter.Total(),
	}, nil
}
