package experiments

import (
	"fmt"
	"strings"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/shard"
	"splitserve/internal/simrand"
)

// ShardScaling runs one skewed multi-tenant job stream through the
// sharded control plane at 1, 2 and 4 shards on the same total pool. It
// makes the control-plane trade visible: sharding partitions the pool
// (so a hot tenant's shard can saturate while others idle), and
// work-stealing is what claws the stranded capacity back — the steal
// count, per-run SLO attainment and queue-wait tail tell whether it did.
// Deterministic in the seed, like every experiment here.
func ShardScaling(seed uint64) ([]*shard.Report, error) {
	const (
		jobs     = 18
		jobCores = 4
		tenants  = 5
	)
	base, err := cluster.Baseline(NewSparkPi(seed), jobCores, seed)
	if err != nil {
		return nil, fmt.Errorf("shard scaling: baseline: %w", err)
	}
	arrivals, err := cluster.ParseArrivals("poisson:10s", jobs, seed)
	if err != nil {
		return nil, err
	}
	// Zipf tenant popularity: a couple of tenants dominate the stream,
	// the imbalance that makes per-shard saturation (and stealing) real.
	rng := simrand.New(seed ^ 0x5a4d)
	tenantOf := make([]string, jobs)
	for i := range tenantOf {
		tenantOf[i] = fmt.Sprintf("t%02d", rng.Zipf(1.2, tenants)-1)
	}

	var out []*shard.Report
	for _, shards := range []int{1, 2, 4} {
		specs := make([]cluster.JobSpec, jobs)
		for i, at := range arrivals {
			specs[i] = cluster.JobSpec{
				Name:     "sparkpi",
				Workload: NewSparkPi(seed + uint64(i)),
				Tenant:   tenantOf[i],
				Cores:    jobCores,
				Arrival:  at,
				Baseline: base,
			}
		}
		m, err := shard.New(shard.Config{
			Shards: shards,
			Cluster: cluster.Config{
				Jobs:      specs,
				PoolCores: 16,
				Policy:    cluster.FairShare(),
				Strategy:  cluster.StrategyQueue,
				Seed:      seed,
				Prof:      profiler,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("shard scaling: %w", err)
		}
		rep, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("shard scaling: shards=%d: %w", shards, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// FormatShardScaling renders the sweep as a table.
func FormatShardScaling(reps []*shard.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %6s %6s %5s %7s %7s %12s %12s %9s\n",
		"shards", "jobs", "done", "viol", "attain", "steals", "qwait-p99", "makespan", "cost")
	for _, r := range reps {
		fmt.Fprintf(&b, "%-7d %6d %6d %5d %6.1f%% %7d %12s %12s %8.2f$\n",
			r.Shards, r.Jobs, r.Completed, r.SLOViolations, 100*r.SLOAttainment, r.Steals,
			(time.Duration(r.QueueWaitP99US) * time.Microsecond).Round(time.Millisecond).String(),
			(time.Duration(r.MakespanUS) * time.Microsecond).Round(time.Millisecond).String(),
			r.TotalUSD)
	}
	return b.String()
}
