package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestClusterElasticityDefaultMix is the ISSUE's acceptance criterion on
// the default workload mix: with scale-down enabled the autoscaling run
// must report strictly lower VM-hours than scale-down disabled, at
// equal-or-better SLO attainment; adding deadline admission must not
// increase violations and must shed only jobs that never ran.
func TestClusterElasticityDefaultMix(t *testing.T) {
	reps, err := ClusterElasticity(1, 45*time.Second)
	if err != nil {
		t.Fatalf("ClusterElasticity: %v", err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports, want 3", len(reps))
	}
	keep, scale, deadline := reps[0], reps[1], reps[2]

	if keep.ScaleDownIdleUS != 0 || scale.ScaleDownIdleUS == 0 || deadline.ScaleDownIdleUS == 0 {
		t.Fatalf("variant config echoes wrong: %d / %d / %d",
			keep.ScaleDownIdleUS, scale.ScaleDownIdleUS, deadline.ScaleDownIdleUS)
	}
	if scale.VMsReleasedIdle == 0 {
		t.Fatalf("scale-down variant released no VMs:\n%s", scale)
	}
	if scale.VMHours >= keep.VMHours {
		t.Errorf("scale-down VM-hours %.3f not strictly below keep-forever %.3f",
			scale.VMHours, keep.VMHours)
	}
	if scale.SLOAttainment < keep.SLOAttainment {
		t.Errorf("scale-down attainment %.3f below keep-forever %.3f",
			scale.SLOAttainment, keep.SLOAttainment)
	}
	if scale.VMScaledownSavedUSD <= 0 {
		t.Errorf("scale-down saved $%.4f, want > 0", scale.VMScaledownSavedUSD)
	}
	if deadline.SLOViolations > scale.SLOViolations {
		t.Errorf("deadline admission raised violations: %d > %d",
			deadline.SLOViolations, scale.SLOViolations)
	}
	if deadline.SLOAttainment < scale.SLOAttainment {
		t.Errorf("deadline attainment %.3f below greedy %.3f",
			deadline.SLOAttainment, scale.SLOAttainment)
	}
	if deadline.TotalUSD > keep.TotalUSD {
		t.Errorf("deadline+scale-down cost $%.4f above keep-forever $%.4f",
			deadline.TotalUSD, keep.TotalUSD)
	}
	for _, j := range deadline.JobReports {
		if j.Shed != "" && (j.StartUS != 0 || j.VMTasks+j.LambdaTasks != 0) {
			t.Errorf("shed job %d shows execution: %+v", j.ID, j)
		}
	}

	table := FormatClusterElasticity(reps)
	for _, want := range []string{"keep-forever", "greedy", "deadline", "vm-hours"} {
		if !strings.Contains(table, want) {
			t.Errorf("elasticity table missing %q:\n%s", want, table)
		}
	}
}
