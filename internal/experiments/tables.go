package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatResults renders scenario results as an aligned text table with a
// speed-up column relative to the named baseline scenario (the paper
// normalises against "Spark R VM").
func FormatResults(title string, results []*Result, baseline string) string {
	var base time.Duration
	for _, r := range results {
		if r.Scenario == baseline {
			base = r.ExecTime
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-28s %12s %10s %10s %6s %6s\n",
		"scenario", "exec time", "vs base", "cost USD", "vmEx", "laEx")
	for _, r := range results {
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", r.ExecTime.Seconds()/base.Seconds())
		}
		fmt.Fprintf(&b, "%-28s %12s %10s %10.4f %6d %6d\n",
			r.Scenario, fmtDur(r.ExecTime), rel, r.CostUSD, r.VMExecs, r.Lambdas)
	}
	return b.String()
}

// FormatResultsByWorkload groups results (e.g. Figure 5's four queries)
// and renders one table per workload.
func FormatResultsByWorkload(title string, results []*Result, baseline string) string {
	byW := map[string][]*Result{}
	var order []string
	for _, r := range results {
		if _, ok := byW[r.Workload]; !ok {
			order = append(order, r.Workload)
		}
		byW[r.Workload] = append(byW[r.Workload], r)
	}
	var b strings.Builder
	for _, w := range order {
		b.WriteString(FormatResults(fmt.Sprintf("%s: %s", title, w), byW[w], baseline))
		b.WriteString("\n")
	}
	return b.String()
}

// FormatProfile renders Figure 4 sweeps.
func FormatProfile(title string, points []ProfilePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%8s %12s %12s %10s\n", "pages", "parallelism", "exec time", "cost USD")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %12d %12s %10.4f\n", p.Pages, p.Parallelism, fmtDur(p.ExecTime), p.CostUSD)
	}
	return b.String()
}

// FormatTrials renders Figure 8 statistics.
func FormatTrials(title string, stats []TrialStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-28s %12s %10s %12s %12s %7s\n",
		"scenario", "mean time", "± stddev", "mean cost", "± stddev", "trials")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-28s %12s %10s %12.4f %12.4f %7d\n",
			s.Scenario, fmtDur(s.MeanTime), fmtDur(s.StdDevTime), s.MeanCost, s.StdDevCost, s.Trials)
	}
	return b.String()
}

// Speedup returns t(base)/t(other) - formatted relative improvement the
// paper quotes, e.g. "takes 55.2% less execution time".
func Speedup(results []*Result, base, other string) (float64, error) {
	var tb, to time.Duration
	for _, r := range results {
		switch r.Scenario {
		case base:
			tb = r.ExecTime
		case other:
			to = r.ExecTime
		}
	}
	if tb == 0 || to == 0 {
		return 0, fmt.Errorf("experiments: scenarios %q/%q not found", base, other)
	}
	return 1 - to.Seconds()/tb.Seconds(), nil
}

// AverageByScenario averages exec time per scenario across workloads
// (Figure 5's "on average" statements).
func AverageByScenario(results []*Result) map[string]time.Duration {
	sums := map[string]time.Duration{}
	counts := map[string]int{}
	for _, r := range results {
		sums[r.Scenario] += r.ExecTime
		counts[r.Scenario]++
	}
	out := make(map[string]time.Duration, len(sums))
	for k, v := range sums {
		out[k] = v / time.Duration(counts[k])
	}
	return out
}

// ScenarioNames returns the distinct scenario labels in first-seen order.
func ScenarioNames(results []*Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range results {
		if !seen[r.Scenario] {
			seen[r.Scenario] = true
			out = append(out, r.Scenario)
		}
	}
	return out
}

// SortResults orders results by workload then scenario (stable output for
// golden comparisons).
func SortResults(results []*Result) {
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Workload != results[j].Workload {
			return results[i].Workload < results[j].Workload
		}
		return results[i].Scenario < results[j].Scenario
	})
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}
