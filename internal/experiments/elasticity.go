package experiments

import (
	"fmt"
	"strings"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/workloads"
)

// ClusterElasticity measures the cost side of the paper's elasticity
// argument with real task-graph jobs: the same autoscaling job stream runs
// three times against one undersized shared pool —
//
//  1. keep-forever: procured VMs stay in the pool until the run ends (the
//     pre-elasticity behavior, and what naive autoscaling pays);
//  2. scale-down: procured VMs are released back to the provider after
//     `idle` of full idleness;
//  3. scale-down + deadline admission: additionally, jobs whose SLO the
//     fluid model deems unattainable are delayed or shed instead of being
//     admitted to miss.
//
// Scale-down should strictly lower VM-hours without hurting SLO
// attainment (the released instances were idle); deadline admission then
// trades shed jobs for attainment on the jobs that do run.
func ClusterElasticity(seed uint64, idle time.Duration) ([]*cluster.Report, error) {
	type entry struct {
		name string
		mk   func(seed uint64) workloads.Workload
	}
	mix := []entry{
		{"sparkpi", NewSparkPi},
		{"pagerank", NewPageRank},
		{"kmeans", NewKMeans},
	}
	const (
		jobs     = 6
		jobCores = 8
	)

	baselines := make(map[string]time.Duration, len(mix))
	for _, e := range mix {
		base, err := cluster.Baseline(e.mk(seed), jobCores, seed)
		if err != nil {
			return nil, fmt.Errorf("cluster elasticity: baseline %s: %w", e.name, err)
		}
		baselines[e.name] = base
	}

	arrivals, err := cluster.ParseArrivals("poisson:30s", jobs, seed)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		admission cluster.Admission
		scaledown time.Duration
	}{
		{cluster.AdmissionGreedy, 0},
		{cluster.AdmissionGreedy, idle},
		{cluster.AdmissionDeadline, idle},
	}
	var out []*cluster.Report
	for _, v := range variants {
		specs := make([]cluster.JobSpec, jobs)
		for i, at := range arrivals {
			e := mix[i%len(mix)]
			specs[i] = cluster.JobSpec{
				Name:     e.name,
				Workload: e.mk(seed + uint64(i)),
				Cores:    jobCores,
				Arrival:  at,
				Baseline: baselines[e.name],
			}
		}
		s, err := cluster.New(cluster.Config{
			Jobs:          specs,
			PoolCores:     8,
			Policy:        cluster.FairShare(),
			Strategy:      cluster.StrategyAutoscale,
			SLOFactor:     1.5,
			Seed:          seed,
			Admission:     v.admission,
			ScaleDownIdle: v.scaledown,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster elasticity %s: %w", v.admission, err)
		}
		rep, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("cluster elasticity %s: %w", v.admission, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// FormatClusterElasticity renders the elasticity comparison as a table.
func FormatClusterElasticity(reports []*cluster.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %5s %5s %5s %7s %8s %8s %9s %9s\n",
		"variant", "jobs", "shed", "viol", "attain", "vm-hours", "saved-h", "saved$", "cost")
	for _, r := range reports {
		variant := r.Admission
		if r.ScaleDownIdleUS > 0 {
			variant += "+scaledown" +
				(time.Duration(r.ScaleDownIdleUS) * time.Microsecond).Round(time.Second).String()
		} else {
			variant += " keep-forever"
		}
		fmt.Fprintf(&b, "%-22s %5d %5d %5d %6.1f%% %8.3f %8.3f %8.4f$ %8.2f$\n",
			variant, r.Jobs, r.Shed, r.SLOViolations, 100*r.SLOAttainment,
			r.VMHours, r.VMHoursSaved, r.VMScaledownSavedUSD, r.TotalUSD)
	}
	return b.String()
}
