package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestWarmPoolCrossover is the acceptance check of the warm-pool
// experiment: in the saturated high-reuse cell (short arrival gap, many
// repeat shuffle reads) the warm pool with the /tmp cache tier must beat
// BOTH alternatives — VM autoscaling fails the SLO bar waiting out VM
// boots, and cold-start Lambda matches attainment but bills longer leases
// for the same work — with the provisioned-idle dollars itemized on the
// report. In the sparse low-reuse cell the same pool must LOSE: idle
// premium with nothing to amortize it.
func TestWarmPoolCrossover(t *testing.T) {
	cells, err := WarmPoolComparison(1, WarmPoolSweepConfig{
		Gaps:   []time.Duration{10 * time.Second, 240 * time.Second},
		Reuses: []int{6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	t.Logf("\n%s", FormatWarmPoolComparison(cells))

	hot, sparse := cells[0], cells[1]
	if hot.Gap != 10*time.Second || sparse.Gap != 240*time.Second {
		t.Fatalf("cell order: got gaps %v, %v", hot.Gap, sparse.Gap)
	}

	warm, vm, cold := hot.Run(WarmModeWarm), hot.Run(WarmModeVM), hot.Run(WarmModeCold)
	if len(hot.Runs) != 3 || warm == nil || vm == nil || cold == nil {
		t.Fatalf("hot cell runs = %d, want vm/cold/warm", len(hot.Runs))
	}
	if !hot.WarmWins() {
		t.Errorf("warm+tmp did not win the high-rate high-reuse cell: warm $%.4f (attain %.2f), vm $%.4f (attain %.2f), cold $%.4f (attain %.2f)",
			warm.Report.TotalUSD, warm.Report.SLOAttainment,
			vm.Report.TotalUSD, vm.Report.SLOAttainment,
			cold.Report.TotalUSD, cold.Report.SLOAttainment)
	}
	if sparse.WarmWins() {
		t.Errorf("warm+tmp should not win the sparse cell: idle premium has nothing to amortize it")
	}

	// The warm run's new economics and telemetry must be visible.
	w := warm.Report
	if w.LambdaIdleUSD <= 0 {
		t.Errorf("warm run LambdaIdleUSD = %v, want > 0 (idle provisioned capacity is never free)", w.LambdaIdleUSD)
	}
	if w.WarmHits == 0 {
		t.Errorf("warm run WarmHits = 0, want > 0")
	}
	if w.TmpCacheHits == 0 {
		t.Errorf("warm run TmpCacheHits = 0, want > 0")
	}
	if got := w.VMBaseUSD + w.VMAutoscaleUSD + w.LambdaUSD + w.LambdaIdleUSD; !within(got, w.TotalUSD, 1e-9) {
		t.Errorf("TotalUSD = %v, want sum of line items %v", w.TotalUSD, got)
	}
	// The alternatives must not be billed for idle capacity they never had.
	if vm.Report.LambdaIdleUSD != 0 || cold.Report.LambdaIdleUSD != 0 {
		t.Errorf("vm/cold runs report LambdaIdleUSD %v/%v, want 0",
			vm.Report.LambdaIdleUSD, cold.Report.LambdaIdleUSD)
	}

	// Every run carries a causal attribution whose aggregate blame sums to
	// the aggregate makespan (the layer-4 invariant, here over real sweep
	// logs rather than synthetic fixtures).
	for _, cell := range cells {
		for _, run := range cell.Runs {
			a := run.Attrib
			if a == nil || a.Totals.Jobs == 0 {
				t.Fatalf("%s gap=%s: run has no attribution", run.Mode, cell.Gap)
			}
			var sum int64
			for _, v := range a.Totals.BlameUS {
				sum += v
			}
			if sum != a.Totals.MakespanUS {
				t.Errorf("%s gap=%s: blame sum %d != makespan %d",
					run.Mode, cell.Gap, sum, a.Totals.MakespanUS)
			}
		}
	}
}

// TestWarmPoolComparisonDeterministic: same seed → byte-identical tables.
func TestWarmPoolComparisonDeterministic(t *testing.T) {
	run := func() string {
		cells, err := WarmPoolComparison(11, WarmPoolSweepConfig{
			Jobs:   4,
			Gaps:   []time.Duration{30 * time.Second},
			Reuses: []int{2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return FormatWarmPoolComparison(cells)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed sweep diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "warm+tmp") {
		t.Fatalf("table missing warm+tmp row:\n%s", a)
	}
}

func within(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}
