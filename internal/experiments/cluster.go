package experiments

import (
	"fmt"
	"strings"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/workloads"
)

// ClusterComparison reproduces the fluid day model's strategy comparison
// (autoscale.CompareDayStrategies) with real task-graph jobs: one mixed
// stream of SparkPi, PageRank and K-means jobs — Poisson arrivals on the
// virtual clock — runs three times against the same shared 8-core pool,
// once per shortfall strategy. The fluid model predicts
// Queue > Autoscale > Bridge on SLO violations; this scenario shows the
// ordering surviving contact with real DAGs, stragglers and stage
// barriers (cross-checked in internal/cluster's tests).
func ClusterComparison(seed uint64) ([]*cluster.Report, error) {
	type entry struct {
		name string
		mk   func(seed uint64) workloads.Workload
	}
	mix := []entry{
		{"sparkpi", NewSparkPi},
		{"pagerank", NewPageRank},
		{"kmeans", NewKMeans},
	}
	const (
		jobs     = 6
		jobCores = 8
	)

	baselines := make(map[string]time.Duration, len(mix))
	for _, e := range mix {
		base, err := cluster.Baseline(e.mk(seed), jobCores, seed)
		if err != nil {
			return nil, fmt.Errorf("cluster comparison: baseline %s: %w", e.name, err)
		}
		baselines[e.name] = base
	}

	arrivals, err := cluster.ParseArrivals("poisson:30s", jobs, seed)
	if err != nil {
		return nil, err
	}

	var out []*cluster.Report
	for _, strategy := range []cluster.Strategy{
		cluster.StrategyQueue, cluster.StrategyAutoscale, cluster.StrategyBridge,
	} {
		specs := make([]cluster.JobSpec, jobs)
		for i, at := range arrivals {
			e := mix[i%len(mix)]
			specs[i] = cluster.JobSpec{
				Name:     e.name,
				Workload: e.mk(seed + uint64(i)),
				Cores:    jobCores,
				Arrival:  at,
				Baseline: baselines[e.name],
			}
		}
		s, err := cluster.New(cluster.Config{
			Jobs:      specs,
			PoolCores: 8,
			Policy:    cluster.FairShare(),
			Strategy:  strategy,
			SLOFactor: 1.5,
			Seed:      seed,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster comparison %s: %w", strategy, err)
		}
		rep, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("cluster comparison %s: %w", strategy, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// FormatClusterComparison renders the comparison as a table.
func FormatClusterComparison(reports []*cluster.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %5s %5s %5s %10s %8s %8s %8s %9s\n",
		"strategy", "jobs", "viol", "fail", "p99wait", "stretch", "util", "la-share", "cost")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-14s %5d %5d %5d %10s %7.2fx %7.1f%% %7.1f%% %8.2f$\n",
			r.Strategy, r.Jobs, r.SLOViolations, r.Failed,
			(time.Duration(r.QueueWaitP99US) * time.Microsecond).Round(time.Millisecond),
			r.MeanStretch, 100*r.CoreUtilization, 100*r.LambdaShare, r.TotalUSD)
	}
	return b.String()
}
