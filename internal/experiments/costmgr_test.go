package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"splitserve/internal/costmgr"
)

var updateProfiles = flag.Bool("update", false, "regenerate testdata/profiles.json from BuildProfileFile")

// loadTestProfiles returns the checked-in seed-1 profile file (the same
// bytes `splitserve-profile -out` writes). Regenerate after calibration
// changes with
//
//	go test ./internal/experiments -run CostManager -update
func loadTestProfiles(t *testing.T) *costmgr.File {
	t.Helper()
	path := filepath.Join("testdata", "profiles.json")
	if *updateProfiles {
		f, err := BuildProfileFile(1, nil, nil, nil)
		if err != nil {
			t.Fatalf("BuildProfileFile: %v", err)
		}
		buf, err := f.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := costmgr.Load(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	return f
}

// TestCostManagerComparisonAcceptance is the ISSUE's acceptance check: on
// the default mix at the same seed, profile-driven min-cost allocation
// must yield strictly lower total cost than the fixed per-job R at
// equal-or-better SLO attainment, and the run must score its predictions.
func TestCostManagerComparisonAcceptance(t *testing.T) {
	runs, err := CostManagerComparison(1, loadTestProfiles(t))
	if err != nil {
		t.Fatalf("CostManagerComparison: %v", err)
	}
	byAlloc := map[string]CostManagerRun{}
	for _, r := range runs {
		byAlloc[r.Alloc] = r
	}
	fixed, ok := byAlloc["fixed"]
	if !ok {
		t.Fatal("no fixed run in the comparison")
	}
	minCost, ok := byAlloc["min-cost"]
	if !ok {
		t.Fatal("no min-cost run in the comparison")
	}

	if fixed.Report.Alloc != "fixed" || minCost.Report.Alloc != "min-cost" {
		t.Fatalf("reports mislabeled: %q vs %q", fixed.Report.Alloc, minCost.Report.Alloc)
	}
	if got, want := minCost.Report.TotalUSD, fixed.Report.TotalUSD; got >= want {
		t.Errorf("min-cost total $%.4f not strictly below fixed $%.4f", got, want)
	}
	if got, want := minCost.Report.SLOAttainment, fixed.Report.SLOAttainment; got < want {
		t.Errorf("min-cost attainment %.3f below fixed %.3f", got, want)
	}
	if minCost.Report.PredictedJobs != minCost.Report.Jobs {
		t.Errorf("only %d/%d min-cost jobs carry predictions",
			minCost.Report.PredictedJobs, minCost.Report.Jobs)
	}
	if minCost.Report.MeanAbsRunPredErr <= 0 {
		t.Error("min-cost run reports no prediction error")
	}
	if len(minCost.Decisions) != minCost.Report.Jobs {
		t.Fatalf("%d decisions for %d jobs", len(minCost.Decisions), minCost.Report.Jobs)
	}
	for i, d := range minCost.Decisions {
		if d.Source != "profile" || d.Cores < 1 {
			t.Errorf("decision %d degenerate: %+v", i, d)
		}
	}

	table := FormatCostManagerComparison(runs)
	for _, frag := range []string{"fixed", "min-cost", "min-time", "knee", "attain", "|pred err|"} {
		if !strings.Contains(table, frag) {
			t.Errorf("comparison table lacks %q:\n%s", frag, table)
		}
	}
}
