package experiments

import (
	"fmt"
	"strings"
	"time"

	"splitserve/internal/attrib"
	"splitserve/internal/cluster"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/shufflereuse"
)

// NewShuffleReuse exposes the calibrated shuffle-reuse workload: one wide
// shuffle read several times over, the access pattern the warm-pool /tmp
// cache tier is built for.
func NewShuffleReuse(seed uint64) workloads.Workload {
	return shufflereuse.New(shufflereuse.DefaultConfig())
}

// Warm-pool sweep modes, in the order runs appear in each cell.
const (
	WarmModeVM   = "vm-autoscale"
	WarmModeCold = "cold-lambda"
	WarmModeWarm = "warm+tmp"
)

// WarmPoolRun is one substrate configuration of a sweep cell. Attrib is
// the causal attribution of the run's event log (observability layer 4):
// the per-cause blame decomposition that names what the substrate choice
// actually bought — e.g. the cold run's critical path carries
// lambda_cold_start time the warm run converts to warm_hit_saved.
type WarmPoolRun struct {
	Mode   string
	Report *cluster.Report
	Attrib *attrib.Report
}

// WarmPoolCell is one (arrival gap × shuffle reuse) point of the sweep:
// the same Poisson job stream run under VM autoscaling, cold-start Lambda
// bridging, and warm-pool Lambda bridging with the /tmp cache tier.
type WarmPoolCell struct {
	// Gap is the mean Poisson inter-arrival gap of the cell.
	Gap time.Duration
	// Reuse is how many actions each job runs over its shuffle.
	Reuse int
	Runs  []WarmPoolRun
}

// Run returns the cell's run for mode, or nil.
func (c *WarmPoolCell) Run(mode string) *WarmPoolRun {
	for i := range c.Runs {
		if c.Runs[i].Mode == mode {
			return &c.Runs[i]
		}
	}
	return nil
}

// WarmWins reports whether the warm-pool run beat BOTH alternatives at
// equal SLO attainment — the crossover criterion of the warm-pool
// experiment. A competitor is beaten either because it attains strictly
// less (it failed the SLO bar the warm pool clears, so its lower bill
// bought a worse service), or because it matched attainment and the warm
// run is strictly cheaper.
func (c *WarmPoolCell) WarmWins() bool {
	warm := c.Run(WarmModeWarm)
	if warm == nil {
		return false
	}
	w := warm.Report
	for _, mode := range []string{WarmModeVM, WarmModeCold} {
		comp := c.Run(mode)
		if comp == nil {
			return false
		}
		r := comp.Report
		if r.SLOAttainment < w.SLOAttainment {
			continue // failed the SLO bar
		}
		if r.SLOAttainment > w.SLOAttainment || r.TotalUSD <= w.TotalUSD {
			return false
		}
	}
	return true
}

// WarmPoolSweepConfig parameterises the crossover sweep.
type WarmPoolSweepConfig struct {
	// Jobs per cell (default 6).
	Jobs int
	// Gaps are the mean Poisson inter-arrival gaps swept (default
	// 10s, 60s, 240s: saturated → sparse).
	Gaps []time.Duration
	// Reuses are the per-job shuffle read counts swept (default 1, 6).
	Reuses []int
	// Rows / RowBytes shape the per-job shuffle (defaults 6000 rows ×
	// 8 KiB across 8 partitions ≈ 375 MiB, all keys distinct): big
	// enough that a Lambda executor's repeat reads are egress-bound,
	// which is exactly the regime the /tmp cache tier targets.
	Rows     int
	RowBytes int
	// PoolCores sizes the shared base VM pool (default 8 = JobCores: a
	// lone job is fully provisioned, so shortfall — and with it the
	// substrate choice — appears only under contention).
	PoolCores int
	// JobCores is the per-job full-provisioning demand R (default 8).
	JobCores int
	// WarmPool is the provisioned-concurrency target of the warm runs
	// (default max(JobCores-PoolCores, 3/4 JobCores); target tracking
	// resizes it from there).
	WarmPool int
	// SLOFactor (default 2.5: tight enough that waiting out a VM boot
	// breaks the deadline, loose enough that a covered shortfall meets
	// it).
	SLOFactor float64
	// VMBoot pins the boot delay of autoscale-procured VMs (default the
	// provider's nominal 110 s startup) so the sweep compares substrates,
	// not boot-delay draws.
	VMBoot time.Duration
}

func (c WarmPoolSweepConfig) withDefaults() WarmPoolSweepConfig {
	if c.Jobs <= 0 {
		c.Jobs = 6
	}
	if len(c.Gaps) == 0 {
		c.Gaps = []time.Duration{10 * time.Second, 60 * time.Second, 240 * time.Second}
	}
	if len(c.Reuses) == 0 {
		c.Reuses = []int{1, 6}
	}
	if c.Rows <= 0 {
		c.Rows = 6000
	}
	if c.RowBytes <= 0 {
		c.RowBytes = 8192
	}
	if c.JobCores <= 0 {
		c.JobCores = 8
	}
	if c.PoolCores <= 0 {
		c.PoolCores = c.JobCores
	}
	if c.WarmPool <= 0 {
		c.WarmPool = c.JobCores - c.PoolCores
		if c.WarmPool <= 0 {
			c.WarmPool = 3 * c.JobCores / 4
		}
	}
	if c.SLOFactor <= 0 {
		c.SLOFactor = 2.5
	}
	if c.VMBoot <= 0 {
		c.VMBoot = 110 * time.Second
	}
	return c
}

// WarmPoolComparison runs the crossover sweep: for every (gap × reuse)
// cell the same seeded Poisson stream of shuffle-reuse jobs is run three
// times — VM autoscaling, cold-start Lambda bridging, and a warm pool
// with the /tmp cache tier — so cost and SLO deltas within a cell are
// purely the substrate's doing. It answers the experiment's question: at
// what arrival rate and shuffle-reuse ratio does warm+cached Lambda beat
// both alternatives on dollars at equal SLO attainment.
func WarmPoolComparison(seed uint64, cfg WarmPoolSweepConfig) ([]WarmPoolCell, error) {
	cfg = cfg.withDefaults()

	// One baseline per reuse count: all cells share the workload shape.
	baselines := map[int]time.Duration{}
	workload := func(reuse int, seed uint64) workloads.Workload {
		wc := shufflereuse.DefaultConfig()
		wc.RowsPerPartition = cfg.Rows
		wc.RowBytes = cfg.RowBytes
		// All keys distinct: the map-side combiner must not collapse the
		// shuffle, or the repeat reads the sweep is about become trivial.
		wc.Keys = wc.Partitions * cfg.Rows
		wc.Reuse = reuse
		return shufflereuse.New(wc)
	}
	baseline := func(reuse int) (time.Duration, error) {
		if b, ok := baselines[reuse]; ok {
			return b, nil
		}
		b, err := cluster.Baseline(workload(reuse, seed), cfg.JobCores, seed)
		if err != nil {
			return 0, fmt.Errorf("warmpool sweep: baseline reuse=%d: %w", reuse, err)
		}
		baselines[reuse] = b
		return b, nil
	}

	var cells []WarmPoolCell
	for _, reuse := range cfg.Reuses {
		base, err := baseline(reuse)
		if err != nil {
			return nil, err
		}
		for _, gap := range cfg.Gaps {
			arrivals, err := cluster.ParseArrivals(fmt.Sprintf("poisson:%s", gap), cfg.Jobs, seed)
			if err != nil {
				return nil, fmt.Errorf("warmpool sweep: %w", err)
			}
			cell := WarmPoolCell{Gap: gap, Reuse: reuse}
			for _, mode := range []string{WarmModeVM, WarmModeCold, WarmModeWarm} {
				specs := make([]cluster.JobSpec, cfg.Jobs)
				for i, at := range arrivals {
					specs[i] = cluster.JobSpec{
						Name:     fmt.Sprintf("shufflereuse-r%d", reuse),
						Workload: workload(reuse, seed+uint64(i)),
						Cores:    cfg.JobCores,
						Arrival:  at,
						Baseline: base,
					}
				}
				cc := cluster.Config{
					Jobs:           specs,
					PoolCores:      cfg.PoolCores,
					Policy:         cluster.FairShare(),
					Strategy:       cluster.StrategyBridge,
					SLOFactor:      cfg.SLOFactor,
					VMBootOverride: cfg.VMBoot,
					Seed:           seed,
					Alloc:          "fixed",
				}
				switch mode {
				case WarmModeVM:
					cc.Strategy = cluster.StrategyAutoscale
				case WarmModeWarm:
					cc.WarmPool = cfg.WarmPool
					cc.TmpCache = true
				}
				s, err := cluster.New(cc)
				if err != nil {
					return nil, fmt.Errorf("warmpool sweep %s gap=%s reuse=%d: %w", mode, gap, reuse, err)
				}
				rep, err := s.Run()
				if err != nil {
					return nil, fmt.Errorf("warmpool sweep %s gap=%s reuse=%d: %w", mode, gap, reuse, err)
				}
				cell.Runs = append(cell.Runs, WarmPoolRun{
					Mode:   mode,
					Report: rep,
					Attrib: attrib.Analyze(s.Events().Events()),
				})
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// FormatWarmPoolComparison renders the sweep as one table per cell plus a
// crossover summary line. The winning substrate of each cell (cheapest at
// equal-or-better SLO attainment) is starred.
func FormatWarmPoolComparison(cells []WarmPoolCell) string {
	var b strings.Builder
	var crossed []string
	for _, cell := range cells {
		fmt.Fprintf(&b, "arrival gap %s, shuffle reads ×%d:\n", cell.Gap, cell.Reuse)
		fmt.Fprintf(&b, "  %-14s %6s %9s %9s %10s %9s %9s %9s %16s\n",
			"mode", "attain", "makespan", "cost", "lambda", "la-idle", "warm-hit", "tmp-hit", "top cause")
		for _, run := range cell.Runs {
			r := run.Report
			star := " "
			if run.Mode == WarmModeWarm && cell.WarmWins() {
				star = "*"
			}
			top := "-"
			if run.Attrib != nil {
				if c, _ := run.Attrib.Totals.Dominant(); c != "" {
					top = string(c)
				}
			}
			fmt.Fprintf(&b, " %s%-14s %5.1f%% %9s %8.2f$ %9.4f$ %8.4f$ %9d %9d %16s\n",
				star, run.Mode, 100*r.SLOAttainment,
				(time.Duration(r.MakespanUS) * time.Microsecond).Round(time.Second),
				r.TotalUSD, r.LambdaUSD, r.LambdaIdleUSD, r.WarmHits, r.TmpCacheHits, top)
		}
		if cell.WarmWins() {
			crossed = append(crossed, fmt.Sprintf("gap<=%s,reuse>=%d", cell.Gap, cell.Reuse))
		}
	}
	if len(crossed) > 0 {
		fmt.Fprintf(&b, "crossover: warm+tmp cheapest at equal-or-better SLO attainment in %d/%d cells (%s)\n",
			len(crossed), len(cells), strings.Join(crossed, "; "))
	} else {
		fmt.Fprintf(&b, "crossover: warm+tmp never cheapest in this sweep\n")
	}
	return b.String()
}
