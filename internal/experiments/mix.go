package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/cluster"
	"splitserve/internal/costmgr"
	"splitserve/internal/eventlog"
	"splitserve/internal/workloads"
)

// mixFactories is the calibrated workload mix the cluster tooling draws
// from; the names double as profile-curve keys, so `splitserve-profile
// -out` and `splitserve-cluster -cores auto` agree on vocabulary.
var mixFactories = map[string]func(seed uint64) workloads.Workload{
	"sparkpi":      NewSparkPi,
	"pagerank":     NewPageRank,
	"kmeans":       NewKMeans,
	"tpcds":        func(seed uint64) workloads.Workload { return NewTPCDSQuery("q95") },
	"shufflereuse": NewShuffleReuse,
}

// MixWorkload resolves a cluster-mix workload name to its calibrated
// factory.
func MixWorkload(name string) (func(seed uint64) workloads.Workload, bool) {
	mk, ok := mixFactories[name]
	return mk, ok
}

// MixNames lists the accepted mix workload names, sorted.
func MixNames() []string {
	names := make([]string, 0, len(mixFactories))
	for n := range mixFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileParallelisms is the default ladder of profiled core counts: the
// powers of two the paper's Figure 4 sweeps, stopping where the cluster
// pool sizes top out.
var ProfileParallelisms = []int{1, 2, 4, 8, 16}

// BuildProfileFile profiles each named mix workload on both substrates
// (all-VM and all-Lambda SplitServe scenarios) across the given
// parallelism ladder and assembles the versioned costmgr profile file.
// Curves come out in (workload, substrate) sorted order so the file is
// byte-stable for a given seed. A nil bus skips event logging.
func BuildProfileFile(seed uint64, names []string, pars []int, bus *eventlog.Bus) (*costmgr.File, error) {
	if len(names) == 0 {
		names = MixNames()
	}
	if len(pars) == 0 {
		pars = ProfileParallelisms
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)

	f := &costmgr.File{Version: costmgr.Version, Seed: seed}
	for _, name := range sorted {
		mk, ok := mixFactories[name]
		if !ok {
			return nil, fmt.Errorf("profile: unknown workload %q (accepted: %s)",
				name, strings.Join(MixNames(), ", "))
		}
		for _, substrate := range []string{costmgr.SubstrateLambda, costmgr.SubstrateVM} {
			kind := SSFullVM
			if substrate == costmgr.SubstrateLambda {
				kind = SSLambda
			}
			curve := costmgr.Curve{Workload: name, Substrate: substrate}
			for _, par := range pars {
				workerType, _ := cloud.SmallestFor(par)
				res, err := Run(Scenario{
					Kind: kind, R: par, SmallR: par,
					WorkerVMType: workerType,
					MasterVMType: cloud.M4XLarge,
					Seed:         seed,
					Events:       bus,
					AppID:        fmt.Sprintf("profile-%s-%s-x%d", name, substrate, par),
				}, mk(seed))
				if err != nil {
					return nil, fmt.Errorf("profile %s/%s x%d: %w", name, substrate, par, err)
				}
				curve.Points = append(curve.Points, costmgr.Point{
					Parallelism: par,
					ExecTimeUS:  res.ExecTime.Microseconds(),
					CostUSD:     res.CostUSD,
				})
			}
			f.Curves = append(f.Curves, curve)
		}
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("profile: built an invalid file: %w", err)
	}
	return f, nil
}

// CostManagerRun is one alloc configuration of the comparison: the label
// ("fixed" or a policy name), the cluster report it produced, and the
// per-job decisions that sized it (empty for fixed).
type CostManagerRun struct {
	Alloc     string
	Report    *cluster.Report
	Decisions []costmgr.Decision
}

// CostManagerComparison reruns the ClusterComparison job stream (six
// jobs, Poisson arrivals, shared 8-core pool, bridge strategy) once with
// the fixed per-job demand R=8 and once per cost-manager policy sizing
// each arriving job from the profile file. Same seed → the same arrival
// process and workloads in every run, so cost and SLO deltas are purely
// the allocator's doing.
func CostManagerComparison(seed uint64, profiles *costmgr.File) ([]CostManagerRun, error) {
	mgr, err := costmgr.NewManager(profiles)
	if err != nil {
		return nil, err
	}
	const (
		jobs       = 6
		fixedCores = 8
		poolCores  = 8
		sloFactor  = 1.5
	)
	mix := []string{"sparkpi", "pagerank", "kmeans"}

	arrivals, err := cluster.ParseArrivals("poisson:30s", jobs, seed)
	if err != nil {
		return nil, err
	}

	// Baselines are per (workload, cores): the fixed run calibrates at 8,
	// auto runs at whatever R the policy picked.
	type baseKey struct {
		name  string
		cores int
	}
	baselines := map[baseKey]time.Duration{}
	baseline := func(name string, cores int) (time.Duration, error) {
		k := baseKey{name, cores}
		if b, ok := baselines[k]; ok {
			return b, nil
		}
		b, err := cluster.Baseline(mixFactories[name](seed), cores, seed)
		if err != nil {
			return 0, fmt.Errorf("cost comparison: baseline %s x%d: %w", name, cores, err)
		}
		baselines[k] = b
		return b, nil
	}

	runOne := func(alloc string, cores []int, picks []*cluster.CostPick) (*cluster.Report, error) {
		specs := make([]cluster.JobSpec, jobs)
		for i, at := range arrivals {
			name := mix[i%len(mix)]
			base, err := baseline(name, cores[i])
			if err != nil {
				return nil, err
			}
			specs[i] = cluster.JobSpec{
				Name:     name,
				Workload: mixFactories[name](seed + uint64(i)),
				Cores:    cores[i],
				Arrival:  at,
				Baseline: base,
				Pick:     picks[i],
			}
		}
		s, err := cluster.New(cluster.Config{
			Jobs:      specs,
			PoolCores: poolCores,
			Policy:    cluster.FairShare(),
			Strategy:  cluster.StrategyBridge,
			SLOFactor: sloFactor,
			Seed:      seed,
			Alloc:     alloc,
		})
		if err != nil {
			return nil, fmt.Errorf("cost comparison %s: %w", alloc, err)
		}
		rep, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("cost comparison %s: %w", alloc, err)
		}
		return rep, nil
	}

	var out []CostManagerRun

	fixed := make([]int, jobs)
	for i := range fixed {
		fixed[i] = fixedCores
	}
	rep, err := runOne("fixed", fixed, make([]*cluster.CostPick, jobs))
	if err != nil {
		return nil, err
	}
	out = append(out, CostManagerRun{Alloc: "fixed", Report: rep})

	for _, pol := range []costmgr.Policy{costmgr.MinCost, costmgr.MinTime, costmgr.Knee} {
		cores := make([]int, jobs)
		picks := make([]*cluster.CostPick, jobs)
		decisions := make([]costmgr.Decision, jobs)
		for i := range arrivals {
			name := mix[i%len(mix)]
			d, err := mgr.Decide(pol, costmgr.Request{
				Workload:  name,
				MaxCores:  poolCores,
				Fallback:  fixedCores,
				SLOFactor: sloFactor,
			})
			if err != nil {
				return nil, fmt.Errorf("cost comparison %s job %d: %w", pol, i, err)
			}
			cores[i] = d.Cores
			decisions[i] = d
			picks[i] = &cluster.CostPick{
				Policy:           d.Policy,
				PredictedRun:     d.PredictedRun(),
				PredictedCostUSD: d.PredictedCostUSD,
				Source:           d.Source,
			}
		}
		rep, err := runOne(pol.String(), cores, picks)
		if err != nil {
			return nil, err
		}
		out = append(out, CostManagerRun{Alloc: pol.String(), Report: rep, Decisions: decisions})
	}
	return out, nil
}

// FormatCostManagerComparison renders the fixed-vs-auto sweep as a table:
// total cost, SLO attainment and VM-hours per alloc mode, plus the cost
// manager's mean absolute prediction error where predictions exist.
func FormatCostManagerComparison(runs []CostManagerRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %5s %6s %10s %9s %9s %10s\n",
		"alloc", "jobs", "viol", "attain", "vm-hours", "cost", "la-cost", "|pred err|")
	for _, run := range runs {
		r := run.Report
		predErr := "-"
		if r.PredictedJobs > 0 {
			predErr = fmt.Sprintf("%.1f%%", 100*r.MeanAbsRunPredErr)
		}
		fmt.Fprintf(&b, "%-10s %6d %5d %5.1f%% %10.3f %8.2f$ %8.2f$ %10s\n",
			run.Alloc, r.Jobs, r.SLOViolations, 100*r.SLOAttainment,
			r.VMHours, r.TotalUSD, r.LambdaUSD, predErr)
	}
	for _, run := range runs {
		if len(run.Decisions) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s picks:", run.Alloc)
		for _, d := range run.Decisions {
			fmt.Fprintf(&b, " %s=%d", d.Workload, d.Cores)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
