package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/eventlog"
	"splitserve/internal/workloads/pagerank"
	"splitserve/internal/workloads/sparkpi"
)

// smallWorkload is a fast PageRank for scenario-machinery tests.
func smallWorkload() *pagerank.Workload {
	cfg := pagerank.DefaultConfig()
	cfg.Pages = 20_000
	cfg.Partitions = 8
	cfg.Iterations = 2
	return pagerank.New(cfg)
}

func TestScenarioNames(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{SparkSmallVM, "Spark 8 VM"},
		{SparkFullVM, "Spark 32 VM"},
		{SparkAutoscale, "Spark 8/32 autoscale"},
		{QuboleLambda, "Qubole 32 La"},
		{SSFullVM, "SS 32 VM"},
		{SSLambda, "SS 32 La"},
		{SSHybrid, "SS 8 VM / 24 La"},
		{SSHybridSegue, "SS 8 VM / 24 La Segue"},
	}
	for _, tt := range tests {
		sc := Scenario{Kind: tt.kind, R: 32, SmallR: 8}
		if got := sc.Name(); got != tt.want {
			t.Errorf("Name(%d) = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestRunRejectsZeroR(t *testing.T) {
	if _, err := Run(Scenario{Kind: SparkFullVM}, smallWorkload()); err == nil {
		t.Fatal("R=0 accepted")
	}
}

func TestRunProducesCostBreakdown(t *testing.T) {
	res, err := Run(Scenario{Kind: SSHybrid, R: 8, SmallR: 2, Seed: 1}, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.ByKind["vm"] <= 0 || res.ByKind["lambda"] <= 0 {
		t.Fatalf("cost breakdown = %v, want vm and lambda components", res.ByKind)
	}
}

func TestQuboleBillsS3(t *testing.T) {
	res, err := Run(Scenario{Kind: QuboleLambda, R: 8, Seed: 1}, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.ByKind["s3"] <= 0 {
		t.Fatalf("Qubole run billed no S3 requests: %v", res.ByKind)
	}
	if res.ByKind["vm"] != 0 {
		t.Fatalf("all-Lambda run billed VM time: %v", res.ByKind)
	}
}

func TestProcuredVMBilledInFull(t *testing.T) {
	// Autoscale procures VMs; their cost must appear even though the
	// pre-existing workers are billed per used core. The job must be long
	// enough for the backlog-driven ramp to trigger.
	cfg := pagerank.DefaultConfig()
	cfg.Pages = 20_000
	cfg.Partitions = 8
	cfg.Iterations = 2
	cfg.WorkScale = 60
	w := pagerank.New(cfg)
	auto, err := Run(Scenario{Kind: SparkAutoscale, R: 8, SmallR: 2, VMBoot: 5 * time.Second, Seed: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(Scenario{Kind: SparkSmallVM, R: 8, SmallR: 2, Seed: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if auto.CostUSD <= static.CostUSD {
		t.Fatalf("autoscale cost %.4f not above static %.4f", auto.CostUSD, static.CostUSD)
	}
	if auto.ExecTime >= static.ExecTime {
		t.Fatalf("autoscale (%v) not faster than static under-provisioning (%v)", auto.ExecTime, static.ExecTime)
	}
}

func TestFigure1Shape(t *testing.T) {
	pts := Figure1(time.Second, 2*time.Minute)
	if len(pts) != 120 {
		t.Fatalf("points = %d", len(pts))
	}
	// Lambda cheaper early, VM cheaper late (the paper's crossover).
	first, last := pts[4], pts[len(pts)-1]
	if first.LambdaUSD >= first.VMvCPUUSD {
		t.Fatal("no early lambda advantage")
	}
	if last.LambdaUSD <= last.VMvCPUUSD {
		t.Fatal("no late VM advantage")
	}
}

func TestFigure2Policies(t *testing.T) {
	f := Figure2()
	if f.Series.Len() == 0 || len(f.Policies) != 3 {
		t.Fatalf("bad figure 2: %d samples, %d policies", f.Series.Len(), len(f.Policies))
	}
	if f.Policies[0].VMCostUSD >= f.Policies[2].VMCostUSD {
		t.Fatal("k=0 should buy fewer VM core-hours than k=2")
	}
}

func TestSpeedupHelper(t *testing.T) {
	results := []*Result{
		{Scenario: "A", ExecTime: 100 * time.Second},
		{Scenario: "B", ExecTime: 45 * time.Second},
	}
	imp, err := Speedup(results, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if imp < 0.54 || imp > 0.56 {
		t.Fatalf("Speedup = %v, want 0.55", imp)
	}
	if _, err := Speedup(results, "A", "missing"); err == nil {
		t.Fatal("missing scenario accepted")
	}
}

func TestFormatters(t *testing.T) {
	res := []*Result{
		{Scenario: "Spark 8 VM", Workload: "w", ExecTime: 10 * time.Second, CostUSD: 0.01},
		{Scenario: "SS 8 VM / 24 La", Workload: "w", ExecTime: 5 * time.Second, CostUSD: 0.02},
	}
	out := FormatResults("t", res, "Spark 8 VM")
	if !strings.Contains(out, "Spark 8 VM") || !strings.Contains(out, "0.50x") {
		t.Fatalf("FormatResults:\n%s", out)
	}
	out = FormatResultsByWorkload("t", res, "Spark 8 VM")
	if !strings.Contains(out, "t: w") {
		t.Fatalf("FormatResultsByWorkload:\n%s", out)
	}
	prof := FormatProfile("p", []ProfilePoint{{Pages: 1, Parallelism: 2, ExecTime: time.Second}})
	if !strings.Contains(prof, "parallelism") {
		t.Fatalf("FormatProfile:\n%s", prof)
	}
	tr := FormatTrials("x", []TrialStats{{Scenario: "s", MeanTime: time.Second, Trials: 3}})
	if !strings.Contains(tr, "trials") {
		t.Fatalf("FormatTrials:\n%s", tr)
	}
}

func TestAverageByScenario(t *testing.T) {
	res := []*Result{
		{Scenario: "A", ExecTime: 10 * time.Second},
		{Scenario: "A", ExecTime: 20 * time.Second},
		{Scenario: "B", ExecTime: 30 * time.Second},
	}
	avg := AverageByScenario(res)
	if avg["A"] != 15*time.Second || avg["B"] != 30*time.Second {
		t.Fatalf("avg = %v", avg)
	}
	names := ScenarioNames(res)
	if len(names) != 2 || names[0] != "A" {
		t.Fatalf("names = %v", names)
	}
}

func TestSegueScenarioUsesBothSubstratesThenVMs(t *testing.T) {
	cfg := pagerank.DefaultConfig()
	cfg.Pages = 120_000
	cfg.Partitions = 8
	cfg.Iterations = 4
	cfg.WorkScale = 10
	sc := Scenario{
		Kind: SSHybridSegue, R: 8, SmallR: 2,
		WorkerVMType:  cloud.M44XLarge,
		SegueAt:       20 * time.Second,
		LambdaTimeout: 15 * time.Second,
		Seed:          1,
	}
	res, err := Run(sc, pagerank.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambdas == 0 {
		t.Fatal("segue scenario launched no lambdas")
	}
	// Replacement VM executors must have registered beyond the initial r.
	if res.VMExecs <= sc.SmallR {
		t.Fatalf("no VM replacements: %d VM executors", res.VMExecs)
	}
}

func TestFigure9SmallSanity(t *testing.T) {
	// A scaled-down Figure 9-style comparison: all-lambda SparkPi should
	// be close to all-VM SparkPi (no shuffle).
	cfg := sparkpi.DefaultConfig()
	cfg.Darts = 1e9
	cfg.Partitions = 16
	vm, err := Run(Scenario{Kind: SSFullVM, R: 16, SmallR: 16, Seed: 1}, sparkpi.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	la, err := Run(Scenario{Kind: SSLambda, R: 16, Seed: 1}, sparkpi.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ratio := la.ExecTime.Seconds() / vm.ExecTime.Seconds()
	if ratio > 1.5 {
		t.Fatalf("no-shuffle lambda/vm ratio = %.2f, want ~1", ratio)
	}
}

func TestExtensionBurScale(t *testing.T) {
	rows, err := ExtensionBurScale(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	hybrid, full, depleted := rows[0], rows[1], rows[2]
	// Healthy standbys are competitive with the hybrid (BurScale's claim).
	if full.ExecTime > hybrid.ExecTime*2 {
		t.Fatalf("credit-full standbys uncompetitive: %v vs hybrid %v", full.ExecTime, hybrid.ExecTime)
	}
	// Depleted standbys are much worse — the token-state risk the paper
	// notes SplitServe does not face.
	if depleted.ExecTime <= full.ExecTime*3/2 {
		t.Fatalf("depleted standbys not penalised: %v vs %v", depleted.ExecTime, full.ExecTime)
	}
}

// TestRunTelemetryReportDeterministic runs the same scenario twice and
// requires byte-identical telemetry reports: every span, mark, counter and
// histogram must come out of the simulation in exactly the same order with
// exactly the same values.
func TestRunTelemetryReportDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := Run(Scenario{Kind: SSHybridSegue, R: 8, SmallR: 2, Seed: 1,
			SegueAt: 5 * time.Second}, smallWorkload())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := res.Telem.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("two identical runs produced different telemetry reports")
	}
}

// TestRunEventLogDeterministic requires the structured event log to be
// byte-identical across same-seed runs — the property that makes saved
// logs trustworthy replay artifacts for splitserve-history.
func TestRunEventLogDeterministic(t *testing.T) {
	run := func(seed uint64) []byte {
		res, err := Run(Scenario{Kind: SSHybridSegue, R: 8, SmallR: 2, Seed: seed,
			SegueAt: 5 * time.Second}, smallWorkload())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := res.Events.JSONL()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(1), run(1)
	if !bytes.Equal(a, b) {
		t.Error("two identical runs produced different event logs")
	}
	if len(a) == 0 {
		t.Fatal("event log is empty")
	}
	// The stream must round-trip and carry the core lifecycle vocabulary.
	events, err := eventlog.ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	seen := map[eventlog.Type]bool{}
	for _, e := range events {
		seen[e.Type] = true
	}
	for _, want := range []eventlog.Type{
		eventlog.JobStart, eventlog.JobEnd, eventlog.StageStart, eventlog.StageEnd,
		eventlog.TaskStart, eventlog.TaskEnd, eventlog.ExecutorAdd,
		eventlog.LambdaInvoke, eventlog.ShuffleWrite,
	} {
		if !seen[want] {
			t.Errorf("event log missing %s events", want)
		}
	}
}

// TestRunTelemetryCoverage checks the report carries the signals the paper's
// analysis needs: per-stage scheduling latency, shuffle bytes, and executor
// launch spans on both substrates.
func TestRunTelemetryCoverage(t *testing.T) {
	res, err := Run(Scenario{Kind: SSHybrid, R: 8, SmallR: 2, Seed: 1}, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Telem.Report()

	var schedStages, shuffleWritten int
	for _, h := range rep.Histograms {
		if h.Name == "engine_sched_latency_seconds" && h.Labels["stage"] != "" {
			schedStages++
		}
	}
	if schedStages == 0 {
		t.Error("no per-stage engine_sched_latency_seconds histograms")
	}
	for _, c := range rep.Counters {
		if c.Name == "shuffle_bytes_written_total" && c.Value > 0 {
			shuffleWritten++
		}
	}
	if shuffleWritten == 0 {
		t.Error("no positive shuffle_bytes_written_total counters")
	}
	launchKinds := map[string]bool{}
	for _, s := range rep.Spans {
		if s.Component == "executor" && s.Name == "launch" {
			launchKinds[s.Labels["kind"]] = true
		}
	}
	if !launchKinds["vm"] || !launchKinds["lambda"] {
		t.Errorf("executor launch spans missing a kind: got %v", launchKinds)
	}
}
