// Package experiments reproduces the paper's evaluation (Section 5): the
// eight Metrics-and-Scenarios configurations, per-figure runners (Figures
// 1-2 and 4-9), marginal cost accounting, and text-table rendering. Every
// run is a deterministic discrete-event simulation; see DESIGN.md for the
// substitution notes and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"time"

	"splitserve/internal/billing"
	"splitserve/internal/cloud"
	"splitserve/internal/core"
	"splitserve/internal/eventlog"
	"splitserve/internal/hdfs"
	"splitserve/internal/metrics"
	"splitserve/internal/netsim"
	"splitserve/internal/perfstat"
	"splitserve/internal/s3q"
	"splitserve/internal/simclock"
	"splitserve/internal/simrand"
	"splitserve/internal/spark/engine"
	"splitserve/internal/storage"
	"splitserve/internal/telemetry"
	"splitserve/internal/workloads"
)

// appStartup is the fixed driver application startup time (JVM launch and
// context initialisation) included in every scenario's reported execution
// time, as the paper's wall-clock measurements include it.
const appStartup = 8 * time.Second

// Kind enumerates the paper's scenarios (Section 5.1).
type Kind int

// Scenario kinds.
const (
	// SparkSmallVM — "Spark r VM": under-provisioned vanilla Spark, no
	// autoscaling.
	SparkSmallVM Kind = iota + 1
	// SparkFullVM — "Spark R VM": adequately provisioned vanilla Spark.
	SparkFullVM
	// SparkAutoscale — "Spark r/R autoscale": vanilla Spark starts at r
	// and procures Δ more VM cores that boot after the VM startup delay.
	SparkAutoscale
	// QuboleLambda — "Qubole R La": all executors on Lambdas, S3 shuffle.
	QuboleLambda
	// SSFullVM — "SS R VM": SplitServe with all cores on VMs.
	SSFullVM
	// SSLambda — "SS R La": SplitServe all-Lambda, HDFS shuffle.
	SSLambda
	// SSHybrid — "SS r VM / Δ La": hybrid, no segue.
	SSHybrid
	// SSHybridSegue — "SS r VM / Δ La Segue": hybrid with segue to VM
	// cores that appear after SegueAt.
	SSHybridSegue
)

// Scenario is one {provisioning, system} configuration to run a workload
// under.
type Scenario struct {
	Kind Kind
	// R is the job's required core count; SmallR is r (< R) for the
	// under-provisioned scenarios.
	R      int
	SmallR int
	// WorkerVMType hosts VM executors; MasterVMType hosts the driver and
	// (for SplitServe) the colocated HDFS node.
	WorkerVMType cloud.VMType
	MasterVMType cloud.VMType
	// VMBoot pins the autoscale/segue VM arrival delay (0 = sample the
	// provider's distribution).
	VMBoot time.Duration
	// VMBootMean overrides the provider's boot-delay mean (sampled with
	// the provider's stddev) when VMBoot is not pinned.
	VMBootMean time.Duration
	// SegueAt pins when segue capacity appears (SSHybridSegue).
	SegueAt time.Duration
	// LambdaMemoryMB sizes Lambda executors (default 1536).
	LambdaMemoryMB int
	// ExecMemoryMB fixes per-executor memory on VMs (0 = hostMem/vCPUs),
	// mirroring spark.executor.memory.
	ExecMemoryMB int
	// LambdaTimeout is spark.lambda.executor.timeout for segue scenarios.
	LambdaTimeout time.Duration
	// QuboleLaunchDelay is the extra executor bootstrap cost of Qubole's
	// Spark-on-Lambda (it pulls the Spark runtime from S3 on start).
	QuboleLaunchDelay time.Duration
	// Seed drives all randomness.
	Seed uint64
	// Events, when set, receives the run's structured event stream (a
	// fresh bus is created otherwise; see Result.Events). Sharing one bus
	// across scenarios interleaves their streams — disambiguate with AppID.
	Events *eventlog.Bus
	// AppID overrides the default application ID ("<workload>-<kind>").
	AppID string
	// Perf overrides the executor performance model (zero = default).
	Perf engine.PerfModel
	// StageOverhead / DispatchCost override the driver overhead model
	// (zero = the package defaults below).
	StageOverhead time.Duration
	DispatchCost  time.Duration
	// S3 overrides the object-store model for the Qubole baseline
	// (zero = s3q defaults).
	S3 s3q.Options
	// Profiler, when non-nil, collects host-side self-profiling for this
	// run (see internal/perfstat). Falls back to the package profiler set
	// with SetProfiler. Purely observational: the simulated result is
	// byte-identical with it on or off.
	Profiler *perfstat.Collector
}

// profiler is the package-level default self-profiler, for commands whose
// runs are built deep inside figure helpers (splitserve-bench) where
// threading a Scenario field through every signature would be noise.
var profiler *perfstat.Collector

// SetProfiler installs a default perfstat collector picked up by every
// subsequent Run whose Scenario.Profiler is nil (nil disables).
func SetProfiler(p *perfstat.Collector) { profiler = p }

// Name renders the paper's scenario label.
func (s Scenario) Name() string {
	switch s.Kind {
	case SparkSmallVM:
		return fmt.Sprintf("Spark %d VM", s.SmallR)
	case SparkFullVM:
		return fmt.Sprintf("Spark %d VM", s.R)
	case SparkAutoscale:
		return fmt.Sprintf("Spark %d/%d autoscale", s.SmallR, s.R)
	case QuboleLambda:
		return fmt.Sprintf("Qubole %d La", s.R)
	case SSFullVM:
		return fmt.Sprintf("SS %d VM", s.R)
	case SSLambda:
		return fmt.Sprintf("SS %d La", s.R)
	case SSHybrid:
		return fmt.Sprintf("SS %d VM / %d La", s.SmallR, s.R-s.SmallR)
	case SSHybridSegue:
		return fmt.Sprintf("SS %d VM / %d La Segue", s.SmallR, s.R-s.SmallR)
	default:
		return fmt.Sprintf("Kind(%d)", int(s.Kind))
	}
}

// Result is one scenario execution.
type Result struct {
	Scenario string
	Workload string
	ExecTime time.Duration
	CostUSD  float64
	ByKind   map[string]float64
	Answer   string
	// Log gives access to the event timeline (Figure 7).
	Log *metrics.Log
	// Telem is the run's telemetry hub: every counter, histogram, span and
	// mark the stack recorded, ready for -report export.
	Telem *telemetry.Hub
	// Events is the run's structured event stream (JSONL / Chrome trace).
	Events *eventlog.Bus
	// Lambdas/VMExecs are the executor mix that ran.
	Lambdas int
	VMExecs int
	// VMWork/LambdaWork split the executed tasks and busy time by
	// substrate.
	VMWork     engine.WorkStats
	LambdaWork engine.WorkStats
}

// Run executes workload w under scenario sc and returns execution time and
// marginal cost, "the cost incurred towards the job in question" (the
// always-on master/HDFS node is common to every scenario and excluded,
// as the paper's marginal accounting does).
func Run(sc Scenario, w workloads.Workload) (*Result, error) {
	if sc.R <= 0 {
		return nil, fmt.Errorf("experiments: scenario needs R > 0")
	}
	if sc.LambdaMemoryMB == 0 {
		sc.LambdaMemoryMB = 1536
	}
	if sc.MasterVMType.VCPUs == 0 {
		sc.MasterVMType = cloud.M4XLarge
	}
	if sc.WorkerVMType.VCPUs == 0 {
		sc.WorkerVMType, _ = cloud.SmallestFor(sc.R)
	}

	clock := simclock.New(simclock.Epoch)
	net := netsim.New(clock)
	hub := telemetry.New(clock)
	bus := sc.Events
	if bus == nil {
		bus = eventlog.NewBus(simclock.Epoch)
	}
	prof := sc.Profiler
	if prof == nil {
		prof = profiler
	}
	prof.AttachClock(clock)
	prof.ObserveBus(bus)
	appID := sc.AppID
	if appID == "" {
		appID = fmt.Sprintf("%s-%d", w.Name(), sc.Kind)
	}
	provOpts := cloud.DefaultOptions()
	if sc.VMBootMean > 0 {
		provOpts.VMBootMean = sc.VMBootMean
	}
	provider := cloud.NewProvider(clock, net, simrand.New(sc.Seed+1), provOpts)
	provider.SetTelemetry(hub)
	provider.SetEventLog(bus)

	// The long-running master (and, for SplitServe, the colocated HDFS
	// datanode sharing its EBS bandwidth — the paper's bottleneck story).
	master := provider.ProvisionReadyVM(sc.MasterVMType)
	fs := hdfs.NewCluster(clock, net, hdfs.DefaultOptions())
	fs.SetTelemetry(hub)
	fs.SetEventLog(bus, appID)
	fs.AddDataNode("dn-"+master.ID, []*netsim.Pool{master.EBS})

	s3opts := sc.S3
	if s3opts == (s3q.Options{}) {
		s3opts = s3q.DefaultOptions()
	}
	objStore := s3q.New(clock, net, s3opts)

	// Pre-existing workers: enough instances to host R cores.
	workerType := sc.WorkerVMType
	nWorkers := (sc.R + workerType.VCPUs - 1) / workerType.VCPUs
	var workers []*cloud.VM
	for i := 0; i < nWorkers; i++ {
		workers = append(workers, provider.ProvisionReadyVM(workerType))
	}
	initialIDs := map[string]bool{master.ID: true}
	for _, vm := range workers {
		initialIDs[vm.ID] = true
	}

	var (
		backend engine.Backend
		store   storage.Store
		alloc   engine.AllocConfig
		ss      *core.SplitServe
	)
	switch sc.Kind {
	case SparkSmallVM:
		store = storage.NewLocal(clock, net)
		backend = engine.NewStandalone(engine.StandaloneConfig{
			VMs: workers, UsableCores: sc.SmallR, ExecMemoryMB: sc.ExecMemoryMB,
		})
		alloc = engine.DefaultAllocConfig(engine.AllocStatic, sc.SmallR, sc.R)
	case SparkFullVM:
		store = storage.NewLocal(clock, net)
		backend = engine.NewStandalone(engine.StandaloneConfig{
			VMs: workers, UsableCores: sc.R, ExecMemoryMB: sc.ExecMemoryMB,
		})
		alloc = engine.DefaultAllocConfig(engine.AllocStatic, sc.R, sc.R)
	case SparkAutoscale:
		store = storage.NewLocal(clock, net)
		scaleType, _ := cloud.SmallestFor(sc.R - sc.SmallR)
		backend = engine.NewStandalone(engine.StandaloneConfig{
			VMs: workers, UsableCores: sc.SmallR,
			Autoscale: true, ScaleVMType: scaleType, BootOverride: sc.VMBoot,
			ExecMemoryMB: sc.ExecMemoryMB,
		})
		alloc = engine.DefaultAllocConfig(engine.AllocDynamic, sc.SmallR, sc.R)
	case QuboleLambda:
		store = objStore.Bucket("qubole-shuffle")
		qcfg := core.DefaultConfig(nil, 0)
		qcfg.LambdaMemoryMB = sc.LambdaMemoryMB
		qcfg.LambdaExecLaunchDelay = sc.QuboleLaunchDelay
		if qcfg.LambdaExecLaunchDelay == 0 {
			qcfg.LambdaExecLaunchDelay = 10 * time.Second
		}
		ss = core.New(qcfg)
		backend = ss
		alloc = engine.DefaultAllocConfig(engine.AllocStatic, sc.R, sc.R)
	case SSFullVM, SSLambda, SSHybrid, SSHybridSegue:
		store = fs.Store()
		free := 0
		switch sc.Kind {
		case SSFullVM:
			free = sc.R
		case SSLambda:
			free = 0
		default:
			free = sc.SmallR
		}
		cfg := core.DefaultConfig(workers, free)
		cfg.LambdaMemoryMB = sc.LambdaMemoryMB
		cfg.ExecMemoryMB = sc.ExecMemoryMB
		if sc.Kind == SSHybridSegue {
			cfg.Segue = true
			segueType, _ := cloud.SmallestFor(sc.R - sc.SmallR)
			cfg.SegueVMType = segueType
			cfg.SegueBootOverride = sc.SegueAt
			if sc.LambdaTimeout > 0 {
				cfg.LambdaExecutorTimeout = sc.LambdaTimeout
			}
		}
		ss = core.New(cfg)
		backend = ss
		alloc = engine.DefaultAllocConfig(engine.AllocStatic, sc.R, sc.R)
	default:
		return nil, fmt.Errorf("experiments: unknown scenario kind %d", sc.Kind)
	}

	stageOverhead := sc.StageOverhead
	if stageOverhead == 0 {
		stageOverhead = defaultStageOverhead
	}
	dispatch := sc.DispatchCost
	if dispatch == 0 {
		dispatch = defaultDispatchCost
	}
	cluster, err := engine.New(engine.Config{
		AppID:               appID,
		Clock:               clock,
		Net:                 net,
		Provider:            provider,
		Store:               store,
		Backend:             backend,
		Telem:               hub,
		Events:              bus,
		Alloc:               alloc,
		Perf:                sc.Perf,
		SLO:                 w.SLO(),
		StageLaunchOverhead: stageOverhead,
		TaskDispatchCost:    dispatch,
	})
	if err != nil {
		return nil, err
	}

	report, err := w.Run(cluster)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s under %s: %w", w.Name(), sc.Name(), err)
	}
	if ss != nil {
		ss.Shutdown()
	}

	res := &Result{
		Scenario: sc.Name(),
		Workload: w.Name(),
		// Reported execution time includes the driver application startup
		// (JVM boot, SparkContext init) every scenario pays identically.
		ExecTime: report.Elapsed + appStartup,
		Answer:   report.Answer,
		Log:      cluster.Log(),
		Telem:    hub,
		Events:   bus,
	}
	for _, e := range cluster.AllExecutors() {
		switch e.Kind {
		case engine.ExecVM:
			res.VMExecs++
		case engine.ExecLambda:
			res.Lambdas++
		}
	}
	dist := cluster.WorkDistribution()
	res.VMWork = dist[engine.ExecVM]
	res.LambdaWork = dist[engine.ExecLambda]

	meter := billMarginal(cluster, provider, objStore, initialIDs, master.ID, clock.Now(), hub)
	res.CostUSD = meter.Total()
	res.ByKind = meter.TotalByKind()
	return res, nil
}

// billMarginal computes the job's marginal cost: pre-existing worker VM
// cores are charged proportionally for their peak concurrent use over the
// job; VMs procured during the run (autoscale, segue) are charged in full
// from request to job end; Lambdas per billed duration; S3 per request.
func billMarginal(cluster *engine.Cluster, provider *cloud.Provider, objStore *s3q.Store, initialIDs map[string]bool, masterID string, end time.Time, hub *telemetry.Hub) *billing.Meter {
	var meter billing.Meter
	meter.SetTelemetry(hub)

	// Peak concurrent executors per pre-existing host.
	peak := map[string]int{}
	liveNow := map[string]int{}
	type ev struct {
		at    time.Time
		host  string
		delta int
	}
	var evs []ev
	for _, e := range cluster.AllExecutors() {
		if e.Kind != engine.ExecVM {
			continue
		}
		evs = append(evs, ev{at: e.RegisteredAt, host: e.HostID, delta: 1})
		if e.State == engine.ExecDead {
			evs = append(evs, ev{at: e.RemovedAt, host: e.HostID, delta: -1})
		}
	}
	// Events are appended in registration order; a stable pass suffices
	// for peak tracking (removal never precedes registration).
	for _, e := range evs {
		if e.delta > 0 {
			liveNow[e.host]++
			if liveNow[e.host] > peak[e.host] {
				peak[e.host] = liveNow[e.host]
			}
		}
	}

	duration := end.Sub(simclock.Epoch)
	for _, vm := range provider.VMs() {
		if vm.ID == masterID {
			continue // common to all scenarios; excluded from marginal cost
		}
		if initialIDs[vm.ID] {
			if used := peak[vm.ID]; used > 0 {
				meter.AddVM(vm.ID, vm.Type.PricePerHour, vm.Type.VCPUs, used, duration)
			}
			continue
		}
		// Procured during the run: billed in full from the request.
		meter.Add(billing.Item{
			Kind:     "vm",
			Ref:      vm.ID + " (procured)",
			Duration: vm.Uptime(end),
			USD:      billing.VMCost(vm.Type.PricePerHour, vm.Uptime(end)),
		})
	}
	for _, l := range provider.Lambdas() {
		meter.AddLambda(l.ID, l.Config.MemoryMB, l.BilledDuration(end))
	}
	puts, gets := objStore.Counts("qubole-shuffle")
	if puts+gets > 0 {
		meter.AddS3("qubole-shuffle", puts, gets)
	}
	return &meter
}
