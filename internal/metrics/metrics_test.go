package metrics

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return t0.Add(d) }

func TestAddAndByKind(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(0), Kind: JobStart, Stage: -1, Task: -1})
	l.Add(Event{At: at(time.Second), Kind: TaskStart, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(2 * time.Second), Kind: TaskEnd, Exec: "e1", Stage: 0, Task: 0})
	if len(l.Events()) != 3 {
		t.Fatalf("events = %d", len(l.Events()))
	}
	if got := l.ByKind(TaskStart); len(got) != 1 || got[0].Exec != "e1" {
		t.Fatalf("ByKind = %+v", got)
	}
	if l.Rel(at(2*time.Second)) != 2*time.Second {
		t.Fatal("Rel broken")
	}
	if !l.Start().Equal(t0) {
		t.Fatal("Start broken")
	}
}

func TestTaskSpansPairing(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(1 * time.Second), Kind: TaskStart, Exec: "e1", ExecKind: "vm", Stage: 0, Task: 0})
	l.Add(Event{At: at(2 * time.Second), Kind: TaskStart, Exec: "e2", ExecKind: "lambda", Stage: 0, Task: 1})
	l.Add(Event{At: at(3 * time.Second), Kind: TaskEnd, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(5 * time.Second), Kind: TaskFailed, Exec: "e2", Stage: 0, Task: 1})
	spans := l.TaskSpans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Exec != "e1" || spans[0].End.Sub(spans[0].Start) != 2*time.Second {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].ExecKind != "lambda" {
		t.Fatalf("span 1 kind = %q", spans[1].ExecKind)
	}
}

func TestTaskSpansUnmatchedStartEmitsOpenSpan(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(time.Second), Kind: TaskStart, Exec: "e1", ExecKind: "lambda", Stage: 0, Task: 0})
	l.Add(Event{At: at(9 * time.Second), Kind: ExecutorRemoved, Exec: "e1", ExecKind: "lambda"})
	spans := l.TaskSpans()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	s := spans[0]
	if !s.Open {
		t.Fatalf("span not marked open: %+v", s)
	}
	if !s.End.Equal(at(9 * time.Second)) {
		t.Fatalf("open span not clamped to log end: %+v", s)
	}
	if s.Exec != "e1" || s.ExecKind != "lambda" {
		t.Fatalf("span identity lost: %+v", s)
	}
}

func TestAddRejectsUnknownKind(t *testing.T) {
	l := New(t0)
	if err := l.Add(Event{At: at(0), Kind: Kind("task_strat")}); err == nil {
		t.Fatal("typo'd kind accepted")
	}
	if len(l.Events()) != 0 {
		t.Fatal("rejected event was recorded")
	}
	if err := l.Add(Event{At: at(0), Kind: TaskStart, Exec: "e1"}); err != nil {
		t.Fatalf("valid kind rejected: %v", err)
	}
}

func TestKindStringAndValid(t *testing.T) {
	if TaskStart.String() != "task_start" {
		t.Fatalf("String = %q", TaskStart.String())
	}
	if !SegueCommence.Valid() {
		t.Fatal("SegueCommence invalid")
	}
	if Kind("bogus").Valid() {
		t.Fatal("bogus kind valid")
	}
}

func TestStageSpans(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(0), Kind: StageStart, Stage: 1})
	l.Add(Event{At: at(time.Second), Kind: StageStart, Stage: 2})
	l.Add(Event{At: at(3 * time.Second), Kind: StageEnd, Stage: 2})
	l.Add(Event{At: at(4 * time.Second), Kind: StageEnd, Stage: 1})
	spans := l.StageSpans()
	if len(spans) != 2 {
		t.Fatalf("stage spans = %d", len(spans))
	}
	if spans[0].Stage != 1 || spans[1].Stage != 2 {
		t.Fatalf("order = %+v", spans)
	}
}

func TestRenderTimeline(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(0), Kind: ExecutorRegistered, Exec: "e1", ExecKind: "vm"})
	l.Add(Event{At: at(0), Kind: ExecutorRegistered, Exec: "e2", ExecKind: "lambda"})
	l.Add(Event{At: at(0), Kind: TaskStart, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(10 * time.Second), Kind: TaskEnd, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(5 * time.Second), Kind: SegueCommence})
	out := l.RenderTimeline(40)
	if !strings.Contains(out, "e1 [vm]") || !strings.Contains(out, "e2 [lambda]") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no activity marks:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("no segue mark:\n%s", out)
	}
}

func TestRenderTimelineHeaderTicks(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(0), Kind: ExecutorRegistered, Exec: "e1", ExecKind: "vm"})
	// Dense activity covering the whole row: the in-row segue marker can't
	// land on a '.', so only the header tick row can show it.
	l.Add(Event{At: at(0), Kind: TaskStart, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(10 * time.Second), Kind: TaskEnd, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(5 * time.Second), Kind: SegueCommence})
	l.Add(Event{At: at(8 * time.Second), Kind: VMReady, Exec: "vm-1"})
	out := l.RenderTimeline(40)
	if !strings.Contains(out, "S") {
		t.Fatalf("header missing segue tick:\n%s", out)
	}
	if !strings.Contains(out, "V") {
		t.Fatalf("header missing vm-ready tick:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "e1 [vm]") && strings.Contains(line, "|") {
			t.Fatalf("segue drawn over dense row:\n%s", out)
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	l := New(t0)
	if got := l.RenderTimeline(40); !strings.Contains(got, "no task activity") {
		t.Fatalf("empty render = %q", got)
	}
}

func TestRenderTimelineTinyWidthDefaults(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(0), Kind: ExecutorRegistered, Exec: "e1", ExecKind: "vm"})
	l.Add(Event{At: at(0), Kind: TaskStart, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(time.Second), Kind: TaskEnd, Exec: "e1", Stage: 0, Task: 0})
	out := l.RenderTimeline(1) // clamps to 80
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestDuplicateRegistrationIgnored(t *testing.T) {
	l := New(t0)
	l.Add(Event{At: at(0), Kind: ExecutorRegistered, Exec: "e1", ExecKind: "vm"})
	l.Add(Event{At: at(1), Kind: ExecutorRegistered, Exec: "e1", ExecKind: "vm"})
	l.Add(Event{At: at(0), Kind: TaskStart, Exec: "e1", Stage: 0, Task: 0})
	l.Add(Event{At: at(time.Second), Kind: TaskEnd, Exec: "e1", Stage: 0, Task: 0})
	out := l.RenderTimeline(40)
	if strings.Count(out, "e1 [vm]") != 1 {
		t.Fatalf("duplicate rows:\n%s", out)
	}
}
